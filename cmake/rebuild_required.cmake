# Placeholder test body seeded into gtest_discover_tests' sidecar file at
# configure time (see decos_test in tests/CMakeLists.txt). It only ever
# runs when ctest is invoked before the test binary has been (re)built --
# the post-build discovery step overwrites the sidecar with the real test
# list. Fails loudly with an actionable message instead of the stock
# "<name>_NOT_BUILT ... Not Run" placeholder.
#
# Invoked as: cmake -DTEST_BINARY=<target> -P rebuild_required.cmake
message(FATAL_ERROR
  "test binary '${TEST_BINARY}' has not been built yet: rebuild required.\n"
  "Run:  cmake --build <build-dir> -j   (or scripts/verify.sh for a full "
  "configure + build + ctest cycle)")
