# Test driver for the example binaries (examples/CMakeLists.txt): fails
# with an actionable "rebuild required" message when the binary is
# missing (ctest invoked before the build) instead of reporting the
# confusing "Unable to find executable ... Not Run".
#
# Invoked as: cmake -DBINARY=<path> -P run_example.cmake
if(NOT EXISTS "${BINARY}")
  message(FATAL_ERROR
    "example binary '${BINARY}' has not been built yet: rebuild required.\n"
    "Run:  cmake --build <build-dir> -j   (or scripts/verify.sh)")
endif()
execute_process(COMMAND "${BINARY}" RESULT_VARIABLE _rc)
if(NOT _rc EQUAL 0)
  message(FATAL_ERROR "example '${BINARY}' failed with exit code ${_rc}")
endif()
