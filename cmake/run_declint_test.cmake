# ctest driver for declint CLI cases.
# Inputs: -DDECLINT=<path> -DSPEC=<path or ;-list> -DEXPECT_EXIT=<n>
#         [-DEXPECT_MATCH=<regex>] [-DEXTRA_ARGS=<;-list of flags>]
#         [-DGOLDEN=<path>]   compare stdout byte-exact against this file
#         [-DWORKDIR=<path>]  run with this working directory (golden
#                             outputs embed the spec paths as given, so
#                             golden cases pass relative paths)
if(NOT EXISTS "${DECLINT}")
  message(FATAL_ERROR
    "declint binary '${DECLINT}' has not been built yet: rebuild required.\n"
    "Run: cmake --build <build-dir> -j (or scripts/verify.sh)")
endif()

if(NOT DEFINED WORKDIR OR "${WORKDIR}" STREQUAL "")
  set(WORKDIR ".")
endif()

execute_process(
  COMMAND "${DECLINT}" ${EXTRA_ARGS} ${SPEC}
  WORKING_DIRECTORY "${WORKDIR}"
  OUTPUT_VARIABLE _out
  ERROR_VARIABLE _err
  RESULT_VARIABLE _rc)

set(_all "${_out}${_err}")

if(NOT _rc EQUAL "${EXPECT_EXIT}")
  message(FATAL_ERROR
    "declint ${SPEC}: expected exit ${EXPECT_EXIT}, got ${_rc}\noutput:\n${_all}")
endif()

if(DEFINED EXPECT_MATCH AND NOT "${EXPECT_MATCH}" STREQUAL "")
  if(NOT _all MATCHES "${EXPECT_MATCH}")
    message(FATAL_ERROR
      "declint ${SPEC}: output does not match '${EXPECT_MATCH}'\noutput:\n${_all}")
  endif()
endif()

if(DEFINED GOLDEN AND NOT "${GOLDEN}" STREQUAL "")
  file(READ "${GOLDEN}" _golden)
  if(NOT _out STREQUAL _golden)
    message(FATAL_ERROR
      "declint ${SPEC}: stdout differs from golden ${GOLDEN}\n"
      "--- got ---\n${_out}\n--- want ---\n${_golden}")
  endif()
endif()
