# ctest driver for declint CLI cases.
# Inputs: -DDECLINT=<path> -DSPEC=<path> -DEXPECT_EXIT=<n> [-DEXPECT_MATCH=<regex>]
if(NOT EXISTS "${DECLINT}")
  message(FATAL_ERROR
    "declint binary '${DECLINT}' has not been built yet: rebuild required.\n"
    "Run: cmake --build <build-dir> -j (or scripts/verify.sh)")
endif()

execute_process(
  COMMAND "${DECLINT}" "${SPEC}"
  OUTPUT_VARIABLE _out
  ERROR_VARIABLE _err
  RESULT_VARIABLE _rc)

set(_all "${_out}${_err}")

if(NOT _rc EQUAL "${EXPECT_EXIT}")
  message(FATAL_ERROR
    "declint ${SPEC}: expected exit ${EXPECT_EXIT}, got ${_rc}\noutput:\n${_all}")
endif()

if(DEFINED EXPECT_MATCH AND NOT "${EXPECT_MATCH}" STREQUAL "")
  if(NOT _all MATCHES "${EXPECT_MATCH}")
    message(FATAL_ERROR
      "declint ${SPEC}: output does not match '${EXPECT_MATCH}'\noutput:\n${_all}")
  endif()
endif()
