// E4 -- Temporal accuracy (paper Eq. (1)/(2), Fig. 5): "The purpose of
// t_update and d_acc is to ensure that only temporally accurate real-time
// images are forwarded by the gateway."
//
// A state element is refreshed with period U and the gateway's TT output
// tries to forward it with period 5ms. We sweep the accuracy interval
// d_acc against U and measure (a) the fraction of forwarding attempts
// that succeed, (b) the stale constructions the ablation configuration
// (accuracy checked at store time only, DESIGN.md decision 4) lets
// through, and (c) the horizon(m) distribution at the forwarding
// instants.
#include "common.hpp"
#include "sim/simulator.hpp"
#include "util/statistics.hpp"

using namespace decos;
using namespace decos::bench;
using namespace decos::literals;

namespace {

constexpr Duration kDispatch = 5_ms;
constexpr Duration kRun = 20_s;

struct Outcome {
  std::uint64_t attempts = 0;
  std::uint64_t forwarded = 0;
  std::uint64_t stale_forwarded = 0;  // forwarded although inaccurate (ablation)
  double mean_horizon_ms = 0.0;
};

Outcome run(Cell& cell, Duration update_period, Duration d_acc, bool check_at_construction) {
  spec::LinkSpec link_a{"dasA"};
  link_a.add_message(state_message("msgA", "image", 1));
  link_a.add_port(input_port("msgA", spec::InfoSemantics::kState,
                             spec::ControlParadigm::kTimeTriggered, update_period, 1_us,
                             Duration::seconds(3600)));
  spec::LinkSpec link_b{"dasB"};
  link_b.add_message(state_message("msgB", "image", 2));
  link_b.add_port(output_port("msgB", spec::InfoSemantics::kState,
                              spec::ControlParadigm::kTimeTriggered, kDispatch));

  core::GatewayConfig config;
  config.default_d_acc = d_acc;
  config.accuracy_check_at_store = !check_at_construction;
  core::VirtualGateway gateway{"e4", std::move(link_a), std::move(link_b), config};
  gateway.finalize();

  Outcome outcome;
  RunningStats horizon_stats;
  gateway.link_b().set_emitter("msgB", [&](const spec::MessageInstance&) { ++outcome.forwarded; });

  sim::Simulator sim;
  cell.configure(sim);
  gateway.bind_observability(sim.metrics(), sim.spans());
  Instant last_update = Instant::origin() - 1_s;
  const spec::MessageSpec& ms = *gateway.link_a().spec().message("msgA");
  for (Instant t = Instant::origin(); t < Instant::origin() + kRun; t += update_period) {
    sim.schedule_at(t, [&gateway, &ms, &sim, &last_update] {
      gateway.on_input(0, state_instance(ms, 7, sim.now()), sim.now());
      last_update = sim.now();
    });
  }
  for (Instant t = Instant::origin(); t < Instant::origin() + kRun; t += kDispatch) {
    sim.schedule_at(t, [&] {
      ++outcome.attempts;
      const std::uint64_t before = outcome.forwarded;
      gateway.dispatch(sim.now());
      if (outcome.forwarded > before) {
        horizon_stats.add(gateway.horizon(1, "msgB", sim.now()).as_ms());
        const bool accurate = sim.now() < last_update + d_acc;
        if (!accurate) ++outcome.stale_forwarded;
      }
    });
  }
  sim.run_until(Instant::origin() + kRun);
  outcome.mean_horizon_ms = horizon_stats.mean();
  cell.capture(cell.label(), sim, {{"gw:e4", &gateway.trace()}});
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  Harness harness{argc, argv, "e4"};
  title("E4  temporal accuracy filtering (Eq. (1)) and horizon (Eq. (2))",
        "only temporally accurate state images leave the gateway; checking at "
        "construction time (not store time) is what guarantees it");

  row("%-9s %-9s %-14s %9s %9s %8s %9s %12s", "U[ms]", "dacc[ms]", "check", "attempts",
      "forwarded", "fwd%", "stale", "horizon[ms]");
  ParallelSweep sweep{harness};
  for (const auto update_ms : {2, 10, 20, 50}) {
    for (const auto dacc_ms : {5, 15, 40, 100}) {
      for (const bool at_construction : {true, false}) {
        char label[64];
        std::snprintf(label, sizeof label, "U=%dms dacc=%dms check=%s", update_ms, dacc_ms,
                      at_construction ? "construction" : "store");
        sweep.add(label, [update_ms, dacc_ms, at_construction](Cell& cell) {
          const Outcome o = run(cell, Duration::milliseconds(update_ms),
                                Duration::milliseconds(dacc_ms), at_construction);
          cell.row("%-9d %-9d %-14s %9llu %9llu %7.1f%% %9llu %12.2f", update_ms, dacc_ms,
                   at_construction ? "construction" : "store(abl)",
                   static_cast<unsigned long long>(o.attempts),
                   static_cast<unsigned long long>(o.forwarded),
                   100.0 * static_cast<double>(o.forwarded) / static_cast<double>(o.attempts),
                   static_cast<unsigned long long>(o.stale_forwarded), o.mean_horizon_ms);
        });
      }
    }
  }
  sweep.run();
  row("");
  row("expected shape: with the construction-time check, stale==0 always and the");
  row("forwarded fraction collapses once d_acc < U (the image expires between");
  row("updates). The store-time ablation forwards at full rate but leaks stale");
  row("images exactly in those d_acc < U configurations.");
  return 0;
}
