// E20 -- Microbenchmarks of the typed periodic-event kernel (timer wheel
// + pooled nodes + in-place callables) against the reference kernel it
// replaced (binary heap + unordered_map<id, std::function>, preserved in
// sim/reference_kernel.hpp). Four shapes bracket what the TDMA clients
// do: one-shot schedule/fire churn (bus deliveries), schedule/cancel
// (integration timeouts), steady periodic firing (slots, rounds,
// partitions, gateway ticks -- the dominant load), and mixed churn with
// far-future one-shots exercising the overflow heap. google-benchmark
// binary; speedups land in BENCH_e20.json for the CI perf gate.
#include <benchmark/benchmark.h>

#include <map>
#include <string>
#include <vector>

#include "common.hpp"
#include "sim/reference_kernel.hpp"
#include "sim/simulator.hpp"

using namespace decos;
using namespace decos::bench;
using namespace decos::literals;

namespace {

constexpr Duration kPeriod = 1_ms;

/// 24 bytes of captured state, the size the old clients dragged through
/// std::function (this, slot index, round) -- beyond its small-buffer
/// optimisation, so the reference kernel allocates per schedule exactly
/// like the old clients did.
struct Payload {
  std::uint64_t a = 1;
  std::uint64_t b = 2;
  std::uint64_t c = 3;
};

// -- one-shot schedule + fire (bus-delivery shape) --------------------------

void BM_OneShotWheel(benchmark::State& state) {
  sim::Simulator sim;
  std::uint64_t fired = 0;
  const Payload p;
  for (int i = 0; i < 512; ++i)
    sim.schedule_after(Duration::microseconds(2 * (i + 1)), [&fired, p] { fired += p.a; });
  for (auto _ : state) {
    sim.schedule_after(Duration::microseconds(1024), [&fired, p] { fired += p.a; });
    sim.step();
  }
  benchmark::DoNotOptimize(fired);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_OneShotWheel);

void BM_OneShotReference(benchmark::State& state) {
  sim::ReferenceKernel sim;
  std::uint64_t fired = 0;
  const Payload p;
  for (int i = 0; i < 512; ++i)
    sim.schedule_after(Duration::microseconds(2 * (i + 1)), [&fired, p] { fired += p.a; });
  for (auto _ : state) {
    sim.schedule_after(Duration::microseconds(1024), [&fired, p] { fired += p.a; });
    sim.step();
  }
  benchmark::DoNotOptimize(fired);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_OneShotReference);

// -- schedule + cancel (integration-timeout shape) --------------------------

void BM_CancelWheel(benchmark::State& state) {
  sim::Simulator sim;
  std::uint64_t fired = 0;
  const Payload p;
  for (auto _ : state) {
    const sim::EventId id = sim.schedule_after(1_ms, [&fired, p] { fired += p.a; });
    benchmark::DoNotOptimize(sim.cancel(id));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CancelWheel);

void BM_CancelReference(benchmark::State& state) {
  sim::ReferenceKernel sim;
  std::uint64_t fired = 0;
  const Payload p;
  for (auto _ : state) {
    const sim::ReferenceKernel::EventId id =
        sim.schedule_after(1_ms, [&fired, p] { fired += p.a; });
    benchmark::DoNotOptimize(sim.cancel(id));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CancelReference);

// -- steady periodic firing (TDMA slot / round / partition shape) -----------

void BM_PeriodicWheel(benchmark::State& state) {
  sim::Simulator sim;
  std::uint64_t fired = 0;
  const Payload p;
  std::vector<sim::PeriodicTask> tasks;
  for (int i = 0; i < 64; ++i) {
    tasks.push_back(sim.schedule_periodic(sim.now() + Duration::microseconds(1 + 15 * i),
                                          kPeriod, [&fired, p] { fired += p.a; }));
  }
  for (auto _ : state) sim.step();
  benchmark::DoNotOptimize(fired);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PeriodicWheel);

void BM_PeriodicReference(benchmark::State& state) {
  sim::ReferenceKernel sim;
  std::uint64_t fired = 0;
  // Self-chaining handler, the old clients' re-arm idiom: every firing
  // re-schedules a fresh std::function copy of itself.
  struct Chain {
    sim::ReferenceKernel* kernel;
    std::uint64_t* fired;
    Payload p;
    void operator()() const {
      *fired += p.a;
      kernel->schedule_at(kernel->now() + kPeriod, *this);
    }
  };
  for (int i = 0; i < 64; ++i) {
    sim.schedule_at(sim.now() + Duration::microseconds(1 + 15 * i),
                    Chain{&sim, &fired, Payload{}});
  }
  for (auto _ : state) sim.step();
  benchmark::DoNotOptimize(fired);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PeriodicReference);

// -- mixed churn with far-future one-shots (overflow-heap shape) ------------

void BM_MixedChurnWheel(benchmark::State& state) {
  sim::Simulator sim;
  std::uint64_t fired = 0;
  const Payload p;
  std::vector<sim::PeriodicTask> tasks;
  for (int i = 0; i < 64; ++i) {
    tasks.push_back(sim.schedule_periodic(sim.now() + Duration::microseconds(1 + 15 * i),
                                          kPeriod, [&fired, p] { fired += p.a; }));
  }
  std::vector<sim::EventId> far(256);
  for (std::size_t i = 0; i < far.size(); ++i)
    far[i] = sim.schedule_after(10_s, [&fired, p] { fired += p.a; });
  std::size_t cursor = 0;
  for (auto _ : state) {
    sim.cancel(far[cursor]);
    far[cursor] = sim.schedule_after(10_s, [&fired, p] { fired += p.a; });
    cursor = (cursor + 1) & (far.size() - 1);
    sim.step();
  }
  benchmark::DoNotOptimize(fired);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MixedChurnWheel);

void BM_MixedChurnReference(benchmark::State& state) {
  sim::ReferenceKernel sim;
  std::uint64_t fired = 0;
  const Payload p;
  struct Chain {
    sim::ReferenceKernel* kernel;
    std::uint64_t* fired;
    Payload p;
    void operator()() const {
      *fired += p.a;
      kernel->schedule_at(kernel->now() + kPeriod, *this);
    }
  };
  for (int i = 0; i < 64; ++i) {
    sim.schedule_at(sim.now() + Duration::microseconds(1 + 15 * i),
                    Chain{&sim, &fired, Payload{}});
  }
  std::vector<sim::ReferenceKernel::EventId> far(256);
  for (std::size_t i = 0; i < far.size(); ++i)
    far[i] = sim.schedule_after(10_s, [&fired, p] { fired += p.a; });
  std::size_t cursor = 0;
  for (auto _ : state) {
    sim.cancel(far[cursor]);
    far[cursor] = sim.schedule_after(10_s, [&fired, p] { fired += p.a; });
    cursor = (cursor + 1) & (far.size() - 1);
    sim.step();
  }
  benchmark::DoNotOptimize(fired);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MixedChurnReference);

// Forwards google-benchmark's console output into the harness (same
// pattern as bench_e11_micro) and collects per-benchmark timings.
class HarnessReporter : public benchmark::ConsoleReporter {
 public:
  explicit HarnessReporter(Harness& harness) : harness_(harness) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      harness_.note_line(run.benchmark_name());
      obs::json::Object o;
      o.emplace_back("name", run.benchmark_name());
      o.emplace_back("iterations", static_cast<std::uint64_t>(run.iterations));
      o.emplace_back("real_ns", run.GetAdjustedRealTime());
      o.emplace_back("cpu_ns", run.GetAdjustedCPUTime());
      results_.push_back(obs::json::Value{std::move(o)});
      cpu_ns_[run.benchmark_name()] = run.GetAdjustedCPUTime();
    }
  }

  obs::json::Array take_results() { return std::move(results_); }

  /// reference cpu / wheel cpu (>1 means the new kernel is faster).
  double speedup(const std::string& wheel, const std::string& reference) const {
    const auto a = cpu_ns_.find(wheel);
    const auto b = cpu_ns_.find(reference);
    if (a == cpu_ns_.end() || b == cpu_ns_.end() || a->second <= 0.0) return 0.0;
    return b->second / a->second;
  }

 private:
  Harness& harness_;
  obs::json::Array results_;
  std::map<std::string, double> cpu_ns_;
};

}  // namespace

int main(int argc, char** argv) {
  Harness harness{argc, argv, "e20"};
  // Google benchmark must not see the harness flags; it rejects unknown
  // arguments. The harness's --filter maps onto --benchmark_filter (this
  // binary's microbenchmarks run serially; google-benchmark owns timing).
  std::string filter_flag = "--benchmark_filter=" + harness.filter();
  std::vector<char*> bench_argv{argv[0]};
  if (!harness.filter().empty()) bench_argv.push_back(filter_flag.data());
  int bench_argc = static_cast<int>(bench_argv.size());
  benchmark::Initialize(&bench_argc, bench_argv.data());
  HarnessReporter reporter{harness};
  benchmark::RunSpecifiedBenchmarks(&reporter);
  obs::json::Object speedups;
  speedups.emplace_back("kernel_oneshot",
                        reporter.speedup("BM_OneShotWheel", "BM_OneShotReference"));
  speedups.emplace_back("kernel_cancel", reporter.speedup("BM_CancelWheel", "BM_CancelReference"));
  speedups.emplace_back("kernel_periodic",
                        reporter.speedup("BM_PeriodicWheel", "BM_PeriodicReference"));
  speedups.emplace_back("kernel_churn",
                        reporter.speedup("BM_MixedChurnWheel", "BM_MixedChurnReference"));
  harness.set_json("speedups", obs::json::Value{std::move(speedups)});
  harness.set_json("benchmarks", obs::json::Value{reporter.take_results()});
  benchmark::Shutdown();
  return 0;
}
