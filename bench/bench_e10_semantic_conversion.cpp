// E10 -- Event<->state conversion maintains state synchronization (paper
// Section IV-B, Fig. 6 transfer semantics): event information is
// relative, so "the loss of a single message with event information
// could affect state synchronization between a sender and a receiver".
//
// A sliding roof performs 2000 random movements in bursts. Two designs
// compete:
//   gateway    : the hidden gateway converts events to state *at the
//                boundary* (exactly-once repository, Fig. 6 rule) and
//                exports the absolute position;
//   naive relay: events are forwarded as events through a small relay
//                queue (capacity swept) and integrated at the consumer --
//                any overflow-dropped event corrupts the consumer's
//                state for good.
// We measure the consumer's final position error.
#include <deque>

#include "common.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

using namespace decos;
using namespace decos::bench;
using namespace decos::literals;

namespace {

constexpr int kMovements = 2000;

spec::MessageSpec movement_message(const std::string& name, int id) {
  spec::MessageSpec ms{name};
  spec::ElementSpec key;
  key.name = "name";
  key.key = true;
  key.fields.push_back(spec::FieldSpec{"id", spec::FieldType::kInt16, 0, ta::Value{id}});
  ms.add_element(std::move(key));
  spec::ElementSpec ev;
  ev.name = "movementevent";
  ev.convertible = true;
  ev.fields.push_back(spec::FieldSpec{"valuechange", spec::FieldType::kInt16, 0, std::nullopt});
  ev.fields.push_back(spec::FieldSpec{"eventtime", spec::FieldType::kTimestamp, 0, std::nullopt});
  ms.add_element(std::move(ev));
  return ms;
}

/// Movement workload: bursts of up to 8 movements 200us apart, bursts on
/// average 60ms apart -- the *average* rate (one movement per ~13ms) is
/// below the relay's service rate (one per 10ms), so only the transient
/// burst imbalance stresses the queues, exactly the situation Fig. 5's
/// queues are sized for. Returns (instants, changes) and the true final
/// position.
struct Workload {
  std::vector<std::pair<Instant, int>> events;
  int true_final = 0;
};

Workload make_workload(std::uint64_t seed) {
  Workload w;
  Rng rng{seed};
  Instant t = Instant::origin();
  int position = 0;
  int produced = 0;
  while (produced < kMovements) {
    t += rng.exponential_duration(60_ms);
    const std::int64_t burst = rng.uniform_int(1, 8);
    for (std::int64_t b = 0; b < burst && produced < kMovements; ++b) {
      t += 200_us;
      int change = static_cast<int>(rng.uniform_int(-10, 10));
      if (position + change > 100) change = 100 - position;
      if (position + change < 0) change = -position;
      position += change;
      w.events.emplace_back(t, change);
      ++produced;
    }
  }
  w.true_final = position;
  return w;
}

/// Gateway design: events -> repository -> transfer rule -> state export.
int run_gateway(const Workload& workload, std::size_t queue_capacity) {
  spec::LinkSpec link_a{"comfort"};
  link_a.add_message(movement_message("msgroof", 731));
  link_a.add_port(input_port("msgroof", spec::InfoSemantics::kEvent,
                             spec::ControlParadigm::kEventTriggered, Duration::zero(),
                             Duration::zero(), Duration::max(), queue_capacity));
  spec::TransferRule rule;
  rule.target = "movementstate";
  rule.source = "movementevent";
  spec::TransferFieldRule fr;
  fr.name = "statevalue";
  fr.init = ta::Value{0};
  fr.semantics = "state";
  fr.update = ta::parse_expression("statevalue + valuechange").value();
  rule.fields.push_back(std::move(fr));
  link_a.add_transfer_rule(std::move(rule));

  spec::LinkSpec link_b{"display"};
  spec::MessageSpec out{"msgstate"};
  spec::ElementSpec key;
  key.name = "name";
  key.key = true;
  key.fields.push_back(spec::FieldSpec{"id", spec::FieldType::kInt16, 0, ta::Value{900}});
  out.add_element(std::move(key));
  spec::ElementSpec st;
  st.name = "movementstate";
  st.convertible = true;
  st.fields.push_back(spec::FieldSpec{"statevalue", spec::FieldType::kInt32, 0, std::nullopt});
  out.add_element(std::move(st));
  link_b.add_message(std::move(out));
  link_b.add_port(output_port("msgstate", spec::InfoSemantics::kState,
                              spec::ControlParadigm::kTimeTriggered, 10_ms));

  core::GatewayConfig config;
  config.default_d_acc = 10_s;
  core::VirtualGateway gateway{"e10", std::move(link_a), std::move(link_b), config};
  gateway.finalize();

  int consumer_state = -1;
  gateway.link_b().set_emitter("msgstate", [&](const spec::MessageInstance& inst) {
    consumer_state = static_cast<int>(inst.elements()[1].fields[0].as_int());
  });

  sim::Simulator sim;
  const spec::MessageSpec& ms = *gateway.link_a().spec().message("msgroof");
  Instant end = Instant::origin();
  for (const auto& [at, change] : workload.events) {
    end = std::max(end, at);
    sim.schedule_at(at, [&gateway, &ms, &sim, change = change] {
      spec::MessageInstance inst = spec::make_instance(ms);
      inst.elements()[1].fields[0] = ta::Value{change};
      inst.elements()[1].fields[1] = ta::Value{sim.now()};
      gateway.on_input(0, inst, sim.now());
    });
  }
  for (Instant t = Instant::origin(); t <= end + 20_ms; t += 10_ms) {
    sim.schedule_at(t, [&gateway, &sim] { gateway.dispatch(sim.now()); });
  }
  sim.run_until(end + 30_ms);
  return consumer_state;
}

/// Naive relay: events pass a bounded FIFO drained once per 10ms; the
/// consumer integrates whatever arrives. Overflows drop events.
int run_naive(const Workload& workload, std::size_t queue_capacity) {
  sim::Simulator sim;
  std::deque<int> relay;
  int consumer_state = 0;
  Instant end = Instant::origin();
  for (const auto& [at, change] : workload.events) {
    end = std::max(end, at);
    sim.schedule_at(at, [&relay, queue_capacity, change = change] {
      if (relay.size() < queue_capacity) relay.push_back(change);  // else: dropped
    });
  }
  for (Instant t = Instant::origin(); t <= end + 20_ms; t += 10_ms) {
    sim.schedule_at(t, [&relay, &consumer_state] {
      if (!relay.empty()) {
        consumer_state += relay.front();
        relay.pop_front();
      }
    });
  }
  sim.run_until(end + 30_ms);
  while (!relay.empty()) {  // drain the tail
    consumer_state += relay.front();
    relay.pop_front();
  }
  return consumer_state;
}

}  // namespace

int main(int argc, char** argv) {
  Harness harness{argc, argv, "e10"};
  title("E10  event->state conversion at the gateway vs naive event relay",
        "converting to state semantics at the boundary keeps the consumer's "
        "state synchronized even when bursts exceed the relay capacity");

  row("%-6s %10s %14s %12s %14s %12s", "K", "true", "gateway", "gw error", "naive relay",
      "naive error");
  const Workload workload = make_workload(99);  // shared, read-only across cells
  ParallelSweep sweep{harness};
  for (const std::size_t capacity : {2u, 4u, 8u, 16u, 64u}) {
    char label[24];
    std::snprintf(label, sizeof label, "K=%zu", capacity);
    sweep.add(label, [&workload, capacity](Cell& cell) {
      const int gw = run_gateway(workload, capacity);
      const int naive = run_naive(workload, capacity);
      cell.row("%-6zu %10d %14d %12d %14d %12d", capacity, workload.true_final, gw,
               gw - workload.true_final, naive, naive - workload.true_final);
    });
  }
  sweep.run();
  row("");
  row("expected shape: the gateway's exported state matches the true roof");
  row("position for every relay capacity (the event->state conversion happens");
  row("before any queue can drop). The naive relay loses events whenever a");
  row("burst overflows its capacity K, and every lost event is a *permanent*");
  row("position error; only a capacity covering the worst-case backlog is safe.");
  return 0;
}
