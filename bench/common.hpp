// Shared scaffolding for the experiment harnesses (E1-E12, DESIGN.md
// section 3): canonical message specs, gateway rig construction, and
// table printing. Each bench binary regenerates one experiment and
// prints the rows recorded in EXPERIMENTS.md.
#pragma once

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/virtual_gateway.hpp"
#include "obs/export.hpp"
#include "obs/json.hpp"
#include "sim/simulator.hpp"
#include "spec/link_spec.hpp"
#include "spec/message.hpp"

namespace decos::bench {

/// Per-binary bench harness: parses the shared observability flags,
/// mirrors every printed row into BENCH_<id>.json (machine-readable
/// results next to the human table), and collects per-cell trace dumps.
///
///   --json-out FILE     result JSON path (default BENCH_<id>.json in cwd)
///   --trace-out FILE    JSONL dump of spans/records/metrics per cell
///   --metrics-out FILE  JSONL dump of the metrics snapshots alone
///
/// Span collection defaults to off for bench runs (collectors grow
/// per-message); configure() enables it on a cell's simulator only when
/// --trace-out was requested. Construct one Harness at the top of
/// main(); the destructor writes all files.
class Harness {
 public:
  Harness(int argc, char** argv, std::string id) : id_{std::move(id)} {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto value = [&]() -> std::string { return ++i < argc ? argv[i] : std::string{}; };
      if (arg == "--trace-out") {
        trace_out_ = value();
      } else if (arg == "--metrics-out") {
        metrics_out_ = value();
      } else if (arg == "--json-out") {
        json_out_ = value();
      }
    }
    if (json_out_.empty()) json_out_ = "BENCH_" + id_ + ".json";
    active() = this;
  }

  ~Harness() {
    finish();
    active() = nullptr;
  }

  Harness(const Harness&) = delete;
  Harness& operator=(const Harness&) = delete;

  /// The harness of this binary (set while one is alive), so helpers and
  /// cell functions can reach it without plumbing a parameter through.
  static Harness*& active() {
    static Harness* instance = nullptr;
    return instance;
  }

  bool tracing() const { return !trace_out_.empty(); }

  /// Apply the dump flags to a freshly built cell simulator.
  void configure(sim::Simulator& simulator) { simulator.spans().set_enabled(tracing()); }

  /// Capture a finished cell: spans + metrics (+ named recorders) into
  /// the trace dump, metrics into the metrics dump, and the cell's spans
  /// into the in-process accumulator (ids offset per cell exactly like
  /// obs::Dump::all_spans, so both readers see identical data).
  void capture(const std::string& label, sim::Simulator& simulator,
               std::vector<std::pair<std::string, const obs::TraceRecorder*>> recorders = {}) {
    if (tracing()) {
      obs::DumpWriter writer{trace_stream_};
      writer.begin_cell(label);
      writer.add_spans(simulator.spans());
      for (const auto& [name, recorder] : recorders)
        if (recorder != nullptr) writer.add_records(name, *recorder);
      writer.add_metrics(simulator.metrics().snapshot());

      std::uint64_t max_id = 0;
      for (const obs::Span& s : simulator.spans().spans()) {
        obs::Span copy = s;
        if (copy.trace_id != 0) copy.trace_id += span_offset_;
        if (copy.span_id != 0) copy.span_id += span_offset_;
        if (copy.parent_id != 0) copy.parent_id += span_offset_;
        max_id = std::max({max_id, s.trace_id, s.span_id});
        captured_spans_.push_back(std::move(copy));
      }
      span_offset_ += max_id;
    }
    if (!metrics_out_.empty()) {
      obs::DumpWriter writer{metrics_stream_};
      writer.begin_cell(label);
      writer.add_metrics(simulator.metrics().snapshot());
    }
  }

  /// Spans captured so far, ids made unique across cells.
  const std::vector<obs::Span>& captured_spans() const { return captured_spans_; }

  /// Attach an extra top-level field to BENCH_<id>.json.
  void set_json(const std::string& key, obs::json::Value value) {
    extra_.emplace_back(key, std::move(value));
  }

  /// Record one printed line (called by row()/title()).
  void note_line(std::string line) { lines_.push_back(std::move(line)); }

  /// Write BENCH_<id>.json and any requested dumps. Idempotent; also
  /// runs from the destructor.
  void finish() {
    if (finished_) return;
    finished_ = true;
    obs::json::Object o;
    o.emplace_back("bench", id_);
    {
      obs::json::Array rows;
      for (const std::string& line : lines_) rows.push_back(obs::json::Value{line});
      o.emplace_back("rows", std::move(rows));
    }
    for (auto& [key, value] : extra_) o.emplace_back(key, std::move(value));
    std::ofstream out{json_out_};
    out << obs::json::Value{std::move(o)}.dump() << "\n";
    if (tracing()) std::ofstream{trace_out_} << trace_stream_.str();
    if (!metrics_out_.empty()) std::ofstream{metrics_out_} << metrics_stream_.str();
  }

 private:
  std::string id_;
  std::string trace_out_;
  std::string metrics_out_;
  std::string json_out_;
  std::vector<std::string> lines_;
  std::vector<std::pair<std::string, obs::json::Value>> extra_;
  std::ostringstream trace_stream_;
  std::ostringstream metrics_stream_;
  std::vector<obs::Span> captured_spans_;
  std::uint64_t span_offset_ = 0;
  bool finished_ = false;
};

inline void emit_line(const std::string& line) {
  std::printf("%s\n", line.c_str());
  if (Harness* harness = Harness::active()) harness->note_line(line);
}

inline void title(const char* experiment, const char* claim) {
  std::printf("==================================================================\n");
  emit_line(experiment);
  emit_line(std::string{"claim: "} + claim);
  std::printf("==================================================================\n");
}

inline void row(const char* fmt, ...) {
  char buf[1024];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  emit_line(buf);
}

/// One-element state message (key id + `element` with value/timestamp).
inline spec::MessageSpec state_message(const std::string& message_name,
                                       const std::string& element_name, int id) {
  spec::MessageSpec ms{message_name};
  spec::ElementSpec key;
  key.name = "name";
  key.key = true;
  key.fields.push_back(spec::FieldSpec{"id", spec::FieldType::kInt16, 0, ta::Value{id}});
  ms.add_element(std::move(key));
  spec::ElementSpec payload;
  payload.name = element_name;
  payload.convertible = true;
  payload.fields.push_back(spec::FieldSpec{"value", spec::FieldType::kInt32, 0, std::nullopt});
  payload.fields.push_back(spec::FieldSpec{"t", spec::FieldType::kTimestamp, 0, std::nullopt});
  ms.add_element(std::move(payload));
  return ms;
}

inline spec::MessageInstance state_instance(const spec::MessageSpec& ms, std::int64_t value,
                                            Instant t) {
  spec::MessageInstance inst = spec::make_instance(ms);
  inst.elements()[1].fields[0] = ta::Value{value};
  inst.elements()[1].fields[1] = ta::Value{t};
  inst.set_send_time(t);
  return inst;
}

inline spec::PortSpec input_port(const std::string& message, spec::InfoSemantics semantics,
                                 spec::ControlParadigm paradigm, Duration period_or_zero,
                                 Duration tmin = Duration::zero(),
                                 Duration tmax = Duration::max(), std::size_t queue = 16) {
  spec::PortSpec ps;
  ps.message = message;
  ps.direction = spec::DataDirection::kInput;
  ps.semantics = semantics;
  ps.paradigm = paradigm;
  ps.period = period_or_zero;
  ps.min_interarrival = tmin;
  ps.max_interarrival = tmax;
  ps.queue_capacity = queue;
  return ps;
}

inline spec::PortSpec output_port(const std::string& message, spec::InfoSemantics semantics,
                                  spec::ControlParadigm paradigm, Duration period_or_zero,
                                  std::size_t queue = 16) {
  spec::PortSpec ps;
  ps.message = message;
  ps.direction = spec::DataDirection::kOutput;
  ps.semantics = semantics;
  ps.paradigm = paradigm;
  ps.period = period_or_zero;
  ps.queue_capacity = queue;
  return ps;
}

}  // namespace decos::bench
