// Shared scaffolding for the experiment harnesses (E1-E12, DESIGN.md
// section 3): canonical message specs, gateway rig construction, and
// table printing. Each bench binary regenerates one experiment and
// prints the rows recorded in EXPERIMENTS.md.
//
// Parallel sweep engine (S25): experiment cells are independent
// simulations, so a bench declares its cells on a ParallelSweep and the
// sweep executes them on a util::TaskPool (`--jobs N`). Each cell writes
// rows, trace dumps, and span batches into its own Cell buffers; the
// sweep then *commits* the buffers in submission order, so every output
// artifact -- the printed table, BENCH_<id>.json, --trace-out /
// --metrics-out JSONL, and the in-process span accumulator -- is
// byte-identical for --jobs 1 and --jobs N.
#pragma once

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/virtual_gateway.hpp"
#include "obs/export.hpp"
#include "obs/json.hpp"
#include "obs/telemetry.hpp"
#include "sim/simulator.hpp"
#include "spec/link_spec.hpp"
#include "spec/message.hpp"
#include "util/task_pool.hpp"

namespace decos::bench {

class Cell;

/// Per-binary bench harness: parses the shared observability flags,
/// mirrors every printed row into BENCH_<id>.json (machine-readable
/// results next to the human table), and collects per-cell trace dumps.
///
///   --json-out FILE     result JSON path (default BENCH_<id>.json in cwd)
///   --trace-out FILE    JSONL dump of spans/records/metrics per cell
///   --metrics-out FILE  JSONL dump of the metrics snapshots alone
///   --telemetry-out FILE      live windowed telemetry JSONL stream
///   --telemetry-window DUR    tumbling window length (e.g. 100ms, 50000us,
///                             plain integer = ns; default 100ms)
///   --telemetry-bounds FILE   declint JSON flow bounds checked live
///   --jobs N            worker threads for the cell sweep: whole
///                       experiment cells run concurrently (default:
///                       hardware concurrency, capped at 8)
///   --sim-jobs N        worker threads *inside* one simulation: the S28
///                       partitioned kernel runs partition event wheels
///                       on N workers between TDMA-lookahead barriers,
///                       byte-identical to --sim-jobs 1 (default 1;
///                       only benches that partition their cluster --
///                       e.g. E21 -- are affected)
///   --filter SUBSTR     only run cells whose label contains SUBSTR
///
/// A dump flag with a missing or empty value is a usage error (exit 2),
/// not a silent write to "".
///
/// Span collection defaults to off for bench runs (collectors grow
/// per-message); configure() enables it on a cell's simulator only when
/// --trace-out was requested. Construct one Harness at the top of
/// main(); the destructor writes all files.
/// An experiment-specific flag a bench handles itself. Declaring it
/// tells the Harness parser to accept (and skip) it; anything else
/// starting with '-' is a usage error, so a typo like --quikc fails
/// loudly instead of silently running the full sweep.
struct ExtraFlag {
  std::string name;
  bool takes_value = false;
};

class Harness {
 public:
  Harness(int argc, char** argv, std::string id, std::vector<ExtraFlag> extra_flags = {})
      : id_{std::move(id)}, extra_flags_{std::move(extra_flags)} {
    program_ = argc > 0 ? argv[0] : "bench";
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto value = [&]() -> std::string {
        if (i + 1 >= argc || argv[i + 1][0] == '\0')
          usage_error(arg + " requires a value");
        return argv[++i];
      };
      const auto extra = [&]() -> const ExtraFlag* {
        for (const ExtraFlag& flag : extra_flags_)
          if (flag.name == arg) return &flag;
        return nullptr;
      };
      if (arg == "--trace-out") {
        trace_out_ = value();
      } else if (arg == "--metrics-out") {
        metrics_out_ = value();
      } else if (arg == "--telemetry-out") {
        telemetry_out_ = value();
      } else if (arg == "--telemetry-window") {
        telemetry_window_ = parse_window(value());
      } else if (arg == "--telemetry-bounds") {
        telemetry_bounds_file_ = value();
      } else if (arg == "--json-out") {
        json_out_ = value();
      } else if (arg == "--filter") {
        filter_ = value();
      } else if (arg == "--jobs") {
        const std::string v = value();
        char* end = nullptr;
        const long n = std::strtol(v.c_str(), &end, 10);
        if (end == nullptr || *end != '\0' || n < 1)
          usage_error("--jobs expects a positive integer (cell-sweep workers), got '" + v + "'");
        jobs_ = static_cast<std::size_t>(n);
      } else if (arg == "--sim-jobs") {
        const std::string v = value();
        char* end = nullptr;
        const long n = std::strtol(v.c_str(), &end, 10);
        if (end == nullptr || *end != '\0' || n < 1)
          usage_error("--sim-jobs expects a positive integer (in-simulation partition workers), "
                      "got '" + v + "'");
        sim_jobs_ = static_cast<std::size_t>(n);
      } else if (const ExtraFlag* flag = extra()) {
        if (flag->takes_value && i + 1 >= argc) usage_error(arg + " requires a value");
        if (flag->takes_value) ++i;  // the bench re-parses argv itself
      } else if (!arg.empty() && arg[0] == '-') {
        usage_error("unknown option '" + arg + "'");
      }
    }
    if (json_out_.empty()) json_out_ = "BENCH_" + id_ + ".json";
    if (!telemetry_bounds_file_.empty()) {
      std::ifstream in{telemetry_bounds_file_};
      if (!in) usage_error("--telemetry-bounds: cannot open " + telemetry_bounds_file_);
      auto bounds = obs::load_flow_bounds(in);
      if (!bounds.ok())
        usage_error("--telemetry-bounds: " + telemetry_bounds_file_ + ": " +
                    bounds.error().message);
      telemetry_bounds_ = bounds.value();
    }
    active() = this;
  }

  ~Harness() {
    finish();
    active() = nullptr;
  }

  Harness(const Harness&) = delete;
  Harness& operator=(const Harness&) = delete;

  /// The harness of this binary (set while one is alive), so helpers and
  /// cell functions can reach it without plumbing a parameter through.
  static Harness*& active() {
    static Harness* instance = nullptr;
    return instance;
  }

  [[noreturn]] void usage_error(const std::string& message) const {
    std::string extra_usage;
    for (const ExtraFlag& flag : extra_flags_) {
      extra_usage += extra_usage.empty() ? "experiment flags:" : "";
      extra_usage += " " + flag.name + (flag.takes_value ? " VALUE" : "");
    }
    if (!extra_usage.empty()) extra_usage += "\n";
    std::fprintf(stderr,
                 "error: %s\n"
                 "usage: %s [--json-out FILE] [--trace-out FILE] [--metrics-out FILE]\n"
                 "       [--telemetry-out FILE] [--telemetry-window DUR]\n"
                 "       [--telemetry-bounds FILE] [--jobs N] [--sim-jobs N] [--filter SUBSTR]\n"
                 "  --jobs N      cell-sweep workers (cells in parallel, S25)\n"
                 "  --sim-jobs N  partition workers inside one simulation (S28)\n"
                 "%s"
                 "       (see EXPERIMENTS.md)\n",
                 message.c_str(), program_.c_str(), extra_usage.c_str());
    std::exit(2);
  }

  bool tracing() const { return !trace_out_.empty(); }
  bool metrics_dump() const { return !metrics_out_.empty(); }
  bool telemetry() const { return !telemetry_out_.empty(); }
  Duration telemetry_window() const { return telemetry_window_; }
  const std::vector<std::pair<std::string, std::int64_t>>& telemetry_bounds() const {
    return telemetry_bounds_;
  }

  /// Worker threads for the cell sweep (whole cells in parallel).
  std::size_t jobs() const { return jobs_; }

  /// Worker threads inside one simulation (S28 partitioned kernel);
  /// distinct from --jobs, which parallelizes across cells. 1 = inline.
  std::size_t sim_jobs() const { return sim_jobs_; }

  /// Cell-label filter; cells whose label does not contain it are
  /// skipped entirely (not run, not printed).
  const std::string& filter() const { return filter_; }
  bool matches(const std::string& label) const {
    return filter_.empty() || label.find(filter_) != std::string::npos;
  }

  /// Apply the dump flags to a freshly built cell simulator. Telemetry
  /// needs the span stream (the aggregator is the collector's sink);
  /// telemetry-only runs bound span retention to a small ring since the
  /// sink folds each span at emission and never reads the backlog.
  void configure(sim::Simulator& simulator) {
    simulator.spans().set_enabled(tracing() || telemetry());
    if (telemetry() && !tracing()) simulator.spans().set_capacity(4096);
  }

  /// Enable the streaming aggregator on a serial-path simulator: the
  /// stream goes straight into the harness-level telemetry buffer
  /// (parallel cells use Cell::configure, which buffers per cell).
  void configure_telemetry(const std::string& label, sim::Simulator& simulator) {
    if (!telemetry()) return;
    obs::TelemetryConfig config;
    config.window = telemetry_window_;
    obs::WindowAggregator& aggregator = simulator.enable_telemetry(config);
    telemetry_sinks_.push_back(std::make_unique<obs::OstreamTelemetrySink>(telemetry_stream_));
    aggregator.set_sink(telemetry_sinks_.back().get());
    aggregator.begin_stream(label);
    for (const auto& [key, bound] : telemetry_bounds_) aggregator.set_bound(key, bound);
  }

  /// Capture a finished cell: spans + metrics (+ named recorders) into
  /// the trace dump, metrics into the metrics dump, and the cell's spans
  /// into the in-process accumulator (ids offset per cell exactly like
  /// obs::Dump::all_spans, so both readers see identical data).
  /// Serial-path variant; parallel cells go through Cell::capture.
  void capture(const std::string& label, sim::Simulator& simulator,
               std::vector<std::pair<std::string, const obs::TraceRecorder*>> recorders = {}) {
    if (telemetry() && simulator.telemetry() != nullptr) simulator.telemetry()->flush();
    if (tracing()) {
      obs::DumpWriter writer{trace_stream_};
      writer.begin_cell(label);
      writer.add_spans(simulator.spans());
      for (const auto& [name, recorder] : recorders)
        if (recorder != nullptr) writer.add_records(name, *recorder);
      writer.add_metrics(simulator.metrics().snapshot());
      merge_span_batch(simulator.spans().spans());
    }
    if (metrics_dump()) {
      obs::DumpWriter writer{metrics_stream_};
      writer.begin_cell(label);
      writer.add_metrics(simulator.metrics().snapshot());
    }
  }

  /// Spans captured so far, ids made unique across cells.
  const std::vector<obs::Span>& captured_spans() const { return captured_spans_; }

  /// Attach an extra top-level field to BENCH_<id>.json.
  void set_json(const std::string& key, obs::json::Value value) {
    extra_.emplace_back(key, std::move(value));
  }

  /// Record one printed line (called by row()/title()).
  void note_line(std::string line) { lines_.push_back(std::move(line)); }

  /// Fold one finished cell's buffers into the harness, in order:
  /// print + note its rows, append its dump streams, merge its span
  /// batches with the same id-offset scheme as capture(). Called by
  /// ParallelSweep::run() on the main thread only.
  void commit(Cell& cell);

  /// Write BENCH_<id>.json and any requested dumps. Idempotent; also
  /// runs from the destructor.
  void finish() {
    if (finished_) return;
    finished_ = true;
    obs::json::Object o;
    o.emplace_back("bench", id_);
    {
      obs::json::Array rows;
      for (const std::string& line : lines_) rows.push_back(obs::json::Value{line});
      o.emplace_back("rows", std::move(rows));
    }
    for (auto& [key, value] : extra_) o.emplace_back(key, std::move(value));
    std::ofstream out{json_out_};
    out << obs::json::Value{std::move(o)}.dump() << "\n";
    if (tracing()) std::ofstream{trace_out_} << trace_stream_.str();
    if (metrics_dump()) std::ofstream{metrics_out_} << metrics_stream_.str();
    if (telemetry()) std::ofstream{telemetry_out_} << telemetry_stream_.str();
  }

 private:
  /// Append one cell's spans to the accumulator, offsetting ids so they
  /// stay unique across cells (identical scheme to obs::Dump::all_spans).
  template <typename SpanRange>
  void merge_span_batch(const SpanRange& spans) {
    std::uint64_t max_id = 0;
    for (const obs::Span& s : spans) {
      obs::Span copy = s;
      if (copy.trace_id != 0) copy.trace_id += span_offset_;
      if (copy.span_id != 0) copy.span_id += span_offset_;
      if (copy.parent_id != 0) copy.parent_id += span_offset_;
      max_id = std::max({max_id, s.trace_id, s.span_id});
      captured_spans_.push_back(std::move(copy));
    }
    span_offset_ += max_id;
  }

  /// Parse a window length: plain integer = ns, or with a ns/us/ms/s
  /// suffix. Zero or negative is a usage error.
  Duration parse_window(const std::string& text) const {
    char* end = nullptr;
    const long long n = std::strtoll(text.c_str(), &end, 10);
    std::int64_t scale = 1;
    const std::string suffix = end != nullptr ? std::string{end} : std::string{};
    if (suffix == "us")
      scale = 1'000;
    else if (suffix == "ms")
      scale = 1'000'000;
    else if (suffix == "s")
      scale = 1'000'000'000;
    else if (!suffix.empty() && suffix != "ns")
      usage_error("--telemetry-window: unknown suffix '" + suffix + "'");
    if (end == text.c_str() || n <= 0)
      usage_error("--telemetry-window expects a positive duration, got '" + text + "'");
    return Duration::nanoseconds(n * scale);
  }

  std::string id_;
  std::vector<ExtraFlag> extra_flags_;
  std::string program_;
  std::string trace_out_;
  std::string metrics_out_;
  std::string telemetry_out_;
  std::string telemetry_bounds_file_;
  Duration telemetry_window_ = Duration::milliseconds(100);
  std::vector<std::pair<std::string, std::int64_t>> telemetry_bounds_;
  std::string json_out_;
  std::string filter_;
  std::size_t jobs_ = util::TaskPool::default_workers();
  std::size_t sim_jobs_ = 1;
  std::vector<std::string> lines_;
  std::vector<std::pair<std::string, obs::json::Value>> extra_;
  std::ostringstream trace_stream_;
  std::ostringstream metrics_stream_;
  std::ostringstream telemetry_stream_;
  std::vector<std::unique_ptr<obs::OstreamTelemetrySink>> telemetry_sinks_;
  std::vector<obs::Span> captured_spans_;
  std::uint64_t span_offset_ = 0;
  bool finished_ = false;
};

/// Per-cell output sink for parallel sweeps. A cell function receives a
/// Cell& and writes rows / trace captures into it instead of the global
/// helpers; everything is buffered thread-locally (no shared mutable
/// state) and committed by the sweep in submission order.
class Cell {
 public:
  Cell(Harness& harness, std::string label) : harness_{&harness}, label_{std::move(label)} {}

  Cell(const Cell&) = delete;
  Cell& operator=(const Cell&) = delete;

  const std::string& label() const { return label_; }

  /// Buffered printf-style table row (parallel-safe counterpart of
  /// bench::row()).
  void row(const char* fmt, ...) __attribute__((format(printf, 2, 3))) {
    char buf[1024];
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(buf, sizeof buf, fmt, args);
    va_end(args);
    lines_.emplace_back(buf);
  }

  /// Buffered raw line.
  void line(std::string text) { lines_.push_back(std::move(text)); }

  /// Apply the dump flags to a freshly built cell simulator; with
  /// --telemetry-out this also enables the streaming aggregator, headed
  /// by this cell's label, writing into a cell-private buffer (each
  /// simulator gets its own buffer so multi-simulator cells cannot
  /// interleave lines). The commit appends buffers in submission order,
  /// keeping the merged stream byte-identical at any --jobs.
  void configure(sim::Simulator& simulator) {
    harness_->configure(simulator);
    if (harness_->telemetry()) {
      obs::TelemetryConfig config;
      config.window = harness_->telemetry_window();
      obs::WindowAggregator& aggregator = simulator.enable_telemetry(config);
      telemetry_.push_back(std::make_unique<CellTelemetry>());
      aggregator.set_sink(&telemetry_.back()->sink);
      aggregator.begin_stream(label_);
      for (const auto& [key, bound] : harness_->telemetry_bounds())
        aggregator.set_bound(key, bound);
    }
  }

  /// Buffered counterpart of Harness::capture(): identical bytes into
  /// this cell's private streams, spans kept raw (the commit applies the
  /// id offsets, which must accumulate in submission order).
  void capture(const std::string& label, sim::Simulator& simulator,
               std::vector<std::pair<std::string, const obs::TraceRecorder*>> recorders = {}) {
    if (harness_->telemetry() && simulator.telemetry() != nullptr)
      simulator.telemetry()->flush();
    if (harness_->tracing()) {
      obs::DumpWriter writer{trace_stream_};
      writer.begin_cell(label);
      writer.add_spans(simulator.spans());
      for (const auto& [name, recorder] : recorders)
        if (recorder != nullptr) writer.add_records(name, *recorder);
      writer.add_metrics(simulator.metrics().snapshot());
      const auto& spans = simulator.spans().spans();
      span_batches_.emplace_back(spans.begin(), spans.end());
    }
    if (harness_->metrics_dump()) {
      obs::DumpWriter writer{metrics_stream_};
      writer.begin_cell(label);
      writer.add_metrics(simulator.metrics().snapshot());
    }
  }

 private:
  friend class Harness;

  /// One simulator's telemetry buffer + sink (address-stable; the
  /// aggregator holds a raw pointer to the sink).
  struct CellTelemetry {
    std::ostringstream stream;
    obs::OstreamTelemetrySink sink{stream};
  };

  Harness* harness_;
  std::string label_;
  std::vector<std::string> lines_;
  std::ostringstream trace_stream_;
  std::ostringstream metrics_stream_;
  std::vector<std::unique_ptr<CellTelemetry>> telemetry_;
  std::vector<std::vector<obs::Span>> span_batches_;
};

inline void Harness::commit(Cell& cell) {
  for (const std::string& line : cell.lines_) {
    std::printf("%s\n", line.c_str());
    note_line(line);
  }
  trace_stream_ << cell.trace_stream_.str();
  metrics_stream_ << cell.metrics_stream_.str();
  for (const std::unique_ptr<Cell::CellTelemetry>& t : cell.telemetry_)
    telemetry_stream_ << t->stream.str();
  for (const std::vector<obs::Span>& batch : cell.span_batches_) merge_span_batch(batch);
}

/// Deterministic parallel cell runner. Declare cells with add(); run()
/// executes them on `--jobs` workers and commits their buffered output
/// in submission order, so results are byte-identical at any job count.
/// Cells filtered out by `--filter` are never added (add() returns
/// false, letting benches skip summary rows that depend on them). A cell
/// that throws fails the whole sweep: run() rethrows the first exception
/// after the pool drains, matching serial failure behavior.
class ParallelSweep {
 public:
  explicit ParallelSweep(Harness& harness) : harness_{harness} {}

  /// Queue one cell. Returns false (and drops the cell) when the label
  /// does not match --filter.
  bool add(std::string label, std::function<void(Cell&)> fn) {
    if (!harness_.matches(label)) return false;
    entries_.push_back(Entry{std::make_unique<Cell>(harness_, std::move(label)), std::move(fn)});
    return true;
  }

  /// Cells currently queued (post-filter).
  std::size_t size() const { return entries_.size(); }

  /// Execute all queued cells, commit in submission order, clear the
  /// queue. Reusable: benches with several row groups call run() once
  /// per group (each run() is a barrier, keeping group order).
  void run() {
    util::TaskPool pool{harness_.jobs()};
    for (Entry& e : entries_) {
      Cell* cell = e.cell.get();
      std::function<void(Cell&)>* fn = &e.fn;
      pool.submit([cell, fn] { (*fn)(*cell); });
    }
    pool.wait();
    for (Entry& e : entries_) harness_.commit(*e.cell);
    entries_.clear();
  }

 private:
  struct Entry {
    std::unique_ptr<Cell> cell;
    std::function<void(Cell&)> fn;
  };

  Harness& harness_;
  std::vector<Entry> entries_;
};

inline void emit_line(const std::string& line) {
  std::printf("%s\n", line.c_str());
  if (Harness* harness = Harness::active()) harness->note_line(line);
}

inline void title(const char* experiment, const char* claim) {
  std::printf("==================================================================\n");
  emit_line(experiment);
  emit_line(std::string{"claim: "} + claim);
  std::printf("==================================================================\n");
}

inline void row(const char* fmt, ...) {
  char buf[1024];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  emit_line(buf);
}

/// One-element state message (key id + `element` with value/timestamp).
inline spec::MessageSpec state_message(const std::string& message_name,
                                       const std::string& element_name, int id) {
  spec::MessageSpec ms{message_name};
  spec::ElementSpec key;
  key.name = "name";
  key.key = true;
  key.fields.push_back(spec::FieldSpec{"id", spec::FieldType::kInt16, 0, ta::Value{id}});
  ms.add_element(std::move(key));
  spec::ElementSpec payload;
  payload.name = element_name;
  payload.convertible = true;
  payload.fields.push_back(spec::FieldSpec{"value", spec::FieldType::kInt32, 0, std::nullopt});
  payload.fields.push_back(spec::FieldSpec{"t", spec::FieldType::kTimestamp, 0, std::nullopt});
  ms.add_element(std::move(payload));
  return ms;
}

inline spec::MessageInstance state_instance(const spec::MessageSpec& ms, std::int64_t value,
                                            Instant t) {
  spec::MessageInstance inst = spec::make_instance(ms);
  inst.elements()[1].fields[0] = ta::Value{value};
  inst.elements()[1].fields[1] = ta::Value{t};
  inst.set_send_time(t);
  return inst;
}

inline spec::PortSpec input_port(const std::string& message, spec::InfoSemantics semantics,
                                 spec::ControlParadigm paradigm, Duration period_or_zero,
                                 Duration tmin = Duration::zero(),
                                 Duration tmax = Duration::max(), std::size_t queue = 16) {
  spec::PortSpec ps;
  ps.message = message;
  ps.direction = spec::DataDirection::kInput;
  ps.semantics = semantics;
  ps.paradigm = paradigm;
  ps.period = period_or_zero;
  ps.min_interarrival = tmin;
  ps.max_interarrival = tmax;
  ps.queue_capacity = queue;
  return ps;
}

inline spec::PortSpec output_port(const std::string& message, spec::InfoSemantics semantics,
                                  spec::ControlParadigm paradigm, Duration period_or_zero,
                                  std::size_t queue = 16) {
  spec::PortSpec ps;
  ps.message = message;
  ps.direction = spec::DataDirection::kOutput;
  ps.semantics = semantics;
  ps.paradigm = paradigm;
  ps.period = period_or_zero;
  ps.queue_capacity = queue;
  return ps;
}

}  // namespace decos::bench
