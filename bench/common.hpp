// Shared scaffolding for the experiment harnesses (E1-E12, DESIGN.md
// section 3): canonical message specs, gateway rig construction, and
// table printing. Each bench binary regenerates one experiment and
// prints the rows recorded in EXPERIMENTS.md.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <optional>
#include <string>

#include "core/virtual_gateway.hpp"
#include "spec/link_spec.hpp"
#include "spec/message.hpp"

namespace decos::bench {

inline void title(const char* experiment, const char* claim) {
  std::printf("==================================================================\n");
  std::printf("%s\n", experiment);
  std::printf("claim: %s\n", claim);
  std::printf("==================================================================\n");
}

inline void row(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vprintf(fmt, args);
  va_end(args);
  std::printf("\n");
}

/// One-element state message (key id + `element` with value/timestamp).
inline spec::MessageSpec state_message(const std::string& message_name,
                                       const std::string& element_name, int id) {
  spec::MessageSpec ms{message_name};
  spec::ElementSpec key;
  key.name = "name";
  key.key = true;
  key.fields.push_back(spec::FieldSpec{"id", spec::FieldType::kInt16, 0, ta::Value{id}});
  ms.add_element(std::move(key));
  spec::ElementSpec payload;
  payload.name = element_name;
  payload.convertible = true;
  payload.fields.push_back(spec::FieldSpec{"value", spec::FieldType::kInt32, 0, std::nullopt});
  payload.fields.push_back(spec::FieldSpec{"t", spec::FieldType::kTimestamp, 0, std::nullopt});
  ms.add_element(std::move(payload));
  return ms;
}

inline spec::MessageInstance state_instance(const spec::MessageSpec& ms, std::int64_t value,
                                            Instant t) {
  spec::MessageInstance inst = spec::make_instance(ms);
  inst.elements()[1].fields[0] = ta::Value{value};
  inst.elements()[1].fields[1] = ta::Value{t};
  inst.set_send_time(t);
  return inst;
}

inline spec::PortSpec input_port(const std::string& message, spec::InfoSemantics semantics,
                                 spec::ControlParadigm paradigm, Duration period_or_zero,
                                 Duration tmin = Duration::zero(),
                                 Duration tmax = Duration::max(), std::size_t queue = 16) {
  spec::PortSpec ps;
  ps.message = message;
  ps.direction = spec::DataDirection::kInput;
  ps.semantics = semantics;
  ps.paradigm = paradigm;
  ps.period = period_or_zero;
  ps.min_interarrival = tmin;
  ps.max_interarrival = tmax;
  ps.queue_capacity = queue;
  return ps;
}

inline spec::PortSpec output_port(const std::string& message, spec::InfoSemantics semantics,
                                  spec::ControlParadigm paradigm, Duration period_or_zero,
                                  std::size_t queue = 16) {
  spec::PortSpec ps;
  ps.message = message;
  ps.direction = spec::DataDirection::kOutput;
  ps.semantics = semantics;
  ps.paradigm = paradigm;
  ps.period = period_or_zero;
  ps.queue_capacity = queue;
  return ps;
}

}  // namespace decos::bench
