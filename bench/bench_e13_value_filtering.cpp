// E13 -- Value-domain filtering at the gateway (paper Section III-B.1):
// the second half of selective redirection's filtering specification:
// "In the value domain, the gateway checks message contents with user
// data and control information."
//
// A sensor stream is corrupted with a swept value-fault rate (bit flips
// in the dynamic fields, a job-level value-domain failure per the fault
// hypothesis, Section II-D). The gateway enforces a plausibility window
// on the physical quantity. We measure how many corrupted samples reach
// DAS B with the filter on vs off, and the worst absolute error that
// survives (undetectably in-range corruptions are the residual risk).
#include <cstdlib>

#include "common.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

using namespace decos;
using namespace decos::bench;
using namespace decos::literals;

namespace {

constexpr int kSamples = 20000;
constexpr std::int64_t kTrueValue = 5000;  // nominal sensor reading
constexpr std::int64_t kWindow = 1000;     // plausibility half-window

void run(Cell& cell, double rate, bool filter_on) {
  spec::LinkSpec link_a{"dasA"};
  link_a.add_message(state_message("msgA", "reading", 1));
  link_a.add_port(input_port("msgA", spec::InfoSemantics::kState,
                             spec::ControlParadigm::kTimeTriggered, 10_ms, 1_us,
                             Duration::seconds(3600)));
  if (filter_on) {
    link_a.set_filter("msgA", ta::parse_expression("value >= 4000 && value <= 6000").value());
  }
  spec::LinkSpec link_b{"dasB"};
  link_b.add_message(state_message("msgB", "reading", 2));
  link_b.add_port(output_port("msgB", spec::InfoSemantics::kState,
                              spec::ControlParadigm::kEventTriggered, Duration::zero()));
  core::VirtualGateway gateway{"e13", std::move(link_a), std::move(link_b)};
  gateway.finalize();

  // The bench drives the gateway directly (no event loop); the
  // simulator only hosts the metrics registry and span collector.
  sim::Simulator sim;
  cell.configure(sim);
  gateway.bind_observability(sim.metrics(), sim.spans());

  std::uint64_t corrupted_sent = 0;
  std::uint64_t corrupted_crossed = 0;
  std::int64_t worst = 0;
  gateway.link_b().set_emitter("msgB", [&](const spec::MessageInstance& inst) {
    const std::int64_t v = inst.elements()[1].fields[0].as_int();
    if (v != kTrueValue) {
      ++corrupted_crossed;
      worst = std::max<std::int64_t>(worst, std::llabs(v - kTrueValue));
    }
  });

  Rng rng{77};
  const spec::MessageSpec& ms = *gateway.link_a().spec().message("msgA");
  Instant t = Instant::origin();
  for (int i = 0; i < kSamples; ++i) {
    t += 10_ms;
    std::int64_t v = kTrueValue;
    if (rng.bernoulli(rate)) {
      ++corrupted_sent;
      v = kTrueValue ^ rng.uniform_int(1, 1 << 20);  // bit-flip corruption
    }
    gateway.on_input(0, state_instance(ms, v, t), t);
  }

  cell.capture(cell.label(), sim, {{"gw:e13", &gateway.trace()}});

  cell.row("%-8s %-9.2f %10llu %10llu %10llu %14lld", filter_on ? "on" : "off(abl)", rate,
           static_cast<unsigned long long>(corrupted_sent),
           static_cast<unsigned long long>(gateway.stats().blocked_value),
           static_cast<unsigned long long>(corrupted_crossed), static_cast<long long>(worst));
}

}  // namespace

int main(int argc, char** argv) {
  Harness harness{argc, argv, "e13"};
  title("E13  value-domain filtering: plausibility windows at the gateway",
        "the gateway blocks value-domain failures (corrupted contents) from "
        "crossing; only in-window corruptions survive, bounding the error");

  row("%-8s %-9s %10s %10s %10s %14s", "filter", "faultrate", "corrupted", "blocked",
      "crossed", "worst error");
  ParallelSweep sweep{harness};
  for (const double rate : {0.0, 0.01, 0.05, 0.2}) {
    for (const bool filter_on : {true, false}) {
      char label[64];
      std::snprintf(label, sizeof label, "rate=%.2f filter=%d", rate, filter_on ? 1 : 0);
      sweep.add(label, [rate, filter_on](Cell& cell) { run(cell, rate, filter_on); });
    }
  }
  sweep.run();
  row("");
  row("expected shape: with the filter on, nearly all corruptions are blocked");
  row("and the worst error that crosses is bounded by the plausibility window");
  row("(+-1000); with the filter off every corruption crosses with errors up to");
  row("the full bit-flip magnitude (~10^6).");
  return 0;
}
