// E19 -- Scalability of the integrated architecture: "The DECOS
// architecture divides the overall system into a set of
// nearly-independent distributed application subsystems, which share the
// node computers and the physical network" (abstract). As DAS pairs --
// each with its own pair of virtual networks and its own hidden gateway
// -- are packed onto a fixed 8-node cluster, the simulated system must
// keep every gateway forwarding at full rate; we also report the
// simulator's wall-clock cost per simulated second (the practical limit
// for laptop-scale studies with this reproduction).
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <memory>
#include <vector>

#include "common.hpp"
#include "core/gateway_job.hpp"
#include "core/wiring.hpp"
#include "platform/cluster.hpp"
#include "vn/et_vn.hpp"
#include "vn/tt_vn.hpp"

using namespace decos;
using namespace decos::bench;
using namespace decos::literals;

namespace {

constexpr Duration kRun = 5_s;
constexpr std::size_t kNodes = 8;

struct Outcome {
  std::uint64_t forwarded_total = 0;
  double forwarded_per_gateway = 0.0;
  double schedule_rate = 0.0;  // messages per gateway the TDMA schedule allows
  double wall_ms_per_sim_s = 0.0;  // thread-CPU ms per simulated second (see below)
  std::uint64_t sim_events = 0;
};

/// Per-cell simulation cost on this thread's CPU clock. Cells of a
/// parallel sweep time-share cores, so wall time would measure the
/// scheduler, not the simulator; CLOCK_THREAD_CPUTIME_ID charges each
/// cell exactly the cycles its own simulation burned, making the
/// committed per-cell numbers comparable at any --jobs. (The JSON key
/// stays `wall_ms_per_sim_s` for check_bench_regression compatibility;
/// sweep-level speedup is still measured on the real wall clock.)
double thread_cpu_ms() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) * 1e3 + static_cast<double>(ts.tv_nsec) / 1e6;
}

/// `cell` null = untimed repeat / serial-reference run (no dump capture).
Outcome run(Cell* cell, std::size_t das_pairs) {
  platform::ClusterConfig config;
  config.nodes = kNodes;
  // Each DAS pair k gets a TT VN (producer node k%8) and an ET VN
  // (gateway host node (k+1)%8).
  for (std::size_t k = 0; k < das_pairs; ++k) {
    const auto producer = static_cast<tt::NodeId>(k % kNodes);
    const auto host = static_cast<tt::NodeId>((k + 1) % kNodes);
    config.allocations.push_back(
        {static_cast<tt::VnId>(1 + 2 * k), "dasA" + std::to_string(k), 32, {producer}});
    config.allocations.push_back(
        {static_cast<tt::VnId>(2 + 2 * k), "dasB" + std::to_string(k), 32, {host}});
  }
  config.round_length = Duration::milliseconds(10) * static_cast<std::int64_t>(
                            std::max<std::size_t>(1, das_pairs / 4));
  platform::Cluster cluster{config};

  std::vector<std::unique_ptr<vn::TtVirtualNetwork>> tt_vns;
  std::vector<std::unique_ptr<vn::EtVirtualNetwork>> et_vns;
  std::vector<std::unique_ptr<core::VirtualGateway>> gateways;
  std::vector<platform::Partition*> partitions(kNodes, nullptr);

  for (std::size_t k = 0; k < das_pairs; ++k) {
    const auto producer = static_cast<tt::NodeId>(k % kNodes);
    const auto host = static_cast<tt::NodeId>((k + 1) % kNodes);
    const auto vn_a_id = static_cast<tt::VnId>(1 + 2 * k);
    const auto vn_b_id = static_cast<tt::VnId>(2 + 2 * k);

    tt_vns.push_back(std::make_unique<vn::TtVirtualNetwork>("tt" + std::to_string(k), vn_a_id));
    auto& vn_a = *tt_vns.back();
    vn_a.register_message(state_message("msgA" + std::to_string(k), "img", 1));
    et_vns.push_back(std::make_unique<vn::EtVirtualNetwork>("et" + std::to_string(k), vn_b_id));
    auto& vn_b = *et_vns.back();

    spec::LinkSpec link_a{"dasA" + std::to_string(k)};
    link_a.add_message(state_message("msgA" + std::to_string(k), "img", 1));
    link_a.add_port(input_port("msgA" + std::to_string(k), spec::InfoSemantics::kState,
                               spec::ControlParadigm::kTimeTriggered, config.round_length, 1_us,
                               Duration::seconds(3600)));
    spec::LinkSpec link_b{"dasB" + std::to_string(k)};
    link_b.add_message(state_message("msgB" + std::to_string(k), "img", 2));
    link_b.add_port(output_port("msgB" + std::to_string(k), spec::InfoSemantics::kState,
                                spec::ControlParadigm::kEventTriggered, Duration::zero()));
    gateways.push_back(std::make_unique<core::VirtualGateway>("gw" + std::to_string(k),
                                                              std::move(link_a),
                                                              std::move(link_b)));
    auto& gw = *gateways.back();
    gw.finalize();
    core::wire_tt_link(gw, 0, vn_a, cluster.controller(host), {});
    core::wire_et_link(gw, 1, vn_b, cluster.controller(host), cluster.vn_slots(vn_b_id, host));
    if (partitions[host] == nullptr) {
      partitions[host] = &cluster.component(host).add_partition(
          "gw", "architecture", 0_ms, 2_ms);
    }
    partitions[host]->add_job(std::make_unique<core::GatewayJob>(gw));

    // Producer job for this DAS pair.
    platform::Partition& pp = cluster.component(producer).add_partition(
        "p" + std::to_string(k), "dasA" + std::to_string(k),
        3_ms + Duration::microseconds(static_cast<std::int64_t>(k) * 300), 200_us);
    platform::FunctionJob& job = pp.add_function_job(
        "prod" + std::to_string(k), [&vn_a, k](platform::FunctionJob& self, Instant now) {
          self.ports()[0]->deposit(
              state_instance(*vn_a.message_spec("msgA" + std::to_string(k)),
                             static_cast<std::int64_t>(self.activations()), now),
              now);
        });
    job.set_execution_time(10_us);
    vn_a.attach_sender(cluster.controller(producer), job.add_port(output_port(
                           "msgA" + std::to_string(k), spec::InfoSemantics::kState,
                           spec::ControlParadigm::kTimeTriggered, config.round_length)),
                       cluster.vn_slots(vn_a_id, producer));
  }

  if (cell != nullptr) cell->configure(cluster.simulator());
  const double cpu_start = thread_cpu_ms();
  cluster.start();
  cluster.run_for(kRun);
  const double cpu_end = thread_cpu_ms();
  if (cell != nullptr)
    cell->capture("pairs=" + std::to_string(das_pairs), cluster.simulator());

  Outcome outcome;
  for (const auto& gw : gateways) outcome.forwarded_total += gw->stats().messages_constructed;
  outcome.forwarded_per_gateway =
      static_cast<double>(outcome.forwarded_total) / static_cast<double>(das_pairs);
  outcome.wall_ms_per_sim_s = (cpu_end - cpu_start) / kRun.as_seconds();
  outcome.sim_events = cluster.simulator().dispatched();
  outcome.schedule_rate = static_cast<double>(kRun / config.round_length);
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  Harness harness{argc, argv, "e19",
                  {{"--quick"}, {"--no-wall"}, {"--compare-serial"}, {"--repeats", true}}};
  // --quick: CI smoke shape (fewer cells, fewer repeats); --repeats N:
  // per-cell cost is min-of-N to suppress scheduler noise (the simulated
  // outcome columns are bit-identical across repeats); --no-wall: omit
  // every timing-derived number so the complete output is byte-
  // deterministic (the parallel-sweep determinism test); --compare-serial:
  // additionally re-run the whole sweep inline on one thread and record
  // both wall clocks in BENCH_e19.json (the S25 before/after numbers).
  bool quick = false;
  bool no_wall = false;
  bool compare_serial = false;
  int repeats = 3;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") quick = true;
    if (arg == "--no-wall") no_wall = true;
    if (arg == "--compare-serial") compare_serial = true;
    if (arg == "--repeats" && i + 1 < argc) repeats = std::atoi(argv[++i]);
  }
  if (repeats < 1) repeats = 1;

  title("E19  packing DAS pairs onto a fixed 8-node cluster",
        "every added DAS pair (2 VNs + 1 hidden gateway) keeps forwarding at "
        "full rate; cost grows linearly with the number of integrated subsystems");

  row("%-10s %12s %14s %12s %14s %16s", "DAS pairs", "forwarded", "fwd/gateway",
      "sched rate", "sim events", "cpu ms/sim s");
  const std::vector<std::size_t> cells =
      quick ? std::vector<std::size_t>{1, 4} : std::vector<std::size_t>{1, 2, 4, 8, 16};

  // Every (pairs, repeat) combination is an independent task, so the
  // sweep load-balances across workers even with few distinct cells.
  // Repeat 0 owns the row and the trace capture; the extra repeats only
  // contribute CPU-time samples for the min.
  std::vector<Outcome> outcomes(cells.size());
  std::vector<std::vector<double>> cpu_ms(cells.size());
  std::vector<bool> ran(cells.size(), false);
  ParallelSweep sweep{harness};
  const auto sweep_start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < cells.size(); ++i) {
    cpu_ms[i].assign(static_cast<std::size_t>(repeats), 0.0);
    for (int r = 0; r < repeats; ++r) {
      std::string label = "pairs=" + std::to_string(cells[i]);
      if (r > 0) label += " rep=" + std::to_string(r);
      const bool added =
          sweep.add(label, [&outcomes, &cpu_ms, i, r, pairs = cells[i]](Cell& cell) {
            const Outcome o = run(r == 0 ? &cell : nullptr, pairs);
            cpu_ms[i][static_cast<std::size_t>(r)] = o.wall_ms_per_sim_s;
            if (r == 0) outcomes[i] = o;
          });
      if (r == 0) ran[i] = added;
    }
  }
  sweep.run();
  const double sweep_wall_ms = std::chrono::duration<double, std::milli>(
                                   std::chrono::steady_clock::now() - sweep_start)
                                   .count();

  obs::json::Object wall_json;
  obs::json::Object events_json;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (!ran[i]) continue;
    const Outcome& o = outcomes[i];
    const double best_cpu = *std::min_element(cpu_ms[i].begin(), cpu_ms[i].end());
    if (no_wall) {
      row("%-10zu %12llu %14.0f %12.0f %14llu %16s", cells[i],
          static_cast<unsigned long long>(o.forwarded_total), o.forwarded_per_gateway,
          o.schedule_rate, static_cast<unsigned long long>(o.sim_events), "-");
    } else {
      row("%-10zu %12llu %14.0f %12.0f %14llu %16.1f", cells[i],
          static_cast<unsigned long long>(o.forwarded_total), o.forwarded_per_gateway,
          o.schedule_rate, static_cast<unsigned long long>(o.sim_events), best_cpu);
      wall_json.emplace_back(std::to_string(cells[i]), best_cpu);
    }
    events_json.emplace_back(std::to_string(cells[i]),
                             static_cast<std::int64_t>(o.sim_events));
  }
  if (!no_wall) {
    harness.set_json("wall_ms_per_sim_s", obs::json::Value{std::move(wall_json)});
    harness.set_json("jobs", static_cast<std::int64_t>(harness.jobs()));
    harness.set_json("sweep_wall_ms", sweep_wall_ms);
  }
  harness.set_json("sim_events", obs::json::Value{std::move(events_json)});

  if (compare_serial && !no_wall) {
    // Serial reference: the identical work list, inline on this thread.
    const auto serial_start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (!ran[i]) continue;
      for (int r = 0; r < repeats; ++r) run(nullptr, cells[i]);
    }
    const double serial_wall_ms = std::chrono::duration<double, std::milli>(
                                      std::chrono::steady_clock::now() - serial_start)
                                      .count();
    harness.set_json("sweep_wall_ms_serial", serial_wall_ms);
    row("");
    row("sweep wall clock: %.0f ms at --jobs %zu vs %.0f ms serial (%.2fx)", sweep_wall_ms,
        harness.jobs(), serial_wall_ms, serial_wall_ms / sweep_wall_ms);
  }
  row("");
  row("expected shape: every gateway forwards at exactly its schedule rate");
  row("(fwd/gateway == sched rate; the round stretches as more slots are packed");
  row("in, which is the deliberate bandwidth-partitioning trade-off), no DAS");
  row("disturbs another, and simulator cost stays modest: integration cost is");
  row("additive, not combinatorial.");
  return 0;
}
