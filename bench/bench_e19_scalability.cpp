// E19 -- Scalability of the integrated architecture: "The DECOS
// architecture divides the overall system into a set of
// nearly-independent distributed application subsystems, which share the
// node computers and the physical network" (abstract). As DAS pairs --
// each with its own pair of virtual networks and its own hidden gateway
// -- are packed onto a fixed 8-node cluster, the simulated system must
// keep every gateway forwarding at full rate; we also report the
// simulator's wall-clock cost per simulated second (the practical limit
// for laptop-scale studies with this reproduction).
#include <chrono>
#include <cstdlib>
#include <memory>
#include <vector>

#include "common.hpp"
#include "core/gateway_job.hpp"
#include "core/wiring.hpp"
#include "platform/cluster.hpp"
#include "vn/et_vn.hpp"
#include "vn/tt_vn.hpp"

using namespace decos;
using namespace decos::bench;
using namespace decos::literals;

namespace {

constexpr Duration kRun = 5_s;
constexpr std::size_t kNodes = 8;

struct Outcome {
  std::uint64_t forwarded_total = 0;
  double forwarded_per_gateway = 0.0;
  double schedule_rate = 0.0;  // messages per gateway the TDMA schedule allows
  double wall_ms_per_sim_s = 0.0;
  std::uint64_t sim_events = 0;
};

Outcome run(std::size_t das_pairs, bool capture = true) {
  platform::ClusterConfig config;
  config.nodes = kNodes;
  // Each DAS pair k gets a TT VN (producer node k%8) and an ET VN
  // (gateway host node (k+1)%8).
  for (std::size_t k = 0; k < das_pairs; ++k) {
    const auto producer = static_cast<tt::NodeId>(k % kNodes);
    const auto host = static_cast<tt::NodeId>((k + 1) % kNodes);
    config.allocations.push_back(
        {static_cast<tt::VnId>(1 + 2 * k), "dasA" + std::to_string(k), 32, {producer}});
    config.allocations.push_back(
        {static_cast<tt::VnId>(2 + 2 * k), "dasB" + std::to_string(k), 32, {host}});
  }
  config.round_length = Duration::milliseconds(10) * static_cast<std::int64_t>(
                            std::max<std::size_t>(1, das_pairs / 4));
  platform::Cluster cluster{config};

  std::vector<std::unique_ptr<vn::TtVirtualNetwork>> tt_vns;
  std::vector<std::unique_ptr<vn::EtVirtualNetwork>> et_vns;
  std::vector<std::unique_ptr<core::VirtualGateway>> gateways;
  std::vector<platform::Partition*> partitions(kNodes, nullptr);

  for (std::size_t k = 0; k < das_pairs; ++k) {
    const auto producer = static_cast<tt::NodeId>(k % kNodes);
    const auto host = static_cast<tt::NodeId>((k + 1) % kNodes);
    const auto vn_a_id = static_cast<tt::VnId>(1 + 2 * k);
    const auto vn_b_id = static_cast<tt::VnId>(2 + 2 * k);

    tt_vns.push_back(std::make_unique<vn::TtVirtualNetwork>("tt" + std::to_string(k), vn_a_id));
    auto& vn_a = *tt_vns.back();
    vn_a.register_message(state_message("msgA" + std::to_string(k), "img", 1));
    et_vns.push_back(std::make_unique<vn::EtVirtualNetwork>("et" + std::to_string(k), vn_b_id));
    auto& vn_b = *et_vns.back();

    spec::LinkSpec link_a{"dasA" + std::to_string(k)};
    link_a.add_message(state_message("msgA" + std::to_string(k), "img", 1));
    link_a.add_port(input_port("msgA" + std::to_string(k), spec::InfoSemantics::kState,
                               spec::ControlParadigm::kTimeTriggered, config.round_length, 1_us,
                               Duration::seconds(3600)));
    spec::LinkSpec link_b{"dasB" + std::to_string(k)};
    link_b.add_message(state_message("msgB" + std::to_string(k), "img", 2));
    link_b.add_port(output_port("msgB" + std::to_string(k), spec::InfoSemantics::kState,
                                spec::ControlParadigm::kEventTriggered, Duration::zero()));
    gateways.push_back(std::make_unique<core::VirtualGateway>("gw" + std::to_string(k),
                                                              std::move(link_a),
                                                              std::move(link_b)));
    auto& gw = *gateways.back();
    gw.finalize();
    core::wire_tt_link(gw, 0, vn_a, cluster.controller(host), {});
    core::wire_et_link(gw, 1, vn_b, cluster.controller(host), cluster.vn_slots(vn_b_id, host));
    if (partitions[host] == nullptr) {
      partitions[host] = &cluster.component(host).add_partition(
          "gw", "architecture", 0_ms, 2_ms);
    }
    partitions[host]->add_job(std::make_unique<core::GatewayJob>(gw));

    // Producer job for this DAS pair.
    platform::Partition& pp = cluster.component(producer).add_partition(
        "p" + std::to_string(k), "dasA" + std::to_string(k),
        3_ms + Duration::microseconds(static_cast<std::int64_t>(k) * 300), 200_us);
    platform::FunctionJob& job = pp.add_function_job(
        "prod" + std::to_string(k), [&vn_a, k](platform::FunctionJob& self, Instant now) {
          self.ports()[0]->deposit(
              state_instance(*vn_a.message_spec("msgA" + std::to_string(k)),
                             static_cast<std::int64_t>(self.activations()), now),
              now);
        });
    job.set_execution_time(10_us);
    vn_a.attach_sender(cluster.controller(producer), job.add_port(output_port(
                           "msgA" + std::to_string(k), spec::InfoSemantics::kState,
                           spec::ControlParadigm::kTimeTriggered, config.round_length)),
                       cluster.vn_slots(vn_a_id, producer));
  }

  if (Harness* harness = Harness::active(); harness != nullptr && capture)
    harness->configure(cluster.simulator());
  const auto wall_start = std::chrono::steady_clock::now();
  cluster.start();
  cluster.run_for(kRun);
  const auto wall_end = std::chrono::steady_clock::now();
  if (Harness* harness = Harness::active(); harness != nullptr && capture)
    harness->capture("pairs=" + std::to_string(das_pairs), cluster.simulator());

  Outcome outcome;
  for (const auto& gw : gateways) outcome.forwarded_total += gw->stats().messages_constructed;
  outcome.forwarded_per_gateway =
      static_cast<double>(outcome.forwarded_total) / static_cast<double>(das_pairs);
  outcome.wall_ms_per_sim_s =
      std::chrono::duration<double, std::milli>(wall_end - wall_start).count() /
      kRun.as_seconds();
  outcome.sim_events = cluster.simulator().dispatched();
  outcome.schedule_rate = static_cast<double>(kRun / config.round_length);
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  Harness harness{argc, argv, "e19"};
  // --quick: CI smoke shape (fewer cells, fewer repeats); --repeats N:
  // wall time is min-of-N to suppress scheduler noise (the simulated
  // outcome columns are bit-identical across repeats).
  bool quick = false;
  int repeats = 3;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") quick = true;
    if (arg == "--repeats" && i + 1 < argc) repeats = std::atoi(argv[++i]);
  }
  if (repeats < 1) repeats = 1;

  title("E19  packing DAS pairs onto a fixed 8-node cluster",
        "every added DAS pair (2 VNs + 1 hidden gateway) keeps forwarding at "
        "full rate; cost grows linearly with the number of integrated subsystems");

  row("%-10s %12s %14s %12s %14s %16s", "DAS pairs", "forwarded", "fwd/gateway",
      "sched rate", "sim events", "wall ms/sim s");
  const std::vector<std::size_t> cells =
      quick ? std::vector<std::size_t>{1, 4} : std::vector<std::size_t>{1, 2, 4, 8, 16};
  obs::json::Object wall_json;
  obs::json::Object events_json;
  for (const std::size_t pairs : cells) {
    Outcome o = run(pairs);
    for (int r = 1; r < repeats; ++r) {
      const Outcome again = run(pairs, /*capture=*/false);
      o.wall_ms_per_sim_s = std::min(o.wall_ms_per_sim_s, again.wall_ms_per_sim_s);
    }
    row("%-10zu %12llu %14.0f %12.0f %14llu %16.1f", pairs,
        static_cast<unsigned long long>(o.forwarded_total), o.forwarded_per_gateway,
        o.schedule_rate, static_cast<unsigned long long>(o.sim_events), o.wall_ms_per_sim_s);
    wall_json.emplace_back(std::to_string(pairs), o.wall_ms_per_sim_s);
    events_json.emplace_back(std::to_string(pairs),
                             static_cast<std::int64_t>(o.sim_events));
  }
  harness.set_json("wall_ms_per_sim_s", obs::json::Value{std::move(wall_json)});
  harness.set_json("sim_events", obs::json::Value{std::move(events_json)});
  row("");
  row("expected shape: every gateway forwards at exactly its schedule rate");
  row("(fwd/gateway == sched rate; the round stretches as more slots are packed");
  row("in, which is the deliberate bandwidth-partitioning trade-off), no DAS");
  row("disturbs another, and simulator cost stays modest: integration cost is");
  row("additive, not combinatorial.");
  return 0;
}
