// E2 -- Selective redirection: "by restricting the redirection through
// the gateway to the information actually required by the jobs of the
// other DAS, the gateway not only improves resource efficiency by saving
// bandwidth of unnecessary messages, but also facilitates complexity
// control" (paper Section III-B.1/2).
//
// DAS A carries 10 message types (one 24-byte payload element each) at
// 10ms periods. The jobs of DAS B require a fraction f of them. We sweep
// f and measure the bandwidth the gateway injects into DAS B and the
// number of message types visible there, against the full-forwarding
// baseline (f = 1.0, i.e. a dumb bridge).
#include <vector>

#include "common.hpp"
#include "sim/simulator.hpp"

using namespace decos;
using namespace decos::bench;
using namespace decos::literals;

namespace {

constexpr int kMessageTypes = 10;
constexpr Duration kPeriod = 10_ms;
constexpr Duration kRun = 10_s;

struct Outcome {
  std::uint64_t forwarded_messages = 0;
  std::uint64_t forwarded_bytes = 0;
  int visible_types = 0;
};

Outcome run(int exported_types) {
  spec::LinkSpec link_a{"dasA"};
  for (int m = 0; m < kMessageTypes; ++m) {
    link_a.add_message(state_message("msgA" + std::to_string(m), "elem" + std::to_string(m), m + 1));
    link_a.add_port(input_port("msgA" + std::to_string(m), spec::InfoSemantics::kState,
                               spec::ControlParadigm::kTimeTriggered, kPeriod, 1_ms,
                               Duration::seconds(3600)));
  }
  spec::LinkSpec link_b{"dasB"};
  std::vector<std::size_t> exported_sizes;
  for (int m = 0; m < exported_types; ++m) {
    spec::MessageSpec ms =
        state_message("msgB" + std::to_string(m), "elem" + std::to_string(m), 100 + m);
    exported_sizes.push_back(ms.wire_size());
    link_b.add_message(std::move(ms));
    link_b.add_port(output_port("msgB" + std::to_string(m), spec::InfoSemantics::kState,
                                spec::ControlParadigm::kTimeTriggered, kPeriod));
  }

  core::VirtualGateway gateway{"e2", std::move(link_a), std::move(link_b)};
  gateway.finalize();

  Outcome outcome;
  outcome.visible_types = exported_types;
  for (int m = 0; m < exported_types; ++m) {
    const std::size_t size = exported_sizes[static_cast<std::size_t>(m)];
    gateway.link_b().set_emitter("msgB" + std::to_string(m),
                                 [&outcome, size](const spec::MessageInstance&) {
                                   ++outcome.forwarded_messages;
                                   outcome.forwarded_bytes += size;
                                 });
  }

  sim::Simulator sim;
  for (Instant t = Instant::origin(); t < Instant::origin() + kRun; t += kPeriod) {
    sim.schedule_at(t, [&gateway, &sim] {
      for (int m = 0; m < kMessageTypes; ++m) {
        const spec::MessageSpec& ms =
            *gateway.link_a().spec().message("msgA" + std::to_string(m));
        gateway.on_input(0, state_instance(ms, m, sim.now()), sim.now());
      }
      gateway.dispatch(sim.now());
    });
  }
  sim.run_until(Instant::origin() + kRun);
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  Harness harness{argc, argv, "e2"};
  title("E2  selective redirection: bandwidth and visibility in DAS B",
        "exporting only required elements saves DAS-B bandwidth and shrinks the "
        "message set a DAS-B engineer must understand");

  ParallelSweep sweep{harness};
  Outcome baseline;  // dumb full-forwarding bridge; reference for share%
  const bool have_baseline =
      sweep.add("baseline", [&baseline](Cell&) { baseline = run(kMessageTypes); });
  sweep.run();  // barrier: every sweep cell below reads the baseline
  row("%-14s %12s %14s %14s %10s", "config", "fwd msgs", "fwd bytes", "bandwidth", "visible");
  for (int exported = 0; exported <= kMessageTypes; exported += 2) {
    char label[32];
    std::snprintf(label, sizeof label, "f=%.1f", exported / 10.0);
    sweep.add(label, [&baseline, have_baseline, exported](Cell& cell) {
      const Outcome o = run(exported);
      const double share = have_baseline && baseline.forwarded_bytes
                               ? 100.0 * static_cast<double>(o.forwarded_bytes) /
                                     static_cast<double>(baseline.forwarded_bytes)
                               : 0.0;
      cell.row("f=%-12.1f %12llu %14llu %13.1f%% %7d/10", exported / 10.0,
               static_cast<unsigned long long>(o.forwarded_messages),
               static_cast<unsigned long long>(o.forwarded_bytes), share, o.visible_types);
    });
  }
  sweep.run();
  row("");
  row("expected shape: DAS-B bandwidth and visible message count scale linearly");
  row("with the exported fraction f; a full bridge (f=1.0) imports all 10 types.");
  return 0;
}
