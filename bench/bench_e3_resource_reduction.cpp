// E3 -- Resource reduction through integration (paper Section I):
// "integrated systems promise massive cost savings through the reduction
// of resource duplication ... the redundant sensors can be eliminated in
// one of the DASes leading to reduced resource consumption and hardware
// cost."
//
// We build the ABS + navigation system twice and count physical
// resources and measured traffic:
//   federated : each DAS has its own nodes, its own physical network and
//               its own odometry sensors (the navigation duplicates the
//               wheel-speed sensors).
//   integrated: the DASes share one cluster; the navigation imports the
//               wheel speeds through a virtual gateway (no extra sensors,
//               no second physical network).
#include "common.hpp"
#include "core/gateway_job.hpp"
#include "core/wiring.hpp"
#include "platform/cluster.hpp"
#include "vn/et_vn.hpp"
#include "vn/tt_vn.hpp"

using namespace decos;
using namespace decos::bench;
using namespace decos::literals;

namespace {

constexpr Duration kRun = 2_s;

struct Inventory {
  int nodes = 0;
  int physical_networks = 0;
  int wheel_sensors = 0;
  int gateway_partitions = 0;
  std::uint64_t frames = 0;  // measured physical frames over kRun
};

/// Federated: ABS cluster (2 nodes) and navigation cluster (2 nodes),
/// each with its own bus; navigation has its own wheel sensors.
Inventory run_federated() {
  Inventory inv;
  inv.nodes = 4;
  inv.physical_networks = 2;
  inv.wheel_sensors = 4 + 4;  // ABS set + duplicated navigation set
  inv.gateway_partitions = 0;

  for (int cluster_index = 0; cluster_index < 2; ++cluster_index) {
    platform::ClusterConfig config;
    config.nodes = 2;
    config.allocations = {{1, cluster_index == 0 ? "abs" : "navigation", 32, {0}}};
    platform::Cluster cluster{config};

    vn::TtVirtualNetwork vn{"vn", 1};
    vn.register_message(state_message("msgwheels", "wheels", 100));
    platform::Partition& p =
        cluster.component(0).add_partition("sense", config.allocations[0].das, 1_ms, 1_ms);
    platform::FunctionJob& job =
        p.add_function_job("sensors", [&vn](platform::FunctionJob& self, Instant now) {
          self.ports()[0]->deposit(
              state_instance(*vn.message_spec("msgwheels"), 1234, now), now);
        });
    vn.attach_sender(cluster.controller(0), job.add_port(output_port(
                         "msgwheels", spec::InfoSemantics::kState,
                         spec::ControlParadigm::kTimeTriggered, 10_ms)),
                     cluster.vn_slots(1, 0));
    cluster.start();
    cluster.run_for(kRun);
    inv.frames += cluster.bus().frames_delivered();
  }
  return inv;
}

/// Integrated: one 3-node cluster, two VNs, one gateway partition.
Inventory run_integrated() {
  Inventory inv;
  inv.nodes = 3;  // ABS node, navigation node, shared gateway host
  inv.physical_networks = 1;
  inv.wheel_sensors = 4;  // single ABS set, shared
  inv.gateway_partitions = 1;

  platform::ClusterConfig config;
  config.nodes = 3;
  config.allocations = {{1, "abs", 32, {0}}, {2, "navigation", 32, {1, 2}}};
  platform::Cluster cluster{config};

  vn::TtVirtualNetwork abs_vn{"abs-vn", 1};
  abs_vn.register_message(state_message("msgwheels", "wheels", 100));
  vn::EtVirtualNetwork nav_vn{"nav-vn", 2};

  spec::LinkSpec link_a{"abs"};
  link_a.add_message(state_message("msgwheels", "wheels", 100));
  link_a.add_port(input_port("msgwheels", spec::InfoSemantics::kState,
                             spec::ControlParadigm::kTimeTriggered, 10_ms));
  spec::LinkSpec link_b{"navigation"};
  link_b.add_message(state_message("msgodometry", "wheels", 200));
  link_b.add_port(output_port("msgodometry", spec::InfoSemantics::kState,
                              spec::ControlParadigm::kEventTriggered, Duration::zero()));
  core::VirtualGateway gateway{"share", std::move(link_a), std::move(link_b)};
  gateway.finalize();
  core::wire_tt_link(gateway, 0, abs_vn, cluster.controller(2), {});
  core::wire_et_link(gateway, 1, nav_vn, cluster.controller(2), cluster.vn_slots(2, 2));
  cluster.component(2)
      .add_partition("gateway", "architecture", 0_ms, 1_ms)
      .add_job(std::make_unique<core::GatewayJob>(gateway));

  platform::Partition& p = cluster.component(0).add_partition("sense", "abs", 1_ms, 1_ms);
  platform::FunctionJob& job =
      p.add_function_job("sensors", [&abs_vn](platform::FunctionJob& self, Instant now) {
        self.ports()[0]->deposit(
            state_instance(*abs_vn.message_spec("msgwheels"), 1234, now), now);
      });
  abs_vn.attach_sender(cluster.controller(0), job.add_port(output_port(
                           "msgwheels", spec::InfoSemantics::kState,
                           spec::ControlParadigm::kTimeTriggered, 10_ms)),
                       cluster.vn_slots(1, 0));

  cluster.start();
  cluster.run_for(kRun);
  inv.frames = cluster.bus().frames_delivered();
  return inv;
}

}  // namespace

int main(int argc, char** argv) {
  Harness harness{argc, argv, "e3"};
  title("E3  federated vs integrated resource inventory (ABS + navigation)",
        "sharing nodes/network and importing sensor data through a gateway cuts "
        "hardware without losing the sensor stream");

  ParallelSweep sweep{harness};
  Inventory fed;
  Inventory integ;
  const bool ran_fed = sweep.add("federated", [&fed](Cell&) { fed = run_federated(); });
  const bool ran_integ = sweep.add("integrated", [&integ](Cell&) { integ = run_integrated(); });
  sweep.run();
  if (!ran_fed || !ran_integ) return 0;  // --filter dropped half the comparison

  row("%-26s %12s %12s", "resource", "federated", "integrated");
  row("%-26s %12d %12d", "node computers", fed.nodes, integ.nodes);
  row("%-26s %12d %12d", "physical networks", fed.physical_networks, integ.physical_networks);
  row("%-26s %12d %12d", "wheel-speed sensors", fed.wheel_sensors, integ.wheel_sensors);
  row("%-26s %12d %12d", "gateway partitions", fed.gateway_partitions, integ.gateway_partitions);
  row("%-26s %12llu %12llu", "frames delivered (2s)",
      static_cast<unsigned long long>(fed.frames), static_cast<unsigned long long>(integ.frames));
  row("");
  row("expected shape: the integrated system needs fewer nodes, one physical");
  row("network and half the sensors, at the cost of one gateway partition and");
  row("the gateway's share of bus frames.");
  return integ.nodes < fed.nodes && integ.wheel_sensors < fed.wheel_sensors ? 0 : 1;
}
