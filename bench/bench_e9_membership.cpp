// E9 -- Core service C4: consistent diagnosis of failing nodes (paper
// Section II-C). Crash faults are injected at random instants; we
// measure the detection latency (rounds from the crash to the membership
// verdict) on every surviving node and check that all survivors agree.
#include <memory>

#include "common.hpp"
#include "fault/plan.hpp"
#include "platform/cluster.hpp"
#include "util/rng.hpp"
#include "util/statistics.hpp"

using namespace decos;
using namespace decos::bench;
using namespace decos::literals;

namespace {

struct Outcome {
  RunningStats latency_rounds;
  int consistent_trials = 0;
  int trials = 0;
};

Outcome run(Cell& cell, std::size_t cluster_size, std::uint64_t silence_threshold,
            double omission_rate, int trials, std::uint64_t seed) {
  Outcome outcome;
  Rng rng{seed};
  for (int trial = 0; trial < trials; ++trial) {
    platform::ClusterConfig config;
    config.nodes = cluster_size;
    config.round_length = 10_ms;
    config.membership_silence_threshold = silence_threshold;
    platform::Cluster cluster{config};
    cell.configure(cluster.simulator());

    const auto victim = static_cast<tt::NodeId>(
        rng.uniform_int(0, static_cast<std::int64_t>(cluster_size) - 1));
    const Instant crash_at = Instant::origin() + Duration::microseconds(rng.uniform_int(
                                                     100000, 300000));  // 100..300ms
    const auto crash_round =
        static_cast<std::uint64_t>((crash_at - Instant::origin()) / config.round_length);

    if (omission_rate > 0.0) {
      // Background noise: every node drops a fraction of its sends.
      for (std::size_t i = 0; i < cluster_size; ++i) {
        if (i != victim)
          cluster.controller(i).set_send_omission_rate(omission_rate, seed + i);
      }
    }

    fault::FaultPlan plan{cluster.simulator()};
    plan.crash(cluster.controller(victim), crash_at);

    std::vector<std::int64_t> detected_round(cluster_size, -1);
    for (std::size_t i = 0; i < cluster_size; ++i) {
      if (i == victim) continue;
      cluster.membership(i)->add_change_listener(
          [&detected_round, i, victim](tt::NodeId node, bool alive, std::uint64_t round) {
            if (node == victim && !alive && detected_round[i] < 0)
              detected_round[i] = static_cast<std::int64_t>(round);
          });
    }

    cluster.start();
    cluster.run_for(800_ms);

    bool consistent = true;
    const std::vector<bool>* reference = nullptr;
    for (std::size_t i = 0; i < cluster_size; ++i) {
      if (i == victim) continue;
      if (detected_round[i] >= 0) {
        outcome.latency_rounds.add(static_cast<double>(detected_round[i]) -
                                   static_cast<double>(crash_round));
      } else {
        consistent = false;  // someone missed the crash entirely
      }
      const auto& vec = cluster.membership(i)->vector();
      if (reference == nullptr) {
        reference = &vec;
      } else if (vec != *reference) {
        consistent = false;
      }
    }
    ++outcome.trials;
    if (consistent) ++outcome.consistent_trials;
    char label[96];
    std::snprintf(label, sizeof label, "nodes=%zu threshold=%llu omission=%.2f trial=%d",
                  cluster_size, static_cast<unsigned long long>(silence_threshold),
                  omission_rate, trial);
    cell.capture(label, cluster.simulator(), {{"bus", &cluster.bus().trace()}});
  }
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  Harness harness{argc, argv, "e9"};
  title("E9  membership: crash detection latency and consistency",
        "every correct node diagnoses a crashed component within the silence "
        "threshold, and all correct nodes agree on the membership vector");

  row("%-7s %-10s %-10s %8s %10s %10s %12s", "nodes", "threshold", "omission", "trials",
      "lat.avg", "lat.max", "consistent");
  ParallelSweep sweep{harness};
  for (const std::size_t nodes : {4u, 8u}) {
    for (const std::uint64_t threshold : {1ull, 3ull}) {
      for (const double omission : {0.0, 0.05}) {
        char label[64];
        std::snprintf(label, sizeof label, "nodes=%zu threshold=%llu omission=%.2f", nodes,
                      static_cast<unsigned long long>(threshold), omission);
        sweep.add(label, [nodes, threshold, omission](Cell& cell) {
          Outcome o = run(cell, nodes, threshold, omission, 20, 1234);
          cell.row("%-7zu %-10llu %-10.2f %8d %10.2f %10.2f %9d/%d", nodes,
                   static_cast<unsigned long long>(threshold), omission, o.trials,
                   o.latency_rounds.mean(), o.latency_rounds.max(), o.consistent_trials,
                   o.trials);
        });
      }
    }
  }
  sweep.run();
  row("");
  row("expected shape: detection latency ~= the silence threshold (in rounds),");
  row("independent of cluster size; consistency holds in every trial on the");
  row("broadcast bus. Send omissions add sporadic false suspicions but do not");
  row("break agreement (all nodes observe the same frames).");
  return 0;
}
