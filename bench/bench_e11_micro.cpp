// E11 -- Microbenchmarks of the gateway engine stages (paper Fig. 4):
// link-spec parsing, message encode/decode, the receive path (timed
// automaton + dissect + store + transfer rule), the construct path, and
// raw repository / automaton operation costs. google-benchmark binary.
#include <benchmark/benchmark.h>

#include <memory>

#include "common.hpp"
#include "core/repository.hpp"
#include "spec/linkspec_xml.hpp"
#include "ta/interpreter.hpp"

using namespace decos;
using namespace decos::bench;
using namespace decos::literals;

namespace {

spec::MessageSpec wide_message(int elements, int fields_per_element) {
  spec::MessageSpec ms{"wide"};
  spec::ElementSpec key;
  key.name = "name";
  key.key = true;
  key.fields.push_back(spec::FieldSpec{"id", spec::FieldType::kInt16, 0, ta::Value{7}});
  ms.add_element(std::move(key));
  for (int e = 0; e < elements; ++e) {
    spec::ElementSpec es;
    es.name = "e" + std::to_string(e);
    es.convertible = true;
    for (int f = 0; f < fields_per_element; ++f) {
      es.fields.push_back(
          spec::FieldSpec{"f" + std::to_string(f), spec::FieldType::kInt32, 0, std::nullopt});
    }
    ms.add_element(std::move(es));
  }
  return ms;
}

void BM_EncodeMessage(benchmark::State& state) {
  const spec::MessageSpec ms = wide_message(static_cast<int>(state.range(0)), 4);
  const spec::MessageInstance inst = spec::make_instance(ms);
  for (auto _ : state) {
    auto bytes = spec::encode(ms, inst);
    benchmark::DoNotOptimize(bytes);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ms.wire_size()));
}
BENCHMARK(BM_EncodeMessage)->Arg(1)->Arg(4)->Arg(16);

void BM_DecodeMessage(benchmark::State& state) {
  const spec::MessageSpec ms = wide_message(static_cast<int>(state.range(0)), 4);
  const auto bytes = spec::encode(ms, spec::make_instance(ms)).value();
  for (auto _ : state) {
    auto inst = spec::decode(ms, bytes);
    benchmark::DoNotOptimize(inst);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ms.wire_size()));
}
BENCHMARK(BM_DecodeMessage)->Arg(1)->Arg(4)->Arg(16);

void BM_IdentifyByKey(benchmark::State& state) {
  spec::LinkSpec link{"das"};
  for (int m = 0; m < state.range(0); ++m)
    link.add_message(state_message("m" + std::to_string(m), "e" + std::to_string(m), m + 1));
  const auto bytes =
      spec::encode(*link.message("m0"), spec::make_instance(*link.message("m0"))).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(link.identify(bytes));
  }
}
BENCHMARK(BM_IdentifyByKey)->Arg(1)->Arg(8)->Arg(32);

void BM_ParseLinkSpecXml(benchmark::State& state) {
  spec::LinkSpec link{"das"};
  link.add_message(wide_message(4, 4));
  link.add_automaton(ta::make_interarrival_receive("r", "wide", 4_ms, 100_ms));
  link.add_port(input_port("wide", spec::InfoSemantics::kEvent,
                           spec::ControlParadigm::kEventTriggered, Duration::zero(), 4_ms,
                           100_ms));
  const std::string xml = spec::write_link_spec_xml(link);
  for (auto _ : state) {
    auto parsed = spec::parse_link_spec_xml(xml);
    benchmark::DoNotOptimize(parsed);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(xml.size()));
}
BENCHMARK(BM_ParseLinkSpecXml);

/// Fully wired gateway: receive path = TA check + dissect + store (+ ET
/// construct on the other side).
std::unique_ptr<core::VirtualGateway> make_gateway(int elements) {
  spec::LinkSpec link_a{"dasA"};
  spec::MessageSpec in = wide_message(elements, 4);
  in.set_name("msgIn");
  link_a.add_message(std::move(in));
  link_a.add_port(input_port("msgIn", spec::InfoSemantics::kState,
                             spec::ControlParadigm::kTimeTriggered, 10_ms, 1_ns,
                             Duration::seconds(3600)));
  spec::LinkSpec link_b{"dasB"};
  spec::MessageSpec out = wide_message(elements, 4);
  out.set_name("msgOut");
  link_b.add_message(std::move(out));
  link_b.add_port(output_port("msgOut", spec::InfoSemantics::kState,
                              spec::ControlParadigm::kEventTriggered, Duration::zero()));
  core::GatewayConfig config;
  config.default_d_acc = Duration::seconds(3600);
  auto gateway = std::make_unique<core::VirtualGateway>("micro", std::move(link_a),
                                                        std::move(link_b), config);
  gateway->finalize();
  gateway->link_b().set_emitter("msgOut", [](const spec::MessageInstance&) {});
  return gateway;
}

void BM_GatewayReceiveAndForward(benchmark::State& state) {
  auto gateway = make_gateway(static_cast<int>(state.range(0)));
  const spec::MessageSpec& ms = *gateway->link_a().spec().message("msgIn");
  spec::MessageInstance inst = spec::make_instance(ms);
  Instant now = Instant::origin();
  for (auto _ : state) {
    now += 10_ms;
    gateway->on_input(0, inst, now);  // includes the event-driven ET forward
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_GatewayReceiveAndForward)->Arg(1)->Arg(4)->Arg(16);

void BM_RepositoryStoreFetchState(benchmark::State& state) {
  core::Repository repo;
  repo.declare(core::ElementDecl{"s", spec::InfoSemantics::kState, 1_s, 4});
  core::ElementInstance inst;
  inst.set_field("value", ta::Value{1});
  inst.set_field("t", ta::Value{Instant::origin()});
  Instant now = Instant::origin();
  for (auto _ : state) {
    now += 1_ms;
    repo.store("s", inst, now);
    benchmark::DoNotOptimize(repo.fetch("s", now));
  }
}
BENCHMARK(BM_RepositoryStoreFetchState);

void BM_RepositoryStoreFetchEvent(benchmark::State& state) {
  core::Repository repo;
  repo.declare(core::ElementDecl{"e", spec::InfoSemantics::kEvent, 1_s, 64});
  core::ElementInstance inst;
  inst.set_field("value", ta::Value{1});
  Instant now = Instant::origin();
  for (auto _ : state) {
    now += 1_ms;
    repo.store("e", inst, now);
    benchmark::DoNotOptimize(repo.fetch("e", now));
  }
}
BENCHMARK(BM_RepositoryStoreFetchEvent);

void BM_AutomatonReceiveStep(benchmark::State& state) {
  const ta::AutomatonSpec spec = ta::make_interarrival_receive("r", "m", 4_ms, 1_s);
  ta::Interpreter interp{spec};
  Instant now = Instant::origin();
  interp.restart(now);
  for (auto _ : state) {
    now += 10_ms;
    benchmark::DoNotOptimize(interp.on_receive("m", now));
  }
}
BENCHMARK(BM_AutomatonReceiveStep);

void BM_GuardEvaluation(benchmark::State& state) {
  const ta::ExprPtr guard =
      ta::parse_expression("n == 0 || (x >= 4000000 && x <= 100000000)").value();
  class Env final : public ta::Environment {
   public:
    ta::Value get(const std::string& name) const override {
      return name == "n" ? ta::Value{1} : ta::Value{Duration::milliseconds(10)};
    }
    void set(const std::string&, const ta::Value&) override {}
    ta::Value call(const std::string&, const std::vector<ta::Value>&) override { return {}; }
  } env;
  for (auto _ : state) {
    benchmark::DoNotOptimize(guard->evaluate(env));
  }
}
BENCHMARK(BM_GuardEvaluation);

// Forwards google-benchmark's console output into the harness so the
// BENCH_e11.json rows mirror what the terminal shows, and collects the
// per-benchmark timings as structured JSON.
class HarnessReporter : public benchmark::ConsoleReporter {
 public:
  explicit HarnessReporter(Harness& harness) : harness_(harness) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      harness_.note_line(run.benchmark_name());
      obs::json::Object o;
      o.emplace_back("name", run.benchmark_name());
      o.emplace_back("iterations", static_cast<std::uint64_t>(run.iterations));
      o.emplace_back("real_ns", run.GetAdjustedRealTime());
      o.emplace_back("cpu_ns", run.GetAdjustedCPUTime());
      results_.push_back(obs::json::Value{std::move(o)});
    }
  }

  obs::json::Array take_results() { return std::move(results_); }

 private:
  Harness& harness_;
  obs::json::Array results_;
};

}  // namespace

int main(int argc, char** argv) {
  Harness harness{argc, argv, "e11"};
  // Google benchmark must not see the harness flags; it rejects unknown
  // arguments. Its own flags are not used by this target.
  int bench_argc = 1;
  benchmark::Initialize(&bench_argc, argv);
  HarnessReporter reporter{harness};
  benchmark::RunSpecifiedBenchmarks(&reporter);
  harness.set_json("benchmarks", obs::json::Value{reporter.take_results()});
  benchmark::Shutdown();
  return 0;
}
