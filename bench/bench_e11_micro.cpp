// E11 -- Microbenchmarks of the gateway engine stages (paper Fig. 4):
// link-spec parsing, message encode/decode, the receive path (timed
// automaton + dissect + store + transfer rule), the construct path, and
// raw repository / automaton operation costs. google-benchmark binary.
#include <benchmark/benchmark.h>

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common.hpp"
#include "core/repository.hpp"
#include "spec/linkspec_xml.hpp"
#include "spec/message.hpp"
#include "ta/interpreter.hpp"
#include "vn/port.hpp"

using namespace decos;
using namespace decos::bench;
using namespace decos::literals;

namespace {

spec::MessageSpec wide_message(int elements, int fields_per_element) {
  spec::MessageSpec ms{"wide"};
  spec::ElementSpec key;
  key.name = "name";
  key.key = true;
  key.fields.push_back(spec::FieldSpec{"id", spec::FieldType::kInt16, 0, ta::Value{7}});
  ms.add_element(std::move(key));
  for (int e = 0; e < elements; ++e) {
    spec::ElementSpec es;
    es.name = "e" + std::to_string(e);
    es.convertible = true;
    for (int f = 0; f < fields_per_element; ++f) {
      es.fields.push_back(
          spec::FieldSpec{"f" + std::to_string(f), spec::FieldType::kInt32, 0, std::nullopt});
    }
    ms.add_element(std::move(es));
  }
  return ms;
}

void BM_EncodeMessage(benchmark::State& state) {
  const spec::MessageSpec ms = wide_message(static_cast<int>(state.range(0)), 4);
  const spec::MessageInstance inst = spec::make_instance(ms);
  for (auto _ : state) {
    auto bytes = spec::encode(ms, inst);
    benchmark::DoNotOptimize(bytes);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ms.wire_size()));
}
BENCHMARK(BM_EncodeMessage)->Arg(1)->Arg(4)->Arg(16);

void BM_DecodeMessage(benchmark::State& state) {
  const spec::MessageSpec ms = wide_message(static_cast<int>(state.range(0)), 4);
  const auto bytes = spec::encode(ms, spec::make_instance(ms)).value();
  for (auto _ : state) {
    auto inst = spec::decode(ms, bytes);
    benchmark::DoNotOptimize(inst);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ms.wire_size()));
}
BENCHMARK(BM_DecodeMessage)->Arg(1)->Arg(4)->Arg(16);

// -- Compiled wire layout vs field-walk codec (DESIGN.md S29) ---------------
//
// Same buffer/instance reused across iterations (the warmed-scratch
// shape the VN hot path runs): the compiled pair goes through the
// per-spec WireLayout offset table, the fieldwalk pair through the
// reference codec the layout is property-tested against.

void BM_EncodeCompiled(benchmark::State& state) {
  const spec::MessageSpec ms = wide_message(static_cast<int>(state.range(0)), 4);
  const spec::MessageInstance inst = spec::make_instance(ms);
  std::vector<std::byte> buffer;
  benchmark::DoNotOptimize(spec::encode_into(ms, inst, buffer));  // compile + warm
  for (auto _ : state) {
    benchmark::DoNotOptimize(spec::encode_into(ms, inst, buffer));
    benchmark::DoNotOptimize(buffer.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ms.wire_size()));
}
BENCHMARK(BM_EncodeCompiled)->Arg(4)->Arg(16);

void BM_EncodeFieldwalk(benchmark::State& state) {
  const spec::MessageSpec ms = wide_message(static_cast<int>(state.range(0)), 4);
  const spec::MessageInstance inst = spec::make_instance(ms);
  std::vector<std::byte> buffer;
  benchmark::DoNotOptimize(spec::encode_fieldwalk_into(ms, inst, buffer));
  for (auto _ : state) {
    benchmark::DoNotOptimize(spec::encode_fieldwalk_into(ms, inst, buffer));
    benchmark::DoNotOptimize(buffer.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ms.wire_size()));
}
BENCHMARK(BM_EncodeFieldwalk)->Arg(4)->Arg(16);

void BM_DecodeCompiled(benchmark::State& state) {
  const spec::MessageSpec ms = wide_message(static_cast<int>(state.range(0)), 4);
  const auto bytes = spec::encode(ms, spec::make_instance(ms)).value();
  spec::MessageInstance scratch = spec::make_instance(ms);
  benchmark::DoNotOptimize(spec::decode_into(ms, bytes, scratch));  // compile + warm
  for (auto _ : state) {
    benchmark::DoNotOptimize(spec::decode_into(ms, bytes, scratch));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ms.wire_size()));
}
BENCHMARK(BM_DecodeCompiled)->Arg(4)->Arg(16);

void BM_DecodeFieldwalk(benchmark::State& state) {
  const spec::MessageSpec ms = wide_message(static_cast<int>(state.range(0)), 4);
  const auto bytes = spec::encode(ms, spec::make_instance(ms)).value();
  spec::MessageInstance scratch = spec::make_instance(ms);
  benchmark::DoNotOptimize(spec::decode_fieldwalk_into(ms, bytes, scratch));
  for (auto _ : state) {
    benchmark::DoNotOptimize(spec::decode_fieldwalk_into(ms, bytes, scratch));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ms.wire_size()));
}
BENCHMARK(BM_DecodeFieldwalk)->Arg(4)->Arg(16);

void BM_IdentifyByKey(benchmark::State& state) {
  spec::LinkSpec link{"das"};
  for (int m = 0; m < state.range(0); ++m)
    link.add_message(state_message("m" + std::to_string(m), "e" + std::to_string(m), m + 1));
  const auto bytes =
      spec::encode(*link.message("m0"), spec::make_instance(*link.message("m0"))).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(link.identify(bytes));
  }
}
BENCHMARK(BM_IdentifyByKey)->Arg(1)->Arg(8)->Arg(32);

void BM_ParseLinkSpecXml(benchmark::State& state) {
  spec::LinkSpec link{"das"};
  link.add_message(wide_message(4, 4));
  link.add_automaton(ta::make_interarrival_receive("r", "wide", 4_ms, 100_ms));
  link.add_port(input_port("wide", spec::InfoSemantics::kEvent,
                           spec::ControlParadigm::kEventTriggered, Duration::zero(), 4_ms,
                           100_ms));
  const std::string xml = spec::write_link_spec_xml(link);
  for (auto _ : state) {
    auto parsed = spec::parse_link_spec_xml(xml);
    benchmark::DoNotOptimize(parsed);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(xml.size()));
}
BENCHMARK(BM_ParseLinkSpecXml);

/// Fully wired gateway: receive path = TA check + dissect + store (+ ET
/// construct on the other side).
std::unique_ptr<core::VirtualGateway> make_gateway(int elements) {
  spec::LinkSpec link_a{"dasA"};
  spec::MessageSpec in = wide_message(elements, 4);
  in.set_name("msgIn");
  link_a.add_message(std::move(in));
  link_a.add_port(input_port("msgIn", spec::InfoSemantics::kState,
                             spec::ControlParadigm::kTimeTriggered, 10_ms, 1_ns,
                             Duration::seconds(3600)));
  spec::LinkSpec link_b{"dasB"};
  spec::MessageSpec out = wide_message(elements, 4);
  out.set_name("msgOut");
  link_b.add_message(std::move(out));
  link_b.add_port(output_port("msgOut", spec::InfoSemantics::kState,
                              spec::ControlParadigm::kEventTriggered, Duration::zero()));
  core::GatewayConfig config;
  config.default_d_acc = Duration::seconds(3600);
  auto gateway = std::make_unique<core::VirtualGateway>("micro", std::move(link_a),
                                                        std::move(link_b), config);
  gateway->finalize();
  gateway->link_b().set_emitter("msgOut", [](const spec::MessageInstance&) {});
  return gateway;
}

void BM_GatewayReceiveAndForward(benchmark::State& state) {
  auto gateway = make_gateway(static_cast<int>(state.range(0)));
  const spec::MessageSpec& ms = *gateway->link_a().spec().message("msgIn");
  spec::MessageInstance inst = spec::make_instance(ms);
  Instant now = Instant::origin();
  for (auto _ : state) {
    now += 10_ms;
    gateway->on_input(0, inst, now);  // includes the event-driven ET forward
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_GatewayReceiveAndForward)->Arg(1)->Arg(4)->Arg(16);

// -- Interned vs string paths (DESIGN.md S23) -------------------------------
//
// Each pair below measures the same logical operation twice: once through
// the compiled/interned path (dense ElementId, Symbol-keyed fields,
// storage reuse) and once through the name-keyed path the seed used
// (string resolution on every call, fresh allocations per instance). The
// harness computes the ratios into BENCH_E11.json; CI's perf-smoke job
// fails when the compiled dissect/construct rows regress.

/// Compiled dissect in the real engine: the input side of a gateway whose
/// only output port is time-triggered, so on_input() runs the dissect
/// plan + repository stores and nothing else (TT constructs only fire
/// from dispatch(), which this bench never calls).
std::unique_ptr<core::VirtualGateway> make_dissect_gateway(int elements) {
  spec::LinkSpec link_a{"dasA"};
  spec::MessageSpec in = wide_message(elements, 4);
  in.set_name("msgIn");
  link_a.add_message(std::move(in));
  link_a.add_port(input_port("msgIn", spec::InfoSemantics::kState,
                             spec::ControlParadigm::kTimeTriggered, 10_ms, 1_ns,
                             Duration::seconds(3600)));
  spec::LinkSpec link_b{"dasB"};
  spec::MessageSpec out = wide_message(elements, 4);
  out.set_name("msgOut");
  link_b.add_message(std::move(out));
  link_b.add_port(output_port("msgOut", spec::InfoSemantics::kState,
                              spec::ControlParadigm::kTimeTriggered, Duration::seconds(3600)));
  core::GatewayConfig config;
  config.default_d_acc = Duration::seconds(3600);
  auto gateway = std::make_unique<core::VirtualGateway>("micro", std::move(link_a),
                                                        std::move(link_b), config);
  gateway->finalize();
  return gateway;
}

/// Batched vs per-instance dispatch drain (DESIGN.md S29): one pending
/// instance per dispatch round on a pull (time-triggered) input port,
/// drained either through the precompiled input bindings or through the
/// reference per-instance on_input() loop. Byte-identical artifacts by
/// construction; the bench measures the bookkeeping the batch drain
/// amortizes (symbol re-hashing, version re-walks, interpreter lookups).
/// A gateway whose input is a pull-mode event port: arrivals queue up in
/// the port ring and dispatch() drains the backlog. This is the shape
/// the S29 batched drain amortizes -- plan/interpreter resolution and
/// the pull-request scan happen once per port per dispatch instead of
/// per pending instance.
std::unique_ptr<core::VirtualGateway> make_drain_gateway(bool batched) {
  spec::LinkSpec link_a{"dasA"};
  spec::MessageSpec in = wide_message(2, 4);
  in.set_name("msgIn");
  link_a.add_message(std::move(in));
  spec::PortSpec pull = input_port("msgIn", spec::InfoSemantics::kEvent,
                                   spec::ControlParadigm::kEventTriggered, Duration::zero(),
                                   Duration::zero(), Duration::max(), /*queue=*/32);
  pull.interaction = spec::Interaction::kPull;
  link_a.add_port(pull);
  spec::LinkSpec link_b{"dasB"};
  spec::MessageSpec out = wide_message(2, 4);
  out.set_name("msgOut");
  link_b.add_message(std::move(out));
  link_b.add_port(output_port("msgOut", spec::InfoSemantics::kState,
                              spec::ControlParadigm::kTimeTriggered, Duration::seconds(3600)));
  core::GatewayConfig config;
  config.default_d_acc = Duration::seconds(3600);
  config.batched_dispatch = batched;
  auto gateway = std::make_unique<core::VirtualGateway>("micro", std::move(link_a),
                                                        std::move(link_b), config);
  gateway->finalize();
  return gateway;
}

/// One iteration = deposit `backlog` pending event instances, then one
/// dispatch() that drains them all.
void drain_rounds(benchmark::State& state, bool batched) {
  const int backlog = static_cast<int>(state.range(0));
  auto gateway = make_drain_gateway(batched);
  vn::Port* in_port = gateway->link_a().port("msgIn");
  const spec::MessageSpec& ms = *gateway->link_a().spec().message("msgIn");
  spec::MessageInstance inst = spec::make_instance(ms);
  Instant now = Instant::origin();
  for (int i = 0; i < backlog; ++i) in_port->deposit(inst, now);
  gateway->dispatch(now);  // warm rings, plans and scratch
  for (auto _ : state) {
    now += 10_ms;
    inst.set_send_time(now);
    for (int i = 0; i < backlog; ++i) in_port->deposit(inst, now);
    gateway->dispatch(now);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * backlog);
}

void BM_GatewayDrainBatched(benchmark::State& state) { drain_rounds(state, true); }
BENCHMARK(BM_GatewayDrainBatched)->Arg(4)->Arg(16);

void BM_GatewayDrainPerInstance(benchmark::State& state) { drain_rounds(state, false); }
BENCHMARK(BM_GatewayDrainPerInstance)->Arg(4)->Arg(16);

void BM_DissectCompiled(benchmark::State& state) {
  auto gateway = make_dissect_gateway(static_cast<int>(state.range(0)));
  const spec::MessageSpec& ms = *gateway->link_a().spec().message("msgIn");
  const spec::MessageInstance inst = spec::make_instance(ms);
  Instant now = Instant::origin();
  gateway->on_input(0, inst, now);  // warm the repository slots
  for (auto _ : state) {
    now += 10_ms;
    gateway->on_input(0, inst, now);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DissectCompiled)->Arg(4)->Arg(16);

/// The seed's dissect loop, emulated: per element a fresh ElementInstance
/// is built with name-keyed set_field() calls and stored through the
/// name-keyed repository interface (resolve() per store).
void BM_DissectStringPath(benchmark::State& state) {
  const spec::MessageSpec ms = wide_message(static_cast<int>(state.range(0)), 4);
  const spec::MessageInstance inst = spec::make_instance(ms);
  core::Repository repo;
  for (const spec::ElementSpec& es : ms.elements())
    if (es.convertible)
      repo.declare(core::ElementDecl{es.name, spec::InfoSemantics::kState,
                                     Duration::seconds(3600), 4});
  Instant now = Instant::origin();
  for (auto _ : state) {
    now += 10_ms;
    for (std::size_t e = 0; e < ms.elements().size(); ++e) {
      const spec::ElementSpec& es = ms.elements()[e];
      if (!es.convertible) continue;
      core::ElementInstance ei;
      ei.observed_at = now;
      for (std::size_t f = 0; f < es.fields.size(); ++f)
        ei.set_field(es.fields[f].name, inst.elements()[e].fields[f]);
      repo.store(es.name, std::move(ei), now);
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DissectStringPath)->Arg(4)->Arg(16);

/// Compiled construct in the real engine: fresh repository versions are
/// written by dense id, then dispatch() runs the construct plan of the
/// event-triggered output and emits into a no-op emitter.
void BM_ConstructCompiled(benchmark::State& state) {
  auto gateway = make_gateway(static_cast<int>(state.range(0)));
  core::Repository& repo = gateway->repository();
  std::vector<std::pair<core::ElementId, core::ElementInstance>> stores;
  for (int e = 0; e < state.range(0); ++e) {
    core::ElementInstance ei;
    for (int f = 0; f < 4; ++f) ei.set_field("f" + std::to_string(f), ta::Value{f});
    stores.emplace_back(*repo.id_of("e" + std::to_string(e)), std::move(ei));
  }
  Instant now = Instant::origin();
  for (auto _ : state) {
    now += 10_ms;
    for (auto& [id, ei] : stores) {
      ei.observed_at = now;
      repo.store_copy(id, ei, now);
    }
    gateway->dispatch(now);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ConstructCompiled)->Arg(4)->Arg(16);

/// The seed's construct loop, emulated: a fresh MessageInstance per
/// emission, each element fetched by name (copying), each field copied
/// through a string-keyed scan.
void BM_ConstructStringPath(benchmark::State& state) {
  const spec::MessageSpec ms = wide_message(static_cast<int>(state.range(0)), 4);
  core::Repository repo;
  std::vector<std::pair<core::ElementId, core::ElementInstance>> stores;
  for (const spec::ElementSpec& es : ms.elements()) {
    if (!es.convertible) continue;
    const auto id = repo.declare(core::ElementDecl{es.name, spec::InfoSemantics::kState,
                                                   Duration::seconds(3600), 4});
    core::ElementInstance ei;
    for (const spec::FieldSpec& fs : es.fields) ei.set_field(fs.name, ta::Value{1});
    stores.emplace_back(id, std::move(ei));
  }
  Instant now = Instant::origin();
  for (auto _ : state) {
    now += 10_ms;
    for (auto& [id, ei] : stores) {
      ei.observed_at = now;
      repo.store_copy(id, ei, now);  // same store cost as the compiled bench
    }
    spec::MessageInstance out = spec::make_instance(ms);
    for (std::size_t e = 0; e < ms.elements().size(); ++e) {
      const spec::ElementSpec& es = ms.elements()[e];
      if (!es.convertible) continue;
      auto fetched = repo.fetch(es.name, now);
      if (!fetched) continue;
      for (std::size_t f = 0; f < es.fields.size(); ++f) {
        if (es.fields[f].is_static()) continue;
        if (const ta::Value* v = fetched->field(es.fields[f].name))
          out.elements()[e].fields[f] = *v;
      }
    }
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ConstructStringPath)->Arg(4)->Arg(16);

/// Dense-id repository round trip: copy-assigning store + borrowed state
/// fetch, zero allocations after warm-up.
void BM_RepositoryStoreFetchStateInterned(benchmark::State& state) {
  core::Repository repo;
  const core::ElementId id =
      repo.declare(core::ElementDecl{"s", spec::InfoSemantics::kState, 1_s, 4});
  core::ElementInstance inst;
  inst.set_field("value", ta::Value{1});
  inst.set_field("t", ta::Value{Instant::origin()});
  Instant now = Instant::origin();
  repo.store_copy(id, inst, now);  // warm the slot
  for (auto _ : state) {
    now += 1_ms;
    repo.store_copy(id, inst, now);
    benchmark::DoNotOptimize(repo.fetch_state(id, now));
  }
}
BENCHMARK(BM_RepositoryStoreFetchStateInterned);

void BM_RepositoryStoreFetchEventInterned(benchmark::State& state) {
  core::Repository repo;
  const core::ElementId id =
      repo.declare(core::ElementDecl{"e", spec::InfoSemantics::kEvent, 1_s, 64});
  core::ElementInstance inst;
  inst.set_field("value", ta::Value{1});
  core::ElementInstance out;
  Instant now = Instant::origin();
  for (auto _ : state) {
    now += 1_ms;
    repo.store_copy(id, inst, now);
    benchmark::DoNotOptimize(repo.consume_into(id, out));
  }
}
BENCHMARK(BM_RepositoryStoreFetchEventInterned);

void BM_RepositoryStoreFetchState(benchmark::State& state) {
  core::Repository repo;
  repo.declare(core::ElementDecl{"s", spec::InfoSemantics::kState, 1_s, 4});
  core::ElementInstance inst;
  inst.set_field("value", ta::Value{1});
  inst.set_field("t", ta::Value{Instant::origin()});
  Instant now = Instant::origin();
  for (auto _ : state) {
    now += 1_ms;
    repo.store("s", inst, now);
    benchmark::DoNotOptimize(repo.fetch("s", now));
  }
}
BENCHMARK(BM_RepositoryStoreFetchState);

void BM_RepositoryStoreFetchEvent(benchmark::State& state) {
  core::Repository repo;
  repo.declare(core::ElementDecl{"e", spec::InfoSemantics::kEvent, 1_s, 64});
  core::ElementInstance inst;
  inst.set_field("value", ta::Value{1});
  Instant now = Instant::origin();
  for (auto _ : state) {
    now += 1_ms;
    repo.store("e", inst, now);
    benchmark::DoNotOptimize(repo.fetch("e", now));
  }
}
BENCHMARK(BM_RepositoryStoreFetchEvent);

void BM_AutomatonReceiveStep(benchmark::State& state) {
  const ta::AutomatonSpec spec = ta::make_interarrival_receive("r", "m", 4_ms, 1_s);
  ta::Interpreter interp{spec};
  Instant now = Instant::origin();
  interp.restart(now);
  for (auto _ : state) {
    now += 10_ms;
    benchmark::DoNotOptimize(interp.on_receive("m", now));
  }
}
BENCHMARK(BM_AutomatonReceiveStep);

void BM_GuardEvaluation(benchmark::State& state) {
  const ta::ExprPtr guard =
      ta::parse_expression("n == 0 || (x >= 4000000 && x <= 100000000)").value();
  class Env final : public ta::Environment {
   public:
    ta::Value get(const std::string& name) const override {
      return name == "n" ? ta::Value{1} : ta::Value{Duration::milliseconds(10)};
    }
    void set(const std::string&, const ta::Value&) override {}
    ta::Value call(const std::string&, const std::vector<ta::Value>&) override { return {}; }
  } env;
  for (auto _ : state) {
    benchmark::DoNotOptimize(guard->evaluate(env));
  }
}
BENCHMARK(BM_GuardEvaluation);

// Forwards google-benchmark's console output into the harness so the
// BENCH_e11.json rows mirror what the terminal shows, and collects the
// per-benchmark timings as structured JSON.
class HarnessReporter : public benchmark::ConsoleReporter {
 public:
  explicit HarnessReporter(Harness& harness) : harness_(harness) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      harness_.note_line(run.benchmark_name());
      obs::json::Object o;
      o.emplace_back("name", run.benchmark_name());
      o.emplace_back("iterations", static_cast<std::uint64_t>(run.iterations));
      o.emplace_back("real_ns", run.GetAdjustedRealTime());
      o.emplace_back("cpu_ns", run.GetAdjustedCPUTime());
      results_.push_back(obs::json::Value{std::move(o)});
      cpu_ns_[run.benchmark_name()] = run.GetAdjustedCPUTime();
    }
  }

  obs::json::Array take_results() { return std::move(results_); }

  /// string-path cpu / interned-path cpu (>1 means the compiled path is
  /// faster); 0 when either row is missing.
  double speedup(const std::string& interned, const std::string& string_path) const {
    const auto a = cpu_ns_.find(interned);
    const auto b = cpu_ns_.find(string_path);
    if (a == cpu_ns_.end() || b == cpu_ns_.end() || a->second <= 0.0) return 0.0;
    return b->second / a->second;
  }

 private:
  Harness& harness_;
  obs::json::Array results_;
  std::map<std::string, double> cpu_ns_;
};

}  // namespace

int main(int argc, char** argv) {
  Harness harness{argc, argv, "e11"};
  // Google benchmark must not see the harness flags; it rejects unknown
  // arguments. The harness's --filter maps onto --benchmark_filter (this
  // binary's microbenchmarks run serially; google-benchmark owns timing).
  std::string filter_flag = "--benchmark_filter=" + harness.filter();
  std::vector<char*> bench_argv{argv[0]};
  if (!harness.filter().empty()) bench_argv.push_back(filter_flag.data());
  int bench_argc = static_cast<int>(bench_argv.size());
  benchmark::Initialize(&bench_argc, bench_argv.data());
  HarnessReporter reporter{harness};
  benchmark::RunSpecifiedBenchmarks(&reporter);
  // Interned-vs-string ratios (>1 = compiled path faster). The acceptance
  // bar for S23 is >= 2x on the repository store/fetch round trip.
  obs::json::Object speedups;
  speedups.emplace_back("repo_state", reporter.speedup("BM_RepositoryStoreFetchStateInterned",
                                                       "BM_RepositoryStoreFetchState"));
  speedups.emplace_back("repo_event", reporter.speedup("BM_RepositoryStoreFetchEventInterned",
                                                       "BM_RepositoryStoreFetchEvent"));
  speedups.emplace_back("dissect",
                        reporter.speedup("BM_DissectCompiled/16", "BM_DissectStringPath/16"));
  speedups.emplace_back("construct",
                        reporter.speedup("BM_ConstructCompiled/16", "BM_ConstructStringPath/16"));
  // Compiled-wire-layout and batched-dispatch ratios (S29).
  speedups.emplace_back("encode", reporter.speedup("BM_EncodeCompiled/16", "BM_EncodeFieldwalk/16"));
  speedups.emplace_back("decode", reporter.speedup("BM_DecodeCompiled/16", "BM_DecodeFieldwalk/16"));
  speedups.emplace_back("dispatch_batch", reporter.speedup("BM_GatewayDrainBatched/16",
                                                           "BM_GatewayDrainPerInstance/16"));
  harness.set_json("speedups", obs::json::Value{std::move(speedups)});
  harness.set_json("benchmarks", obs::json::Value{reporter.take_results()});
  benchmark::Shutdown();
  return 0;
}
