// E1 -- Error containment: "gateways perform error detection to control
// the forwarding of information and prevent the propagation of timing
// message failures" (paper Sections III-B.3, IV).
//
// A sender in DAS A emits an event message with nominal 10ms
// interarrival; a fraction of gaps are deliberate violations (500us
// early bursts). The gateway's timed automaton enforces the (tmin=4ms,
// tmax=100ms) port specification, with the paper's error-handling hook
// (service restart after 20ms). We sweep the fault rate and compare
// gateway filtering ON vs OFF (ablation): how many ground-truth-faulty
// instances cross into DAS B, and the minimum interarrival observed on
// the DAS-B side (a direct measure of the temporal guarantee exported).
#include <vector>

#include "common.hpp"
#include "fault/message_faults.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "util/statistics.hpp"

using namespace decos;
using namespace decos::bench;
using namespace decos::literals;

namespace {

struct Outcome {
  std::uint64_t sent = 0;
  std::uint64_t ground_truth_faults = 0;
  std::uint64_t admitted = 0;
  std::uint64_t blocked = 0;
  std::uint64_t crossed_faulty = 0;  // ground-truth-faulty instances in DAS B
  double min_output_gap_ms = 0.0;
};

Outcome run(Cell& cell, double early_rate, bool filtering, std::uint64_t seed) {
  spec::LinkSpec link_a{"dasA"};
  link_a.add_message(state_message("msgA", "payload", 1));
  link_a.add_port(input_port("msgA", spec::InfoSemantics::kEvent,
                             spec::ControlParadigm::kEventTriggered, Duration::zero(), 4_ms,
                             100_ms, 64));
  spec::LinkSpec link_b{"dasB"};
  link_b.add_message(state_message("msgB", "payload", 2));
  link_b.add_port(output_port("msgB", spec::InfoSemantics::kEvent,
                              spec::ControlParadigm::kEventTriggered, Duration::zero(), 64));

  core::GatewayConfig config;
  config.temporal_filtering = filtering;
  config.restart_delay = 20_ms;
  config.default_queue_capacity = 64;
  core::VirtualGateway gateway{"e1", std::move(link_a), std::move(link_b), config};
  gateway.finalize();

  // Track what reaches DAS B: instance values mark ground-truth faults.
  Outcome outcome;
  std::optional<Instant> last_output;
  Duration min_gap = Duration::max();
  gateway.link_b().set_emitter("msgB", [&](const spec::MessageInstance& inst) {
    if (inst.elements()[1].fields[0].as_int() == 1) ++outcome.crossed_faulty;
    const Instant now = inst.send_time();
    if (last_output) min_gap = std::min(min_gap, now - *last_output);
    last_output = now;
  });

  fault::TimingFaultProfile profile;
  profile.nominal_interarrival = 10_ms;
  profile.jitter = 500_us;
  profile.early_rate = early_rate;
  profile.early_gap = 500_us;

  Rng rng{seed};
  sim::Simulator sim;
  cell.configure(sim);
  gateway.bind_observability(sim.metrics(), sim.spans());
  Instant t = Instant::origin();
  const spec::MessageSpec& ms = *gateway.link_a().spec().message("msgA");
  for (int i = 0; i < 20000; ++i) {
    bool is_fault = false;
    t += profile.next_gap(rng, is_fault);
    if (is_fault) ++outcome.ground_truth_faults;
    ++outcome.sent;
    sim.schedule_at(t, [&gateway, &ms, &sim, is_fault] {
      gateway.on_input(0, state_instance(ms, is_fault ? 1 : 0, sim.now()), sim.now());
    });
  }
  // Dispatch tick (drains automaton polls and the ET output).
  for (Instant tick = Instant::origin(); tick <= t; tick += 1_ms) {
    sim.schedule_at(tick, [&gateway, &sim] { gateway.dispatch(sim.now()); });
  }
  sim.run_until(t + 10_ms);

  outcome.admitted = gateway.stats().messages_admitted;
  outcome.blocked = gateway.stats().blocked_temporal;
  outcome.min_output_gap_ms = min_gap == Duration::max() ? 0.0 : min_gap.as_ms();
  cell.capture(cell.label(), sim, {{"gw:e1", &gateway.trace()}});
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  Harness harness{argc, argv, "e1"};
  title("E1  error containment at the gateway (timing message failures)",
        "the gateway blocks timing failures of DAS A from propagating into DAS B");

  row("%-10s %-9s %8s %8s %8s %8s %10s %12s", "filtering", "faultrate", "sent", "faults",
      "admitted", "blocked", "crossed", "minGap[ms]");
  ParallelSweep sweep{harness};
  for (const double rate : {0.0, 0.02, 0.05, 0.1, 0.2, 0.5}) {
    for (const bool filtering : {true, false}) {
      char label[64];
      std::snprintf(label, sizeof label, "early=%.2f filtering=%d", rate, filtering ? 1 : 0);
      sweep.add(label, [rate, filtering](Cell& cell) {
        const Outcome o = run(cell, rate, filtering, 42);
        cell.row("%-10s %-9.2f %8llu %8llu %8llu %8llu %10llu %12.3f",
                 filtering ? "on" : "off(abl)", rate, static_cast<unsigned long long>(o.sent),
                 static_cast<unsigned long long>(o.ground_truth_faults),
                 static_cast<unsigned long long>(o.admitted),
                 static_cast<unsigned long long>(o.blocked),
                 static_cast<unsigned long long>(o.crossed_faulty), o.min_output_gap_ms);
      });
    }
  }
  sweep.run();
  row("");
  row("expected shape: with filtering ON, 'crossed' stays near zero and the");
  row("minimum DAS-B interarrival stays >= tmin (4ms); with filtering OFF every");
  row("fault crosses and sub-millisecond gaps appear in DAS B.");

  // Naming containment (same paper claim, name domain): instances whose
  // message name is not in the link specification never cross -- the
  // gateway forwards specified messages only.
  sweep.add("naming containment", [](Cell& cell) {
    spec::LinkSpec link_a{"dasA"};
    link_a.add_message(state_message("msgA", "payload", 1));
    link_a.add_port(input_port("msgA", spec::InfoSemantics::kEvent,
                               spec::ControlParadigm::kEventTriggered, Duration::zero(), 4_ms,
                               100_ms, 64));
    spec::LinkSpec link_b{"dasB"};
    link_b.add_message(state_message("msgB", "payload", 2));
    link_b.add_port(output_port("msgB", spec::InfoSemantics::kEvent,
                                spec::ControlParadigm::kEventTriggered, Duration::zero(), 64));
    core::VirtualGateway gateway{"e1", std::move(link_a), std::move(link_b)};
    gateway.finalize();
    sim::Simulator sim;
    cell.configure(sim);
    gateway.bind_observability(sim.metrics(), sim.spans());

    const spec::MessageSpec rogue = state_message("msgRogue", "payload", 3);
    Instant t = Instant::origin();
    for (int i = 0; i < 100; ++i) {
      t += 10_ms;
      gateway.on_input(0, state_instance(rogue, i, t), t);
    }
    cell.line("");
    cell.row("naming containment: %llu unspecified-message instances in, %llu blocked",
             static_cast<unsigned long long>(gateway.stats().messages_in),
             static_cast<unsigned long long>(gateway.stats().blocked_unknown));
    cell.capture(cell.label(), sim, {{"gw:e1", &gateway.trace()}});
  });
  sweep.run();
  return 0;
}
