// E7 -- Encapsulation / temporal independence of virtual networks
// (paper Sections I, II-A): "a virtual network exhibits specified
// temporal properties, which are independent from the communication
// activities in other virtual networks", and strong fault isolation
// (core service C3) keeps even a babbling node inside its bandwidth
// partition.
//
// VN B carries a 10ms periodic observer message whose delivery count and
// latency jitter we measure, while VN A's offered load sweeps from idle
// to saturation and finally to a babbling-idiot sender. The sweep runs
// twice: with the bus guardian enabled (the architecture's containment)
// and disabled (ablation).
#include "common.hpp"
#include "fault/plan.hpp"
#include "platform/cluster.hpp"
#include "util/statistics.hpp"
#include "vn/et_vn.hpp"
#include "vn/tt_vn.hpp"

using namespace decos;
using namespace decos::bench;
using namespace decos::literals;

namespace {

constexpr Duration kRun = 5_s;

struct Outcome {
  std::uint64_t expected = 0;
  std::uint64_t delivered = 0;
  double jitter_us = 0.0;
  std::uint64_t guardian_blocks = 0;
  std::uint64_t collisions = 0;
};

/// load: VN A messages offered per round (0..4 = its slot budget; above
/// that the pending queue saturates). babble: inject a babbling idiot.
Outcome run(Cell& cell, int load_per_round, bool babble, bool guardian) {
  platform::ClusterConfig config;
  config.nodes = 3;
  config.round_length = 10_ms;
  config.allocations = {
      {1, "dasA", 32, {0, 0, 0, 0}},  // VN A: 4 slots/round on node 0
      {2, "dasB", 32, {1}},           // VN B: 1 slot/round on node 1
  };
  config.bus.guardian_enabled = guardian;
  platform::Cluster cluster{config};
  cell.configure(cluster.simulator());

  vn::EtVirtualNetwork vn_a{"vn-a", 1, 256};
  vn_a.register_message(state_message("msgA", "chatter", 1));
  vn_a.attach_node(cluster.controller(0), cluster.vn_slots(1, 0));

  vn::TtVirtualNetwork vn_b{"vn-b", 2};
  vn_b.register_message(state_message("msgB", "observer", 2));

  // VN B producer on node 1.
  platform::Partition& p1 = cluster.component(1).add_partition("obs", "dasB", 1_ms, 1_ms);
  platform::FunctionJob& observer =
      p1.add_function_job("observer", [&vn_b](platform::FunctionJob& self, Instant now) {
        self.ports()[0]->deposit(state_instance(*vn_b.message_spec("msgB"), 1, now), now);
      });
  vn_b.attach_sender(cluster.controller(1), observer.add_port(output_port(
                         "msgB", spec::InfoSemantics::kState,
                         spec::ControlParadigm::kTimeTriggered, 10_ms)),
                     cluster.vn_slots(2, 1));

  // VN B consumer on node 2: record interarrival jitter.
  vn::Port consumer{input_port("msgB", spec::InfoSemantics::kState,
                               spec::ControlParadigm::kTimeTriggered, 10_ms)};
  vn_b.attach_receiver(cluster.controller(2), consumer);
  SampleSet interarrivals;
  std::uint64_t delivered = 0;
  std::optional<Instant> last;
  consumer.set_notify([&](vn::Port& port) {
    ++delivered;
    if (last) interarrivals.add(cluster.simulator().now() - *last);
    last = cluster.simulator().now();
    port.read();
  });

  // VN A load generator on node 0.
  if (load_per_round > 0) {
    platform::Partition& p0 = cluster.component(0).add_partition("chat", "dasA", 2_ms, 1_ms);
    p0.add_function_job("chatter", [&vn_a, &cluster, load_per_round](platform::FunctionJob&,
                                                                     Instant now) {
      for (int i = 0; i < load_per_round; ++i) {
        vn_a.send(cluster.controller(0),
                  state_instance(*vn_a.message_spec("msgA"), i, now));
      }
    });
  }
  fault::FaultPlan plan{cluster.simulator()};
  if (babble) {
    // The babbler sprays a frame every 50us for 2s (a ~4% duty cycle on
    // the medium), claiming VN B's slot.
    const auto vn_b_slots = cluster.vn_slots(2, 1);
    plan.babble(cluster.controller(0), Instant::origin() + 1_s, vn_b_slots[0], 2,
                40000, 50_us);
  }

  cluster.start();
  cluster.run_for(kRun);

  Outcome outcome;
  outcome.expected = static_cast<std::uint64_t>(kRun / 10_ms);
  outcome.delivered = delivered;
  outcome.jitter_us = interarrivals.spread() / 1e3;
  outcome.guardian_blocks = cluster.bus().frames_blocked();
  outcome.collisions = cluster.bus().collisions();
  cell.capture(cell.label(), cluster.simulator(), {{"bus", &cluster.bus().trace()}});
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  Harness harness{argc, argv, "e7"};
  title("E7  temporal independence of virtual networks under cross-DAS load",
        "VN B's delivery rate and jitter are unaffected by VN A's load; the bus "
        "guardian contains even a babbling idiot to its own slots");

  row("%-9s %-14s %-8s %10s %10s %12s %9s %10s", "guardian", "VN-A load", "babble",
      "expected", "delivered", "jitter[us]", "blocked", "collisions");
  ParallelSweep sweep{harness};
  for (const bool guardian : {true, false}) {
    for (const int load : {0, 2, 4, 16}) {
      for (const bool babble : {false, true}) {
        if (!babble && !guardian) continue;  // uninteresting ablation cells
        char label[64];
        std::snprintf(label, sizeof label, "load=%d babble=%d guardian=%d", load,
                      babble ? 1 : 0, guardian ? 1 : 0);
        sweep.add(label, [load, babble, guardian](Cell& cell) {
          const Outcome o = run(cell, load, babble, guardian);
          cell.row("%-9s %-14d %-8s %10llu %10llu %12.2f %9llu %10llu",
                   guardian ? "on" : "off(abl)", load, babble ? "yes" : "no",
                   static_cast<unsigned long long>(o.expected),
                   static_cast<unsigned long long>(o.delivered), o.jitter_us,
                   static_cast<unsigned long long>(o.guardian_blocks),
                   static_cast<unsigned long long>(o.collisions));
        });
      }
    }
  }
  sweep.run();
  row("");
  row("expected shape: with the guardian on, VN B delivers every instance with");
  row("microsecond jitter regardless of VN A's load or babbling (the babble is");
  row("fully blocked). With the guardian off, the babbler collides with VN B's");
  row("slot and deliveries are lost.");
  return 0;
}
