// E5 -- Event-queue sizing (paper Section IV, Fig. 5): "a message buffer
// is a queue that can hold a statically defined number of message
// instances to accommodate for temporary intervals of time with
// imbalances of message interarrival and service times. The
// determination of the queue sizes is derived from the relationships
// between message interarrival and service times, e.g., as expressed via
// a probabilistic model."
//
// Arrivals are Poisson with mean interarrival 10ms; the gateway's TT
// output serves one instance per period S (a deterministic server). We
// sweep the queue capacity K and the utilization rho = S/10ms, measure
// the overflow (loss) probability, and print the M/M/1/K closed form as
// the probabilistic reference model (an upper-bound approximation for
// the M/D/1/K system simulated here).
#include <cmath>

#include "common.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

using namespace decos;
using namespace decos::bench;
using namespace decos::literals;

namespace {

constexpr Duration kMeanInterarrival = 10_ms;
constexpr int kArrivals = 60000;

double mm1k_loss(double rho, std::size_t k) {
  // Blocking probability of M/M/1/K (K = waiting room incl. service).
  if (std::abs(rho - 1.0) < 1e-9) return 1.0 / static_cast<double>(k + 1);
  const double num = (1.0 - rho) * std::pow(rho, static_cast<double>(k));
  const double den = 1.0 - std::pow(rho, static_cast<double>(k + 1));
  return num / den;
}

double run(double rho, std::size_t capacity, std::uint64_t seed) {
  const auto service = Duration::nanoseconds(
      static_cast<std::int64_t>(rho * static_cast<double>(kMeanInterarrival.ns())));

  spec::LinkSpec link_a{"dasA"};
  link_a.add_message(state_message("msgA", "burst", 1));
  link_a.add_port(input_port("msgA", spec::InfoSemantics::kEvent,
                             spec::ControlParadigm::kEventTriggered, Duration::zero(),
                             Duration::zero(), Duration::max(), capacity + 8));
  spec::LinkSpec link_b{"dasB"};
  link_b.add_message(state_message("msgB", "burst", 2));
  link_b.add_port(output_port("msgB", spec::InfoSemantics::kEvent,
                              spec::ControlParadigm::kTimeTriggered, service, capacity + 8));

  core::GatewayConfig config;
  config.default_queue_capacity = capacity;
  core::VirtualGateway gateway{"e5", std::move(link_a), std::move(link_b), config};
  gateway.finalize();

  Rng rng{seed};
  sim::Simulator sim;
  Instant t = Instant::origin();
  const spec::MessageSpec& ms = *gateway.link_a().spec().message("msgA");
  for (int i = 0; i < kArrivals; ++i) {
    t += rng.exponential_duration(kMeanInterarrival);
    sim.schedule_at(t, [&gateway, &ms, &sim] {
      gateway.on_input(0, state_instance(ms, 1, sim.now()), sim.now());
    });
  }
  // Service ticks: one construction opportunity per service period.
  for (Instant tick = Instant::origin(); tick <= t; tick += service) {
    sim.schedule_at(tick, [&gateway, &sim] { gateway.dispatch(sim.now()); });
  }
  sim.run_until(t + 1_s);

  return static_cast<double>(gateway.stats().element_overflows) /
         static_cast<double>(kArrivals);
}

}  // namespace

int main(int argc, char** argv) {
  Harness harness{argc, argv, "e5"};
  title("E5  repository event-queue sizing vs the probabilistic model",
        "bounded queues sized from the interarrival/service-time model give a "
        "predictable, small loss probability");

  row("%-6s %-4s %12s %14s", "rho", "K", "measured", "M/M/1/K ref");
  ParallelSweep sweep{harness};
  for (const double rho : {0.5, 0.8, 0.9, 0.95}) {
    for (const std::size_t capacity : {1u, 2u, 4u, 8u, 16u, 32u}) {
      char label[32];
      std::snprintf(label, sizeof label, "rho=%.2f K=%zu", rho, capacity);
      sweep.add(label, [rho, capacity](Cell& cell) {
        const double measured = run(rho, capacity, 7);
        cell.row("%-6.2f %-4zu %11.4f%% %13.4f%%", rho, capacity, 100.0 * measured,
                 100.0 * mm1k_loss(rho, capacity));
      });
    }
  }
  sweep.run();
  row("");
  row("expected shape: loss falls geometrically with K and rises with rho; the");
  row("measured (deterministic-server) loss sits at or below the M/M/1/K");
  row("reference, so sizing queues from the probabilistic model is safe.");
  return 0;
}
