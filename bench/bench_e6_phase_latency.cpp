// E6 -- TT<->TT redirection under period/phase mismatch (paper Section
// III-A.2): "When the interacting DASes operate with different periods
// or phase-shift relationships of the time-triggered communication
// schedules, the gateway needs to buffer messages. The forwarding and
// buffering of messages can be performed according to a schedule that is
// fixed at design time."
//
// Full-cluster experiment: a TT sender (period P1) in DAS A, the gateway
// on node 2, and a TT receiver (period P2, phase swept) in DAS B. We
// measure the end-to-end latency (producer port deposit -> consumer port
// delivery, via the wire timestamp) for each (P1, P2, phase) cell.
#include "common.hpp"
#include "core/gateway_job.hpp"
#include "core/wiring.hpp"
#include "obs/analysis.hpp"
#include "platform/cluster.hpp"
#include "util/statistics.hpp"
#include "vn/tt_vn.hpp"

using namespace decos;
using namespace decos::bench;
using namespace decos::literals;

namespace {

struct Outcome {
  double min_ms = 0.0;
  double avg_ms = 0.0;
  double max_ms = 0.0;
  double jitter_ms = 0.0;
  std::size_t samples = 0;
};

/// One cell: TT VN A slot at `phase_a` in the round, TT VN B slot at
/// `phase_b`. The gateway's output port has period P2.
Outcome run(Cell& cell, Duration p1, Duration p2, double phase_fraction, Duration run_for) {
  platform::ClusterConfig config;
  config.nodes = 3;
  config.round_length = 10_ms;
  config.allocations = {
      {1, "dasA", 32, {0}},
      {2, "dasB", 32, {2}},
  };
  platform::Cluster cluster{config};
  cell.configure(cluster.simulator());

  vn::TtVirtualNetwork vn_a{"vn-a", 1};
  vn_a.register_message(state_message("msgA", "image", 1));
  vn::TtVirtualNetwork vn_b{"vn-b", 2};

  spec::LinkSpec link_a{"dasA"};
  link_a.add_message(state_message("msgA", "image", 1));
  link_a.add_port(input_port("msgA", spec::InfoSemantics::kState,
                             spec::ControlParadigm::kTimeTriggered, p1, 1_us,
                             Duration::seconds(3600)));
  spec::LinkSpec link_b{"dasB"};
  link_b.add_message(state_message("msgB", "image", 2));
  link_b.add_port(output_port("msgB", spec::InfoSemantics::kState,
                              spec::ControlParadigm::kTimeTriggered, p2));

  core::GatewayConfig gwc;
  gwc.default_d_acc = p1 * 4;  // generous: this experiment measures latency
  gwc.dispatch_period = 1_ms;
  core::VirtualGateway gateway{"e6", std::move(link_a), std::move(link_b), gwc};
  gateway.finalize();
  core::wire_tt_link(gateway, 0, vn_a, cluster.controller(2), {});
  core::wire_tt_link(gateway, 1, vn_b, cluster.controller(2),
                     {{"msgB", cluster.vn_slots(2, 2)}});
  cluster.component(2)
      .add_partition("gw", "architecture", 0_ms, 1_ms)
      .add_job(std::make_unique<core::GatewayJob>(gateway));

  // Producer job on node 0: activated every round, but only produces a
  // fresh image every P1 (skipping activations), at a phase offset within
  // the round derived from `phase_fraction`.
  const Duration producer_phase = Duration::nanoseconds(
      static_cast<std::int64_t>(phase_fraction * static_cast<double>(config.round_length.ns())));
  const auto produce_every = static_cast<std::uint64_t>(p1 / config.round_length);
  platform::Component& c0 = cluster.component(0);
  platform::Partition& p0 =
      c0.add_partition("prod", "dasA", producer_phase.mod(9_ms), 1_ms);
  platform::FunctionJob& producer = p0.add_function_job(
      "producer", [&vn_a, produce_every](platform::FunctionJob& self, Instant now) {
        if (self.activations() % produce_every != 0) return;
        self.ports()[0]->deposit(state_instance(*vn_a.message_spec("msgA"), 1, now), now);
      });
  vn_a.attach_sender(cluster.controller(0), producer.add_port(output_port(
                         "msgA", spec::InfoSemantics::kState,
                         spec::ControlParadigm::kTimeTriggered, p1)),
                     cluster.vn_slots(1, 0));

  // Consumer: sample latency at every delivery on node 1's input port.
  SampleSet latencies;
  vn::Port consumer_port{input_port("msgB", spec::InfoSemantics::kState,
                                    spec::ControlParadigm::kTimeTriggered, p2)};
  vn_b.attach_receiver(cluster.controller(1), consumer_port);
  Instant last_seen;
  consumer_port.set_notify([&](vn::Port& port) {
    if (auto inst = port.read()) {
      // Latency: original production instant (carried in the element's
      // timestamp field) to delivery now.
      const Instant produced = inst->elements()[1].fields[1].as_instant();
      if (produced == last_seen) return;  // same image re-sent: skip
      last_seen = produced;
      latencies.add(cluster.simulator().now() - produced);
    }
  });

  cluster.start();
  cluster.run_for(run_for);

  Outcome outcome;
  outcome.samples = latencies.count();
  if (!latencies.empty()) {
    outcome.min_ms = latencies.min() / 1e6;
    outcome.avg_ms = latencies.mean() / 1e6;
    outcome.max_ms = latencies.max() / 1e6;
    outcome.jitter_ms = latencies.spread() / 1e6;
  }
  cell.capture(cell.label(), cluster.simulator(),
               {{"bus", &cluster.bus().trace()}, {"gw:e6", &gateway.trace()}});
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  Harness harness{argc, argv, "e6", {{"--quick"}}};
  bool quick = false;  // --quick: fewer phases, 1s cells (determinism test)
  for (int i = 1; i < argc; ++i)
    if (std::string{argv[i]} == "--quick") quick = true;
  const Duration run_for = quick ? 1_s : 5_s;

  title("E6  TT<->TT gateway latency under period/phase mismatch",
        "matched schedules give constant low latency; mismatched periods or "
        "phases force the gateway to buffer, adding up to one consumer period");

  row("%-8s %-8s %-7s %8s %8s %8s %8s %8s", "P1[ms]", "P2[ms]", "phase", "n", "min", "avg",
      "max", "jitter");
  struct CellResult {
    int p1_ms, p2_ms;
    double phase;
    Outcome o;
  };
  ParallelSweep sweep{harness};
  const std::vector<double> phases =
      quick ? std::vector<double>{0.0, 0.5} : std::vector<double>{0.0, 0.25, 0.5, 0.75};
  std::vector<CellResult> results;
  results.reserve(3 * phases.size());  // no reallocation: cells hold raw slot pointers
  for (const auto [p1_ms, p2_ms] : {std::pair{10, 10}, {10, 20}, {20, 10}}) {
    for (const double phase : phases) {
      char label[64];
      std::snprintf(label, sizeof label, "p1=%dms p2=%dms phase=%.2f", p1_ms, p2_ms, phase);
      if (!harness.matches(label)) continue;
      results.push_back(CellResult{p1_ms, p2_ms, phase, Outcome{}});
      Outcome* out = &results.back().o;  // stable: all slots reserved before run()
      sweep.add(label, [out, p1_ms = p1_ms, p2_ms = p2_ms, phase, run_for](Cell& cell) {
        *out = run(cell, Duration::milliseconds(p1_ms), Duration::milliseconds(p2_ms), phase,
                   run_for);
        cell.row("%-8d %-8d %-7.2f %8zu %8.2f %8.2f %8.2f %8.2f", p1_ms, p2_ms, phase,
                 out->samples, out->min_ms, out->avg_ms, out->max_ms, out->jitter_ms);
      });
    }
  }
  sweep.run();
  obs::json::Array cells;
  for (const CellResult& r : results) {
    obs::json::Object cell;
    cell.emplace_back("p1_ms", r.p1_ms);
    cell.emplace_back("p2_ms", r.p2_ms);
    cell.emplace_back("phase", r.phase);
    cell.emplace_back("n", r.o.samples);
    cell.emplace_back("min_ms", r.o.min_ms);
    cell.emplace_back("avg_ms", r.o.avg_ms);
    cell.emplace_back("max_ms", r.o.max_ms);
    cell.emplace_back("jitter_ms", r.o.jitter_ms);
    cells.push_back(obs::json::Value{std::move(cell)});
  }
  harness.set_json("cells", obs::json::Value{std::move(cells)});
  row("");
  row("expected shape: the design-time-fixed schedule makes every cell fully");
  row("deterministic (jitter 0). The phase shift moves latency by up to one");
  row("round (here 13..20.5ms); a period mismatch in either direction halves");
  row("the delivered image rate (each image is forwarded once, state semantics).");

  if (harness.tracing()) {
    // In-process phase breakdown over the very spans the trace dump
    // carries: decotrace over --trace-out must reproduce these numbers
    // exactly (same records, two readers).
    const obs::Breakdown breakdown = obs::phase_breakdown(harness.captured_spans());
    row("");
    row("per-phase latency percentiles (traced cells, ns):");
    for (const auto& [flow, stats] : breakdown) {
      row("%s  (%zu traces)", flow.c_str(), stats.traces);
      for (const char* phase : obs::kBreakdownPhases) {
        const auto it = stats.phases.find(phase);
        if (it == stats.phases.end() || it->second.empty()) continue;
        row("  %-10s n=%-6zu p50=%-12lld p99=%-12lld max=%lld", phase, it->second.count(),
            static_cast<long long>(it->second.percentile(0.50)),
            static_cast<long long>(it->second.percentile(0.99)),
            static_cast<long long>(it->second.max()));
      }
    }
    harness.set_json("phase_breakdown", obs::breakdown_to_json(breakdown));
  }
  return 0;
}
