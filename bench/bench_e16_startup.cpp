// E16 -- Cluster cold start and (re)integration. The time-triggered base
// architecture the paper builds on must establish its global time base
// before any virtual network or gateway can operate. We measure the
// time from power-on (all nodes listening, clocks offset by up to half
// a round) until the cluster is fully operational: every node
// transmitting in its slots, zero guardian blocks, precision within the
// sync bound -- as a function of cluster size and of the listen-timeout
// stagger. A late joiner (powered on after 1s) measures reintegration.
#include <memory>

#include "common.hpp"
#include "tt/controller.hpp"
#include "services/clock_sync.hpp"
#include "util/rng.hpp"
#include "util/statistics.hpp"

using namespace decos;
using namespace decos::bench;
using namespace decos::literals;

namespace {

struct Outcome {
  double all_integrated_ms = 0.0;  // instant the last node left integration
  double all_sending_ms = 0.0;     // instant every node has sent >= 1 frame
  std::uint64_t guardian_blocks = 0;
  double final_precision_us = 0.0;
};

Outcome run(std::size_t nodes, Duration stagger, std::uint64_t seed) {
  sim::Simulator sim;
  // The cluster free-runs on the elected master's base; the central
  // guardian's windows are anchored to the nominal timeline, so allow
  // for the residual mean-crystal drift over the 3s run (see DESIGN.md
  // faithfulness notes).
  tt::BusConfig bus_config;
  bus_config.guardian_tolerance = Duration::microseconds(500);
  tt::TtBus bus{sim, tt::make_uniform_schedule(10_ms, nodes, 1, 16), bus_config};
  Rng rng{seed};

  std::vector<std::unique_ptr<tt::Controller>> controllers;
  std::vector<std::unique_ptr<services::ClockSync>> syncs;
  for (std::size_t i = 0; i < nodes; ++i) {
    const Duration offset = Duration::microseconds(rng.uniform_int(-5000, 5000));
    const double drift = rng.uniform(-50.0, 50.0);
    controllers.push_back(std::make_unique<tt::Controller>(
        sim, bus, static_cast<tt::NodeId>(i), sim::DriftingClock{drift, offset}));
    syncs.push_back(std::make_unique<services::ClockSync>(*controllers.back()));
    controllers.back()->start_integration(20_ms + stagger * static_cast<std::int64_t>(i));
  }

  Outcome outcome;
  // Poll integration state each millisecond (measurement only).
  std::function<void()> poll = [&] {
    const double now_ms = sim.now().as_ms();
    bool all_integrated = true;
    bool all_sending = true;
    for (const auto& c : controllers) {
      if (c->integrating()) all_integrated = false;
      if (c->frames_sent() == 0) all_sending = false;
    }
    if (all_integrated && outcome.all_integrated_ms == 0.0) outcome.all_integrated_ms = now_ms;
    if (all_sending && outcome.all_sending_ms == 0.0) outcome.all_sending_ms = now_ms;
    if (sim.now() < Instant::origin() + 3_s) sim.schedule_after(1_ms, poll);
  };
  sim.schedule_after(1_ms, poll);
  sim.run_until(Instant::origin() + 3_s);

  outcome.guardian_blocks = bus.frames_blocked();
  Duration lo = Duration::max();
  Duration hi = -Duration::max();
  for (const auto& c : controllers) {
    const Duration off = c->clock().read(sim.now()) - sim.now();
    lo = std::min(lo, off);
    hi = std::max(hi, off);
  }
  outcome.final_precision_us = (hi - lo).as_us();
  return outcome;
}

double reintegration_ms(std::uint64_t seed) {
  sim::Simulator sim;
  tt::TtBus bus{sim, tt::make_uniform_schedule(10_ms, 4, 1, 16)};
  Rng rng{seed};
  std::vector<std::unique_ptr<tt::Controller>> controllers;
  for (std::size_t i = 0; i < 4; ++i) {
    // Nodes 0..2 form the running, synchronized cluster; node 3 powers
    // on later with an arbitrary clock offset.
    const Duration offset =
        i == 3 ? Duration::microseconds(rng.uniform_int(-5000, 5000)) : Duration::zero();
    controllers.push_back(std::make_unique<tt::Controller>(
        sim, bus, static_cast<tt::NodeId>(i), sim::DriftingClock{0.0, offset}));
  }
  for (std::size_t i = 0; i < 3; ++i) controllers[i]->start();
  // Node 3 powers on at t=1s.
  sim.schedule_at(Instant::origin() + 1_s,
                  [&] { controllers[3]->start_integration(200_ms); });
  Instant joined = Instant::max();
  std::function<void()> watch = [&] {
    if (!controllers[3]->integrating() && controllers[3]->frames_sent() > 0 &&
        joined == Instant::max())
      joined = sim.now();
    if (sim.now() < Instant::origin() + 2_s) sim.schedule_after(1_ms, watch);
  };
  sim.schedule_at(Instant::origin() + 1_s, watch);
  sim.run_until(Instant::origin() + 2_s);
  return (joined - (Instant::origin() + 1_s)).as_ms();
}

}  // namespace

int main(int argc, char** argv) {
  Harness harness{argc, argv, "e16"};
  title("E16  cold start and reintegration of the time-triggered base",
        "the cluster establishes its global time base from silence (staggered "
        "cold-start masters) and late joiners integrate within ~a round");

  row("%-7s %-13s %16s %14s %10s %16s", "nodes", "stagger[ms]", "integrated[ms]",
      "sending[ms]", "blocked", "precision[us]");
  ParallelSweep sweep{harness};
  for (const std::size_t nodes : {2u, 4u, 8u}) {
    for (const auto stagger_ms : {20, 50}) {
      char label[40];
      std::snprintf(label, sizeof label, "nodes=%zu stagger=%dms", nodes, stagger_ms);
      sweep.add(label, [nodes, stagger_ms](Cell& cell) {
        const Outcome o = run(nodes, Duration::milliseconds(stagger_ms), 5);
        cell.row("%-7zu %-13d %16.1f %14.1f %10llu %16.2f", nodes, stagger_ms,
                 o.all_integrated_ms, o.all_sending_ms,
                 static_cast<unsigned long long>(o.guardian_blocks), o.final_precision_us);
      });
    }
  }
  sweep.run();
  row("");
  row("late-joiner reintegration (3 running nodes, node 4 powers on at t=1s):");
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    char label[32];
    std::snprintf(label, sizeof label, "reintegration seed=%llu",
                  static_cast<unsigned long long>(seed));
    sweep.add(label, [seed](Cell& cell) {
      cell.row("  seed %llu: operational %.1f ms after power-on",
               static_cast<unsigned long long>(seed), reintegration_ms(seed));
    });
  }
  sweep.run();
  row("");
  row("expected shape: every listener adopts the first master frame, so full");
  row("integration lands one listen-timeout (+1 slot) after power-on regardless");
  row("of stagger or cluster size, with zero guardian blocks; a late joiner is");
  row("operational within ~2 rounds. Precision: sub-us once >= 3 nodes give the");
  row("fault-tolerant average its 2k+1 readings (a 2-node cluster cannot");
  row("resynchronize with k=1 and free-runs on its initial agreement).");
  return 0;
}
