// E22 -- live gateway saturation (DESIGN.md S30): the rt::GatewayRuntime
// event loop fed real byte frames over the SPSC ring transport, measured
// in host time. A paced generator thread-shares the box with the runtime:
// it pushes msgA frames (the send instant rides in the element's
// timestamp field) at a swept offered load, drains the msgB egress ring,
// and computes the end-to-end latency frame-by-frame from its own clock.
// The sweep spans ~64x in offered rate, so the ladder brackets the
// saturation knee: below it achieved == offered and latency is flat,
// above it the ingress ring rejects the excess (visible backpressure,
// never a stall) and achieved plateaus at the live gateway's capacity.
//
// check_bench_regression.py --suite e22 gates the committed BENCH_E22
// baseline on the per-point achieved throughput (loose ratio: host-time
// numbers cross machines) and on the lowest-load p99 latency.
#include <memory>
#include <thread>

#include "common.hpp"
#include "core/virtual_gateway.hpp"
#include "rt/clock.hpp"
#include "rt/endpoint.hpp"
#include "rt/gateway_runtime.hpp"
#include "util/statistics.hpp"

using namespace decos;
using namespace decos::bench;
using namespace decos::literals;

namespace {

/// The E6-shaped live gateway: msgA in on side A, msgB out on side B,
/// one convertible "image" element, event semantics end to end (one
/// egress frame per admitted ingress frame -- the load-bench flow).
std::unique_ptr<core::VirtualGateway> make_live_gateway() {
  spec::LinkSpec link_a{"dasA"};
  link_a.add_message(state_message("msgA", "image", 1));
  spec::PortSpec in =
      input_port("msgA", spec::InfoSemantics::kEvent, spec::ControlParadigm::kEventTriggered,
                 10_ms, Duration::zero(), Duration::seconds(3600), 256);
  in.interaction = spec::Interaction::kPush;
  link_a.add_port(in);

  spec::LinkSpec link_b{"dasB"};
  link_b.add_message(state_message("msgB", "image", 2));
  link_b.add_port(output_port("msgB", spec::InfoSemantics::kEvent,
                              spec::ControlParadigm::kEventTriggered, Duration::zero(), 256));

  core::GatewayConfig config;
  config.default_d_acc = Duration::seconds(3600);
  config.dispatch_period = 1_ms;
  config.default_queue_capacity = 256;
  auto gw = std::make_unique<core::VirtualGateway>("e22", std::move(link_a), std::move(link_b),
                                                   config);
  gw->set_element_config("image", spec::InfoSemantics::kEvent, Duration::seconds(3600), 256);
  gw->finalize();
  gw->trace().set_enabled(false);
  return gw;
}

struct Point {
  double offered_fps = 0.0;
  double achieved_fps = 0.0;
  std::uint64_t sent = 0;
  std::uint64_t rejected = 0;  // ingress ring full (transport backpressure)
  std::uint64_t received = 0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double max_us = 0.0;
};

/// One offered-load point. The runtime thread keeps running across
/// points; everything measured here lives on the generator thread, so
/// no runtime state is read while the loop is hot.
Point run_point(rt::MonotonicClock& clock, rt::SpscRing& a_in, rt::SpscRing& b_out,
                const spec::MessageSpec& msg_a, const spec::MessageSpec& msg_b,
                double offered_fps, Duration duration) {
  Point point;
  point.offered_fps = offered_fps;

  SampleSet latency;
  std::vector<std::byte> frame;
  const auto drain = [&](std::size_t max_frames) {
    b_out.consume(max_frames, [&](std::span<const std::byte> payload) {
      const auto decoded = spec::decode(msg_b, payload);
      if (!decoded) return;
      const Instant sent_at = decoded.value().element("image")->fields[1].as_instant();
      latency.add(clock.now() - sent_at);
      ++point.received;
    });
  };

  const double ns_per_frame = 1e9 / offered_fps;
  const Instant start = clock.now();
  const Instant deadline = start + duration;
  Instant now = start;
  while (now < deadline) {
    const auto due =
        static_cast<std::uint64_t>(static_cast<double>((now - start).ns()) / ns_per_frame);
    std::size_t burst = 0;
    while (point.sent + point.rejected < due && burst < 64) {
      const spec::MessageInstance inst =
          state_instance(msg_a, static_cast<std::int64_t>(point.sent), now);
      (void)spec::encode_into(msg_a, inst, frame);
      if (a_in.try_push(frame))
        ++point.sent;
      else
        ++point.rejected;
      ++burst;
    }
    drain(256);
    if (burst == 0) std::this_thread::yield();  // hand the core to the runtime
    now = clock.now();
  }
  const Instant stop = clock.now();

  // Cool-down: let the runtime flush in-flight frames so "received"
  // counts everything the gateway actually carried at this load.
  const Instant flush_deadline = stop + 100_ms;
  while (clock.now() < flush_deadline) {
    drain(256);
    std::this_thread::yield();
  }

  const double seconds = static_cast<double>((stop - start).ns()) / 1e9;
  point.achieved_fps = seconds > 0.0 ? static_cast<double>(point.received) / seconds : 0.0;
  if (latency.count() > 0) {
    point.p50_us = latency.percentile(0.50) / 1e3;
    point.p99_us = latency.percentile(0.99) / 1e3;
    point.max_us = latency.max() / 1e3;
  }
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  Harness harness{argc, argv, "e22", {{"--quick"}}};
  bool quick = false;  // --quick: 0.25s per point (CI perf-smoke); full 2s
  for (int i = 1; i < argc; ++i)
    if (std::string{argv[i]} == "--quick") quick = true;
  const Duration per_point = quick ? Duration::milliseconds(250) : 2_s;

  title("E22 live gateway saturation over the ring transport",
        "below the knee the runtime carries the offered load at flat latency; "
        "above it the ingress ring sheds the excess and throughput plateaus");

  auto gw = make_live_gateway();
  rt::MonotonicClock clock;
  rt::GatewayRuntime runtime{*gw, clock};
  rt::SpscRing a_in{1 << 20}, a_out{1 << 20}, b_in{1 << 20}, b_out{1 << 20};
  rt::RingEndpoint side_a{a_in, a_out};
  rt::RingEndpoint side_b{b_in, b_out};
  runtime.attach(0, side_a);
  runtime.attach(1, side_b);
  runtime.start();

  const spec::MessageSpec& msg_a = *gw->link_a().spec().message("msgA");
  const spec::MessageSpec& msg_b = *gw->link_b().spec().message("msgB");

  std::thread runtime_thread{[&runtime] { runtime.run(); }};

  row("%-12s %12s %10s %10s %10s %9s %9s %9s", "offered/s", "achieved/s", "sent", "rejected",
      "recv", "p50[us]", "p99[us]", "max[us]");
  const std::vector<double> ladder{25'000.0, 100'000.0, 400'000.0, 1'600'000.0};
  std::vector<Point> points;
  points.reserve(ladder.size());
  for (const double offered : ladder) {
    char label[32];
    std::snprintf(label, sizeof label, "offered=%.0f", offered);
    if (!harness.matches(label)) continue;
    points.push_back(run_point(clock, a_in, b_out, msg_a, msg_b, offered, per_point));
    const Point& p = points.back();
    row("%-12.0f %12.0f %10llu %10llu %10llu %9.1f %9.1f %9.1f", p.offered_fps, p.achieved_fps,
        static_cast<unsigned long long>(p.sent), static_cast<unsigned long long>(p.rejected),
        static_cast<unsigned long long>(p.received), p.p50_us, p.p99_us, p.max_us);
  }

  runtime.stop();
  runtime_thread.join();

  row("");
  row("expected shape: achieved tracks offered until the compiled path");
  row("saturates the core; past the knee the ring rejects the excess at the");
  row("producer (drops are counted, the loop never blocks) and p99 grows with");
  row("the standing backlog. sent - recv stays ~0 after each point's flush.");

  const rt::RuntimeStats& stats = runtime.stats();
  row("");
  row("runtime totals: rx=%llu tx=%llu dispatches=%llu rx_dropped=%llu tx_dropped=%llu",
      static_cast<unsigned long long>(stats.rx_frames),
      static_cast<unsigned long long>(stats.tx_frames),
      static_cast<unsigned long long>(stats.dispatches),
      static_cast<unsigned long long>(stats.rx_dropped),
      static_cast<unsigned long long>(stats.tx_dropped));

  // JSON: a human-readable point array plus offered-keyed dicts for the
  // e22 suite of check_bench_regression.py (mirrors the e19/e21 shape).
  obs::json::Array cells;
  obs::json::Object achieved;
  obs::json::Object p99;
  double peak = 0.0;
  for (const Point& p : points) {
    obs::json::Object cell;
    cell.emplace_back("offered_fps", p.offered_fps);
    cell.emplace_back("achieved_fps", p.achieved_fps);
    cell.emplace_back("sent", p.sent);
    cell.emplace_back("rejected", p.rejected);
    cell.emplace_back("received", p.received);
    cell.emplace_back("p50_us", p.p50_us);
    cell.emplace_back("p99_us", p.p99_us);
    cell.emplace_back("max_us", p.max_us);
    cells.push_back(obs::json::Value{std::move(cell)});
    char key[32];
    std::snprintf(key, sizeof key, "%.0f", p.offered_fps);
    achieved.emplace_back(key, p.achieved_fps);
    p99.emplace_back(key, p.p99_us);
    peak = std::max(peak, p.achieved_fps);
  }
  harness.set_json("points", obs::json::Value{std::move(cells)});
  harness.set_json("achieved_fps", obs::json::Value{std::move(achieved)});
  harness.set_json("p99_us", obs::json::Value{std::move(p99)});
  harness.set_json("peak_achieved_fps", obs::json::Value{peak});
  return 0;
}
