// E15 -- Gateway replication: spare components and redundancy management
// in the integrated architecture (paper Section I: integrated systems
// "overcome limitations for spare components and redundancy management";
// Section II-E: a time-triggered system supports replica determinism,
// "essential for establishing fault-tolerance through active
// redundancy").
//
// The wheel-speed import of E3 runs with 1 or 2 replica gateways on
// different components; the hosting component of one replica crashes
// mid-run. We measure the availability of the imported image in DAS B
// (fraction of 10ms cycles with a fresh value) and the outage duration.
#include <memory>

#include "common.hpp"
#include "core/gateway_job.hpp"
#include "core/wiring.hpp"
#include "fault/plan.hpp"
#include "platform/cluster.hpp"
#include "vn/tt_vn.hpp"

using namespace decos;
using namespace decos::bench;
using namespace decos::literals;

namespace {

constexpr Duration kRun = 4_s;
constexpr Instant kCrashAt = Instant::origin() + 1_s;

struct Outcome {
  double availability = 0.0;  // fraction of cycles with a fresh import
  double outage_ms = 0.0;     // longest gap between imports
};

Outcome run(int replicas, bool crash_one) {
  platform::ClusterConfig config;
  config.nodes = 4;
  config.allocations = {
      {1, "dasA", 32, {0}},
      {2, "dasB", 32, {1, 2}},
  };
  platform::Cluster cluster{config};

  vn::TtVirtualNetwork vn_a{"vn-a", 1};
  vn_a.register_message(state_message("msgA", "speed", 1));
  vn::TtVirtualNetwork vn_b{"vn-b", 2};

  std::vector<std::unique_ptr<core::VirtualGateway>> gateways;
  for (int r = 0; r < replicas; ++r) {
    const tt::NodeId host = static_cast<tt::NodeId>(1 + r);
    spec::LinkSpec la{"dasA"};
    la.add_message(state_message("msgA", "speed", 1));
    la.add_port(input_port("msgA", spec::InfoSemantics::kState,
                           spec::ControlParadigm::kTimeTriggered, 10_ms, 1_us,
                           Duration::seconds(3600)));
    spec::LinkSpec lb{"dasB"};
    lb.add_message(state_message("msgB", "speed", 2));
    lb.add_port(output_port("msgB", spec::InfoSemantics::kState,
                            spec::ControlParadigm::kTimeTriggered, 10_ms));
    auto gw = std::make_unique<core::VirtualGateway>("replica" + std::to_string(r),
                                                     std::move(la), std::move(lb));
    gw->finalize();
    core::wire_tt_link(*gw, 0, vn_a, cluster.controller(host), {});
    core::wire_tt_link(*gw, 1, vn_b, cluster.controller(host),
                       {{"msgB", cluster.vn_slots(2, host)}});
    cluster.component(host)
        .add_partition("gw", "architecture", 0_ms, 1_ms)
        .add_job(std::make_unique<core::GatewayJob>(*gw));
    gateways.push_back(std::move(gw));
  }

  // Producer on node 0.
  platform::Partition& p0 = cluster.component(0).add_partition("prod", "dasA", 1_ms, 1_ms);
  platform::FunctionJob& producer =
      p0.add_function_job("producer", [&vn_a](platform::FunctionJob& self, Instant now) {
        self.ports()[0]->deposit(
            state_instance(*vn_a.message_spec("msgA"),
                           static_cast<std::int64_t>(self.activations()), now),
            now);
      });
  vn_a.attach_sender(cluster.controller(0), producer.add_port(output_port(
                         "msgA", spec::InfoSemantics::kState,
                         spec::ControlParadigm::kTimeTriggered, 10_ms)),
                     cluster.vn_slots(1, 0));

  // Consumer on node 3: freshness sampled every 10ms cycle.
  vn::Port consumer{input_port("msgB", spec::InfoSemantics::kState,
                               spec::ControlParadigm::kTimeTriggered, 10_ms)};
  vn_b.attach_receiver(cluster.controller(3), consumer);
  std::optional<Instant> last_import;
  Duration worst_gap = Duration::zero();
  std::uint64_t fresh_cycles = 0;
  std::uint64_t cycles = 0;
  consumer.set_notify([&](vn::Port& port) {
    const Instant now = cluster.simulator().now();
    if (last_import) worst_gap = std::max(worst_gap, now - *last_import);
    last_import = now;
    port.read();
  });
  platform::Partition& p3 = cluster.component(3).add_partition("mon", "dasB", 2_ms, 1_ms);
  p3.add_function_job("monitor", [&](platform::FunctionJob&, Instant) {
    ++cycles;
    const Instant now = cluster.simulator().now();
    if (last_import && now - *last_import <= 25_ms) ++fresh_cycles;
  });

  if (crash_one) {
    fault::FaultPlan plan{cluster.simulator()};
    plan.crash(cluster.controller(1), kCrashAt);  // replica 0's host
  }

  cluster.start();
  cluster.run_for(kRun);
  if (last_import)
    worst_gap = std::max(worst_gap, cluster.simulator().now() - *last_import);

  Outcome outcome;
  outcome.availability = cycles ? static_cast<double>(fresh_cycles) / static_cast<double>(cycles)
                                : 0.0;
  outcome.outage_ms = worst_gap.as_ms();
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  Harness harness{argc, argv, "e15"};
  title("E15  active gateway redundancy: replica gateways on spare components",
        "a second gateway replica on another shared component removes the "
        "gateway as a single point of failure for cross-DAS imports");

  row("%-10s %-12s %14s %14s", "replicas", "crash", "availability", "worst gap[ms]");
  ParallelSweep sweep{harness};
  for (const int replicas : {1, 2}) {
    for (const bool crash : {false, true}) {
      char label[40];
      std::snprintf(label, sizeof label, "replicas=%d crash=%d", replicas, crash ? 1 : 0);
      sweep.add(label, [replicas, crash](Cell& cell) {
        const Outcome o = run(replicas, crash);
        cell.row("%-10d %-12s %13.2f%% %14.1f", replicas, crash ? "t=1s" : "none",
                 100.0 * o.availability, o.outage_ms);
      });
    }
  }
  sweep.run();
  row("");
  row("expected shape: without a crash both configurations import every cycle.");
  row("With the crash, the single-gateway system loses the import for the rest");
  row("of the run (~75%% unavailability here); the replicated system keeps a");
  row("fresh image in every cycle at the cost of one extra VN-B slot.");
  return 0;
}
