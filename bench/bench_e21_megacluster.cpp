// E21 -- Mega-cluster scaling on the partitioned event kernel (S28).
//
// E19 packs DAS pairs onto a fixed 8-node cluster; E21 scales the other
// axis: whole *islands* of 8 nodes, each carrying its own DAS pairs (TT
// VN + ET VN + hidden gateway per pair), are packed into one cell until
// the cluster holds hundreds of nodes and hundreds of VNs and gateways.
// Islands never exchange application messages, so the deployment-derived
// partitioning (platform::derive_partitions) maps every island onto its
// own event wheel and the simulation runs the conservative parallel
// loop: island wheels execute between TDMA-lookahead barriers on
// `--sim-jobs` workers while slot transmissions, bus fan-out and fault
// injections stay on the single-threaded global wheel.
//
// The claim under test is the S28 contract: stdout, BENCH_E21.json, the
// trace/metrics dumps and the telemetry stream are byte-identical at any
// --sim-jobs (checked by scripts/check_parallel_determinism.py --vary
// sim-jobs), while wall clock per simulated second drops with workers on
// multi-core hosts.
//
// Modes:
//   default           sweep the scale ladder x sim-jobs {1,2,4,8}; print
//                     wall ms per simulated second and speedup vs 1, and
//                     cross-check fingerprints across worker counts
//   --sim-jobs N      single-point mode: run the ladder at exactly N
//                     workers and print *no* worker-count-dependent
//                     output at all -- two runs at different N must be
//                     byte-identical (the determinism harness mode)
//   --nodes N         replace the ladder with the single scale N
//   --quick           CI smoke shape: one small scale, short run
//   --no-wall         omit timing-derived output in sweep mode too
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/gateway_job.hpp"
#include "core/wiring.hpp"
#include "fault/plan.hpp"
#include "platform/cluster.hpp"
#include "vn/et_vn.hpp"
#include "vn/tt_vn.hpp"

using namespace decos;
using namespace decos::bench;
using namespace decos::literals;

namespace {

constexpr std::size_t kIslandNodes = 8;
constexpr std::size_t kPairsPerIsland = 8;

struct Outcome {
  std::size_t islands = 0;
  std::size_t vns = 0;
  std::size_t gateways = 0;
  std::uint64_t forwarded_total = 0;
  std::uint64_t vn_messages = 0;
  std::uint64_t frames_delivered = 0;
  std::uint64_t frames_blocked = 0;
  std::uint64_t sim_events = 0;
  std::uint64_t fingerprint = 0;
  double wall_ms_per_sim_s = 0.0;
};

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 1099511628211ull;
  }
  return h;
}

/// One mega-cluster cell: `nodes` must be a multiple of the island size.
/// `cell` null = no dump capture.
Outcome run(Cell* cell, std::size_t nodes, std::size_t sim_jobs, Duration sim_time) {
  const std::size_t islands = nodes / kIslandNodes;
  const std::size_t pairs = islands * kPairsPerIsland;

  platform::ClusterConfig config;
  config.nodes = nodes;
  config.round_length = 10_ms;
  std::vector<std::vector<std::size_t>> couplings;
  for (std::size_t p = 0; p < pairs; ++p) {
    const std::size_t island = p / kPairsPerIsland;
    const std::size_t k = p % kPairsPerIsland;
    const std::size_t base = island * kIslandNodes;
    const auto producer = static_cast<tt::NodeId>(base + k % kIslandNodes);
    const auto host = static_cast<tt::NodeId>(base + (k + 1) % kIslandNodes);
    config.allocations.push_back(
        {static_cast<tt::VnId>(1 + 2 * p), "dasA" + std::to_string(p), 32, {producer}});
    config.allocations.push_back(
        {static_cast<tt::VnId>(2 + 2 * p), "dasB" + std::to_string(p), 32, {host}});
    // The host consumes the TT VN and hosts the gateway: it shares
    // per-VN and per-gateway state with the producer, so they must land
    // on one wheel. All couplings stay inside the island.
    couplings.push_back({producer, host});
  }
  platform::derive_partitions(config, couplings);
  config.sim_jobs = sim_jobs;
  platform::Cluster cluster{config};

  std::vector<std::unique_ptr<vn::TtVirtualNetwork>> tt_vns;
  std::vector<std::unique_ptr<vn::EtVirtualNetwork>> et_vns;
  std::vector<std::unique_ptr<core::VirtualGateway>> gateways;
  std::vector<platform::Partition*> gw_partitions(nodes, nullptr);

  for (std::size_t p = 0; p < pairs; ++p) {
    const std::size_t island = p / kPairsPerIsland;
    const std::size_t k = p % kPairsPerIsland;
    const std::size_t base = island * kIslandNodes;
    const auto producer = static_cast<tt::NodeId>(base + k % kIslandNodes);
    const auto host = static_cast<tt::NodeId>(base + (k + 1) % kIslandNodes);
    const auto vn_a_id = static_cast<tt::VnId>(1 + 2 * p);
    const auto vn_b_id = static_cast<tt::VnId>(2 + 2 * p);
    const std::string tag = std::to_string(p);

    tt_vns.push_back(std::make_unique<vn::TtVirtualNetwork>("tt" + tag, vn_a_id));
    auto& vn_a = *tt_vns.back();
    vn_a.register_message(state_message("msgA" + tag, "img", 1));
    et_vns.push_back(std::make_unique<vn::EtVirtualNetwork>("et" + tag, vn_b_id));
    auto& vn_b = *et_vns.back();
    // Partitioned kernel: a parallel phase must never be the first to
    // register an instrument, so every VN pre-registers its full set.
    vn_a.preregister_metrics(cluster.simulator());
    vn_b.preregister_metrics(cluster.simulator());

    spec::LinkSpec link_a{"dasA" + tag};
    link_a.add_message(state_message("msgA" + tag, "img", 1));
    link_a.add_port(input_port("msgA" + tag, spec::InfoSemantics::kState,
                               spec::ControlParadigm::kTimeTriggered, config.round_length, 1_us,
                               Duration::seconds(3600)));
    spec::LinkSpec link_b{"dasB" + tag};
    link_b.add_message(state_message("msgB" + tag, "img", 2));
    link_b.add_port(output_port("msgB" + tag, spec::InfoSemantics::kState,
                                spec::ControlParadigm::kEventTriggered, Duration::zero()));
    gateways.push_back(std::make_unique<core::VirtualGateway>("gw" + tag, std::move(link_a),
                                                              std::move(link_b)));
    auto& gw = *gateways.back();
    gw.finalize();
    gw.bind_observability(cluster.simulator());
    core::wire_tt_link(gw, 0, vn_a, cluster.controller(host), {});
    core::wire_et_link(gw, 1, vn_b, cluster.controller(host), cluster.vn_slots(vn_b_id, host));
    if (gw_partitions[host] == nullptr) {
      gw_partitions[host] = &cluster.component(host).add_partition("gw", "architecture", 0_ms, 2_ms);
    }
    gw_partitions[host]->add_job(std::make_unique<core::GatewayJob>(gw));

    platform::Partition& pp = cluster.component(producer).add_partition(
        "p" + tag, "dasA" + tag, 3_ms + Duration::microseconds(static_cast<std::int64_t>(k) * 300),
        200_us);
    platform::FunctionJob& job = pp.add_function_job(
        "prod" + tag, [&vn_a, tag](platform::FunctionJob& self, Instant now) {
          self.ports()[0]->deposit(
              state_instance(*vn_a.message_spec("msgA" + tag),
                             static_cast<std::int64_t>(self.activations()), now),
              now);
        });
    job.set_execution_time(10_us);
    vn_a.attach_sender(cluster.controller(producer),
                       job.add_port(output_port("msgA" + tag, spec::InfoSemantics::kState,
                                                spec::ControlParadigm::kTimeTriggered,
                                                config.round_length)),
                       cluster.vn_slots(vn_a_id, producer));
  }

  // Fault-plan traffic crosses the partition boundary through the global
  // wheel: a transient crash (membership churn seen by every island) and
  // a babbling burst the guardian must contain.
  fault::FaultPlan faults{cluster.simulator()};
  faults.crash(cluster.controller(2), Instant::origin() + sim_time / 3, sim_time / 6);
  faults.babble(cluster.controller((kIslandNodes + 3) % nodes), Instant::origin() + sim_time / 2,
                /*slot_index=*/0, /*vn=*/tt::kCoreVn, /*count=*/16, /*gap=*/500_us);

  if (cell != nullptr) cell->configure(cluster.simulator());
  const auto wall_start = std::chrono::steady_clock::now();
  cluster.start();
  cluster.run_for(sim_time);
  const double wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - wall_start)
          .count();
  if (cell != nullptr) cell->capture("nodes=" + std::to_string(nodes), cluster.simulator());

  Outcome o;
  o.islands = islands;
  o.vns = 2 * pairs;
  o.gateways = pairs;
  for (const auto& gw : gateways) o.forwarded_total += gw->stats().messages_constructed;
  for (const auto& vn : tt_vns) o.vn_messages += vn->messages_delivered();
  for (const auto& vn : et_vns) o.vn_messages += vn->messages_delivered();
  o.frames_delivered = cluster.bus().frames_delivered();
  o.frames_blocked = cluster.bus().frames_blocked();
  o.sim_events = cluster.simulator().dispatched();
  o.wall_ms_per_sim_s = wall_ms / sim_time.as_seconds();
  std::uint64_t h = 14695981039346656037ull;
  h = fnv1a(h, o.sim_events);
  h = fnv1a(h, o.forwarded_total);
  h = fnv1a(h, o.vn_messages);
  h = fnv1a(h, o.frames_delivered);
  h = fnv1a(h, o.frames_blocked);
  h = fnv1a(h, static_cast<std::uint64_t>(cluster.precision().ns()));
  o.fingerprint = h;
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  Harness harness{argc, argv, "e21", {{"--quick"}, {"--no-wall"}, {"--nodes", true}}};
  bool quick = false;
  bool no_wall = false;
  bool single_point = false;  // --sim-jobs given: worker-count-free output
  std::size_t nodes_override = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") quick = true;
    if (arg == "--no-wall") no_wall = true;
    if (arg == "--sim-jobs") single_point = true;
    if (arg == "--nodes" && i + 1 < argc) {
      const long n = std::atol(argv[++i]);
      if (n < static_cast<long>(kIslandNodes) || n % static_cast<long>(kIslandNodes) != 0)
        harness.usage_error("--nodes expects a positive multiple of " +
                            std::to_string(kIslandNodes));
      nodes_override = static_cast<std::size_t>(n);
    }
  }
  const Duration sim_time = quick ? Duration::milliseconds(300) : 1_s;
  std::vector<std::size_t> ladder =
      quick ? std::vector<std::size_t>{32} : std::vector<std::size_t>{128, 256};
  if (nodes_override != 0) ladder = {nodes_override};

  title("E21  mega-cluster scaling on the partitioned event kernel",
        "hundreds of nodes / VNs / gateways in one simulation; island-partitioned "
        "event wheels run on --sim-jobs workers, byte-identical to serial");

  obs::json::Object events_json;
  obs::json::Object fingerprints_json;
  obs::json::Object wall_json;
  obs::json::Object speedup_json;
  bool deterministic = true;

  if (single_point) {
    // Determinism-harness mode: exactly the requested worker count, and
    // nothing in the output depends on it.
    row("%-8s %8s %6s %10s %12s %14s %14s %12s  %-16s", "nodes", "islands", "VNs", "gateways",
        "forwarded", "vn msgs", "frames", "sim events", "fingerprint");
    for (const std::size_t n : ladder) {
      Cell cell{harness, "nodes=" + std::to_string(n)};
      const Outcome o = run(&cell, n, harness.sim_jobs(), sim_time);
      harness.commit(cell);
      row("%-8zu %8zu %6zu %10zu %12llu %14llu %14llu %12llu  %016llx", n, o.islands,
          o.vns, o.gateways, static_cast<unsigned long long>(o.forwarded_total),
          static_cast<unsigned long long>(o.vn_messages),
          static_cast<unsigned long long>(o.frames_delivered),
          static_cast<unsigned long long>(o.sim_events),
          static_cast<unsigned long long>(o.fingerprint));
      events_json.emplace_back(std::to_string(n), static_cast<std::int64_t>(o.sim_events));
      char fp[32];
      std::snprintf(fp, sizeof fp, "%016llx", static_cast<unsigned long long>(o.fingerprint));
      fingerprints_json.emplace_back(std::to_string(n), std::string{fp});
    }
  } else {
    const std::vector<std::size_t> sim_jobs_ladder{1, 2, 4, 8};
    row("%-8s %10s %12s %12s %12s  %-16s %14s %9s", "nodes", "sim-jobs", "forwarded", "frames",
        "sim events", "fingerprint", "wall ms/sim s", "speedup");
    for (const std::size_t n : ladder) {
      double wall_sj1 = 0.0;
      Outcome first;
      obs::json::Object scale_wall;
      obs::json::Object scale_speedup;
      for (const std::size_t sj : sim_jobs_ladder) {
        // Only the sj=1 run captures dumps: artifacts must not repeat
        // per worker count (they are identical by construction; the
        // determinism harness checks that claim separately).
        Cell cell{harness, "nodes=" + std::to_string(n)};
        const Outcome o = run(sj == sim_jobs_ladder.front() ? &cell : nullptr, n, sj, sim_time);
        harness.commit(cell);
        if (sj == sim_jobs_ladder.front()) {
          first = o;
          wall_sj1 = o.wall_ms_per_sim_s;
        } else if (o.fingerprint != first.fingerprint || o.sim_events != first.sim_events) {
          deterministic = false;
        }
        const double speedup = o.wall_ms_per_sim_s > 0.0 ? wall_sj1 / o.wall_ms_per_sim_s : 0.0;
        if (no_wall) {
          row("%-8zu %10zu %12llu %12llu %12llu  %016llx %14s %9s", n, sj,
              static_cast<unsigned long long>(o.forwarded_total),
              static_cast<unsigned long long>(o.frames_delivered),
              static_cast<unsigned long long>(o.sim_events),
              static_cast<unsigned long long>(o.fingerprint), "-", "-");
        } else {
          row("%-8zu %10zu %12llu %12llu %12llu  %016llx %14.1f %8.2fx", n, sj,
              static_cast<unsigned long long>(o.forwarded_total),
              static_cast<unsigned long long>(o.frames_delivered),
              static_cast<unsigned long long>(o.sim_events),
              static_cast<unsigned long long>(o.fingerprint), o.wall_ms_per_sim_s, speedup);
          scale_wall.emplace_back(std::to_string(sj), o.wall_ms_per_sim_s);
          scale_speedup.emplace_back(std::to_string(sj), speedup);
        }
      }
      events_json.emplace_back(std::to_string(n), static_cast<std::int64_t>(first.sim_events));
      char fp[32];
      std::snprintf(fp, sizeof fp, "%016llx", static_cast<unsigned long long>(first.fingerprint));
      fingerprints_json.emplace_back(std::to_string(n), std::string{fp});
      if (!no_wall) {
        wall_json.emplace_back(std::to_string(n), obs::json::Value{std::move(scale_wall)});
        speedup_json.emplace_back(std::to_string(n), obs::json::Value{std::move(scale_speedup)});
      }
    }
    row("");
    row("determinism across --sim-jobs 1/2/4/8: %s", deterministic ? "OK" : "MISMATCH");
  }

  harness.set_json("sim_events", obs::json::Value{std::move(events_json)});
  harness.set_json("fingerprints", obs::json::Value{std::move(fingerprints_json)});
  if (!single_point && !no_wall) {
    harness.set_json("wall_ms_per_sim_s", obs::json::Value{std::move(wall_json)});
    harness.set_json("speedup", obs::json::Value{std::move(speedup_json)});
  }

  if (!single_point) {
    row("");
    row("expected shape: per-scale counters and fingerprints are identical at");
    row("every --sim-jobs (the S28 byte-identity contract); wall ms per simulated");
    row("second falls as workers are added on multi-core hosts (on a single-core");
    row("host the barrier overhead makes sim-jobs > 1 slightly slower, never wrong).");
  }
  return deterministic ? 0 : 1;
}
