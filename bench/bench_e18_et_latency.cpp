// E18 -- Probabilistic latency of event-triggered virtual networks
// (paper Section II-E): "In event-triggered virtual networks the
// provision of resources can be biased towards average demands, thus
// allowing timing failures to occur during worst-case scenarios in favor
// of more cost-effective solutions. If the correlation between the
// resource usages of different jobs is known, resources can be
// multiplexed between different jobs while providing probabilistic
// guarantees for communication latencies."
//
// Two jobs multiplex one ET bandwidth partition (2 slots per 10ms round
// on the sending node). Offered load sweeps from light to beyond
// saturation; we report the delivery-latency percentiles and the loss
// rate, next to the constant latency of an equally-provisioned TT
// message as the reference point.
#include <memory>

#include "common.hpp"
#include "platform/cluster.hpp"
#include "util/rng.hpp"
#include "util/statistics.hpp"
#include "vn/et_vn.hpp"
#include "vn/tt_vn.hpp"

using namespace decos;
using namespace decos::bench;
using namespace decos::literals;

namespace {

constexpr Duration kRun = 20_s;

struct Outcome {
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
  double loss_pct = 0.0;
  double tt_latency_ms = 0.0;  // reference: TT message on the same cluster
};

/// `utilization`: offered ET load as a fraction of the partition's
/// capacity (2 messages per 10ms round).
Outcome run(double utilization, std::uint64_t seed) {
  platform::ClusterConfig config;
  config.nodes = 2;
  config.allocations = {
      {1, "et-das", 32, {0, 0}},  // ET partition: 2 slots/round on node 0
      {2, "tt-das", 32, {0}},     // TT reference: 1 slot/round on node 0
  };
  platform::Cluster cluster{config};

  vn::EtVirtualNetwork et{"et-vn", 1, 4096};
  et.register_message(state_message("msgJobA", "a", 1));
  et.register_message(state_message("msgJobB", "b", 2));
  et.set_priority("msgJobA", 1);
  et.set_priority("msgJobB", 1);
  et.attach_node(cluster.controller(0), cluster.vn_slots(1, 0));

  vn::TtVirtualNetwork tt{"tt-vn", 2};
  tt.register_message(state_message("msgTT", "t", 3));

  // Receivers on node 1.
  SampleSet latencies;
  std::uint64_t delivered = 0;
  vn::Port in_a{input_port("msgJobA", spec::InfoSemantics::kEvent,
                           spec::ControlParadigm::kEventTriggered, Duration::zero(),
                           Duration::zero(), Duration::max(), 4096)};
  vn::Port in_b{input_port("msgJobB", spec::InfoSemantics::kEvent,
                           spec::ControlParadigm::kEventTriggered, Duration::zero(),
                           Duration::zero(), Duration::max(), 4096)};
  et.attach_receiver(cluster.controller(1), in_a);
  et.attach_receiver(cluster.controller(1), in_b);
  const auto on_delivery = [&](vn::Port& port) {
    while (auto inst = port.read()) {
      ++delivered;
      latencies.add(cluster.simulator().now() - inst->elements()[1].fields[1].as_instant());
    }
  };
  in_a.set_notify(on_delivery);
  in_b.set_notify(on_delivery);

  RunningStats tt_latency;
  vn::Port in_tt{input_port("msgTT", spec::InfoSemantics::kState,
                            spec::ControlParadigm::kTimeTriggered, 10_ms)};
  tt.attach_receiver(cluster.controller(1), in_tt);
  Instant last_tt;
  in_tt.set_notify([&](vn::Port& port) {
    if (auto inst = port.read()) {
      const Instant produced = inst->elements()[1].fields[1].as_instant();
      if (produced != last_tt) {
        last_tt = produced;
        tt_latency.add(cluster.simulator().now() - produced);
      }
    }
  });

  // TT producer job.
  platform::Partition& p0 = cluster.component(0).add_partition("apps", "tt-das", 1_ms, 1_ms);
  platform::FunctionJob& tt_producer =
      p0.add_function_job("tt-producer", [&tt](platform::FunctionJob& self, Instant now) {
        self.ports()[0]->deposit(state_instance(*tt.message_spec("msgTT"), 1, now), now);
      });
  tt.attach_sender(cluster.controller(0), tt_producer.add_port(output_port(
                       "msgTT", spec::InfoSemantics::kState,
                       spec::ControlParadigm::kTimeTriggered, 10_ms)),
                   cluster.vn_slots(2, 0));

  // ET load: Poisson arrivals split between the two jobs, mean rate =
  // utilization * 2 msgs / 10ms.
  Rng rng{seed};
  const auto mean_gap = Duration::nanoseconds(
      static_cast<std::int64_t>(static_cast<double>((10_ms).ns()) / (2.0 * utilization)));
  std::uint64_t offered = 0;
  Instant t = Instant::origin();
  while (t < Instant::origin() + kRun) {
    t += rng.exponential_duration(mean_gap);
    const bool job_a = rng.bernoulli(0.5);
    ++offered;
    cluster.simulator().schedule_at(t, [&et, &cluster, job_a] {
      const auto* ms = et.message_spec(job_a ? "msgJobA" : "msgJobB");
      et.send(cluster.controller(0), state_instance(*ms, 1, cluster.simulator().now()));
    });
  }

  cluster.start();
  cluster.run_for(kRun + 1_s);

  Outcome outcome;
  outcome.p50_ms = latencies.percentile(0.50) / 1e6;
  outcome.p95_ms = latencies.percentile(0.95) / 1e6;
  outcome.p99_ms = latencies.percentile(0.99) / 1e6;
  outcome.max_ms = latencies.max() / 1e6;
  outcome.loss_pct =
      100.0 * (1.0 - static_cast<double>(delivered) / static_cast<double>(offered));
  outcome.tt_latency_ms = tt_latency.mean() / 1e6;
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  Harness harness{argc, argv, "e18"};
  title("E18  event-triggered latency under multiplexed load vs the TT reference",
        "ET virtual networks give cost-effective average-case latency but only "
        "probabilistic guarantees: the tail explodes near saturation while the "
        "TT message's latency never moves");

  row("%-12s %9s %9s %9s %9s %9s %12s", "utilization", "p50[ms]", "p95[ms]", "p99[ms]",
      "max[ms]", "loss[%]", "TT ref[ms]");
  ParallelSweep sweep{harness};
  for (const double utilization : {0.2, 0.5, 0.8, 0.95, 1.1}) {
    char label[32];
    std::snprintf(label, sizeof label, "util=%.2f", utilization);
    sweep.add(label, [utilization](Cell& cell) {
      const Outcome o = run(utilization, 21);
      cell.row("%-12.2f %9.2f %9.2f %9.2f %9.2f %9.3f %12.2f", utilization, o.p50_ms, o.p95_ms,
               o.p99_ms, o.max_ms, o.loss_pct, o.tt_latency_ms);
    });
  }
  sweep.run();
  row("");
  row("expected shape: median ET latency stays a few ms at light load; the p99");
  row("and max grow sharply as utilization approaches 1 and queues saturate");
  row("(losses appear beyond 1.0). The TT reference column is flat throughout --");
  row("the paper's rationale for putting safety-critical DASes on TT VNs and");
  row("cost-sensitive ones on ET VNs.");
  return 0;
}
