// E12 -- Incoherent naming (paper Section III-A.1): "Naming is denoted
// as incoherent, if different entities are assigned the same name in
// different parts of a system. ... At gateways between DASes this naming
// incoherence must be resolved."
//
// Both DASes call their (different!) sensors "sensor": DAS A exports an
// oil temperature, DAS B exports a tire pressure, and each consumes the
// other's value under a local alias. A naive bridge maps names 1:1 and
// collides both entities onto one repository slot; the gateway's
// renaming tables keep them apart. We count cross-contaminated samples
// (a value from the wrong physical entity delivered to a consumer).
#include "common.hpp"
#include "sim/simulator.hpp"

using namespace decos;
using namespace decos::bench;
using namespace decos::literals;

namespace {

constexpr int kSamples = 5000;
// Disjoint value ranges identify the producing entity.
constexpr std::int64_t kTemperatureBase = 1000;
constexpr std::int64_t kPressureBase = 900000;

struct Outcome {
  std::uint64_t delivered_to_b = 0;   // temperature samples DAS B received
  std::uint64_t contaminated_b = 0;   // ...that were actually pressure values
  std::uint64_t delivered_to_a = 0;
  std::uint64_t contaminated_a = 0;
};

Outcome run(bool rename) {
  // DAS A: produces msgoil (element "sensor" = temperature), consumes
  // msgtire_in (element "sensor" = pressure from DAS B).
  spec::LinkSpec link_a{"dasA"};
  link_a.add_message(state_message("msgoil", "sensor", 1));
  link_a.add_port(input_port("msgoil", spec::InfoSemantics::kState,
                             spec::ControlParadigm::kTimeTriggered, 10_ms, 1_us,
                             Duration::seconds(3600)));
  link_a.add_message(state_message("msgtire_in", "sensor2", 3));
  link_a.add_port(output_port("msgtire_in", spec::InfoSemantics::kState,
                              spec::ControlParadigm::kEventTriggered, Duration::zero()));
  // DAS B: produces msgtire (element "sensor" = pressure), consumes
  // msgoil_in (element "sensor2" locally -- but physically the oil temp).
  spec::LinkSpec link_b{"dasB"};
  link_b.add_message(state_message("msgtire", "sensor", 2));
  link_b.add_port(input_port("msgtire", spec::InfoSemantics::kState,
                             spec::ControlParadigm::kTimeTriggered, 10_ms, 1_us,
                             Duration::seconds(3600)));
  link_b.add_message(state_message("msgoil_in", "sensor2", 4));
  link_b.add_port(output_port("msgoil_in", spec::InfoSemantics::kState,
                              spec::ControlParadigm::kEventTriggered, Duration::zero()));

  core::VirtualGateway gateway{"e12", std::move(link_a), std::move(link_b)};
  if (rename) {
    // Resolve the incoherence: each DAS's "sensor" gets a globally unique
    // repository name, and the import aliases point at the right entity.
    gateway.link_a().add_rename("sensor", "oil.temperature");
    gateway.link_a().add_rename("sensor2", "tire.pressure");
    gateway.link_b().add_rename("sensor", "tire.pressure");
    gateway.link_b().add_rename("sensor2", "oil.temperature");
  } else {
    // Naive bridge: "sensor" and "sensor2" collide across the DASes; wire
    // the import aliases straight onto the shared names.
    gateway.link_a().add_rename("sensor2", "sensor");
    gateway.link_b().add_rename("sensor2", "sensor");
  }
  gateway.finalize();

  Outcome outcome;
  gateway.link_b().set_emitter("msgoil_in", [&](const spec::MessageInstance& inst) {
    ++outcome.delivered_to_b;
    if (inst.elements()[1].fields[0].as_int() >= kPressureBase) ++outcome.contaminated_b;
  });
  gateway.link_a().set_emitter("msgtire_in", [&](const spec::MessageInstance& inst) {
    ++outcome.delivered_to_a;
    if (inst.elements()[1].fields[0].as_int() < kPressureBase) ++outcome.contaminated_a;
  });

  sim::Simulator sim;
  const spec::MessageSpec& oil = *gateway.link_a().spec().message("msgoil");
  const spec::MessageSpec& tire = *gateway.link_b().spec().message("msgtire");
  Instant t = Instant::origin();
  for (int i = 0; i < kSamples; ++i) {
    t += 10_ms;
    sim.schedule_at(t, [&gateway, &oil, &sim, i] {
      gateway.on_input(0, state_instance(oil, kTemperatureBase + i % 100, sim.now()), sim.now());
    });
    sim.schedule_at(t + 3_ms, [&gateway, &tire, &sim, i] {
      gateway.on_input(1, state_instance(tire, kPressureBase + i % 100, sim.now()), sim.now());
    });
  }
  sim.run_until(t + 10_ms);
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  Harness harness{argc, argv, "e12"};
  title("E12  incoherent naming across DASes: naive bridge vs gateway renaming",
        "the gateway's per-link renaming keeps same-named entities apart; a "
        "naive 1:1 bridge cross-contaminates both consumers");

  row("%-16s %14s %14s %14s %14s", "config", "to DAS B", "contaminated", "to DAS A",
      "contaminated");
  ParallelSweep sweep{harness};
  for (const bool rename : {true, false}) {
    sweep.add(rename ? "gateway rename" : "naive bridge", [rename](Cell& cell) {
      const Outcome o = run(rename);
      cell.row("%-16s %14llu %11llu (%2.0f%%) %11llu %11llu (%2.0f%%)",
               rename ? "gateway rename" : "naive bridge",
               static_cast<unsigned long long>(o.delivered_to_b),
               static_cast<unsigned long long>(o.contaminated_b),
               o.delivered_to_b ? 100.0 * static_cast<double>(o.contaminated_b) /
                                      static_cast<double>(o.delivered_to_b)
                                : 0.0,
               static_cast<unsigned long long>(o.delivered_to_a),
               static_cast<unsigned long long>(o.contaminated_a),
               o.delivered_to_a ? 100.0 * static_cast<double>(o.contaminated_a) /
                                      static_cast<double>(o.delivered_to_a)
                                : 0.0);
    });
  }
  sweep.run();
  row("");
  row("expected shape: with renaming, zero contaminated deliveries on either");
  row("side; the naive bridge delivers the *other* entity's value roughly half");
  row("the time (whichever wrote the shared slot last wins).");
  return 0;
}
