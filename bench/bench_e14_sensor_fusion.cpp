// E14 -- Exploiting redundancy for reliability (paper Section I): with
// gateways, "redundancy can be exploited to improve the reliability of
// the sensory information."
//
// Three redundant wheel-speed sources measure the same entity: one local
// sensor plus two replicas imported from another DAS through a virtual
// gateway. Each source independently suffers value faults (rate swept)
// and transient dropouts. We compare the error rate of (a) trusting a
// single sensor, against (b) median fusion over all three -- and also
// measure availability (instants where no usable value exists).
#include "common.hpp"
#include "services/fusion.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

using namespace decos;
using namespace decos::bench;
using namespace decos::literals;

namespace {

constexpr int kSamples = 50000;
constexpr double kTrue = 1000.0;

struct Outcome {
  double single_error_rate = 0.0;
  double fused_error_rate = 0.0;
  double fused_unavailable_rate = 0.0;
};

Outcome run(double fault_rate, double dropout_rate, std::uint64_t seed) {
  services::SensorFusion fusion{services::SensorFusion::Strategy::kMedian, 3, 30_ms};
  Rng rng{seed};

  std::uint64_t single_bad = 0;
  std::uint64_t fused_bad = 0;
  std::uint64_t fused_missing = 0;

  Instant t = Instant::origin();
  for (int i = 0; i < kSamples; ++i) {
    t += 10_ms;
    double single_value = kTrue;
    for (std::size_t source = 0; source < 3; ++source) {
      if (rng.bernoulli(dropout_rate)) continue;  // source silent this cycle
      double value = kTrue;
      if (rng.bernoulli(fault_rate)) value = kTrue + rng.uniform(-500.0, 500.0);
      if (source == 0) single_value = value;
      fusion.offer(source, ta::Value{value}, t);
    }
    if (std::abs(single_value - kTrue) > 1.0) ++single_bad;
    const auto fused = fusion.fused(t + 1_ms);
    if (!fused) {
      ++fused_missing;
    } else if (std::abs(fused->as_real() - kTrue) > 1.0) {
      ++fused_bad;
    }
  }

  Outcome outcome;
  outcome.single_error_rate = static_cast<double>(single_bad) / kSamples;
  outcome.fused_error_rate = static_cast<double>(fused_bad) / kSamples;
  outcome.fused_unavailable_rate = static_cast<double>(fused_missing) / kSamples;
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  Harness harness{argc, argv, "e14"};
  title("E14  redundancy exploitation: median fusion of gateway-imported sensors",
        "fusing one local and two imported replicas masks independent value "
        "faults that a single sensor passes straight to the application");

  row("%-11s %-9s %14s %14s %14s", "faultrate", "dropout", "single err", "fused err",
      "fused unavail");
  ParallelSweep sweep{harness};
  for (const double fault_rate : {0.001, 0.01, 0.05, 0.1}) {
    for (const double dropout : {0.0, 0.05}) {
      char label[48];
      std::snprintf(label, sizeof label, "fault=%.3f dropout=%.2f", fault_rate, dropout);
      sweep.add(label, [fault_rate, dropout](Cell& cell) {
        const Outcome o = run(fault_rate, dropout, 11);
        cell.row("%-11.3f %-9.2f %13.4f%% %13.4f%% %13.4f%%", fault_rate, dropout,
                 100.0 * o.single_error_rate, 100.0 * o.fused_error_rate,
                 100.0 * o.fused_unavailable_rate);
      });
    }
  }
  sweep.run();
  row("");
  row("expected shape: a single sensor's error rate equals the fault rate; the");
  row("median over three independent sources needs >= 2 simultaneous faults, so");
  row("its error rate drops to roughly the fault rate squared (orders of");
  row("magnitude better), at unchanged availability.");
  return 0;
}
