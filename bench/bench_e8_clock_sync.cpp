// E8 -- Core service C2: fault-tolerant clock synchronization (paper
// Section II-C). The global time base that everything above (TDMA
// guardian windows, TT virtual networks, gateway temporal checks)
// depends on must hold under crystal drift and a bounded number of
// arbitrarily faulty clocks.
//
// Sweep: drift magnitude, resynchronization period, and the presence of
// one Byzantine-fast clock; measure the achieved cluster precision (max
// pairwise clock offset, sampled every round after warm-up) against the
// theoretical drift contribution 2*rho*R_int.
#include <memory>

#include "common.hpp"
#include "platform/cluster.hpp"
#include "util/statistics.hpp"

using namespace decos;
using namespace decos::bench;
using namespace decos::literals;

namespace {

struct Outcome {
  double mean_precision_us = 0.0;
  double max_precision_us = 0.0;
  double theory_us = 0.0;  // 2 * rho * resync interval (drift term only)
};

Outcome run(double drift_ppm, std::uint64_t resync_rounds, bool byzantine) {
  platform::ClusterConfig config;
  config.nodes = 5;
  config.round_length = 10_ms;
  config.clock_sync.resync_rounds = resync_rounds;
  config.clock_sync.discard_extremes = 1;
  config.enable_membership = false;
  // Symmetric drifts plus optionally one wildly fast clock (node 4).
  config.drift_ppm = {drift_ppm, -drift_ppm, drift_ppm / 2, -drift_ppm / 2,
                      byzantine ? 5000.0 : 0.0};
  // Widen the guardian so even large test drifts don't silence nodes --
  // this experiment isolates the sync service itself.
  config.bus.guardian_tolerance = 10_ms;
  platform::Cluster cluster{config};

  RunningStats precision;
  // Sample precision over the correct nodes (0..3) at every round end.
  cluster.controller(0).add_round_listener([&](std::uint64_t round) {
    if (round < 50) return;  // warm-up
    Duration lo = Duration::max();
    Duration hi = -Duration::max();
    const Instant now = cluster.simulator().now();
    for (std::size_t i = 0; i < 4; ++i) {
      const Duration offset = cluster.controller(i).clock().read(now) - now;
      lo = std::min(lo, offset);
      hi = std::max(hi, offset);
    }
    precision.add(hi - lo);
  });

  cluster.start();
  cluster.run_for(5_s);

  Outcome outcome;
  outcome.mean_precision_us = precision.mean() / 1e3;
  outcome.max_precision_us = precision.max() / 1e3;
  outcome.theory_us = 2.0 * drift_ppm * 1e-6 *
                      static_cast<double>(resync_rounds) * 10e3;  // in us
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  Harness harness{argc, argv, "e8"};
  title("E8  fault-tolerant clock synchronization precision",
        "the fault-tolerant average holds the cluster precision near the "
        "2*rho*R_int drift bound, even with one Byzantine clock among five");

  row("%-10s %-8s %-10s %12s %12s %12s", "drift[ppm]", "resync", "byzantine", "mean[us]",
      "max[us]", "theory[us]");
  ParallelSweep sweep{harness};
  for (const double drift : {10.0, 50.0, 100.0, 500.0, 1000.0}) {
    for (const std::uint64_t resync : {1ull, 5ull, 10ull}) {
      for (const bool byzantine : {false, true}) {
        char label[64];
        std::snprintf(label, sizeof label, "drift=%.0f resync=%llu byz=%d", drift,
                      static_cast<unsigned long long>(resync), byzantine ? 1 : 0);
        sweep.add(label, [drift, resync, byzantine](Cell& cell) {
          const Outcome o = run(drift, resync, byzantine);
          cell.row("%-10.0f %-8llu %-10s %12.2f %12.2f %12.2f", drift,
                   static_cast<unsigned long long>(resync), byzantine ? "yes" : "no",
                   o.mean_precision_us, o.max_precision_us, o.theory_us);
        });
      }
    }
  }
  sweep.run();
  row("");
  row("expected shape: precision grows linearly with drift rate and with the");
  row("resynchronization interval, tracking the 2*rho*R_int theory line; the");
  row("Byzantine column stays close to the fault-free one (k=1 extreme readings");
  row("are discarded by the fault-tolerant average).");
  return 0;
}
