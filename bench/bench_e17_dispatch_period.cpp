// E17 -- Ablation of the gateway service period (DESIGN.md: the hidden
// gateway is dispatched periodically from its partition).
//
// Forwarding latency itself is governed by the VN schedules and, for
// event-triggered outputs, by the event-driven path inside on_input --
// *not* by the dispatch period. What the dispatch period does govern is
// everything only the periodic service performs:
//   (a) draining pull-mode input ports, and
//   (b) detecting tmax silence violations (timed-automaton timeouts).
// Both should cost half a dispatch period on average and one period in
// the worst case, while the activation count scales as 1/period -- the
// basis for choosing the gateway partition's budget.
#include "common.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "util/statistics.hpp"

using namespace decos;
using namespace decos::bench;
using namespace decos::literals;

namespace {

struct Outcome {
  double pull_mean_ms = 0.0;
  double pull_max_ms = 0.0;
  double timeout_mean_ms = 0.0;
  double timeout_max_ms = 0.0;
  std::uint64_t dispatches_per_s = 0;
};

std::unique_ptr<core::VirtualGateway> make_gateway(bool pull_input) {
  spec::LinkSpec link_a{"dasA"};
  link_a.add_message(state_message("msgA", "image", 1));
  spec::PortSpec in = input_port("msgA", spec::InfoSemantics::kEvent,
                                 spec::ControlParadigm::kEventTriggered, Duration::zero(),
                                 Duration::zero(), 50_ms, 32);
  if (pull_input) in.interaction = spec::Interaction::kPull;
  link_a.add_port(in);
  spec::LinkSpec link_b{"dasB"};
  link_b.add_message(state_message("msgB", "image", 2));
  link_b.add_port(output_port("msgB", spec::InfoSemantics::kEvent,
                              spec::ControlParadigm::kEventTriggered, Duration::zero(), 32));
  core::GatewayConfig config;
  config.restart_delay = 1_ms;  // resume quickly after each deliberate timeout
  auto gw = std::make_unique<core::VirtualGateway>("e17", std::move(link_a), std::move(link_b),
                                                   config);
  gw->finalize();
  gw->link_b().set_emitter("msgB", [](const spec::MessageInstance&) {});
  return gw;
}

Outcome run(Duration dispatch_period, std::uint64_t seed) {
  Outcome outcome;
  Rng rng{seed};

  // (a) Pull-port drain latency: deposits at random phases; measure
  // deposit -> admission.
  {
    auto gw = make_gateway(/*pull_input=*/true);
    const spec::MessageSpec& ms = *gw->link_a().spec().message("msgA");
    sim::Simulator sim;
    RunningStats drain;
    Instant t = Instant::origin();
    std::uint64_t admitted_before = 0;
    Instant deposited_at;
    for (int i = 0; i < 500; ++i) {
      t += 10_ms + Duration::microseconds(rng.uniform_int(0, 9999));
      sim.schedule_at(t, [&, i] {
        deposited_at = sim.now();
        gw->link_a().port("msgA")->deposit(state_instance(ms, i, sim.now()), sim.now());
      });
    }
    for (Instant tick = Instant::origin(); tick <= t + 50_ms; tick += dispatch_period) {
      sim.schedule_at(tick, [&] {
        const std::uint64_t before = gw->stats().messages_in;
        gw->dispatch(sim.now());
        if (gw->stats().messages_in > before) drain.add(sim.now() - deposited_at);
        admitted_before = gw->stats().messages_in;
      });
    }
    sim.run_until(t + 60_ms);
    (void)admitted_before;
    outcome.pull_mean_ms = drain.mean() / 1e6;
    outcome.pull_max_ms = drain.max() / 1e6;
  }

  // (b) Timeout-detection latency: traffic stops; the tmax=50ms timeout
  // becomes true at last_arrival+50ms and is discovered at the next
  // dispatch poll.
  {
    auto gw = make_gateway(/*pull_input=*/false);
    const spec::MessageSpec& ms = *gw->link_a().spec().message("msgA");
    sim::Simulator sim;
    RunningStats detect;
    Instant t = Instant::origin();
    std::uint64_t errors_seen = 0;
    Instant violation_due;
    for (int burst = 0; burst < 100; ++burst) {
      // Two paced messages, then silence > tmax.
      t += Duration::microseconds(rng.uniform_int(0, 9999));
      const Instant first = t;
      sim.schedule_at(first, [&gw, &ms, &sim] {
        gw->on_input(0, state_instance(ms, 0, sim.now()), sim.now());
      });
      sim.schedule_at(first + 10_ms, [&gw, &ms, &sim, &violation_due] {
        gw->on_input(0, state_instance(ms, 1, sim.now()), sim.now());
        violation_due = sim.now() + 50_ms;
      });
      t = first + 120_ms;  // leaves ~60ms of violated silence
    }
    for (Instant tick = Instant::origin(); tick <= t; tick += dispatch_period) {
      sim.schedule_at(tick, [&] {
        gw->dispatch(sim.now());
        if (gw->stats().automaton_errors > errors_seen) {
          errors_seen = gw->stats().automaton_errors;
          detect.add(sim.now() - violation_due);
        }
      });
    }
    sim.run_until(t + 10_ms);
    outcome.timeout_mean_ms = detect.mean() / 1e6;
    outcome.timeout_max_ms = detect.max() / 1e6;
  }

  outcome.dispatches_per_s = static_cast<std::uint64_t>(1_s / dispatch_period);
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  Harness harness{argc, argv, "e17"};
  title("E17  gateway service period: pull latency, timeout detection, cost",
        "halving the gateway's dispatch period halves pull-drain and "
        "silence-detection latency but doubles the partition's activations");

  row("%-14s %11s %11s %12s %12s %13s", "dispatch[ms]", "pull avg", "pull max",
      "detect avg", "detect max", "dispatch/s");
  ParallelSweep sweep{harness};
  for (const auto period_us : {130, 510, 970, 1990, 4930, 9710}) {
    char label[32];
    std::snprintf(label, sizeof label, "dispatch=%dus", period_us);
    sweep.add(label, [period_us](Cell& cell) {
      const Outcome o = run(Duration::microseconds(period_us), 3);
      cell.row("%-14.2f %9.3fms %9.3fms %10.3fms %10.3fms %13llu", period_us / 1000.0,
               o.pull_mean_ms, o.pull_max_ms, o.timeout_mean_ms, o.timeout_max_ms,
               static_cast<unsigned long long>(o.dispatches_per_s));
    });
  }
  sweep.run();
  row("");
  row("expected shape: both latencies average half a dispatch period (max one");
  row("period), while the activation rate scales as 1/period. Push-mode inputs");
  row("and event-triggered outputs are dispatch-independent (they ride the");
  row("event-driven path), so a modest service period is sufficient unless");
  row("pull ports or tight error-detection deadlines are in play.");
  return 0;
}
