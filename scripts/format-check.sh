#!/usr/bin/env bash
# Check (or with --fix, apply) clang-format over the C++ sources.
# Exits 0 with a notice when clang-format is not installed so the check
# can run in minimal containers without blocking the build.
set -euo pipefail

cd "$(dirname "$0")/.."

FORMATTER="${CLANG_FORMAT:-clang-format}"
if ! command -v "$FORMATTER" >/dev/null 2>&1; then
  echo "format-check: $FORMATTER not found; skipping (install clang-format to enable)"
  exit 0
fi

mapfile -t files < <(git ls-files 'src/**/*.cpp' 'src/**/*.hpp' \
  'tools/**/*.cpp' 'tools/**/*.hpp' 'tests/**/*.cpp' 'tests/**/*.hpp' \
  'examples/**/*.cpp' 'bench/**/*.cpp')

if [[ "${1:-}" == "--fix" ]]; then
  "$FORMATTER" -i "${files[@]}"
  echo "format-check: reformatted ${#files[@]} files"
  exit 0
fi

fail=0
for f in "${files[@]}"; do
  if ! "$FORMATTER" --dry-run --Werror "$f" >/dev/null 2>&1; then
    echo "format-check: $f needs formatting"
    fail=1
  fi
done
if [[ $fail -ne 0 ]]; then
  echo "format-check: run scripts/format-check.sh --fix"
  exit 1
fi
echo "format-check: ${#files[@]} files clean"
