#!/usr/bin/env bash
# Tier-1 verification: configure, build, run the full test suite.
#
#   scripts/verify.sh [build-dir] [-- extra cmake args...]
#
# Examples:
#   scripts/verify.sh                       # default build/ directory
#   scripts/verify.sh build-asan -- -DDECOS_SANITIZE=address;undefined
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="build"
if [[ $# -gt 0 && "$1" != "--" ]]; then
  BUILD_DIR="$1"
  shift
fi
if [[ $# -gt 0 && "$1" == "--" ]]; then
  shift
fi

cmake -B "$BUILD_DIR" -S . "$@"
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
