#!/usr/bin/env python3
"""Assert a bench binary's artifacts are byte-identical for 1 and N workers.

Usage: check_parallel_determinism.py BENCH_BINARY [--jobs N]
           [--vary {jobs,sim-jobs}] [EXTRA_ARGS...]

Runs BENCH_BINARY twice into a temp directory -- once with `--jobs 1`,
once with `--jobs N` (default 8) -- passing any EXTRA_ARGS through to
both runs, and compares:

  stdout            byte-for-byte (tables, commentary, notes)
  BENCH_<id>.json   byte-for-byte (the harness JSON artifact)
  trace JSONL       byte-for-byte after dropping lines carrying
                    `"deterministic":false` -- wall-time histograms
                    (e.g. *_ns construct/dissect timings) differ even
                    between two serial runs, and the dump format tags
                    them for exactly this purpose. Everything else --
                    span ids, parents, event timestamps, deterministic
                    metrics -- must match exactly, which pins the
                    ordered-commit span-id renumbering in bench::Harness.

This is the contract the parallel sweep engine (DESIGN.md S25) makes:
parallelism is an execution detail, never observable in the artifacts.
Benches that need cross-run byte-identity of timing-derived *content*
must hide it behind a flag (e19's --no-wall) and the ctest entry passes
that flag via EXTRA_ARGS.

`--vary sim-jobs` checks the same contract one level down (DESIGN.md
S28): instead of the cell-sweep worker count it varies `--sim-jobs`, the
worker count of the partitioned event kernel *inside* one simulation.
Benches running partitioned clusters (e.g. E21) print no
worker-count-dependent output when --sim-jobs is given, so the two runs
must be byte-identical end to end.

Exit 0 when identical, 1 with a unified diff head otherwise.
"""

import argparse
import difflib
import pathlib
import subprocess
import sys
import tempfile

DETERMINISTIC_FALSE = '"deterministic":false'


def run(binary, flag, jobs, extra, outdir):
    tag = f"j{jobs}"
    json_out = outdir / f"{tag}.json"
    trace_out = outdir / f"{tag}.jsonl"
    telemetry_out = outdir / f"{tag}.telemetry.jsonl"
    cmd = [binary, flag, str(jobs), "--json-out", str(json_out),
           "--trace-out", str(trace_out), "--telemetry-out", str(telemetry_out),
           *extra]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        print(f"error: {' '.join(cmd)} exited {proc.returncode}", file=sys.stderr)
        sys.stderr.write(proc.stderr)
        sys.exit(1)
    return (proc.stdout, json_out.read_bytes(), trace_out.read_text(),
            telemetry_out.read_text())


def filter_trace(text):
    return [line for line in text.splitlines() if DETERMINISTIC_FALSE not in line]


def diff_head(name, flag, a, b, limit=20):
    print(f"FAIL: {name} differs between {flag} 1 and {flag} N", file=sys.stderr)
    lines = difflib.unified_diff(a, b, fromfile=f"{name} ({flag}=1)",
                                 tofile=f"{name} ({flag}=N)", lineterm="")
    for i, line in enumerate(lines):
        if i >= limit:
            print("  ...", file=sys.stderr)
            break
        print(f"  {line}", file=sys.stderr)


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("binary")
    parser.add_argument("--jobs", type=int, default=8,
                        help="worker count for the parallel run (default 8)")
    parser.add_argument("--vary", choices=["jobs", "sim-jobs"], default="jobs",
                        help="which worker flag to vary: the cell-sweep "
                             "workers (--jobs, S25) or the in-simulation "
                             "partition workers (--sim-jobs, S28)")
    # Anything the parser does not recognise (past an optional "--") is
    # forwarded to both bench runs, e.g. --quick --no-wall.
    args, extra = parser.parse_known_args()
    args.extra = [a for a in extra if a != "--"]
    flag = "--" + args.vary

    with tempfile.TemporaryDirectory(prefix="decos-determinism-") as tmp:
        outdir = pathlib.Path(tmp)
        out1, json1, trace1, telemetry1 = run(args.binary, flag, 1, args.extra, outdir)
        outN, jsonN, traceN, telemetryN = run(args.binary, flag, args.jobs, args.extra, outdir)

    failures = 0
    if out1 != outN:
        diff_head("stdout", flag, out1.splitlines(), outN.splitlines())
        failures += 1
    if json1 != jsonN:
        diff_head("json-out", flag, json1.decode().splitlines(), jsonN.decode().splitlines())
        failures += 1
    t1, tN = filter_trace(trace1), filter_trace(traceN)
    if t1 != tN:
        diff_head("trace-out (deterministic lines)", flag, t1, tN)
        failures += 1
    # The windowed telemetry stream makes the same promise as the trace
    # dump: sim-time windows are byte-deterministic; host-time metric
    # lines carry "deterministic":false and are filtered like any other
    # wall-clock artifact.
    w1, wN = filter_trace(telemetry1), filter_trace(telemetryN)
    if w1 != wN:
        diff_head("telemetry-out (deterministic lines)", flag, w1, wN)
        failures += 1

    if failures:
        return 1
    spans = sum(1 for line in t1 if '"type":"span"' in line)
    windows = sum(1 for line in w1 if '"type":"window"' in line)
    print(f"determinism ok: stdout, json, {len(t1)} trace lines ({spans} spans), "
          f"and {len(w1)} telemetry lines ({windows} windows) byte-identical "
          f"at {flag} 1 vs {flag} {args.jobs}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
