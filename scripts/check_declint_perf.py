#!/usr/bin/env python3
"""Analysis perf smoke: declint's whole-cluster passes must stay fast.

Generates an E19-shaped cluster of a few hundred gateways (512 link
specifications) and runs the full analysis -- parse, local rules,
flow-graph construction, DL008/DL009/DL010 -- under a wall-time budget.
The passes are linear in the number of flows, so a regression to
quadratic coupling between gateways shows up as an order-of-magnitude
blowout here long before it hurts a real deployment.

  python3 scripts/check_declint_perf.py build/tools/declint/declint
"""

import argparse
import json
import pathlib
import subprocess
import sys
import tempfile
import time

import gen_cluster_specs


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("declint", type=pathlib.Path, help="path to the declint binary")
    parser.add_argument("--pairs", type=int, default=256, help="cluster size (gateways)")
    parser.add_argument("--budget-s", type=float, default=1.0,
                        help="wall-time budget for the analysis run")
    args = parser.parse_args()

    with tempfile.TemporaryDirectory(prefix="declint-perf.") as tmp:
        # Pin the port period: the analysis cost is what is measured here,
        # and the E19 round length at hundreds of pairs (10ms * pairs/4)
        # would exceed the default 50ms d_acc -- a real DL008 finding,
        # but not the one this smoke is about.
        specs = gen_cluster_specs.generate(args.pairs, pathlib.Path(tmp), period_ms=10)
        start = time.monotonic()
        proc = subprocess.run(
            [str(args.declint), "--format", "json", *map(str, specs)],
            capture_output=True, text=True)
        elapsed = time.monotonic() - start

    if proc.returncode != 0:
        print(f"FAIL: declint exited {proc.returncode} on the generated cluster",
              file=sys.stderr)
        print(proc.stdout + proc.stderr, file=sys.stderr)
        return 1

    report = json.loads(proc.stdout)
    flows = report["cluster"]["flows"]
    if len(flows) != args.pairs:
        print(f"FAIL: expected {args.pairs} flows, analysis found {len(flows)}",
              file=sys.stderr)
        return 1
    if report["summary"]["errors"] != 0:
        print("FAIL: generated cluster should lint clean", file=sys.stderr)
        return 1

    print(f"declint perf smoke: {args.pairs} gateways, {len(flows)} flows, "
          f"{elapsed:.3f}s (budget {args.budget_s:.1f}s)")
    if elapsed > args.budget_s:
        print(f"FAIL: analysis took {elapsed:.3f}s > budget {args.budget_s:.1f}s",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
