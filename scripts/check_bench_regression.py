#!/usr/bin/env python3
"""Compare a fresh benchmark run against the committed baseline.

Usage: check_bench_regression.py BASELINE.json CURRENT.json
           [--suite e11|e20|e19|e21|e22] [--max-ratio R]

Suites mirror the harness-emitted JSON of each benchmark binary:

  e11  bench_e11_micro      `benchmarks` rows guard the compiled-plan hot
                            path (DESIGN.md S23); `speedups` must keep the
                            interned-vs-string wins.
  e20  bench_e20_kernel     `benchmarks` rows guard the timer-wheel kernel
                            (schedule/fire, cancel, periodic, churn);
                            `speedups` must keep the wheel-vs-reference
                            wins.
  e21  bench_e21_megacluster `sim_events` and `fingerprints` per node
                            scale must match the baseline EXACTLY (the
                            partitioned kernel's S28 byte-identity
                            contract: a changed count or fingerprint
                            means dispatch behaviour changed, at any
                            --sim-jobs); `wall_ms_per_sim_s` per
                            (scale, sim-jobs) cell is ratio-checked
                            loosely, like every cross-machine timing.
  e19  bench_e19_scalability `wall_ms_per_sim_s` per DAS-pair count must
                            not blow past baseline * max-ratio. Since the
                            parallel sweep engine (S25) the metric is
                            per-cell *thread CPU* time (the JSON key is
                            unchanged for baseline compatibility), so a
                            current run at any --jobs compares cleanly
                            against a serial baseline. `sim_events` must
                            match the baseline EXACTLY -- even when the
                            current run executed cells concurrently: the
                            simulated workload is deterministic, so a
                            changed event count means the kernel changed
                            dispatch behaviour, not just speed.
  e22  bench_e22_livegw     `achieved_fps` per offered-load point must not
                            fall below baseline / max-ratio, and `p99_us`
                            at the lowest load must stay under a loose
                            ceiling. Host-time numbers (the live runtime,
                            DESIGN.md S30), so this is the loosest suite.

For every watched row present in both files, current cpu must not exceed
baseline * max-ratio. Rows absent from either file are skipped (machine
pools differ), but at least one watched row must match or the check
fails -- an empty intersection means the baseline is stale.

The absolute times of the two runs come from different machines, so the
ratio test is deliberately loose (1.5x for microbench suites, 2.0x for
the whole-simulation e19 suite): it catches "someone reintroduced
per-fire allocation into the kernel", not minor scheduling jitter.
"""

import argparse
import json
import sys

SUITES = {
    # The compiled-plan hot-path rows. String-path rows are intentionally
    # not watched: they exist as a comparison anchor, not as a contract.
    "e11": {
        "watched": [
            "BM_DissectCompiled/4",
            "BM_DissectCompiled/16",
            "BM_ConstructCompiled/4",
            "BM_ConstructCompiled/16",
            "BM_RepositoryStoreFetchStateInterned",
            "BM_RepositoryStoreFetchEventInterned",
            "BM_GatewayReceiveAndForward/4",
            "BM_GatewayReceiveAndForward/16",
            "BM_EncodeCompiled/4",
            "BM_EncodeCompiled/16",
            "BM_DecodeCompiled/4",
            "BM_DecodeCompiled/16",
            "BM_GatewayDrainBatched/4",
            "BM_GatewayDrainBatched/16",
        ],
        # Interned-vs-string ratios that must hold in the *current* run
        # (>= 2x on the repository store/fetch round trip). The S29 rows
        # (compiled wire layout vs field-walk codec, batched vs
        # per-instance drain) get conservative floors far below the dev
        # box's measured wins, so only a genuine fallback-to-reference
        # regression trips them on noisy CI machines.
        "min_speedups": {"repo_state": 2.0, "repo_event": 2.0,
                         "encode": 1.2, "decode": 1.2, "dispatch_batch": 1.05},
        "max_ratio": 1.5,
    },
    # The kernel rows. Reference-kernel rows are the comparison anchor,
    # not a contract. Floors sit far below the measured wins (2.1-5.5x on
    # the dev box) so only a real regression -- the wheel degrading to
    # heap+map behaviour -- trips them on noisy CI machines.
    "e20": {
        "watched": [
            "BM_OneShotWheel",
            "BM_CancelWheel",
            "BM_PeriodicWheel",
            "BM_MixedChurnWheel",
        ],
        "min_speedups": {
            "kernel_oneshot": 1.2,
            "kernel_cancel": 1.5,
            "kernel_periodic": 1.2,
            "kernel_churn": 1.5,
        },
        "max_ratio": 1.5,
    },
    # Whole-simulation per-cell thread-CPU time; handled by check_e19,
    # not benchmark rows. max_ratio is extra loose: end-to-end timing.
    "e19": {"max_ratio": 2.0},
    # Mega-cluster suite; handled by check_e21. Counters/fingerprints are
    # exact (determinism, no tolerance), wall clock is extra loose.
    "e21": {"max_ratio": 2.0},
    # Live-runtime saturation sweep (bench_e22_livegw); handled by
    # check_e22. Host-time throughput/latency across machines is the
    # noisiest thing we gate, so the ratio is the loosest of all: it
    # catches "the runtime loop regained a per-frame allocation or lost
    # an order of magnitude", not scheduler jitter.
    "e22": {"max_ratio": 3.0},
}


def load(path):
    with open(path) as f:
        doc = json.load(f)
    rows = {}
    for row in doc.get("benchmarks", []):
        name = row.get("name")
        cpu = row.get("cpu_ns")
        if isinstance(name, str) and isinstance(cpu, (int, float)) and cpu > 0:
            rows[name] = float(cpu)
    return doc, rows


def check_rows(suite, base, cur, max_ratio, failures):
    compared = 0
    for name in suite["watched"]:
        if name not in base or name not in cur:
            continue
        compared += 1
        ratio = cur[name] / base[name]
        status = "ok" if ratio <= max_ratio else "REGRESSED"
        print(f"{name:45s} base {base[name]:12.1f} ns  cur {cur[name]:12.1f} ns  "
              f"ratio {ratio:5.2f}x  {status}")
        if ratio > max_ratio:
            failures.append(f"{name}: {ratio:.2f}x > {max_ratio:.2f}x")
    if compared == 0:
        print("error: no watched benchmark appears in both files -- stale baseline?",
              file=sys.stderr)
        failures.append("empty watched intersection")
    return compared


def check_speedups(suite, current_doc, failures):
    speedups = current_doc.get("speedups", {})
    if not isinstance(speedups, dict):
        speedups = {}
    for key, minimum in suite["min_speedups"].items():
        value = speedups.get(key)
        if value is None:
            failures.append(f"speedups.{key}: missing from current run")
            continue
        status = "ok" if value >= minimum else "TOO SLOW"
        print(f"speedup {key:37s} {value:5.2f}x  (need >= {minimum:.1f}x)  {status}")
        if value < minimum:
            failures.append(f"speedups.{key}: {value:.2f}x < {minimum:.1f}x")


def check_e19(base_doc, current_doc, max_ratio, failures):
    base_wall = base_doc.get("wall_ms_per_sim_s", {})
    cur_wall = current_doc.get("wall_ms_per_sim_s", {})
    compared = 0
    for pairs in sorted(base_wall, key=int):
        if pairs not in cur_wall:
            continue
        compared += 1
        ratio = cur_wall[pairs] / base_wall[pairs]
        status = "ok" if ratio <= max_ratio else "REGRESSED"
        print(f"wall_ms_per_sim_s[{pairs:>2s} pairs]  base {base_wall[pairs]:8.2f}  "
              f"cur {cur_wall[pairs]:8.2f}  ratio {ratio:5.2f}x  {status}")
        if ratio > max_ratio:
            failures.append(f"wall_ms_per_sim_s[{pairs}]: {ratio:.2f}x > {max_ratio:.2f}x")
    if compared == 0:
        print("error: no DAS-pair cell appears in both files -- stale baseline?",
              file=sys.stderr)
        failures.append("empty e19 cell intersection")

    # Determinism guard: identical config => identical dispatch count,
    # bit-for-bit, on any machine. No tolerance.
    base_events = base_doc.get("sim_events", {})
    cur_events = current_doc.get("sim_events", {})
    for pairs in sorted(base_events, key=int):
        if pairs not in cur_events:
            continue
        match = base_events[pairs] == cur_events[pairs]
        status = "ok" if match else "DIVERGED"
        print(f"sim_events[{pairs:>2s} pairs]         base {base_events[pairs]:8d}  "
              f"cur {cur_events[pairs]:8d}  {status}")
        if not match:
            failures.append(
                f"sim_events[{pairs}]: {cur_events[pairs]} != baseline "
                f"{base_events[pairs]} (kernel determinism broken)")


def check_e21(base_doc, current_doc, max_ratio, failures):
    # Exact guards first: the simulated workload is deterministic at any
    # --sim-jobs, so the dispatch count and the outcome fingerprint of a
    # scale must be bit-identical to the baseline on any machine.
    base_events = base_doc.get("sim_events", {})
    cur_events = current_doc.get("sim_events", {})
    compared = 0
    for nodes in sorted(base_events, key=int):
        if nodes not in cur_events:
            continue
        compared += 1
        match = base_events[nodes] == cur_events[nodes]
        status = "ok" if match else "DIVERGED"
        print(f"sim_events[{nodes:>4s} nodes]      base {base_events[nodes]:10d}  "
              f"cur {cur_events[nodes]:10d}  {status}")
        if not match:
            failures.append(
                f"sim_events[{nodes}]: {cur_events[nodes]} != baseline "
                f"{base_events[nodes]} (partitioned-kernel determinism broken)")
    if compared == 0:
        print("error: no node scale appears in both files -- stale baseline?",
              file=sys.stderr)
        failures.append("empty e21 scale intersection")

    base_fp = base_doc.get("fingerprints", {})
    cur_fp = current_doc.get("fingerprints", {})
    for nodes in sorted(base_fp, key=int):
        if nodes not in cur_fp:
            continue
        match = base_fp[nodes] == cur_fp[nodes]
        status = "ok" if match else "DIVERGED"
        print(f"fingerprint[{nodes:>4s} nodes]     base {base_fp[nodes]}  "
              f"cur {cur_fp[nodes]}  {status}")
        if not match:
            failures.append(
                f"fingerprints[{nodes}]: {cur_fp[nodes]} != baseline {base_fp[nodes]}")

    # Loose wall-clock guard per (scale, sim-jobs) cell; absent when
    # either run used --no-wall.
    base_wall = base_doc.get("wall_ms_per_sim_s", {})
    cur_wall = current_doc.get("wall_ms_per_sim_s", {})
    for nodes in sorted(base_wall, key=int):
        if nodes not in cur_wall:
            continue
        for sj in sorted(base_wall[nodes], key=int):
            if sj not in cur_wall[nodes] or base_wall[nodes][sj] <= 0:
                continue
            ratio = cur_wall[nodes][sj] / base_wall[nodes][sj]
            status = "ok" if ratio <= max_ratio else "REGRESSED"
            print(f"wall[{nodes:>4s} nodes, sj={sj}]    base {base_wall[nodes][sj]:8.1f}  "
                  f"cur {cur_wall[nodes][sj]:8.1f}  ratio {ratio:5.2f}x  {status}")
            if ratio > max_ratio:
                failures.append(
                    f"wall_ms_per_sim_s[{nodes}][{sj}]: {ratio:.2f}x > {max_ratio:.2f}x")


def check_e22(base_doc, current_doc, max_ratio, failures):
    # Sanity first: the sweep must still cover the ladder and actually
    # carry frames at every point (a runtime that deadlocks or drops
    # everything would otherwise sail through a ratio-only check).
    points = current_doc.get("points", [])
    if len(points) < 3:
        failures.append(f"e22: only {len(points)} offered-load points (need >= 3)")
    for point in points:
        if point.get("received", 0) <= 0:
            failures.append(
                f"e22: no frames carried at offered={point.get('offered_fps')}")

    # Per-point achieved-throughput floor. Host-time numbers cross
    # machines, so the floor is baseline / max_ratio -- it trips on a
    # lost order of magnitude, not on a slower CI box.
    base_achieved = base_doc.get("achieved_fps", {})
    cur_achieved = current_doc.get("achieved_fps", {})
    compared = 0
    for offered in sorted(base_achieved, key=float):
        if offered not in cur_achieved or base_achieved[offered] <= 0:
            continue
        compared += 1
        floor = base_achieved[offered] / max_ratio
        ok = cur_achieved[offered] >= floor
        status = "ok" if ok else "REGRESSED"
        print(f"achieved_fps[{offered:>8s}/s]  base {base_achieved[offered]:10.0f}  "
              f"cur {cur_achieved[offered]:10.0f}  floor {floor:10.0f}  {status}")
        if not ok:
            failures.append(
                f"achieved_fps[{offered}]: {cur_achieved[offered]:.0f} < "
                f"floor {floor:.0f} (baseline / {max_ratio:.1f})")
    if compared == 0:
        print("error: no offered-load point appears in both files -- stale baseline?",
              file=sys.stderr)
        failures.append("empty e22 point intersection")

    # p99 latency ceiling at the lowest offered load only: below the
    # knee latency is load-independent, so this is the one point where a
    # cross-machine ratio is meaningful.
    base_p99 = base_doc.get("p99_us", {})
    cur_p99 = current_doc.get("p99_us", {})
    shared = [k for k in base_p99 if k in cur_p99 and base_p99[k] > 0]
    if shared:
        lowest = min(shared, key=float)
        ceiling = base_p99[lowest] * max_ratio * 3.0  # tail latency: extra slack
        ok = cur_p99[lowest] <= ceiling
        status = "ok" if ok else "REGRESSED"
        print(f"p99_us[{lowest:>8s}/s]        base {base_p99[lowest]:10.1f}  "
              f"cur {cur_p99[lowest]:10.1f}  ceiling {ceiling:8.1f}  {status}")
        if not ok:
            failures.append(
                f"p99_us[{lowest}]: {cur_p99[lowest]:.1f}us > ceiling {ceiling:.1f}us")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--suite", choices=sorted(SUITES), default="e11")
    parser.add_argument("--max-ratio", type=float, default=None,
                        help="override the suite's default looseness")
    args = parser.parse_args()

    suite = SUITES[args.suite]
    max_ratio = args.max_ratio if args.max_ratio is not None else suite["max_ratio"]

    base_doc, base = load(args.baseline)
    current_doc, cur = load(args.current)

    failures = []
    compared = 0
    if args.suite == "e19":
        check_e19(base_doc, current_doc, max_ratio, failures)
    elif args.suite == "e21":
        check_e21(base_doc, current_doc, max_ratio, failures)
    elif args.suite == "e22":
        check_e22(base_doc, current_doc, max_ratio, failures)
    else:
        compared = check_rows(suite, base, cur, max_ratio, failures)
        check_speedups(suite, current_doc, failures)

    if failures:
        print("\nperf-smoke FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    if args.suite == "e19":
        print("\nperf-smoke ok (e19 wall + determinism)")
    elif args.suite == "e21":
        print("\nperf-smoke ok (e21 determinism + wall)")
    elif args.suite == "e22":
        print("\nperf-smoke ok (e22 live-runtime throughput + latency)")
    else:
        print(f"\nperf-smoke ok ({compared} rows compared)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
