#!/usr/bin/env python3
"""Compare a fresh bench_e11_micro run against the committed baseline.

Usage: check_bench_regression.py BASELINE.json CURRENT.json [--max-ratio 1.5]

Both files are BENCH_E11.json documents as written by bench_e11_micro
(`benchmarks`: list of {name, cpu_ns, ...}). The check guards the
compiled-plan hot path (DESIGN.md S23): for every benchmark name listed
in WATCHED that appears in both files, the current cpu_ns must not
exceed baseline * max-ratio. Benchmarks absent from either file are
skipped (machine pools differ), but at least one watched row must match
or the check fails -- an empty intersection means the baseline is stale.

The absolute times of the two runs come from different machines, so the
ratio test is deliberately loose (default 1.5x): it catches "someone
reintroduced string lookups into the dissect/construct path", not minor
scheduling jitter.
"""

import argparse
import json
import sys

# The compiled-plan hot-path rows. String-path rows are intentionally
# not watched: they exist as a comparison anchor, not as a contract.
WATCHED = [
    "BM_DissectCompiled/4",
    "BM_DissectCompiled/16",
    "BM_ConstructCompiled/4",
    "BM_ConstructCompiled/16",
    "BM_RepositoryStoreFetchStateInterned",
    "BM_RepositoryStoreFetchEventInterned",
    "BM_GatewayReceiveAndForward/4",
    "BM_GatewayReceiveAndForward/16",
]

# Interned-vs-string ratios that must hold in the *current* run
# (ISSUE acceptance: >= 2x on the repository store/fetch round trip).
MIN_SPEEDUPS = {
    "repo_state": 2.0,
    "repo_event": 2.0,
}


def load_cpu_ns(path):
    with open(path) as f:
        doc = json.load(f)
    rows = {}
    for row in doc.get("benchmarks", []):
        name = row.get("name")
        cpu = row.get("cpu_ns")
        if isinstance(name, str) and isinstance(cpu, (int, float)) and cpu > 0:
            rows[name] = float(cpu)
    return doc, rows


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--max-ratio", type=float, default=1.5)
    args = parser.parse_args()

    _, base = load_cpu_ns(args.baseline)
    current_doc, cur = load_cpu_ns(args.current)

    failures = []
    compared = 0
    for name in WATCHED:
        if name not in base or name not in cur:
            continue
        compared += 1
        ratio = cur[name] / base[name]
        status = "ok" if ratio <= args.max_ratio else "REGRESSED"
        print(f"{name:45s} base {base[name]:12.1f} ns  cur {cur[name]:12.1f} ns  "
              f"ratio {ratio:5.2f}x  {status}")
        if ratio > args.max_ratio:
            failures.append(f"{name}: {ratio:.2f}x > {args.max_ratio:.2f}x")

    if compared == 0:
        print("error: no watched benchmark appears in both files -- stale baseline?",
              file=sys.stderr)
        return 1

    speedups = current_doc.get("speedups", {})
    if not isinstance(speedups, dict):
        speedups = {}
    for key, minimum in MIN_SPEEDUPS.items():
        value = speedups.get(key)
        if value is None:
            failures.append(f"speedups.{key}: missing from current run")
            continue
        status = "ok" if value >= minimum else "TOO SLOW"
        print(f"speedup {key:37s} {value:5.2f}x  (need >= {minimum:.1f}x)  {status}")
        if value < minimum:
            failures.append(f"speedups.{key}: {value:.2f}x < {minimum:.1f}x")

    if failures:
        print("\nperf-smoke FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"\nperf-smoke ok ({compared} rows compared)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
