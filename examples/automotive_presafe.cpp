// Tactic coordination of DASes: the Mercedes Pre-Safe scenario the paper
// motivates in Section I. The car-dynamics DAS publishes lateral
// acceleration, brake pressure and yaw error on its time-triggered VN; a
// virtual gateway exports a hazard assessment to the comfort/body DAS,
// whose jobs tension the seat belts, realign the seats and close the
// sliding roof when a skid or emergency braking is detected.
//
// The second half injects a babbling-idiot fault into the dynamics DAS
// and a timing-faulty hazard stream into the gateway, demonstrating the
// two containment layers: the bus guardian keeps the babbler off other
// VNs' slots, and the gateway's timed automaton blocks the timing
// violations from entering the comfort DAS.
#include <cstdio>

#include "core/gateway_job.hpp"
#include "core/virtual_gateway.hpp"
#include "core/wiring.hpp"
#include "fault/plan.hpp"
#include "platform/cluster.hpp"
#include "vn/et_vn.hpp"
#include "vn/tt_vn.hpp"

using namespace decos;
using namespace decos::literals;

namespace {

constexpr tt::VnId kDynamicsVn = 1;
constexpr tt::VnId kComfortVn = 2;

spec::MessageSpec dynamics_message() {
  spec::MessageSpec ms{"msgdynamics"};
  spec::ElementSpec key;
  key.name = "name";
  key.key = true;
  key.fields.push_back(spec::FieldSpec{"id", spec::FieldType::kInt16, 0, ta::Value{300}});
  ms.add_element(std::move(key));
  spec::ElementSpec hazard;
  hazard.name = "hazard";
  hazard.convertible = true;
  hazard.fields.push_back(spec::FieldSpec{"lat_acc_mg", spec::FieldType::kInt32, 0, std::nullopt});
  hazard.fields.push_back(spec::FieldSpec{"brake_kpa", spec::FieldType::kInt32, 0, std::nullopt});
  hazard.fields.push_back(spec::FieldSpec{"skidding", spec::FieldType::kBoolean, 0, std::nullopt});
  hazard.fields.push_back(spec::FieldSpec{"t", spec::FieldType::kTimestamp, 0, std::nullopt});
  ms.add_element(std::move(hazard));
  // Raw sensor detail stays inside the dynamics DAS (complexity control).
  spec::ElementSpec raw;
  raw.name = "rawsensors";
  raw.fields.push_back(spec::FieldSpec{"wheel_slip_pct", spec::FieldType::kInt16, 0, std::nullopt});
  raw.fields.push_back(spec::FieldSpec{"steer_cdeg", spec::FieldType::kInt16, 0, std::nullopt});
  ms.add_element(std::move(raw));
  return ms;
}

spec::MessageSpec presafe_message() {
  spec::MessageSpec ms{"msgpresafe"};
  spec::ElementSpec key;
  key.name = "name";
  key.key = true;
  key.fields.push_back(spec::FieldSpec{"id", spec::FieldType::kInt16, 0, ta::Value{410}});
  ms.add_element(std::move(key));
  spec::ElementSpec hazard;
  hazard.name = "hazard";
  hazard.convertible = true;
  hazard.fields.push_back(spec::FieldSpec{"lat_acc_mg", spec::FieldType::kInt32, 0, std::nullopt});
  hazard.fields.push_back(spec::FieldSpec{"brake_kpa", spec::FieldType::kInt32, 0, std::nullopt});
  hazard.fields.push_back(spec::FieldSpec{"skidding", spec::FieldType::kBoolean, 0, std::nullopt});
  hazard.fields.push_back(spec::FieldSpec{"t", spec::FieldType::kTimestamp, 0, std::nullopt});
  ms.add_element(std::move(hazard));
  return ms;
}

struct Actuators {
  bool belts_tensioned = false;
  bool seats_aligned = false;
  int roof_percent_open = 40;
  Instant belts_at;
  Instant roof_closed_at;
};

}  // namespace

int main() {
  std::printf("== Pre-Safe: coordinating the dynamics and comfort DASes ==\n\n");

  platform::ClusterConfig config;
  config.nodes = 4;  // 0,1: dynamics; 2: comfort; 3: gateway host
  config.allocations = {
      {kDynamicsVn, "dynamics", 32, {0, 1}},
      {kComfortVn, "comfort", 32, {2, 3}},
  };
  config.drift_ppm = {25.0, -30.0, 15.0, -10.0};
  platform::Cluster cluster{config};

  vn::TtVirtualNetwork dynamics_vn{"dynamics-vn", kDynamicsVn};
  dynamics_vn.register_message(dynamics_message());
  vn::EtVirtualNetwork comfort_vn{"comfort-vn", kComfortVn};

  // --- gateway ----------------------------------------------------------
  spec::LinkSpec link_a{"dynamics"};
  link_a.add_message(dynamics_message());
  {
    spec::PortSpec in;
    in.message = "msgdynamics";
    in.direction = spec::DataDirection::kInput;
    in.semantics = spec::InfoSemantics::kState;
    in.period = 10_ms;
    link_a.add_port(in);
  }
  spec::LinkSpec link_b{"comfort"};
  link_b.add_message(presafe_message());
  {
    spec::PortSpec out;
    out.message = "msgpresafe";
    out.direction = spec::DataDirection::kOutput;
    out.semantics = spec::InfoSemantics::kState;
    out.paradigm = spec::ControlParadigm::kEventTriggered;
    out.queue_capacity = 8;
    link_b.add_port(out);
  }
  core::GatewayConfig gwc;
  gwc.default_d_acc = 50_ms;
  core::VirtualGateway gateway{"presafe-export", std::move(link_a), std::move(link_b), gwc};
  gateway.finalize();
  core::wire_tt_link(gateway, 0, dynamics_vn, cluster.controller(3), {});
  core::wire_et_link(gateway, 1, comfort_vn, cluster.controller(3),
                     cluster.vn_slots(kComfortVn, 3));
  cluster.component(3)
      .add_partition("gateway", "architecture", 0_ms, 1_ms)
      .add_job(std::make_unique<core::GatewayJob>(gateway));

  // --- dynamics sensor job (node 0) --------------------------------------
  // Scenario: calm cruise, then emergency braking + skid at t=1s.
  platform::Partition& dyn_partition =
      cluster.component(0).add_partition("dyn", "dynamics", 1_ms, 1_ms);
  platform::FunctionJob& dyn_job =
      dyn_partition.add_function_job("car-dynamics", [&](platform::FunctionJob& self, Instant now) {
        const bool emergency = now >= Instant::origin() + 1_s;
        auto inst = spec::make_instance(*dynamics_vn.message_spec("msgdynamics"));
        inst.element("hazard")->fields[0] = ta::Value{emergency ? 450 : 18};     // mg lateral
        inst.element("hazard")->fields[1] = ta::Value{emergency ? 9000 : 150};   // brake kPa
        inst.element("hazard")->fields[2] = ta::Value{emergency};
        inst.element("hazard")->fields[3] = ta::Value{now};
        inst.element("rawsensors")->fields[0] = ta::Value{emergency ? 35 : 1};
        inst.element("rawsensors")->fields[1] = ta::Value{emergency ? -800 : 20};
        inst.set_send_time(now);
        self.ports()[0]->deposit(std::move(inst), now);
      });
  {
    spec::PortSpec out;
    out.message = "msgdynamics";
    out.direction = spec::DataDirection::kOutput;
    out.semantics = spec::InfoSemantics::kState;
    out.period = 10_ms;
    dynamics_vn.attach_sender(cluster.controller(0), dyn_job.add_port(out),
                              cluster.vn_slots(kDynamicsVn, 0));
  }

  // --- Pre-Safe actuator jobs (node 2, comfort DAS) -----------------------
  Actuators actuators;
  platform::Partition& comfort_partition =
      cluster.component(2).add_partition("body", "comfort", 2_ms, 2_ms);
  platform::FunctionJob& presafe_job = comfort_partition.add_function_job(
      "presafe", [&](platform::FunctionJob& self, Instant now) {
        while (auto inst = self.ports()[0]->read()) {
          const bool skidding = inst->element("hazard")->fields[2].as_bool();
          const std::int64_t brake = inst->element("hazard")->fields[1].as_int();
          if (skidding || brake > 6000) {
            if (!actuators.belts_tensioned) {
              actuators.belts_tensioned = true;
              actuators.belts_at = now;
            }
            actuators.seats_aligned = true;
            if (actuators.roof_percent_open > 0) {
              actuators.roof_percent_open = 0;  // full closure command
              actuators.roof_closed_at = now;
            }
          }
        }
      });
  {
    spec::PortSpec in;
    in.message = "msgpresafe";
    in.direction = spec::DataDirection::kInput;
    in.semantics = spec::InfoSemantics::kEvent;
    in.paradigm = spec::ControlParadigm::kEventTriggered;
    in.queue_capacity = 32;
    comfort_vn.attach_receiver(cluster.controller(2), presafe_job.add_port(in));
  }

  // --- fault injection ------------------------------------------------------
  fault::FaultPlan plan{cluster.simulator()};
  // At t=2s node 1 (dynamics DAS) turns babbling idiot, spraying 200
  // transmissions into the comfort VN's slots.
  const auto comfort_slots = cluster.vn_slots(kComfortVn, 2);
  plan.babble(cluster.controller(1), Instant::origin() + 2_s, comfort_slots[0], kComfortVn, 200,
              1_ms);
  // At t=2.5s the dynamics sensor goes haywire and floods the gateway
  // directly at 1kHz (timing failure against the 10ms port spec): emulate
  // by depositing into the gateway's input port off-schedule.
  for (int i = 0; i < 300; ++i) {
    cluster.simulator().schedule_at(Instant::origin() + 2500_ms + 1_ms * i, [&gateway, &cluster] {
      auto inst = spec::make_instance(*gateway.link_a().spec().message("msgdynamics"));
      inst.element("hazard")->fields[3] = ta::Value{cluster.simulator().now()};
      gateway.on_input(0, inst, cluster.simulator().now());
    });
  }

  cluster.start();
  cluster.run_for(4_s);

  std::printf("  t=1.000s  emergency braking + skid begins\n");
  std::printf("  belts tensioned     : %s at t=%.3fs\n",
              actuators.belts_tensioned ? "yes" : "NO", actuators.belts_at.as_seconds());
  std::printf("  seats realigned     : %s\n", actuators.seats_aligned ? "yes" : "NO");
  std::printf("  sliding roof closed : %s at t=%.3fs\n\n",
              actuators.roof_percent_open == 0 ? "yes" : "NO",
              actuators.roof_closed_at.as_seconds());

  const double reaction_ms = (actuators.belts_at - (Instant::origin() + 1_s)).as_ms();
  std::printf("  reaction time through TT VN -> gateway -> ET VN: %.1f ms\n\n", reaction_ms);

  std::printf("  fault containment after t=2s:\n");
  std::printf("    babbling-idiot transmissions blocked by bus guardian: %llu\n",
              static_cast<unsigned long long>(cluster.bus().frames_blocked()));
  std::printf("    timing-faulty hazard updates blocked by gateway TA  : %llu\n",
              static_cast<unsigned long long>(gateway.stats().blocked_temporal));
  std::printf("    comfort DAS messages still delivered               : %llu\n",
              static_cast<unsigned long long>(comfort_vn.messages_delivered()));
  return actuators.belts_tensioned && actuators.roof_percent_open == 0 ? 0 : 1;
}
