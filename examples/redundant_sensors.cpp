// Redundancy exploitation end to end (paper Section I): the stability
// DAS fuses its own yaw-rate sensor with a second yaw reading imported
// from the chassis DAS through a virtual gateway that is configured
// entirely from one XML artifact (examples/specs/yaw_gateway.xml) --
// link specs, renaming, value filter and accuracy interval included.
//
// At t=1.5s the local yaw sensor fails dirty (stuck at a wrong value
// with occasional spikes). Median fusion over {local, imported, model}
// keeps the stability controller on the true value; the gateway's value
// filter independently stops the chassis side's own spikes at the
// boundary.
#include <cmath>
#include <cstdio>
#include <string>

#include "core/gateway_job.hpp"
#include "core/gateway_xml.hpp"
#include "core/wiring.hpp"
#include "platform/cluster.hpp"
#include "services/fusion.hpp"
#include "util/rng.hpp"
#include "util/statistics.hpp"
#include "vn/et_vn.hpp"
#include "vn/tt_vn.hpp"

using namespace decos;
using namespace decos::literals;

namespace {
constexpr tt::VnId kChassisVn = 1;
constexpr tt::VnId kStabilityVn = 2;

/// True yaw rate in milli-deg/s: a slalom manoeuvre.
std::int64_t true_yaw(Instant now) {
  return static_cast<std::int64_t>(2000.0 * std::sin(2.0 * now.as_seconds()));
}
}  // namespace

int main() {
  std::printf("== Redundant sensors: XML-configured gateway + median fusion ==\n\n");

  // --- gateway from its XML artifact ---------------------------------------
  auto gateway = core::load_gateway_file(std::string{DECOS_SPECS_DIR} + "/yaw_gateway.xml");
  if (!gateway.ok()) {
    std::fprintf(stderr, "gateway spec: %s\n", gateway.error().to_string().c_str());
    return 1;
  }
  core::VirtualGateway& gw = *gateway.value();
  std::printf("  loaded gateway '%s' (%s -> %s) from yaw_gateway.xml\n\n", gw.name().c_str(),
              gw.link_a().spec().das().c_str(), gw.link_b().spec().das().c_str());

  // --- platform --------------------------------------------------------------
  platform::ClusterConfig config;
  config.nodes = 3;  // 0: chassis, 1: stability, 2: gateway host
  config.allocations = {
      {kChassisVn, "chassis", 32, {0}},
      {kStabilityVn, "stability", 32, {1, 2}},
  };
  platform::Cluster cluster{config};
  vn::TtVirtualNetwork chassis_vn{"chassis-vn", kChassisVn};
  chassis_vn.register_message(*gw.link_a().spec().message("msgyaw"));
  vn::EtVirtualNetwork stability_vn{"stability-vn", kStabilityVn};
  core::wire_tt_link(gw, 0, chassis_vn, cluster.controller(2), {});
  core::wire_et_link(gw, 1, stability_vn, cluster.controller(2),
                     cluster.vn_slots(kStabilityVn, 2));
  cluster.component(2)
      .add_partition("gateway", "architecture", 0_ms, 1_ms)
      .add_job(std::make_unique<core::GatewayJob>(gw));

  // --- chassis yaw sensor (node 0) -------------------------------------------
  Rng rng{42};
  platform::Partition& p0 = cluster.component(0).add_partition("chassis", "chassis", 1_ms, 1_ms);
  platform::FunctionJob& chassis_sensor =
      p0.add_function_job("chassis-yaw", [&](platform::FunctionJob& self, Instant now) {
        std::int64_t reading = true_yaw(now) + rng.uniform_int(-20, 20);
        if (rng.bernoulli(0.02)) reading = 30000;  // electrical spike
        auto inst = spec::make_instance(*chassis_vn.message_spec("msgyaw"));
        inst.element("yawrate")->fields[0] = ta::Value{reading};
        inst.element("yawrate")->fields[1] = ta::Value{now};
        inst.set_send_time(now);
        self.ports()[0]->deposit(std::move(inst), now);
      });
  {
    spec::PortSpec out;
    out.message = "msgyaw";
    out.direction = spec::DataDirection::kOutput;
    out.semantics = spec::InfoSemantics::kState;
    out.period = 10_ms;
    chassis_vn.attach_sender(cluster.controller(0), chassis_sensor.add_port(out),
                             cluster.vn_slots(kChassisVn, 0));
  }

  // --- stability controller (node 1): local sensor + import + model fusion ---
  services::SensorFusion fusion{services::SensorFusion::Strategy::kMedian, 3, 40_ms};
  RunningStats fused_error;
  RunningStats local_error;
  std::uint64_t fusion_unavailable = 0;
  const Instant local_fails_at = Instant::origin() + 1500_ms;

  platform::Partition& p1 =
      cluster.component(1).add_partition("stability", "stability", 2_ms, 1_ms);
  platform::FunctionJob& controller = p1.add_function_job(
      "stability-controller", [&](platform::FunctionJob& self, Instant now) {
        // Source 0: local yaw sensor, failing dirty after 1.5s.
        std::int64_t local = true_yaw(now) + rng.uniform_int(-20, 20);
        if (now >= local_fails_at) local = -1500 + rng.uniform_int(-300, 300);
        fusion.offer(0, ta::Value{static_cast<double>(local)}, now);
        // Source 1: imported chassis yaw (through the gateway).
        while (auto inst = self.ports()[0]->read()) {
          fusion.offer(1, ta::Value{static_cast<double>(
                              inst->element("imported_yaw")->fields[0].as_int())},
                       now);
        }
        // Source 2: vehicle-model estimate (coarse but independent).
        fusion.offer(2, ta::Value{static_cast<double>(true_yaw(now) + rng.uniform_int(-150, 150))},
                     now);

        const auto fused = fusion.fused(now);
        if (!fused) {
          ++fusion_unavailable;
          return;
        }
        fused_error.add(std::abs(fused->as_real() - static_cast<double>(true_yaw(now))));
        local_error.add(std::abs(static_cast<double>(local - true_yaw(now))));
      });
  {
    spec::PortSpec in;
    in.message = "msgchassisyaw";
    in.direction = spec::DataDirection::kInput;
    in.semantics = spec::InfoSemantics::kEvent;
    in.paradigm = spec::ControlParadigm::kEventTriggered;
    in.queue_capacity = 16;
    stability_vn.attach_receiver(cluster.controller(1), controller.add_port(in));
  }

  cluster.start();
  cluster.run_for(3_s);

  std::printf("  local yaw sensor fails dirty at t=1.5s (stuck + noise)\n\n");
  std::printf("  mean |error| of local sensor alone : %8.1f mdeg/s\n", local_error.mean());
  std::printf("  mean |error| of median fusion      : %8.1f mdeg/s\n", fused_error.mean());
  std::printf("  fusion unavailable cycles          : %llu\n",
              static_cast<unsigned long long>(fusion_unavailable));
  std::printf("\n  gateway: %s\n", gw.stats().summary().c_str());
  std::printf("  (blocked_value = chassis spikes stopped by the XML value filter)\n");
  return fused_error.mean() < local_error.mean() / 5.0 ? 0 : 1;
}
