// Bridging an event-triggered DAS to a time-triggered DAS, configured
// entirely from XML link specifications (the paper's Fig. 6 artifact).
//
// The comfort DAS reports sliding-roof *movements* (event semantics: the
// change in opening, in percent) on its CAN-like virtual network. The
// display DAS expects the roof *position* (state semantics) as a 50ms
// periodic time-triggered message. The hidden gateway performs the
// event->state conversion via the transfer semantics in the link spec
// (StateValue = StateValue + ValueChange) and paces the output to the
// display's TT schedule.
//
// The second half shows a *visible* gateway (Section III): a gateway job
// at the application level resolving a semantic mismatch -- the roof
// position in percent-open vs. the display's legacy convention of
// percent-CLOSED -- which "eludes a generic architectural solution".
#include <cstdio>
#include <string>

#include "core/gateway_job.hpp"
#include "core/virtual_gateway.hpp"
#include "core/wiring.hpp"
#include "platform/cluster.hpp"
#include "spec/linkspec_xml.hpp"
#include "vn/et_vn.hpp"
#include "vn/tt_vn.hpp"

using namespace decos;
using namespace decos::literals;

namespace {
constexpr tt::VnId kComfortVn = 1;
constexpr tt::VnId kDisplayVn = 2;

std::string spec_path(const char* file) {
  return std::string{DECOS_SPECS_DIR} + "/" + file;
}
}  // namespace

int main() {
  std::printf("== ET/TT bridge from XML link specifications (paper Fig. 6) ==\n\n");

  // --- load the two link specifications ------------------------------------
  auto link_a = spec::load_link_spec_file(spec_path("sliding_roof_a.xml"));
  auto link_b = spec::load_link_spec_file(spec_path("roof_display_b.xml"));
  if (!link_a.ok() || !link_b.ok()) {
    std::fprintf(stderr, "failed to load link specs: %s %s\n",
                 link_a.ok() ? "" : link_a.error().to_string().c_str(),
                 link_b.ok() ? "" : link_b.error().to_string().c_str());
    return 1;
  }
  std::printf("  loaded %s (DAS '%s', %zu message(s), %zu automaton(a))\n",
              "sliding_roof_a.xml", link_a.value().das().c_str(),
              link_a.value().messages().size(), link_a.value().automata().size());
  std::printf("  loaded %s (DAS '%s')\n\n", "roof_display_b.xml", link_b.value().das().c_str());

  // --- platform --------------------------------------------------------------
  platform::ClusterConfig config;
  config.nodes = 3;  // 0: comfort, 1: display, 2: gateway host
  config.round_length = 10_ms;
  config.allocations = {
      {kComfortVn, "comfort", 32, {0, 2}},
      {kDisplayVn, "display", 32, {2}},
  };
  platform::Cluster cluster{config};

  vn::EtVirtualNetwork comfort_vn{"comfort-vn", kComfortVn};
  vn::TtVirtualNetwork display_vn{"display-vn", kDisplayVn};

  core::GatewayConfig gwc;
  gwc.default_d_acc = 500_ms;  // roof position stays meaningful for a while
  // The Fig. 6 automaton times out (stateactive -> stateerror) when the
  // roof is idle longer than tmax; the paper's error-handling hook is a
  // restart of the gateway service, which we arm here.
  gwc.restart_delay = 50_ms;
  core::VirtualGateway gateway{"roof-bridge", std::move(link_a.value()),
                               std::move(link_b.value()), gwc};
  gateway.finalize();
  core::wire_et_link(gateway, 0, comfort_vn, cluster.controller(2),
                     cluster.vn_slots(kComfortVn, 2));
  core::wire_tt_link(gateway, 1, display_vn, cluster.controller(2),
                     {{"msgroofstate", cluster.vn_slots(kDisplayVn, 2)}});
  cluster.component(2)
      .add_partition("gateway", "architecture", 0_ms, 1_ms)
      .add_job(std::make_unique<core::GatewayJob>(gateway));

  // --- comfort DAS: roof movement events -------------------------------------
  // The roof starts 40% open (the XML init), opens to 90%, then closes.
  comfort_vn.attach_node(cluster.controller(0), cluster.vn_slots(kComfortVn, 0));
  struct Movement {
    Duration at;
    int change;
  };
  const Movement movements[] = {
      {100_ms, 20}, {200_ms, 20}, {300_ms, 10},   // open to 90%
      {900_ms, -30}, {1000_ms, -40}, {1100_ms, -20},  // close fully
  };
  for (const Movement& m : movements) {
    cluster.simulator().schedule_at(Instant::origin() + m.at, [&, m] {
      auto inst = spec::make_instance(*gateway.link_a().spec().message("msgslidingroof"));
      inst.element("movementevent")->fields[0] = ta::Value{m.change};
      inst.element("movementevent")->fields[1] = ta::Value{cluster.simulator().now()};
      inst.set_send_time(cluster.simulator().now());
      comfort_vn.send(cluster.controller(0), inst);
    });
  }

  // --- display DAS: hidden-gateway consumer + visible gateway job ------------
  platform::Partition& display_partition =
      cluster.component(1).add_partition("hmi", "display", 2_ms, 2_ms);

  int last_position = -1;
  int updates = 0;
  platform::FunctionJob& hmi =
      display_partition.add_function_job("roof-display", [&](platform::FunctionJob& self, Instant now) {
        if (auto inst = self.ports()[0]->read()) {
          const int open_pct = static_cast<int>(inst->element("movementstate")->fields[0].as_int());
          if (open_pct != last_position) {
            last_position = open_pct;
            ++updates;
            std::printf("  t=%7.1fms  display: roof %3d%% open (observed t=%.1fms)\n",
                        now.as_ms(), open_pct,
                        inst->element("movementstate")->fields[1].as_instant().as_ms());
          }
        }
      });
  {
    spec::PortSpec in;
    in.message = "msgroofstate";
    in.direction = spec::DataDirection::kInput;
    in.semantics = spec::InfoSemantics::kState;
    in.period = 50_ms;
    display_vn.attach_receiver(cluster.controller(1), hmi.add_port(in));
  }

  // Visible gateway: an application-level job in the display DAS that
  // translates percent-open into the legacy HMI's percent-closed world.
  int legacy_closed_pct = -1;
  platform::FunctionJob& visible_gateway = display_partition.add_function_job(
      "legacy-adapter", [&](platform::FunctionJob& self, Instant) {
        if (auto inst = self.ports()[0]->read()) {
          legacy_closed_pct =
              100 - static_cast<int>(inst->element("movementstate")->fields[0].as_int());
        }
      });
  visible_gateway.set_execution_time(5_us);
  {
    spec::PortSpec in;
    in.message = "msgroofstate";
    in.direction = spec::DataDirection::kInput;
    in.semantics = spec::InfoSemantics::kState;
    in.period = 50_ms;
    display_vn.attach_receiver(cluster.controller(1), visible_gateway.add_port(in));
  }

  cluster.start();
  cluster.run_for(1500_ms);

  std::printf("\n  final roof position  : %d%% open (expected 0)\n", last_position);
  std::printf("  legacy HMI (visible gateway at application level): %d%% closed\n",
              legacy_closed_pct);
  std::printf("  event->state conversions performed by the hidden gateway: %llu\n",
              static_cast<unsigned long long>(gateway.stats().conversions));
  std::printf("  idle-timeout errors of the Fig.6 automaton / service restarts: %llu / %llu\n",
              static_cast<unsigned long long>(gateway.stats().automaton_errors),
              static_cast<unsigned long long>(gateway.stats().restarts));
  std::printf("  TT output emissions paced at 50ms: %llu over 1.5s\n",
              static_cast<unsigned long long>(gateway.stats().messages_constructed));
  return last_position == 0 && legacy_closed_pct == 100 ? 0 : 1;
}
