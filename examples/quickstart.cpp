// Quickstart: the smallest complete DECOS system with a virtual gateway.
//
// Three nodes share one time-triggered backbone:
//   node 0  powertrain DAS   wheel-speed sensor job, TT virtual network
//   node 1  comfort DAS      navigation job, ET (CAN-like) virtual network
//   node 2  architecture     the hidden virtual gateway
//
// The gateway selectively redirects the wheel-speed convertible element
// from the powertrain VN into the comfort VN (paper Fig. 4 pipeline:
// receive -> dissect -> repository -> construct -> emit), renaming the
// message on the way (msgwheel -> msgnav).
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
//
// Pass --trace-out FILE to dump spans/records/metrics as JSONL for the
// decotrace CLI (tools/decotrace), or --metrics-out FILE for the
// metrics snapshot alone.
#include <cstdio>
#include <fstream>
#include <string>

#include "core/gateway_job.hpp"
#include "core/virtual_gateway.hpp"
#include "core/wiring.hpp"
#include "obs/export.hpp"
#include "platform/cluster.hpp"
#include "vn/et_vn.hpp"
#include "vn/tt_vn.hpp"

using namespace decos;
using namespace decos::literals;

namespace {

constexpr tt::VnId kPowertrainVn = 1;
constexpr tt::VnId kComfortVn = 2;

/// Wheel-speed message: static identification element plus one
/// convertible element carrying the speed (in 0.01 km/h) and a timestamp.
spec::MessageSpec wheel_message(const std::string& name, int id) {
  spec::MessageSpec ms{name};
  spec::ElementSpec key;
  key.name = "name";
  key.key = true;
  key.fields.push_back(spec::FieldSpec{"id", spec::FieldType::kInt16, 0, ta::Value{id}});
  ms.add_element(std::move(key));
  spec::ElementSpec speed;
  speed.name = "wheelspeed";
  speed.convertible = true;
  speed.fields.push_back(spec::FieldSpec{"value", spec::FieldType::kInt32, 0, std::nullopt});
  speed.fields.push_back(spec::FieldSpec{"t", spec::FieldType::kTimestamp, 0, std::nullopt});
  ms.add_element(std::move(speed));
  return ms;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_out;
  std::string metrics_out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trace-out" && i + 1 < argc) trace_out = argv[++i];
    else if (arg == "--metrics-out" && i + 1 < argc) metrics_out = argv[++i];
  }

  std::printf("== DECOS virtual gateway quickstart ==\n\n");

  // --- 1. Platform: 3 nodes, 10ms TDMA round, two virtual networks ---------
  platform::ClusterConfig config;
  config.nodes = 3;
  config.allocations = {
      {kPowertrainVn, "powertrain", 32, {0}},        // node 0 sends TT
      {kComfortVn, "comfort", 32, {1, 2}},           // nodes 1 & 2 share ET slots
  };
  config.drift_ppm = {40.0, -25.0, 10.0};  // crystals are imperfect
  platform::Cluster cluster{config};
  cluster.spans().set_enabled(!trace_out.empty());

  vn::TtVirtualNetwork powertrain{"powertrain-vn", kPowertrainVn};
  powertrain.register_message(wheel_message("msgwheel", 100));
  vn::EtVirtualNetwork comfort{"comfort-vn", kComfortVn};

  // --- 2. The hidden gateway: two link specifications ----------------------
  spec::LinkSpec link_a{"powertrain"};
  link_a.add_message(wheel_message("msgwheel", 100));
  {
    spec::PortSpec in;
    in.message = "msgwheel";
    in.direction = spec::DataDirection::kInput;
    in.semantics = spec::InfoSemantics::kState;
    in.period = 10_ms;
    link_a.add_port(in);
  }
  spec::LinkSpec link_b{"comfort"};
  link_b.add_message(wheel_message("msgnav", 200));  // different name, same element
  {
    spec::PortSpec out;
    out.message = "msgnav";
    out.direction = spec::DataDirection::kOutput;
    out.semantics = spec::InfoSemantics::kState;
    out.paradigm = spec::ControlParadigm::kEventTriggered;
    out.queue_capacity = 8;
    link_b.add_port(out);
  }

  core::GatewayConfig gateway_config;
  gateway_config.default_d_acc = 50_ms;  // wheel speed stays valid 50ms
  core::VirtualGateway gateway{"wheel-share", std::move(link_a), std::move(link_b),
                               gateway_config};
  gateway.finalize();
  core::wire_tt_link(gateway, 0, powertrain, cluster.controller(2), {});
  core::wire_et_link(gateway, 1, comfort, cluster.controller(2), cluster.vn_slots(kComfortVn, 2));

  // Host the gateway in its own partition on node 2 (architecture level).
  platform::Partition& gw_partition =
      cluster.component(2).add_partition("gateway", "architecture", 0_ms, 1_ms);
  gw_partition.add_job(std::make_unique<core::GatewayJob>(gateway));

  // --- 3. Application jobs --------------------------------------------------
  // Sensor job: publishes a decelerating wheel speed every 10ms.
  platform::Partition& p0 =
      cluster.component(0).add_partition("powertrain", "powertrain", 1_ms, 1_ms);
  cluster.encapsulation().check_attach("powertrain", kPowertrainVn).check();
  platform::FunctionJob& sensor =
      p0.add_function_job("wheel-sensor", [&](platform::FunctionJob& self, Instant now) {
        auto inst = spec::make_instance(*powertrain.message_spec("msgwheel"));
        const std::int64_t speed = 5000 - static_cast<std::int64_t>(self.activations()) * 25;
        inst.element("wheelspeed")->fields[0] = ta::Value{speed};
        inst.element("wheelspeed")->fields[1] = ta::Value{now};
        inst.set_send_time(now);
        self.ports()[0]->deposit(std::move(inst), now);
      });
  {
    spec::PortSpec out;
    out.message = "msgwheel";
    out.direction = spec::DataDirection::kOutput;
    out.semantics = spec::InfoSemantics::kState;
    out.period = 10_ms;
    powertrain.attach_sender(cluster.controller(0), sensor.add_port(out),
                             cluster.vn_slots(kPowertrainVn, 0));
  }

  // Navigation job: consumes the redirected speed in the comfort DAS.
  platform::Partition& p1 = cluster.component(1).add_partition("comfort", "comfort", 2_ms, 1_ms);
  cluster.encapsulation().check_attach("comfort", kComfortVn).check();
  int shown = 0;
  platform::FunctionJob& nav =
      p1.add_function_job("navigation", [&](platform::FunctionJob& self, Instant now) {
        while (auto inst = self.ports()[0]->read()) {
          if (shown++ < 8) {
            std::printf("  t=%7.2fms  navigation sees wheel speed %5.2f km/h"
                        "  (sampled at t=%.2fms, via gateway)\n",
                        now.as_ms(),
                        static_cast<double>(inst->element("wheelspeed")->fields[0].as_int()) / 100.0,
                        inst->element("wheelspeed")->fields[1].as_instant().as_ms());
          }
        }
      });
  {
    spec::PortSpec in;
    in.message = "msgnav";
    in.direction = spec::DataDirection::kInput;
    in.semantics = spec::InfoSemantics::kEvent;
    in.paradigm = spec::ControlParadigm::kEventTriggered;
    in.queue_capacity = 16;
    comfort.attach_receiver(cluster.controller(1), nav.add_port(in));
  }

  // --- 4. Run ---------------------------------------------------------------
  cluster.start();
  cluster.run_for(200_ms);

  const auto& stats = gateway.stats();
  std::printf("\n  gateway: %llu in, %llu admitted, %llu forwarded, %llu blocked\n",
              static_cast<unsigned long long>(stats.messages_in),
              static_cast<unsigned long long>(stats.messages_admitted),
              static_cast<unsigned long long>(stats.messages_constructed),
              static_cast<unsigned long long>(stats.blocked_temporal + stats.blocked_unknown));
  std::printf("  cluster clock precision: %.1fus (drift up to 40ppm, synced)\n",
              cluster.precision().as_us());
  std::printf("  encapsulation: comfort jobs cannot touch the powertrain VN: %s\n",
              cluster.encapsulation().check_attach("comfort", kPowertrainVn).ok() ? "VIOLATED"
                                                                                  : "enforced");
  if (!trace_out.empty()) {
    std::ofstream out{trace_out};
    obs::DumpWriter writer{out};
    writer.begin_cell("quickstart");
    writer.add_spans(cluster.spans());
    writer.add_records("bus", cluster.bus().trace());
    writer.add_records("gw:wheel-share", gateway.trace());
    writer.add_metrics(cluster.metrics().snapshot());
    std::printf("  trace dump written to %s (inspect with tools/decotrace)\n", trace_out.c_str());
  }
  if (!metrics_out.empty()) {
    std::ofstream out{metrics_out};
    obs::DumpWriter writer{out};
    writer.begin_cell("quickstart");
    writer.add_metrics(cluster.metrics().snapshot());
    std::printf("  metrics snapshot written to %s\n", metrics_out.c_str());
  }

  std::printf("\nDone. See examples/sensor_sharing.cpp and examples/automotive_presafe.cpp\n"
              "for the paper's full automotive scenarios.\n");
  return 0;
}
