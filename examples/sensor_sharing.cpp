// Sensor sharing across DASes: the paper's ABS -> navigation scenario
// (Section I): "the speed sensors from the factory installed Antilock
// Braking System can be exploited to estimate the car's heading for the
// navigation system during periods of GPS unavailability". The redundant
// odometry sensors in the navigation DAS are eliminated; the virtual
// gateway exports exactly the two convertible elements the navigation
// needs (selective redirection).
//
// A small vehicle model drives in a circle. The ABS DAS publishes the
// four wheel speeds on its TT virtual network every 10ms. The navigation
// DAS normally fuses GPS fixes; between t=2s and t=4s GPS drops out and
// the navigation dead-reckons from the gateway-imported wheel speeds
// (differential odometry). We report the position error with and without
// the gateway import.
#include <cmath>
#include <cstdio>

#include "core/gateway_job.hpp"
#include "core/virtual_gateway.hpp"
#include "core/wiring.hpp"
#include "platform/cluster.hpp"
#include "vn/et_vn.hpp"
#include "vn/tt_vn.hpp"

using namespace decos;
using namespace decos::literals;

namespace {

constexpr tt::VnId kAbsVn = 1;
constexpr tt::VnId kNavVn = 2;
constexpr double kTrackWidth = 1.6;     // m, distance between wheels
constexpr double kSpeed = 15.0;         // m/s
constexpr double kYawRate = 0.25;       // rad/s (gentle circle)

/// Ground-truth vehicle used by the sensor jobs and for error scoring.
struct Vehicle {
  double x = 0.0;
  double y = 0.0;
  double heading = 0.0;

  void advance(double dt) {
    heading += kYawRate * dt;
    x += kSpeed * std::cos(heading) * dt;
    y += kSpeed * std::sin(heading) * dt;
  }
  double left_speed() const { return kSpeed - kYawRate * kTrackWidth / 2.0; }
  double right_speed() const { return kSpeed + kYawRate * kTrackWidth / 2.0; }
};

/// msgwheels: four wheel speeds in mm/s; rear axle pair is convertible
/// (that is all the odometry needs -- selective redirection in action).
spec::MessageSpec wheels_message() {
  spec::MessageSpec ms{"msgwheels"};
  spec::ElementSpec key;
  key.name = "name";
  key.key = true;
  key.fields.push_back(spec::FieldSpec{"id", spec::FieldType::kInt16, 0, ta::Value{110}});
  ms.add_element(std::move(key));
  spec::ElementSpec rear;
  rear.name = "rearwheels";
  rear.convertible = true;
  rear.fields.push_back(spec::FieldSpec{"left_mms", spec::FieldType::kInt32, 0, std::nullopt});
  rear.fields.push_back(spec::FieldSpec{"right_mms", spec::FieldType::kInt32, 0, std::nullopt});
  rear.fields.push_back(spec::FieldSpec{"t", spec::FieldType::kTimestamp, 0, std::nullopt});
  ms.add_element(std::move(rear));
  spec::ElementSpec front;  // local to the ABS DAS; the gateway drops it
  front.name = "frontwheels";
  front.fields.push_back(spec::FieldSpec{"left_mms", spec::FieldType::kInt32, 0, std::nullopt});
  front.fields.push_back(spec::FieldSpec{"right_mms", spec::FieldType::kInt32, 0, std::nullopt});
  ms.add_element(std::move(front));
  return ms;
}

spec::MessageSpec odometry_message() {
  spec::MessageSpec ms{"msgodometry"};
  spec::ElementSpec key;
  key.name = "name";
  key.key = true;
  key.fields.push_back(spec::FieldSpec{"id", spec::FieldType::kInt16, 0, ta::Value{210}});
  ms.add_element(std::move(key));
  spec::ElementSpec rear;
  rear.name = "rearwheels";
  rear.convertible = true;
  rear.fields.push_back(spec::FieldSpec{"left_mms", spec::FieldType::kInt32, 0, std::nullopt});
  rear.fields.push_back(spec::FieldSpec{"right_mms", spec::FieldType::kInt32, 0, std::nullopt});
  rear.fields.push_back(spec::FieldSpec{"t", spec::FieldType::kTimestamp, 0, std::nullopt});
  ms.add_element(std::move(rear));
  return ms;
}

/// Dead-reckoning navigation state.
struct NavState {
  double x = 0.0;
  double y = 0.0;
  double heading = 0.0;
  Instant last_sample;
  bool have_sample = false;

  void integrate(double left, double right, Instant now) {
    if (have_sample) {
      const double dt = (now - last_sample).as_seconds();
      const double v = (left + right) / 2.0;
      const double omega = (right - left) / kTrackWidth;
      heading += omega * dt;
      x += v * std::cos(heading) * dt;
      y += v * std::sin(heading) * dt;
    }
    last_sample = now;
    have_sample = true;
  }
};

}  // namespace

int main() {
  std::printf("== Sensor sharing: ABS wheel speeds -> navigation dead reckoning ==\n\n");

  platform::ClusterConfig config;
  config.nodes = 3;  // 0: ABS, 1: navigation, 2: gateway host
  config.allocations = {
      {kAbsVn, "abs", 32, {0}},
      {kNavVn, "navigation", 32, {1, 2}},
  };
  config.drift_ppm = {30.0, -20.0, 5.0};
  platform::Cluster cluster{config};

  vn::TtVirtualNetwork abs_vn{"abs-vn", kAbsVn};
  abs_vn.register_message(wheels_message());
  vn::EtVirtualNetwork nav_vn{"nav-vn", kNavVn};

  // Gateway: import the rear wheel pair into the navigation DAS.
  spec::LinkSpec link_a{"abs"};
  link_a.add_message(wheels_message());
  {
    spec::PortSpec in;
    in.message = "msgwheels";
    in.direction = spec::DataDirection::kInput;
    in.semantics = spec::InfoSemantics::kState;
    in.period = 10_ms;
    link_a.add_port(in);
  }
  spec::LinkSpec link_b{"navigation"};
  link_b.add_message(odometry_message());
  {
    spec::PortSpec out;
    out.message = "msgodometry";
    out.direction = spec::DataDirection::kOutput;
    out.semantics = spec::InfoSemantics::kState;
    out.paradigm = spec::ControlParadigm::kEventTriggered;
    out.queue_capacity = 8;
    link_b.add_port(out);
  }
  core::GatewayConfig gwc;
  gwc.default_d_acc = 40_ms;
  core::VirtualGateway gateway{"abs-export", std::move(link_a), std::move(link_b), gwc};
  gateway.finalize();
  core::wire_tt_link(gateway, 0, abs_vn, cluster.controller(2), {});
  core::wire_et_link(gateway, 1, nav_vn, cluster.controller(2), cluster.vn_slots(kNavVn, 2));
  cluster.component(2)
      .add_partition("gateway", "architecture", 0_ms, 1_ms)
      .add_job(std::make_unique<core::GatewayJob>(gateway));

  // ABS sensor job (node 0): samples the vehicle every 10ms.
  Vehicle vehicle;
  Instant last_tick;
  platform::Partition& abs_partition =
      cluster.component(0).add_partition("abs", "abs", 1_ms, 1_ms);
  platform::FunctionJob& abs_job =
      abs_partition.add_function_job("abs-sensors", [&](platform::FunctionJob& self, Instant now) {
        vehicle.advance((now - last_tick).as_seconds());
        last_tick = now;
        auto inst = spec::make_instance(*abs_vn.message_spec("msgwheels"));
        inst.element("rearwheels")->fields[0] =
            ta::Value{static_cast<std::int64_t>(vehicle.left_speed() * 1000)};
        inst.element("rearwheels")->fields[1] =
            ta::Value{static_cast<std::int64_t>(vehicle.right_speed() * 1000)};
        inst.element("rearwheels")->fields[2] = ta::Value{now};
        inst.element("frontwheels")->fields[0] = inst.element("rearwheels")->fields[0];
        inst.element("frontwheels")->fields[1] = inst.element("rearwheels")->fields[1];
        inst.set_send_time(now);
        self.ports()[0]->deposit(std::move(inst), now);
      });
  {
    spec::PortSpec out;
    out.message = "msgwheels";
    out.direction = spec::DataDirection::kOutput;
    out.semantics = spec::InfoSemantics::kState;
    out.period = 10_ms;
    abs_vn.attach_sender(cluster.controller(0), abs_job.add_port(out),
                         cluster.vn_slots(kAbsVn, 0));
  }

  // Navigation job (node 1): GPS fixes while available, odometry during
  // the outage window [2s, 4s).
  NavState nav;
  NavState nav_without_import;  // ablation: freezes during the outage
  double worst_error_with = 0.0;
  double worst_error_without = 0.0;
  platform::Partition& nav_partition =
      cluster.component(1).add_partition("nav", "navigation", 2_ms, 1_ms);
  platform::FunctionJob& nav_job =
      nav_partition.add_function_job("navigation", [&](platform::FunctionJob& self, Instant now) {
        const bool gps_available = now < Instant::origin() + 2_s || now >= Instant::origin() + 4_s;
        while (auto inst = self.ports()[0]->read()) {
          const double left =
              static_cast<double>(inst->element("rearwheels")->fields[0].as_int()) / 1000.0;
          const double right =
              static_cast<double>(inst->element("rearwheels")->fields[1].as_int()) / 1000.0;
          const Instant sampled = inst->element("rearwheels")->fields[2].as_instant();
          nav.integrate(left, right, sampled);
        }
        if (gps_available) {
          // GPS fix: snap both estimators to ground truth.
          nav.x = nav_without_import.x = vehicle.x;
          nav.y = nav_without_import.y = vehicle.y;
          nav.heading = nav_without_import.heading = vehicle.heading;
        } else {
          const double err_with = std::hypot(nav.x - vehicle.x, nav.y - vehicle.y);
          const double err_without = std::hypot(nav_without_import.x - vehicle.x,
                                                nav_without_import.y - vehicle.y);
          worst_error_with = std::max(worst_error_with, err_with);
          worst_error_without = std::max(worst_error_without, err_without);
        }
      });
  {
    spec::PortSpec in;
    in.message = "msgodometry";
    in.direction = spec::DataDirection::kInput;
    in.semantics = spec::InfoSemantics::kEvent;
    in.paradigm = spec::ControlParadigm::kEventTriggered;
    in.queue_capacity = 32;
    nav_vn.attach_receiver(cluster.controller(1), nav_job.add_port(in));
  }

  cluster.start();
  cluster.run_for(6_s);

  std::printf("  6s drive in a circle, GPS outage from t=2s to t=4s\n\n");
  std::printf("  worst position error during outage\n");
  std::printf("    with gateway-imported ABS odometry : %6.2f m\n", worst_error_with);
  std::printf("    without import (position frozen)   : %6.2f m\n", worst_error_without);
  std::printf("\n  gateway forwarded %llu wheel-speed images (%llu produced; the\n"
              "  frontwheels element never left the ABS DAS -- selective redirection)\n",
              static_cast<unsigned long long>(gateway.stats().messages_constructed),
              static_cast<unsigned long long>(gateway.stats().messages_in));
  std::printf("\n  resource comparison (paper Section I):\n");
  std::printf("    federated : navigation needs its own odometry sensors + wiring\n");
  std::printf("    integrated: 0 extra sensors; 1 gateway partition on a shared node\n");
  return worst_error_with < worst_error_without ? 0 : 1;
}
