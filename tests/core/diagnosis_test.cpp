#include "core/diagnosis.hpp"

#include <gtest/gtest.h>

#include "../helpers.hpp"
#include "fault/plan.hpp"
#include "platform/cluster.hpp"

namespace decos::core {
namespace {

using decos::testing::make_state_instance;
using decos::testing::state_message;
using namespace decos::literals;

Instant at(std::int64_t ms) { return Instant::origin() + Duration::milliseconds(ms); }

std::unique_ptr<VirtualGateway> make_gateway() {
  spec::LinkSpec link_a{"comfort"};
  link_a.add_message(state_message("msgA", "payload", 1));
  spec::PortSpec in;
  in.message = "msgA";
  in.direction = spec::DataDirection::kInput;
  in.semantics = spec::InfoSemantics::kEvent;
  in.paradigm = spec::ControlParadigm::kEventTriggered;
  in.min_interarrival = 4_ms;
  in.max_interarrival = 100_ms;
  in.queue_capacity = 16;
  link_a.add_port(in);
  spec::LinkSpec link_b{"display"};
  link_b.add_message(state_message("msgB", "payload", 2));
  spec::PortSpec out;
  out.message = "msgB";
  out.direction = spec::DataDirection::kOutput;
  out.semantics = spec::InfoSemantics::kEvent;
  out.paradigm = spec::ControlParadigm::kEventTriggered;
  out.queue_capacity = 16;
  link_b.add_port(out);
  auto gw = std::make_unique<VirtualGateway>("g", std::move(link_a), std::move(link_b));
  gw->finalize();
  return gw;
}

TEST(DiagnosisTest, AllGreenInitially) {
  platform::ClusterConfig config;
  config.nodes = 3;
  platform::Cluster cluster{config};
  auto gw = make_gateway();
  DiagnosisService diagnosis{*cluster.membership(0)};
  diagnosis.watch(*gw);
  cluster.start();
  cluster.run_for(100_ms);
  const ClusterHealth health = diagnosis.report();
  EXPECT_TRUE(health.all_green());
  EXPECT_EQ(health.summary(), "all green");
}

TEST(DiagnosisTest, FailedNodeReported) {
  platform::ClusterConfig config;
  config.nodes = 3;
  platform::Cluster cluster{config};
  DiagnosisService diagnosis{*cluster.membership(0)};
  fault::FaultPlan plan{cluster.simulator()};
  plan.crash(cluster.controller(2), at(50));
  cluster.start();
  cluster.run_for(200_ms);
  const ClusterHealth health = diagnosis.report();
  ASSERT_EQ(health.failed_nodes.size(), 1u);
  EXPECT_EQ(health.failed_nodes[0], 2u);
  EXPECT_FALSE(health.all_green());
  EXPECT_NE(health.summary().find("failed nodes: 2"), std::string::npos);
}

TEST(DiagnosisTest, MisbehavingDasReportedViaGatewayAutomata) {
  platform::ClusterConfig config;
  config.nodes = 2;
  platform::Cluster cluster{config};
  auto gw = make_gateway();
  DiagnosisService diagnosis{*cluster.membership(0)};
  diagnosis.watch(*gw);

  const spec::MessageSpec& ms = *gw->link_a().spec().message("msgA");
  gw->on_input(0, make_state_instance(ms, 1, at(0)), at(0));
  gw->on_input(0, make_state_instance(ms, 2, at(1)), at(1));  // tmin violation

  const ClusterHealth health = diagnosis.report();
  ASSERT_EQ(health.misbehaving_dases.size(), 1u);
  EXPECT_EQ(health.misbehaving_dases[0], "comfort");
  EXPECT_EQ(health.contained_messages, 1u);
  EXPECT_NE(health.summary().find("comfort"), std::string::npos);
  EXPECT_NE(health.summary().find("1 messages contained"), std::string::npos);
}

TEST(DiagnosisTest, MultipleGatewaysAggregated) {
  platform::ClusterConfig config;
  config.nodes = 2;
  platform::Cluster cluster{config};
  auto gw1 = make_gateway();
  auto gw2 = make_gateway();
  DiagnosisService diagnosis{*cluster.membership(0)};
  diagnosis.watch(*gw1);
  diagnosis.watch(*gw2);

  const spec::MessageSpec& ms = *gw1->link_a().spec().message("msgA");
  for (auto* gw : {gw1.get(), gw2.get()}) {
    gw->on_input(0, make_state_instance(ms, 1, at(0)), at(0));
    gw->on_input(0, make_state_instance(ms, 2, at(1)), at(1));
  }
  const ClusterHealth health = diagnosis.report();
  // Same DAS name through both gateways: deduplicated.
  EXPECT_EQ(health.misbehaving_dases.size(), 1u);
  EXPECT_EQ(health.contained_messages, 2u);
}

}  // namespace
}  // namespace decos::core
