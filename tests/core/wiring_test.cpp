// Wiring a gateway into concrete virtual networks (core/wiring.hpp),
// including the bidirectional case: a single virtual gateway carrying
// traffic in both directions (paper Section III: "and vice versa in case
// of a bidirectional gateway").
#include <gtest/gtest.h>

#include <memory>

#include "../helpers.hpp"
#include "core/virtual_gateway.hpp"
#include "core/wiring.hpp"
#include "platform/cluster.hpp"
#include "vn/et_vn.hpp"
#include "vn/tt_vn.hpp"

namespace decos::core {
namespace {

using decos::testing::make_state_instance;
using decos::testing::state_message;
using namespace decos::literals;

spec::PortSpec in_port(const std::string& msg, spec::InfoSemantics sem,
                       spec::ControlParadigm par, Duration period) {
  spec::PortSpec ps;
  ps.message = msg;
  ps.direction = spec::DataDirection::kInput;
  ps.semantics = sem;
  ps.paradigm = par;
  ps.period = period;
  ps.min_interarrival = 1_us;
  ps.max_interarrival = Duration::seconds(3600);
  return ps;
}

spec::PortSpec out_port(const std::string& msg, spec::InfoSemantics sem,
                        spec::ControlParadigm par, Duration period) {
  spec::PortSpec ps;
  ps.message = msg;
  ps.direction = spec::DataDirection::kOutput;
  ps.semantics = sem;
  ps.paradigm = par;
  ps.period = period;
  return ps;
}

struct WiringFixture : ::testing::Test {
  WiringFixture() {
    platform::ClusterConfig config;
    config.nodes = 3;
    config.allocations = {{1, "dasA", 32, {0, 2}}, {2, "dasB", 32, {1, 2}}};
    cluster = std::make_unique<platform::Cluster>(config);
    vn_a = std::make_unique<vn::TtVirtualNetwork>("vn-a", 1);
    vn_b = std::make_unique<vn::EtVirtualNetwork>("vn-b", 2);
  }

  std::unique_ptr<platform::Cluster> cluster;
  std::unique_ptr<vn::TtVirtualNetwork> vn_a;
  std::unique_ptr<vn::EtVirtualNetwork> vn_b;
};

TEST_F(WiringFixture, BidirectionalGatewayCarriesBothDirections) {
  // Link A: consumes msgX (from DAS A), produces msgYback (into DAS A).
  spec::LinkSpec link_a{"dasA"};
  link_a.add_message(state_message("msgX", "xdata", 1));
  link_a.add_port(in_port("msgX", spec::InfoSemantics::kState,
                          spec::ControlParadigm::kTimeTriggered, 10_ms));
  link_a.add_message(state_message("msgYback", "ydata", 2));
  link_a.add_port(out_port("msgYback", spec::InfoSemantics::kState,
                           spec::ControlParadigm::kTimeTriggered, 10_ms));
  // Link B: produces msgXfwd (into DAS B), consumes msgY (from DAS B).
  spec::LinkSpec link_b{"dasB"};
  link_b.add_message(state_message("msgXfwd", "xdata", 3));
  link_b.add_port(out_port("msgXfwd", spec::InfoSemantics::kState,
                           spec::ControlParadigm::kEventTriggered, Duration::zero()));
  link_b.add_message(state_message("msgY", "ydata", 4));
  link_b.add_port(in_port("msgY", spec::InfoSemantics::kState,
                          spec::ControlParadigm::kEventTriggered, Duration::zero()));

  VirtualGateway gateway{"bidi", std::move(link_a), std::move(link_b)};
  gateway.finalize();
  wire_tt_link(gateway, 0, *vn_a, cluster->controller(2),
               {{"msgYback", cluster->vn_slots(1, 2)}});
  wire_et_link(gateway, 1, *vn_b, cluster->controller(2), cluster->vn_slots(2, 2));

  // DAS A producer (node 0) and consumer port (node 0).
  vn::Port producer_a{out_port("msgX", spec::InfoSemantics::kState,
                               spec::ControlParadigm::kTimeTriggered, 10_ms)};
  vn_a->attach_sender(cluster->controller(0), producer_a, cluster->vn_slots(1, 0));
  vn::Port consumer_a{in_port("msgYback", spec::InfoSemantics::kState,
                              spec::ControlParadigm::kTimeTriggered, 10_ms)};
  vn_a->attach_receiver(cluster->controller(0), consumer_a);

  // DAS B producer (node 1) and consumer port (node 1).
  vn::Port consumer_b{in_port("msgXfwd", spec::InfoSemantics::kEvent,
                              spec::ControlParadigm::kEventTriggered, Duration::zero())};
  vn_b->attach_receiver(cluster->controller(1), consumer_b);
  vn_b->attach_node(cluster->controller(1), cluster->vn_slots(2, 1));

  // Drive: A publishes 11, B publishes 22 (via ET send), gateway crosses both.
  producer_a.deposit(make_state_instance(*vn_a->message_spec("msgX"), 11, Instant::origin()),
                     Instant::origin());
  cluster->simulator().schedule_at(Instant::origin() + 5_ms, [&] {
    vn_b->send(cluster->controller(1),
               make_state_instance(*vn_b->message_spec("msgY"), 22, cluster->simulator().now()));
  });
  // Dispatch the gateway from a partition.
  cluster->component(2)
      .add_partition("gw", "architecture", 0_ms, 1_ms)
      .add_function_job("gwjob", [&gateway](platform::FunctionJob&, Instant now) {
        gateway.dispatch(now);
      });
  cluster->start();
  cluster->run_for(100_ms);

  ASSERT_TRUE(consumer_b.has_data());
  EXPECT_EQ(consumer_b.read()->element("xdata")->fields[0].as_int(), 11);
  ASSERT_TRUE(consumer_a.has_data());
  EXPECT_EQ(consumer_a.read()->element("ydata")->fields[0].as_int(), 22);
}

TEST_F(WiringFixture, WireTtWithoutSlotsForOutputThrows) {
  spec::LinkSpec link_a{"dasA"};
  link_a.add_message(state_message("msgOut", "d", 1));
  link_a.add_port(out_port("msgOut", spec::InfoSemantics::kState,
                           spec::ControlParadigm::kTimeTriggered, 10_ms));
  spec::LinkSpec link_b{"dasB"};
  link_b.add_message(state_message("msgIn", "d", 2));
  link_b.add_port(in_port("msgIn", spec::InfoSemantics::kState,
                          spec::ControlParadigm::kEventTriggered, Duration::zero()));
  VirtualGateway gateway{"g", std::move(link_a), std::move(link_b)};
  EXPECT_THROW(wire_tt_link(gateway, 0, *vn_a, cluster->controller(2), {}), SpecError);
}

TEST_F(WiringFixture, WiringRegistersMessagesInVnNamespace) {
  spec::LinkSpec link_a{"dasA"};
  link_a.add_message(state_message("msgX", "d", 1));
  link_a.add_port(in_port("msgX", spec::InfoSemantics::kState,
                          spec::ControlParadigm::kTimeTriggered, 10_ms));
  spec::LinkSpec link_b{"dasB"};
  link_b.add_message(state_message("msgXfwd", "d", 2));
  link_b.add_port(out_port("msgXfwd", spec::InfoSemantics::kState,
                           spec::ControlParadigm::kEventTriggered, Duration::zero()));
  VirtualGateway gateway{"g", std::move(link_a), std::move(link_b)};
  wire_tt_link(gateway, 0, *vn_a, cluster->controller(2), {});
  wire_et_link(gateway, 1, *vn_b, cluster->controller(2), cluster->vn_slots(2, 2));
  EXPECT_NE(vn_a->message_spec("msgX"), nullptr);
  EXPECT_NE(vn_b->message_spec("msgXfwd"), nullptr);
}

TEST_F(WiringFixture, WiringImplicitlyFinalizes) {
  spec::LinkSpec link_a{"dasA"};
  link_a.add_message(state_message("msgX", "d", 1));
  link_a.add_port(in_port("msgX", spec::InfoSemantics::kState,
                          spec::ControlParadigm::kTimeTriggered, 10_ms));
  spec::LinkSpec link_b{"dasB"};
  link_b.add_message(state_message("msgXfwd", "d", 2));
  link_b.add_port(out_port("msgXfwd", spec::InfoSemantics::kState,
                           spec::ControlParadigm::kEventTriggered, Duration::zero()));
  VirtualGateway gateway{"g", std::move(link_a), std::move(link_b)};
  EXPECT_FALSE(gateway.finalized());
  wire_tt_link(gateway, 0, *vn_a, cluster->controller(2), {});
  EXPECT_TRUE(gateway.finalized());
}

}  // namespace
}  // namespace decos::core
