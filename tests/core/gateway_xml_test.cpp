// Whole-gateway XML configuration: one artifact describes both links,
// renames, repository meta data and tuning; parsing yields a finalized,
// ready-to-wire gateway.
#include "core/gateway_xml.hpp"

#include <gtest/gtest.h>

#include <fstream>

#include "../helpers.hpp"

namespace decos::core {
namespace {

using namespace decos::literals;

Instant at(std::int64_t ms) { return Instant::origin() + Duration::milliseconds(ms); }

constexpr const char* kGatewaySpec = R"(<?xml version="1.0"?>
<gatewayspec name="wheel-share">
  <config dispatch="2ms" restart="50ms" dacc="40ms" queue="8"/>
  <linkspec>
    <das>powertrain</das>
    <message name="msgwheel">
      <element name="name" key="yes"><field name="id">
        <type length="16">integer</type><value>100</value></field></element>
      <element name="wheelspeed" conv="yes">
        <field name="value"><type length="32">integer</type></field>
        <field name="t"><type>timestamp</type></field>
      </element>
    </message>
    <port message="msgwheel" direction="input" semantics="state" paradigm="tt"
          period="10ms" tmin="1us" tmax="3600s"/>
  </linkspec>
  <linkspec>
    <das>comfort</das>
    <message name="msgnav">
      <element name="name" key="yes"><field name="id">
        <type length="16">integer</type><value>200</value></field></element>
      <element name="speedinfo" conv="yes">
        <field name="value"><type length="32">integer</type></field>
        <field name="t"><type>timestamp</type></field>
      </element>
    </message>
    <port message="msgnav" direction="output" semantics="state" paradigm="et" queue="8"/>
  </linkspec>
  <rename side="1" from="speedinfo" to="wheelspeed"/>
  <element name="wheelspeed" semantics="state" dacc="25ms"/>
</gatewayspec>
)";

TEST(GatewayXmlTest, ParsesAndForwardsEndToEnd) {
  auto gateway = parse_gateway_xml(kGatewaySpec);
  ASSERT_TRUE(gateway.ok()) << gateway.error().to_string();
  VirtualGateway& gw = *gateway.value();

  EXPECT_EQ(gw.name(), "wheel-share");
  EXPECT_TRUE(gw.finalized());
  EXPECT_EQ(gw.config().dispatch_period, 2_ms);
  EXPECT_EQ(gw.config().restart_delay, 50_ms);
  EXPECT_EQ(gw.link_a().spec().das(), "powertrain");
  EXPECT_EQ(gw.link_b().spec().das(), "comfort");
  // The rename funnels both sides onto one repository element.
  EXPECT_TRUE(gw.repository().is_declared("wheelspeed"));
  EXPECT_FALSE(gw.repository().is_declared("speedinfo"));
  // The per-element override beats the config default.
  EXPECT_EQ(gw.repository().decl_of("wheelspeed").d_acc, 25_ms);

  // Drive one value through.
  const spec::MessageSpec& ms = *gw.link_a().spec().message("msgwheel");
  spec::MessageInstance inst = spec::make_instance(ms);
  inst.element("wheelspeed")->fields[0] = ta::Value{314};
  gw.on_input(0, inst, at(0));
  ASSERT_TRUE(gw.link_b().port("msgnav")->has_data());
  EXPECT_EQ(gw.link_b().port("msgnav")->read()->element("speedinfo")->fields[0].as_int(), 314);
}

TEST(GatewayXmlTest, StatsSummaryMentionsCounters) {
  auto gateway = parse_gateway_xml(kGatewaySpec);
  ASSERT_TRUE(gateway.ok());
  const std::string summary = gateway.value()->stats().summary();
  EXPECT_NE(summary.find("in=0"), std::string::npos);
  EXPECT_NE(summary.find("forwarded=0"), std::string::npos);
  EXPECT_NE(summary.find("restarts=0"), std::string::npos);
}

TEST(GatewayXmlTest, RejectsWrongRoot) {
  EXPECT_FALSE(parse_gateway_xml("<linkspec/>").ok());
}

TEST(GatewayXmlTest, RejectsWrongLinkCount) {
  EXPECT_FALSE(parse_gateway_xml("<gatewayspec><linkspec><das>x</das></linkspec></gatewayspec>").ok());
}

TEST(GatewayXmlTest, RejectsBadRename) {
  const char* text = R"(<gatewayspec>
    <linkspec><das>a</das></linkspec>
    <linkspec><das>b</das></linkspec>
    <rename side="7" from="x" to="y"/>
  </gatewayspec>)";
  EXPECT_FALSE(parse_gateway_xml(text).ok());
  const char* text2 = R"(<gatewayspec>
    <linkspec><das>a</das></linkspec>
    <linkspec><das>b</das></linkspec>
    <rename side="0" from="" to="y"/>
  </gatewayspec>)";
  EXPECT_FALSE(parse_gateway_xml(text2).ok());
}

TEST(GatewayXmlTest, RejectsBadElementSemantics) {
  const char* text = R"(<gatewayspec>
    <linkspec><das>a</das></linkspec>
    <linkspec><das>b</das></linkspec>
    <element name="x" semantics="quantum"/>
  </gatewayspec>)";
  EXPECT_FALSE(parse_gateway_xml(text).ok());
}

TEST(GatewayXmlTest, RejectsBadDuration) {
  const char* text = R"(<gatewayspec>
    <config dispatch="soon"/>
    <linkspec><das>a</das></linkspec>
    <linkspec><das>b</das></linkspec>
  </gatewayspec>)";
  EXPECT_FALSE(parse_gateway_xml(text).ok());
}

TEST(GatewayXmlTest, LoadFromFile) {
  const std::string path = ::testing::TempDir() + "/gatewayspec.xml";
  {
    std::ofstream out{path};
    out << kGatewaySpec;
  }
  auto gateway = load_gateway_file(path);
  ASSERT_TRUE(gateway.ok());
  EXPECT_EQ(gateway.value()->name(), "wheel-share");
  std::remove(path.c_str());
  EXPECT_FALSE(load_gateway_file("/nonexistent/path.xml").ok());
}

}  // namespace
}  // namespace decos::core
