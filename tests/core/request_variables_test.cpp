// Request variables b_req and the requ(m) guard function (paper Section
// IV-A): "By setting the request variable, the gateway side sending
// messages to an event-triggered virtual network can request convertible
// element instances from the other virtual network. The gateway side
// receiving messages from an event-triggered virtual network can
// initiate receptions conditionally, based on the value of the request
// variable."
#include <gtest/gtest.h>

#include "../helpers.hpp"
#include "core/virtual_gateway.hpp"

namespace decos::core {
namespace {

using decos::testing::make_state_instance;
using decos::testing::state_message;
using namespace decos::literals;

Instant at(std::int64_t ms) { return Instant::origin() + Duration::milliseconds(ms); }

spec::LinkSpec pull_input_link() {
  spec::LinkSpec ls{"dasA"};
  ls.add_message(state_message("msgA", "data", 1));
  spec::PortSpec in;
  in.message = "msgA";
  in.direction = spec::DataDirection::kInput;
  in.semantics = spec::InfoSemantics::kEvent;
  in.paradigm = spec::ControlParadigm::kEventTriggered;
  in.interaction = spec::Interaction::kPull;
  in.queue_capacity = 16;
  ls.add_port(in);
  return ls;
}

spec::LinkSpec et_output_link() {
  spec::LinkSpec ls{"dasB"};
  ls.add_message(state_message("msgB", "data", 2));
  spec::PortSpec out;
  out.message = "msgB";
  out.direction = spec::DataDirection::kOutput;
  out.semantics = spec::InfoSemantics::kEvent;
  out.paradigm = spec::ControlParadigm::kEventTriggered;
  out.queue_capacity = 16;
  ls.add_port(out);
  return ls;
}

TEST(RequestVariablesTest, PullOnlyOnRequestGatesTheDrain) {
  GatewayConfig config;
  config.pull_only_on_request = true;
  VirtualGateway gw{"g", pull_input_link(), et_output_link(), config};
  gw.finalize();
  const spec::MessageSpec& ms = *gw.link_a().spec().message("msgA");

  // Instances sit in the pull port; nothing is requested yet.
  gw.link_a().port("msgA")->deposit(make_state_instance(ms, 1, at(0)), at(0));
  gw.dispatch(at(1));
  EXPECT_EQ(gw.stats().messages_in, 0u);

  // The ET output side cannot construct msgB -> it sets b_req for the
  // missing element; that happened during the dispatch above.
  EXPECT_TRUE(gw.repository().requested("data"));

  // The next dispatch drains the pull port because the element is wanted;
  // the store clears b_req, the instance is forwarded, and the (still
  // hungry) event-triggered output immediately re-arms the request for
  // the next instance -- the paper's standing-pull pattern.
  gw.dispatch(at(2));
  EXPECT_EQ(gw.stats().messages_in, 1u);
  EXPECT_EQ(gw.stats().messages_constructed, 1u);
  EXPECT_TRUE(gw.repository().requested("data"));
}

TEST(RequestVariablesTest, WithoutTheFlagPullPortsDrainUnconditionally) {
  VirtualGateway gw{"g", pull_input_link(), et_output_link()};
  gw.finalize();
  const spec::MessageSpec& ms = *gw.link_a().spec().message("msgA");
  gw.link_a().port("msgA")->deposit(make_state_instance(ms, 1, at(0)), at(0));
  gw.dispatch(at(1));
  EXPECT_EQ(gw.stats().messages_in, 1u);
}

TEST(RequestVariablesTest, RequFunctionVisibleInSendGuards) {
  // A hand-written send automaton that only emits msgB when it has been
  // requested -- the paper's conditional-interaction pattern.
  spec::LinkSpec link_a = pull_input_link();
  spec::LinkSpec link_b = et_output_link();
  ta::AutomatonSpec automaton{"conditional_send"};
  automaton.add_location("run");
  ta::Edge edge;
  edge.source = "run";
  edge.target = "run";
  edge.action = ta::ActionKind::kSend;
  edge.message = "msgB";
  edge.guard = ta::parse_expression("requ(\"msgB\")").value();
  automaton.add_edge(std::move(edge));
  link_b.add_automaton(std::move(automaton));

  VirtualGateway gw{"g", std::move(link_a), std::move(link_b)};
  gw.finalize();
  const spec::MessageSpec& ms = *gw.link_a().spec().message("msgA");

  // Element available but not requested: the guard blocks the emission.
  gw.on_input(0, make_state_instance(ms, 5, at(0)), at(0));
  gw.dispatch(at(1));
  EXPECT_EQ(gw.stats().messages_constructed, 0u);

  // Once a consumer flags the request, the send edge becomes enabled.
  gw.repository().set_request("data");
  gw.dispatch(at(2));
  EXPECT_EQ(gw.stats().messages_constructed, 1u);
}

TEST(RequestVariablesTest, HorizonFunctionVisibleInSendGuards) {
  // Emit only while the outgoing image still has at least 10ms of
  // temporal accuracy left (Eq. (2) used as an m! guard).
  spec::LinkSpec link_a{"dasA"};
  link_a.add_message(state_message("msgA", "data", 1));
  spec::PortSpec in;
  in.message = "msgA";
  in.direction = spec::DataDirection::kInput;
  in.semantics = spec::InfoSemantics::kState;
  in.period = 10_ms;
  in.min_interarrival = 1_us;
  in.max_interarrival = Duration::seconds(3600);
  link_a.add_port(in);

  // TT output whose temporal part is a hand-written automaton: emit only
  // while the outgoing image has >= 10ms of accuracy left.
  spec::LinkSpec link_b{"dasB"};
  link_b.add_message(state_message("msgB", "data", 2));
  spec::PortSpec out;
  out.message = "msgB";
  out.direction = spec::DataDirection::kOutput;
  out.semantics = spec::InfoSemantics::kState;
  out.paradigm = spec::ControlParadigm::kTimeTriggered;
  out.period = 25_ms;
  link_b.add_port(out);
  ta::AutomatonSpec automaton{"fresh_send"};
  automaton.add_location("run");
  ta::Edge edge;
  edge.source = "run";
  edge.target = "run";
  edge.action = ta::ActionKind::kSend;
  edge.message = "msgB";
  edge.guard = ta::parse_expression("horizon(\"msgB\") >= 10ms").value();
  automaton.add_edge(std::move(edge));
  link_b.add_automaton(std::move(automaton));

  GatewayConfig config;
  config.default_d_acc = 30_ms;
  VirtualGateway gw{"g", std::move(link_a), std::move(link_b), config};
  gw.set_element_config("data", spec::InfoSemantics::kState, 30_ms);
  gw.finalize();
  const spec::MessageSpec& ms = *gw.link_a().spec().message("msgA");

  // First image: at the dispatch instant the remaining horizon
  // (30ms - 25ms = 5ms) is below the 10ms guard -- blocked, although the
  // image is still temporally accurate.
  gw.on_input(0, make_state_instance(ms, 5, at(0)), at(0));
  gw.dispatch(at(25));
  EXPECT_EQ(gw.stats().messages_constructed, 0u);
  // A fresh image resets the horizon; the next dispatch emits.
  gw.on_input(0, make_state_instance(ms, 6, at(30)), at(30));
  gw.dispatch(at(35));
  EXPECT_EQ(gw.stats().messages_constructed, 1u);
}

}  // namespace
}  // namespace decos::core
