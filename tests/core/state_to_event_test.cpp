// The reverse conversion direction (paper Section IV-B: "transform
// convertible elements with event semantics into convertible elements
// with state semantics and vice versa"): a state input is turned into an
// event stream -- each fresh state image yields one event instance,
// queued in the repository and consumed exactly once by the other side.
#include <gtest/gtest.h>

#include "../helpers.hpp"
#include "core/virtual_gateway.hpp"

namespace decos::core {
namespace {

using decos::testing::make_state_instance;
using decos::testing::state_message;
using namespace decos::literals;

Instant at(std::int64_t ms) { return Instant::origin() + Duration::milliseconds(ms); }

/// Link A: state input "position" plus a transfer rule deriving the
/// event element "positionevent" (a snapshot per update).
spec::LinkSpec state_side() {
  spec::LinkSpec ls{"dasA"};
  ls.add_message(state_message("msgPos", "position", 1));
  spec::PortSpec in;
  in.message = "msgPos";
  in.direction = spec::DataDirection::kInput;
  in.semantics = spec::InfoSemantics::kState;
  in.period = 10_ms;
  in.min_interarrival = 1_us;
  in.max_interarrival = Duration::seconds(3600);
  ls.add_port(in);

  spec::TransferRule rule;
  rule.target = "positionevent";
  rule.source = "position";
  spec::TransferFieldRule snapshot;
  snapshot.name = "snapshot";
  snapshot.init = ta::Value{0};
  snapshot.semantics = "event";
  snapshot.update = ta::parse_expression("value").value();
  rule.fields.push_back(std::move(snapshot));
  spec::TransferFieldRule seen_at;
  seen_at.name = "seen_at";
  seen_at.init = ta::Value{0};
  seen_at.semantics = "event";
  seen_at.update = ta::parse_expression("t").value();
  rule.fields.push_back(std::move(seen_at));
  ls.add_transfer_rule(std::move(rule));
  return ls;
}

/// Link B: event output carrying the derived element.
spec::LinkSpec event_side() {
  spec::LinkSpec ls{"dasB"};
  spec::MessageSpec ms{"msgPosEvent"};
  spec::ElementSpec key;
  key.name = "name";
  key.key = true;
  key.fields.push_back(spec::FieldSpec{"id", spec::FieldType::kInt16, 0, ta::Value{2}});
  ms.add_element(std::move(key));
  spec::ElementSpec ev;
  ev.name = "positionevent";
  ev.convertible = true;
  ev.fields.push_back(spec::FieldSpec{"snapshot", spec::FieldType::kInt32, 0, std::nullopt});
  ev.fields.push_back(spec::FieldSpec{"seen_at", spec::FieldType::kTimestamp, 0, std::nullopt});
  ms.add_element(std::move(ev));
  ls.add_message(std::move(ms));
  spec::PortSpec out;
  out.message = "msgPosEvent";
  out.direction = spec::DataDirection::kOutput;
  out.semantics = spec::InfoSemantics::kEvent;
  out.paradigm = spec::ControlParadigm::kEventTriggered;
  out.queue_capacity = 32;
  ls.add_port(out);
  return ls;
}

TEST(StateToEventTest, EachStateUpdateYieldsExactlyOneEvent) {
  VirtualGateway gw{"s2e", state_side(), event_side()};
  gw.finalize();
  EXPECT_EQ(gw.repository().decl_of("positionevent").semantics, spec::InfoSemantics::kEvent);

  std::vector<std::int64_t> snapshots;
  gw.link_b().set_emitter("msgPosEvent", [&](const spec::MessageInstance& inst) {
    snapshots.push_back(inst.element("positionevent")->fields[0].as_int());
  });

  const spec::MessageSpec& ms = *gw.link_a().spec().message("msgPos");
  for (int i = 0; i < 5; ++i)
    gw.on_input(0, make_state_instance(ms, 100 + i, at(i * 10)), at(i * 10));

  // One event per state update, in order, exactly once.
  EXPECT_EQ(snapshots, (std::vector<std::int64_t>{100, 101, 102, 103, 104}));
  EXPECT_EQ(gw.stats().conversions, 5u);
  EXPECT_EQ(gw.repository().queue_depth("positionevent"), 0u);
}

TEST(StateToEventTest, EventTimestampCarriesSourceField) {
  VirtualGateway gw{"s2e", state_side(), event_side()};
  gw.finalize();
  std::vector<Instant> seen;
  gw.link_b().set_emitter("msgPosEvent", [&](const spec::MessageInstance& inst) {
    seen.push_back(inst.element("positionevent")->fields[1].as_instant());
  });
  const spec::MessageSpec& ms = *gw.link_a().spec().message("msgPos");
  gw.on_input(0, make_state_instance(ms, 1, at(7)), at(7));
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], at(7));
}

TEST(StateToEventTest, SlowerConsumerBuffersInRepositoryQueue) {
  // TT output at 50ms vs state updates every 10ms: events accumulate in
  // the repository queue and drain one per output period (exactly once).
  spec::LinkSpec link_b{"dasB"};
  spec::MessageSpec ms_out{"msgPosEvent"};
  spec::ElementSpec key;
  key.name = "name";
  key.key = true;
  key.fields.push_back(spec::FieldSpec{"id", spec::FieldType::kInt16, 0, ta::Value{2}});
  ms_out.add_element(std::move(key));
  spec::ElementSpec ev;
  ev.name = "positionevent";
  ev.convertible = true;
  ev.fields.push_back(spec::FieldSpec{"snapshot", spec::FieldType::kInt32, 0, std::nullopt});
  ev.fields.push_back(spec::FieldSpec{"seen_at", spec::FieldType::kTimestamp, 0, std::nullopt});
  ms_out.add_element(std::move(ev));
  link_b.add_message(std::move(ms_out));
  spec::PortSpec out;
  out.message = "msgPosEvent";
  out.direction = spec::DataDirection::kOutput;
  out.semantics = spec::InfoSemantics::kEvent;
  out.paradigm = spec::ControlParadigm::kTimeTriggered;
  out.period = 50_ms;
  out.queue_capacity = 32;
  link_b.add_port(out);

  GatewayConfig config;
  config.default_queue_capacity = 32;
  VirtualGateway gw{"s2e", state_side(), std::move(link_b), config};
  gw.finalize();
  std::vector<std::int64_t> snapshots;
  gw.link_b().set_emitter("msgPosEvent", [&](const spec::MessageInstance& inst) {
    snapshots.push_back(inst.element("positionevent")->fields[0].as_int());
  });

  const spec::MessageSpec& ms = *gw.link_a().spec().message("msgPos");
  for (int i = 0; i < 10; ++i)
    gw.on_input(0, make_state_instance(ms, i, at(i * 10)), at(i * 10));
  // Drive dispatches for 600ms: 10 events drain at >= 50ms spacing.
  for (int ms_tick = 0; ms_tick <= 600; ms_tick += 10) gw.dispatch(at(ms_tick));

  EXPECT_EQ(snapshots.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(snapshots[static_cast<std::size_t>(i)], i);
}

}  // namespace
}  // namespace decos::core
