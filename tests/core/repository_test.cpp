#include "core/repository.hpp"

#include <gtest/gtest.h>

namespace decos::core {
namespace {

using namespace decos::literals;

Instant at(std::int64_t ms) { return Instant::origin() + Duration::milliseconds(ms); }

ElementInstance instance(int v) {
  ElementInstance e;
  e.set_field("value", ta::Value{v});
  return e;
}

ElementDecl state_decl(const std::string& name, Duration d_acc = 50_ms) {
  return ElementDecl{name, spec::InfoSemantics::kState, d_acc, 16};
}

ElementDecl event_decl(const std::string& name, std::size_t capacity = 4) {
  return ElementDecl{name, spec::InfoSemantics::kEvent, 50_ms, capacity};
}

TEST(RepositoryTest, DeclareAndQuery) {
  Repository repo;
  repo.declare(state_decl("speed"));
  EXPECT_TRUE(repo.is_declared("speed"));
  EXPECT_FALSE(repo.is_declared("ghost"));
  EXPECT_EQ(repo.decl_of("speed").semantics, spec::InfoSemantics::kState);
  EXPECT_EQ(repo.element_count(), 1u);
  EXPECT_THROW(repo.decl_of("ghost"), SpecError);
}

TEST(RepositoryTest, RedeclarationConsistentOkConflictingThrows) {
  Repository repo;
  repo.declare(state_decl("speed"));
  EXPECT_NO_THROW(repo.declare(state_decl("speed")));
  EXPECT_THROW(repo.declare(event_decl("speed")), SpecError);
}

TEST(RepositoryTest, StateUpdateInPlace) {
  Repository repo;
  repo.declare(state_decl("speed"));
  repo.store("speed", instance(1), at(0));
  repo.store("speed", instance(2), at(1));
  const ElementInstance* current = repo.peek("speed");
  ASSERT_NE(current, nullptr);
  EXPECT_EQ(current->field("value")->as_int(), 2);
  EXPECT_EQ(current->observed_at, at(1));
  EXPECT_EQ(repo.stores(), 2u);
}

TEST(RepositoryTest, TemporalAccuracyEq1) {
  Repository repo;
  repo.declare(state_decl("speed", 50_ms));
  EXPECT_FALSE(repo.temporally_accurate("speed", at(0)));  // nothing stored
  repo.store("speed", instance(1), at(0));
  EXPECT_TRUE(repo.temporally_accurate("speed", at(0)));
  EXPECT_TRUE(repo.temporally_accurate("speed", at(49)));
  // Eq. (1) boundary: t_now == t_update + d_acc is no longer accurate.
  EXPECT_FALSE(repo.temporally_accurate("speed", at(50)));
  EXPECT_FALSE(repo.temporally_accurate("speed", at(51)));
}

TEST(RepositoryTest, AvailabilityStateVsEvent) {
  Repository repo;
  repo.declare(state_decl("s", 10_ms));
  repo.declare(event_decl("e"));
  EXPECT_FALSE(repo.available("s", at(0)));
  EXPECT_FALSE(repo.available("e", at(0)));
  repo.store("s", instance(1), at(0));
  repo.store("e", instance(1), at(0));
  EXPECT_TRUE(repo.available("s", at(5)));
  EXPECT_FALSE(repo.available("s", at(20)));  // stale
  EXPECT_TRUE(repo.available("e", at(20)));   // events never go stale
}

TEST(RepositoryTest, StateFetchNonConsumingRespectsAccuracy) {
  Repository repo;
  repo.declare(state_decl("s", 10_ms));
  repo.store("s", instance(7), at(0));
  EXPECT_TRUE(repo.fetch("s", at(5)).has_value());
  EXPECT_TRUE(repo.fetch("s", at(5)).has_value());  // non-consuming
  EXPECT_FALSE(repo.fetch("s", at(15)).has_value());  // stale
  EXPECT_EQ(repo.stale_fetches_refused(), 1u);
  // The ablation path forwards regardless of staleness.
  EXPECT_TRUE(repo.fetch("s", at(15), /*ignore_accuracy=*/true).has_value());
}

TEST(RepositoryTest, EventFetchExactlyOnce) {
  Repository repo;
  repo.declare(event_decl("e"));
  repo.store("e", instance(1), at(0));
  repo.store("e", instance(2), at(1));
  EXPECT_EQ(repo.queue_depth("e"), 2u);
  EXPECT_EQ(repo.fetch("e", at(2))->field("value")->as_int(), 1);  // FIFO
  EXPECT_EQ(repo.fetch("e", at(2))->field("value")->as_int(), 2);
  EXPECT_FALSE(repo.fetch("e", at(2)).has_value());
  EXPECT_EQ(repo.queue_depth("e"), 0u);
}

TEST(RepositoryTest, EventQueueOverflowDropsNewest) {
  Repository repo;
  repo.declare(event_decl("e", 2));
  EXPECT_TRUE(repo.store("e", instance(1), at(0)));
  EXPECT_TRUE(repo.store("e", instance(2), at(0)));
  EXPECT_FALSE(repo.store("e", instance(3), at(0)));
  EXPECT_EQ(repo.overflows(), 1u);
  EXPECT_EQ(repo.fetch("e", at(1))->field("value")->as_int(), 1);
}

TEST(RepositoryTest, HorizonEq2) {
  Repository repo;
  repo.declare(state_decl("a", 50_ms));
  repo.declare(state_decl("b", 20_ms));
  repo.declare(event_decl("e"));
  repo.store("a", instance(1), at(0));
  repo.store("b", instance(1), at(5));

  const std::string all[] = {"a", "b", "e"};
  // horizon = min(0+50-10, 5+20-10) = min(40, 15) = 15ms.
  EXPECT_EQ(repo.horizon(all, at(10)), 15_ms);
  // Event elements do not constrain the horizon.
  const std::string only_event[] = {"e"};
  EXPECT_EQ(repo.horizon(only_event, at(10)), Duration::max());
  // Past expiry the horizon goes negative.
  EXPECT_LT(repo.horizon(all, at(100)), 0_ns);
}

TEST(RepositoryTest, HorizonOfUnstoredStateIsVeryNegative) {
  Repository repo;
  repo.declare(state_decl("a", 50_ms));
  const std::string all[] = {"a"};
  EXPECT_LT(repo.horizon(all, at(0)), -1_s);
}

TEST(RepositoryTest, RequestVariables) {
  Repository repo;
  repo.declare(event_decl("e"));
  EXPECT_FALSE(repo.requested("e"));
  repo.set_request("e");
  EXPECT_TRUE(repo.requested("e"));
  // Storing satisfies (and clears) the request.
  repo.store("e", instance(1), at(0));
  EXPECT_FALSE(repo.requested("e"));
}

TEST(RepositoryTest, UnknownElementThrows) {
  Repository repo;
  EXPECT_THROW(repo.store("ghost", instance(1), at(0)), SpecError);
  EXPECT_THROW(repo.available("ghost", at(0)), SpecError);
  EXPECT_THROW(repo.fetch("ghost", at(0)), SpecError);
  EXPECT_THROW(repo.set_request("ghost"), SpecError);
}

TEST(RepositoryTest, ElementNamesListsAll) {
  Repository repo;
  repo.declare(state_decl("a"));
  repo.declare(event_decl("b"));
  auto names = repo.element_names();
  std::sort(names.begin(), names.end());
  EXPECT_EQ(names, (std::vector<std::string>{"a", "b"}));
}

TEST(ElementInstanceTest, FieldAccessAndUpdate) {
  ElementInstance e;
  e.set_field("x", ta::Value{1});
  e.set_field("x", ta::Value{2});  // overwrite, no duplicate
  e.set_field("y", ta::Value{3});
  EXPECT_EQ(e.fields.size(), 2u);
  EXPECT_EQ(e.field("x")->as_int(), 2);
  EXPECT_EQ(e.field("none"), nullptr);
}

}  // namespace
}  // namespace decos::core
