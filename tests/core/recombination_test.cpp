// Dissection and recombination (paper Section IV-A): "whenever the
// virtual gateway is redirecting information from virtual network A to
// virtual network B, the virtual gateway must first dissect the messages
// received from virtual network A into convertible elements and
// recombine these convertible elements into messages for virtual network
// B. The virtual gateway buffers convertible elements, because ... the
// necessary convertible elements for constructing a particular message
// might arrive at different points in time."
//
// Here the outgoing fused message needs TWO elements carried by two
// *different* incoming messages; the gateway must hold back until both
// are available and temporally accurate.
#include <gtest/gtest.h>

#include "../helpers.hpp"
#include "core/virtual_gateway.hpp"

namespace decos::core {
namespace {

using decos::testing::make_state_instance;
using decos::testing::state_message;
using namespace decos::literals;

Instant at(std::int64_t ms) { return Instant::origin() + Duration::milliseconds(ms); }

spec::LinkSpec two_source_link() {
  spec::LinkSpec ls{"dasA"};
  ls.add_message(state_message("msgSpeed", "speed", 1));
  ls.add_message(state_message("msgYaw", "yaw", 2));
  for (const char* msg : {"msgSpeed", "msgYaw"}) {
    spec::PortSpec in;
    in.message = msg;
    in.direction = spec::DataDirection::kInput;
    in.semantics = spec::InfoSemantics::kState;
    in.period = 10_ms;
    in.min_interarrival = 1_us;
    in.max_interarrival = Duration::seconds(3600);
    ls.add_port(in);
  }
  return ls;
}

spec::LinkSpec fused_link() {
  spec::LinkSpec ls{"dasB"};
  spec::MessageSpec ms{"msgMotion"};
  spec::ElementSpec key;
  key.name = "name";
  key.key = true;
  key.fields.push_back(spec::FieldSpec{"id", spec::FieldType::kInt16, 0, ta::Value{9}});
  ms.add_element(std::move(key));
  for (const char* element : {"speed", "yaw"}) {
    spec::ElementSpec es;
    es.name = element;
    es.convertible = true;
    es.fields.push_back(spec::FieldSpec{"value", spec::FieldType::kInt32, 0, std::nullopt});
    es.fields.push_back(spec::FieldSpec{"t", spec::FieldType::kTimestamp, 0, std::nullopt});
    ms.add_element(std::move(es));
  }
  ls.add_message(std::move(ms));
  spec::PortSpec out;
  out.message = "msgMotion";
  out.direction = spec::DataDirection::kOutput;
  out.semantics = spec::InfoSemantics::kState;
  out.paradigm = spec::ControlParadigm::kEventTriggered;
  out.queue_capacity = 8;
  ls.add_port(out);
  return ls;
}

TEST(RecombinationTest, OutputHeldUntilAllElementsAvailable) {
  GatewayConfig config;
  config.default_d_acc = 100_ms;
  VirtualGateway gw{"fuse", two_source_link(), fused_link(), config};
  gw.finalize();

  const spec::MessageSpec& speed_ms = *gw.link_a().spec().message("msgSpeed");
  const spec::MessageSpec& yaw_ms = *gw.link_a().spec().message("msgYaw");

  // Only speed present: construction must hold and request the yaw.
  gw.on_input(0, make_state_instance(speed_ms, 50, at(0)), at(0));
  gw.dispatch(at(1));
  EXPECT_EQ(gw.stats().messages_constructed, 0u);
  EXPECT_TRUE(gw.repository().requested("yaw"));
  EXPECT_FALSE(gw.repository().requested("speed"));

  // Yaw arrives 7ms later: the recombined message fires (event-driven).
  gw.on_input(0, make_state_instance(yaw_ms, -3, at(7)), at(7));
  EXPECT_EQ(gw.stats().messages_constructed, 1u);
  const auto inst = gw.link_b().port("msgMotion")->read();
  ASSERT_TRUE(inst.has_value());
  EXPECT_EQ(inst->element("speed")->fields[0].as_int(), 50);
  EXPECT_EQ(inst->element("yaw")->fields[0].as_int(), -3);
  // Element timestamps preserve each source's own observation instant.
  EXPECT_EQ(inst->element("speed")->fields[1].as_instant(), at(0));
  EXPECT_EQ(inst->element("yaw")->fields[1].as_instant(), at(7));
}

TEST(RecombinationTest, OneStaleElementBlocksTheWholeMessage) {
  GatewayConfig config;
  config.default_d_acc = 20_ms;
  VirtualGateway gw{"fuse", two_source_link(), fused_link(), config};
  gw.finalize();
  const spec::MessageSpec& speed_ms = *gw.link_a().spec().message("msgSpeed");
  const spec::MessageSpec& yaw_ms = *gw.link_a().spec().message("msgYaw");

  gw.on_input(0, make_state_instance(speed_ms, 50, at(0)), at(0));
  // Yaw arrives after the speed image expired (20ms): the pair is never
  // simultaneously accurate, so nothing crosses.
  gw.on_input(0, make_state_instance(yaw_ms, -3, at(30)), at(30));
  gw.dispatch(at(31));
  EXPECT_EQ(gw.stats().messages_constructed, 0u);
  // Refreshing the stale half completes the pair.
  gw.on_input(0, make_state_instance(speed_ms, 51, at(35)), at(35));
  EXPECT_EQ(gw.stats().messages_constructed, 1u);
}

TEST(RecombinationTest, HorizonIsMinOverConstituents) {
  GatewayConfig config;
  config.default_d_acc = 50_ms;
  VirtualGateway gw{"fuse", two_source_link(), fused_link(), config};
  gw.finalize();
  const spec::MessageSpec& speed_ms = *gw.link_a().spec().message("msgSpeed");
  const spec::MessageSpec& yaw_ms = *gw.link_a().spec().message("msgYaw");
  gw.on_input(0, make_state_instance(speed_ms, 1, at(0)), at(0));
  gw.on_input(0, make_state_instance(yaw_ms, 2, at(20)), at(20));
  // Eq. (2): min(0+50, 20+50) - 30 = 20ms.
  EXPECT_EQ(gw.horizon(1, "msgMotion", at(30)), 20_ms);
}

}  // namespace
}  // namespace decos::core
