// Zero-allocation guarantee of the compiled transfer plans (DESIGN.md
// S23, acceptance criterion of the de-stringing refactor): once a
// gateway shaped like the E6 experiment (TT state input, TT state
// output, 1 ms dispatch) -- and its event-semantics sibling -- has
// warmed up, the steady-state receive->dissect->store->construct->emit
// loop performs zero heap allocations. Runs in its own test binary
// because it replaces the global operator new.
#include <gtest/gtest.h>

#include <cstdlib>
#include <new>
#include <vector>

#include "../helpers.hpp"
#include "core/virtual_gateway.hpp"
#include "sim/simulator.hpp"

// Global allocation counter (same pattern as tests/obs/metrics_test.cpp):
// every heap allocation in this binary bumps the counter; the tests only
// look at the delta across the steady-state loop.
namespace {
std::size_t g_allocations = 0;
}

void* operator new(std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace decos::core {
namespace {

using decos::testing::state_message;
using namespace decos::literals;

std::unique_ptr<VirtualGateway> make_e6_gateway(spec::InfoSemantics semantics) {
  spec::LinkSpec link_a{"dasA"};
  link_a.add_message(state_message("msgA", "image", 1));
  spec::PortSpec in;
  in.message = "msgA";
  in.direction = spec::DataDirection::kInput;
  in.semantics = semantics;
  in.paradigm = semantics == spec::InfoSemantics::kState
                    ? spec::ControlParadigm::kTimeTriggered
                    : spec::ControlParadigm::kEventTriggered;
  in.period = 10_ms;
  in.min_interarrival = 1_us;
  in.max_interarrival = Duration::seconds(3600);
  in.queue_capacity = 16;
  link_a.add_port(in);

  spec::LinkSpec link_b{"dasB"};
  link_b.add_message(state_message("msgB", "image", 2));
  spec::PortSpec out;
  out.message = "msgB";
  out.direction = spec::DataDirection::kOutput;
  out.semantics = semantics;
  out.paradigm = semantics == spec::InfoSemantics::kState
                     ? spec::ControlParadigm::kTimeTriggered
                     : spec::ControlParadigm::kEventTriggered;
  if (semantics == spec::InfoSemantics::kState) out.period = 10_ms;
  out.queue_capacity = 16;
  link_b.add_port(out);

  GatewayConfig config;
  config.default_d_acc = Duration::seconds(3600);
  config.dispatch_period = 1_ms;
  auto gw = std::make_unique<VirtualGateway>("e6", std::move(link_a), std::move(link_b), config);
  gw->finalize();
  // The human-readable trace recorder formats strings per event; the
  // zero-allocation contract covers the pipeline itself, with tracing
  // off (spans, when bound, record two interned u32s -- but this test
  // runs unbound, like a production gateway without an exporter).
  gw->trace().set_enabled(false);
  return gw;
}

/// Run `iterations` of the full pipeline: port deposit (ring
/// copy-assign) -> notify -> admission automaton -> dissect plan ->
/// repository store -> dispatch -> construct plan -> emit.
std::size_t pipeline_allocations(VirtualGateway& gw, spec::MessageInstance& inst,
                                 Instant& now, int iterations) {
  vn::Port* in_port = gw.link_a().port("msgA");
  const std::size_t before = g_allocations;
  for (int i = 0; i < iterations; ++i) {
    now += 10_ms;
    inst.elements()[1].fields[0] = ta::Value{static_cast<std::int64_t>(i)};
    inst.elements()[1].fields[1] = ta::Value{now};
    inst.set_send_time(now);
    in_port->deposit(inst, now);
    gw.dispatch(now);
  }
  return g_allocations - before;
}

TEST(HotPathAllocations, SteadyStateStatePipelineAllocatesNothing) {
  auto gw = make_e6_gateway(spec::InfoSemantics::kState);
  std::size_t emitted = 0;
  gw->link_b().set_emitter("msgB",
                           [&emitted](const spec::MessageInstance&) { ++emitted; });
  const spec::MessageSpec& ms = *gw->link_a().spec().message("msgA");
  spec::MessageInstance inst = spec::make_instance(ms);
  Instant now = Instant::origin();

  pipeline_allocations(*gw, inst, now, 256);  // warm every ring/scratch/buffer
  const std::size_t warm_emitted = emitted;
  const std::size_t delta = pipeline_allocations(*gw, inst, now, 512);
  EXPECT_EQ(delta, 0u) << "steady-state dissect+construct allocated";
  EXPECT_GT(emitted, warm_emitted) << "pipeline stopped forwarding";
}

// -- kernel (sim/event_queue.hpp): the acceptance criterion of the typed
// periodic-event refactor is zero heap allocations and zero hash probes
// per steady-state firing. Hashing is gone by construction (no map
// remains in the kernel); allocation is asserted here. --

TEST(HotPathAllocations, SteadyPeriodicFiringAllocatesNothing) {
  sim::Simulator sim;
  std::uint64_t fired = 0;
  std::vector<sim::PeriodicTask> tasks;
  // 64 tasks with TDMA-client-sized captures (this + index + counter
  // reference): inline in the node, far under InlineAction's 128 bytes.
  tasks.reserve(64);
  for (int i = 0; i < 64; ++i) {
    tasks.push_back(sim.schedule_periodic(sim.now() + Duration::microseconds(1 + 13 * i), 1_ms,
                                          [&fired, i] { fired += static_cast<unsigned>(i) + 1; }));
  }
  sim.run_until(sim.now() + 10_ms);  // warm the pool and the wheel
  ASSERT_GT(fired, 0u);

  const std::size_t before = g_allocations;
  sim.run_until(sim.now() + 100_ms);  // ~6400 firings
  EXPECT_EQ(g_allocations - before, 0u) << "steady periodic firing allocated";
  EXPECT_EQ(sim.pending(), tasks.size());
}

TEST(HotPathAllocations, WarmedOneShotChurnAllocatesNothing) {
  // One-shot schedule -> fire -> release recycles pool nodes; once the
  // pool has grown to the high-water mark, churn is allocation-free.
  sim::Simulator sim;
  std::uint64_t fired = 0;
  for (int i = 0; i < 256; ++i)
    sim.schedule_after(Duration::microseconds(3 * (i + 1)), [&fired] { ++fired; });
  sim.run_until(sim.now() + 1_ms);  // drain: every node is now pooled

  const std::size_t before = g_allocations;
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < 256; ++i)
      sim.schedule_after(Duration::microseconds(3 * (i + 1)), [&fired] { ++fired; });
    sim.run_until(sim.now() + 1_ms);
  }
  EXPECT_EQ(g_allocations - before, 0u) << "warmed one-shot churn allocated";
  EXPECT_EQ(fired, 256u * 101u);
}

TEST(HotPathAllocations, ScheduleCancelChurnAllocatesNothing) {
  // The integration-timeout shape: schedule, then cancel before it
  // fires. O(1) unlink, node straight back to the free list.
  sim::Simulator sim;
  bool fired = false;
  const sim::EventId warm = sim.schedule_after(1_ms, [&fired] { fired = true; });
  sim.cancel(warm);

  const std::size_t before = g_allocations;
  for (int i = 0; i < 10000; ++i) {
    const sim::EventId id = sim.schedule_after(1_ms, [&fired] { fired = true; });
    ASSERT_TRUE(sim.cancel(id));
  }
  EXPECT_EQ(g_allocations - before, 0u) << "schedule/cancel churn allocated";
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(HotPathAllocations, SteadyStateEventPipelineAllocatesNothing) {
  auto gw = make_e6_gateway(spec::InfoSemantics::kEvent);
  std::size_t emitted = 0;
  gw->link_b().set_emitter("msgB",
                           [&emitted](const spec::MessageInstance&) { ++emitted; });
  const spec::MessageSpec& ms = *gw->link_a().spec().message("msgA");
  spec::MessageInstance inst = spec::make_instance(ms);
  Instant now = Instant::origin();

  pipeline_allocations(*gw, inst, now, 256);
  const std::size_t warm_emitted = emitted;
  const std::size_t delta = pipeline_allocations(*gw, inst, now, 512);
  EXPECT_EQ(delta, 0u) << "steady-state event dissect+construct allocated";
  EXPECT_GT(emitted, warm_emitted) << "pipeline stopped forwarding";
}

}  // namespace
}  // namespace decos::core
