// Zero-allocation guarantee of the compiled transfer plans (DESIGN.md
// S23, acceptance criterion of the de-stringing refactor): once a
// gateway shaped like the E6 experiment (TT state input, TT state
// output, 1 ms dispatch) -- and its event-semantics sibling -- has
// warmed up, the steady-state receive->dissect->store->construct->emit
// loop performs zero heap allocations. Runs in its own test binary
// because it replaces the global operator new.
#include <gtest/gtest.h>

#include <cstdlib>
#include <new>
#include <vector>

#include "../helpers.hpp"
#include "../rt/rt_fixture.hpp"
#include "core/virtual_gateway.hpp"
#include "rt/gateway_runtime.hpp"
#include "core/wiring.hpp"
#include "obs/telemetry.hpp"
#include "platform/cluster.hpp"
#include "sim/simulator.hpp"
#include "vn/et_vn.hpp"
#include "vn/tt_vn.hpp"

// Global allocation counter (same pattern as tests/obs/metrics_test.cpp):
// every heap allocation in this binary bumps the counter; the tests only
// look at the delta across the steady-state loop.
namespace {
std::size_t g_allocations = 0;
}

void* operator new(std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace decos::core {
namespace {

using decos::testing::state_message;
using namespace decos::literals;

std::unique_ptr<VirtualGateway> make_e6_gateway(spec::InfoSemantics semantics) {
  spec::LinkSpec link_a{"dasA"};
  link_a.add_message(state_message("msgA", "image", 1));
  spec::PortSpec in;
  in.message = "msgA";
  in.direction = spec::DataDirection::kInput;
  in.semantics = semantics;
  in.paradigm = semantics == spec::InfoSemantics::kState
                    ? spec::ControlParadigm::kTimeTriggered
                    : spec::ControlParadigm::kEventTriggered;
  in.period = 10_ms;
  in.min_interarrival = 1_us;
  in.max_interarrival = Duration::seconds(3600);
  in.queue_capacity = 16;
  link_a.add_port(in);

  spec::LinkSpec link_b{"dasB"};
  link_b.add_message(state_message("msgB", "image", 2));
  spec::PortSpec out;
  out.message = "msgB";
  out.direction = spec::DataDirection::kOutput;
  out.semantics = semantics;
  out.paradigm = semantics == spec::InfoSemantics::kState
                     ? spec::ControlParadigm::kTimeTriggered
                     : spec::ControlParadigm::kEventTriggered;
  if (semantics == spec::InfoSemantics::kState) out.period = 10_ms;
  out.queue_capacity = 16;
  link_b.add_port(out);

  GatewayConfig config;
  config.default_d_acc = Duration::seconds(3600);
  config.dispatch_period = 1_ms;
  auto gw = std::make_unique<VirtualGateway>("e6", std::move(link_a), std::move(link_b), config);
  gw->finalize();
  // The human-readable trace recorder formats strings per event; the
  // zero-allocation contract covers the pipeline itself, with tracing
  // off (spans, when bound, record two interned u32s -- but this test
  // runs unbound, like a production gateway without an exporter).
  gw->trace().set_enabled(false);
  return gw;
}

/// Run `iterations` of the full pipeline: port deposit (ring
/// copy-assign) -> notify -> admission automaton -> dissect plan ->
/// repository store -> dispatch -> construct plan -> emit.
std::size_t pipeline_allocations(VirtualGateway& gw, spec::MessageInstance& inst,
                                 Instant& now, int iterations) {
  vn::Port* in_port = gw.link_a().port("msgA");
  const std::size_t before = g_allocations;
  for (int i = 0; i < iterations; ++i) {
    now += 10_ms;
    inst.elements()[1].fields[0] = ta::Value{static_cast<std::int64_t>(i)};
    inst.elements()[1].fields[1] = ta::Value{now};
    inst.set_send_time(now);
    in_port->deposit(inst, now);
    gw.dispatch(now);
  }
  return g_allocations - before;
}

TEST(HotPathAllocations, SteadyStateStatePipelineAllocatesNothing) {
  auto gw = make_e6_gateway(spec::InfoSemantics::kState);
  std::size_t emitted = 0;
  gw->link_b().set_emitter("msgB",
                           [&emitted](const spec::MessageInstance&) { ++emitted; });
  const spec::MessageSpec& ms = *gw->link_a().spec().message("msgA");
  spec::MessageInstance inst = spec::make_instance(ms);
  Instant now = Instant::origin();

  pipeline_allocations(*gw, inst, now, 256);  // warm every ring/scratch/buffer
  const std::size_t warm_emitted = emitted;
  const std::size_t delta = pipeline_allocations(*gw, inst, now, 512);
  EXPECT_EQ(delta, 0u) << "steady-state dissect+construct allocated";
  EXPECT_GT(emitted, warm_emitted) << "pipeline stopped forwarding";
}

// -- kernel (sim/event_queue.hpp): the acceptance criterion of the typed
// periodic-event refactor is zero heap allocations and zero hash probes
// per steady-state firing. Hashing is gone by construction (no map
// remains in the kernel); allocation is asserted here. --

TEST(HotPathAllocations, SteadyPeriodicFiringAllocatesNothing) {
  sim::Simulator sim;
  std::uint64_t fired = 0;
  std::vector<sim::PeriodicTask> tasks;
  // 64 tasks with TDMA-client-sized captures (this + index + counter
  // reference): inline in the node, far under InlineAction's 128 bytes.
  tasks.reserve(64);
  for (int i = 0; i < 64; ++i) {
    tasks.push_back(sim.schedule_periodic(sim.now() + Duration::microseconds(1 + 13 * i), 1_ms,
                                          [&fired, i] { fired += static_cast<unsigned>(i) + 1; }));
  }
  sim.run_until(sim.now() + 10_ms);  // warm the pool and the wheel
  ASSERT_GT(fired, 0u);

  const std::size_t before = g_allocations;
  sim.run_until(sim.now() + 100_ms);  // ~6400 firings
  EXPECT_EQ(g_allocations - before, 0u) << "steady periodic firing allocated";
  EXPECT_EQ(sim.pending(), tasks.size());
}

TEST(HotPathAllocations, WarmedOneShotChurnAllocatesNothing) {
  // One-shot schedule -> fire -> release recycles pool nodes; once the
  // pool has grown to the high-water mark, churn is allocation-free.
  sim::Simulator sim;
  std::uint64_t fired = 0;
  for (int i = 0; i < 256; ++i)
    sim.schedule_after(Duration::microseconds(3 * (i + 1)), [&fired] { ++fired; });
  sim.run_until(sim.now() + 1_ms);  // drain: every node is now pooled

  const std::size_t before = g_allocations;
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < 256; ++i)
      sim.schedule_after(Duration::microseconds(3 * (i + 1)), [&fired] { ++fired; });
    sim.run_until(sim.now() + 1_ms);
  }
  EXPECT_EQ(g_allocations - before, 0u) << "warmed one-shot churn allocated";
  EXPECT_EQ(fired, 256u * 101u);
}

TEST(HotPathAllocations, ScheduleCancelChurnAllocatesNothing) {
  // The integration-timeout shape: schedule, then cancel before it
  // fires. O(1) unlink, node straight back to the free list.
  sim::Simulator sim;
  bool fired = false;
  const sim::EventId warm = sim.schedule_after(1_ms, [&fired] { fired = true; });
  sim.cancel(warm);

  const std::size_t before = g_allocations;
  for (int i = 0; i < 10000; ++i) {
    const sim::EventId id = sim.schedule_after(1_ms, [&fired] { fired = true; });
    ASSERT_TRUE(sim.cancel(id));
  }
  EXPECT_EQ(g_allocations - before, 0u) << "schedule/cancel churn allocated";
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.pending(), 0u);
}

// -- streaming telemetry (obs/telemetry): the acceptance criterion of
// the live-windowed-telemetry work is that the steady-state aggregation
// path (span folding + window close + serialization) allocates nothing
// once flows, the open-trace table, and the line buffers are warm. --

namespace {

/// Counts lines without touching the heap (no stream, no copies).
class CountingTelemetrySink : public obs::TelemetrySink {
 public:
  void write_line(std::string_view line) override {
    ++lines_;
    bytes_ += line.size();
  }
  std::uint64_t lines() const { return lines_; }
  std::uint64_t bytes() const { return bytes_; }

 private:
  std::uint64_t lines_ = 0;
  std::uint64_t bytes_ = 0;
};

}  // namespace

TEST(HotPathAllocations, SteadyTelemetryAggregationAllocatesNothing) {
  obs::MetricsRegistry registry;
  obs::Counter& frames = registry.counter("tt.frames_sent");
  obs::Gauge& depth = registry.gauge("vn.depth");
  obs::Histogram& lat = registry.histogram("gw.latency_ns");

  CountingTelemetrySink sink;
  obs::TelemetryConfig config;
  config.window = 1_ms;  // tiny window: closes happen inside the loop
  config.max_open_traces = 64;
  obs::WindowAggregator aggregator{&registry, nullptr, config};
  aggregator.set_sink(&sink);
  aggregator.begin_stream("hot-path");
  aggregator.set_deadline("msgA->msgB", 5_ms);

  // Spans are fed straight into the sink interface (what the collector
  // does per emit), with pre-interned symbols: the contract under test
  // is the aggregation path itself, not the collector's retention ring.
  const Symbol track_node = intern_symbol("n");
  const Symbol track_bus = intern_symbol("bus");
  const Symbol track_gw = intern_symbol("gw");
  const Symbol track_vn = intern_symbol("vn");
  const Symbol msg_a = intern_symbol("msgA");
  const Symbol msg_b = intern_symbol("msgB");
  const Symbol slot_s = intern_symbol("s");
  const Symbol element = intern_symbol("el");

  std::uint64_t next_id = 1;
  const auto span = [&](std::uint64_t trace, std::uint64_t parent, obs::Phase phase, Symbol track,
                        Symbol name, Instant start, Instant end) {
    obs::Span s;
    s.trace_id = trace;
    s.span_id = next_id++;
    s.parent_id = parent;
    s.phase = phase;
    s.track = track;
    s.name = name;
    s.start = start;
    s.end = end;
    aggregator.on_span(s);
    return s.span_id;
  };

  std::uint64_t next_trace = 1;
  const auto emit_round = [&](int i) {
    const Instant t0 = Instant::from_ns(std::int64_t{i} * 700'000);
    const std::uint64_t trace = next_trace++;
    const std::uint64_t root = span(trace, 0, obs::Phase::kSend, track_node, msg_a, t0, t0);
    const std::uint64_t bus = span(trace, root, obs::Phase::kBus, track_bus, slot_s, t0,
                                   t0 + 100_us);
    const std::uint64_t dis = span(trace, bus, obs::Phase::kDissect, track_gw, msg_a, t0 + 100_us,
                                   t0 + 110_us);
    const std::uint64_t repo = span(trace, dis, obs::Phase::kRepoWait, track_gw, element,
                                    t0 + 110_us, t0 + 200_us + 10_us * (i % 7));
    const std::uint64_t con = span(trace, repo, obs::Phase::kConstruct, track_gw, msg_b,
                                   t0 + 300_us, t0 + 310_us);
    span(trace, con, obs::Phase::kDeliver, track_vn, msg_b, t0 + 310_us, t0 + 400_us);
    if (obs::kMetricsEnabled) {
      frames.add();
      depth.set(i % 5);
      lat.observe(1000 + (i % 3) * 500);
    }
  };

  // Warm up: flows registered, table touched, line buffers and the
  // metric-delta array at their high-water sizes (several window closes
  // happen within 256 rounds at 0.7 ms per round / 1 ms windows).
  for (int i = 0; i < 256; ++i) emit_round(i);
  ASSERT_GT(sink.lines(), 2u) << "warmup closed no windows";

  const std::size_t before = g_allocations;
  for (int i = 256; i < 1024; ++i) emit_round(i);
  EXPECT_EQ(g_allocations - before, 0u) << "steady-state telemetry aggregation allocated";
  EXPECT_GT(sink.bytes(), 0u);

  aggregator.flush();
  const std::vector<obs::WindowAggregator::FlowTotals> totals = aggregator.totals();
  ASSERT_EQ(totals.size(), 1u);
  EXPECT_EQ(totals[0].traces, 1024u);
  EXPECT_EQ(totals[0].deadline_miss, 0u);
}

// -- full frame path (S29): the pipeline tests above drive the gateway
// ports directly; this one runs the complete wire journey in both
// directions at once through a bidirectional gateway -- producer port ->
// TT VN encode (compiled WireLayout into the pooled slot buffer) -> TDMA
// bus -> TT VN decode (warmed listener scratch) -> gateway batched
// dispatch -> ET VN encode -> ET slots -> ET VN decode -> consumer port,
// and the ET->TT mirror of it. Once warm, whole rounds of simulated
// traffic must not touch the heap. --

TEST(HotPathAllocations, FullFramePathThroughBothVnsAllocatesNothing) {
  platform::ClusterConfig config;
  config.nodes = 3;
  config.round_length = 10_ms;
  config.allocations = {{1, "dasA", 32, {0, 2}}, {2, "dasB", 32, {1, 2}}};
  platform::Cluster cluster{config};
  // The human-readable bus trace formats a string per frame and the span
  // collector records a causal span per traced hop; like the gateway
  // trace below, both are off in a production-shaped hot path.
  cluster.bus().trace().set_enabled(false);
  cluster.simulator().spans().set_enabled(false);

  vn::TtVirtualNetwork vn_a{"vn-a", 1};
  vn::EtVirtualNetwork vn_b{"vn-b", 2};

  const auto make_port = [](const std::string& msg, spec::DataDirection dir,
                            spec::ControlParadigm par, Duration period) {
    spec::PortSpec ps;
    ps.message = msg;
    ps.direction = dir;
    ps.semantics = spec::InfoSemantics::kState;
    ps.paradigm = par;
    ps.period = period;
    ps.min_interarrival = 1_us;
    ps.max_interarrival = Duration::seconds(3600);
    ps.queue_capacity = 16;
    return ps;
  };

  // Link A: consumes msgX, produces msgYback. Link B: produces msgXfwd,
  // consumes msgY (state semantics on both VNs; the ET side carries the
  // state updates event-triggered).
  spec::LinkSpec link_a{"dasA"};
  link_a.add_message(state_message("msgX", "xdata", 1));
  link_a.add_port(make_port("msgX", spec::DataDirection::kInput,
                            spec::ControlParadigm::kTimeTriggered, 10_ms));
  link_a.add_message(state_message("msgYback", "ydata", 2));
  link_a.add_port(make_port("msgYback", spec::DataDirection::kOutput,
                            spec::ControlParadigm::kTimeTriggered, 10_ms));
  spec::LinkSpec link_b{"dasB"};
  link_b.add_message(state_message("msgXfwd", "xdata", 3));
  link_b.add_port(make_port("msgXfwd", spec::DataDirection::kOutput,
                            spec::ControlParadigm::kEventTriggered, Duration::zero()));
  link_b.add_message(state_message("msgY", "ydata", 4));
  link_b.add_port(make_port("msgY", spec::DataDirection::kInput,
                            spec::ControlParadigm::kEventTriggered, Duration::zero()));

  GatewayConfig gw_config;
  gw_config.default_d_acc = Duration::seconds(3600);
  gw_config.dispatch_period = 1_ms;
  VirtualGateway gateway{"hot", std::move(link_a), std::move(link_b), gw_config};
  gateway.finalize();
  gateway.trace().set_enabled(false);
  wire_tt_link(gateway, 0, vn_a, cluster.controller(2),
               {{"msgYback", cluster.vn_slots(1, 2)}});
  wire_et_link(gateway, 1, vn_b, cluster.controller(2), cluster.vn_slots(2, 2));

  // DAS A endpoints on node 0; DAS B endpoints on node 1.
  vn::Port producer_a{make_port("msgX", spec::DataDirection::kOutput,
                                spec::ControlParadigm::kTimeTriggered, 10_ms)};
  vn_a.attach_sender(cluster.controller(0), producer_a, cluster.vn_slots(1, 0));
  vn::Port consumer_a{make_port("msgYback", spec::DataDirection::kInput,
                                spec::ControlParadigm::kTimeTriggered, 10_ms)};
  vn_a.attach_receiver(cluster.controller(0), consumer_a);
  vn::Port consumer_b{make_port("msgXfwd", spec::DataDirection::kInput,
                                spec::ControlParadigm::kEventTriggered, Duration::zero())};
  vn_b.attach_receiver(cluster.controller(1), consumer_b);
  vn_b.attach_node(cluster.controller(1), cluster.vn_slots(2, 1));

  cluster.component(2)
      .add_partition("gw", "architecture", 0_ms, 1_ms)
      .add_function_job("gwjob", [&gateway](platform::FunctionJob&, Instant now) {
        gateway.dispatch(now);
      });

  // Producers mutate one persistent instance per direction; the ports
  // and VN scratch hold the only other copies, all warmed below.
  spec::MessageInstance inst_x = spec::make_instance(*gateway.link_a().spec().message("msgX"));
  spec::MessageInstance inst_y = spec::make_instance(*gateway.link_b().spec().message("msgY"));
  std::int64_t tick = 0;
  cluster.component(0)
      .add_partition("pa", "dasA", 2_ms, 200_us)
      .add_function_job("prodA", [&](platform::FunctionJob&, Instant now) {
        inst_x.elements()[1].fields[0] = ta::Value{tick};
        inst_x.elements()[1].fields[1] = ta::Value{now};
        inst_x.set_send_time(now);
        producer_a.deposit(inst_x, now);
      });
  cluster.component(1)
      .add_partition("pb", "dasB", 4_ms, 200_us)
      .add_function_job("prodB", [&](platform::FunctionJob&, Instant now) {
        inst_y.elements()[1].fields[0] = ta::Value{tick++};
        inst_y.elements()[1].fields[1] = ta::Value{now};
        inst_y.set_send_time(now);
        vn_b.send(cluster.controller(1), inst_y);
      });

  cluster.start();
  cluster.run_for(Duration::milliseconds(2560));  // warm pools, rings, scratch
  ASSERT_TRUE(consumer_b.has_data()) << "TT->ET direction never delivered";
  ASSERT_TRUE(consumer_a.has_data()) << "ET->TT direction never delivered";
  const std::int64_t warm_x = consumer_b.peek_read()->element("xdata")->fields[0].as_int();
  const std::int64_t warm_y = consumer_a.peek_read()->element("ydata")->fields[0].as_int();

  const std::size_t before = g_allocations;
  cluster.run_for(Duration::milliseconds(5120));
  EXPECT_EQ(g_allocations - before, 0u) << "steady-state full frame path allocated";

  EXPECT_GT(consumer_b.peek_read()->element("xdata")->fields[0].as_int(), warm_x)
      << "TT->ET direction stopped forwarding";
  EXPECT_GT(consumer_a.peek_read()->element("ydata")->fields[0].as_int(), warm_y)
      << "ET->TT direction stopped forwarding";
}

// -- live runtime (S30): the acceptance criterion of the host-time
// runtime is that the steady-state poll loop -- ring consume -> frame
// identify -> decode into warmed scratch -> deposit -> dispatch ->
// construct -> encode into the warmed tx buffer -> ring push -- touches
// the heap zero times once the scratch instances, tx buffers and rings
// are warm. --

TEST(HotPathAllocations, SteadyStateRuntimePollLoopAllocatesNothing) {
  rt_testing::RtGatewayOptions options;  // event push: egress per ingress frame
  auto gw = rt_testing::make_rt_gateway(options);
  rt::ManualClock clock;
  rt::GatewayRuntime runtime{*gw, clock};
  rt::SpscRing a_in{1 << 16}, a_out{1 << 16}, b_in{1 << 16}, b_out{1 << 16};
  rt::RingEndpoint side_a{a_in, a_out}, side_b{b_in, b_out};
  runtime.attach(0, side_a);
  runtime.attach(1, side_b);
  runtime.start();

  const spec::MessageSpec& msg_a = *gw->link_a().spec().message("msgA");
  std::size_t egress = 0;
  Instant now = Instant::origin();
  const auto round = [&](int i) {
    now += 100_us;
    clock.set(now);
    const std::vector<std::byte> frame =
        rt_testing::encode_frame(msg_a, static_cast<std::int32_t>(i), now);
    if (!a_in.try_push(frame)) return;
    runtime.poll_once(clock.now());
    b_out.consume(64, [&egress](std::span<const std::byte>) { ++egress; });
  };
  // encode_frame allocates the source vector; exclude it from the
  // measured loop by pre-encoding a reusable frame for the hot rounds.
  for (int i = 0; i < 256; ++i) round(i);  // warm scratch, tx buffers, wheels
  ASSERT_GT(egress, 0u) << "runtime never forwarded";

  const std::vector<std::byte> frame = rt_testing::encode_frame(msg_a, 7, now);
  const std::size_t warm_egress = egress;
  const std::size_t before = g_allocations;
  for (int i = 0; i < 512; ++i) {
    now += 100_us;
    clock.set(now);
    if (!a_in.try_push(frame)) continue;
    runtime.poll_once(clock.now());
    b_out.consume(64, [&egress](std::span<const std::byte>) { ++egress; });
  }
  EXPECT_EQ(g_allocations - before, 0u) << "steady-state runtime poll loop allocated";
  EXPECT_GT(egress, warm_egress) << "runtime stopped forwarding";
}

TEST(HotPathAllocations, SteadyStateEventPipelineAllocatesNothing) {
  auto gw = make_e6_gateway(spec::InfoSemantics::kEvent);
  std::size_t emitted = 0;
  gw->link_b().set_emitter("msgB",
                           [&emitted](const spec::MessageInstance&) { ++emitted; });
  const spec::MessageSpec& ms = *gw->link_a().spec().message("msgA");
  spec::MessageInstance inst = spec::make_instance(ms);
  Instant now = Instant::origin();

  pipeline_allocations(*gw, inst, now, 256);
  const std::size_t warm_emitted = emitted;
  const std::size_t delta = pipeline_allocations(*gw, inst, now, 512);
  EXPECT_EQ(delta, 0u) << "steady-state event dissect+construct allocated";
  EXPECT_GT(emitted, warm_emitted) << "pipeline stopped forwarding";
}

}  // namespace
}  // namespace decos::core
