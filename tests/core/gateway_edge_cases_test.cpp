// Gateway edge cases: field mismatches between the two links, health
// diagnostics, rename lookups, trace records and emission accounting.
#include <gtest/gtest.h>

#include "../helpers.hpp"
#include "core/virtual_gateway.hpp"

namespace decos::core {
namespace {

using decos::testing::make_state_instance;
using decos::testing::state_message;
using namespace decos::literals;

Instant at(std::int64_t ms) { return Instant::origin() + Duration::milliseconds(ms); }

spec::PortSpec et_in(const std::string& msg, Duration tmin = Duration::zero(),
                     Duration tmax = Duration::max()) {
  spec::PortSpec ps;
  ps.message = msg;
  ps.direction = spec::DataDirection::kInput;
  ps.semantics = spec::InfoSemantics::kEvent;
  ps.paradigm = spec::ControlParadigm::kEventTriggered;
  ps.min_interarrival = tmin;
  ps.max_interarrival = tmax;
  ps.queue_capacity = 16;
  return ps;
}

spec::PortSpec et_out(const std::string& msg) {
  spec::PortSpec ps = et_in(msg);
  ps.direction = spec::DataDirection::kOutput;
  return ps;
}

TEST(GatewayEdgeCasesTest, FieldMismatchAcrossLinksCountsConstructionFailed) {
  spec::LinkSpec link_a{"dasA"};
  link_a.add_message(state_message("msgA", "payload", 1));  // fields: value, t
  link_a.add_port(et_in("msgA"));

  // Link B expects a field the repository never receives.
  spec::LinkSpec link_b{"dasB"};
  spec::MessageSpec out{"msgB"};
  spec::ElementSpec key;
  key.name = "name";
  key.key = true;
  key.fields.push_back(spec::FieldSpec{"id", spec::FieldType::kInt16, 0, ta::Value{2}});
  out.add_element(std::move(key));
  spec::ElementSpec payload;
  payload.name = "payload";
  payload.convertible = true;
  payload.fields.push_back(
      spec::FieldSpec{"different_field", spec::FieldType::kInt32, 0, std::nullopt});
  out.add_element(std::move(payload));
  link_b.add_message(std::move(out));
  link_b.add_port(et_out("msgB"));

  VirtualGateway gw{"g", std::move(link_a), std::move(link_b)};
  gw.finalize();
  gw.on_input(0, make_state_instance(*gw.link_a().spec().message("msgA"), 1, at(0)), at(0));
  EXPECT_EQ(gw.stats().messages_constructed, 0u);
  EXPECT_GE(gw.stats().construction_failed, 1u);
  EXPECT_GT(gw.trace().count(sim::TraceKind::kGatewayBlocked), 0u);
}

TEST(GatewayEdgeCasesTest, LinkHealthReflectsAutomatonState) {
  spec::LinkSpec link_a{"dasA"};
  link_a.add_message(state_message("msgA", "payload", 1));
  link_a.add_port(et_in("msgA", 4_ms, 100_ms));
  spec::LinkSpec link_b{"dasB"};
  link_b.add_message(state_message("msgB", "payload", 2));
  link_b.add_port(et_out("msgB"));

  VirtualGateway gw{"g", std::move(link_a), std::move(link_b)};
  gw.finalize();
  EXPECT_EQ(gw.link_health(0), VirtualGateway::LinkHealth::kHealthy);
  EXPECT_EQ(gw.link_health(1), VirtualGateway::LinkHealth::kHealthy);

  const spec::MessageSpec& ms = *gw.link_a().spec().message("msgA");
  gw.on_input(0, make_state_instance(ms, 1, at(0)), at(0));
  gw.on_input(0, make_state_instance(ms, 2, at(1)), at(1));  // tmin violation
  EXPECT_EQ(gw.link_health(0), VirtualGateway::LinkHealth::kError);
  EXPECT_EQ(gw.link_health(1), VirtualGateway::LinkHealth::kHealthy);
  const auto failed = gw.failed_automata(0);
  ASSERT_EQ(failed.size(), 1u);
  EXPECT_EQ(failed[0], "auto_recv_msgA");
}

TEST(GatewayEdgeCasesTest, RenameLookupsAreBidirectional) {
  spec::LinkSpec link_a{"dasA"};
  link_a.add_message(state_message("msgA", "sensor", 1));
  link_a.add_port(et_in("msgA"));
  spec::LinkSpec link_b{"dasB"};
  link_b.add_message(state_message("msgB", "sensor", 2));
  link_b.add_port(et_out("msgB"));
  VirtualGateway gw{"g", std::move(link_a), std::move(link_b)};
  gw.link_a().add_rename("sensor", "oil.temp");
  EXPECT_EQ(gw.link_a().repo_name("sensor"), "oil.temp");
  EXPECT_EQ(gw.link_a().link_name("oil.temp"), "sensor");
  // Unmapped names pass through unchanged.
  EXPECT_EQ(gw.link_a().repo_name("other"), "other");
  EXPECT_EQ(gw.link_b().repo_name("sensor"), "sensor");
}

TEST(GatewayEdgeCasesTest, TraceRecordsForwardAndBlock) {
  spec::LinkSpec link_a{"dasA"};
  link_a.add_message(state_message("msgA", "payload", 1));
  link_a.add_port(et_in("msgA", 4_ms, 100_ms));
  spec::LinkSpec link_b{"dasB"};
  link_b.add_message(state_message("msgB", "payload", 2));
  link_b.add_port(et_out("msgB"));
  VirtualGateway gw{"g", std::move(link_a), std::move(link_b)};
  gw.finalize();

  const spec::MessageSpec& ms = *gw.link_a().spec().message("msgA");
  gw.on_input(0, make_state_instance(ms, 1, at(0)), at(0));
  gw.on_input(0, make_state_instance(ms, 2, at(1)), at(1));  // violation
  EXPECT_EQ(gw.trace().count(sim::TraceKind::kGatewayForwarded, "msgB"), 1u);
  EXPECT_EQ(gw.trace().count(sim::TraceKind::kGatewayBlocked, "msgA"), 1u);
  EXPECT_EQ(gw.trace().count(sim::TraceKind::kAutomatonError), 1u);
}

TEST(GatewayEdgeCasesTest, SetElementConfigAfterFinalizeThrows) {
  spec::LinkSpec link_a{"dasA"};
  link_a.add_message(state_message("msgA", "payload", 1));
  link_a.add_port(et_in("msgA"));
  spec::LinkSpec link_b{"dasB"};
  link_b.add_message(state_message("msgB", "payload", 2));
  link_b.add_port(et_out("msgB"));
  VirtualGateway gw{"g", std::move(link_a), std::move(link_b)};
  gw.finalize();
  EXPECT_THROW(gw.set_element_config("payload", spec::InfoSemantics::kState, 10_ms), SpecError);
}

TEST(GatewayEdgeCasesTest, MessageWithoutConvertibleElementsForwardsNothing) {
  spec::LinkSpec link_a{"dasA"};
  spec::MessageSpec opaque{"msgO"};
  spec::ElementSpec key;
  key.name = "name";
  key.key = true;
  key.fields.push_back(spec::FieldSpec{"id", spec::FieldType::kInt16, 0, ta::Value{9}});
  opaque.add_element(std::move(key));
  spec::ElementSpec local;
  local.name = "local_only";  // not convertible
  local.fields.push_back(spec::FieldSpec{"x", spec::FieldType::kInt32, 0, std::nullopt});
  opaque.add_element(std::move(local));
  link_a.add_message(std::move(opaque));
  link_a.add_port(et_in("msgO"));

  spec::LinkSpec link_b{"dasB"};
  link_b.add_message(state_message("msgB", "payload", 2));
  link_b.add_port(et_out("msgB"));

  VirtualGateway gw{"g", std::move(link_a), std::move(link_b)};
  gw.finalize();
  gw.on_input(0, spec::make_instance(*gw.link_a().spec().message("msgO")), at(0));
  EXPECT_EQ(gw.stats().messages_admitted, 1u);
  EXPECT_EQ(gw.stats().elements_stored, 0u);  // nothing convertible
  EXPECT_EQ(gw.stats().messages_constructed, 0u);
}

}  // namespace
}  // namespace decos::core
