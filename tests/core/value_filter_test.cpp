// Value-domain filtering (paper Section III-B.1): "In the value domain,
// the gateway checks message contents with user data and control
// information."
#include <gtest/gtest.h>

#include "../helpers.hpp"
#include "core/virtual_gateway.hpp"
#include "spec/linkspec_xml.hpp"

namespace decos::core {
namespace {

using decos::testing::make_state_instance;
using decos::testing::state_message;
using namespace decos::literals;

Instant at(std::int64_t ms) { return Instant::origin() + Duration::milliseconds(ms); }

spec::LinkSpec input_link(spec::LinkSpec base = spec::LinkSpec{"dasA"}) {
  base.add_message(state_message("msgA", "payload", 1));
  spec::PortSpec in;
  in.message = "msgA";
  in.direction = spec::DataDirection::kInput;
  in.semantics = spec::InfoSemantics::kState;
  in.period = 10_ms;
  in.min_interarrival = 1_us;
  in.max_interarrival = Duration::seconds(3600);
  base.add_port(in);
  return base;
}

spec::LinkSpec output_link() {
  spec::LinkSpec ls{"dasB"};
  ls.add_message(state_message("msgB", "payload", 2));
  spec::PortSpec out;
  out.message = "msgB";
  out.direction = spec::DataDirection::kOutput;
  out.semantics = spec::InfoSemantics::kState;
  out.paradigm = spec::ControlParadigm::kEventTriggered;
  ls.add_port(out);
  return ls;
}

TEST(ValueFilterTest, BlocksOutOfRangeValues) {
  spec::LinkSpec link_a = input_link();
  // Plausibility window for the payload value.
  link_a.set_filter("msgA", ta::parse_expression("value >= 0 && value <= 100").value());

  VirtualGateway gw{"g", std::move(link_a), output_link()};
  gw.finalize();
  const spec::MessageSpec& ms = *gw.link_a().spec().message("msgA");

  gw.on_input(0, make_state_instance(ms, 50, at(0)), at(0));
  EXPECT_EQ(gw.stats().messages_admitted, 1u);
  gw.on_input(0, make_state_instance(ms, 101, at(10)), at(10));
  gw.on_input(0, make_state_instance(ms, -7, at(20)), at(20));
  EXPECT_EQ(gw.stats().blocked_value, 2u);
  EXPECT_EQ(gw.stats().messages_admitted, 1u);
  // Only the plausible value crossed.
  EXPECT_EQ(gw.stats().messages_constructed, 1u);
}

TEST(ValueFilterTest, FilterSeesLinkParameters) {
  spec::LinkSpec link_a = input_link();
  link_a.set_parameter("vmax", ta::Value{60});
  link_a.set_filter("msgA", ta::parse_expression("value < vmax").value());

  VirtualGateway gw{"g", std::move(link_a), output_link()};
  gw.finalize();
  const spec::MessageSpec& ms = *gw.link_a().spec().message("msgA");
  gw.on_input(0, make_state_instance(ms, 59, at(0)), at(0));
  gw.on_input(0, make_state_instance(ms, 61, at(10)), at(10));
  EXPECT_EQ(gw.stats().messages_admitted, 1u);
  EXPECT_EQ(gw.stats().blocked_value, 1u);
}

TEST(ValueFilterTest, AbsBuiltinAvailable) {
  spec::LinkSpec link_a = input_link();
  link_a.set_filter("msgA", ta::parse_expression("abs(value) <= 10").value());
  VirtualGateway gw{"g", std::move(link_a), output_link()};
  gw.finalize();
  const spec::MessageSpec& ms = *gw.link_a().spec().message("msgA");
  gw.on_input(0, make_state_instance(ms, -10, at(0)), at(0));
  gw.on_input(0, make_state_instance(ms, -11, at(10)), at(10));
  EXPECT_EQ(gw.stats().messages_admitted, 1u);
  EXPECT_EQ(gw.stats().blocked_value, 1u);
}

TEST(ValueFilterTest, UnknownIdentifierIsConfigurationError) {
  spec::LinkSpec link_a = input_link();
  link_a.set_filter("msgA", ta::parse_expression("bogus > 1").value());
  VirtualGateway gw{"g", std::move(link_a), output_link()};
  gw.finalize();
  const spec::MessageSpec& ms = *gw.link_a().spec().message("msgA");
  EXPECT_THROW(gw.on_input(0, make_state_instance(ms, 1, at(0)), at(0)), SpecError);
}

TEST(ValueFilterTest, ValidateRejectsFilterOnUnknownMessage) {
  spec::LinkSpec link_a = input_link();
  link_a.set_filter("ghost", ta::parse_expression("true").value());
  EXPECT_FALSE(link_a.validate().ok());
}

TEST(ValueFilterTest, XmlRoundTrip) {
  const char* xml = R"(<linkspec><das>d</das>
    <param name="vmax" value="100"/>
    <message name="m"><element name="n" key="yes"><field name="id">
      <type length="8">integer</type><value>1</value></field></element>
      <element name="v" conv="yes"><field name="value"><type length="32">integer</type></field></element>
    </message>
    <port message="m" direction="input" semantics="state" paradigm="tt" period="10ms"/>
    <filter message="m">value &gt;= 0 &amp;&amp; value &lt;= vmax</filter>
  </linkspec>)";
  auto parsed = spec::parse_link_spec_xml(xml);
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  ASSERT_NE(parsed.value().filter_for("m"), nullptr);

  const std::string once = spec::write_link_spec_xml(parsed.value());
  auto reparsed = spec::parse_link_spec_xml(once);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(once, spec::write_link_spec_xml(reparsed.value()));
}

TEST(ValueFilterTest, TimeAvailableInFilter) {
  spec::LinkSpec link_a = input_link();
  // Accept only instances whose embedded timestamp is at most 5ms old.
  link_a.set_filter("msgA", ta::parse_expression("t_now - t <= 5ms").value());
  VirtualGateway gw{"g", std::move(link_a), output_link()};
  gw.finalize();
  const spec::MessageSpec& ms = *gw.link_a().spec().message("msgA");
  gw.on_input(0, make_state_instance(ms, 1, at(0)), at(3));    // 3ms old
  gw.on_input(0, make_state_instance(ms, 2, at(10)), at(20));  // 10ms old
  EXPECT_EQ(gw.stats().messages_admitted, 1u);
  EXPECT_EQ(gw.stats().blocked_value, 1u);
}

}  // namespace
}  // namespace decos::core
