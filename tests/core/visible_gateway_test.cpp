#include "core/visible_gateway.hpp"

#include <gtest/gtest.h>

#include "../helpers.hpp"

namespace decos::core {
namespace {

using decos::testing::make_state_instance;
using decos::testing::state_message;
using namespace decos::literals;

Instant at(std::int64_t ms) { return Instant::origin() + Duration::milliseconds(ms); }

spec::PortSpec event_in(const std::string& msg) {
  spec::PortSpec ps;
  ps.message = msg;
  ps.direction = spec::DataDirection::kInput;
  ps.semantics = spec::InfoSemantics::kEvent;
  ps.paradigm = spec::ControlParadigm::kEventTriggered;
  ps.queue_capacity = 16;
  return ps;
}

spec::PortSpec event_out(const std::string& msg) {
  spec::PortSpec ps = event_in(msg);
  ps.direction = spec::DataDirection::kOutput;
  return ps;
}

TEST(VisibleGatewayTest, SemanticTransformApplied) {
  const spec::MessageSpec in_spec = state_message("msgMph", "speed", 1);
  const spec::MessageSpec out_spec = state_message("msgKmh", "speed", 2);

  // Semantic mismatch a generic service cannot know: mph -> km/h.
  VisibleGatewayJob job{
      "unit-adapter", "display", event_in("msgMph"), event_out("msgKmh"),
      [&](const spec::MessageInstance& inst, Instant) -> std::optional<spec::MessageInstance> {
        spec::MessageInstance out = spec::make_instance(out_spec);
        const double mph = static_cast<double>(inst.element("speed")->fields[0].as_int());
        out.element("speed")->fields[0] =
            ta::Value{static_cast<std::int64_t>(mph * 1.609344)};
        out.element("speed")->fields[1] = inst.element("speed")->fields[1];
        return out;
      }};

  job.input().deposit(make_state_instance(in_spec, 100, at(0)), at(0));
  job.step(at(1));
  ASSERT_TRUE(job.output().has_data());
  const auto out = job.output().read();
  EXPECT_EQ(out->message(), "msgKmh");
  EXPECT_EQ(out->element("speed")->fields[0].as_int(), 160);
  EXPECT_EQ(job.forwarded(), 1u);
}

TEST(VisibleGatewayTest, DrainsWholeEventQueuePerActivation) {
  const spec::MessageSpec ms = state_message("msgA", "v", 1);
  VisibleGatewayJob job{
      "copy", "dasB", event_in("msgA"), event_out("msgA"),
      [](const spec::MessageInstance& inst, Instant) { return inst; }};
  for (int i = 0; i < 5; ++i) job.input().deposit(make_state_instance(ms, i, at(i)), at(i));
  job.step(at(10));
  EXPECT_EQ(job.forwarded(), 5u);
  EXPECT_EQ(job.output().queue_depth(), 5u);
}

TEST(VisibleGatewayTest, TransformCanDrop) {
  const spec::MessageSpec ms = state_message("msgA", "v", 1);
  VisibleGatewayJob job{
      "filter", "dasB", event_in("msgA"), event_out("msgA"),
      [](const spec::MessageInstance& inst,
         Instant) -> std::optional<spec::MessageInstance> {
        if (inst.element("v")->fields[0].as_int() < 0) return std::nullopt;
        return inst;
      }};
  job.input().deposit(make_state_instance(ms, 5, at(0)), at(0));
  job.input().deposit(make_state_instance(ms, -5, at(1)), at(1));
  job.step(at(2));
  EXPECT_EQ(job.forwarded(), 1u);
  EXPECT_EQ(job.dropped(), 1u);
}

TEST(VisibleGatewayTest, StatePortForwardsFreshestOnce) {
  const spec::MessageSpec ms = state_message("msgA", "v", 1);
  spec::PortSpec in;
  in.message = "msgA";
  in.direction = spec::DataDirection::kInput;
  in.semantics = spec::InfoSemantics::kState;
  in.period = 10_ms;
  spec::PortSpec out = in;
  out.direction = spec::DataDirection::kOutput;
  VisibleGatewayJob job{"state-copy", "dasB", in, out,
                        [](const spec::MessageInstance& inst, Instant) { return inst; }};
  job.input().deposit(make_state_instance(ms, 1, at(0)), at(0));
  job.input().deposit(make_state_instance(ms, 2, at(1)), at(1));
  job.step(at(2));
  EXPECT_EQ(job.forwarded(), 1u);  // one per activation, freshest value
  EXPECT_EQ(job.output().read()->element("v")->fields[0].as_int(), 2);
}

}  // namespace
}  // namespace decos::core
