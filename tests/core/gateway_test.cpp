#include "core/virtual_gateway.hpp"

#include <gtest/gtest.h>

#include "../helpers.hpp"

namespace decos::core {
namespace {

using decos::testing::make_state_instance;
using decos::testing::state_message;
using namespace decos::literals;

Instant at(std::int64_t ms) { return Instant::origin() + Duration::milliseconds(ms); }

spec::PortSpec tt_input(const std::string& message, Duration period) {
  spec::PortSpec ps;
  ps.message = message;
  ps.direction = spec::DataDirection::kInput;
  ps.semantics = spec::InfoSemantics::kState;
  ps.period = period;
  // Wide explicit interarrival bounds: these tests exercise the
  // repository/accuracy machinery, not the temporal automata (which have
  // their own suite below), so keep the synthesized automaton permissive.
  ps.min_interarrival = Duration::nanoseconds(1);
  ps.max_interarrival = Duration::seconds(3600);
  return ps;
}

spec::PortSpec tt_output(const std::string& message, Duration period) {
  spec::PortSpec ps;
  ps.message = message;
  ps.direction = spec::DataDirection::kOutput;
  ps.semantics = spec::InfoSemantics::kState;
  ps.period = period;
  return ps;
}

spec::PortSpec et_input(const std::string& message, Duration tmin, Duration tmax,
                        std::size_t queue = 16) {
  spec::PortSpec ps;
  ps.message = message;
  ps.direction = spec::DataDirection::kInput;
  ps.semantics = spec::InfoSemantics::kEvent;
  ps.paradigm = spec::ControlParadigm::kEventTriggered;
  ps.min_interarrival = tmin;
  ps.max_interarrival = tmax;
  ps.queue_capacity = queue;
  return ps;
}

spec::PortSpec et_output(const std::string& message, std::size_t queue = 16) {
  spec::PortSpec ps;
  ps.message = message;
  ps.direction = spec::DataDirection::kOutput;
  ps.semantics = spec::InfoSemantics::kEvent;
  ps.paradigm = spec::ControlParadigm::kEventTriggered;
  ps.queue_capacity = queue;
  return ps;
}

/// Wheel-speed sharing: powertrain DAS produces msgwheel; the comfort
/// DAS consumes it as msgnav (same element name on both sides).
spec::LinkSpec wheel_link_a() {
  spec::LinkSpec ls{"powertrain"};
  ls.add_message(state_message("msgwheel", "wheelspeed", 100));
  ls.add_port(tt_input("msgwheel", 10_ms));
  return ls;
}

spec::LinkSpec wheel_link_b(Duration out_period = 20_ms) {
  spec::LinkSpec ls{"comfort"};
  ls.add_message(state_message("msgnav", "wheelspeed", 200));
  ls.add_port(tt_output("msgnav", out_period));
  return ls;
}

spec::MessageInstance wheel_instance(const spec::LinkSpec& link, int v, Instant t) {
  return make_state_instance(*link.message("msgwheel"), v, t);
}

TEST(GatewayTest, FinalizeBuildsPortsAndRepository) {
  VirtualGateway gw{"wheel", wheel_link_a(), wheel_link_b()};
  gw.finalize();
  EXPECT_TRUE(gw.finalized());
  EXPECT_NE(gw.link_a().port("msgwheel"), nullptr);
  EXPECT_NE(gw.link_b().port("msgnav"), nullptr);
  EXPECT_TRUE(gw.repository().is_declared("wheelspeed"));
  EXPECT_NE(gw.link_a().recv_interpreter("msgwheel"), nullptr);
  EXPECT_NE(gw.link_b().send_interpreter("msgnav"), nullptr);
  EXPECT_THROW(gw.finalize(), SpecError);  // double finalize
}

TEST(GatewayTest, UseBeforeFinalizeThrows) {
  VirtualGateway gw{"wheel", wheel_link_a(), wheel_link_b()};
  EXPECT_THROW(gw.dispatch(at(0)), SpecError);
  EXPECT_THROW(gw.on_input(0, spec::MessageInstance{"x"}, at(0)), SpecError);
}

TEST(GatewayTest, ForwardsStateAcrossLinks) {
  VirtualGateway gw{"wheel", wheel_link_a(), wheel_link_b()};
  gw.finalize();
  gw.on_input(0, wheel_instance(gw.link_a().spec(), 42, at(0)), at(0));
  EXPECT_EQ(gw.stats().messages_in, 1u);
  EXPECT_EQ(gw.stats().messages_admitted, 1u);
  EXPECT_EQ(gw.stats().elements_stored, 1u);

  gw.dispatch(at(1));
  EXPECT_EQ(gw.stats().messages_constructed, 1u);
  vn::Port* out = gw.link_b().port("msgnav");
  ASSERT_TRUE(out->has_data());
  const auto inst = out->read();
  EXPECT_EQ(inst->message(), "msgnav");
  EXPECT_EQ(inst->element("wheelspeed")->fields[0].as_int(), 42);
}

TEST(GatewayTest, PushInputPortFeedsGateway) {
  VirtualGateway gw{"wheel", wheel_link_a(), wheel_link_b()};
  gw.finalize();
  // Depositing into the link's input port (as the VN would) triggers
  // on_input through the push notification.
  gw.link_a().port("msgwheel")->deposit(wheel_instance(gw.link_a().spec(), 7, at(0)), at(0));
  EXPECT_EQ(gw.stats().messages_in, 1u);
  gw.dispatch(at(1));
  EXPECT_TRUE(gw.link_b().port("msgnav")->has_data());
}

TEST(GatewayTest, TtOutputPacedByPeriod) {
  VirtualGateway gw{"wheel", wheel_link_a(), wheel_link_b(20_ms)};
  gw.finalize();
  // Fresh input every 5ms; output is a 20ms TT port.
  for (int i = 0; i < 8; ++i) gw.on_input(0, wheel_instance(gw.link_a().spec(), i, at(i * 5)), at(i * 5));
  for (int ms = 0; ms <= 40; ++ms) gw.dispatch(at(ms));
  // Emissions at ~0, 20, 40ms.
  EXPECT_EQ(gw.stats().messages_constructed, 3u);
}

TEST(GatewayTest, StaleStateNotForwarded) {
  GatewayConfig config;
  config.default_d_acc = 30_ms;
  VirtualGateway gw{"wheel", wheel_link_a(), wheel_link_b(), config};
  gw.finalize();
  gw.on_input(0, wheel_instance(gw.link_a().spec(), 1, at(0)), at(0));
  gw.dispatch(at(50));  // image expired at t=30
  EXPECT_EQ(gw.stats().messages_constructed, 0u);
  EXPECT_GT(gw.stats().construction_held, 0u);
  // The missing element was requested (b_req set).
  EXPECT_TRUE(gw.repository().requested("wheelspeed"));
  // Fresh input satisfies the request and the next dispatch forwards.
  gw.on_input(0, wheel_instance(gw.link_a().spec(), 2, at(55)), at(55));
  EXPECT_FALSE(gw.repository().requested("wheelspeed"));
  gw.dispatch(at(56));
  EXPECT_EQ(gw.stats().messages_constructed, 1u);
}

TEST(GatewayTest, AccuracyAblationForwardsStaleImages) {
  GatewayConfig config;
  config.default_d_acc = 30_ms;
  config.accuracy_check_at_store = true;  // ablation: no construction check
  VirtualGateway gw{"wheel", wheel_link_a(), wheel_link_b(), config};
  gw.finalize();
  gw.on_input(0, wheel_instance(gw.link_a().spec(), 1, at(0)), at(0));
  gw.dispatch(at(50));
  EXPECT_EQ(gw.stats().messages_constructed, 1u);  // stale forward
}

TEST(GatewayTest, HorizonMatchesEq2) {
  GatewayConfig config;
  config.default_d_acc = 40_ms;
  VirtualGateway gw{"wheel", wheel_link_a(), wheel_link_b(), config};
  gw.finalize();
  gw.on_input(0, wheel_instance(gw.link_a().spec(), 1, at(10)), at(10));
  EXPECT_EQ(gw.horizon(1, "msgnav", at(20)), 30_ms);
  EXPECT_LT(gw.horizon(1, "msgnav", at(60)), 0_ns);
  EXPECT_THROW(gw.horizon(1, "ghost", at(0)), SpecError);
}

TEST(GatewayTest, UnknownMessageBlocked) {
  VirtualGateway gw{"wheel", wheel_link_a(), wheel_link_b()};
  gw.finalize();
  gw.on_input(0, spec::MessageInstance{"mystery"}, at(0));
  EXPECT_EQ(gw.stats().blocked_unknown, 1u);
  EXPECT_EQ(gw.stats().messages_admitted, 0u);
}

// --- temporal filtering / error containment --------------------------------

spec::LinkSpec et_wheel_link_a() {
  spec::LinkSpec ls{"powertrain"};
  ls.add_message(state_message("msgwheel", "wheelspeed", 100));
  ls.add_port(et_input("msgwheel", 4_ms, 100_ms));
  return ls;
}

TEST(GatewayTest, EarlyMessageBlockedAndAutomatonErrors) {
  VirtualGateway gw{"wheel", et_wheel_link_a(), wheel_link_b()};
  gw.finalize();
  gw.on_input(0, wheel_instance(gw.link_a().spec(), 1, at(0)), at(0));
  gw.on_input(0, wheel_instance(gw.link_a().spec(), 2, at(1)), at(1));  // 1ms < tmin
  EXPECT_EQ(gw.stats().messages_admitted, 1u);
  EXPECT_EQ(gw.stats().blocked_temporal, 1u);
  EXPECT_EQ(gw.stats().automaton_errors, 1u);
  // Without restart the automaton stays in error; further traffic blocked.
  gw.on_input(0, wheel_instance(gw.link_a().spec(), 3, at(20)), at(20));
  EXPECT_EQ(gw.stats().blocked_temporal, 2u);
}

TEST(GatewayTest, AutoRestartAfterDelay) {
  GatewayConfig config;
  config.restart_delay = 50_ms;
  VirtualGateway gw{"wheel", et_wheel_link_a(), wheel_link_b(), config};
  gw.finalize();
  gw.on_input(0, wheel_instance(gw.link_a().spec(), 1, at(0)), at(0));
  gw.on_input(0, wheel_instance(gw.link_a().spec(), 2, at(1)), at(1));  // violation
  EXPECT_EQ(gw.stats().automaton_errors, 1u);
  gw.dispatch(at(10));  // too early for restart
  gw.on_input(0, wheel_instance(gw.link_a().spec(), 3, at(11)), at(11));
  EXPECT_EQ(gw.stats().blocked_temporal, 2u);
  gw.dispatch(at(60));  // restart due
  EXPECT_EQ(gw.stats().restarts, 1u);
  gw.on_input(0, wheel_instance(gw.link_a().spec(), 4, at(61)), at(61));
  EXPECT_EQ(gw.stats().messages_admitted, 2u);
}

TEST(GatewayTest, SilenceTimeoutDetectedByDispatchPoll) {
  VirtualGateway gw{"wheel", et_wheel_link_a(), wheel_link_b()};
  gw.finalize();
  gw.on_input(0, wheel_instance(gw.link_a().spec(), 1, at(0)), at(0));
  gw.dispatch(at(50));
  EXPECT_EQ(gw.stats().automaton_errors, 0u);
  gw.dispatch(at(150));  // tmax = 100ms exceeded
  EXPECT_EQ(gw.stats().automaton_errors, 1u);
}

TEST(GatewayTest, FilteringDisabledForwardsViolations) {
  GatewayConfig config;
  config.temporal_filtering = false;  // ablation E1
  VirtualGateway gw{"wheel", et_wheel_link_a(), wheel_link_b(), config};
  gw.finalize();
  gw.on_input(0, wheel_instance(gw.link_a().spec(), 1, at(0)), at(0));
  gw.on_input(0, wheel_instance(gw.link_a().spec(), 2, at(1)), at(1));  // early, but admitted
  EXPECT_EQ(gw.stats().messages_admitted, 2u);
  EXPECT_EQ(gw.stats().blocked_temporal, 0u);
}

// --- naming -----------------------------------------------------------------

TEST(GatewayTest, RenameResolvesIncoherentNaming) {
  // The comfort DAS calls the same entity "speedinfo".
  spec::LinkSpec link_b{"comfort"};
  link_b.add_message(state_message("msgnav", "speedinfo", 200));
  link_b.add_port(tt_output("msgnav", 10_ms));

  VirtualGateway gw{"wheel", wheel_link_a(), std::move(link_b)};
  gw.link_b().add_rename("speedinfo", "wheelspeed");
  gw.finalize();

  gw.on_input(0, wheel_instance(gw.link_a().spec(), 55, at(0)), at(0));
  gw.dispatch(at(1));
  ASSERT_TRUE(gw.link_b().port("msgnav")->has_data());
  EXPECT_EQ(gw.link_b().port("msgnav")->read()->element("speedinfo")->fields[0].as_int(), 55);
  // Only one repository entry: both link names map onto it.
  EXPECT_EQ(gw.repository().element_count(), 1u);
}

TEST(GatewayTest, SameNameDifferentEntitiesKeptApart) {
  // Both DASes use element name "sensor" for different entities: keep
  // them apart by mapping each side to its own repository name.
  spec::LinkSpec a{"dasA"};
  a.add_message(state_message("msgA", "sensor", 1));
  a.add_port(tt_input("msgA", 10_ms));
  spec::LinkSpec b{"dasB"};
  b.add_message(state_message("msgB", "sensor", 2));
  b.add_port(tt_input("msgB", 10_ms));

  VirtualGateway gw{"g", std::move(a), std::move(b)};
  gw.link_a().add_rename("sensor", "dasA.sensor");
  gw.link_b().add_rename("sensor", "dasB.sensor");
  gw.finalize();
  EXPECT_TRUE(gw.repository().is_declared("dasA.sensor"));
  EXPECT_TRUE(gw.repository().is_declared("dasB.sensor"));
  EXPECT_FALSE(gw.repository().is_declared("sensor"));
}

// --- event-triggered outputs -------------------------------------------------

TEST(GatewayTest, EtOutputEmitsImmediatelyOnInput) {
  spec::LinkSpec link_b{"comfort"};
  link_b.add_message(state_message("msgnav", "wheelspeed", 200));
  link_b.add_port(et_output("msgnav"));

  VirtualGateway gw{"wheel", wheel_link_a(), std::move(link_b)};
  gw.finalize();
  gw.on_input(0, wheel_instance(gw.link_a().spec(), 5, at(0)), at(0));
  // No dispatch needed: the ET output fired during on_input.
  EXPECT_EQ(gw.stats().messages_constructed, 1u);
  EXPECT_TRUE(gw.link_b().port("msgnav")->has_data());
}

TEST(GatewayTest, EmitterOverrideReceivesInstances) {
  spec::LinkSpec link_b{"comfort"};
  link_b.add_message(state_message("msgnav", "wheelspeed", 200));
  link_b.add_port(et_output("msgnav"));

  VirtualGateway gw{"wheel", wheel_link_a(), std::move(link_b)};
  gw.finalize();
  std::vector<int> emitted;
  gw.link_b().set_emitter("msgnav", [&](const spec::MessageInstance& inst) {
    emitted.push_back(static_cast<int>(inst.element("wheelspeed")->fields[0].as_int()));
  });
  gw.on_input(0, wheel_instance(gw.link_a().spec(), 11, at(0)), at(0));
  ASSERT_EQ(emitted.size(), 1u);
  EXPECT_EQ(emitted[0], 11);
  // The default output port was bypassed.
  EXPECT_FALSE(gw.link_b().port("msgnav")->has_data());
}

// --- event elements through the repository -----------------------------------

TEST(GatewayTest, EventElementsForwardedExactlyOnce) {
  spec::LinkSpec a{"dasA"};
  a.add_message(state_message("msgE", "burst", 9));
  {
    spec::PortSpec ps = et_input("msgE", 0_ms, Duration::max());
    a.add_port(ps);
  }
  spec::LinkSpec b{"dasB"};
  b.add_message(state_message("msgF", "burst", 10));
  b.add_port(et_output("msgF"));

  VirtualGateway gw{"g", std::move(a), std::move(b)};
  gw.set_element_config("burst", spec::InfoSemantics::kEvent, 50_ms, 8);
  gw.finalize();

  for (int i = 0; i < 3; ++i)
    gw.on_input(0, make_state_instance(*gw.link_a().spec().message("msgE"), i, at(i * 10)),
                at(i * 10));
  // Each arrival triggered an immediate ET emission: exactly 3 out.
  EXPECT_EQ(gw.stats().messages_constructed, 3u);
  EXPECT_EQ(gw.repository().queue_depth("burst"), 0u);
  // Values preserved in order.
  vn::Port* out = gw.link_b().port("msgF");
  for (int i = 0; i < 3; ++i) EXPECT_EQ(out->read()->element("burst")->fields[0].as_int(), i);
}

// --- pull inputs --------------------------------------------------------------

TEST(GatewayTest, PullInputDrainedAtDispatch) {
  spec::LinkSpec a{"dasA"};
  a.add_message(state_message("msgwheel", "wheelspeed", 100));
  {
    spec::PortSpec ps = tt_input("msgwheel", 10_ms);
    ps.interaction = spec::Interaction::kPull;
    a.add_port(ps);
  }
  VirtualGateway gw{"g", std::move(a), wheel_link_b()};
  gw.finalize();
  gw.link_a().port("msgwheel")->deposit(wheel_instance(gw.link_a().spec(), 9, at(0)), at(0));
  EXPECT_EQ(gw.stats().messages_in, 0u);  // pull: nothing yet
  gw.dispatch(at(1));
  EXPECT_EQ(gw.stats().messages_in, 1u);
  EXPECT_EQ(gw.stats().messages_constructed, 1u);
}

}  // namespace
}  // namespace decos::core
