// Transfer semantics: event<->state conversion through the gateway
// repository, reproducing the paper's Fig. 6 sliding-roof scenario.
#include <gtest/gtest.h>

#include "../helpers.hpp"
#include "core/virtual_gateway.hpp"
#include "spec/linkspec_xml.hpp"

namespace decos::core {
namespace {

using decos::testing::sliding_roof_spec;
using namespace decos::literals;

Instant at(std::int64_t ms) { return Instant::origin() + Duration::milliseconds(ms); }

/// Link A: the comfort DAS produces msgslidingroof (event semantics).
spec::LinkSpec roof_link_a() {
  spec::LinkSpec ls{"comfort"};
  ls.add_message(sliding_roof_spec());
  spec::PortSpec in;
  in.message = "msgslidingroof";
  in.direction = spec::DataDirection::kInput;
  in.semantics = spec::InfoSemantics::kEvent;
  in.paradigm = spec::ControlParadigm::kEventTriggered;
  in.queue_capacity = 16;
  ls.add_port(in);

  // Fig. 6 transfer semantics: derive MovementState from MovementEvent.
  spec::TransferRule rule;
  rule.target = "movementstate";
  rule.source = "movementevent";
  spec::TransferFieldRule statevalue;
  statevalue.name = "statevalue";
  statevalue.init = ta::Value{0};
  statevalue.semantics = "state";
  statevalue.update = ta::parse_expression("statevalue + valuechange").value();
  rule.fields.push_back(std::move(statevalue));
  spec::TransferFieldRule obstime;
  obstime.name = "observationtime";
  obstime.init = ta::Value{0};
  obstime.semantics = "state";
  obstime.update = ta::parse_expression("eventtime").value();
  rule.fields.push_back(std::move(obstime));
  ls.add_transfer_rule(std::move(rule));
  return ls;
}

/// Link B: the display DAS consumes the roof position as state.
spec::LinkSpec roof_link_b() {
  spec::LinkSpec ls{"display"};
  spec::MessageSpec ms{"msgroofstate"};
  spec::ElementSpec key;
  key.name = "name";
  key.key = true;
  key.fields.push_back(spec::FieldSpec{"id", spec::FieldType::kInt16, 0, ta::Value{900}});
  ms.add_element(std::move(key));
  spec::ElementSpec state;
  state.name = "movementstate";
  state.convertible = true;
  state.fields.push_back(spec::FieldSpec{"statevalue", spec::FieldType::kInt32, 0, std::nullopt});
  state.fields.push_back(
      spec::FieldSpec{"observationtime", spec::FieldType::kTimestamp, 0, std::nullopt});
  ms.add_element(std::move(state));
  ls.add_message(std::move(ms));

  spec::PortSpec out;
  out.message = "msgroofstate";
  out.direction = spec::DataDirection::kOutput;
  out.semantics = spec::InfoSemantics::kState;
  out.period = 10_ms;
  ls.add_port(out);
  return ls;
}

spec::MessageInstance roof_event(const spec::LinkSpec& link, int change, Instant when) {
  spec::MessageInstance inst = spec::make_instance(*link.message("msgslidingroof"));
  inst.element("movementevent")->fields[0] = ta::Value{change};
  inst.element("movementevent")->fields[1] = ta::Value{when};
  inst.set_send_time(when);
  return inst;
}

TEST(ConversionTest, EventToStateAccumulation) {
  VirtualGateway gw{"roof", roof_link_a(), roof_link_b()};
  gw.finalize();

  // Movements: +30, +20, -10 percent.
  gw.on_input(0, roof_event(gw.link_a().spec(), 30, at(0)), at(0));
  gw.on_input(0, roof_event(gw.link_a().spec(), 20, at(10)), at(10));
  gw.on_input(0, roof_event(gw.link_a().spec(), -10, at(20)), at(20));
  EXPECT_EQ(gw.stats().conversions, 3u);

  gw.dispatch(at(21));
  vn::Port* out = gw.link_b().port("msgroofstate");
  ASSERT_TRUE(out->has_data());
  const auto inst = out->read();
  EXPECT_EQ(inst->element("movementstate")->fields[0].as_int(), 40);  // 30+20-10
  EXPECT_EQ(inst->element("movementstate")->fields[1].as_instant(), at(20));
}

TEST(ConversionTest, DerivedStateRespectsTemporalAccuracy) {
  GatewayConfig config;
  config.default_d_acc = 15_ms;
  VirtualGateway gw{"roof", roof_link_a(), roof_link_b(), config};
  gw.finalize();
  gw.on_input(0, roof_event(gw.link_a().spec(), 50, at(0)), at(0));
  gw.dispatch(at(30));  // derived image expired at 15ms
  EXPECT_EQ(gw.stats().messages_constructed, 0u);
  // A new movement refreshes the derived element.
  gw.on_input(0, roof_event(gw.link_a().spec(), 5, at(31)), at(31));
  gw.dispatch(at(32));
  EXPECT_EQ(gw.stats().messages_constructed, 1u);
  EXPECT_EQ(gw.link_b().port("msgroofstate")->read()->element("movementstate")->fields[0].as_int(),
            55);
}

TEST(ConversionTest, RuleInitialValuesUsedBeforeFirstSource) {
  VirtualGateway gw{"roof", roof_link_a(), roof_link_b()};
  gw.finalize();
  // Before any movement event nothing is constructible.
  gw.dispatch(at(0));
  EXPECT_EQ(gw.stats().messages_constructed, 0u);
  // The first event starts from init=0.
  gw.on_input(0, roof_event(gw.link_a().spec(), 7, at(1)), at(1));
  gw.dispatch(at(2));
  EXPECT_EQ(gw.link_b().port("msgroofstate")->read()->element("movementstate")->fields[0].as_int(),
            7);
}

TEST(ConversionTest, NonConvertibleElementsDiscarded) {
  VirtualGateway gw{"roof", roof_link_a(), roof_link_b()};
  gw.finalize();
  auto inst = roof_event(gw.link_a().spec(), 1, at(0));
  inst.element("fullclosure")->fields[0] = ta::Value{true};
  gw.on_input(0, inst, at(0));
  // Only movementevent was stored ("fullclosure" is local to DAS A);
  // the derived movementstate is the second repository entry.
  EXPECT_FALSE(gw.repository().is_declared("fullclosure"));
  EXPECT_TRUE(gw.repository().is_declared("movementevent"));
  EXPECT_TRUE(gw.repository().is_declared("movementstate"));
}

TEST(ConversionTest, XmlDrivenGatewayMatchesProgrammatic) {
  // Drive the same scenario from the Fig. 6 XML surface syntax.
  const char* xml_a = R"(<linkspec>
    <das>comfort</das>
    <message name="msgslidingroof">
      <element name="name" key="yes"><field name="id">
        <type length="16">integer</type><value>731</value></field></element>
      <element name="movementevent" conv="yes">
        <field name="valuechange"><type length="16">integer</type></field>
        <field name="eventtime"><type>timestamp</type></field>
      </element>
      <element name="fullclosure">
        <field name="trigger"><type>boolean</type></field></element>
    </message>
    <transfersemantics>
      <element name="movementstate" source="movementevent">
        <field name="statevalue" init="0" semantics="state">statevalue=statevalue+valuechange</field>
        <field name="observationtime" init="0" semantics="state">observationtime=eventtime</field>
      </element>
    </transfersemantics>
    <port message="msgslidingroof" direction="input" semantics="event" paradigm="et" queue="16"/>
  </linkspec>)";

  auto link_a = spec::parse_link_spec_xml(xml_a);
  ASSERT_TRUE(link_a.ok()) << link_a.error().to_string();

  VirtualGateway gw{"roof", std::move(link_a.value()), roof_link_b()};
  gw.finalize();
  gw.on_input(0, roof_event(gw.link_a().spec(), 30, at(0)), at(0));
  gw.on_input(0, roof_event(gw.link_a().spec(), 12, at(5)), at(5));
  gw.dispatch(at(6));
  EXPECT_EQ(gw.link_b().port("msgroofstate")->read()->element("movementstate")->fields[0].as_int(),
            42);
}

}  // namespace
}  // namespace decos::core
