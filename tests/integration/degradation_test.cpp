// Degradation awareness: the consistent diagnosis services (membership
// C4 + gateway automata) inform an application so it can switch to a
// fallback when its cross-DAS import dies -- the integrated
// architecture's answer to losing a shared resource.
//
// A navigation job consumes gateway-imported wheel speeds; when the
// gateway's host drops out of the membership, the job degrades to its
// (coarser) internal model instead of silently using stale data, and
// re-upgrades when the host returns.
#include <gtest/gtest.h>

#include <memory>

#include "../helpers.hpp"
#include "core/diagnosis.hpp"
#include "core/gateway_job.hpp"
#include "core/virtual_gateway.hpp"
#include "core/wiring.hpp"
#include "fault/plan.hpp"
#include "platform/cluster.hpp"
#include "vn/et_vn.hpp"
#include "vn/tt_vn.hpp"

namespace decos {
namespace {

using decos::testing::make_state_instance;
using decos::testing::state_message;
using namespace decos::literals;

TEST(DegradationTest, AppSwitchesToFallbackWhenGatewayHostDies) {
  platform::ClusterConfig config;
  config.nodes = 3;  // 0: sensor DAS, 1: consumer DAS, 2: gateway host
  config.allocations = {{1, "dasA", 32, {0}}, {2, "dasB", 32, {1, 2}}};
  platform::Cluster cluster{config};

  vn::TtVirtualNetwork vn_a{"vn-a", 1};
  vn_a.register_message(state_message("msgA", "speed", 1));
  vn::EtVirtualNetwork vn_b{"vn-b", 2};

  spec::LinkSpec link_a{"dasA"};
  link_a.add_message(state_message("msgA", "speed", 1));
  {
    spec::PortSpec in;
    in.message = "msgA";
    in.direction = spec::DataDirection::kInput;
    in.semantics = spec::InfoSemantics::kState;
    in.period = 10_ms;
    in.min_interarrival = 1_us;
    in.max_interarrival = Duration::seconds(3600);
    link_a.add_port(in);
  }
  spec::LinkSpec link_b{"dasB"};
  link_b.add_message(state_message("msgB", "speed", 2));
  {
    spec::PortSpec out;
    out.message = "msgB";
    out.direction = spec::DataDirection::kOutput;
    out.semantics = spec::InfoSemantics::kState;
    out.paradigm = spec::ControlParadigm::kEventTriggered;
    out.queue_capacity = 8;
    link_b.add_port(out);
  }
  core::VirtualGateway gateway{"import", std::move(link_a), std::move(link_b)};
  gateway.finalize();
  core::wire_tt_link(gateway, 0, vn_a, cluster.controller(2), {});
  core::wire_et_link(gateway, 1, vn_b, cluster.controller(2), cluster.vn_slots(2, 2));
  cluster.component(2)
      .add_partition("gw", "architecture", 0_ms, 1_ms)
      .add_job(std::make_unique<core::GatewayJob>(gateway));

  // Producer on node 0.
  platform::Partition& p0 = cluster.component(0).add_partition("p", "dasA", 1_ms, 1_ms);
  platform::FunctionJob& producer =
      p0.add_function_job("sensor", [&](platform::FunctionJob& self, Instant now) {
        self.ports()[0]->deposit(
            make_state_instance(*vn_a.message_spec("msgA"),
                                static_cast<int>(self.activations()), now),
            now);
      });
  {
    spec::PortSpec out;
    out.message = "msgA";
    out.direction = spec::DataDirection::kOutput;
    out.semantics = spec::InfoSemantics::kState;
    out.period = 10_ms;
    vn_a.attach_sender(cluster.controller(0), producer.add_port(out), cluster.vn_slots(1, 0));
  }

  // Diagnosis-aware consumer on node 1: uses the import while node 2 is
  // a member; degrades to the fallback model otherwise.
  core::DiagnosisService diagnosis{*cluster.membership(1)};
  diagnosis.watch(gateway);
  std::uint64_t cycles_on_import = 0;
  std::uint64_t cycles_on_fallback = 0;
  bool saw_degraded_report = false;
  platform::Partition& p1 = cluster.component(1).add_partition("c", "dasB", 2_ms, 1_ms);
  platform::FunctionJob& consumer =
      p1.add_function_job("navigation", [&](platform::FunctionJob& self, Instant) {
        while (self.ports()[0]->read()) {
        }
        const core::ClusterHealth health = diagnosis.report();
        const bool gateway_alive =
            std::find(health.failed_nodes.begin(), health.failed_nodes.end(), 2u) ==
            health.failed_nodes.end();
        if (gateway_alive) {
          ++cycles_on_import;
        } else {
          ++cycles_on_fallback;
          saw_degraded_report = !health.all_green();
        }
      });
  {
    spec::PortSpec in;
    in.message = "msgB";
    in.direction = spec::DataDirection::kInput;
    in.semantics = spec::InfoSemantics::kEvent;
    in.paradigm = spec::ControlParadigm::kEventTriggered;
    in.queue_capacity = 32;
    vn_b.attach_receiver(cluster.controller(1), consumer.add_port(in));
  }

  // Gateway host gone between 300ms and 600ms.
  fault::FaultPlan plan{cluster.simulator()};
  plan.crash(cluster.controller(2), Instant::origin() + 300_ms, 300_ms);

  cluster.start();
  cluster.run_for(1_s);

  // ~100 cycles: import for ~70 of them, fallback for the ~30 where node
  // 2 was out of the membership (detection lag of a round or two).
  EXPECT_GT(cycles_on_import, 60u);
  EXPECT_LT(cycles_on_import, 75u);
  EXPECT_GT(cycles_on_fallback, 25u);
  EXPECT_LT(cycles_on_fallback, 35u);
  EXPECT_TRUE(saw_degraded_report);
  // After recovery the import resumed: the gateway forwarded again.
  EXPECT_GT(gateway.stats().messages_constructed, 60u);
}

}  // namespace
}  // namespace decos
