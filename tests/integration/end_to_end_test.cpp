// Full-stack integration: a three-node DECOS cluster with two DASes.
//
//   node 0: powertrain DAS -- wheel-speed sensor job on a TT virtual network
//   node 1: comfort DAS    -- navigation display job on an ET virtual network
//   node 2: architecture   -- hidden virtual gateway in its own partition
//
// plus clock synchronization and membership on every node. This is the
// paper's ABS -> navigation sensor-sharing scenario end to end over the
// simulated time-triggered backbone.
#include <gtest/gtest.h>

#include <memory>

#include "../helpers.hpp"
#include "core/gateway_job.hpp"
#include "fault/plan.hpp"
#include "core/virtual_gateway.hpp"
#include "core/wiring.hpp"
#include "platform/component.hpp"
#include "services/clock_sync.hpp"
#include "services/membership.hpp"
#include "vn/encapsulation.hpp"
#include "vn/et_vn.hpp"
#include "vn/tt_vn.hpp"

namespace decos {
namespace {

using namespace decos::literals;
using decos::testing::make_state_instance;
using decos::testing::state_message;

constexpr tt::VnId kPowertrainVn = 1;
constexpr tt::VnId kComfortVn = 2;

struct EndToEndFixture : ::testing::Test {
  EndToEndFixture() {
    // Schedule: 3 core slots + TT VN slots (node 0) + ET VN slots (nodes 1, 2).
    const std::vector<vn::VnAllocation> allocations = {
        {kPowertrainVn, "powertrain", 32, {0}},
        {kComfortVn, "comfort", 32, {1, 2, 2}},
    };
    auto schedule = vn::EncapsulationService::build_schedule(10_ms, 3, allocations);
    bus = std::make_unique<tt::TtBus>(sim, std::move(schedule.value()));

    const double drift[] = {40.0, -35.0, 10.0};
    for (tt::NodeId i = 0; i < 3; ++i) {
      controllers.push_back(
          std::make_unique<tt::Controller>(sim, *bus, i, sim::DriftingClock{drift[i]}));
      syncs.push_back(std::make_unique<services::ClockSync>(*controllers.back()));
      memberships.push_back(std::make_unique<services::Membership>(
          *controllers.back(), services::MembershipConfig{3, 1}));
      components.push_back(std::make_unique<platform::Component>(sim, *controllers.back(), 10_ms));
    }

    encapsulation.register_vn(kPowertrainVn, "powertrain");
    encapsulation.register_vn(kComfortVn, "comfort");

    tt_vn = std::make_unique<vn::TtVirtualNetwork>("powertrain-vn", kPowertrainVn);
    tt_vn->register_message(state_message("msgwheel", "wheelspeed", 100));
    et_vn = std::make_unique<vn::EtVirtualNetwork>("comfort-vn", kComfortVn);

    build_gateway();
    wire_jobs();
  }

  void build_gateway() {
    // Link A: TT side (powertrain), consumes msgwheel.
    spec::LinkSpec link_a{"powertrain"};
    link_a.add_message(state_message("msgwheel", "wheelspeed", 100));
    {
      spec::PortSpec in;
      in.message = "msgwheel";
      in.direction = spec::DataDirection::kInput;
      in.semantics = spec::InfoSemantics::kState;
      in.period = 10_ms;
      link_a.add_port(in);
    }
    // Link B: ET side (comfort), produces msgnav.
    spec::LinkSpec link_b{"comfort"};
    link_b.add_message(state_message("msgnav", "wheelspeed", 200));
    {
      spec::PortSpec out;
      out.message = "msgnav";
      out.direction = spec::DataDirection::kOutput;
      out.semantics = spec::InfoSemantics::kState;
      out.paradigm = spec::ControlParadigm::kEventTriggered;
      out.queue_capacity = 16;
      link_b.add_port(out);
    }
    gateway = std::make_unique<core::VirtualGateway>("wheel-share", std::move(link_a),
                                                     std::move(link_b));
    gateway->finalize();

    // Gateway hosted on node 2, wired to both VNs.
    core::wire_tt_link(*gateway, 0, *tt_vn, *controllers[2], {});
    core::wire_et_link(*gateway, 1, *et_vn, *controllers[2],
                       vn_slots_of(kComfortVn, 2));

    platform::Partition& partition =
        components[2]->add_partition("gw", "architecture", 0_ms, 1_ms);
    partition.add_job(std::make_unique<core::GatewayJob>(*gateway));
  }

  void wire_jobs() {
    // Sensor job on node 0 (powertrain partition).
    platform::Partition& p0 = components[0]->add_partition("pt", "powertrain", 1_ms, 1_ms);
    ASSERT_TRUE(encapsulation.check_attach("powertrain", kPowertrainVn).ok());
    platform::FunctionJob& sensor =
        p0.add_function_job("wheel-sensor", [this](platform::FunctionJob& self, Instant now) {
          auto inst = make_state_instance(*tt_vn->message_spec("msgwheel"),
                                          static_cast<int>(100 + self.activations()), now);
          self.ports()[0]->deposit(std::move(inst), now);
        });
    spec::PortSpec out;
    out.message = "msgwheel";
    out.direction = spec::DataDirection::kOutput;
    out.semantics = spec::InfoSemantics::kState;
    out.period = 10_ms;
    vn::Port& sensor_port = sensor.add_port(out);
    tt_vn->attach_sender(*controllers[0], sensor_port, vn_slots_of(kPowertrainVn, 0));

    // Display job on node 1 (comfort partition).
    platform::Partition& p1 = components[1]->add_partition("cf", "comfort", 2_ms, 1_ms);
    ASSERT_TRUE(encapsulation.check_attach("comfort", kComfortVn).ok());
    platform::FunctionJob& display =
        p1.add_function_job("nav-display", [this](platform::FunctionJob& self, Instant) {
          while (auto inst = self.ports()[0]->read()) {
            received.push_back(static_cast<int>(inst->element("wheelspeed")->fields[0].as_int()));
            latencies.push_back(sim.now() - inst->send_time());
          }
        });
    spec::PortSpec in;
    in.message = "msgnav";
    in.direction = spec::DataDirection::kInput;
    in.semantics = spec::InfoSemantics::kEvent;
    in.paradigm = spec::ControlParadigm::kEventTriggered;
    in.queue_capacity = 32;
    vn::Port& display_port = display.add_port(in);
    et_vn->attach_receiver(*controllers[1], display_port);
  }

  std::vector<std::size_t> vn_slots_of(tt::VnId vn, tt::NodeId node) const {
    std::vector<std::size_t> out;
    for (const std::size_t s : bus->schedule().slots_of_vn(vn))
      if (bus->schedule().slot(s).owner == node) out.push_back(s);
    return out;
  }

  void start_all() {
    for (auto& c : controllers) c->start();
    for (auto& c : components) c->start();
  }

  sim::Simulator sim;
  std::unique_ptr<tt::TtBus> bus;
  std::vector<std::unique_ptr<tt::Controller>> controllers;
  std::vector<std::unique_ptr<services::ClockSync>> syncs;
  std::vector<std::unique_ptr<services::Membership>> memberships;
  std::vector<std::unique_ptr<platform::Component>> components;
  vn::EncapsulationService encapsulation;
  std::unique_ptr<vn::TtVirtualNetwork> tt_vn;
  std::unique_ptr<vn::EtVirtualNetwork> et_vn;
  std::unique_ptr<core::VirtualGateway> gateway;
  std::vector<int> received;
  std::vector<Duration> latencies;
};

TEST_F(EndToEndFixture, SensorValuesCrossTheGateway) {
  start_all();
  sim.run_until(Instant::origin() + 500_ms);

  // ~50 sensor activations, each eventually visible in the comfort DAS.
  ASSERT_GT(received.size(), 30u);
  // Values are the 100+activation ramp, strictly increasing, no
  // duplicates (freshness gate) and none invented.
  for (std::size_t i = 1; i < received.size(); ++i) {
    EXPECT_GT(received[i], received[i - 1]);
    EXPECT_GE(received[i], 100);
    EXPECT_LE(received[i], 160);
  }
  EXPECT_GT(gateway->stats().messages_admitted, 30u);
  EXPECT_GT(gateway->stats().messages_constructed, 30u);
  EXPECT_EQ(gateway->stats().blocked_temporal, 0u);
}

TEST_F(EndToEndFixture, EndToEndLatencyBounded) {
  start_all();
  sim.run_until(Instant::origin() + 500_ms);
  ASSERT_FALSE(latencies.empty());
  for (const Duration latency : latencies) {
    EXPECT_GT(latency, 0_ns);
    // Sensor slot -> gateway -> ET slot -> display activation: all within
    // three 10ms rounds.
    EXPECT_LT(latency, 30_ms);
  }
}

TEST_F(EndToEndFixture, ServicesHoldTheClusterTogether) {
  start_all();
  sim.run_until(Instant::origin() + 500_ms);
  // Clock sync kept every node's clock within the guardian window: no
  // frame was ever blocked.
  EXPECT_EQ(bus->frames_blocked(), 0u);
  EXPECT_GT(syncs[0]->corrections(), 10u);
  // Membership sees everyone.
  for (const auto& m : memberships) EXPECT_EQ(m->member_count(), 3u);
}

TEST_F(EndToEndFixture, EncapsulationRejectsCrossDasAttach) {
  // A comfort job trying to reach the powertrain VN is refused.
  EXPECT_FALSE(encapsulation.check_attach("comfort", kPowertrainVn).ok());
  EXPECT_EQ(encapsulation.violations(), 1u);
}

TEST_F(EndToEndFixture, GatewayCrashSilencesForwardingOnly) {
  start_all();
  fault::FaultPlan plan{sim};
  plan.crash(*controllers[2], Instant::origin() + 200_ms);
  sim.run_until(Instant::origin() + 500_ms);
  const std::size_t delivered_before = received.size();
  // Forwarding stopped mid-run: far fewer than the ~50 a full run yields.
  EXPECT_LT(delivered_before, 30u);
  EXPECT_GT(delivered_before, 10u);
  // The powertrain DAS itself is unaffected: its sensor kept running.
  EXPECT_EQ(bus->frames_blocked(), 0u);
  // Membership on the surviving nodes diagnosed the gateway node.
  EXPECT_FALSE(memberships[0]->is_member(2));
  EXPECT_FALSE(memberships[1]->is_member(2));
}

}  // namespace
}  // namespace decos
