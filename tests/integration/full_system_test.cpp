// Capstone integration: the full Section-V-style automotive system.
//
//   DAS "xbywire"  (TT VN 1): car-dynamics sensor, node 0
//   DAS "comfort"  (ET VN 2): sliding-roof job emitting movement events,
//                             Pre-Safe actuator job, node 1
//   DAS "display"  (TT VN 3): roof-position display, node 3
//
//   gateway 1 (node 2): xbywire -> comfort (hazard export, value filter)
//   gateway 2 (node 2): comfort -> display (Fig. 6 event->state conversion)
//
// All core services run; a babbling fault and a timing-faulty stream are
// injected in the second half. The test asserts the end-to-end function
// of both gateways plus the containment invariants in one system.
#include <gtest/gtest.h>

#include <memory>

#include "../helpers.hpp"
#include "core/diagnosis.hpp"
#include "core/gateway_job.hpp"
#include "core/virtual_gateway.hpp"
#include "core/wiring.hpp"
#include "fault/plan.hpp"
#include "platform/cluster.hpp"
#include "vn/et_vn.hpp"
#include "vn/tt_vn.hpp"

namespace decos {
namespace {

using decos::testing::sliding_roof_spec;
using decos::testing::state_message;
using namespace decos::literals;

constexpr tt::VnId kXbyWireVn = 1;
constexpr tt::VnId kComfortVn = 2;
constexpr tt::VnId kDisplayVn = 3;

spec::MessageSpec hazard_message(const std::string& name, int id) {
  spec::MessageSpec ms{name};
  spec::ElementSpec key;
  key.name = "name";
  key.key = true;
  key.fields.push_back(spec::FieldSpec{"id", spec::FieldType::kInt16, 0, ta::Value{id}});
  ms.add_element(std::move(key));
  spec::ElementSpec hazard;
  hazard.name = "hazard";
  hazard.convertible = true;
  hazard.fields.push_back(spec::FieldSpec{"braking", spec::FieldType::kBoolean, 0, std::nullopt});
  hazard.fields.push_back(spec::FieldSpec{"lat_mg", spec::FieldType::kInt32, 0, std::nullopt});
  ms.add_element(std::move(hazard));
  return ms;
}

spec::MessageSpec roofstate_message() {
  spec::MessageSpec ms{"msgroofstate"};
  spec::ElementSpec key;
  key.name = "name";
  key.key = true;
  key.fields.push_back(spec::FieldSpec{"id", spec::FieldType::kInt16, 0, ta::Value{900}});
  ms.add_element(std::move(key));
  spec::ElementSpec st;
  st.name = "movementstate";
  st.convertible = true;
  st.fields.push_back(spec::FieldSpec{"statevalue", spec::FieldType::kInt32, 0, std::nullopt});
  st.fields.push_back(
      spec::FieldSpec{"observationtime", spec::FieldType::kTimestamp, 0, std::nullopt});
  ms.add_element(std::move(st));
  return ms;
}

TEST(FullSystemTest, ThreeDasTwoGatewayAutomotiveSystem) {
  platform::ClusterConfig config;
  config.nodes = 4;
  config.allocations = {
      {kXbyWireVn, "xbywire", 32, {0}},
      {kComfortVn, "comfort", 32, {1, 2}},
      {kDisplayVn, "display", 32, {2}},
  };
  config.drift_ppm = {30.0, -30.0, 15.0, -15.0};
  platform::Cluster cluster{config};

  vn::TtVirtualNetwork xbywire_vn{"xbywire-vn", kXbyWireVn};
  xbywire_vn.register_message(hazard_message("msgdyn", 300));
  vn::EtVirtualNetwork comfort_vn{"comfort-vn", kComfortVn};
  vn::TtVirtualNetwork display_vn{"display-vn", kDisplayVn};

  // -- gateway 1: xbywire -> comfort, with a plausibility filter ----------
  spec::LinkSpec g1a{"xbywire"};
  g1a.add_message(hazard_message("msgdyn", 300));
  {
    spec::PortSpec in;
    in.message = "msgdyn";
    in.direction = spec::DataDirection::kInput;
    in.semantics = spec::InfoSemantics::kState;
    in.period = 10_ms;
    g1a.add_port(in);
    g1a.set_filter("msgdyn", ta::parse_expression("lat_mg >= -2000 && lat_mg <= 2000").value());
  }
  spec::LinkSpec g1b{"comfort"};
  g1b.add_message(hazard_message("msgpresafe", 410));
  {
    spec::PortSpec out;
    out.message = "msgpresafe";
    out.direction = spec::DataDirection::kOutput;
    out.semantics = spec::InfoSemantics::kState;
    out.paradigm = spec::ControlParadigm::kEventTriggered;
    out.queue_capacity = 16;
    g1b.add_port(out);
  }
  core::GatewayConfig gwc1;
  gwc1.restart_delay = 50_ms;
  core::VirtualGateway gw1{"hazard-export", std::move(g1a), std::move(g1b), gwc1};
  gw1.finalize();
  core::wire_tt_link(gw1, 0, xbywire_vn, cluster.controller(2), {});
  core::wire_et_link(gw1, 1, comfort_vn, cluster.controller(2),
                     cluster.vn_slots(kComfortVn, 2));

  // -- gateway 2: comfort -> display (Fig. 6 conversion) -------------------
  spec::LinkSpec g2a{"comfort"};
  g2a.add_message(sliding_roof_spec());
  {
    spec::PortSpec in;
    in.message = "msgslidingroof";
    in.direction = spec::DataDirection::kInput;
    in.semantics = spec::InfoSemantics::kEvent;
    in.paradigm = spec::ControlParadigm::kEventTriggered;
    in.min_interarrival = 4_ms;
    in.max_interarrival = Duration::seconds(3600);
    in.queue_capacity = 16;
    g2a.add_port(in);
  }
  {
    spec::TransferRule rule;
    rule.target = "movementstate";
    rule.source = "movementevent";
    spec::TransferFieldRule fr1;
    fr1.name = "statevalue";
    fr1.init = ta::Value{40};
    fr1.semantics = "state";
    fr1.update = ta::parse_expression("statevalue + valuechange").value();
    rule.fields.push_back(std::move(fr1));
    spec::TransferFieldRule fr2;
    fr2.name = "observationtime";
    fr2.init = ta::Value{0};
    fr2.semantics = "state";
    fr2.update = ta::parse_expression("eventtime").value();
    rule.fields.push_back(std::move(fr2));
    g2a.add_transfer_rule(std::move(rule));
  }
  spec::LinkSpec g2b{"display"};
  g2b.add_message(roofstate_message());
  {
    spec::PortSpec out;
    out.message = "msgroofstate";
    out.direction = spec::DataDirection::kOutput;
    out.semantics = spec::InfoSemantics::kState;
    out.period = 20_ms;
    g2b.add_port(out);
  }
  core::GatewayConfig gwc2;
  gwc2.default_d_acc = 1_s;
  core::VirtualGateway gw2{"roof-bridge", std::move(g2a), std::move(g2b), gwc2};
  gw2.finalize();
  core::wire_et_link(gw2, 0, comfort_vn, cluster.controller(2), {});
  core::wire_tt_link(gw2, 1, display_vn, cluster.controller(2),
                     {{"msgroofstate", cluster.vn_slots(kDisplayVn, 2)}});

  platform::Partition& gw_partition =
      cluster.component(2).add_partition("gws", "architecture", 0_ms, 2_ms);
  gw_partition.add_job(std::make_unique<core::GatewayJob>(gw1));
  gw_partition.add_job(std::make_unique<core::GatewayJob>(gw2));

  // -- application jobs ------------------------------------------------------
  // Dynamics sensor (node 0): calm, emergency braking from t=1s.
  platform::Partition& p0 = cluster.component(0).add_partition("dyn", "xbywire", 3_ms, 1_ms);
  platform::FunctionJob& dyn =
      p0.add_function_job("dynamics", [&](platform::FunctionJob& self, Instant now) {
        auto inst = spec::make_instance(*xbywire_vn.message_spec("msgdyn"));
        const bool emergency = now >= Instant::origin() + 1_s;
        inst.element("hazard")->fields[0] = ta::Value{emergency};
        inst.element("hazard")->fields[1] = ta::Value{emergency ? 450 : 12};
        inst.set_send_time(now);
        self.ports()[0]->deposit(std::move(inst), now);
      });
  {
    spec::PortSpec out;
    out.message = "msgdyn";
    out.direction = spec::DataDirection::kOutput;
    out.semantics = spec::InfoSemantics::kState;
    out.period = 10_ms;
    xbywire_vn.attach_sender(cluster.controller(0), dyn.add_port(out),
                             cluster.vn_slots(kXbyWireVn, 0));
  }

  // Comfort DAS (node 1): roof job reacts to Pre-Safe by closing the
  // roof (one -40% movement), plus periodic small adjustments before.
  comfort_vn.attach_node(cluster.controller(1), cluster.vn_slots(kComfortVn, 1));
  bool roof_closed_commanded = false;
  platform::Partition& p1 = cluster.component(1).add_partition("body", "comfort", 5_ms, 1_ms);
  platform::FunctionJob& roof =
      p1.add_function_job("roof", [&](platform::FunctionJob& self, Instant now) {
        bool hazard = false;
        while (auto inst = self.ports()[0]->read()) {
          if (inst->element("hazard")->fields[0].as_bool()) hazard = true;
        }
        if (hazard && !roof_closed_commanded) {
          roof_closed_commanded = true;
          auto move = spec::make_instance(*gw2.link_a().spec().message("msgslidingroof"));
          move.element("movementevent")->fields[0] = ta::Value{-40};
          move.element("movementevent")->fields[1] = ta::Value{now};
          comfort_vn.send(cluster.controller(1), move);
        }
      });
  {
    spec::PortSpec in;
    in.message = "msgpresafe";
    in.direction = spec::DataDirection::kInput;
    in.semantics = spec::InfoSemantics::kEvent;
    in.paradigm = spec::ControlParadigm::kEventTriggered;
    in.queue_capacity = 32;
    comfort_vn.attach_receiver(cluster.controller(1), roof.add_port(in));
  }

  // Display (node 3): tracks the roof position.
  int displayed_position = -1;
  vn::Port display_port{[] {
    spec::PortSpec in;
    in.message = "msgroofstate";
    in.direction = spec::DataDirection::kInput;
    in.semantics = spec::InfoSemantics::kState;
    in.period = 20_ms;
    return in;
  }()};
  display_vn.attach_receiver(cluster.controller(3), display_port);
  display_port.set_notify([&](vn::Port& port) {
    if (auto inst = port.read())
      displayed_position = static_cast<int>(inst->element("movementstate")->fields[0].as_int());
  });

  // -- services + faults -------------------------------------------------
  core::DiagnosisService diagnosis{*cluster.membership(3)};
  diagnosis.watch(gw1);
  diagnosis.watch(gw2);
  fault::FaultPlan plan{cluster.simulator()};
  // Babbling idiot in the comfort DAS attacks the x-by-wire VN at t=2s.
  plan.babble(cluster.controller(1), Instant::origin() + 2_s,
              cluster.vn_slots(kXbyWireVn, 0)[0], kXbyWireVn, 100, 1_ms);
  // A spoofed out-of-range hazard stream hits gateway 1 at t=2.5s.
  for (int i = 0; i < 20; ++i) {
    cluster.simulator().schedule_at(Instant::origin() + 2500_ms + 10_ms * i, [&gw1, &cluster] {
      auto inst = spec::make_instance(*gw1.link_a().spec().message("msgdyn"));
      inst.element("hazard")->fields[1] = ta::Value{999999};  // implausible
      gw1.on_input(0, inst, cluster.simulator().now());
    });
  }

  cluster.start();
  cluster.run_for(3_s);

  // End-to-end function: hazard crossed gateway 1, the roof job closed
  // the roof, the movement crossed gateway 2 as state: 40 - 40 = 0.
  EXPECT_TRUE(roof_closed_commanded);
  EXPECT_EQ(displayed_position, 0);
  EXPECT_GT(gw1.stats().messages_constructed, 50u);
  EXPECT_GE(gw2.stats().conversions, 1u);

  // Containment: the babble never reached the x-by-wire VN (guardian).
  // The spoofed stream is doubly contained: arriving off-schedule it
  // first trips the temporal automaton; the few instances that land
  // after a service restart die at the value filter. Nothing implausible
  // crossed.
  EXPECT_EQ(cluster.bus().frames_blocked(), 100u);
  EXPECT_GE(gw1.stats().blocked_temporal + gw1.stats().blocked_value, 20u);
  EXPECT_GE(gw1.stats().blocked_value, 1u);

  // Services: everyone alive, clocks tight; diagnosis saw the spoofed
  // stream's containment (all 20 spoofs plus the collateral holds while
  // the automaton sat in error awaiting its restart).
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(cluster.membership(i)->member_count(), 4u);
  EXPECT_LT(cluster.precision().abs(), Duration::microseconds(10));
  const core::ClusterHealth health = diagnosis.report();
  EXPECT_TRUE(health.failed_nodes.empty());
  EXPECT_GE(health.contained_messages, 20u);
}

}  // namespace
}  // namespace decos
