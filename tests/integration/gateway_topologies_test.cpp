// Multi-gateway topologies:
//  * chains  -- information crossing two gateways (DAS A -> B -> C),
//    composing property transformations and temporal accuracy;
//  * replicas -- two gateway instances on different components coupling
//    the same pair of VNs (the paper's integrated-architecture promise:
//    "overcome limitations for spare components and redundancy
//    management" -- a gateway need not be a single point of failure).
#include <gtest/gtest.h>

#include <memory>

#include "../helpers.hpp"
#include "core/gateway_job.hpp"
#include "core/virtual_gateway.hpp"
#include "core/wiring.hpp"
#include "fault/plan.hpp"
#include "platform/cluster.hpp"
#include "vn/et_vn.hpp"
#include "vn/tt_vn.hpp"

namespace decos {
namespace {

using decos::testing::make_state_instance;
using decos::testing::state_message;
using namespace decos::literals;

spec::PortSpec tt_in(const std::string& msg, Duration period) {
  spec::PortSpec ps;
  ps.message = msg;
  ps.direction = spec::DataDirection::kInput;
  ps.semantics = spec::InfoSemantics::kState;
  ps.period = period;
  ps.min_interarrival = 1_us;
  ps.max_interarrival = Duration::seconds(3600);
  return ps;
}

spec::PortSpec tt_out(const std::string& msg, Duration period) {
  spec::PortSpec ps;
  ps.message = msg;
  ps.direction = spec::DataDirection::kOutput;
  ps.semantics = spec::InfoSemantics::kState;
  ps.period = period;
  return ps;
}

TEST(GatewayChainTest, TwoHopForwardingComposes) {
  // Three VNs on five nodes: producer (0) -> gw1 (1) -> gw2 (2) ->
  // consumer (3); node 4 idles.
  platform::ClusterConfig config;
  config.nodes = 5;
  config.allocations = {
      {1, "dasA", 32, {0}},
      {2, "dasB", 32, {1}},
      {3, "dasC", 32, {2}},
  };
  platform::Cluster cluster{config};

  vn::TtVirtualNetwork vn_a{"vn-a", 1};
  vn_a.register_message(state_message("msgA", "speed", 1));
  vn::TtVirtualNetwork vn_b{"vn-b", 2};
  vn::TtVirtualNetwork vn_c{"vn-c", 3};

  // Gateway 1: A -> B.
  spec::LinkSpec g1a{"dasA"};
  g1a.add_message(state_message("msgA", "speed", 1));
  g1a.add_port(tt_in("msgA", 10_ms));
  spec::LinkSpec g1b{"dasB"};
  g1b.add_message(state_message("msgB", "speed", 2));
  g1b.add_port(tt_out("msgB", 10_ms));
  core::VirtualGateway gw1{"hop1", std::move(g1a), std::move(g1b)};
  gw1.finalize();
  core::wire_tt_link(gw1, 0, vn_a, cluster.controller(1), {});
  core::wire_tt_link(gw1, 1, vn_b, cluster.controller(1), {{"msgB", cluster.vn_slots(2, 1)}});
  cluster.component(1)
      .add_partition("gw1", "architecture", 0_ms, 1_ms)
      .add_job(std::make_unique<core::GatewayJob>(gw1));

  // Gateway 2: B -> C.
  spec::LinkSpec g2b{"dasB"};
  g2b.add_message(state_message("msgB", "speed", 2));
  g2b.add_port(tt_in("msgB", 10_ms));
  spec::LinkSpec g2c{"dasC"};
  g2c.add_message(state_message("msgC", "speed", 3));
  g2c.add_port(tt_out("msgC", 10_ms));
  core::VirtualGateway gw2{"hop2", std::move(g2b), std::move(g2c)};
  gw2.finalize();
  core::wire_tt_link(gw2, 0, vn_b, cluster.controller(2), {});
  core::wire_tt_link(gw2, 1, vn_c, cluster.controller(2), {{"msgC", cluster.vn_slots(3, 2)}});
  cluster.component(2)
      .add_partition("gw2", "architecture", 0_ms, 1_ms)
      .add_job(std::make_unique<core::GatewayJob>(gw2));

  // Producer on node 0; consumer port on node 3.
  vn::Port producer{tt_out("msgA", 10_ms)};
  vn_a.attach_sender(cluster.controller(0), producer, cluster.vn_slots(1, 0));
  vn::Port consumer{tt_in("msgC", 10_ms)};
  vn_c.attach_receiver(cluster.controller(3), consumer);

  producer.deposit(make_state_instance(*vn_a.message_spec("msgA"), 77, Instant::origin()),
                   Instant::origin());
  cluster.start();
  cluster.run_for(100_ms);

  ASSERT_TRUE(consumer.has_data());
  EXPECT_EQ(consumer.read()->element("speed")->fields[0].as_int(), 77);
  EXPECT_GT(gw1.stats().messages_constructed, 0u);
  EXPECT_GT(gw2.stats().messages_constructed, 0u);
}

TEST(GatewayReplicaTest, ForwardingSurvivesOneGatewayCrash) {
  // Two replicas of the same A->B gateway on nodes 1 and 2; the consumer
  // in DAS B receives the imported value from whichever replica's slot
  // delivered last. Crashing one replica must not interrupt the import.
  platform::ClusterConfig config;
  config.nodes = 4;
  config.allocations = {
      {1, "dasA", 32, {0}},
      {2, "dasB", 32, {1, 2}},  // each replica has its own VN-B slot
  };
  platform::Cluster cluster{config};

  vn::TtVirtualNetwork vn_a{"vn-a", 1};
  vn_a.register_message(state_message("msgA", "speed", 1));
  vn::TtVirtualNetwork vn_b{"vn-b", 2};

  const auto make_replica = [&](tt::NodeId host) {
    spec::LinkSpec la{"dasA"};
    la.add_message(state_message("msgA", "speed", 1));
    la.add_port(tt_in("msgA", 10_ms));
    spec::LinkSpec lb{"dasB"};
    lb.add_message(state_message("msgB", "speed", 2));
    lb.add_port(tt_out("msgB", 10_ms));
    auto gw = std::make_unique<core::VirtualGateway>("replica" + std::to_string(host),
                                                     std::move(la), std::move(lb));
    gw->finalize();
    core::wire_tt_link(*gw, 0, vn_a, cluster.controller(host), {});
    core::wire_tt_link(*gw, 1, vn_b, cluster.controller(host),
                       {{"msgB", cluster.vn_slots(2, host)}});
    cluster.component(host)
        .add_partition("gw", "architecture", 0_ms, 1_ms)
        .add_job(std::make_unique<core::GatewayJob>(*gw));
    return gw;
  };
  auto replica1 = make_replica(1);
  auto replica2 = make_replica(2);

  // Producer job (node 0) publishes a fresh counter every cycle.
  platform::Partition& p0 = cluster.component(0).add_partition("prod", "dasA", 1_ms, 1_ms);
  platform::FunctionJob& producer =
      p0.add_function_job("producer", [&vn_a](platform::FunctionJob& self, Instant now) {
        self.ports()[0]->deposit(
            make_state_instance(*vn_a.message_spec("msgA"),
                                static_cast<int>(self.activations()), now),
            now);
      });
  vn_a.attach_sender(cluster.controller(0), producer.add_port(tt_out("msgA", 10_ms)),
                     cluster.vn_slots(1, 0));

  // Consumer on node 3: track the freshest imported value per cycle.
  vn::Port consumer{tt_in("msgB", 10_ms)};
  vn_b.attach_receiver(cluster.controller(3), consumer);
  std::vector<std::int64_t> observed;
  consumer.set_notify([&](vn::Port& port) {
    if (auto inst = port.read()) observed.push_back(inst->element("speed")->fields[0].as_int());
  });

  // Crash replica 1's host mid-run.
  fault::FaultPlan plan{cluster.simulator()};
  plan.crash(cluster.controller(1), Instant::origin() + 250_ms);

  cluster.start();
  cluster.run_for(500_ms);

  ASSERT_FALSE(observed.empty());
  // The import kept flowing after the crash: the largest observed value
  // must be close to the last produced counter (~49 at 500ms).
  EXPECT_GT(observed.back(), 40);
  // Before the crash both replicas forwarded; afterwards only replica 2.
  EXPECT_GT(replica1->stats().messages_constructed, 0u);
  EXPECT_GT(replica2->stats().messages_constructed,
            replica1->stats().messages_constructed);
  // Monotone non-decreasing values: replicas never deliver stale values
  // out of order at the (state) consumer port within a cycle.
  for (std::size_t i = 1; i < observed.size(); ++i)
    EXPECT_GE(observed[i] + 1, observed[i - 1]);  // allow equal/adjacent
}

}  // namespace
}  // namespace decos
