#include <gtest/gtest.h>

#include "../helpers.hpp"
#include "fault/message_faults.hpp"
#include "fault/plan.hpp"

namespace decos::fault {
namespace {

using namespace decos::literals;

TEST(FaultPlanTest, CrashAndRecoverySchedule) {
  sim::Simulator sim;
  tt::TtBus bus{sim, tt::make_uniform_schedule(10_ms, 2, 1, 16)};
  tt::Controller node{sim, bus, 0, sim::DriftingClock{}};
  sim::TraceRecorder trace;
  FaultPlan plan{sim, &trace};

  plan.crash(node, Instant::origin() + 5_ms, 10_ms);
  sim.run_until(Instant::origin() + 4_ms);
  EXPECT_FALSE(node.crashed());
  sim.run_until(Instant::origin() + 6_ms);
  EXPECT_TRUE(node.crashed());
  sim.run_until(Instant::origin() + 20_ms);
  EXPECT_FALSE(node.crashed());
  EXPECT_EQ(plan.injected(), 2u);  // crash + recover
  EXPECT_EQ(trace.count(sim::TraceKind::kFaultInjected), 2u);
}

TEST(FaultPlanTest, PermanentCrashNeverRecovers) {
  sim::Simulator sim;
  tt::TtBus bus{sim, tt::make_uniform_schedule(10_ms, 2, 1, 16)};
  tt::Controller node{sim, bus, 0, sim::DriftingClock{}};
  FaultPlan plan{sim};
  plan.crash(node, Instant::origin() + 5_ms);
  sim.run_until(Instant::origin() + 10_s);
  EXPECT_TRUE(node.crashed());
}

TEST(FaultPlanTest, BabbleBurstHitsGuardian) {
  sim::Simulator sim;
  tt::TtBus bus{sim, tt::make_uniform_schedule(10_ms, 2, 1, 16)};
  tt::Controller good{sim, bus, 0, sim::DriftingClock{}};
  tt::Controller bad{sim, bus, 1, sim::DriftingClock{}};
  FaultPlan plan{sim};
  // Node 1 babbles into node 0's slot, off schedule.
  plan.babble(bad, Instant::origin() + 3_ms, 0, 0, 5, 100_us);
  good.start();
  bad.start();
  sim.run_until(Instant::origin() + 20_ms);
  EXPECT_EQ(bus.frames_blocked(), 5u);
  EXPECT_EQ(plan.injected(), 5u);
}

TEST(FaultPlanTest, OmissionActivation) {
  sim::Simulator sim;
  tt::TtBus bus{sim, tt::make_uniform_schedule(10_ms, 2, 1, 16)};
  tt::Controller node{sim, bus, 0, sim::DriftingClock{}};
  FaultPlan plan{sim};
  plan.omission(node, Instant::origin() + 100_ms, 1.0);
  node.start();
  sim.run_until(Instant::origin() + 500_ms);
  EXPECT_EQ(node.frames_sent(), 10u);  // only the first 100ms
}

TEST(TimingFaultProfileTest, NominalTrafficHasNoFaults) {
  TimingFaultProfile profile;
  profile.nominal_interarrival = 10_ms;
  Rng rng{1};
  for (int i = 0; i < 100; ++i) {
    bool is_fault = true;
    EXPECT_EQ(profile.next_gap(rng, is_fault), 10_ms);
    EXPECT_FALSE(is_fault);
  }
}

TEST(TimingFaultProfileTest, EarlyRateProducesEarlyGaps) {
  TimingFaultProfile profile;
  profile.nominal_interarrival = 10_ms;
  profile.early_rate = 0.3;
  profile.early_gap = 100_us;
  Rng rng{2};
  int faults = 0;
  for (int i = 0; i < 10000; ++i) {
    bool is_fault = false;
    const Duration gap = profile.next_gap(rng, is_fault);
    if (is_fault) {
      ++faults;
      EXPECT_EQ(gap, 100_us);
    }
  }
  EXPECT_NEAR(faults / 10000.0, 0.3, 0.02);
}

TEST(TimingFaultProfileTest, OmissionStretchesGaps) {
  TimingFaultProfile profile;
  profile.nominal_interarrival = 10_ms;
  profile.omission_rate = 1.0;  // every gap is an omission
  Rng rng{3};
  bool is_fault = false;
  const Duration gap = profile.next_gap(rng, is_fault);
  EXPECT_TRUE(is_fault);
  EXPECT_GE(gap, 20_ms);
}

TEST(TimingFaultProfileTest, JitterVariesGaps) {
  TimingFaultProfile profile;
  profile.nominal_interarrival = 10_ms;
  profile.jitter = 1_ms;
  Rng rng{4};
  bool is_fault = false;
  bool varied = false;
  const Duration first = profile.next_gap(rng, is_fault);
  for (int i = 0; i < 20; ++i)
    if (profile.next_gap(rng, is_fault) != first) varied = true;
  EXPECT_TRUE(varied);
}

TEST(CorruptValuesTest, CorruptsOnlyDynamicFields) {
  const spec::MessageSpec ms = decos::testing::sliding_roof_spec();
  spec::MessageInstance inst = spec::make_instance(ms);
  inst.element("movementevent")->fields[0] = ta::Value{5};
  Rng rng{5};
  const std::size_t n = corrupt_values(inst, ms, rng, 1.0);
  EXPECT_GE(n, 3u);  // valuechange, eventtime, trigger
  // The static key field survives: the message still identifies.
  EXPECT_EQ(inst.field("name", "id", ms).as_int(), 731);
  const auto bytes = spec::encode(ms, inst);
  if (bytes.ok()) EXPECT_TRUE(spec::matches_key(ms, bytes.value()));
}

TEST(CorruptValuesTest, ZeroRateChangesNothing) {
  const spec::MessageSpec ms = decos::testing::sliding_roof_spec();
  spec::MessageInstance inst = spec::make_instance(ms);
  Rng rng{6};
  EXPECT_EQ(corrupt_values(inst, ms, rng, 0.0), 0u);
}

}  // namespace
}  // namespace decos::fault
