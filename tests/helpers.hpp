// Shared fixtures for the DECOS reproduction tests: canonical message
// specs (including the paper's Fig. 6 sliding-roof example) and small
// cluster builders.
#pragma once

#include <optional>

#include "spec/link_spec.hpp"
#include "spec/message.hpp"

namespace decos::testing {

/// The paper's Fig. 6 message: identification element (id 731),
/// convertible event element, and a local-only element.
inline spec::MessageSpec sliding_roof_spec() {
  spec::MessageSpec ms{"msgslidingroof"};
  spec::ElementSpec name;
  name.name = "name";
  name.key = true;
  name.fields.push_back(spec::FieldSpec{"id", spec::FieldType::kInt16, 0, ta::Value{731}});
  ms.add_element(std::move(name));

  spec::ElementSpec movement;
  movement.name = "movementevent";
  movement.convertible = true;
  movement.fields.push_back(
      spec::FieldSpec{"valuechange", spec::FieldType::kInt16, 0, std::nullopt});
  movement.fields.push_back(
      spec::FieldSpec{"eventtime", spec::FieldType::kTimestamp, 0, std::nullopt});
  ms.add_element(std::move(movement));

  spec::ElementSpec closure;
  closure.name = "fullclosure";
  closure.fields.push_back(spec::FieldSpec{"trigger", spec::FieldType::kBoolean, 0, std::nullopt});
  ms.add_element(std::move(closure));
  return ms;
}

/// A one-element state message: `element_name` carrying a single int32
/// `value` field plus a timestamp, identified by static key `id`.
inline spec::MessageSpec state_message(const std::string& message_name,
                                       const std::string& element_name, int id) {
  spec::MessageSpec ms{message_name};
  spec::ElementSpec key;
  key.name = "name";
  key.key = true;
  key.fields.push_back(spec::FieldSpec{"id", spec::FieldType::kInt16, 0, ta::Value{id}});
  ms.add_element(std::move(key));

  spec::ElementSpec payload;
  payload.name = element_name;
  payload.convertible = true;
  payload.fields.push_back(spec::FieldSpec{"value", spec::FieldType::kInt32, 0, std::nullopt});
  payload.fields.push_back(spec::FieldSpec{"t", spec::FieldType::kTimestamp, 0, std::nullopt});
  ms.add_element(std::move(payload));
  return ms;
}

/// Build an instance of state_message() with the given value/time.
inline spec::MessageInstance make_state_instance(const spec::MessageSpec& ms, std::int32_t value,
                                                 Instant t) {
  spec::MessageInstance inst = spec::make_instance(ms);
  spec::ElementValue* ev = inst.element(ms.elements()[1].name);
  ev->fields[0] = ta::Value{static_cast<std::int64_t>(value)};
  ev->fields[1] = ta::Value{t};
  inst.set_send_time(t);
  return inst;
}

}  // namespace decos::testing
