// Priority starvation on the event-triggered VN: like CAN, a saturating
// high-priority stream starves lower priorities (the flip side of the
// paper's observation that ET networks trade predictability for
// flexibility -- only probabilistic latency statements are possible,
// Section II-E). This test pins the behaviour down so it is a documented
// property, not an accident.
#include <gtest/gtest.h>

#include "../helpers.hpp"
#include "vn/et_vn.hpp"
#include "vn_fixture.hpp"

namespace decos::vn {
namespace {

using decos::testing::VnCluster;
using decos::testing::input_event_port;
using decos::testing::make_state_instance;
using decos::testing::state_message;
using namespace decos::literals;

TEST(EtStarvationTest, SaturatingHighPriorityStarvesLowPriority) {
  VnCluster cluster{2, {VnAllocation{1, "d", 32, {0}}}};  // 1 ET slot per round
  EtVirtualNetwork vn{"v", 1, 512};
  vn.register_message(state_message("msgHigh", "h", 1));
  vn.register_message(state_message("msgLow", "l", 2));
  vn.set_priority("msgHigh", 0);
  vn.set_priority("msgLow", 9);
  vn.attach_node(cluster.node(0), cluster.vn_slots_of(1, 0));

  Port high_in{input_event_port("msgHigh", 512)};
  Port low_in{input_event_port("msgLow", 512)};
  vn.attach_receiver(cluster.node(1), high_in);
  vn.attach_receiver(cluster.node(1), low_in);

  // One low-priority instance queued up front...
  cluster.sim.schedule_at(Instant::origin() + 1_ms, [&] {
    vn.send(cluster.node(0), make_state_instance(*vn.message_spec("msgLow"), 0, cluster.sim.now()));
  });
  // ...then two high-priority instances per round (slot capacity is one):
  // the backlog grows forever and the low instance never wins arbitration.
  for (int round = 0; round < 50; ++round) {
    cluster.sim.schedule_at(Instant::origin() + Duration::milliseconds(round * 10) + 2_ms, [&] {
      for (int k = 0; k < 2; ++k)
        vn.send(cluster.node(0),
                make_state_instance(*vn.message_spec("msgHigh"), k, cluster.sim.now()));
    });
  }
  cluster.start();
  cluster.sim.run_until(Instant::origin() + 500_ms);

  EXPECT_GT(high_in.queue_depth(), 40u);   // high stream flows
  EXPECT_EQ(low_in.queue_depth(), 0u);     // low is starved
  EXPECT_GE(vn.pending(0), 1u);            // it is still waiting, not lost

  // Once the flood stops, the starved instance finally drains: no loss,
  // just unbounded latency -- exactly the probabilistic-only guarantee
  // the paper assigns to ET virtual networks.
  cluster.sim.run_until(Instant::origin() + 2_s);
  EXPECT_EQ(low_in.queue_depth(), 1u);
  EXPECT_EQ(vn.pending(0), 0u);
}

}  // namespace
}  // namespace decos::vn
