#include "vn/et_vn.hpp"

#include <gtest/gtest.h>

#include "vn_fixture.hpp"

namespace decos::vn {
namespace {

using decos::testing::VnCluster;
using decos::testing::input_event_port;
using decos::testing::make_state_instance;
using decos::testing::state_message;
using namespace decos::literals;

struct EtVnFixture : ::testing::Test {
  EtVnFixture()
      : cluster{2, {VnAllocation{2, "comfort", 32, {0, 0, 1}}}},
        network{"comfort-vn", 2, 8} {
    network.register_message(state_message("msgA", "elemA", 10));
    network.register_message(state_message("msgB", "elemB", 20));
    network.set_priority("msgA", 1);
    network.set_priority("msgB", 2);
    network.attach_node(cluster.node(0), cluster.vn_slots_of(2, 0));
    network.attach_node(cluster.node(1), cluster.vn_slots_of(2, 1));
  }

  spec::MessageInstance make(const std::string& msg, int v) {
    return make_state_instance(*network.message_spec(msg), v, cluster.sim.now());
  }

  VnCluster cluster;
  EtVirtualNetwork network;
};

TEST_F(EtVnFixture, OnDemandDelivery) {
  Port in{input_event_port("msgA")};
  network.attach_receiver(cluster.node(1), in);
  cluster.sim.schedule_at(Instant::origin() + 3_ms, [&] {
    EXPECT_TRUE(network.send(cluster.node(0), make("msgA", 7)));
  });
  cluster.start();
  cluster.sim.run_until(Instant::origin() + 30_ms);
  ASSERT_TRUE(in.has_data());
  EXPECT_EQ(in.read()->element("elemA")->fields[0].as_int(), 7);
}

TEST_F(EtVnFixture, PriorityArbitrationWithinNode) {
  Port inA{input_event_port("msgA")};
  Port inB{input_event_port("msgB")};
  network.attach_receiver(cluster.node(1), inA);
  network.attach_receiver(cluster.node(1), inB);

  std::vector<std::string> order;
  inA.set_notify([&](Port& p) { order.push_back("A"); p.read(); });
  inB.set_notify([&](Port& p) { order.push_back("B"); p.read(); });

  // Enqueue the low-priority message first; the high-priority one must
  // still win the next slot.
  cluster.sim.schedule_at(Instant::origin() + 1_ms, [&] {
    network.send(cluster.node(0), make("msgB", 1));
    network.send(cluster.node(0), make("msgA", 2));
  });
  cluster.start();
  cluster.sim.run_until(Instant::origin() + 50_ms);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "A");
  EXPECT_EQ(order[1], "B");
}

TEST_F(EtVnFixture, FifoAmongEqualPriorities) {
  network.set_priority("msgB", 1);  // equal to msgA
  Port inA{input_event_port("msgA")};
  Port inB{input_event_port("msgB")};
  network.attach_receiver(cluster.node(1), inA);
  network.attach_receiver(cluster.node(1), inB);
  std::vector<std::string> order;
  inA.set_notify([&](Port& p) { order.push_back("A"); p.read(); });
  inB.set_notify([&](Port& p) { order.push_back("B"); p.read(); });
  cluster.sim.schedule_at(Instant::origin() + 1_ms, [&] {
    network.send(cluster.node(0), make("msgB", 1));
    network.send(cluster.node(0), make("msgA", 2));
  });
  cluster.start();
  cluster.sim.run_until(Instant::origin() + 50_ms);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "B");  // first-come first-served
}

TEST_F(EtVnFixture, PendingQueueBoundedAndOverloadCounted) {
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(network.send(cluster.node(0), make("msgA", i)));
  EXPECT_FALSE(network.send(cluster.node(0), make("msgA", 99)));
  EXPECT_EQ(network.overloads(), 1u);
  EXPECT_EQ(network.pending(0), 8u);
}

TEST_F(EtVnFixture, QueueDrainsOverSlots) {
  Port in{input_event_port("msgA")};
  network.attach_receiver(cluster.node(1), in);
  cluster.sim.schedule_at(Instant::origin() + 1_ms, [&] {
    for (int i = 0; i < 4; ++i) network.send(cluster.node(0), make("msgA", i));
  });
  cluster.start();
  // Node 0 has 2 ET slots per 10ms round: 4 messages need 2 rounds.
  cluster.sim.run_until(Instant::origin() + 40_ms);
  EXPECT_EQ(network.pending(0), 0u);
  EXPECT_EQ(in.queue_depth(), 4u);
  // Exactly-once, in order.
  for (int i = 0; i < 4; ++i) EXPECT_EQ(in.read()->element("elemA")->fields[0].as_int(), i);
}

TEST_F(EtVnFixture, SendFromUnattachedNodeThrows) {
  // A fresh controller with an id never attached to this VN.
  tt::Controller stranger{cluster.sim, *cluster.bus, 7, sim::DriftingClock{}};
  EXPECT_THROW(network.send(stranger, make("msgA", 1)), SpecError);
}

TEST_F(EtVnFixture, SendUnknownMessageThrows) {
  auto inst = make_state_instance(state_message("ghost", "e", 9), 1, Instant::origin());
  EXPECT_THROW(network.send(cluster.node(0), inst), SpecError);
}

TEST_F(EtVnFixture, DefaultPriorityForUnlistedMessages) {
  EXPECT_EQ(network.priority_of("msgA"), 1);
  EXPECT_EQ(network.priority_of("unlisted"), 1000);
}

}  // namespace
}  // namespace decos::vn
