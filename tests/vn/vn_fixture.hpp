// Small-cluster fixture shared by the virtual-network tests: 3 nodes, a
// schedule with one core slot per node plus VN slots built through the
// encapsulation service.
#pragma once

#include <memory>
#include <vector>

#include "../helpers.hpp"
#include "sim/simulator.hpp"
#include "tt/bus.hpp"
#include "tt/controller.hpp"
#include "vn/encapsulation.hpp"

namespace decos::testing {

using namespace decos::literals;

struct VnCluster {
  /// allocations: slot requests per VN (see EncapsulationService).
  VnCluster(std::size_t nodes, const std::vector<vn::VnAllocation>& allocations,
            Duration round = 10_ms) {
    auto schedule =
        vn::EncapsulationService::build_schedule(round, nodes, allocations, 8);
    bus = std::make_unique<tt::TtBus>(sim, std::move(schedule.value()));
    for (std::size_t i = 0; i < nodes; ++i) {
      controllers.push_back(std::make_unique<tt::Controller>(
          sim, *bus, static_cast<tt::NodeId>(i), sim::DriftingClock{}));
    }
  }

  void start() {
    for (auto& c : controllers) c->start();
  }

  tt::Controller& node(std::size_t i) { return *controllers[i]; }

  /// Slots of `vn` owned by node `i`.
  std::vector<std::size_t> vn_slots_of(tt::VnId vn, tt::NodeId node_id) const {
    std::vector<std::size_t> out;
    for (const std::size_t s : bus->schedule().slots_of_vn(vn))
      if (bus->schedule().slot(s).owner == node_id) out.push_back(s);
    return out;
  }

  sim::Simulator sim;
  std::unique_ptr<tt::TtBus> bus;
  std::vector<std::unique_ptr<tt::Controller>> controllers;
};

inline spec::PortSpec output_state_port(const std::string& message, Duration period) {
  spec::PortSpec ps;
  ps.message = message;
  ps.direction = spec::DataDirection::kOutput;
  ps.semantics = spec::InfoSemantics::kState;
  ps.period = period;
  return ps;
}

inline spec::PortSpec input_state_port(const std::string& message, Duration period) {
  spec::PortSpec ps;
  ps.message = message;
  ps.direction = spec::DataDirection::kInput;
  ps.semantics = spec::InfoSemantics::kState;
  ps.period = period;
  return ps;
}

inline spec::PortSpec input_event_port(const std::string& message, std::size_t capacity = 16) {
  spec::PortSpec ps;
  ps.message = message;
  ps.direction = spec::DataDirection::kInput;
  ps.semantics = spec::InfoSemantics::kEvent;
  ps.paradigm = spec::ControlParadigm::kEventTriggered;
  ps.queue_capacity = capacity;
  return ps;
}

inline spec::PortSpec output_event_port(const std::string& message, std::size_t capacity = 16) {
  spec::PortSpec ps;
  ps.message = message;
  ps.direction = spec::DataDirection::kOutput;
  ps.semantics = spec::InfoSemantics::kEvent;
  ps.paradigm = spec::ControlParadigm::kEventTriggered;
  ps.queue_capacity = capacity;
  return ps;
}

}  // namespace decos::testing
