// VirtualNetwork base-class behaviour: namespace registry, wire-key
// identification, and delivery accounting.
#include "vn/virtual_network.hpp"

#include <gtest/gtest.h>

#include "../helpers.hpp"
#include "vn/tt_vn.hpp"
#include "vn_fixture.hpp"

namespace decos::vn {
namespace {

using decos::testing::VnCluster;
using decos::testing::input_state_port;
using decos::testing::make_state_instance;
using decos::testing::output_state_port;
using decos::testing::state_message;
using namespace decos::literals;

TEST(VirtualNetworkTest, NamespaceRegistryAndIdentify) {
  TtVirtualNetwork vn{"v", 1};
  vn.register_message(state_message("msgA", "a", 1));
  vn.register_message(state_message("msgB", "b", 2));
  EXPECT_NE(vn.message_spec("msgA"), nullptr);
  EXPECT_EQ(vn.message_spec("ghost"), nullptr);
  EXPECT_EQ(vn.messages().size(), 2u);

  const auto bytes =
      spec::encode(*vn.message_spec("msgB"), spec::make_instance(*vn.message_spec("msgB")))
          .value();
  ASSERT_NE(vn.identify(bytes), nullptr);
  EXPECT_EQ(vn.identify(bytes)->name(), "msgB");
}

TEST(VirtualNetworkTest, InvalidMessageRejected) {
  TtVirtualNetwork vn{"v", 1};
  EXPECT_THROW(vn.register_message(spec::MessageSpec{"empty"}), SpecError);
}

TEST(VirtualNetworkTest, DasBindingAndMetadata) {
  TtVirtualNetwork vn{"powertrain-vn", 7};
  vn.set_das("powertrain");
  EXPECT_EQ(vn.das(), "powertrain");
  EXPECT_EQ(vn.id(), 7u);
  EXPECT_EQ(vn.name(), "powertrain-vn");
  EXPECT_EQ(vn.paradigm(), spec::ControlParadigm::kTimeTriggered);
}

TEST(VirtualNetworkTest, DeliveryAccountingCountsPerPort) {
  VnCluster cluster{3, {VnAllocation{1, "d", 32, {0}}}};
  TtVirtualNetwork vn{"v", 1};
  vn.register_message(state_message("msgA", "a", 1));

  Port out{output_state_port("msgA", 10_ms)};
  vn.attach_sender(cluster.node(0), out, cluster.vn_slots_of(1, 0));
  Port in1{input_state_port("msgA", 10_ms)};
  Port in2{input_state_port("msgA", 10_ms)};
  vn.attach_receiver(cluster.node(1), in1);
  vn.attach_receiver(cluster.node(1), in2);  // two ports, same node

  out.deposit(make_state_instance(*vn.message_spec("msgA"), 1, Instant::origin()),
              Instant::origin());
  cluster.start();
  cluster.sim.run_until(Instant::origin() + 15_ms);

  // One frame delivered to node 1 lands in both registered input ports.
  EXPECT_EQ(vn.messages_delivered(), 2u);
  EXPECT_EQ(vn.bytes_delivered(),
            2u * vn.message_spec("msgA")->wire_size());
  EXPECT_TRUE(in1.has_data());
  EXPECT_TRUE(in2.has_data());
}

}  // namespace
}  // namespace decos::vn
