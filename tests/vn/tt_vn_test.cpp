#include "vn/tt_vn.hpp"

#include <gtest/gtest.h>

#include "vn_fixture.hpp"

namespace decos::vn {
namespace {

using decos::testing::VnCluster;
using decos::testing::input_state_port;
using decos::testing::make_state_instance;
using decos::testing::output_state_port;
using decos::testing::state_message;
using namespace decos::literals;

struct TtVnFixture : ::testing::Test {
  TtVnFixture()
      : cluster{3, {VnAllocation{1, "powertrain", 32, {0, 1}}}},
        network{"powertrain-vn", 1} {
    network.register_message(state_message("msgwheel", "wheelspeed", 100));
  }

  VnCluster cluster;
  TtVirtualNetwork network;
};

TEST_F(TtVnFixture, SenderToReceiverDelivery) {
  auto& sender = cluster.node(0);
  auto& receiver = cluster.node(2);

  Port out{output_state_port("msgwheel", 10_ms)};
  Port in{input_state_port("msgwheel", 10_ms)};
  network.attach_sender(sender, out, cluster.vn_slots_of(1, 0));
  network.attach_receiver(receiver, in);

  out.deposit(make_state_instance(*network.message_spec("msgwheel"), 42, Instant::origin()),
              Instant::origin());
  cluster.start();
  cluster.sim.run_until(Instant::origin() + 25_ms);

  ASSERT_TRUE(in.has_data());
  const auto got = in.read();
  EXPECT_EQ(got->element("wheelspeed")->fields[0].as_int(), 42);
  EXPECT_GT(network.messages_delivered(), 0u);
  EXPECT_GT(network.bytes_delivered(), 0u);
}

TEST_F(TtVnFixture, FreshestValueWinsEachSlot) {
  auto& sender = cluster.node(0);
  auto& receiver = cluster.node(1);

  Port out{output_state_port("msgwheel", 10_ms)};
  Port in{input_state_port("msgwheel", 10_ms)};
  network.attach_sender(sender, out, cluster.vn_slots_of(1, 0));
  network.attach_receiver(receiver, in);

  const spec::MessageSpec& ms = *network.message_spec("msgwheel");
  // Two writes before the first slot: only the second is transmitted.
  out.deposit(make_state_instance(ms, 1, Instant::origin()), Instant::origin());
  std::vector<std::int64_t> seen;
  in.set_notify([&](Port& p) { /* push port */ });
  cluster.sim.schedule_at(Instant::origin() + 1_ms, [&] {
    out.deposit(make_state_instance(ms, 2, cluster.sim.now()), cluster.sim.now());
  });
  cluster.start();
  cluster.sim.run_until(Instant::origin() + 55_ms);
  EXPECT_EQ(in.read()->element("wheelspeed")->fields[0].as_int(), 2);
}

TEST_F(TtVnFixture, NoDeliveryWithoutProducerData) {
  auto& receiver = cluster.node(2);
  Port in{input_state_port("msgwheel", 10_ms)};
  network.attach_receiver(receiver, in);
  // Sender attached but never writes: life-sign frames only.
  auto& sender = cluster.node(0);
  Port out{output_state_port("msgwheel", 10_ms)};
  network.attach_sender(sender, out, cluster.vn_slots_of(1, 0));
  cluster.start();
  cluster.sim.run_until(Instant::origin() + 50_ms);
  EXPECT_FALSE(in.has_data());
  EXPECT_EQ(network.messages_delivered(), 0u);
}

TEST_F(TtVnFixture, MultipleReceiversAllGetTheInstance) {
  Port out{output_state_port("msgwheel", 10_ms)};
  Port in1{input_state_port("msgwheel", 10_ms)};
  Port in2{input_state_port("msgwheel", 10_ms)};
  network.attach_sender(cluster.node(0), out, cluster.vn_slots_of(1, 0));
  network.attach_receiver(cluster.node(1), in1);
  network.attach_receiver(cluster.node(2), in2);
  out.deposit(make_state_instance(*network.message_spec("msgwheel"), 9, Instant::origin()),
              Instant::origin());
  cluster.start();
  cluster.sim.run_until(Instant::origin() + 25_ms);
  EXPECT_TRUE(in1.has_data());
  EXPECT_TRUE(in2.has_data());
}

TEST_F(TtVnFixture, SendTimeStampedFromFrame) {
  Port out{output_state_port("msgwheel", 10_ms)};
  Port in{input_state_port("msgwheel", 10_ms)};
  const auto slots = cluster.vn_slots_of(1, 0);
  network.attach_sender(cluster.node(0), out, slots);
  network.attach_receiver(cluster.node(1), in);
  out.deposit(make_state_instance(*network.message_spec("msgwheel"), 1, Instant::origin()),
              Instant::origin());
  cluster.start();
  cluster.sim.run_until(Instant::origin() + 25_ms);
  ASSERT_TRUE(in.has_data());
  // The receive-side instance carries the physical send instant; the
  // state port holds the freshest delivery, i.e. round 1's slot start.
  const Instant sent = in.read()->send_time();
  EXPECT_EQ(sent, cluster.bus->schedule().slot_start(1, slots[0]));
}

TEST_F(TtVnFixture, AttachSenderValidation) {
  Port out{output_state_port("msgwheel", 10_ms)};
  Port in{input_state_port("msgwheel", 10_ms)};
  // Unknown message.
  Port bad_out{output_state_port("ghost", 10_ms)};
  EXPECT_THROW(network.attach_sender(cluster.node(0), bad_out, {0}), SpecError);
  // Input port as sender.
  EXPECT_THROW(network.attach_sender(cluster.node(0), in, cluster.vn_slots_of(1, 0)), SpecError);
  // Slot not owned by the VN (core slot 0 belongs to VN 0).
  EXPECT_THROW(network.attach_sender(cluster.node(0), out, {0}), SpecError);
  // Output port as receiver.
  EXPECT_THROW(network.attach_receiver(cluster.node(0), out), SpecError);
}

TEST_F(TtVnFixture, SlotTooSmallRejected) {
  VnCluster tiny{2, {VnAllocation{1, "d", 4 /* bytes */, {0}}}};
  TtVirtualNetwork net{"v", 1};
  net.register_message(state_message("m", "e", 1));  // needs 14 bytes
  Port out{output_state_port("m", 10_ms)};
  EXPECT_THROW(net.attach_sender(tiny.node(0), out, tiny.vn_slots_of(1, 0)), SpecError);
}

TEST_F(TtVnFixture, MessageOfSlotMapping) {
  Port out{output_state_port("msgwheel", 10_ms)};
  const auto slots = cluster.vn_slots_of(1, 0);
  network.attach_sender(cluster.node(0), out, slots);
  ASSERT_NE(network.message_of_slot(slots[0]), nullptr);
  EXPECT_EQ(*network.message_of_slot(slots[0]), "msgwheel");
  EXPECT_EQ(network.message_of_slot(999), nullptr);
}

TEST_F(TtVnFixture, DuplicateMessageRegistrationRejected) {
  EXPECT_THROW(network.register_message(state_message("msgwheel", "x", 5)), SpecError);
}

}  // namespace
}  // namespace decos::vn
