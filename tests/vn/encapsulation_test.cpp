#include "vn/encapsulation.hpp"

#include <gtest/gtest.h>

namespace decos::vn {
namespace {

using namespace decos::literals;

TEST(EncapsulationTest, BuildScheduleLayout) {
  const std::vector<VnAllocation> allocations = {
      VnAllocation{1, "powertrain", 32, {0, 1}},
      VnAllocation{2, "comfort", 16, {2, 2}},
  };
  auto schedule = EncapsulationService::build_schedule(10_ms, 3, allocations, 8);
  ASSERT_TRUE(schedule.ok());
  const tt::TdmaSchedule& s = schedule.value();
  EXPECT_TRUE(s.validate().ok());
  EXPECT_EQ(s.slot_count(), 3u + 2u + 2u);
  // Core slots first, one per node, on VN 0 with 8-byte payloads.
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(s.slot(i).vn, tt::kCoreVn);
    EXPECT_EQ(s.slot(i).owner, i);
    EXPECT_EQ(s.slot(i).payload_bytes, 8u);
  }
  EXPECT_EQ(s.slots_of_vn(1).size(), 2u);
  EXPECT_EQ(s.slots_of_vn(2).size(), 2u);
  EXPECT_EQ(s.slot(3).owner, 0u);
  EXPECT_EQ(s.slot(4).owner, 1u);
  EXPECT_EQ(s.slot(5).owner, 2u);
  EXPECT_EQ(s.bytes_per_round(1), 64u);
  EXPECT_EQ(s.bytes_per_round(2), 32u);
}

TEST(EncapsulationTest, BandwidthPartitionIsExplicit) {
  // A VN's share is exactly what it asked for, independent of the other
  // VN's requests (the basis of E7's independence claim).
  auto a = EncapsulationService::build_schedule(
      10_ms, 2, {VnAllocation{1, "x", 32, {0}}, VnAllocation{2, "y", 32, {1}}});
  auto b = EncapsulationService::build_schedule(
      10_ms, 2, {VnAllocation{1, "x", 32, {0}}, VnAllocation{2, "y", 32, {1, 1, 1}}});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().bytes_per_round(1), b.value().bytes_per_round(1));
}

TEST(EncapsulationTest, RejectsNodeOutsideCluster) {
  auto schedule =
      EncapsulationService::build_schedule(10_ms, 2, {VnAllocation{1, "x", 32, {5}}});
  EXPECT_FALSE(schedule.ok());
}

TEST(EncapsulationTest, RejectsRoundTooShort) {
  auto schedule = EncapsulationService::build_schedule(
      Duration::nanoseconds(3), 4, {VnAllocation{1, "x", 32, {0, 1, 2, 3}}});
  EXPECT_FALSE(schedule.ok());
}

TEST(EncapsulationTest, VisibilityCheck) {
  EncapsulationService service;
  service.register_vn(1, "powertrain");
  service.register_vn(2, "comfort");

  EXPECT_TRUE(service.check_attach("powertrain", 1).ok());
  EXPECT_TRUE(service.check_attach("comfort", 2).ok());

  const auto violation = service.check_attach("comfort", 1);
  EXPECT_FALSE(violation.ok());
  EXPECT_NE(violation.error().message.find("encapsulation violation"), std::string::npos);
  EXPECT_EQ(service.violations(), 1u);

  EXPECT_FALSE(service.check_attach("anything", 99).ok());  // unregistered VN
}

}  // namespace
}  // namespace decos::vn
