#include "vn/port.hpp"

#include <gtest/gtest.h>

#include "../helpers.hpp"

namespace decos::vn {
namespace {

using decos::testing::make_state_instance;
using decos::testing::state_message;
using namespace decos::literals;

spec::PortSpec state_port_spec(spec::DataDirection dir) {
  spec::PortSpec ps;
  ps.message = "m";
  ps.direction = dir;
  ps.semantics = spec::InfoSemantics::kState;
  ps.period = 10_ms;
  return ps;
}

spec::PortSpec event_port_spec(std::size_t capacity) {
  spec::PortSpec ps;
  ps.message = "m";
  ps.direction = spec::DataDirection::kInput;
  ps.semantics = spec::InfoSemantics::kEvent;
  ps.paradigm = spec::ControlParadigm::kEventTriggered;
  ps.queue_capacity = capacity;
  return ps;
}

spec::MessageInstance instance_with_value(int v) {
  static const spec::MessageSpec ms = state_message("m", "e", 1);
  return make_state_instance(ms, v, Instant::origin());
}

TEST(PortTest, StatePortOverwritesInPlace) {
  Port port{state_port_spec(spec::DataDirection::kInput)};
  EXPECT_FALSE(port.has_data());
  EXPECT_TRUE(port.deposit(instance_with_value(1), Instant::origin()));
  EXPECT_TRUE(port.deposit(instance_with_value(2), Instant::origin() + 1_ms));
  ASSERT_TRUE(port.has_data());
  const auto read = port.read();
  ASSERT_TRUE(read.has_value());
  EXPECT_EQ(read->element("e")->fields[0].as_int(), 2);
  // Non-consuming: still readable.
  EXPECT_TRUE(port.has_data());
  EXPECT_EQ(port.read()->element("e")->fields[0].as_int(), 2);
  EXPECT_EQ(port.deposits(), 2u);
  EXPECT_EQ(port.overflows(), 0u);
}

TEST(PortTest, EventPortQueuesExactlyOnce) {
  Port port{event_port_spec(4)};
  port.deposit(instance_with_value(1), Instant::origin());
  port.deposit(instance_with_value(2), Instant::origin());
  EXPECT_EQ(port.queue_depth(), 2u);
  EXPECT_EQ(port.read()->element("e")->fields[0].as_int(), 1);  // FIFO
  EXPECT_EQ(port.read()->element("e")->fields[0].as_int(), 2);
  EXPECT_FALSE(port.read().has_value());  // consumed
  EXPECT_EQ(port.reads(), 2u);
}

TEST(PortTest, EventPortOverflowCounted) {
  Port port{event_port_spec(2)};
  EXPECT_TRUE(port.deposit(instance_with_value(1), Instant::origin()));
  EXPECT_TRUE(port.deposit(instance_with_value(2), Instant::origin()));
  EXPECT_FALSE(port.deposit(instance_with_value(3), Instant::origin()));
  EXPECT_EQ(port.overflows(), 1u);
  EXPECT_EQ(port.queue_depth(), 2u);
}

TEST(PortTest, LastUpdateTracked) {
  Port port{state_port_spec(spec::DataDirection::kInput)};
  EXPECT_FALSE(port.last_update().has_value());
  port.deposit(instance_with_value(1), Instant::origin() + 7_ms);
  ASSERT_TRUE(port.last_update().has_value());
  EXPECT_EQ(*port.last_update(), Instant::origin() + 7_ms);
}

TEST(PortTest, PushPortNotifies) {
  spec::PortSpec ps = state_port_spec(spec::DataDirection::kInput);
  ps.interaction = spec::Interaction::kPush;
  Port port{ps};
  int notified = 0;
  port.set_notify([&](Port& p) {
    ++notified;
    EXPECT_TRUE(p.has_data());
  });
  port.deposit(instance_with_value(1), Instant::origin());
  port.deposit(instance_with_value(2), Instant::origin());
  EXPECT_EQ(notified, 2);
}

TEST(PortTest, PullPortDoesNotNotify) {
  spec::PortSpec ps = state_port_spec(spec::DataDirection::kInput);
  ps.interaction = spec::Interaction::kPull;
  Port port{ps};
  int notified = 0;
  port.set_notify([&](Port&) { ++notified; });
  port.deposit(instance_with_value(1), Instant::origin());
  EXPECT_EQ(notified, 0);
}

TEST(PortTest, InvalidSpecRejectedAtConstruction) {
  spec::PortSpec bad;  // no message name
  EXPECT_THROW(Port{bad}, SpecError);
}

}  // namespace
}  // namespace decos::vn
