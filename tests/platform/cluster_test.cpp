#include "platform/cluster.hpp"

#include <gtest/gtest.h>

namespace decos::platform {
namespace {

using namespace decos::literals;

TEST(ClusterTest, BuildsAllParts) {
  ClusterConfig config;
  config.nodes = 4;
  config.allocations = {{1, "dasA", 32, {0, 1}}};
  config.drift_ppm = {10.0, -10.0};  // remaining nodes default to 0
  Cluster cluster{config};

  EXPECT_EQ(cluster.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(cluster.controller(i).id(), i);
    EXPECT_NE(cluster.clock_sync(i), nullptr);
    EXPECT_NE(cluster.membership(i), nullptr);
  }
  EXPECT_NEAR(cluster.controller(0).clock().drift_ppm(), 10.0, 1e-6);
  EXPECT_NEAR(cluster.controller(2).clock().drift_ppm(), 0.0, 1e-6);
  // Schedule: 4 core slots + 2 VN slots.
  EXPECT_EQ(cluster.bus().schedule().slot_count(), 6u);
  EXPECT_EQ(cluster.vn_slots(1, 0).size(), 1u);
  EXPECT_EQ(cluster.vn_slots(1, 2).size(), 0u);
}

TEST(ClusterTest, ServicesOptional) {
  ClusterConfig config;
  config.nodes = 2;
  config.enable_clock_sync = false;
  config.enable_membership = false;
  Cluster cluster{config};
  EXPECT_EQ(cluster.clock_sync(0), nullptr);
  EXPECT_EQ(cluster.membership(0), nullptr);
}

TEST(ClusterTest, EncapsulationRegistryPopulated) {
  ClusterConfig config;
  config.nodes = 2;
  config.allocations = {{1, "dasA", 32, {0}}, {2, "dasB", 32, {1}}};
  Cluster cluster{config};
  EXPECT_TRUE(cluster.encapsulation().check_attach("dasA", 1).ok());
  EXPECT_FALSE(cluster.encapsulation().check_attach("dasA", 2).ok());
}

TEST(ClusterTest, RunForAdvancesSimulatedTime) {
  ClusterConfig config;
  config.nodes = 2;
  Cluster cluster{config};
  cluster.start();
  cluster.run_for(100_ms);
  EXPECT_EQ(cluster.simulator().now(), Instant::origin() + 100_ms);
  EXPECT_GT(cluster.bus().frames_delivered(), 0u);
}

TEST(ClusterTest, DoubleStartThrows) {
  ClusterConfig config;
  config.nodes = 2;
  Cluster cluster{config};
  cluster.start();
  EXPECT_THROW(cluster.start(), SpecError);
}

TEST(ClusterTest, PrecisionReflectsSyncQuality) {
  ClusterConfig config;
  config.nodes = 3;
  config.drift_ppm = {100.0, -100.0, 0.0};
  Cluster cluster{config};
  cluster.start();
  cluster.run_for(1_s);
  EXPECT_LT(cluster.precision().abs(), Duration::microseconds(20));
}

TEST(ClusterTest, BadAllocationThrows) {
  ClusterConfig config;
  config.nodes = 2;
  config.allocations = {{1, "dasA", 32, {7}}};  // node 7 does not exist
  EXPECT_THROW(Cluster{config}, SpecError);
}

}  // namespace
}  // namespace decos::platform
