#include "platform/component.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "tt/bus.hpp"

namespace decos::platform {
namespace {

using namespace decos::literals;

struct ComponentFixture : ::testing::Test {
  ComponentFixture() : bus{sim, tt::make_uniform_schedule(10_ms, 1, 1, 16)} {
    controller = std::make_unique<tt::Controller>(sim, bus, 0, sim::DriftingClock{});
    component = std::make_unique<Component>(sim, *controller, 10_ms);
  }

  sim::Simulator sim;
  tt::TtBus bus;
  std::unique_ptr<tt::Controller> controller;
  std::unique_ptr<Component> component;
};

TEST_F(ComponentFixture, JobsRunOncePerActivation) {
  Partition& p = component->add_partition("p0", "powertrain", 0_ms, 2_ms);
  int steps = 0;
  FunctionJob& job = p.add_function_job("j", [&](FunctionJob&, Instant) { ++steps; });
  job.set_execution_time(100_us);
  component->start();
  sim.run_until(Instant::origin() + 49_ms);
  EXPECT_EQ(steps, 5);
  EXPECT_EQ(job.activations(), 5u);
  EXPECT_EQ(component->activations(), 5u);
}

TEST_F(ComponentFixture, JobsSeeLocalDispatchTime) {
  Partition& p = component->add_partition("p0", "d", 2_ms, 3_ms);
  std::vector<Instant> seen;
  FunctionJob& first = p.add_function_job("a", [&](FunctionJob&, Instant now) { seen.push_back(now); });
  first.set_execution_time(1_ms);
  FunctionJob& second = p.add_function_job("b", [&](FunctionJob&, Instant now) { seen.push_back(now); });
  second.set_execution_time(1_ms);
  component->start();
  sim.run_until(Instant::origin() + 9_ms);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], Instant::origin() + 2_ms);       // window start
  EXPECT_EQ(seen[1], Instant::origin() + 3_ms);       // after job a's time
}

TEST_F(ComponentFixture, OverrunningJobSkippedNotSpilled) {
  Partition& p = component->add_partition("p0", "d", 0_ms, 2_ms);
  int a_steps = 0;
  int b_steps = 0;
  FunctionJob& a = p.add_function_job("a", [&](FunctionJob&, Instant) { ++a_steps; });
  a.set_execution_time(1_ms);
  FunctionJob& b = p.add_function_job("b", [&](FunctionJob&, Instant) { ++b_steps; });
  b.set_execution_time(1500_us);  // no longer fits after a
  // Demand 2.5ms > 2ms budget: validation must reject this configuration.
  EXPECT_THROW(component->start(), SpecError);
}

TEST_F(ComponentFixture, DynamicOverrunCounted) {
  Partition& p = component->add_partition("p0", "d", 0_ms, 2_ms);
  FunctionJob& a = p.add_function_job("a", [&](FunctionJob&, Instant) {});
  a.set_execution_time(1_ms);
  FunctionJob& b = p.add_function_job("b", [&](FunctionJob&, Instant) {});
  b.set_execution_time(500_us);
  component->start();
  // Inflate job a's execution time at runtime (a software fault): job b
  // no longer fits and is skipped, but the partition window holds.
  sim.schedule_at(Instant::origin() + 5_ms, [&] { a.set_execution_time(1900_us); });
  sim.run_until(Instant::origin() + 39_ms);
  EXPECT_EQ(a.activations(), 4u);
  EXPECT_EQ(b.activations(), 1u);  // only the first cycle
  EXPECT_EQ(p.overruns(), 3u);
}

TEST_F(ComponentFixture, PartitionWindowValidation) {
  component->add_partition("p0", "d", 0_ms, 6_ms);
  component->add_partition("p1", "e", 5_ms, 3_ms);  // overlaps p0
  EXPECT_FALSE(component->validate().ok());

  Component c2{sim, *controller, 10_ms};
  c2.add_partition("late", "d", 9_ms, 5_ms);  // exceeds period
  EXPECT_FALSE(c2.validate().ok());
}

TEST_F(ComponentFixture, DasMismatchRejected) {
  Partition& p = component->add_partition("p0", "powertrain", 0_ms, 2_ms);
  EXPECT_THROW(
      p.add_job(std::make_unique<FunctionJob>("alien", "comfort",
                                              [](FunctionJob&, Instant) {})),
      SpecError);
}

TEST_F(ComponentFixture, TwoPartitionsDifferentDasesShareComponent) {
  Partition& p0 = component->add_partition("p0", "powertrain", 0_ms, 3_ms);
  Partition& p1 = component->add_partition("p1", "comfort", 5_ms, 3_ms);
  int n0 = 0;
  int n1 = 0;
  p0.add_function_job("j0", [&](FunctionJob&, Instant) { ++n0; }).set_execution_time(10_us);
  p1.add_function_job("j1", [&](FunctionJob&, Instant) { ++n1; }).set_execution_time(10_us);
  component->start();
  sim.run_until(Instant::origin() + 29_ms);
  EXPECT_EQ(n0, 3);
  EXPECT_EQ(n1, 3);
}

TEST_F(ComponentFixture, CrashedComponentRunsNoJobs) {
  Partition& p = component->add_partition("p0", "d", 0_ms, 2_ms);
  int steps = 0;
  p.add_function_job("j", [&](FunctionJob&, Instant) { ++steps; }).set_execution_time(10_us);
  component->start();
  sim.schedule_at(Instant::origin() + 15_ms, [&] { controller->set_crashed(true); });
  sim.run_until(Instant::origin() + 49_ms);
  EXPECT_EQ(steps, 2);  // cycles 0 and 1 only
}

TEST_F(ComponentFixture, PortsOwnedByJobs) {
  Partition& p = component->add_partition("p0", "d", 0_ms, 2_ms);
  FunctionJob& job = p.add_function_job("j", [](FunctionJob&, Instant) {});
  spec::PortSpec ps;
  ps.message = "m";
  ps.period = 10_ms;
  vn::Port& port = job.add_port(ps);
  EXPECT_EQ(job.ports().size(), 1u);
  EXPECT_EQ(&*job.ports()[0], &port);
}

}  // namespace
}  // namespace decos::platform
