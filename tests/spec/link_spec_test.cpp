#include "spec/link_spec.hpp"

#include <gtest/gtest.h>

#include "../helpers.hpp"
#include "spec/message.hpp"

namespace decos::spec {
namespace {

using decos::testing::sliding_roof_spec;
using decos::testing::state_message;
using namespace decos::literals;

LinkSpec two_message_link() {
  LinkSpec ls{"comfort"};
  ls.add_message(sliding_roof_spec());
  ls.add_message(state_message("msgwheel", "wheelspeed", 100));
  return ls;
}

TEST(LinkSpecTest, MessageLookup) {
  const LinkSpec ls = two_message_link();
  EXPECT_NE(ls.message("msgslidingroof"), nullptr);
  EXPECT_NE(ls.message("msgwheel"), nullptr);
  EXPECT_EQ(ls.message("ghost"), nullptr);
}

TEST(LinkSpecTest, IdentifyByWireKey) {
  const LinkSpec ls = two_message_link();
  const auto roof = encode(*ls.message("msgslidingroof"),
                           make_instance(*ls.message("msgslidingroof"))).value();
  const auto wheel =
      encode(*ls.message("msgwheel"), make_instance(*ls.message("msgwheel"))).value();
  EXPECT_EQ(ls.identify(roof)->name(), "msgslidingroof");
  EXPECT_EQ(ls.identify(wheel)->name(), "msgwheel");
  const std::vector<std::byte> junk(3, std::byte{0x5A});
  EXPECT_EQ(ls.identify(junk), nullptr);
}

TEST(LinkSpecTest, ParameterAccess) {
  LinkSpec ls{"d"};
  ls.set_parameter("tmin", ta::Value{4_ms});
  EXPECT_TRUE(ls.has_parameter("tmin"));
  EXPECT_FALSE(ls.has_parameter("tmax"));
  EXPECT_EQ(ls.parameter("tmin").as_duration(), 4_ms);
  EXPECT_THROW(ls.parameter("tmax"), SpecError);
}

TEST(LinkSpecTest, PortLookup) {
  LinkSpec ls = two_message_link();
  PortSpec ps;
  ps.message = "msgwheel";
  ps.direction = DataDirection::kInput;
  ps.period = 10_ms;
  ls.add_port(ps);
  EXPECT_NE(ls.port_for("msgwheel"), nullptr);
  EXPECT_EQ(ls.port_for("msgslidingroof"), nullptr);
}

TEST(LinkSpecTest, ValidateRejectsDuplicateMessages) {
  LinkSpec ls{"d"};
  ls.add_message(sliding_roof_spec());
  ls.add_message(sliding_roof_spec());
  EXPECT_FALSE(ls.validate().ok());
}

TEST(LinkSpecTest, ValidateRejectsPortForUnknownMessage) {
  LinkSpec ls = two_message_link();
  PortSpec ps;
  ps.message = "ghost";
  ps.period = 1_ms;
  ls.add_port(ps);
  EXPECT_FALSE(ls.validate().ok());
}

TEST(LinkSpecTest, ValidateRejectsAutomatonForUnknownMessage) {
  LinkSpec ls = two_message_link();
  ls.add_automaton(ta::make_unconstrained_receive("a", "ghost"));
  EXPECT_FALSE(ls.validate().ok());
}

TEST(LinkSpecTest, ConvertibleElementNamesIncludeTransferTargets) {
  LinkSpec ls = two_message_link();
  TransferRule rule;
  rule.target = "movementstate";
  rule.source = "movementevent";
  TransferFieldRule fr;
  fr.name = "statevalue";
  fr.update = ta::parse_expression("statevalue + valuechange").value();
  rule.fields.push_back(std::move(fr));
  ls.add_transfer_rule(std::move(rule));

  const auto names = ls.convertible_element_names();
  // movementevent (roof), wheelspeed (wheel), movementstate (derived)
  EXPECT_EQ(names.size(), 3u);
}

TEST(PortSpecTest, ValidateChecks) {
  PortSpec ps;
  ps.message = "m";
  ps.paradigm = ControlParadigm::kTimeTriggered;
  ps.period = Duration::zero();
  EXPECT_FALSE(ps.validate().ok());  // TT needs a period

  ps.period = 5_ms;
  EXPECT_TRUE(ps.validate().ok());

  ps.semantics = InfoSemantics::kEvent;
  ps.queue_capacity = 0;
  EXPECT_FALSE(ps.validate().ok());  // event needs a queue

  ps.queue_capacity = 4;
  ps.min_interarrival = 10_ms;
  ps.max_interarrival = 5_ms;
  EXPECT_FALSE(ps.validate().ok());  // tmin > tmax

  PortSpec unnamed;
  EXPECT_FALSE(unnamed.validate().ok());
}

}  // namespace
}  // namespace decos::spec
