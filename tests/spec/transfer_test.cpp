#include "spec/transfer.hpp"

#include <gtest/gtest.h>

#include "spec/linkspec_xml.hpp"

namespace decos::spec {
namespace {

TransferRule valid_rule() {
  TransferRule rule;
  rule.target = "state_elem";
  rule.source = "event_elem";
  TransferFieldRule fr;
  fr.name = "v";
  fr.init = ta::Value{0};
  fr.semantics = "state";
  fr.update = ta::parse_expression("v + delta").value();
  rule.fields.push_back(std::move(fr));
  return rule;
}

TEST(TransferRuleTest, ValidRuleAccepted) { EXPECT_TRUE(valid_rule().validate().ok()); }

TEST(TransferRuleTest, MissingTargetRejected) {
  TransferRule rule = valid_rule();
  rule.target.clear();
  EXPECT_FALSE(rule.validate().ok());
}

TEST(TransferRuleTest, MissingSourceRejected) {
  TransferRule rule = valid_rule();
  rule.source.clear();
  EXPECT_FALSE(rule.validate().ok());
}

TEST(TransferRuleTest, NoFieldsRejected) {
  TransferRule rule = valid_rule();
  rule.fields.clear();
  EXPECT_FALSE(rule.validate().ok());
}

TEST(TransferRuleTest, UnnamedFieldRejected) {
  TransferRule rule = valid_rule();
  rule.fields[0].name.clear();
  EXPECT_FALSE(rule.validate().ok());
}

TEST(TransferRuleTest, MissingUpdateRejected) {
  TransferRule rule = valid_rule();
  rule.fields[0].update = nullptr;
  EXPECT_FALSE(rule.validate().ok());
}

TEST(LinkSpecXmlWriterTest, AutomatonVariablesAndClocksRoundTrip) {
  LinkSpec ls{"d"};
  MessageSpec ms{"m"};
  ElementSpec key;
  key.name = "name";
  key.key = true;
  key.fields.push_back(FieldSpec{"id", FieldType::kUInt8, 0, ta::Value{3}});
  ms.add_element(std::move(key));
  ls.add_message(std::move(ms));

  ta::AutomatonSpec automaton{"stateful"};
  automaton.add_location("run");
  automaton.add_location("err");
  automaton.set_error("err");
  automaton.add_clock("x");
  automaton.add_clock("y");
  automaton.add_variable("n", ta::Value{7});
  automaton.add_variable("armed", ta::Value{true});
  ta::Edge edge;
  edge.source = "run";
  edge.target = "run";
  edge.action = ta::ActionKind::kReceive;
  edge.message = "m";
  edge.guard = ta::parse_expression("x >= 4ms && n > 0").value();
  edge.assignments = ta::parse_assignments("x := 0; n := n - 1").value();
  automaton.add_edge(std::move(edge));
  ls.add_automaton(std::move(automaton));

  const std::string once = write_link_spec_xml(ls);
  auto reparsed = parse_link_spec_xml(once);
  ASSERT_TRUE(reparsed.ok()) << reparsed.error().to_string();
  const ta::AutomatonSpec& back = reparsed.value().automata()[0];
  EXPECT_EQ(back.clocks().size(), 2u);
  ASSERT_EQ(back.variables().size(), 2u);
  EXPECT_EQ(back.variables()[0].first, "n");
  EXPECT_EQ(back.variables()[0].second.as_int(), 7);
  EXPECT_TRUE(back.variables()[1].second.as_bool());
  EXPECT_EQ(back.error(), "err");
  ASSERT_EQ(back.edges().size(), 1u);
  EXPECT_EQ(back.edges()[0].assignments.size(), 2u);
  EXPECT_EQ(write_link_spec_xml(reparsed.value()), once);
}

TEST(LinkSpecXmlWriterTest, NegativeAndRealLiteralsSurvive) {
  LinkSpec ls{"d"};
  ls.set_parameter("neg", ta::Value{-42});
  ls.set_parameter("real", ta::Value{2.5});
  ls.set_parameter("whole_real", ta::Value{4.0});
  const std::string once = write_link_spec_xml(ls);
  auto reparsed = parse_link_spec_xml(once);
  ASSERT_TRUE(reparsed.ok()) << reparsed.error().to_string();
  EXPECT_EQ(reparsed.value().parameter("neg").as_int(), -42);
  EXPECT_TRUE(reparsed.value().parameter("real").is_real());
  EXPECT_DOUBLE_EQ(reparsed.value().parameter("real").as_real(), 2.5);
  // ".0" is preserved so the value stays a real through the round trip.
  EXPECT_TRUE(reparsed.value().parameter("whole_real").is_real());
}

}  // namespace
}  // namespace decos::spec
