#include "spec/vn_spec.hpp"

#include <gtest/gtest.h>

#include "../helpers.hpp"

namespace decos::spec {
namespace {

using decos::testing::state_message;
using namespace decos::literals;

PortSpec tt_output(const std::string& msg, Duration period) {
  PortSpec ps;
  ps.message = msg;
  ps.direction = DataDirection::kOutput;
  ps.semantics = InfoSemantics::kState;
  ps.paradigm = ControlParadigm::kTimeTriggered;
  ps.period = period;
  return ps;
}

PortSpec tt_input(const std::string& msg, Duration period) {
  PortSpec ps = tt_output(msg, period);
  ps.direction = DataDirection::kInput;
  return ps;
}

LinkSpec producer_link(const std::string& msg, int id, Duration period) {
  LinkSpec ls{"job"};
  ls.add_message(state_message(msg, "e_" + msg, id));
  ls.add_port(tt_output(msg, period));
  return ls;
}

TEST(VirtualNetworkSpecTest, NamespaceAcrossLinks) {
  VirtualNetworkSpec vn{"powertrain", ControlParadigm::kTimeTriggered};
  vn.add_link(producer_link("msgA", 1, 10_ms));
  vn.add_link(producer_link("msgB", 2, 20_ms));
  EXPECT_NE(vn.message("msgA"), nullptr);
  EXPECT_NE(vn.message("msgB"), nullptr);
  EXPECT_EQ(vn.message("msgC"), nullptr);
  EXPECT_TRUE(vn.validate().ok());
}

TEST(VirtualNetworkSpecTest, WorstCaseDemand) {
  VirtualNetworkSpec vn{"v", ControlParadigm::kTimeTriggered};
  // state_message wire size: 2 (key) + 4 + 8 = 14 bytes.
  vn.add_link(producer_link("msgA", 1, 10_ms));  // 14 B / 10ms
  vn.add_link(producer_link("msgB", 2, 5_ms));   // 14 B / 5ms
  vn.set_allocation(100, 10_ms);
  // per 10ms round: 14 + 28 = 42 bytes.
  EXPECT_DOUBLE_EQ(vn.worst_case_bytes_per_round(), 42.0);
  EXPECT_TRUE(vn.validate().ok());
}

TEST(VirtualNetworkSpecTest, OverAllocationRejected) {
  VirtualNetworkSpec vn{"v", ControlParadigm::kTimeTriggered};
  vn.add_link(producer_link("msgA", 1, 1_ms));  // 140 B per 10ms round
  vn.set_allocation(100, 10_ms);
  EXPECT_FALSE(vn.validate().ok());
}

TEST(VirtualNetworkSpecTest, EtWorstCaseUsesTmin) {
  VirtualNetworkSpec vn{"v", ControlParadigm::kEventTriggered};
  LinkSpec ls{"job"};
  ls.add_message(state_message("msgE", "e", 1));
  PortSpec out;
  out.message = "msgE";
  out.direction = DataDirection::kOutput;
  out.semantics = InfoSemantics::kEvent;
  out.paradigm = ControlParadigm::kEventTriggered;
  out.min_interarrival = 2_ms;
  out.queue_capacity = 8;
  ls.add_port(out);
  vn.add_link(std::move(ls));
  vn.set_allocation(100, 10_ms);
  // worst case: 14 B every 2ms = 70 B per round.
  EXPECT_DOUBLE_EQ(vn.worst_case_bytes_per_round(), 70.0);
  EXPECT_TRUE(vn.unbounded_output_ports().empty());
  EXPECT_TRUE(vn.validate().ok());
}

TEST(VirtualNetworkSpecTest, UnboundedEtPortsReported) {
  VirtualNetworkSpec vn{"v", ControlParadigm::kEventTriggered};
  LinkSpec ls{"job"};
  ls.add_message(state_message("msgE", "e", 1));
  PortSpec out;
  out.message = "msgE";
  out.direction = DataDirection::kOutput;
  out.semantics = InfoSemantics::kEvent;
  out.paradigm = ControlParadigm::kEventTriggered;
  out.queue_capacity = 8;  // no tmin: unbounded
  ls.add_port(out);
  vn.add_link(std::move(ls));
  const auto unbounded = vn.unbounded_output_ports();
  ASSERT_EQ(unbounded.size(), 1u);
  EXPECT_EQ(unbounded[0], "msgE");
  EXPECT_DOUBLE_EQ(vn.worst_case_bytes_per_round(), 0.0);
}

TEST(VirtualNetworkSpecTest, DuplicateProducerRejected) {
  VirtualNetworkSpec vn{"v", ControlParadigm::kTimeTriggered};
  vn.add_link(producer_link("msgA", 1, 10_ms));
  vn.add_link(producer_link("msgA", 1, 10_ms));  // second producer for msgA
  EXPECT_FALSE(vn.validate().ok());
}

TEST(VirtualNetworkSpecTest, ConsumerOfSameMessageAccepted) {
  VirtualNetworkSpec vn{"v", ControlParadigm::kTimeTriggered};
  vn.add_link(producer_link("msgA", 1, 10_ms));
  LinkSpec consumer{"job2"};
  consumer.add_message(state_message("msgA", "e_msgA", 1));
  consumer.add_port(tt_input("msgA", 10_ms));
  vn.add_link(std::move(consumer));
  EXPECT_TRUE(vn.validate().ok());
}

TEST(VirtualNetworkSpecTest, ConflictingLayoutRejected) {
  VirtualNetworkSpec vn{"v", ControlParadigm::kTimeTriggered};
  vn.add_link(producer_link("msgA", 1, 10_ms));
  LinkSpec consumer{"job2"};
  MessageSpec other{"msgA"};  // same name, different layout
  ElementSpec key;
  key.name = "name";
  key.key = true;
  key.fields.push_back(FieldSpec{"id", FieldType::kInt32, 0, ta::Value{1}});
  other.add_element(std::move(key));
  consumer.add_message(std::move(other));
  vn.add_link(std::move(consumer));
  EXPECT_FALSE(vn.validate().ok());
}

TEST(VirtualNetworkSpecTest, WrongParadigmPortRejected) {
  VirtualNetworkSpec vn{"v", ControlParadigm::kEventTriggered};
  vn.add_link(producer_link("msgA", 1, 10_ms));  // TT port in an ET VN
  EXPECT_FALSE(vn.validate().ok());
}

TEST(VirtualNetworkSpecTest, EmptyRejected) {
  VirtualNetworkSpec vn{"v", ControlParadigm::kTimeTriggered};
  EXPECT_FALSE(vn.validate().ok());
}

}  // namespace
}  // namespace decos::spec
