#include <gtest/gtest.h>

#include "../helpers.hpp"
#include "spec/message.hpp"

namespace decos::spec {
namespace {

using decos::testing::sliding_roof_spec;
using namespace decos::literals;

TEST(CodecTest, MakeInstanceFillsStaticsAndDefaults) {
  const MessageSpec ms = sliding_roof_spec();
  const MessageInstance inst = make_instance(ms);
  EXPECT_EQ(inst.message(), "msgslidingroof");
  EXPECT_EQ(inst.field("name", "id", ms).as_int(), 731);
  EXPECT_EQ(inst.field("movementevent", "valuechange", ms).as_int(), 0);
  EXPECT_FALSE(inst.field("fullclosure", "trigger", ms).as_bool());
}

TEST(CodecTest, EncodeDecodeRoundTrip) {
  const MessageSpec ms = sliding_roof_spec();
  MessageInstance inst = make_instance(ms);
  inst.element("movementevent")->fields[0] = ta::Value{-42};
  inst.element("movementevent")->fields[1] = ta::Value{Instant::origin() + 5_ms};
  inst.element("fullclosure")->fields[0] = ta::Value{true};

  auto bytes = encode(ms, inst);
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(bytes.value().size(), ms.wire_size());

  auto back = decode(ms, bytes.value());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().field("name", "id", ms).as_int(), 731);
  EXPECT_EQ(back.value().field("movementevent", "valuechange", ms).as_int(), -42);
  EXPECT_EQ(back.value().field("movementevent", "eventtime", ms).as_instant(),
            Instant::origin() + 5_ms);
  EXPECT_TRUE(back.value().field("fullclosure", "trigger", ms).as_bool());
}

TEST(CodecTest, NegativeIntegersSignExtend) {
  MessageSpec ms{"m"};
  ElementSpec e;
  e.name = "e";
  e.key = true;
  e.fields.push_back(FieldSpec{"id", FieldType::kUInt8, 0, ta::Value{9}});
  ms.add_element(std::move(e));
  ElementSpec v;
  v.name = "v";
  v.fields.push_back(FieldSpec{"i8", FieldType::kInt8, 0, std::nullopt});
  v.fields.push_back(FieldSpec{"i16", FieldType::kInt16, 0, std::nullopt});
  v.fields.push_back(FieldSpec{"i32", FieldType::kInt32, 0, std::nullopt});
  v.fields.push_back(FieldSpec{"i64", FieldType::kInt64, 0, std::nullopt});
  ms.add_element(std::move(v));

  MessageInstance inst = make_instance(ms);
  inst.element("v")->fields[0] = ta::Value{-1};
  inst.element("v")->fields[1] = ta::Value{-32768};
  inst.element("v")->fields[2] = ta::Value{-123456};
  inst.element("v")->fields[3] = ta::Value{std::int64_t{-5'000'000'000}};
  auto back = decode(ms, encode(ms, inst).value()).value();
  EXPECT_EQ(back.field("v", "i8", ms).as_int(), -1);
  EXPECT_EQ(back.field("v", "i16", ms).as_int(), -32768);
  EXPECT_EQ(back.field("v", "i32", ms).as_int(), -123456);
  EXPECT_EQ(back.field("v", "i64", ms).as_int(), -5'000'000'000);
}

TEST(CodecTest, FloatsRoundTrip) {
  MessageSpec ms{"m"};
  ElementSpec e;
  e.name = "n";
  e.key = true;
  e.fields.push_back(FieldSpec{"id", FieldType::kUInt8, 0, ta::Value{1}});
  ms.add_element(std::move(e));
  ElementSpec v;
  v.name = "v";
  v.fields.push_back(FieldSpec{"f32", FieldType::kFloat32, 0, std::nullopt});
  v.fields.push_back(FieldSpec{"f64", FieldType::kFloat64, 0, std::nullopt});
  ms.add_element(std::move(v));

  MessageInstance inst = make_instance(ms);
  inst.element("v")->fields[0] = ta::Value{1.5};
  inst.element("v")->fields[1] = ta::Value{3.141592653589793};
  auto back = decode(ms, encode(ms, inst).value()).value();
  EXPECT_DOUBLE_EQ(back.field("v", "f32", ms).as_real(), 1.5);
  EXPECT_DOUBLE_EQ(back.field("v", "f64", ms).as_real(), 3.141592653589793);
}

TEST(CodecTest, StringsPaddedAndTruncationRejected) {
  MessageSpec ms{"m"};
  ElementSpec e;
  e.name = "n";
  e.key = true;
  e.fields.push_back(FieldSpec{"id", FieldType::kUInt8, 0, ta::Value{2}});
  ms.add_element(std::move(e));
  ElementSpec v;
  v.name = "v";
  v.fields.push_back(FieldSpec{"s", FieldType::kString, 8, std::nullopt});
  ms.add_element(std::move(v));

  MessageInstance inst = make_instance(ms);
  inst.element("v")->fields[0] = ta::Value{std::string{"abc"}};
  auto bytes = encode(ms, inst);
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(bytes.value().size(), 9u);
  auto back = decode(ms, bytes.value()).value();
  EXPECT_EQ(back.field("v", "s", ms).as_string(), "abc");

  inst.element("v")->fields[0] = ta::Value{std::string{"way too long for 8"}};
  EXPECT_FALSE(encode(ms, inst).ok());
}

TEST(CodecTest, OutOfRangeValueRejected) {
  MessageSpec ms = decos::testing::state_message("m", "e", 5);
  MessageInstance inst = make_instance(ms);
  // int16 range on the sliding-roof example; here value is int32:
  inst.element("e")->fields[0] = ta::Value{std::int64_t{1} << 40};
  EXPECT_FALSE(encode(ms, inst).ok());
}

TEST(CodecTest, SizeMismatchRejected) {
  const MessageSpec ms = sliding_roof_spec();
  std::vector<std::byte> junk(ms.wire_size() + 1, std::byte{0});
  EXPECT_FALSE(decode(ms, junk).ok());
}

TEST(CodecTest, WrongSpecRejected) {
  const MessageSpec ms = sliding_roof_spec();
  MessageInstance inst = make_instance(decos::testing::state_message("other", "e", 5));
  EXPECT_FALSE(encode(ms, inst).ok());
}

TEST(CodecTest, MatchesKeyIdentifiesMessage) {
  const MessageSpec roof = sliding_roof_spec();
  const MessageSpec other = decos::testing::state_message("wheel", "speed", 100);
  const auto roof_bytes = encode(roof, make_instance(roof)).value();
  const auto other_bytes = encode(other, make_instance(other)).value();

  EXPECT_TRUE(matches_key(roof, roof_bytes));
  EXPECT_FALSE(matches_key(roof, other_bytes));
  EXPECT_TRUE(matches_key(other, other_bytes));
  EXPECT_FALSE(matches_key(other, roof_bytes));
}

TEST(CodecTest, MatchesKeyRequiresAKeyElement) {
  MessageSpec keyless{"m"};
  ElementSpec v;
  v.name = "v";
  v.fields.push_back(FieldSpec{"x", FieldType::kUInt8, 0, std::nullopt});
  keyless.add_element(std::move(v));
  const std::vector<std::byte> bytes(1, std::byte{0});
  EXPECT_FALSE(matches_key(keyless, bytes));
}

TEST(CodecTest, FieldAccessorThrowsOnMissing) {
  const MessageSpec ms = sliding_roof_spec();
  const MessageInstance inst = make_instance(ms);
  EXPECT_THROW(inst.field("nope", "id", ms), SpecError);
  EXPECT_THROW(inst.field("name", "nope", ms), SpecError);
}

}  // namespace
}  // namespace decos::spec
