#include "spec/message_spec.hpp"

#include <gtest/gtest.h>

namespace decos::spec {
namespace {

MessageSpec sliding_roof() {
  // The paper's Fig. 6 message.
  MessageSpec ms{"msgslidingroof"};
  ElementSpec name;
  name.name = "name";
  name.key = true;
  name.fields.push_back(FieldSpec{"id", FieldType::kInt16, 0, ta::Value{731}});
  ms.add_element(std::move(name));

  ElementSpec movement;
  movement.name = "movementevent";
  movement.convertible = true;
  movement.fields.push_back(FieldSpec{"valuechange", FieldType::kInt16, 0, std::nullopt});
  movement.fields.push_back(FieldSpec{"eventtime", FieldType::kTimestamp, 0, std::nullopt});
  ms.add_element(std::move(movement));

  ElementSpec closure;
  closure.name = "fullclosure";
  closure.fields.push_back(FieldSpec{"trigger", FieldType::kBoolean, 0, std::nullopt});
  ms.add_element(std::move(closure));
  return ms;
}

TEST(FieldTypeTest, WireSizes) {
  EXPECT_EQ(field_wire_size(FieldType::kBoolean, 0), 1u);
  EXPECT_EQ(field_wire_size(FieldType::kInt8, 0), 1u);
  EXPECT_EQ(field_wire_size(FieldType::kInt16, 0), 2u);
  EXPECT_EQ(field_wire_size(FieldType::kUInt32, 0), 4u);
  EXPECT_EQ(field_wire_size(FieldType::kInt64, 0), 8u);
  EXPECT_EQ(field_wire_size(FieldType::kFloat32, 0), 4u);
  EXPECT_EQ(field_wire_size(FieldType::kFloat64, 0), 8u);
  EXPECT_EQ(field_wire_size(FieldType::kTimestamp, 0), 8u);
  EXPECT_EQ(field_wire_size(FieldType::kString, 12), 12u);
}

TEST(FieldTypeTest, ParseFromPaperSpellings) {
  EXPECT_EQ(parse_field_type("integer", 16, false).value(), FieldType::kInt16);
  EXPECT_EQ(parse_field_type("integer", 0, false).value(), FieldType::kInt32);
  EXPECT_EQ(parse_field_type("integer", 32, true).value(), FieldType::kUInt32);
  EXPECT_EQ(parse_field_type("unsigned", 8, false).value(), FieldType::kUInt8);
  EXPECT_EQ(parse_field_type("boolean", 0, false).value(), FieldType::kBoolean);
  EXPECT_EQ(parse_field_type("timestamp", 0, false).value(), FieldType::kTimestamp);
  EXPECT_EQ(parse_field_type("float", 32, false).value(), FieldType::kFloat32);
  EXPECT_EQ(parse_field_type("float", 0, false).value(), FieldType::kFloat64);
  EXPECT_EQ(parse_field_type("string", 0, false).value(), FieldType::kString);
  EXPECT_EQ(parse_field_type("uint16", 0, false).value(), FieldType::kUInt16);
}

TEST(FieldTypeTest, ParseRejectsUnknown) {
  EXPECT_FALSE(parse_field_type("quaternion", 0, false).ok());
  EXPECT_FALSE(parse_field_type("integer", 24, false).ok());
  EXPECT_FALSE(parse_field_type("float", 16, false).ok());
}

TEST(FieldTypeTest, NamesRoundTrip) {
  for (const FieldType t :
       {FieldType::kBoolean, FieldType::kInt8, FieldType::kInt16, FieldType::kInt32,
        FieldType::kInt64, FieldType::kUInt8, FieldType::kUInt16, FieldType::kUInt32,
        FieldType::kUInt64, FieldType::kFloat32, FieldType::kFloat64, FieldType::kTimestamp}) {
    EXPECT_EQ(parse_field_type(field_type_name(t), 0, false).value(), t);
  }
}

TEST(MessageSpecTest, SlidingRoofShape) {
  const MessageSpec ms = sliding_roof();
  EXPECT_TRUE(ms.validate().ok());
  EXPECT_EQ(ms.wire_size(), 2u + 2u + 8u + 1u);
  EXPECT_EQ(ms.elements().size(), 3u);
  EXPECT_EQ(ms.convertible_elements().size(), 1u);
  EXPECT_EQ(ms.convertible_elements()[0]->name, "movementevent");
  ASSERT_NE(ms.element("fullclosure"), nullptr);
  EXPECT_EQ(ms.element("fullclosure")->wire_size(), 1u);
  EXPECT_EQ(ms.element("nope"), nullptr);
  ASSERT_NE(ms.element("movementevent")->field("eventtime"), nullptr);
  EXPECT_EQ(ms.element("movementevent")->field("bogus"), nullptr);
}

TEST(MessageSpecTest, ValidateRejectsAnonymous) {
  MessageSpec ms{""};
  EXPECT_FALSE(ms.validate().ok());

  MessageSpec empty{"m"};
  EXPECT_FALSE(empty.validate().ok());
}

TEST(MessageSpecTest, ValidateRejectsDuplicates) {
  MessageSpec ms{"m"};
  ElementSpec e;
  e.name = "e";
  e.fields.push_back(FieldSpec{"f", FieldType::kInt8, 0, std::nullopt});
  ms.add_element(e);
  ms.add_element(e);
  EXPECT_FALSE(ms.validate().ok());

  MessageSpec ms2{"m"};
  ElementSpec e2;
  e2.name = "e";
  e2.fields.push_back(FieldSpec{"f", FieldType::kInt8, 0, std::nullopt});
  e2.fields.push_back(FieldSpec{"f", FieldType::kInt8, 0, std::nullopt});
  ms2.add_element(std::move(e2));
  EXPECT_FALSE(ms2.validate().ok());
}

TEST(MessageSpecTest, ValidateRejectsUnsizedString) {
  MessageSpec ms{"m"};
  ElementSpec e;
  e.name = "e";
  e.fields.push_back(FieldSpec{"s", FieldType::kString, 0, std::nullopt});
  ms.add_element(std::move(e));
  EXPECT_FALSE(ms.validate().ok());
}

TEST(MessageSpecTest, KeyElementsMustBeStatic) {
  MessageSpec ms{"m"};
  ElementSpec key;
  key.name = "name";
  key.key = true;
  key.fields.push_back(FieldSpec{"id", FieldType::kInt16, 0, std::nullopt});  // dynamic!
  ms.add_element(std::move(key));
  EXPECT_FALSE(ms.validate().ok());
}

}  // namespace
}  // namespace decos::spec
