#include "spec/linkspec_xml.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace decos::spec {
namespace {

using namespace decos::literals;

/// The paper's Fig. 6 link specification, made executable (see
/// linkspec_xml.hpp for the two documented extensions).
constexpr const char* kFig6 = R"(<?xml version="1.0"?>
<linkspec>
  <das>X-by-wire</das>
  <param name="tmin" value="4ms"/>
  <param name="tmax" value="100ms"/>
  <message name="msgslidingroof">
    <element name="name" key="yes" conv="no">
      <field name="id">
        <type length="16">integer</type>
        <value>731</value>
      </field>
    </element>
    <element name="movementevent" key="no" conv="yes">
      <field name="valuechange"><type length="16">integer</type></field>
      <field name="eventtime"><type>timestamp</type></field>
    </element>
    <element name="fullclosure" key="no" conv="no">
      <field name="trigger"><type>boolean</type></field>
    </element>
  </message>
  <timedautomaton name="msgslidingroofreception">
    <location name="statepassive"/>
    <location name="stateactive"/>
    <location name="stateerror"/>
    <init name="statepassive"/>
    <error name="stateerror"/>
    <clock name="x"/>
    <transition>
      <source name="statepassive"/><target name="stateactive"/>
      <label type="recv">msgslidingroof</label>
      <label type="assignment">x:=0</label>
    </transition>
    <transition>
      <source name="stateactive"/><target name="stateactive"/>
      <label type="recv">msgslidingroof</label>
      <label type="guard">x&gt;=tmin, x&lt;=tmax</label>
      <label type="assignment">x:=0</label>
    </transition>
    <transition>
      <source name="stateactive"/><target name="stateerror"/>
      <label type="guard">x&gt;tmax</label>
    </transition>
  </timedautomaton>
  <transfersemantics>
    <element name="movementstate" source="movementevent">
      <field name="statevalue" init="0" semantics="state">statevalue=statevalue+valuechange</field>
      <field name="observationtime" init="0" semantics="state">observationtime=eventtime</field>
    </element>
  </transfersemantics>
  <port message="msgslidingroof" direction="input" semantics="event" paradigm="et"
        interaction="push" tmin="4ms" tmax="100ms" queue="16"/>
</linkspec>
)";

TEST(LinkSpecXmlTest, ParsesFig6) {
  auto spec = parse_link_spec_xml(kFig6);
  ASSERT_TRUE(spec.ok()) << (spec.ok() ? "" : spec.error().to_string());
  const LinkSpec& ls = spec.value();

  EXPECT_EQ(ls.das(), "X-by-wire");
  EXPECT_EQ(ls.parameter("tmin").as_duration(), 4_ms);
  EXPECT_EQ(ls.parameter("tmax").as_duration(), 100_ms);

  ASSERT_EQ(ls.messages().size(), 1u);
  const MessageSpec& ms = ls.messages()[0];
  EXPECT_EQ(ms.name(), "msgslidingroof");
  ASSERT_EQ(ms.elements().size(), 3u);
  EXPECT_TRUE(ms.elements()[0].key);
  EXPECT_TRUE(ms.elements()[1].convertible);
  EXPECT_FALSE(ms.elements()[2].convertible);
  ASSERT_TRUE(ms.elements()[0].fields[0].static_value.has_value());
  EXPECT_EQ(ms.elements()[0].fields[0].static_value->as_int(), 731);
  EXPECT_EQ(ms.elements()[1].fields[0].type, FieldType::kInt16);
  EXPECT_EQ(ms.elements()[1].fields[1].type, FieldType::kTimestamp);

  ASSERT_EQ(ls.automata().size(), 1u);
  const ta::AutomatonSpec& as = ls.automata()[0];
  EXPECT_EQ(as.name(), "msgslidingroofreception");
  EXPECT_EQ(as.initial(), "statepassive");
  EXPECT_EQ(as.error(), "stateerror");
  EXPECT_EQ(as.clocks().size(), 1u);
  EXPECT_EQ(as.edges().size(), 3u);
  EXPECT_EQ(as.edges()[1].action, ta::ActionKind::kReceive);
  EXPECT_EQ(as.edges()[1].message, "msgslidingroof");
  ASSERT_NE(as.edges()[1].guard, nullptr);
  EXPECT_EQ(as.edges()[2].action, ta::ActionKind::kInternal);

  ASSERT_EQ(ls.transfer_rules().size(), 1u);
  const TransferRule& rule = ls.transfer_rules()[0];
  EXPECT_EQ(rule.target, "movementstate");
  EXPECT_EQ(rule.source, "movementevent");
  ASSERT_EQ(rule.fields.size(), 2u);
  EXPECT_EQ(rule.fields[0].name, "statevalue");
  EXPECT_EQ(rule.fields[0].semantics, "state");

  ASSERT_EQ(ls.ports().size(), 1u);
  const PortSpec& ps = ls.ports()[0];
  EXPECT_EQ(ps.direction, DataDirection::kInput);
  EXPECT_EQ(ps.semantics, InfoSemantics::kEvent);
  EXPECT_EQ(ps.paradigm, ControlParadigm::kEventTriggered);
  EXPECT_EQ(ps.min_interarrival, 4_ms);
  EXPECT_EQ(ps.max_interarrival, 100_ms);
  EXPECT_EQ(ps.queue_capacity, 16u);

  // Convertible elements include the message's and the derived one.
  const auto names = ls.convertible_element_names();
  EXPECT_EQ(names.size(), 2u);
}

TEST(LinkSpecXmlTest, RoundTripIsStable) {
  auto spec = parse_link_spec_xml(kFig6);
  ASSERT_TRUE(spec.ok());
  const std::string once = write_link_spec_xml(spec.value());
  auto reparsed = parse_link_spec_xml(once);
  ASSERT_TRUE(reparsed.ok()) << (reparsed.ok() ? "" : reparsed.error().to_string());
  const std::string twice = write_link_spec_xml(reparsed.value());
  EXPECT_EQ(once, twice);
}

TEST(LinkSpecXmlTest, WrongRootRejected) {
  EXPECT_FALSE(parse_link_spec_xml("<portspec/>").ok());
}

TEST(LinkSpecXmlTest, BadGuardRejected) {
  const char* text = R"(<linkspec><das>d</das>
    <message name="m"><element name="n" key="yes"><field name="id">
      <type length="8">integer</type><value>1</value></field></element></message>
    <timedautomaton name="a"><location name="l"/><init name="l"/>
      <transition><source name="l"/><target name="l"/>
        <label type="guard">x >=</label></transition>
    </timedautomaton></linkspec>)";
  EXPECT_FALSE(parse_link_spec_xml(text).ok());
}

TEST(LinkSpecXmlTest, AutomatonReferencingUnknownMessageRejected) {
  const char* text = R"(<linkspec><das>d</das>
    <message name="m"><element name="n" key="yes"><field name="id">
      <type length="8">integer</type><value>1</value></field></element></message>
    <timedautomaton name="a"><location name="l"/><init name="l"/>
      <transition><source name="l"/><target name="l"/>
        <label type="recv">ghost</label></transition>
    </timedautomaton></linkspec>)";
  EXPECT_FALSE(parse_link_spec_xml(text).ok());
}

TEST(LinkSpecXmlTest, TransferRuleFieldTargetMismatchRejected) {
  const char* text = R"(<linkspec><das>d</das>
    <transfersemantics><element name="t" source="s">
      <field name="a" init="0">b := 1</field>
    </element></transfersemantics></linkspec>)";
  EXPECT_FALSE(parse_link_spec_xml(text).ok());
}

TEST(LinkSpecXmlTest, PortWithUnknownMessageRejected) {
  const char* text = R"(<linkspec><das>d</das>
    <port message="ghost" direction="input"/></linkspec>)";
  EXPECT_FALSE(parse_link_spec_xml(text).ok());
}

TEST(LinkSpecXmlTest, BadAttributeEnumsRejected) {
  const char* tpl = R"(<linkspec><das>d</das>
    <message name="m"><element name="n" key="yes"><field name="id">
      <type length="8">integer</type><value>1</value></field></element>
      <element name="v" conv="yes"><field name="x"><type>boolean</type></field></element>
    </message>
    <port message="m" direction="%s" semantics="%s" paradigm="%s" period="1ms"/></linkspec>)";
  char buf[2048];
  std::snprintf(buf, sizeof buf, tpl, "sideways", "state", "tt");
  EXPECT_FALSE(parse_link_spec_xml(buf).ok());
  std::snprintf(buf, sizeof buf, tpl, "input", "quantum", "tt");
  EXPECT_FALSE(parse_link_spec_xml(buf).ok());
  std::snprintf(buf, sizeof buf, tpl, "input", "state", "warp");
  EXPECT_FALSE(parse_link_spec_xml(buf).ok());
  std::snprintf(buf, sizeof buf, tpl, "input", "state", "tt");
  EXPECT_TRUE(parse_link_spec_xml(buf).ok());
}

TEST(LinkSpecXmlTest, OverflowingNumericAttributeRejected) {
  // strtol saturates at LONG_MAX on overflow; the parser must reject
  // via ERANGE instead of silently accepting a LONG_MAX string length.
  const char* text = R"(<linkspec><das>d</das>
    <message name="m"><element name="n" key="yes"><field name="id">
      <type length="8">integer</type><value>1</value></field></element>
      <element name="v" conv="yes"><field name="s">
        <type bytes="99999999999999999999999">string</type></field></element>
    </message></linkspec>)";
  EXPECT_FALSE(parse_link_spec_xml(text).ok());
}

TEST(LinkSpecXmlTest, LoadFromFile) {
  const std::string path = ::testing::TempDir() + "/fig6_linkspec.xml";
  {
    std::ofstream out{path};
    out << kFig6;
  }
  auto spec = load_link_spec_file(path);
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec.value().das(), "X-by-wire");
  std::remove(path.c_str());
}

TEST(LinkSpecXmlTest, MissingFileIsError) {
  EXPECT_FALSE(load_link_spec_file("/nonexistent/nowhere.xml").ok());
}

}  // namespace
}  // namespace decos::spec
