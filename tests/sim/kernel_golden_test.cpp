// Kernel determinism golden: a miniature E19-shaped cluster (two DAS
// pairs, drifting clocks, clock sync, membership, one hidden gateway per
// pair, fault injection) is run for half a simulated second and its
// observable behaviour -- the causal span tree plus every deterministic
// metric -- is pinned byte-for-byte against a fixture generated before
// the typed periodic-event kernel replaced the heap+map kernel. Any
// reordering of same-instant events, any change to dispatch times, or
// any drift in what the clients schedule shows up here as a diff.
//
// Regenerate (only when the *intended* behaviour changes) with
//   DECOS_UPDATE_GOLDEN=1 ./sim_tests --gtest_filter='KernelGolden*'
//
// The sim.queue_depth gauge is excluded: PR 4 fixed it to track live
// depth (it used to freeze at the last schedule_at), so its value is
// intentionally different across the kernel swap. Host-time instruments
// are excluded by deterministic_fingerprint() itself.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/gateway_job.hpp"
#include "core/wiring.hpp"
#include "fault/plan.hpp"
#include "obs/span.hpp"
#include "platform/cluster.hpp"
#include "util/symbol.hpp"
#include "vn/et_vn.hpp"
#include "vn/tt_vn.hpp"

namespace decos {
namespace {

using namespace decos::literals;

spec::MessageSpec state_message(const std::string& message_name, const std::string& element_name,
                                int id) {
  spec::MessageSpec ms{message_name};
  spec::ElementSpec key;
  key.name = "name";
  key.key = true;
  key.fields.push_back(spec::FieldSpec{"id", spec::FieldType::kInt16, 0, ta::Value{id}});
  ms.add_element(std::move(key));
  spec::ElementSpec payload;
  payload.name = element_name;
  payload.convertible = true;
  payload.fields.push_back(spec::FieldSpec{"value", spec::FieldType::kInt32, 0, std::nullopt});
  payload.fields.push_back(spec::FieldSpec{"t", spec::FieldType::kTimestamp, 0, std::nullopt});
  ms.add_element(std::move(payload));
  return ms;
}

spec::PortSpec input_port(const std::string& message, Duration period) {
  spec::PortSpec ps;
  ps.message = message;
  ps.direction = spec::DataDirection::kInput;
  ps.semantics = spec::InfoSemantics::kState;
  ps.paradigm = spec::ControlParadigm::kTimeTriggered;
  ps.period = period;
  ps.min_interarrival = 1_us;
  ps.max_interarrival = Duration::seconds(3600);
  ps.queue_capacity = 16;
  return ps;
}

spec::PortSpec output_port(const std::string& message) {
  spec::PortSpec ps;
  ps.message = message;
  ps.direction = spec::DataDirection::kOutput;
  ps.semantics = spec::InfoSemantics::kState;
  ps.paradigm = spec::ControlParadigm::kEventTriggered;
  ps.period = Duration::zero();
  ps.queue_capacity = 16;
  return ps;
}

spec::PortSpec tt_output_port(const std::string& message, Duration period) {
  spec::PortSpec ps;
  ps.message = message;
  ps.direction = spec::DataDirection::kOutput;
  ps.semantics = spec::InfoSemantics::kState;
  ps.paradigm = spec::ControlParadigm::kTimeTriggered;
  ps.period = period;
  ps.queue_capacity = 16;
  return ps;
}

spec::MessageInstance state_instance(const spec::MessageSpec& ms, std::int64_t value, Instant t) {
  spec::MessageInstance inst = spec::make_instance(ms);
  inst.elements()[1].fields[0] = ta::Value{value};
  inst.elements()[1].fields[1] = ta::Value{t};
  inst.set_send_time(t);
  return inst;
}

TEST(KernelGolden, MiniClusterSpanTreeAndMetricsAreBytePinned) {
  constexpr std::size_t kNodes = 4;
  constexpr std::size_t kPairs = 2;
  platform::ClusterConfig config;
  config.nodes = kNodes;
  config.round_length = 10_ms;
  config.drift_ppm = {40.0, -40.0, 25.0, -25.0};
  for (std::size_t k = 0; k < kPairs; ++k) {
    const auto producer = static_cast<tt::NodeId>(k % kNodes);
    const auto host = static_cast<tt::NodeId>((k + 1) % kNodes);
    config.allocations.push_back(
        {static_cast<tt::VnId>(1 + 2 * k), "dasA" + std::to_string(k), 32, {producer}});
    config.allocations.push_back(
        {static_cast<tt::VnId>(2 + 2 * k), "dasB" + std::to_string(k), 32, {host}});
  }
  platform::Cluster cluster{config};
  cluster.spans().set_enabled(true);

  std::vector<std::unique_ptr<vn::TtVirtualNetwork>> tt_vns;
  std::vector<std::unique_ptr<vn::EtVirtualNetwork>> et_vns;
  std::vector<std::unique_ptr<core::VirtualGateway>> gateways;
  std::vector<platform::Partition*> partitions(kNodes, nullptr);

  for (std::size_t k = 0; k < kPairs; ++k) {
    const auto producer = static_cast<tt::NodeId>(k % kNodes);
    const auto host = static_cast<tt::NodeId>((k + 1) % kNodes);
    const auto vn_a_id = static_cast<tt::VnId>(1 + 2 * k);
    const auto vn_b_id = static_cast<tt::VnId>(2 + 2 * k);

    tt_vns.push_back(std::make_unique<vn::TtVirtualNetwork>("tt" + std::to_string(k), vn_a_id));
    auto& vn_a = *tt_vns.back();
    vn_a.register_message(state_message("msgA" + std::to_string(k), "img", 1));
    et_vns.push_back(std::make_unique<vn::EtVirtualNetwork>("et" + std::to_string(k), vn_b_id));
    auto& vn_b = *et_vns.back();

    spec::LinkSpec link_a{"dasA" + std::to_string(k)};
    link_a.add_message(state_message("msgA" + std::to_string(k), "img", 1));
    link_a.add_port(input_port("msgA" + std::to_string(k), config.round_length));
    spec::LinkSpec link_b{"dasB" + std::to_string(k)};
    link_b.add_message(state_message("msgB" + std::to_string(k), "img", 2));
    link_b.add_port(output_port("msgB" + std::to_string(k)));
    gateways.push_back(std::make_unique<core::VirtualGateway>(
        "gw" + std::to_string(k), std::move(link_a), std::move(link_b)));
    auto& gw = *gateways.back();
    gw.finalize();
    core::wire_tt_link(gw, 0, vn_a, cluster.controller(host), {});
    core::wire_et_link(gw, 1, vn_b, cluster.controller(host), cluster.vn_slots(vn_b_id, host));
    if (partitions[host] == nullptr) {
      partitions[host] = &cluster.component(host).add_partition("gw", "architecture", 0_ms, 2_ms);
    }
    partitions[host]->add_job(std::make_unique<core::GatewayJob>(gw));

    platform::Partition& pp = cluster.component(producer).add_partition(
        "p" + std::to_string(k), "dasA" + std::to_string(k),
        3_ms + Duration::microseconds(static_cast<std::int64_t>(k) * 300), 200_us);
    platform::FunctionJob& job = pp.add_function_job(
        "prod" + std::to_string(k), [&vn_a, k](platform::FunctionJob& self, Instant now) {
          self.ports()[0]->deposit(
              state_instance(*vn_a.message_spec("msgA" + std::to_string(k)),
                             static_cast<std::int64_t>(self.activations()), now),
              now);
        });
    job.set_execution_time(10_us);
    vn_a.attach_sender(
        cluster.controller(producer),
        job.add_port(tt_output_port("msgA" + std::to_string(k), config.round_length)),
        cluster.vn_slots(vn_a_id, producer));
  }

  // Faults exercise one-shot events (crash/recover far in the future at
  // schedule time) and periodic cancellation paths alongside the steady
  // periodic machinery.
  fault::FaultPlan faults{cluster.simulator()};
  faults.crash(cluster.controller(3), Instant::origin() + 123_ms, 80_ms);
  faults.omission(cluster.controller(2), Instant::origin() + 50_ms, 0.2, 7);
  faults.babble(cluster.controller(2), Instant::origin() + 200_ms, 0, 1, 5, 3_ms);

  cluster.start();
  cluster.run_for(500_ms);

  std::uint64_t forwarded = 0;
  for (const auto& gw : gateways) forwarded += gw->stats().messages_constructed;
  ASSERT_GT(forwarded, 0u) << "mini cluster never forwarded a message";

  // -- canonical serialization ----------------------------------------------
  std::ostringstream canon;
  canon << "events " << cluster.simulator().dispatched() << "\n"
        << "forwarded " << forwarded << "\n"
        << "spans " << cluster.spans().spans().size() << "\n";
  for (const obs::Span& s : cluster.spans().spans()) {
    canon << "span trace=" << s.trace_id << " id=" << s.span_id << " parent=" << s.parent_id
          << " phase=" << obs::phase_name(s.phase) << " track=" << symbol_name(s.track)
          << " name=" << symbol_name(s.name) << " start=" << (s.start - Instant::origin()).ns()
          << " end=" << (s.end - Instant::origin()).ns() << "\n";
  }
  const obs::MetricsSnapshot snapshot = cluster.metrics().snapshot();
  std::istringstream fingerprint{snapshot.deterministic_fingerprint()};
  for (std::string line; std::getline(fingerprint, line);) {
    // Live-depth gauge semantics changed deliberately in PR 4 (see header).
    if (line.rfind("sim.queue_depth=", 0) == 0) continue;
    canon << line << "\n";
  }

  const std::string path = std::string{DECOS_SIM_GOLDEN_DIR} + "/kernel_mini_cluster.txt";
  if (std::getenv("DECOS_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out{path};
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << canon.str();
    GTEST_SKIP() << "golden fixture regenerated: " << path;
  }
  std::ifstream in{path};
  ASSERT_TRUE(in.good()) << "missing golden fixture " << path
                         << " (regenerate with DECOS_UPDATE_GOLDEN=1)";
  std::stringstream golden;
  golden << in.rdbuf();
  EXPECT_EQ(canon.str(), golden.str())
      << "span tree / metrics diverged from the pre-refactor kernel fixture";
}

}  // namespace
}  // namespace decos
