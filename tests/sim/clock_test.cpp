#include "sim/clock.hpp"

#include <gtest/gtest.h>

namespace decos::sim {
namespace {

using namespace decos::literals;

TEST(DriftingClockTest, PerfectClockIsIdentity) {
  DriftingClock clock;
  const Instant t = Instant::origin() + 123_ms;
  EXPECT_EQ(clock.read(t), t);
  EXPECT_EQ(clock.true_time_for(t), t);
}

TEST(DriftingClockTest, PositiveDriftRunsFast) {
  DriftingClock clock{+100.0};  // +100 ppm
  const Instant t = Instant::origin() + 1_s;
  // Gains 100us per second.
  EXPECT_EQ(clock.read(t), t + 100_us);
}

TEST(DriftingClockTest, NegativeDriftRunsSlow) {
  DriftingClock clock{-50.0};
  const Instant t = Instant::origin() + 2_s;
  EXPECT_EQ(clock.read(t), t - 100_us);
}

TEST(DriftingClockTest, InitialOffsetApplied) {
  DriftingClock clock{0.0, 5_ms};
  EXPECT_EQ(clock.read(Instant::origin()), Instant::origin() + 5_ms);
}

TEST(DriftingClockTest, TrueTimeForInvertsRead) {
  DriftingClock clock{+200.0, 3_ms};
  const Instant local_target = Instant::origin() + 500_ms;
  const Instant true_time = clock.true_time_for(local_target);
  // Round-trip within 1ns of integer truncation.
  EXPECT_NEAR(static_cast<double>(clock.read(true_time).ns()),
              static_cast<double>(local_target.ns()), 2.0);
}

TEST(DriftingClockTest, CorrectShiftsOffset) {
  DriftingClock clock{0.0};
  clock.correct(-2_ms);
  EXPECT_EQ(clock.read(Instant::origin() + 10_ms), Instant::origin() + 8_ms);
  EXPECT_EQ(clock.offset(), -2_ms);
}

TEST(DriftingClockTest, DriftPpmRoundTrips) {
  DriftingClock clock{42.0};
  EXPECT_NEAR(clock.drift_ppm(), 42.0, 1e-6);
}

}  // namespace
}  // namespace decos::sim
