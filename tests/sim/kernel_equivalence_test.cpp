// Property test: the production kernel (timer wheel + pooled typed
// nodes, sim/event_queue.hpp) must dispatch exactly like the reference
// kernel it replaced (binary heap + unordered_map, preserved verbatim in
// sim/reference_kernel.hpp). Randomized schedules drive both in
// lockstep -- one-shots, same-instant ties, cancels (including from
// inside handlers), nested scheduling and self-timed chains -- across
// wheel resolutions from 1 ns to 1 ms (events land in the same bucket at
// coarse resolutions, in distinct buckets at fine ones; the dispatch
// *order* must never depend on that).
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/reference_kernel.hpp"
#include "sim/simulator.hpp"

namespace decos::sim {
namespace {

using namespace decos::literals;

/// Deterministic xorshift RNG (no std::random_device: runs must be
/// reproducible from the seed printed on failure).
struct Rng {
  std::uint64_t state;
  std::uint64_t next() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  }
  std::uint64_t below(std::uint64_t n) { return next() % n; }
};

struct FireLog {
  std::vector<std::uint64_t> fired;   // event tag in dispatch order
  std::vector<std::int64_t> at_ns;    // dispatch instant per firing
  std::vector<bool> cancel_results;   // result of every cancel() call

  bool operator==(const FireLog& o) const = default;
};

/// The scenario is expressed once against an abstract "kernel ops"
/// interface so one generator drives both kernels; ops are derived from
/// the RNG stream only, so both see the same schedule and the logs must
/// come out identical.
struct KernelOps {
  std::function<std::uint64_t(Duration, std::function<void()>)> schedule_after;
  std::function<bool(std::uint64_t)> cancel;
  std::function<void(Instant)> run_until;
  std::function<Instant()> now;
  std::function<std::size_t()> pending;
};

FireLog drive(const KernelOps& k, std::uint64_t seed, int ops) {
  Rng rng{seed};
  FireLog log;
  std::vector<std::uint64_t> ids;      // kernel event ids by slot
  std::vector<std::uint64_t> tags;     // scenario tag by slot
  std::uint64_t next_tag = 0;

  for (int op = 0; op < ops; ++op) {
    const std::uint64_t kind = rng.below(100);
    if (kind < 50) {
      // Schedule a one-shot; delays repeat often to force ties.
      const std::uint64_t tag = next_tag++;
      const Duration delay = Duration::microseconds(static_cast<std::int64_t>(rng.below(30)));
      const std::uint64_t style = rng.below(4);
      const std::uint64_t nested_seed = rng.next();
      ids.push_back(k.schedule_after(delay, [&k, &log, &ids, &tags, tag, style, nested_seed] {
        log.fired.push_back(tag);
        log.at_ns.push_back((k.now() - Instant::origin()).ns());
        if (style == 1) {
          // Nested schedule from inside a handler (including zero delay:
          // fires later the same instant, FIFO).
          Rng r{nested_seed | 1};
          const std::uint64_t inner = 1000000 + tag;
          k.schedule_after(Duration::microseconds(static_cast<std::int64_t>(r.below(10))),
                           [&k, &log, inner] {
                             log.fired.push_back(inner);
                             log.at_ns.push_back((k.now() - Instant::origin()).ns());
                           });
        } else if (style == 2 && !ids.empty()) {
          // Cancel some other pending event from inside a handler.
          Rng r{nested_seed | 1};
          const std::size_t victim = r.below(ids.size());
          log.cancel_results.push_back(k.cancel(ids[victim]));
        }
      }));
      tags.push_back(tag);
    } else if (kind < 65 && !ids.empty()) {
      // Cancel a random slot (often already fired: result must agree).
      const std::size_t victim = rng.below(ids.size());
      log.cancel_results.push_back(k.cancel(ids[victim]));
    } else if (kind < 80) {
      // Advance time a little (drains due events).
      k.run_until(k.now() + Duration::microseconds(static_cast<std::int64_t>(rng.below(25))));
    } else if (kind < 90) {
      // Same-instant burst: N events at one future instant.
      const Duration delay = Duration::microseconds(static_cast<std::int64_t>(rng.below(20)));
      const std::uint64_t n = 2 + rng.below(4);
      for (std::uint64_t i = 0; i < n; ++i) {
        const std::uint64_t tag = next_tag++;
        ids.push_back(k.schedule_after(delay, [&k, &log, tag] {
          log.fired.push_back(tag);
          log.at_ns.push_back((k.now() - Instant::origin()).ns());
        }));
        tags.push_back(tag);
      }
    } else {
      // Far-future one-shot (overflow heap on the wheel kernel).
      const std::uint64_t tag = next_tag++;
      const Duration delay =
          Duration::seconds(1) + Duration::milliseconds(static_cast<std::int64_t>(rng.below(5000)));
      ids.push_back(k.schedule_after(delay, [&k, &log, tag] {
        log.fired.push_back(tag);
        log.at_ns.push_back((k.now() - Instant::origin()).ns());
      }));
      tags.push_back(tag);
    }
  }
  // Drain everything, including the far-future tail.
  k.run_until(k.now() + Duration::seconds(10));
  EXPECT_EQ(k.pending(), 0u);
  return log;
}

KernelOps ops_of(Simulator& s) {
  return KernelOps{
      [&s](Duration d, std::function<void()> f) { return s.schedule_after(d, std::move(f)); },
      [&s](std::uint64_t id) { return s.cancel(id); },
      [&s](Instant t) { s.run_until(t); },
      [&s] { return s.now(); },
      [&s] { return s.pending(); },
  };
}

KernelOps ops_of(ReferenceKernel& s) {
  return KernelOps{
      [&s](Duration d, std::function<void()> f) { return s.schedule_after(d, std::move(f)); },
      [&s](std::uint64_t id) { return s.cancel(id); },
      [&s](Instant t) { s.run_until(t); },
      [&s] { return s.now(); },
      [&s] { return s.pending(); },
  };
}

TEST(KernelEquivalence, RandomizedSchedulesMatchReferenceAcrossResolutions) {
  const std::vector<Duration> resolutions = {Duration::nanoseconds(1), Duration::microseconds(1),
                                             Duration::milliseconds(1)};
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    ReferenceKernel reference;
    KernelOps ref_ops = ops_of(reference);
    const FireLog expected = drive(ref_ops, seed * 0x9e3779b97f4a7c15ULL, 120);
    ASSERT_FALSE(expected.fired.empty()) << "seed " << seed << " scheduled nothing";

    for (const Duration resolution : resolutions) {
      Simulator wheel;
      wheel.set_tick_resolution(resolution);
      KernelOps wheel_ops = ops_of(wheel);
      const FireLog got = drive(wheel_ops, seed * 0x9e3779b97f4a7c15ULL, 120);
      ASSERT_EQ(got, expected) << "kernel diverged from reference model at seed " << seed
                               << ", resolution " << resolution.ns() << "ns";
      ASSERT_EQ(wheel.dispatched(), reference.dispatched()) << "seed " << seed;
    }
  }
}

// PeriodicTask has no reference-kernel counterpart; its contract is
// pinned directly: a fixed-period task fires at exact multiples, the
// next occurrence is already pending during the callback, and the
// self-timed flavour follows reschedule_at exactly.
TEST(KernelEquivalence, PeriodicTaskMatchesSelfChainingOneShots) {
  // Model: the old idiom (handler re-schedules itself first thing).
  ReferenceKernel reference;
  std::vector<std::int64_t> expected;
  std::function<void()> chain = [&] {
    reference.schedule_at(reference.now() + 7_ms, chain);
    expected.push_back((reference.now() - Instant::origin()).ns());
  };
  reference.schedule_at(Instant::origin() + 3_ms, chain);
  reference.run_until(Instant::origin() + 200_ms);

  Simulator wheel;
  std::vector<std::int64_t> got;
  PeriodicTask task = wheel.schedule_periodic(
      Instant::origin() + 3_ms, 7_ms,
      [&wheel, &got] { got.push_back((wheel.now() - Instant::origin()).ns()); });
  wheel.run_until(Instant::origin() + 200_ms);
  EXPECT_EQ(got, expected);
  EXPECT_EQ(expected.size(), 29u);  // fires at 3ms + 7ms*k for k = 0..28
  EXPECT_TRUE(task.active());
  EXPECT_EQ(task.next_fire() - Instant::origin(), 3_ms + 7_ms * 29);
}

}  // namespace
}  // namespace decos::sim
