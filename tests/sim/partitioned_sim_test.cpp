// Engine-level semantics of the partitioned kernel (S28): wheel routing,
// the global-before-partition ordering rule at equal instants, mailbox
// drain order at barrier commits, and the satellite contract that
// sim.queue_depth / sim.schedule_past_clamped aggregate across wheels
// exactly as they would on the classic kernel.
#include "sim/simulator.hpp"

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/event_queue.hpp"
#include "util/time.hpp"

namespace decos::sim {
namespace {

using namespace decos::literals;

Instant at(Duration d) { return Instant::origin() + d; }

TEST(PartitionedSimTest, ConfigureAndAmbientRouting) {
  Simulator sim;
  EXPECT_FALSE(sim.partitioned());
  sim.configure_partitions(3, 1);
  EXPECT_TRUE(sim.partitioned());
  EXPECT_EQ(sim.partition_count(), 3u);
  EXPECT_EQ(sim.sim_jobs(), 1u);

  // Default ambient kernel is the global wheel.
  EXPECT_EQ(sim.current_kernel(), 0u);
  const EventId global_id = sim.schedule_at(at(1_ms), [] {});
  EXPECT_EQ(EventQueue::kernel_of(global_id), 0u);

  // schedule_on targets an explicit wheel; KernelScope retargets the
  // ambient wheel for everything scheduled in scope, and restores on
  // exit (nesting included).
  const EventId direct_id = sim.schedule_on(2, at(1_ms), [] {});
  EXPECT_EQ(EventQueue::kernel_of(direct_id), 2u);
  {
    KernelScope outer{sim, 1};
    EXPECT_EQ(sim.current_kernel(), 1u);
    EXPECT_EQ(EventQueue::kernel_of(sim.schedule_at(at(1_ms), [] {})), 1u);
    {
      KernelScope inner{sim, 3};
      EXPECT_EQ(EventQueue::kernel_of(sim.schedule_after(1_ms, [] {})), 3u);
    }
    EXPECT_EQ(sim.current_kernel(), 1u);
  }
  EXPECT_EQ(sim.current_kernel(), 0u);
  EXPECT_EQ(sim.pending(), 4u);
}

TEST(PartitionedSimTest, EventIdCarriesOwningWheelAcrossCancel) {
  Simulator sim;
  sim.configure_partitions(2, 1);
  bool fired = false;
  EventId id = 0;
  {
    KernelScope scope{sim, 2};
    id = sim.schedule_at(at(5_ms), [&] { fired = true; });
  }
  // The kernel byte routes the cancel to partition 2's wheel even though
  // the ambient kernel is back on the global wheel.
  EXPECT_EQ(EventQueue::kernel_of(id), 2u);
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));
  sim.run_until(at(10_ms));
  EXPECT_FALSE(fired);
}

TEST(PartitionedSimTest, GlobalFiresBeforePartitionsAtEqualInstants) {
  Simulator sim;
  sim.configure_partitions(2, 1);
  std::vector<std::string> order;

  // All four events share one instant. The ordering rule is fixed:
  // global events at t fire before partition events at t (the partition
  // horizon is exclusive), and partitions commit in index order.
  sim.schedule_on(2, at(2_ms), [&] { order.push_back("p2"); });
  sim.schedule_on(1, at(2_ms), [&] { order.push_back("p1"); });
  sim.schedule_on(0, at(2_ms), [&] { order.push_back("g2"); });
  sim.schedule_on(0, at(2_ms), [&] { order.push_back("g1"); });
  // An earlier partition event still precedes the later global instant.
  sim.schedule_on(2, at(1_ms), [&] { order.push_back("early-p2"); });

  sim.run_until(at(3_ms));
  ASSERT_EQ(order.size(), 5u);
  EXPECT_EQ(order[0], "early-p2");
  EXPECT_EQ(order[1], "g2");  // insertion order within the global wheel
  EXPECT_EQ(order[2], "g1");
  EXPECT_EQ(order[3], "p1");  // partition index order after the barrier
  EXPECT_EQ(order[4], "p2");
  EXPECT_EQ(sim.now(), at(3_ms));
}

TEST(PartitionedSimTest, MailboxDrainsInPartitionOrderBeforeGlobalEvents) {
  Simulator sim;
  sim.configure_partitions(2, 1);
  std::vector<std::string> order;

  // Partition batches post upward; the barrier commit drains the posts
  // in partition order, before the next global phase fires -- so both
  // posts precede the global event at the horizon, and partition 1's
  // post runs first even though partition 2's event was scheduled first.
  sim.schedule_on(2, at(1_ms), [&] {
    sim.post_to_global([&] { order.push_back("post-from-p2"); });
  });
  sim.schedule_on(1, at(1_ms), [&] {
    sim.post_to_global([&] {
      order.push_back("post-from-p1");
      // A post may post again (e.g. a drained deposit scheduling a
      // follow-up). The re-post runs in global context, so it lands in
      // the global mailbox and drains in the same commit, after the
      // first full pass -- still before the next global phase.
      sim.post_to_global([&] { order.push_back("repost"); });
    });
  });
  sim.schedule_on(0, at(2_ms), [&] { order.push_back("global"); });

  sim.run_until(at(3_ms));
  const std::vector<std::string> expected{"post-from-p1", "post-from-p2", "repost", "global"};
  EXPECT_EQ(order, expected);
}

TEST(PartitionedSimTest, DownwardInjectionFromGlobalPhase) {
  Simulator sim;
  sim.configure_partitions(2, 1);
  std::vector<std::string> order;

  // The global phase injects into partition wheels directly (the
  // downward mailbox): a frame-delivery shaped round trip.
  sim.schedule_on(0, at(1_ms), [&] {
    order.push_back("global-send");
    sim.schedule_on(1, at(1500_us), [&] { order.push_back("p1-deliver"); });
    sim.schedule_on(2, at(1500_us), [&] { order.push_back("p2-deliver"); });
  });
  sim.schedule_on(0, at(2_ms), [&] { order.push_back("global-next"); });

  sim.run_until(at(3_ms));
  const std::vector<std::string> expected{"global-send", "p1-deliver", "p2-deliver",
                                          "global-next"};
  EXPECT_EQ(order, expected);
}

TEST(PartitionedSimTest, PeriodicTasksStayOnTheirWheel) {
  Simulator sim;
  sim.configure_partitions(2, 1);
  int fires = 0;
  PeriodicTask task;
  {
    KernelScope scope{sim, 1};
    task = sim.schedule_periodic(at(1_ms), 1_ms, [&] { ++fires; });
  }
  sim.run_until(at(3500_us));
  EXPECT_EQ(fires, 3);
  EXPECT_TRUE(task.active());
  // The handle's kernel byte keeps cancel routed to partition 1.
  EXPECT_TRUE(task.cancel());
  sim.run_until(at(10_ms));
  EXPECT_EQ(fires, 3);
}

TEST(PartitionedSimTest, IdenticalScheduleAtAnyWorkerCount) {
  // The same workload must produce the same firing order whether the
  // partition batches run inline or on pool workers.
  auto run = [](std::size_t sim_jobs) {
    Simulator sim;
    sim.configure_partitions(3, sim_jobs);
    std::vector<std::string> order;
    for (std::uint32_t p = 1; p <= 3; ++p) {
      // The partition callback touches only partition-local state (its
      // own mailbox); the shared log is written single-threaded, at the
      // barrier commit and in the global phase.
      sim.schedule_on(p, at(1_ms), [&order, p, &sim] {
        sim.post_to_global([&order, p] { order.push_back("ack" + std::to_string(p)); });
      });
    }
    sim.schedule_on(0, at(2_ms), [&order] { order.push_back("g"); });
    sim.run_until(at(3_ms));
    return order;
  };
  const auto serial = run(1);
  EXPECT_EQ(run(2), serial);
  EXPECT_EQ(run(8), serial);
}

TEST(PartitionedSimTest, QueueDepthAggregatesAcrossWheels) {
  // Satellite regression: sim.queue_depth must report the *sum* of
  // pending events across every wheel after a partitioned run step, not
  // one wheel's private depth.
  Simulator sim;
  sim.configure_partitions(2, 1);
  sim.schedule_on(0, at(1_ms), [] {});
  sim.schedule_on(1, at(1_ms), [] {});
  sim.schedule_on(1, at(10_ms), [] {});
  sim.schedule_on(2, at(10_ms), [] {});
  sim.schedule_on(0, at(10_ms), [] {});

  sim.run_until(at(2_ms));
  EXPECT_EQ(sim.pending(), 3u);
  const auto snapshot = sim.metrics().snapshot();
  const auto* depth = snapshot.find("sim.queue_depth");
  ASSERT_NE(depth, nullptr);
  EXPECT_EQ(depth->value, 3);

  sim.run_until(at(20_ms));
  const auto* drained = sim.metrics().snapshot().find("sim.queue_depth");
  ASSERT_NE(drained, nullptr);
  EXPECT_EQ(drained->value, 0);
}

TEST(PartitionedSimTest, PastClampsAggregateAcrossWheels) {
  // Satellite regression: clamps recorded inside partition batches are
  // deferred and published at the barrier; the counter must equal the
  // across-wheels total, identically at any worker count.
  auto clamps = [](std::size_t sim_jobs) {
    Simulator sim;
    sim.configure_partitions(2, sim_jobs);
    for (std::uint32_t p = 1; p <= 2; ++p) {
      sim.schedule_on(p, at(2_ms), [&sim] {
        // Target in the past: clamps to now inside the partition batch.
        sim.schedule_at(at(1_ms), [] {});
      });
    }
    sim.schedule_on(0, at(2_ms), [&sim] { sim.schedule_at(at(1_ms), [] {}); });
    sim.run_until(at(5_ms));
    const auto snapshot = sim.metrics().snapshot();
    const auto* counter = snapshot.find("sim.schedule_past_clamped");
    EXPECT_NE(counter, nullptr);
    EXPECT_EQ(sim.past_clamps(), 3u);
    return counter == nullptr ? -1 : static_cast<int>(counter->value);
  };
  EXPECT_EQ(clamps(1), 3);
  EXPECT_EQ(clamps(4), 3);
}

TEST(PartitionedSimTest, DispatchedCountsEveryWheel) {
  Simulator sim;
  sim.configure_partitions(2, 2);
  std::atomic<int> fired{0};  // partition batches run on pool workers
  for (std::uint32_t k = 0; k <= 2; ++k)
    for (int i = 0; i < 4; ++i)
      sim.schedule_on(k, at(Duration::milliseconds(1 + i)), [&] { ++fired; });
  sim.run_until(at(10_ms));
  EXPECT_EQ(fired.load(), 12);
  EXPECT_EQ(sim.dispatched(), 12u);
  const auto* events = sim.metrics().snapshot().find("sim.events_dispatched");
  ASSERT_NE(events, nullptr);
  EXPECT_EQ(events->value, 12);
}

}  // namespace
}  // namespace decos::sim
