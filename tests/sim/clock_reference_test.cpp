#include <gtest/gtest.h>

#include "sim/clock.hpp"

namespace decos::sim {
namespace {

using namespace decos::literals;

TEST(BecomeReferenceTest, ClockReadsTrueTimeAfterwards) {
  DriftingClock clock{+500.0, 3_ms};  // fast and offset
  const Instant t = Instant::origin() + 1_s;
  EXPECT_NE(clock.read(t), t);
  clock.become_reference();
  EXPECT_EQ(clock.read(t), t);
  EXPECT_EQ(clock.read(Instant::origin() + 5_s), Instant::origin() + 5_s);
  EXPECT_NEAR(clock.drift_ppm(), 0.0, 1e-9);
  EXPECT_EQ(clock.offset(), Duration::zero());
}

TEST(BecomeReferenceTest, CorrectionsStillApplyAfterwards) {
  DriftingClock clock{-100.0};
  clock.become_reference();
  clock.correct(2_ms);
  EXPECT_EQ(clock.read(Instant::origin()), Instant::origin() + 2_ms);
}

}  // namespace
}  // namespace decos::sim
