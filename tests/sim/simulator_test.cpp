#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace decos::sim {
namespace {

using namespace decos::literals;

TEST(SimulatorTest, StartsAtOrigin) {
  Simulator sim;
  EXPECT_EQ(sim.now(), Instant::origin());
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(SimulatorTest, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(Instant::origin() + 30_ms, [&] { order.push_back(3); });
  sim.schedule_at(Instant::origin() + 10_ms, [&] { order.push_back(1); });
  sim.schedule_at(Instant::origin() + 20_ms, [&] { order.push_back(2); });
  sim.run_until(Instant::origin() + 100_ms);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorTest, SameInstantIsFifo) {
  Simulator sim;
  std::vector<int> order;
  const Instant t = Instant::origin() + 5_ms;
  for (int i = 0; i < 5; ++i) sim.schedule_at(t, [&order, i] { order.push_back(i); });
  sim.run_until(t);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulatorTest, NowAdvancesToEventTime) {
  Simulator sim;
  Instant seen;
  sim.schedule_at(Instant::origin() + 7_ms, [&] { seen = sim.now(); });
  sim.run_until(Instant::origin() + 1_s);
  EXPECT_EQ(seen, Instant::origin() + 7_ms);
  EXPECT_EQ(sim.now(), Instant::origin() + 1_s);  // clock ends at the deadline
}

TEST(SimulatorTest, EventsAfterDeadlineStayPending) {
  Simulator sim;
  bool fired = false;
  sim.schedule_at(Instant::origin() + 10_ms, [&] { fired = true; });
  sim.run_until(Instant::origin() + 5_ms);
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.pending(), 1u);
  sim.run_until(Instant::origin() + 10_ms);  // events *at* the deadline fire
  EXPECT_TRUE(fired);
}

TEST(SimulatorTest, ScheduleAfterUsesCurrentTime) {
  Simulator sim;
  Instant seen;
  sim.schedule_at(Instant::origin() + 5_ms, [&] {
    sim.schedule_after(3_ms, [&] { seen = sim.now(); });
  });
  sim.run_until(Instant::origin() + 1_s);
  EXPECT_EQ(seen, Instant::origin() + 8_ms);
}

TEST(SimulatorTest, CancelPreventsDispatch) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule_at(Instant::origin() + 1_ms, [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));  // second cancel is a no-op
  sim.run_until(Instant::origin() + 10_ms);
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.dispatched(), 0u);
}

TEST(SimulatorTest, StepRunsExactlyOneEvent) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(Instant::origin() + 1_ms, [&] { ++count; });
  sim.schedule_at(Instant::origin() + 2_ms, [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(sim.step());
}

TEST(SimulatorTest, EventsScheduledDuringRunAreHonored) {
  Simulator sim;
  int chain = 0;
  std::function<void()> relink = [&] {
    if (++chain < 10) sim.schedule_after(1_ms, relink);
  };
  sim.schedule_after(1_ms, relink);
  sim.run_until(Instant::origin() + 1_s);
  EXPECT_EQ(chain, 10);
}

TEST(SimulatorTest, DispatchedCounterCounts) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule_after(Duration::milliseconds(i + 1), [] {});
  sim.run_until(Instant::origin() + 1_s);
  EXPECT_EQ(sim.dispatched(), 7u);
}

}  // namespace
}  // namespace decos::sim
