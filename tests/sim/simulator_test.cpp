#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace decos::sim {
namespace {

using namespace decos::literals;

TEST(SimulatorTest, StartsAtOrigin) {
  Simulator sim;
  EXPECT_EQ(sim.now(), Instant::origin());
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(SimulatorTest, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(Instant::origin() + 30_ms, [&] { order.push_back(3); });
  sim.schedule_at(Instant::origin() + 10_ms, [&] { order.push_back(1); });
  sim.schedule_at(Instant::origin() + 20_ms, [&] { order.push_back(2); });
  sim.run_until(Instant::origin() + 100_ms);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorTest, SameInstantIsFifo) {
  Simulator sim;
  std::vector<int> order;
  const Instant t = Instant::origin() + 5_ms;
  for (int i = 0; i < 5; ++i) sim.schedule_at(t, [&order, i] { order.push_back(i); });
  sim.run_until(t);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulatorTest, NowAdvancesToEventTime) {
  Simulator sim;
  Instant seen;
  sim.schedule_at(Instant::origin() + 7_ms, [&] { seen = sim.now(); });
  sim.run_until(Instant::origin() + 1_s);
  EXPECT_EQ(seen, Instant::origin() + 7_ms);
  EXPECT_EQ(sim.now(), Instant::origin() + 1_s);  // clock ends at the deadline
}

TEST(SimulatorTest, EventsAfterDeadlineStayPending) {
  Simulator sim;
  bool fired = false;
  sim.schedule_at(Instant::origin() + 10_ms, [&] { fired = true; });
  sim.run_until(Instant::origin() + 5_ms);
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.pending(), 1u);
  sim.run_until(Instant::origin() + 10_ms);  // events *at* the deadline fire
  EXPECT_TRUE(fired);
}

TEST(SimulatorTest, ScheduleAfterUsesCurrentTime) {
  Simulator sim;
  Instant seen;
  sim.schedule_at(Instant::origin() + 5_ms, [&] {
    sim.schedule_after(3_ms, [&] { seen = sim.now(); });
  });
  sim.run_until(Instant::origin() + 1_s);
  EXPECT_EQ(seen, Instant::origin() + 8_ms);
}

TEST(SimulatorTest, CancelPreventsDispatch) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule_at(Instant::origin() + 1_ms, [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));  // second cancel is a no-op
  sim.run_until(Instant::origin() + 10_ms);
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.dispatched(), 0u);
}

TEST(SimulatorTest, StepRunsExactlyOneEvent) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(Instant::origin() + 1_ms, [&] { ++count; });
  sim.schedule_at(Instant::origin() + 2_ms, [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(sim.step());
}

TEST(SimulatorTest, EventsScheduledDuringRunAreHonored) {
  Simulator sim;
  int chain = 0;
  std::function<void()> relink = [&] {
    if (++chain < 10) sim.schedule_after(1_ms, relink);
  };
  sim.schedule_after(1_ms, relink);
  sim.run_until(Instant::origin() + 1_s);
  EXPECT_EQ(chain, 10);
}

TEST(SimulatorTest, DispatchedCounterCounts) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule_after(Duration::milliseconds(i + 1), [] {});
  sim.run_until(Instant::origin() + 1_s);
  EXPECT_EQ(sim.dispatched(), 7u);
}

TEST(SimulatorTest, SchedulingInThePastClampsAndCounts) {
  Simulator sim;
  sim.schedule_after(10_ms, [] {});
  sim.run_until(Instant::origin() + 10_ms);
  Instant seen;
  sim.schedule_at(Instant::origin() + 2_ms, [&] { seen = sim.now(); });  // 8 ms ago
  EXPECT_EQ(sim.past_clamps(), 1u);
  sim.run_until(Instant::origin() + 20_ms);
  EXPECT_EQ(seen, Instant::origin() + 10_ms);  // fired "now", not silently dropped
}

TEST(PeriodicTaskTest, FiresAtExactMultiplesAndCountsAsOnePending) {
  Simulator sim;
  std::vector<Instant> fires;
  PeriodicTask task =
      sim.schedule_periodic(Instant::origin() + 2_ms, 5_ms, [&] { fires.push_back(sim.now()); });
  EXPECT_TRUE(task.active());
  EXPECT_EQ(sim.pending(), 1u);  // one live occurrence at any time
  sim.run_until(Instant::origin() + 20_ms);
  EXPECT_EQ(fires, (std::vector<Instant>{Instant::origin() + 2_ms, Instant::origin() + 7_ms,
                                         Instant::origin() + 12_ms, Instant::origin() + 17_ms}));
  EXPECT_EQ(sim.pending(), 1u);
  EXPECT_EQ(task.next_fire(), Instant::origin() + 22_ms);
}

TEST(PeriodicTaskTest, NextOccurrenceIsPendingDuringCallback) {
  // The kernel files the next occurrence BEFORE invoking the callback --
  // the same order the old clients re-armed in, so same-instant FIFO
  // sequence numbers are preserved across the migration.
  Simulator sim;
  Instant next_seen;
  PeriodicTask task = sim.schedule_periodic(Instant::origin() + 1_ms, 4_ms,
                                            [&] { next_seen = task.next_fire(); });
  sim.run_until(Instant::origin() + 1_ms);
  EXPECT_EQ(next_seen, Instant::origin() + 5_ms);
}

TEST(PeriodicTaskTest, CancelFromOutsideStopsFiring) {
  Simulator sim;
  int fired = 0;
  PeriodicTask task = sim.schedule_periodic(Instant::origin() + 1_ms, 1_ms, [&] { ++fired; });
  sim.run_until(Instant::origin() + 3_ms);
  EXPECT_EQ(fired, 3);
  task.cancel();
  EXPECT_FALSE(task.active());
  EXPECT_EQ(sim.pending(), 0u);
  sim.run_until(Instant::origin() + 10_ms);
  EXPECT_EQ(fired, 3);
}

TEST(PeriodicTaskTest, CancelFromInsideCallbackStopsFiring) {
  // The pre-filed next occurrence must be unfiled, and the node the
  // callback is executing from must outlive the callback (release is
  // deferred until after it returns).
  Simulator sim;
  int fired = 0;
  PeriodicTask task;
  task = sim.schedule_periodic(Instant::origin() + 1_ms, 1_ms, [&] {
    if (++fired == 2) task.cancel();
  });
  sim.run_until(Instant::origin() + 10_ms);
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(task.active());
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(PeriodicTaskTest, DrivenTaskFollowsRescheduleAt) {
  // Self-timed flavour: no fixed period; the callback picks the next
  // instant (tt::Controller's round-end and slot re-arm use this).
  Simulator sim;
  std::vector<Instant> fires;
  Duration gap = 1_ms;
  PeriodicTask task;
  task = sim.schedule_periodic(Instant::origin() + 1_ms, [&] {
    fires.push_back(sim.now());
    gap = gap * 2;
    task.reschedule_at(sim.now() + gap);
  });
  sim.run_until(Instant::origin() + 16_ms);
  EXPECT_EQ(fires, (std::vector<Instant>{Instant::origin() + 1_ms, Instant::origin() + 3_ms,
                                         Instant::origin() + 7_ms, Instant::origin() + 15_ms}));
  EXPECT_TRUE(task.active());
}

TEST(PeriodicTaskTest, DrivenTaskWithoutRescheduleCompletes) {
  Simulator sim;
  int fired = 0;
  PeriodicTask task = sim.schedule_periodic(Instant::origin() + 1_ms, [&] { ++fired; });
  sim.run_until(Instant::origin() + 10_ms);
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(task.active());  // node released after the silent callback
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(PeriodicTaskTest, MoveTransfersOwnershipAndAssignCancelsPrevious) {
  Simulator sim;
  int a = 0;
  int b = 0;
  PeriodicTask task = sim.schedule_periodic(Instant::origin() + 1_ms, 1_ms, [&] { ++a; });
  PeriodicTask moved = std::move(task);
  EXPECT_FALSE(task.active());  // NOLINT(bugprone-use-after-move): moved-from is inert
  EXPECT_TRUE(moved.active());
  sim.run_until(Instant::origin() + 2_ms);
  EXPECT_EQ(a, 2);
  // Assigning a new task over a live handle cancels the old schedule --
  // tt::Controller relies on this when a node re-integrates.
  moved = sim.schedule_periodic(sim.now() + 1_ms, 1_ms, [&] { ++b; });
  sim.run_until(Instant::origin() + 4_ms);
  EXPECT_EQ(a, 2);
  EXPECT_EQ(b, 2);
}

TEST(PeriodicTaskTest, DestructorCancels) {
  Simulator sim;
  int fired = 0;
  {
    PeriodicTask task = sim.schedule_periodic(Instant::origin() + 1_ms, 1_ms, [&] { ++fired; });
    sim.run_until(Instant::origin() + 2_ms);
  }
  EXPECT_EQ(sim.pending(), 0u);
  sim.run_until(Instant::origin() + 10_ms);
  EXPECT_EQ(fired, 2);
}

TEST(PeriodicTaskTest, OneShotCancellingItselfMidFireReturnsFalse) {
  // Parity with the old kernel, which erased the map entry before
  // invoking: by the time the handler runs, its own id is gone.
  Simulator sim;
  bool cancel_result = true;
  EventId id = 0;
  id = sim.schedule_at(Instant::origin() + 1_ms, [&] { cancel_result = sim.cancel(id); });
  sim.run_until(Instant::origin() + 2_ms);
  EXPECT_FALSE(cancel_result);
}

TEST(PeriodicTaskTest, TickResolutionDoesNotChangeDispatchOrder) {
  for (const Duration resolution : {Duration::nanoseconds(1), Duration::microseconds(100),
                                    Duration::milliseconds(1)}) {
    Simulator sim;
    sim.set_tick_resolution(resolution);
    std::vector<int> order;
    // Three instants 250 us apart: same bucket at 1 ms resolution,
    // distinct buckets at 100 us, distinct ticks at 1 ns.
    sim.schedule_at(Instant::origin() + Duration::microseconds(750), [&] { order.push_back(3); });
    sim.schedule_at(Instant::origin() + Duration::microseconds(250), [&] { order.push_back(1); });
    sim.schedule_at(Instant::origin() + Duration::microseconds(500), [&] { order.push_back(2); });
    sim.run_until(Instant::origin() + 1_s);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3})) << "resolution " << resolution.ns() << "ns";
  }
}

}  // namespace
}  // namespace decos::sim
