#include "sim/trace.hpp"

#include <gtest/gtest.h>

namespace decos::sim {
namespace {

using namespace decos::literals;

TEST(TraceRecorderTest, RecordsAndCounts) {
  TraceRecorder trace;
  trace.record(Instant::origin(), TraceKind::kFrameSent, "node0");
  trace.record(Instant::origin() + 1_ms, TraceKind::kFrameSent, "node1");
  trace.record(Instant::origin() + 2_ms, TraceKind::kFrameBlocked, "node0");
  EXPECT_EQ(trace.records().size(), 3u);
  EXPECT_EQ(trace.count(TraceKind::kFrameSent), 2u);
  EXPECT_EQ(trace.count(TraceKind::kFrameBlocked), 1u);
  EXPECT_EQ(trace.count(TraceKind::kFrameSent, "node0"), 1u);
  EXPECT_EQ(trace.count(TraceKind::kGatewayForwarded), 0u);
}

TEST(TraceRecorderTest, DisabledRecordsNothing) {
  TraceRecorder trace;
  trace.set_enabled(false);
  trace.record(Instant::origin(), TraceKind::kFrameSent, "node0");
  EXPECT_TRUE(trace.records().empty());
}

TEST(TraceRecorderTest, ForEachFiltersByKind) {
  TraceRecorder trace;
  trace.record(Instant::origin(), TraceKind::kFrameSent, "a", "detail", 7);
  trace.record(Instant::origin(), TraceKind::kClockSync, "b", "", 1);
  int visited = 0;
  trace.for_each(TraceKind::kFrameSent, [&](const TraceRecord& r) {
    ++visited;
    EXPECT_EQ(r.subject, "a");
    EXPECT_EQ(r.value, 7);
  });
  EXPECT_EQ(visited, 1);
}

TEST(TraceRecorderTest, ClearEmpties) {
  TraceRecorder trace;
  trace.record(Instant::origin(), TraceKind::kFrameSent, "x");
  trace.clear();
  EXPECT_TRUE(trace.records().empty());
}

}  // namespace
}  // namespace decos::sim
