// Programmatic accept/reject coverage for every declint rule class
// (DL001-DL006); the XML fixture round-trips live in lint_xml_test.cpp.
#include "lint/lint.hpp"

#include <gtest/gtest.h>

#include "../helpers.hpp"
#include "core/virtual_gateway.hpp"
#include "ta/expr.hpp"

namespace decos::lint {
namespace {

using decos::testing::state_message;
using namespace decos::literals;

spec::PortSpec tt_input(const std::string& message, Duration period) {
  spec::PortSpec ps;
  ps.message = message;
  ps.direction = spec::DataDirection::kInput;
  ps.semantics = spec::InfoSemantics::kState;
  ps.period = period;
  ps.min_interarrival = Duration::nanoseconds(1);
  ps.max_interarrival = Duration::seconds(3600);
  return ps;
}

spec::PortSpec et_output(const std::string& message, Duration tmin = 10_ms) {
  spec::PortSpec ps;
  ps.message = message;
  ps.direction = spec::DataDirection::kOutput;
  ps.semantics = spec::InfoSemantics::kState;
  ps.paradigm = spec::ControlParadigm::kEventTriggered;
  ps.min_interarrival = tmin;
  return ps;
}

/// Producer link: TT input msgwheel carrying state element wheelspeed.
spec::LinkSpec producer_link() {
  spec::LinkSpec ls{"powertrain"};
  ls.add_message(state_message("msgwheel", "wheelspeed", 100));
  ls.add_port(tt_input("msgwheel", 10_ms));
  return ls;
}

/// Consumer link: ET output msgnav constituted by the same element.
spec::LinkSpec consumer_link() {
  spec::LinkSpec ls{"comfort"};
  ls.add_message(state_message("msgnav", "wheelspeed", 200));
  ls.add_port(et_output("msgnav"));
  return ls;
}

GatewayModel make_model(const spec::LinkSpec& a, const spec::LinkSpec& b) {
  GatewayModel model;
  model.name = "test-gateway";
  model.dispatch_period = 1_ms;
  model.default_d_acc = 30_ms;
  model.links = {&a, &b};
  return model;
}

ta::ExprPtr expr(const std::string& text) {
  auto parsed = ta::parse_expression(text);
  EXPECT_TRUE(parsed.ok()) << text;
  return parsed.value();
}

bool has_error(const Report& report, const std::string& rule) {
  for (const Diagnostic* d : report.by_rule(rule))
    if (d->severity == Severity::kError) return true;
  return false;
}

TEST(LintBaseline, WellFormedDeploymentIsClean) {
  const auto a = producer_link();
  const auto b = consumer_link();
  const Report report = lint_gateway(make_model(a, b));
  EXPECT_TRUE(report.clean()) << report.format();
}

// -- DL001: transfer-rule consistency ------------------------------------

spec::TransferRule derive_rule(const std::string& target, const std::string& source) {
  spec::TransferRule rule;
  rule.target = target;
  rule.source = source;
  spec::TransferFieldRule fr;
  fr.name = "value";
  fr.init = ta::Value{0};
  fr.semantics = "state";
  fr.update = expr("value + 1");
  rule.fields.push_back(std::move(fr));
  // state_message() elements also carry a 't' timestamp; a rule that
  // leaves it underived produces an element the gateway can never
  // encode (and declint flags it).
  spec::TransferFieldRule ft;
  ft.name = "t";
  ft.init = ta::Value{Instant{}};
  ft.semantics = "state";
  ft.update = expr("t_now");
  rule.fields.push_back(std::move(ft));
  return rule;
}

TEST(LintDl001, AcceptsRuleWithPortBackedSource) {
  auto a = producer_link();
  a.add_transfer_rule(derive_rule("derived", "wheelspeed"));
  spec::LinkSpec b{"comfort"};
  b.add_message(state_message("msgnav", "derived", 200));
  b.add_port(et_output("msgnav"));
  const Report report = lint_gateway(make_model(a, b));
  EXPECT_TRUE(report.clean()) << report.format();
}

TEST(LintDl001, RejectsDanglingSource) {
  auto a = producer_link();
  a.add_transfer_rule(derive_rule("derived", "nosuch"));
  spec::LinkSpec b{"comfort"};
  b.add_message(state_message("msgnav", "derived", 200));
  b.add_port(et_output("msgnav"));
  const Report report = lint_gateway(make_model(a, b));
  EXPECT_TRUE(has_error(report, kRuleTransfer)) << report.format();
}

TEST(LintDl001, RejectsDuplicateTargets) {
  auto a = producer_link();
  a.add_transfer_rule(derive_rule("derived", "wheelspeed"));
  a.add_transfer_rule(derive_rule("derived", "wheelspeed"));
  spec::LinkSpec b{"comfort"};
  b.add_message(state_message("msgnav", "derived", 200));
  b.add_port(et_output("msgnav"));
  const Report report = lint_gateway(make_model(a, b));
  EXPECT_TRUE(has_error(report, kRuleTransfer)) << report.format();
}

TEST(LintDl001, WarnsOnDeadDerivedElement) {
  auto a = producer_link();
  a.add_transfer_rule(derive_rule("derived", "wheelspeed"));
  const auto b = consumer_link();  // consumes wheelspeed, not 'derived'
  const Report report = lint_gateway(make_model(a, b));
  EXPECT_TRUE(report.clean()) << report.format();
  EXPECT_TRUE(report.has(kRuleTransfer));
}

// -- DL002: static expression typing --------------------------------------

TEST(LintDl002, AcceptsTypedFilter) {
  auto a = producer_link();
  a.set_parameter("lim", ta::Value{100});
  a.set_filter("msgwheel", expr("value >= -lim && value <= lim"));
  const auto b = consumer_link();
  const Report report = lint_gateway(make_model(a, b));
  EXPECT_TRUE(report.clean()) << report.format();
}

TEST(LintDl002, RejectsFilterOrderingStringField) {
  spec::LinkSpec a{"powertrain"};
  spec::MessageSpec ms{"msgwheel"};
  spec::ElementSpec key;
  key.name = "name";
  key.key = true;
  key.fields.push_back(spec::FieldSpec{"id", spec::FieldType::kInt16, 0, ta::Value{100}});
  ms.add_element(std::move(key));
  spec::ElementSpec payload;
  payload.name = "wheelspeed";
  payload.convertible = true;
  payload.fields.push_back(spec::FieldSpec{"value", spec::FieldType::kString, 8, std::nullopt});
  ms.add_element(std::move(payload));
  a.add_message(std::move(ms));
  a.add_port(tt_input("msgwheel", 10_ms));
  a.set_filter("msgwheel", expr("value >= 0"));
  const auto b = consumer_link();
  const Report report = lint_gateway(make_model(a, b));
  EXPECT_TRUE(has_error(report, kRuleTypes)) << report.format();
}

TEST(LintDl002, RejectsFilterWithUnknownIdentifier) {
  auto a = producer_link();
  a.set_filter("msgwheel", expr("value >= threshold"));  // no such parameter
  const auto b = consumer_link();
  const Report report = lint_gateway(make_model(a, b));
  EXPECT_TRUE(has_error(report, kRuleTypes)) << report.format();
}

TEST(LintDl002, WarnsOnRealUpdateIntoIntegerField) {
  auto a = producer_link();
  spec::TransferRule rule = derive_rule("derived", "wheelspeed");
  rule.fields[0].update = expr("value * 0.5");  // real into int32 'value' of msgnav
  a.add_transfer_rule(std::move(rule));
  spec::LinkSpec b{"comfort"};
  b.add_message(state_message("msgnav", "derived", 200));
  b.add_port(et_output("msgnav"));
  const Report report = lint_gateway(make_model(a, b));
  EXPECT_TRUE(report.clean()) << report.format();
  EXPECT_TRUE(report.has(kRuleTypes)) << report.format();
}

// -- DL003: TDMA schedule / bandwidth --------------------------------------

TEST(LintDl003, AcceptsPartitionedSchedule) {
  tt::TdmaSchedule schedule{10_ms};
  schedule.add_slot({0_ms, 1_ms, 1, 1, 64});
  schedule.add_slot({1_ms, 1_ms, 2, 2, 64});
  EXPECT_TRUE(lint_schedule(schedule).clean());
}

TEST(LintDl003, RejectsOverlappingSlots) {
  tt::TdmaSchedule schedule{10_ms};
  schedule.add_slot({0_ms, 2_ms, 1, 1, 64});
  schedule.add_slot({1_ms, 1_ms, 2, 2, 64});  // starts inside slot 0
  const Report report = lint_schedule(schedule);
  EXPECT_TRUE(has_error(report, kRuleSchedule)) << report.format();
}

TEST(LintDl003, RejectsSlotBeyondRound) {
  tt::TdmaSchedule schedule{10_ms};
  schedule.add_slot({9_ms, 2_ms, 1, 1, 64});  // 9 + 2 > 10
  const Report report = lint_schedule(schedule);
  EXPECT_TRUE(has_error(report, kRuleSchedule)) << report.format();
}

TEST(LintDl003, RejectsOverSubscribedVirtualNetwork) {
  const auto a = producer_link();  // 14 B wire / 10 ms period
  const auto b = consumer_link();
  tt::TdmaSchedule schedule{10_ms};
  schedule.add_slot({0_ms, 1_ms, 1, 1, 4});  // VN 1: 4 B/round < demand
  schedule.add_slot({1_ms, 1_ms, 2, 2, 64});
  GatewayModel model = make_model(a, b);
  model.schedule = &schedule;
  model.link_vn = {1, 2};
  const Report report = lint_gateway(model);
  EXPECT_TRUE(has_error(report, kRuleSchedule)) << report.format();
}

TEST(LintDl003, AcceptsAdequateBandwidth) {
  const auto a = producer_link();
  const auto b = consumer_link();
  tt::TdmaSchedule schedule{10_ms};
  schedule.add_slot({0_ms, 1_ms, 1, 1, 64});
  schedule.add_slot({1_ms, 1_ms, 2, 2, 64});
  GatewayModel model = make_model(a, b);
  model.schedule = &schedule;
  model.link_vn = {1, 2};
  const Report report = lint_gateway(model);
  EXPECT_TRUE(report.clean()) << report.format();
}

// -- DL004: automaton structure --------------------------------------------

ta::AutomatonSpec receive_automaton(ta::ExprPtr guard) {
  ta::AutomatonSpec automaton{"recv_msgwheel"};
  automaton.add_location("idle");
  automaton.add_clock("c");
  ta::Edge edge;
  edge.source = "idle";
  edge.target = "idle";
  edge.action = ta::ActionKind::kReceive;
  edge.message = "msgwheel";
  edge.guard = std::move(guard);
  auto reset = ta::parse_assignments("c=0");
  EXPECT_TRUE(reset.ok());
  edge.assignments = reset.value();
  automaton.add_edge(std::move(edge));
  return automaton;
}

TEST(LintDl004, AcceptsWellFormedAutomaton) {
  auto a = producer_link();
  a.add_automaton(receive_automaton(expr("c >= 1ms")));
  const auto b = consumer_link();
  const Report report = lint_gateway(make_model(a, b));
  EXPECT_TRUE(report.clean()) << report.format();
}

TEST(LintDl004, RejectsUndefinedGuardIdentifier) {
  auto a = producer_link();
  a.add_automaton(receive_automaton(expr("c >= tlimit")));  // undeclared
  const auto b = consumer_link();
  const Report report = lint_gateway(make_model(a, b));
  EXPECT_TRUE(has_error(report, kRuleAutomaton)) << report.format();
}

TEST(LintDl004, WarnsOnUnreachableLocation) {
  auto a = producer_link();
  auto automaton = receive_automaton(expr("c >= 1ms"));
  automaton.add_location("island");  // no incoming edge
  a.add_automaton(std::move(automaton));
  const auto b = consumer_link();
  const Report report = lint_gateway(make_model(a, b));
  EXPECT_TRUE(report.clean()) << report.format();
  EXPECT_TRUE(report.has(kRuleAutomaton)) << report.format();
}

TEST(LintDl004, WarnsOnEdgeWithoutPort) {
  auto a = producer_link();
  // The message exists (so the spec itself is valid) but no port ever
  // carries it -- the receive edge is statically dead.
  a.add_message(state_message("msgghost", "ghost", 300));
  auto automaton = receive_automaton(expr("c >= 1ms"));
  automaton.set_name("recv_ghost");
  ta::Edge ghost;
  ghost.source = "idle";
  ghost.target = "idle";
  ghost.action = ta::ActionKind::kReceive;
  ghost.message = "msgghost";  // link has no port for it
  automaton.add_edge(std::move(ghost));
  a.add_automaton(std::move(automaton));
  const auto b = consumer_link();
  const Report report = lint_gateway(make_model(a, b));
  EXPECT_TRUE(report.clean()) << report.format();
  EXPECT_TRUE(report.has(kRuleAutomaton)) << report.format();
}

// -- DL005: horizon feasibility --------------------------------------------

TEST(LintDl005, RejectsAccuracyBelowDispatchPeriod) {
  const auto a = producer_link();
  const auto b = consumer_link();
  GatewayModel model = make_model(a, b);
  model.element_overrides["wheelspeed"] =
      ElementMeta{spec::InfoSemantics::kState, 1_ms, 16};  // == dispatch
  const Report report = lint_gateway(model);
  EXPECT_TRUE(has_error(report, kRuleHorizon)) << report.format();
}

TEST(LintDl005, RejectsOutputNobodyProduces) {
  spec::LinkSpec a{"powertrain"};
  a.add_message(state_message("msgwheel", "wheelspeed", 100));
  a.add_port(tt_input("msgwheel", 10_ms));
  spec::LinkSpec b{"comfort"};
  b.add_message(state_message("msgnav", "unrelated", 200));
  b.add_port(et_output("msgnav"));
  const Report report = lint_gateway(make_model(a, b));
  EXPECT_TRUE(has_error(report, kRuleHorizon)) << report.format();
}

TEST(LintDl005, WarnsWhenAccuracyBelowProducerPeriod) {
  const auto a = producer_link();  // 10 ms input period
  const auto b = consumer_link();
  GatewayModel model = make_model(a, b);
  model.element_overrides["wheelspeed"] =
      ElementMeta{spec::InfoSemantics::kState, 5_ms, 16};  // 1 ms < 5 ms < 10 ms
  // Locally DL005 only warns; the *composed* flow bound (DL008) rejects
  // this deployment outright, which LintDl008 covers separately.
  const Report report = lint_gateway_local(model);
  EXPECT_TRUE(report.clean()) << report.format();
  EXPECT_TRUE(report.has(kRuleHorizon)) << report.format();
  EXPECT_TRUE(has_error(lint_gateway(model), kRuleLatency)) << report.format();
}

// -- DL006: port sanity ----------------------------------------------------

GatewayModel event_chain_model(const spec::LinkSpec& a, const spec::LinkSpec& b,
                               std::size_t queue) {
  GatewayModel model = make_model(a, b);
  model.element_overrides["wheelspeed"] =
      ElementMeta{spec::InfoSemantics::kEvent, 30_ms, queue};
  return model;
}

spec::LinkSpec event_producer() {
  spec::LinkSpec ls{"powertrain"};
  ls.add_message(state_message("msgwheel", "wheelspeed", 100));
  spec::PortSpec ps;
  ps.message = "msgwheel";
  ps.direction = spec::DataDirection::kInput;
  ps.semantics = spec::InfoSemantics::kEvent;
  ps.paradigm = spec::ControlParadigm::kEventTriggered;
  ps.min_interarrival = 1_ms;
  ps.max_interarrival = 100_ms;
  ps.queue_capacity = 16;
  ls.add_port(ps);
  return ls;
}

spec::LinkSpec tt_event_consumer(Duration period) {
  spec::LinkSpec ls{"comfort"};
  ls.add_message(state_message("msgnav", "wheelspeed", 200));
  spec::PortSpec ps;
  ps.message = "msgnav";
  ps.direction = spec::DataDirection::kOutput;
  ps.semantics = spec::InfoSemantics::kEvent;
  ps.period = period;
  ls.add_port(ps);
  return ls;
}

TEST(LintDl006, RejectsUndersizedEventQueue) {
  const auto a = event_producer();            // tmin 1 ms
  const auto b = tt_event_consumer(10_ms);    // E5 bound: 10 slots
  const Report report = lint_gateway(event_chain_model(a, b, 4));
  EXPECT_TRUE(has_error(report, kRulePorts)) << report.format();
}

TEST(LintDl006, AcceptsE5SizedEventQueue) {
  const auto a = event_producer();
  const auto b = tt_event_consumer(10_ms);
  const Report report = lint_gateway(event_chain_model(a, b, 16));
  EXPECT_TRUE(report.clean()) << report.format();
}

TEST(LintDl006, WarnsOnDriftingTtOutputPeriod) {
  const auto a = producer_link();
  spec::LinkSpec b{"comfort"};
  b.add_message(state_message("msgnav", "wheelspeed", 200));
  spec::PortSpec ps;
  ps.message = "msgnav";
  ps.direction = spec::DataDirection::kOutput;
  ps.semantics = spec::InfoSemantics::kState;
  ps.period = Duration::microseconds(1500);  // not a multiple of 1 ms dispatch
  b.add_port(ps);
  const Report report = lint_gateway(make_model(a, b));
  EXPECT_TRUE(report.clean()) << report.format();
  EXPECT_TRUE(report.has(kRulePorts)) << report.format();
}

TEST(LintDl006, WarnsOnUnboundedEventInput) {
  spec::LinkSpec a{"powertrain"};
  a.add_message(state_message("msgwheel", "wheelspeed", 100));
  spec::PortSpec ps;
  ps.message = "msgwheel";
  ps.direction = spec::DataDirection::kInput;
  ps.semantics = spec::InfoSemantics::kEvent;
  ps.paradigm = spec::ControlParadigm::kEventTriggered;
  ps.queue_capacity = 16;  // no tmin
  a.add_port(ps);
  const auto b = consumer_link();
  const Report report = lint_gateway(make_model(a, b));
  EXPECT_TRUE(report.has(kRulePorts)) << report.format();
}

// -- DL011: event-queue sizing vs live-runtime ring capacity ---------------

/// rt/ring.hpp framing, restated: 4-byte length prefix, 8-byte aligned.
std::size_t framed(std::size_t payload) { return (4 + payload + 7) & ~std::size_t{7}; }

TEST(LintDl011, NotesWhenRingBuffersFewerFramesThanQueueDemands) {
  const auto a = event_producer();
  const auto b = tt_event_consumer(10_ms);
  GatewayModel model = event_chain_model(a, b, 16);
  const std::size_t frame = framed(a.message("msgwheel")->wire_size());
  model.transport_ring_bytes = frame * 8;  // 8 frames buffered, 16 provisioned
  const Report report = lint_gateway(model);
  EXPECT_TRUE(report.has(kRuleRingCapacity)) << report.format();
  EXPECT_FALSE(has_error(report, kRuleRingCapacity)) << report.format();
}

TEST(LintDl011, AdequateRingStaysClean) {
  const auto a = event_producer();
  const auto b = tt_event_consumer(10_ms);
  GatewayModel model = event_chain_model(a, b, 16);
  model.transport_ring_bytes = framed(a.message("msgwheel")->wire_size()) * 64;
  const Report report = lint_gateway(model);
  EXPECT_FALSE(report.has(kRuleRingCapacity)) << report.format();
}

TEST(LintDl011, NotesFrameLargerThanRingQuarter) {
  const auto a = event_producer();
  const auto b = tt_event_consumer(10_ms);
  GatewayModel model = event_chain_model(a, b, 16);
  // The ring rejects frames above capacity/4; a ring of two frames
  // cannot carry msgwheel at all.
  model.transport_ring_bytes = framed(a.message("msgwheel")->wire_size()) * 2;
  const Report report = lint_gateway(model);
  EXPECT_TRUE(report.has(kRuleRingCapacity)) << report.format();
}

TEST(LintDl011, SilentWithoutRuntimeContext) {
  const auto a = event_producer();
  const auto b = tt_event_consumer(10_ms);
  const Report report = lint_gateway(event_chain_model(a, b, 1024));  // no ring bytes
  EXPECT_FALSE(report.has(kRuleRingCapacity)) << report.format();
}

// -- Standalone link lint --------------------------------------------------

TEST(LintLink, CrossLinkSourceIsNoteNotError) {
  auto b = consumer_link();
  b.add_transfer_rule(derive_rule("derived2", "external"));  // other side supplies it
  const Report report = lint_link(b);
  EXPECT_TRUE(report.clean()) << report.format();
}

TEST(LintLink, RejectsSelfDerivingRule) {
  auto a = producer_link();
  a.add_transfer_rule(derive_rule("wheelspeed", "wheelspeed"));
  const Report report = lint_link(a);
  EXPECT_TRUE(has_error(report, kRuleTransfer)) << report.format();
}

// -- Virtual-network-level lint -------------------------------------------

TEST(LintVn, RejectsIncommensurablePeriod) {
  spec::VirtualNetworkSpec vn{"vn-test", spec::ControlParadigm::kTimeTriggered};
  vn.set_allocation(64, 10_ms);
  spec::LinkSpec link{"powertrain"};
  link.add_message(state_message("msgwheel", "wheelspeed", 100));
  link.add_port(tt_input("msgwheel", Duration::milliseconds(7)));  // vs 10 ms round
  vn.add_link(std::move(link));
  const Report report = lint_virtual_network(vn);
  EXPECT_TRUE(has_error(report, kRulePorts)) << report.format();
}

TEST(LintVn, AcceptsDivisiblePeriods) {
  spec::VirtualNetworkSpec vn{"vn-test", spec::ControlParadigm::kTimeTriggered};
  vn.set_allocation(64, 10_ms);
  spec::LinkSpec link{"powertrain"};
  link.add_message(state_message("msgwheel", "wheelspeed", 100));
  link.add_port(tt_input("msgwheel", 10_ms));
  vn.add_link(std::move(link));
  const Report report = lint_virtual_network(vn);
  EXPECT_TRUE(report.clean()) << report.format();
}

// -- Strict construction (GatewayConfig::strict_lint) ---------------------

TEST(LintStrict, FinalizeThrowsOnLintErrors) {
  core::GatewayConfig config;
  config.strict_lint = true;
  config.default_d_acc = 1_ms;  // == dispatch period: DL005 error
  core::VirtualGateway gateway{"strict-bad", producer_link(), consumer_link(), config};
  EXPECT_THROW(gateway.finalize(), SpecError);
}

TEST(LintStrict, FinalizeAcceptsCleanDeployment) {
  core::GatewayConfig config;
  config.strict_lint = true;
  config.default_d_acc = 30_ms;
  core::VirtualGateway gateway{"strict-ok", producer_link(), consumer_link(), config};
  EXPECT_NO_THROW(gateway.finalize());
  EXPECT_TRUE(gateway.finalized());
}

}  // namespace
}  // namespace decos::lint
