// XML round-trips of the analyzer: every rule's accepting fixture lints
// clean, every rejecting fixture reports an error under exactly that
// rule id; the shipped example specs stay clean; strict-mode
// construction rejects broken deployments with the report attached.
#include <gtest/gtest.h>

#include <string>

#include "core/gateway_lint.hpp"
#include "core/gateway_xml.hpp"
#include "lint/lint.hpp"

namespace decos::lint {
namespace {

std::string fixture(const std::string& name) {
  return std::string{DECOS_LINT_FIXTURES_DIR} + "/" + name;
}

Report lint_fixture(const std::string& name) {
  auto doc = core::load_gateway_doc(fixture(name));
  EXPECT_TRUE(doc.ok()) << name << ": " << (doc.ok() ? "" : doc.error().message);
  if (!doc.ok()) return Report{};
  return core::lint_gateway_doc(doc.value());
}

bool has_error(const Report& report, const std::string& rule) {
  for (const Diagnostic* d : report.by_rule(rule))
    if (d->severity == Severity::kError) return true;
  return false;
}

struct RuleCase {
  const char* rule;
  const char* ok;
  const char* bad;
};

constexpr RuleCase kCases[] = {
    {kRuleTransfer, "dl001_ok.xml", "dl001_bad.xml"},
    {kRuleTypes, "dl002_ok.xml", "dl002_bad.xml"},
    {kRuleSchedule, "dl003_ok.xml", "dl003_bad.xml"},
    {kRuleAutomaton, "dl004_ok.xml", "dl004_bad.xml"},
    {kRuleHorizon, "dl005_ok.xml", "dl005_bad.xml"},
    {kRulePorts, "dl006_ok.xml", "dl006_bad.xml"},
};

// DL007 reports warnings, not errors (a dead element degrades service
// but does not break the deployment), so it gets its own fixture pair
// outside the error-driven kCases table.
TEST(LintFixtures, DeadConvertibleElementsAreFlagged) {
  const Report ok = lint_fixture("dl007_ok.xml");
  EXPECT_TRUE(ok.by_rule(kRuleDeadElement).empty()) << ok.format();
  EXPECT_TRUE(ok.clean()) << ok.format();
  const Report bad = lint_fixture("dl007_bad.xml");
  EXPECT_FALSE(bad.by_rule(kRuleDeadElement).empty())
      << "dl007_bad.xml should report the dead element under DL007; got:\n" << bad.format();
}

TEST(LintFixtures, AcceptingFixturesAreClean) {
  for (const RuleCase& c : kCases) {
    const Report report = lint_fixture(c.ok);
    EXPECT_TRUE(report.clean()) << c.ok << ":\n" << report.format();
  }
}

TEST(LintFixtures, RejectingFixturesFailUnderTheirRule) {
  for (const RuleCase& c : kCases) {
    const Report report = lint_fixture(c.bad);
    EXPECT_TRUE(has_error(report, c.rule)) << c.bad << " should report an error under " << c.rule
                                           << "; got:\n" << report.format();
  }
}

TEST(LintFixtures, ShippedExampleSpecIsClean) {
  auto doc = core::load_gateway_doc(std::string{DECOS_SPECS_DIR} + "/yaw_gateway.xml");
  ASSERT_TRUE(doc.ok()) << doc.error().message;
  const Report report = core::lint_gateway_doc(doc.value());
  EXPECT_TRUE(report.clean()) << report.format();
}

TEST(LintFixtures, ScheduleContextSurvivesParsing) {
  auto doc = core::load_gateway_doc(fixture("dl003_ok.xml"));
  ASSERT_TRUE(doc.ok()) << doc.error().message;
  ASSERT_TRUE(doc.value().schedule.has_value());
  EXPECT_EQ(doc.value().schedule->slots().size(), 2u);
  EXPECT_EQ(doc.value().schedule->round_length(), Duration::milliseconds(10));
  ASSERT_TRUE(doc.value().link_vn[0].has_value());
  EXPECT_EQ(*doc.value().link_vn[0], 1u);
  ASSERT_TRUE(doc.value().link_vn[1].has_value());
  EXPECT_EQ(*doc.value().link_vn[1], 2u);
}

TEST(LintStrictXml, BuildRejectsBrokenDeploymentWithReport) {
  auto doc = core::load_gateway_doc(fixture("dl005_bad.xml"));
  ASSERT_TRUE(doc.ok()) << doc.error().message;
  doc.value().config.strict_lint = true;
  auto gateway = core::build_gateway(doc.value());
  ASSERT_FALSE(gateway.ok());
  EXPECT_NE(gateway.error().message.find("DL005"), std::string::npos)
      << gateway.error().message;
}

TEST(LintStrictXml, ConfigAttributeEnablesStrictMode) {
  auto doc = core::load_gateway_doc(fixture("dl001_ok.xml"));
  ASSERT_TRUE(doc.ok());
  EXPECT_FALSE(doc.value().config.strict_lint);  // default off

  // The same document with lint="strict" builds fine (it is clean).
  auto strict = doc.value();
  strict.config.strict_lint = true;
  auto gateway = core::build_gateway(strict);
  ASSERT_TRUE(gateway.ok()) << gateway.error().message;
  EXPECT_TRUE((*gateway.value()).finalized());
  EXPECT_TRUE(gateway.value()->config().strict_lint);
}

TEST(LintStrictXml, GatewayLintMemberMatchesDocLint) {
  auto doc = core::load_gateway_doc(fixture("dl006_bad.xml"));
  ASSERT_TRUE(doc.ok());
  const Report doc_report = core::lint_gateway_doc(doc.value());
  auto gateway = core::build_gateway(doc.value());  // not strict: builds
  ASSERT_TRUE(gateway.ok()) << gateway.error().message;
  const Report gw_report = gateway.value()->lint();
  EXPECT_EQ(has_error(doc_report, kRulePorts), has_error(gw_report, kRulePorts));
}

}  // namespace
}  // namespace decos::lint
