#include "lint/diagnostic.hpp"

#include <gtest/gtest.h>

namespace decos::lint {
namespace {

TEST(LintReport, EmptyReportIsClean) {
  Report report;
  EXPECT_TRUE(report.empty());
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.error_count(), 0u);
  EXPECT_EQ(report.warning_count(), 0u);
  EXPECT_EQ(report.format(), "");
}

TEST(LintReport, CountsBySeverity) {
  Report report;
  report.add("DL001", Severity::kError, "here", "broken");
  report.add("DL002", Severity::kWarning, "there", "dubious");
  report.add("DL002", Severity::kNote, "there", "fyi");
  EXPECT_EQ(report.error_count(), 1u);
  EXPECT_EQ(report.warning_count(), 1u);
  EXPECT_FALSE(report.clean());
  EXPECT_EQ(report.diagnostics().size(), 3u);
}

TEST(LintReport, WarningsDoNotBlockDeployment) {
  Report report;
  report.add("DL006", Severity::kWarning, "port", "unbounded");
  EXPECT_FALSE(report.empty());
  EXPECT_TRUE(report.clean());
}

TEST(LintReport, HasAndByRule) {
  Report report;
  report.add("DL003", Severity::kError, "slot 1", "overlap");
  report.add("DL003", Severity::kWarning, "slot 2", "tight");
  report.add("DL005", Severity::kError, "element", "dead");
  EXPECT_TRUE(report.has("DL003"));
  EXPECT_TRUE(report.has("DL005"));
  EXPECT_FALSE(report.has("DL001"));
  EXPECT_EQ(report.by_rule("DL003").size(), 2u);
  EXPECT_EQ(report.by_rule("DL005").size(), 1u);
}

TEST(LintReport, ToStringCarriesRuleLocationAndHint) {
  Diagnostic d{"DL004", Severity::kError, "automaton 'a'", "undefined identifier 'x'",
               "declare a clock"};
  const std::string s = d.to_string();
  EXPECT_NE(s.find("error DL004"), std::string::npos);
  EXPECT_NE(s.find("automaton 'a'"), std::string::npos);
  EXPECT_NE(s.find("undefined identifier 'x'"), std::string::npos);
  EXPECT_NE(s.find("declare a clock"), std::string::npos);
}

TEST(LintReport, FormatOrdersErrorsFirst) {
  Report report;
  report.add("DL006", Severity::kNote, "", "a note");
  report.add("DL006", Severity::kWarning, "", "a warning");
  report.add("DL006", Severity::kError, "", "an error");
  const std::string out = report.format();
  const auto error_pos = out.find("an error");
  const auto warning_pos = out.find("a warning");
  const auto note_pos = out.find("a note");
  ASSERT_NE(error_pos, std::string::npos);
  ASSERT_NE(warning_pos, std::string::npos);
  ASSERT_NE(note_pos, std::string::npos);
  EXPECT_LT(error_pos, warning_pos);
  EXPECT_LT(warning_pos, note_pos);
}

TEST(LintReport, MergeAppends) {
  Report a;
  a.add("DL001", Severity::kError, "", "one");
  Report b;
  b.add("DL002", Severity::kWarning, "", "two");
  a.merge(std::move(b));
  EXPECT_EQ(a.diagnostics().size(), 2u);
  EXPECT_TRUE(a.has("DL001"));
  EXPECT_TRUE(a.has("DL002"));
}

}  // namespace
}  // namespace decos::lint
