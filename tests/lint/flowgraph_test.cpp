// Whole-cluster analysis (DL008-DL010): flow-graph construction across
// gateway chains, exact composed latency bounds, slot-exact VN waits,
// cross-hop burst compounding and filter shadowing. XML-driven CLI
// coverage of the same rules lives in the declint_* ctest cases.
#include "lint/flowgraph.hpp"

#include <gtest/gtest.h>

#include "../helpers.hpp"
#include "lint/timing.hpp"
#include "ta/expr.hpp"

namespace decos::lint {
namespace {

using decos::testing::state_message;
using namespace decos::literals;

spec::PortSpec tt_input(const std::string& message, Duration period) {
  spec::PortSpec ps;
  ps.message = message;
  ps.direction = spec::DataDirection::kInput;
  ps.semantics = spec::InfoSemantics::kState;
  ps.period = period;
  ps.min_interarrival = Duration::nanoseconds(1);
  ps.max_interarrival = Duration::seconds(3600);
  return ps;
}

spec::PortSpec tt_output(const std::string& message, Duration period) {
  spec::PortSpec ps;
  ps.message = message;
  ps.direction = spec::DataDirection::kOutput;
  ps.semantics = spec::InfoSemantics::kState;
  ps.period = period;
  return ps;
}

spec::PortSpec et_input(const std::string& message, Duration tmin, std::size_t queue) {
  spec::PortSpec ps;
  ps.message = message;
  ps.direction = spec::DataDirection::kInput;
  ps.semantics = spec::InfoSemantics::kEvent;
  ps.paradigm = spec::ControlParadigm::kEventTriggered;
  ps.min_interarrival = tmin;
  ps.max_interarrival = Duration::seconds(1);
  ps.queue_capacity = queue;
  return ps;
}

spec::PortSpec et_output(const std::string& message, Duration tmin) {
  spec::PortSpec ps;
  ps.message = message;
  ps.direction = spec::DataDirection::kOutput;
  ps.semantics = spec::InfoSemantics::kEvent;
  ps.paradigm = spec::ControlParadigm::kEventTriggered;
  ps.min_interarrival = tmin;
  return ps;
}

ta::ExprPtr expr(const std::string& text) {
  auto parsed = ta::parse_expression(text);
  EXPECT_TRUE(parsed.ok()) << text;
  return parsed.value();
}

bool has_error(const Report& report, const std::string& rule) {
  for (const Diagnostic* d : report.by_rule(rule))
    if (d->severity == Severity::kError) return true;
  return false;
}

/// One link in a relay chain: `message` carrying convertible element "x".
/// Elements share the repository name across gateways, so each gateway's
/// produced/required sets intersect without renames.
spec::LinkSpec chain_link(const std::string& message, int id, spec::PortSpec port) {
  spec::LinkSpec ls{"das-" + message};
  ls.add_message(state_message(message, "x", id));
  ls.add_port(std::move(port));
  return ls;
}

/// A relay gateway: TT input `in_msg`, TT output `out_msg`, both 10 ms,
/// dispatch 1 ms. Owns its link specs; never move an instance (the model
/// borrows pointers into the members).
struct RelayGateway {
  spec::LinkSpec in_link;
  spec::LinkSpec out_link;
  GatewayModel model;

  RelayGateway(const std::string& name, const std::string& in_msg, int in_id,
               const std::string& out_msg, int out_id)
      : in_link(chain_link(in_msg, in_id, tt_input(in_msg, 10_ms))),
        out_link(chain_link(out_msg, out_id, tt_output(out_msg, 10_ms))) {
    model.name = name;
    model.dispatch_period = 1_ms;
    model.default_d_acc = 100_ms;
    model.links = {&in_link, &out_link};
  }
  RelayGateway(const RelayGateway&) = delete;
};

TEST(FlowGraph, ChainsThreeGatewaysIntoOneFlow) {
  RelayGateway g1{"sensor", "msgA", 1, "msgB", 2};
  RelayGateway g2{"backbone", "msgB", 3, "msgC", 4};
  RelayGateway g3{"actuator", "msgC", 5, "msgD", 6};
  const ClusterModel cluster{{&g1.model, &g2.model, &g3.model}};

  const FlowGraph graph = build_flow_graph(cluster);
  ASSERT_EQ(graph.hops.size(), 3u);
  ASSERT_EQ(graph.flows.size(), 1u);
  const Flow& flow = graph.flows[0];
  ASSERT_EQ(flow.hops.size(), 3u);
  EXPECT_EQ(flow.key(), "msgA->msgD");
  EXPECT_EQ(flow.hops[0].gateway, &g1.model);
  EXPECT_EQ(flow.hops[1].gateway, &g2.model);
  EXPECT_EQ(flow.hops[2].gateway, &g3.model);
  ASSERT_EQ(flow.hops[0].elements.size(), 1u);
  EXPECT_EQ(flow.hops[0].elements[0], "x");
}

TEST(FlowGraph, ComposedLatencyBoundIsExact) {
  RelayGateway g1{"sensor", "msgA", 1, "msgB", 2};
  RelayGateway g2{"backbone", "msgB", 3, "msgC", 4};
  RelayGateway g3{"actuator", "msgC", 5, "msgD", 6};
  const ClusterModel cluster{{&g1.model, &g2.model, &g3.model}};
  const FlowGraph graph = build_flow_graph(cluster);

  Report report;
  std::vector<FlowBound> bounds;
  check_flow_latency(graph, report, &bounds);
  // Per hop: one TT ingress period (10 ms, schedule-free VN fallback)
  // + dispatch (1 ms) + TT egress period (10 ms) = 21 ms; three hops.
  ASSERT_EQ(bounds.size(), 1u);
  EXPECT_EQ(bounds[0].key, "msgA->msgD");
  EXPECT_EQ(bounds[0].bound, Duration::milliseconds(63));
  EXPECT_EQ(bounds[0].d_acc, Duration::milliseconds(100));
  EXPECT_EQ(bounds[0].hops, 3u);
  EXPECT_FALSE(has_error(report, kRuleLatency)) << report.format();
}

TEST(FlowGraph, RejectsHorizonBelowComposedBound) {
  RelayGateway g1{"sensor", "msgA", 1, "msgB", 2};
  RelayGateway g2{"backbone", "msgB", 3, "msgC", 4};
  RelayGateway g3{"actuator", "msgC", 5, "msgD", 6};
  // 50 ms would pass any single hop (21 ms) but not the composed 63 ms.
  g3.model.element_overrides["x"] = ElementMeta{spec::InfoSemantics::kState, 50_ms, 16};
  const ClusterModel cluster{{&g1.model, &g2.model, &g3.model}};

  Report report;
  check_flow_latency(build_flow_graph(cluster), report);
  EXPECT_TRUE(has_error(report, kRuleLatency)) << report.format();
}

TEST(FlowGraph, VnWaitIsSlotExactWithSchedule) {
  RelayGateway g1{"sensor", "msgA", 1, "msgB", 2};
  // Two slots of VN 1 at 0 ms and 5 ms in a 10 ms round: worst ready
  // time misses the 5 ms slot by epsilon, waits the wrapped 5 ms gap to
  // the 0 ms slot and occupies its 1 ms -- 6 ms instead of the 10 ms
  // port-period fallback.
  tt::TdmaSchedule schedule{10_ms};
  schedule.add_slot({0_ms, 1_ms, 1, 1, 64});
  schedule.add_slot({5_ms, 1_ms, 1, 1, 64});
  g1.model.schedule = &schedule;
  g1.model.link_vn = {tt::VnId{1}, std::nullopt};
  const ClusterModel cluster{{&g1.model}};

  Report report;
  std::vector<FlowBound> bounds;
  check_flow_latency(build_flow_graph(cluster), report, &bounds);
  ASSERT_EQ(bounds.size(), 1u);
  // 6 ms VN wait + 1 ms dispatch + 10 ms TT egress.
  EXPECT_EQ(bounds[0].bound, Duration::milliseconds(17));
}

TEST(FlowGraph, BurstCompoundsAcrossHops) {
  // Source gateway: ET in (tmin 1 ms, queue 16), dispatch 4 ms. Its
  // drain window re-emits up to 4 instances back-to-back.
  RelayGateway src{"burst-src", "m1", 1, "m_mid", 2};
  src.in_link = chain_link("m1", 1, et_input("m1", 1_ms, 16));
  src.out_link = chain_link("m_mid", 2, et_output("m_mid", 1_ms));
  src.model.dispatch_period = 4_ms;
  src.model.element_overrides["x"] = ElementMeta{spec::InfoSemantics::kEvent, 100_ms, 16};

  // Sink gateway: ET in (tmin 1 ms, queue 10), dispatch 8 ms. Local E5
  // sizing (8 slots) fits, but the upstream burst of 5 pushes the joint
  // demand to 5 - 1 + 8 = 12 > 10.
  RelayGateway sink{"burst-sink", "m_mid", 3, "m2", 4};
  sink.in_link = chain_link("m_mid", 3, et_input("m_mid", 1_ms, 10));
  sink.out_link = chain_link("m2", 4, tt_output("m2", 8_ms));
  sink.model.dispatch_period = 8_ms;
  sink.model.element_overrides["x"] = ElementMeta{spec::InfoSemantics::kEvent, 100_ms, 10};

  const ClusterModel pair{{&src.model, &sink.model}};
  Report joint;
  check_flow_occupancy(build_flow_graph(pair), joint);
  EXPECT_TRUE(has_error(joint, kRuleOccupancy)) << joint.format();

  // Either half alone is fine: the defect only exists composed.
  const ClusterModel alone{{&sink.model}};
  Report local;
  check_flow_occupancy(build_flow_graph(alone), local);
  EXPECT_FALSE(has_error(local, kRuleOccupancy)) << local.format();
}

TEST(FlowGraph, StateIngressResetsBurst) {
  // Same shape, but the downstream ingress is a TT state port: updates
  // overwrite in place, so the upstream burst does not carry and no
  // occupancy finding is produced.
  RelayGateway src{"burst-src", "m1", 1, "m_mid", 2};
  src.in_link = chain_link("m1", 1, et_input("m1", 1_ms, 16));
  src.out_link = chain_link("m_mid", 2, et_output("m_mid", 1_ms));
  src.model.dispatch_period = 4_ms;
  src.model.element_overrides["x"] = ElementMeta{spec::InfoSemantics::kEvent, 100_ms, 16};

  RelayGateway sink{"state-sink", "m_mid", 3, "m2", 4};
  const ClusterModel pair{{&src.model, &sink.model}};

  Report report;
  check_flow_occupancy(build_flow_graph(pair), report);
  EXPECT_FALSE(has_error(report, kRuleOccupancy)) << report.format();
}

TEST(FlowGraph, DetectsFilterShadowedByUpstream) {
  RelayGateway src{"shadow-src", "msgA", 1, "msgB", 2};
  src.in_link.set_filter("msgA", expr("value >= 0 && value <= 50"));
  RelayGateway sink{"shadow-sink", "msgB", 3, "msgC", 4};
  sink.in_link.set_filter("msgB", expr("value > 100"));

  // The sink's filter is satisfiable in isolation...
  const ClusterModel alone{{&sink.model}};
  EXPECT_FALSE(has_error(lint_cluster(alone), kRuleSymbolic));

  // ...but dead once the upstream filter caps value at 50.
  const ClusterModel pair{{&src.model, &sink.model}};
  const Report report = lint_cluster(pair);
  EXPECT_TRUE(has_error(report, kRuleSymbolic)) << report.format();
  bool mentions_shadow = false;
  for (const Diagnostic* d : report.by_rule(kRuleSymbolic))
    if (d->message.find("shadowed") != std::string::npos) mentions_shadow = true;
  EXPECT_TRUE(mentions_shadow) << report.format();
}

TEST(FlowGraph, LintClusterExportsBounds) {
  RelayGateway g1{"sensor", "msgA", 1, "msgB", 2};
  RelayGateway g2{"actuator", "msgB", 3, "msgC", 4};
  const ClusterModel cluster{{&g1.model, &g2.model}};

  std::vector<FlowBound> bounds;
  const Report report = lint_cluster(cluster, &bounds);
  EXPECT_TRUE(report.clean()) << report.format();
  ASSERT_EQ(bounds.size(), 1u);
  EXPECT_EQ(bounds[0].key, "msgA->msgC");
  EXPECT_EQ(bounds[0].bound, Duration::milliseconds(42));
  EXPECT_EQ(bounds[0].hops, 2u);
}

}  // namespace
}  // namespace decos::lint
