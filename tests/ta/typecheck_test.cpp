// Static typing of expression trees (ta::Expr::infer_type): the
// compile-time mirror of the runtime coercion rules in ta::Value.
// Wherever evaluation would throw (string in arithmetic, ordered
// comparison on strings, ...), inference must fail; wherever evaluation
// coerces silently, inference must produce the coerced type.
#include "ta/expr.hpp"

#include <gtest/gtest.h>

#include <map>
#include <string>

namespace decos::ta {
namespace {

class MapEnv final : public TypeEnv {
 public:
  void bind(const std::string& name, StaticType type) { types_[name] = type; }

  Result<StaticType> type_of(const std::string& name) const override {
    if (name == "t_now") return StaticType::kInt;
    const auto it = types_.find(name);
    if (it == types_.end())
      return Result<StaticType>::failure("unknown identifier '" + name + "'");
    return it->second;
  }

  Result<StaticType> type_of_call(const std::string& fn,
                                  const std::vector<StaticType>& args) const override {
    if (fn == "abs" && args.size() == 1) {
      if (args[0] == StaticType::kString)
        return Result<StaticType>::failure("abs() needs a numeric argument");
      return args[0];
    }
    return Result<StaticType>::failure("unknown function '" + fn + "'");
  }

 private:
  std::map<std::string, StaticType> types_;
};

StaticType must_infer(const std::string& text, const TypeEnv& env) {
  auto parsed = parse_expression(text);
  EXPECT_TRUE(parsed.ok()) << text;
  auto type = parsed.value()->infer_type(env);
  EXPECT_TRUE(type.ok()) << text << ": " << (type.ok() ? "" : type.error().message);
  return type.ok() ? type.value() : StaticType::kAny;
}

std::string must_fail(const std::string& text, const TypeEnv& env) {
  auto parsed = parse_expression(text);
  EXPECT_TRUE(parsed.ok()) << text;
  auto type = parsed.value()->infer_type(env);
  EXPECT_FALSE(type.ok()) << text << " unexpectedly typed as "
                          << (type.ok() ? static_type_name(type.value()) : "");
  return type.ok() ? std::string{} : type.error().message;
}

TEST(TypeCheck, LiteralsCarryTheirValueType) {
  MapEnv env;
  EXPECT_EQ(must_infer("42", env), StaticType::kInt);
  EXPECT_EQ(must_infer("1.5", env), StaticType::kReal);
  EXPECT_EQ(must_infer("true", env), StaticType::kBool);
  EXPECT_EQ(must_infer("10ms", env), StaticType::kInt);  // durations are ns ints
}

TEST(TypeCheck, IdentifiersResolveThroughTheEnvironment) {
  MapEnv env;
  env.bind("speed", StaticType::kReal);
  EXPECT_EQ(must_infer("speed", env), StaticType::kReal);
  EXPECT_EQ(must_infer("t_now", env), StaticType::kInt);
  must_fail("unbound", env);
}

TEST(TypeCheck, ArithmeticPromotesIntToReal) {
  MapEnv env;
  env.bind("n", StaticType::kInt);
  env.bind("x", StaticType::kReal);
  EXPECT_EQ(must_infer("n + 1", env), StaticType::kInt);
  EXPECT_EQ(must_infer("n + x", env), StaticType::kReal);
  EXPECT_EQ(must_infer("x * 2", env), StaticType::kReal);
}

TEST(TypeCheck, ComparisonsAreBoolean) {
  MapEnv env;
  env.bind("n", StaticType::kInt);
  EXPECT_EQ(must_infer("n >= 5", env), StaticType::kBool);
  EXPECT_EQ(must_infer("n == 5 || n < 0", env), StaticType::kBool);
  EXPECT_EQ(must_infer("!(n > 0)", env), StaticType::kBool);
}

TEST(TypeCheck, StringsRejectArithmeticAndOrdering) {
  MapEnv env;
  env.bind("s", StaticType::kString);
  must_fail("s + 1", env);
  must_fail("s >= 0", env);   // Value::as_real throws on strings
  must_fail("s && true", env);  // Value::as_bool throws on strings
  must_fail("-s", env);
}

TEST(TypeCheck, MixedEqualityWithStringIsRejected) {
  MapEnv env;
  env.bind("s", StaticType::kString);
  env.bind("n", StaticType::kInt);
  // Runtime operator== silently yields false on string/non-string
  // mixes; statically that comparison is always a bug.
  must_fail("s == n", env);
  EXPECT_EQ(must_infer("s == s", env), StaticType::kBool);
}

TEST(TypeCheck, AnyPropagatesWithoutErrors) {
  MapEnv env;
  env.bind("u", StaticType::kAny);
  EXPECT_EQ(must_infer("u + 1", env), StaticType::kAny);
  EXPECT_EQ(must_infer("u >= 0", env), StaticType::kBool);
  EXPECT_EQ(must_infer("u == \"x\"", env), StaticType::kBool);
}

TEST(TypeCheck, CallsDelegateToTheEnvironment) {
  MapEnv env;
  env.bind("x", StaticType::kReal);
  env.bind("s", StaticType::kString);
  EXPECT_EQ(must_infer("abs(x)", env), StaticType::kReal);
  must_fail("abs(s)", env);
  must_fail("nosuchfn(x)", env);
}

TEST(TypeCheck, ErrorMessagesNameTheOffendingSubexpression) {
  MapEnv env;
  env.bind("s", StaticType::kString);
  const std::string message = must_fail("1 + (s * 2)", env);
  EXPECT_NE(message.find("string"), std::string::npos) << message;
}

TEST(TypeCheck, StaticTypeOfMirrorsValueTags) {
  EXPECT_EQ(static_type_of(Value{42}), StaticType::kInt);
  EXPECT_EQ(static_type_of(Value{1.5}), StaticType::kReal);
  EXPECT_EQ(static_type_of(Value{true}), StaticType::kBool);
  EXPECT_EQ(static_type_of(Value{std::string{"x"}}), StaticType::kString);
}

TEST(TypeCheck, TypeNamesAreHumanReadable) {
  EXPECT_EQ(static_type_name(StaticType::kInt), "int");
  EXPECT_EQ(static_type_name(StaticType::kReal), "real");
  EXPECT_EQ(static_type_name(StaticType::kBool), "bool");
  EXPECT_EQ(static_type_name(StaticType::kString), "string");
  EXPECT_EQ(static_type_name(StaticType::kAny), "any");
}

}  // namespace
}  // namespace decos::ta
