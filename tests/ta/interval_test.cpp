// Interval abstract domain: lattice ops, conservative arithmetic,
// three-valued comparisons, abstract expression evaluation and
// comparison-driven refinement (the machinery behind declint's DL009).
#include "ta/interval.hpp"

#include <gtest/gtest.h>

#include "ta/expr.hpp"

namespace decos::ta {
namespace {

ExprPtr expr(const std::string& text) {
  auto parsed = parse_expression(text);
  EXPECT_TRUE(parsed.ok()) << text;
  return std::move(parsed.value());
}

TEST(Interval, LatticeBasics) {
  EXPECT_TRUE(Interval::top().is_top());
  EXPECT_TRUE(Interval::bottom().is_bottom());
  EXPECT_TRUE(Interval::constant(5).is_constant());
  EXPECT_TRUE(Interval::constant(5).contains(5.0));
  EXPECT_FALSE(Interval::constant(5).contains(6.0));

  const Interval a{0, 10};
  const Interval b{5, 20};
  EXPECT_EQ(join(a, b), (Interval{0, 20}));
  EXPECT_EQ(meet(a, b), (Interval{5, 10}));
  EXPECT_TRUE(meet(Interval{0, 1}, Interval{2, 3}).is_bottom());
}

TEST(Interval, Arithmetic) {
  EXPECT_EQ(add(Interval{1, 2}, Interval{10, 20}), (Interval{11, 22}));
  EXPECT_EQ(sub(Interval{1, 2}, Interval{10, 20}), (Interval{-19, -8}));
  EXPECT_EQ(mul(Interval{-2, 3}, Interval{4, 5}), (Interval{-10, 15}));
  EXPECT_EQ(negate(Interval{1, 2}), (Interval{-2, -1}));
  // Division by an interval containing zero degrades to top, never UB.
  EXPECT_TRUE(div(Interval{1, 2}, Interval{-1, 1}).is_top());
  EXPECT_EQ(div(Interval{10, 20}, Interval{2, 2}), (Interval{5, 10}));
  // Bottom is absorbing.
  EXPECT_TRUE(add(Interval::bottom(), Interval{1, 2}).is_bottom());
}

TEST(Interval, ThreeValuedComparisons) {
  EXPECT_TRUE(cmp_lt(Interval{0, 1}, Interval{2, 3}).always_true());
  EXPECT_TRUE(cmp_lt(Interval{5, 6}, Interval{0, 1}).always_false());
  const Interval mixed = cmp_lt(Interval{0, 10}, Interval{5, 5});
  EXPECT_FALSE(mixed.always_true());
  EXPECT_FALSE(mixed.always_false());

  EXPECT_TRUE(cmp_eq(Interval::constant(7), Interval::constant(7)).always_true());
  EXPECT_TRUE(cmp_eq(Interval{0, 1}, Interval{2, 3}).always_false());

  EXPECT_TRUE(logic_and(Interval::of_bool(true), Interval::of_bool(true)).always_true());
  EXPECT_TRUE(logic_and(Interval::of_bool(false), Interval::any_bool()).always_false());
  EXPECT_TRUE(logic_or(Interval::of_bool(true), Interval::any_bool()).always_true());
  EXPECT_TRUE(logic_not(Interval::of_bool(true)).always_false());
}

TEST(Interval, AbstractEvaluation) {
  MapIntervalEnv env;
  env.bind("v", Interval{0, 50});
  env.bind("limit", Interval::constant(100));

  EXPECT_TRUE(expr("v <= limit")->evaluate_interval(env).always_true());
  EXPECT_TRUE(expr("v > limit")->evaluate_interval(env).always_false());
  const Interval sum = expr("v + 10")->evaluate_interval(env);
  EXPECT_EQ(sum, (Interval{10, 60}));
  // Unknown identifiers are top: sound, never wrong.
  EXPECT_TRUE(expr("mystery")->evaluate_interval(env).is_top());
  EXPECT_TRUE(expr("abs(v)")->evaluate_interval(env).contains(50.0));
}

TEST(Interval, RefineByPredicate) {
  MapIntervalEnv env;
  env.bind("v", Interval{-1000, 1000});
  refine_by_predicate(*expr("v >= 0 && v <= 50"), env);
  EXPECT_EQ(env.get("v"), (Interval{0, 50}));

  // Contradictory conjunctions empty the interval (DL009's dead-filter
  // detection relies on bottom here).
  MapIntervalEnv dead;
  dead.bind("v", Interval{-1000, 1000});
  refine_by_predicate(*expr("v > 100 && v < 50"), dead);
  EXPECT_TRUE(dead.get("v").is_bottom());

  // Mirrored comparisons (constant on the left) narrow too.
  MapIntervalEnv mirror;
  mirror.bind("v", Interval{-1000, 1000});
  refine_by_predicate(*expr("0 <= v"), mirror);
  EXPECT_EQ(mirror.get("v"), (Interval{0, 1000}));
}

}  // namespace
}  // namespace decos::ta
