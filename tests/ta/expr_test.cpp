#include "ta/expr.hpp"

#include <gtest/gtest.h>

#include <map>

namespace decos::ta {
namespace {

/// Test environment over a plain map; calls support a fixed "twice" fn.
class MapEnv final : public Environment {
 public:
  Value get(const std::string& name) const override {
    const auto it = vars_.find(name);
    if (it == vars_.end()) throw SpecError("unknown: " + name);
    return it->second;
  }
  void set(const std::string& name, const Value& value) override { vars_[name] = value; }
  Value call(const std::string& name, const std::vector<Value>& args) override {
    if (name == "twice" && args.size() == 1) return Value{args[0].as_int() * 2};
    if (name == "min" && args.size() == 2)
      return args[0].as_real() <= args[1].as_real() ? args[0] : args[1];
    throw SpecError("unknown fn: " + name);
  }
  std::map<std::string, Value> vars_;
};

Value eval(const std::string& text, MapEnv& env) {
  auto e = parse_expression(text);
  EXPECT_TRUE(e.ok()) << text << ": " << (e.ok() ? "" : e.error().to_string());
  return e.value()->evaluate(env);
}

Value eval(const std::string& text) {
  MapEnv env;
  return eval(text, env);
}

TEST(ExprTest, IntegerArithmetic) {
  EXPECT_EQ(eval("1+2*3").as_int(), 7);
  EXPECT_EQ(eval("(1+2)*3").as_int(), 9);
  EXPECT_EQ(eval("10/3").as_int(), 3);
  EXPECT_EQ(eval("10%3").as_int(), 1);
  EXPECT_EQ(eval("-5+2").as_int(), -3);
}

TEST(ExprTest, RealArithmeticAndPromotion) {
  EXPECT_DOUBLE_EQ(eval("1.5*2").as_real(), 3.0);
  EXPECT_DOUBLE_EQ(eval("7/2.0").as_real(), 3.5);
}

TEST(ExprTest, Comparisons) {
  EXPECT_TRUE(eval("3<4").as_bool());
  EXPECT_TRUE(eval("4<=4").as_bool());
  EXPECT_TRUE(eval("5>4").as_bool());
  EXPECT_TRUE(eval("5>=5").as_bool());
  EXPECT_TRUE(eval("5==5").as_bool());
  EXPECT_TRUE(eval("5!=6").as_bool());
  EXPECT_FALSE(eval("5<5").as_bool());
}

TEST(ExprTest, SingleEqualsIsEquality) {
  // The paper writes `brequested = true` as a guard (Fig. 6).
  EXPECT_TRUE(eval("5 = 5").as_bool());
  EXPECT_FALSE(eval("5 = 6").as_bool());
}

TEST(ExprTest, Logicals) {
  EXPECT_TRUE(eval("true && true").as_bool());
  EXPECT_FALSE(eval("true && false").as_bool());
  EXPECT_TRUE(eval("false || true").as_bool());
  EXPECT_FALSE(eval("!true").as_bool());
  EXPECT_TRUE(eval("1<2 && 3<4 || false").as_bool());
}

TEST(ExprTest, CommaIsConjunctionAtTopLevel) {
  // Fig. 6 guard style: "x<tmax, y>=tmin".
  MapEnv env;
  env.vars_["x"] = Value{3};
  env.vars_["y"] = Value{9};
  EXPECT_TRUE(eval("x<5, y>=9", env).as_bool());
  EXPECT_FALSE(eval("x<5, y>=10", env).as_bool());
}

TEST(ExprTest, CommaInsideCallIsArgumentSeparator) {
  MapEnv env;
  EXPECT_EQ(eval("min(4, 9)", env).as_int(), 4);
  EXPECT_EQ(eval("min(1+1, 5) + twice(3)", env).as_int(), 8);
}

TEST(ExprTest, DurationSuffixes) {
  EXPECT_EQ(eval("5ms").as_int(), 5'000'000);
  EXPECT_EQ(eval("2us").as_int(), 2'000);
  EXPECT_EQ(eval("1s").as_int(), 1'000'000'000);
  EXPECT_EQ(eval("10ns").as_int(), 10);
  EXPECT_EQ(eval("1.5ms").as_int(), 1'500'000);
  EXPECT_TRUE(eval("5ms < 1s").as_bool());
}

TEST(ExprTest, OverflowingDurationLiteralIsAParseError) {
  // std::stod on a long digit run succeeds, so the int64 conversion of
  // the scaled value must be range-checked (the unchecked cast was UB).
  EXPECT_FALSE(parse_expression("123456789123456789123456789ms").ok());
  EXPECT_FALSE(parse_expression("99999999999999999999s").ok());
  EXPECT_TRUE(parse_expression("9000000s").ok());  // large but representable
}

TEST(ExprTest, StringLiteralsAndEquality) {
  EXPECT_TRUE(eval("\"abc\" == \"abc\"").as_bool());
  EXPECT_FALSE(eval("\"abc\" == \"xyz\"").as_bool());
}

TEST(ExprTest, IdentifiersResolveThroughEnvironment) {
  MapEnv env;
  env.vars_["tmin"] = Value{Duration::milliseconds(4)};
  env.vars_["x"] = Value{Duration::milliseconds(6)};
  EXPECT_TRUE(eval("x>=tmin", env).as_bool());
}

TEST(ExprTest, UnknownIdentifierThrows) {
  MapEnv env;
  auto e = parse_expression("nope + 1");
  ASSERT_TRUE(e.ok());
  EXPECT_THROW(e.value()->evaluate(env), SpecError);
}

TEST(ExprTest, DivisionByZeroThrows) {
  EXPECT_THROW(eval("1/0"), SpecError);
  EXPECT_THROW(eval("1%0"), SpecError);
}

TEST(ExprTest, ParseErrors) {
  EXPECT_FALSE(parse_expression("").ok());
  EXPECT_FALSE(parse_expression("1 +").ok());
  EXPECT_FALSE(parse_expression("(1+2").ok());
  EXPECT_FALSE(parse_expression("1 2").ok());
  EXPECT_FALSE(parse_expression("min(1,").ok());
  EXPECT_FALSE(parse_expression("4 @ 5").ok());
  EXPECT_FALSE(parse_expression("3kg").ok());
}

TEST(ExprTest, CollectIdentifiers) {
  auto e = parse_expression("x >= tmin && twice(n) < 9");
  ASSERT_TRUE(e.ok());
  std::vector<std::string> ids;
  e.value()->collect_identifiers(ids);
  EXPECT_EQ(ids, (std::vector<std::string>{"x", "tmin", "n"}));
}

TEST(ExprTest, ToStringIsReparsable) {
  auto e = parse_expression("x >= tmin, n == 0 || y < 5ms");
  ASSERT_TRUE(e.ok());
  auto e2 = parse_expression(e.value()->to_string());
  ASSERT_TRUE(e2.ok());
  MapEnv env;
  env.vars_["x"] = Value{10};
  env.vars_["tmin"] = Value{4};
  env.vars_["n"] = Value{0};
  env.vars_["y"] = Value{1};
  EXPECT_EQ(e.value()->evaluate(env).as_bool(), e2.value()->evaluate(env).as_bool());
}

TEST(AssignmentTest, ParseAndApplySingle) {
  auto a = parse_assignments("x := 0");
  ASSERT_TRUE(a.ok());
  ASSERT_EQ(a.value().size(), 1u);
  MapEnv env;
  a.value()[0].apply(env);
  EXPECT_EQ(env.vars_["x"].as_int(), 0);
}

TEST(AssignmentTest, ListWithSemicolonsAndPlainEquals) {
  auto a = parse_assignments("x := 5; n = n + 1");
  ASSERT_TRUE(a.ok());
  ASSERT_EQ(a.value().size(), 2u);
  MapEnv env;
  env.vars_["n"] = Value{10};
  for (const auto& asg : a.value()) asg.apply(env);
  EXPECT_EQ(env.vars_["x"].as_int(), 5);
  EXPECT_EQ(env.vars_["n"].as_int(), 11);
}

TEST(AssignmentTest, PaperStyleAccumulation) {
  // Fig. 6: StateValue=StateValue+ValueChange
  auto a = parse_assignments("StateValue=StateValue+ValueChange");
  ASSERT_TRUE(a.ok());
  MapEnv env;
  env.vars_["StateValue"] = Value{40};
  env.vars_["ValueChange"] = Value{2};
  a.value()[0].apply(env);
  EXPECT_EQ(env.vars_["StateValue"].as_int(), 42);
}

TEST(AssignmentTest, EmptyListIsOk) {
  auto a = parse_assignments("");
  ASSERT_TRUE(a.ok());
  EXPECT_TRUE(a.value().empty());
}

TEST(AssignmentTest, MissingOperatorIsError) {
  EXPECT_FALSE(parse_assignments("x 5").ok());
  EXPECT_FALSE(parse_assignments("5 := x").ok());
}

TEST(ValueTest, Coercions) {
  EXPECT_EQ(Value{3.9}.as_int(), 3);
  EXPECT_DOUBLE_EQ(Value{3}.as_real(), 3.0);
  EXPECT_TRUE(Value{1}.as_bool());
  EXPECT_FALSE(Value{0}.as_bool());
  EXPECT_THROW(Value{std::string{"x"}}.as_int(), SpecError);
  EXPECT_THROW(Value{3}.as_string(), SpecError);
}

TEST(ValueTest, TimeInterop) {
  const Value v{Duration::milliseconds(5)};
  EXPECT_EQ(v.as_duration(), Duration::milliseconds(5));
  const Value t{Instant::origin() + Duration::seconds(1)};
  EXPECT_EQ(t.as_instant().ns(), 1'000'000'000);
}

}  // namespace
}  // namespace decos::ta
