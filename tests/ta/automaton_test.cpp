#include "ta/automaton.hpp"

#include <gtest/gtest.h>

namespace decos::ta {
namespace {

using namespace decos::literals;

AutomatonSpec two_state() {
  AutomatonSpec spec{"demo"};
  spec.add_location("idle");
  spec.add_location("busy");
  return spec;
}

TEST(AutomatonSpecTest, FirstLocationIsDefaultInitial) {
  const AutomatonSpec spec = two_state();
  EXPECT_EQ(spec.initial(), "idle");
  EXPECT_TRUE(spec.has_location("busy"));
  EXPECT_FALSE(spec.has_location("nope"));
}

TEST(AutomatonSpecTest, DuplicateLocationIgnored) {
  AutomatonSpec spec{"demo"};
  spec.add_location("a");
  spec.add_location("a");
  EXPECT_EQ(spec.locations().size(), 1u);
}

TEST(AutomatonSpecTest, ValidateAcceptsWellFormed) {
  AutomatonSpec spec = two_state();
  Edge e;
  e.source = "idle";
  e.target = "busy";
  e.action = ActionKind::kReceive;
  e.message = "m";
  spec.add_edge(std::move(e));
  EXPECT_TRUE(spec.validate().ok());
}

TEST(AutomatonSpecTest, ValidateRejectsEmptyAndBadRefs) {
  EXPECT_FALSE(AutomatonSpec{"empty"}.validate().ok());

  AutomatonSpec bad_init = two_state();
  bad_init.set_initial("missing");
  EXPECT_FALSE(bad_init.validate().ok());

  AutomatonSpec bad_error = two_state();
  bad_error.set_error("missing");
  EXPECT_FALSE(bad_error.validate().ok());

  AutomatonSpec bad_edge = two_state();
  Edge e;
  e.source = "idle";
  e.target = "nowhere";
  bad_edge.add_edge(std::move(e));
  EXPECT_FALSE(bad_edge.validate().ok());

  AutomatonSpec no_msg = two_state();
  Edge e2;
  e2.source = "idle";
  e2.target = "busy";
  e2.action = ActionKind::kSend;  // message missing
  no_msg.add_edge(std::move(e2));
  EXPECT_FALSE(no_msg.validate().ok());
}

TEST(AutomatonSpecTest, EdgeLabelsAreReadable) {
  Edge e;
  e.source = "a";
  e.target = "b";
  e.action = ActionKind::kSend;
  e.message = "msgX";
  e.guard = parse_expression("x >= 5").value();
  const std::string label = e.label();
  EXPECT_NE(label.find("msgX!"), std::string::npos);
  EXPECT_NE(label.find("a -> b"), std::string::npos);
  EXPECT_NE(label.find("guard"), std::string::npos);
}

TEST(AutomatonFactoriesTest, UnconstrainedReceiveValidates) {
  const AutomatonSpec spec = make_unconstrained_receive("r", "m");
  EXPECT_TRUE(spec.validate().ok());
  EXPECT_EQ(spec.edges().size(), 1u);
  EXPECT_EQ(spec.edges()[0].action, ActionKind::kReceive);
  EXPECT_TRUE(spec.error().empty());
}

TEST(AutomatonFactoriesTest, InterarrivalReceiveShape) {
  const AutomatonSpec spec = make_interarrival_receive("r", "m", 4_ms, 100_ms);
  EXPECT_TRUE(spec.validate().ok());
  EXPECT_EQ(spec.error(), "error");
  EXPECT_EQ(spec.clocks().size(), 1u);
  // Three edges: in-window reception, early violation, timeout.
  EXPECT_EQ(spec.edges().size(), 3u);
  int recv = 0;
  int internal = 0;
  for (const auto& e : spec.edges()) {
    if (e.action == ActionKind::kReceive) ++recv;
    if (e.action == ActionKind::kInternal) ++internal;
  }
  EXPECT_EQ(recv, 2);
  EXPECT_EQ(internal, 1);
}

TEST(AutomatonFactoriesTest, PeriodicAndUnconstrainedSend) {
  EXPECT_TRUE(make_periodic_send("s", "m", 10_ms).validate().ok());
  EXPECT_TRUE(make_unconstrained_send("s", "m").validate().ok());
}

}  // namespace
}  // namespace decos::ta
