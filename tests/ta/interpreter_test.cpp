#include "ta/interpreter.hpp"

#include <gtest/gtest.h>

namespace decos::ta {
namespace {

using namespace decos::literals;

Instant at(std::int64_t ms) { return Instant::origin() + Duration::milliseconds(ms); }

TEST(InterpreterTest, UnconstrainedReceiveAlwaysFires) {
  const AutomatonSpec spec = make_unconstrained_receive("r", "m");
  Interpreter interp{spec};
  EXPECT_EQ(interp.on_receive("m", at(0)), FireResult::kFired);
  EXPECT_EQ(interp.on_receive("m", at(1)), FireResult::kFired);
  EXPECT_EQ(interp.transitions(), 2u);
  EXPECT_FALSE(interp.in_error());
}

TEST(InterpreterTest, UnknownMessageIsNotEnabled) {
  const AutomatonSpec spec = make_unconstrained_receive("r", "m");
  Interpreter interp{spec};
  EXPECT_EQ(interp.on_receive("other", at(0)), FireResult::kNotEnabled);
}

TEST(InterpreterTest, InterarrivalAcceptsWellPacedTraffic) {
  const AutomatonSpec spec = make_interarrival_receive("r", "m", 4_ms, 100_ms);
  Interpreter interp{spec};
  EXPECT_EQ(interp.on_receive("m", at(0)), FireResult::kFired);   // first always ok
  EXPECT_EQ(interp.on_receive("m", at(10)), FireResult::kFired);  // 10ms gap
  EXPECT_EQ(interp.on_receive("m", at(14)), FireResult::kFired);  // exactly tmin
  EXPECT_FALSE(interp.in_error());
}

TEST(InterpreterTest, EarlyArrivalEntersError) {
  const AutomatonSpec spec = make_interarrival_receive("r", "m", 4_ms, 100_ms);
  Interpreter interp{spec};
  EXPECT_EQ(interp.on_receive("m", at(0)), FireResult::kFired);
  EXPECT_EQ(interp.on_receive("m", at(1)), FireResult::kError);  // 1ms < tmin
  EXPECT_TRUE(interp.in_error());
  // Everything after the violation is rejected until restart.
  EXPECT_EQ(interp.on_receive("m", at(50)), FireResult::kError);
}

TEST(InterpreterTest, TimeoutDetectedByPoll) {
  const AutomatonSpec spec = make_interarrival_receive("r", "m", 4_ms, 100_ms);
  Interpreter interp{spec};
  EXPECT_EQ(interp.on_receive("m", at(0)), FireResult::kFired);
  EXPECT_EQ(interp.poll(at(50)), 0);  // within tmax: nothing fires
  EXPECT_FALSE(interp.in_error());
  EXPECT_EQ(interp.poll(at(150)), 1);  // beyond tmax: timeout edge
  EXPECT_TRUE(interp.in_error());
}

TEST(InterpreterTest, NoTimeoutBeforeFirstMessage) {
  const AutomatonSpec spec = make_interarrival_receive("r", "m", 4_ms, 100_ms);
  Interpreter interp{spec};
  EXPECT_EQ(interp.poll(at(500)), 0);  // n == 0: silence is legal
  EXPECT_FALSE(interp.in_error());
}

TEST(InterpreterTest, RestartClearsErrorAndClocks) {
  const AutomatonSpec spec = make_interarrival_receive("r", "m", 4_ms, 100_ms);
  Interpreter interp{spec};
  interp.on_receive("m", at(0));
  interp.on_receive("m", at(1));
  ASSERT_TRUE(interp.in_error());
  interp.restart(at(200));
  EXPECT_FALSE(interp.in_error());
  EXPECT_EQ(interp.location(), "wait");
  EXPECT_EQ(interp.on_receive("m", at(205)), FireResult::kFired);  // first again
}

TEST(InterpreterTest, LateArrivalAfterTmaxIsErrorEvenWithoutPoll) {
  const AutomatonSpec spec = make_interarrival_receive("r", "m", 4_ms, 100_ms);
  Interpreter interp{spec};
  interp.on_receive("m", at(0));
  // 200ms gap: the in-window edge guard fails, the early edge fails, so
  // the arrival itself is the specification violation.
  EXPECT_EQ(interp.on_receive("m", at(200)), FireResult::kError);
}

TEST(InterpreterTest, PeriodicSendPacing) {
  const AutomatonSpec spec = make_periodic_send("s", "m", 10_ms);
  int allowed = 0;
  InterpreterHooks hooks;
  hooks.can_send = [&](decos::Symbol) { return true; };
  Interpreter interp{spec, std::move(hooks)};
  interp.restart(at(0));
  // First send immediately, then only after each full period.
  EXPECT_EQ(interp.try_send("m", at(0)), FireResult::kFired);
  EXPECT_EQ(interp.try_send("m", at(3)), FireResult::kNotEnabled);
  EXPECT_EQ(interp.try_send("m", at(9)), FireResult::kNotEnabled);
  EXPECT_EQ(interp.try_send("m", at(10)), FireResult::kFired);
  EXPECT_EQ(interp.try_send("m", at(15)), FireResult::kNotEnabled);
  EXPECT_EQ(interp.try_send("m", at(21)), FireResult::kFired);
  (void)allowed;
}

TEST(InterpreterTest, SendGateRequestsMissingElements) {
  const AutomatonSpec spec = make_unconstrained_send("s", "m");
  bool available = false;
  std::vector<std::string> requested;
  InterpreterHooks hooks;
  hooks.can_send = [&](decos::Symbol) { return available; };
  hooks.request_missing = [&](decos::Symbol msg) { requested.push_back(decos::symbol_name(msg)); };
  Interpreter interp{spec, std::move(hooks)};

  EXPECT_EQ(interp.try_send("m", at(0)), FireResult::kNotEnabled);
  ASSERT_EQ(requested.size(), 1u);
  EXPECT_EQ(requested[0], "m");

  available = true;
  EXPECT_EQ(interp.try_send("m", at(1)), FireResult::kFired);
  EXPECT_EQ(requested.size(), 1u);  // no further request once available
}

TEST(InterpreterTest, ExternalIdentifiersResolveThroughHook) {
  AutomatonSpec spec{"g"};
  spec.add_location("run");
  spec.add_clock("x");
  Edge e;
  e.source = "run";
  e.target = "run";
  e.action = ActionKind::kReceive;
  e.message = "m";
  e.guard = parse_expression("x >= tmin").value();
  e.assignments = parse_assignments("x := 0").value();
  spec.add_edge(std::move(e));

  InterpreterHooks hooks;
  hooks.resolve = [](const std::string& name) -> Value {
    if (name == "tmin") return Value{Duration::milliseconds(4)};
    throw SpecError("unknown " + name);
  };
  Interpreter interp{spec, std::move(hooks)};
  interp.restart(at(0));
  EXPECT_EQ(interp.on_receive("m", at(2)), FireResult::kNotEnabled);  // no error state here
  EXPECT_EQ(interp.on_receive("m", at(5)), FireResult::kFired);
}

TEST(InterpreterTest, HorizonFunctionDelegatedToInvokeHook) {
  AutomatonSpec spec{"g"};
  spec.add_location("run");
  Edge e;
  e.source = "run";
  e.target = "run";
  e.action = ActionKind::kSend;
  e.message = "m";
  e.guard = parse_expression("horizon(\"m\") > 1ms").value();
  spec.add_edge(std::move(e));

  Duration horizon = 5_ms;
  InterpreterHooks hooks;
  hooks.invoke = [&](const std::string& fn, const std::vector<Value>& args) -> Value {
    EXPECT_EQ(fn, "horizon");
    EXPECT_EQ(args[0].as_string(), "m");
    return Value{horizon};
  };
  Interpreter interp{spec, std::move(hooks)};
  EXPECT_EQ(interp.try_send("m", at(0)), FireResult::kFired);
  horizon = 0_ms;
  EXPECT_EQ(interp.try_send("m", at(1)), FireResult::kNotEnabled);
}

TEST(InterpreterTest, NondeterminismIsAConfigurationError) {
  AutomatonSpec spec{"bad"};
  spec.add_location("run");
  for (int i = 0; i < 2; ++i) {
    Edge e;
    e.source = "run";
    e.target = "run";
    e.action = ActionKind::kReceive;
    e.message = "m";
    spec.add_edge(std::move(e));
  }
  Interpreter interp{spec};
  EXPECT_THROW(interp.on_receive("m", at(0)), SpecError);
}

TEST(InterpreterTest, ClocksAdvanceWithTime) {
  AutomatonSpec spec{"c"};
  spec.add_location("run");
  spec.add_clock("x");
  Interpreter interp{spec};
  interp.restart(at(0));
  EXPECT_EQ(interp.read("x", at(7)).as_duration(), 7_ms);
  EXPECT_EQ(interp.read("t_now", at(7)).as_instant(), at(7));
}

TEST(InterpreterTest, VariablesDoNotAdvance) {
  AutomatonSpec spec{"v"};
  spec.add_location("run");
  spec.add_variable("n", Value{5});
  Interpreter interp{spec};
  EXPECT_EQ(interp.read("n", at(100)).as_int(), 5);
}

TEST(InterpreterTest, PollChainBounded) {
  // Two internal edges forming a cycle with true guards would livelock an
  // unbounded poll; the interpreter caps the chain.
  AutomatonSpec spec{"loop"};
  spec.add_location("a");
  spec.add_location("b");
  Edge ab;
  ab.source = "a";
  ab.target = "b";
  spec.add_edge(std::move(ab));
  Edge ba;
  ba.source = "b";
  ba.target = "a";
  spec.add_edge(std::move(ba));
  Interpreter interp{spec};
  EXPECT_LE(interp.poll(at(0)), 16);
}

TEST(InterpreterTest, ValidationFailureThrowsAtConstruction) {
  AutomatonSpec spec{"invalid"};
  EXPECT_THROW(Interpreter{spec}, SpecError);
}

}  // namespace
}  // namespace decos::ta
