// Request-reply control pattern expressed as a timed automaton (paper
// Section IV-B.2: "The automata specify the control patterns (e.g.,
// request-reply interactions), the sequence of message exchanges, and
// the temporal constraints").
//
// Protocol: idle --request?--> pending --reply!--> idle, with a reply
// deadline: if the reply cannot be produced within treply, the automaton
// enters its error state. A second request while one is pending is a
// protocol violation.
#include <gtest/gtest.h>

#include "ta/interpreter.hpp"

namespace decos::ta {
namespace {

using namespace decos::literals;

Instant at(std::int64_t ms) { return Instant::origin() + Duration::milliseconds(ms); }

AutomatonSpec request_reply(Duration treply) {
  AutomatonSpec spec{"reqrep"};
  spec.add_location("idle");
  spec.add_location("pending");
  spec.add_location("error");
  spec.set_error("error");
  spec.add_clock("x");

  Edge request;
  request.source = "idle";
  request.target = "pending";
  request.action = ActionKind::kReceive;
  request.message = "msgRequest";
  request.assignments = parse_assignments("x := 0").value();
  spec.add_edge(std::move(request));

  Edge reply;
  reply.source = "pending";
  reply.target = "idle";
  reply.action = ActionKind::kSend;
  reply.message = "msgReply";
  reply.guard = parse_expression("x <= " + std::to_string(treply.ns())).value();
  spec.add_edge(std::move(reply));

  Edge deadline;
  deadline.source = "pending";
  deadline.target = "error";
  deadline.guard = parse_expression("x > " + std::to_string(treply.ns())).value();
  spec.add_edge(std::move(deadline));

  return spec;
}

struct ReqRepFixture : ::testing::Test {
  ReqRepFixture() {
    InterpreterHooks hooks;
    hooks.can_send = [this](decos::Symbol) { return reply_available; };
    interp = std::make_unique<Interpreter>(spec, std::move(hooks));
  }

  AutomatonSpec spec = request_reply(20_ms);
  bool reply_available = true;
  std::unique_ptr<Interpreter> interp;
};

TEST_F(ReqRepFixture, HappyPath) {
  EXPECT_EQ(interp->on_receive("msgRequest", at(0)), FireResult::kFired);
  EXPECT_EQ(interp->location(), "pending");
  // No reply can be sent while idle... and no second request while pending:
  EXPECT_EQ(interp->try_send("msgReply", at(5)), FireResult::kFired);
  EXPECT_EQ(interp->location(), "idle");
  // Next cycle works too.
  EXPECT_EQ(interp->on_receive("msgRequest", at(30)), FireResult::kFired);
  EXPECT_EQ(interp->try_send("msgReply", at(35)), FireResult::kFired);
}

TEST_F(ReqRepFixture, ReplyWithoutRequestNotEnabled) {
  EXPECT_EQ(interp->try_send("msgReply", at(0)), FireResult::kNotEnabled);
  EXPECT_EQ(interp->location(), "idle");
}

TEST_F(ReqRepFixture, SecondRequestWhilePendingIsViolation) {
  interp->on_receive("msgRequest", at(0));
  EXPECT_EQ(interp->on_receive("msgRequest", at(5)), FireResult::kError);
  EXPECT_TRUE(interp->in_error());
}

TEST_F(ReqRepFixture, MissedReplyDeadlineDetectedByPoll) {
  interp->on_receive("msgRequest", at(0));
  reply_available = false;        // repository cannot construct the reply
  EXPECT_EQ(interp->try_send("msgReply", at(10)), FireResult::kNotEnabled);
  EXPECT_EQ(interp->poll(at(15)), 0);  // still within the deadline
  EXPECT_EQ(interp->poll(at(25)), 1);  // deadline passed
  EXPECT_TRUE(interp->in_error());
  // Even if the reply becomes available now, the protocol is in error.
  reply_available = true;
  EXPECT_EQ(interp->try_send("msgReply", at(26)), FireResult::kError);
}

TEST_F(ReqRepFixture, LateReplyAttemptAfterDeadlineGuardFails) {
  interp->on_receive("msgRequest", at(0));
  // try_send at 25ms: the reply guard (x <= 20ms) fails; the deadline
  // edge fires on the embedded poll... here we poll explicitly first.
  interp->poll(at(25));
  EXPECT_TRUE(interp->in_error());
}

TEST_F(ReqRepFixture, RestartRecoversTheProtocol) {
  interp->on_receive("msgRequest", at(0));
  interp->on_receive("msgRequest", at(1));
  ASSERT_TRUE(interp->in_error());
  interp->restart(at(50));
  EXPECT_EQ(interp->on_receive("msgRequest", at(55)), FireResult::kFired);
  EXPECT_EQ(interp->try_send("msgReply", at(60)), FireResult::kFired);
}

}  // namespace
}  // namespace decos::ta
