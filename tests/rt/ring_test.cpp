// SPSC ring unit tests: frame round trips, wrap-around via the marker
// path, full/empty boundaries, run-length claim limits, and the ShmRing
// create/open lifecycle.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "rt/ring.hpp"

namespace decos::rt {
namespace {

std::vector<std::byte> frame_of(std::size_t size, std::uint8_t fill) {
  return std::vector<std::byte>(size, std::byte{fill});
}

std::vector<std::vector<std::byte>> drain(SpscRing& ring, std::size_t max = 1024) {
  std::vector<std::vector<std::byte>> frames;
  ring.consume(max, [&](std::span<const std::byte> payload) {
    frames.emplace_back(payload.begin(), payload.end());
  });
  return frames;
}

TEST(SpscRing, RoundTripsFramesInOrder) {
  SpscRing ring{4096};
  EXPECT_TRUE(ring.empty());
  EXPECT_TRUE(ring.try_push(frame_of(10, 0xaa)));
  EXPECT_TRUE(ring.try_push(frame_of(1, 0xbb)));
  EXPECT_TRUE(ring.try_push(frame_of(333, 0xcc)));
  EXPECT_FALSE(ring.empty());

  const auto frames = drain(ring);
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames[0], frame_of(10, 0xaa));
  EXPECT_EQ(frames[1], frame_of(1, 0xbb));
  EXPECT_EQ(frames[2], frame_of(333, 0xcc));
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.drops(), 0u);
}

TEST(SpscRing, EmptyConsumeDeliversNothing) {
  SpscRing ring{4096};
  EXPECT_EQ(drain(ring).size(), 0u);
}

TEST(SpscRing, ZeroLengthFramesAreFrames) {
  SpscRing ring{4096};
  EXPECT_TRUE(ring.try_push({}));
  EXPECT_TRUE(ring.try_push(frame_of(5, 0x11)));
  const auto frames = drain(ring);
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_TRUE(frames[0].empty());
  EXPECT_EQ(frames[1].size(), 5u);
}

TEST(SpscRing, WrapAroundPreservesFrames) {
  // Frame sizes chosen so the cursor repeatedly lands near the end of
  // the 4 KiB data area and the wrap-marker path runs many times.
  SpscRing ring{4096};
  std::uint8_t fill = 0;
  for (int round = 0; round < 200; ++round) {
    const std::size_t size = 100 + (round * 37) % 500;
    ASSERT_TRUE(ring.try_push(frame_of(size, fill))) << "round " << round;
    const auto frames = drain(ring);
    ASSERT_EQ(frames.size(), 1u) << "round " << round;
    EXPECT_EQ(frames[0], frame_of(size, fill)) << "round " << round;
    ++fill;
  }
  EXPECT_EQ(ring.drops(), 0u);
}

TEST(SpscRing, FullRingDropsAndCounts) {
  SpscRing ring{4096};
  std::size_t pushed = 0;
  while (ring.try_push(frame_of(500, 0x42))) ++pushed;
  EXPECT_GT(pushed, 0u);
  EXPECT_EQ(ring.drops(), 1u);
  EXPECT_FALSE(ring.try_push(frame_of(500, 0x42)));
  EXPECT_EQ(ring.drops(), 2u);

  // Draining frees the space again.
  EXPECT_EQ(drain(ring).size(), pushed);
  EXPECT_TRUE(ring.try_push(frame_of(500, 0x43)));
}

TEST(SpscRing, OversizePayloadRejected) {
  SpscRing ring{4096};
  EXPECT_FALSE(ring.try_push(frame_of(ring.max_payload() + 1, 0x01)));
  EXPECT_EQ(ring.drops(), 1u);
  EXPECT_TRUE(ring.try_push(frame_of(ring.max_payload(), 0x02)));
}

TEST(SpscRing, ConsumeHonorsMaxFrames) {
  SpscRing ring{8192};
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(ring.try_push(frame_of(16, 0x55)));
  std::size_t seen = 0;
  EXPECT_EQ(ring.consume(3, [&](std::span<const std::byte>) { ++seen; }), 3u);
  EXPECT_EQ(seen, 3u);
  EXPECT_EQ(drain(ring).size(), 7u);
}

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing::round_capacity(1), SpscRing::kMinCapacity);
  EXPECT_EQ(SpscRing::round_capacity(4096), 4096u);
  EXPECT_EQ(SpscRing::round_capacity(4097), 8192u);
  EXPECT_EQ(SpscRing::round_capacity(1 << 20), std::size_t{1} << 20);
}

TEST(ShmRing, CreateOpenRoundTrip) {
  const std::string name = "/decos_rt_ring_test_" + std::to_string(::getpid());
  auto created = ShmRing::create(name, 8192);
  ASSERT_TRUE(created.ok()) << created.error().to_string();
  auto opened = ShmRing::open(name);
  ASSERT_TRUE(opened.ok()) << opened.error().to_string();

  // Producer through the creator's mapping, consumer through the
  // opener's: the cursors live in the shared region.
  ASSERT_TRUE(created.value().ring().try_push(frame_of(64, 0x7e)));
  const auto frames = drain(opened.value().ring());
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0], frame_of(64, 0x7e));
}

TEST(ShmRing, OpenMissingObjectFails) {
  auto opened = ShmRing::open("/decos_rt_ring_never_created");
  EXPECT_FALSE(opened.ok());
}

TEST(ShmRing, CreatorUnlinksOnDestruction) {
  const std::string name = "/decos_rt_ring_unlink_" + std::to_string(::getpid());
  {
    auto created = ShmRing::create(name, 4096);
    ASSERT_TRUE(created.ok()) << created.error().to_string();
  }
  EXPECT_FALSE(ShmRing::open(name).ok());
}

}  // namespace
}  // namespace decos::rt
