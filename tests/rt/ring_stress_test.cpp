// Two-thread SPSC stress: a producer and a consumer hammer one small
// ring through constant wrap-around and full/empty boundary crossings.
// Every frame carries a sequence number and a size-dependent fill, so
// reordering, duplication, loss and torn payloads are all detected. The
// TSan CI job runs this suite; the release/acquire pairs in
// try_push/consume are the only synchronisation.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "rt/ring.hpp"

namespace decos::rt {
namespace {

constexpr std::uint64_t kFrames = 200'000;

void fill_frame(std::vector<std::byte>& buf, std::uint64_t seq) {
  const std::size_t size = sizeof(std::uint64_t) + (seq * 13) % 200;
  buf.resize(size);
  std::memcpy(buf.data(), &seq, sizeof(seq));
  for (std::size_t i = sizeof(seq); i < size; ++i)
    buf[i] = static_cast<std::byte>((seq + i) & 0xff);
}

bool check_frame(std::span<const std::byte> payload, std::uint64_t expected_seq) {
  if (payload.size() < sizeof(std::uint64_t)) return false;
  std::uint64_t seq;
  std::memcpy(&seq, payload.data(), sizeof(seq));
  if (seq != expected_seq) return false;
  const std::size_t size = sizeof(std::uint64_t) + (seq * 13) % 200;
  if (payload.size() != size) return false;
  for (std::size_t i = sizeof(seq); i < size; ++i)
    if (payload[i] != static_cast<std::byte>((seq + i) & 0xff)) return false;
  return true;
}

TEST(RingStress, TwoThreadsThroughWrapAndFullEmptyBoundaries) {
  // 4 KiB ring: ~20 frames fit, so the producer hits "full" and the
  // consumer hits "empty" millions of times across 200k frames, and the
  // cursor wraps thousands of times.
  SpscRing ring{4096};

  std::atomic<std::uint64_t> consumed{0};
  std::atomic<bool> mismatch{false};

  std::thread consumer{[&] {
    std::uint64_t expected = 0;
    while (expected < kFrames && !mismatch.load(std::memory_order_relaxed)) {
      const std::size_t n = ring.consume(64, [&](std::span<const std::byte> payload) {
        if (!check_frame(payload, expected)) mismatch.store(true, std::memory_order_relaxed);
        ++expected;
      });
      if (n == 0) std::this_thread::yield();
    }
    consumed.store(expected, std::memory_order_relaxed);
  }};

  std::vector<std::byte> buf;
  for (std::uint64_t seq = 0; seq < kFrames; ++seq) {
    fill_frame(buf, seq);
    while (!ring.try_push(buf)) {
      if (mismatch.load(std::memory_order_relaxed)) break;
      std::this_thread::yield();  // full boundary: consumer will free space
    }
    if (mismatch.load(std::memory_order_relaxed)) break;
  }
  consumer.join();

  EXPECT_FALSE(mismatch.load()) << "frame corrupted, reordered or duplicated";
  EXPECT_EQ(consumed.load(), kFrames);
  // Every rejected push was retried, so the drop counter reflects only
  // transient fullness, never lost frames.
  EXPECT_TRUE(ring.empty());
}

TEST(RingStress, AlternatingBurstsAndStalls) {
  // Bursty producer vs lagging consumer: exercises runs of many frames
  // claimed in one consume() against runs hitting max_frames limits.
  SpscRing ring{8192};
  std::atomic<bool> mismatch{false};
  constexpr std::uint64_t kBurstFrames = 50'000;

  std::thread consumer{[&] {
    std::uint64_t expected = 0;
    while (expected < kBurstFrames && !mismatch.load(std::memory_order_relaxed)) {
      // Tiny claim limit: a published run is retired across several
      // claims, repeatedly leaving the ring part-full.
      const std::size_t n = ring.consume(3, [&](std::span<const std::byte> payload) {
        if (!check_frame(payload, expected)) mismatch.store(true, std::memory_order_relaxed);
        ++expected;
      });
      if (n == 0) std::this_thread::yield();
    }
  }};

  std::vector<std::byte> buf;
  std::uint64_t seq = 0;
  while (seq < kBurstFrames && !mismatch.load(std::memory_order_relaxed)) {
    // Push a burst as fast as the ring accepts it, then stall briefly.
    for (int i = 0; i < 97 && seq < kBurstFrames; ++i) {
      fill_frame(buf, seq);
      while (!ring.try_push(buf)) {
        if (mismatch.load(std::memory_order_relaxed)) break;
        std::this_thread::yield();
      }
      ++seq;
    }
    std::this_thread::yield();
  }
  consumer.join();
  EXPECT_FALSE(mismatch.load());
}

}  // namespace
}  // namespace decos::rt
