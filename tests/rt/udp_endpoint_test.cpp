// UDP transport endpoint: loopback round trips, burst drains, peer
// learning, and the non-blocking backpressure contract. Runs entirely
// on 127.0.0.1 with kernel-assigned ports.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "rt/udp.hpp"

namespace decos::rt {
namespace {

class CollectSink final : public FrameSink {
 public:
  void on_frame(std::span<const std::byte> payload) override {
    frames.emplace_back(payload.begin(), payload.end());
  }
  std::vector<std::vector<std::byte>> frames;
};

std::vector<std::byte> frame_of(std::size_t size, std::uint8_t fill) {
  return std::vector<std::byte>(size, std::byte{fill});
}

/// Drain `ep` until `want` frames arrived or ~1 s passed (datagrams on
/// loopback are fast but not synchronous).
void poll_until(UdpEndpoint& ep, CollectSink& sink, std::size_t want) {
  for (int spin = 0; spin < 100'000 && sink.frames.size() < want; ++spin)
    ep.poll(sink, 64);
}

TEST(UdpEndpoint, LoopbackRoundTrip) {
  auto a = UdpEndpoint::bind_loopback(0);
  ASSERT_TRUE(a.ok()) << a.error().to_string();
  auto b = UdpEndpoint::bind_loopback(0, a.value().local_port());
  ASSERT_TRUE(b.ok()) << b.error().to_string();

  ASSERT_TRUE(b.value().send(frame_of(48, 0x5a)));
  CollectSink sink;
  poll_until(a.value(), sink, 1);
  ASSERT_EQ(sink.frames.size(), 1u);
  EXPECT_EQ(sink.frames[0], frame_of(48, 0x5a));
  EXPECT_EQ(a.value().stats().rx_frames, 1u);
  EXPECT_EQ(b.value().stats().tx_frames, 1u);
}

TEST(UdpEndpoint, LearnsPeerFromFirstDatagramAndReplies) {
  auto gw = UdpEndpoint::bind_loopback(0);  // no fixed peer
  ASSERT_TRUE(gw.ok()) << gw.error().to_string();
  EXPECT_FALSE(gw.value().has_peer());

  // Sending before any peer is known cannot block; it drops.
  EXPECT_FALSE(gw.value().send(frame_of(8, 0x01)));
  EXPECT_EQ(gw.value().stats().tx_dropped, 1u);

  auto client = UdpEndpoint::bind_loopback(0, gw.value().local_port());
  ASSERT_TRUE(client.ok()) << client.error().to_string();
  ASSERT_TRUE(client.value().send(frame_of(8, 0x02)));
  CollectSink gw_sink;
  poll_until(gw.value(), gw_sink, 1);
  ASSERT_EQ(gw_sink.frames.size(), 1u);
  EXPECT_TRUE(gw.value().has_peer());

  // Now the reply path works: gateway -> learned client address.
  ASSERT_TRUE(gw.value().send(frame_of(8, 0x03)));
  CollectSink client_sink;
  poll_until(client.value(), client_sink, 1);
  ASSERT_EQ(client_sink.frames.size(), 1u);
  EXPECT_EQ(client_sink.frames[0], frame_of(8, 0x03));
}

TEST(UdpEndpoint, BurstDrainDeliversManyPerPoll) {
  auto rx = UdpEndpoint::bind_loopback(0);
  ASSERT_TRUE(rx.ok()) << rx.error().to_string();
  auto tx = UdpEndpoint::bind_loopback(0, rx.value().local_port());
  ASSERT_TRUE(tx.ok()) << tx.error().to_string();

  constexpr std::size_t kFrames = 32;
  for (std::size_t i = 0; i < kFrames; ++i)
    ASSERT_TRUE(tx.value().send(frame_of(16 + i, static_cast<std::uint8_t>(i))));

  CollectSink sink;
  poll_until(rx.value(), sink, kFrames);
  ASSERT_EQ(sink.frames.size(), kFrames);
  for (std::size_t i = 0; i < kFrames; ++i)
    EXPECT_EQ(sink.frames[i], frame_of(16 + i, static_cast<std::uint8_t>(i))) << i;
}

TEST(UdpEndpoint, PollHonorsMaxFrames) {
  auto rx = UdpEndpoint::bind_loopback(0);
  ASSERT_TRUE(rx.ok()) << rx.error().to_string();
  auto tx = UdpEndpoint::bind_loopback(0, rx.value().local_port());
  ASSERT_TRUE(tx.ok()) << tx.error().to_string();

  for (int i = 0; i < 10; ++i) ASSERT_TRUE(tx.value().send(frame_of(8, 0x77)));
  CollectSink sink;
  // Allow delivery, then claim at most 4.
  for (int spin = 0; spin < 100'000 && sink.frames.empty(); ++spin) rx.value().poll(sink, 4);
  EXPECT_LE(sink.frames.size(), 4u);
  poll_until(rx.value(), sink, 10);
  EXPECT_EQ(sink.frames.size(), 10u);
}

TEST(UdpEndpoint, RejectsBadAddress) {
  EXPECT_FALSE(UdpEndpoint::bind("not-an-address", 0, "", 0).ok());
  EXPECT_FALSE(UdpEndpoint::bind("127.0.0.1", 0, "also-bad", 9).ok());
}

}  // namespace
}  // namespace decos::rt
