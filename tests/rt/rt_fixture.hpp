// Shared fixture for the live-runtime tests and the E22 bench: an
// E6-shaped gateway (msgA in on link A, msgB out on link B, one
// convertible "image" element) parameterised over semantics,
// interaction mode and queue sizing, plus byte-frame encode helpers.
#pragma once

#include <memory>
#include <vector>

#include "../helpers.hpp"
#include "core/virtual_gateway.hpp"
#include "spec/message.hpp"

namespace decos::rt_testing {

struct RtGatewayOptions {
  spec::InfoSemantics semantics = spec::InfoSemantics::kEvent;
  spec::Interaction interaction = spec::Interaction::kPush;
  std::size_t queue_capacity = 16;
  /// Admission tmin of the input automaton. Zero admits back-to-back
  /// frames (load benches); positive values exercise live temporal
  /// filtering.
  Duration min_interarrival = Duration::zero();
  Duration dispatch_period = Duration::milliseconds(1);
};

/// msgA (id 1) -> repository "image" -> msgB (id 2). Event semantics
/// makes the output event-triggered (one egress frame per admitted
/// ingress frame); state semantics makes both sides TT state images.
inline std::unique_ptr<core::VirtualGateway> make_rt_gateway(const RtGatewayOptions& options) {
  using decos::testing::state_message;

  spec::LinkSpec link_a{"dasA"};
  link_a.add_message(state_message("msgA", "image", 1));
  spec::PortSpec in;
  in.message = "msgA";
  in.direction = spec::DataDirection::kInput;
  in.semantics = options.semantics;
  in.interaction = options.interaction;
  in.paradigm = options.semantics == spec::InfoSemantics::kState
                    ? spec::ControlParadigm::kTimeTriggered
                    : spec::ControlParadigm::kEventTriggered;
  in.period = Duration::milliseconds(10);
  in.min_interarrival = options.min_interarrival;
  in.max_interarrival = Duration::seconds(3600);
  in.queue_capacity = options.queue_capacity;
  link_a.add_port(in);

  spec::LinkSpec link_b{"dasB"};
  link_b.add_message(state_message("msgB", "image", 2));
  spec::PortSpec out;
  out.message = "msgB";
  out.direction = spec::DataDirection::kOutput;
  out.semantics = options.semantics;
  out.paradigm = options.semantics == spec::InfoSemantics::kState
                     ? spec::ControlParadigm::kTimeTriggered
                     : spec::ControlParadigm::kEventTriggered;
  if (options.semantics == spec::InfoSemantics::kState)
    out.period = Duration::milliseconds(10);
  out.queue_capacity = options.queue_capacity;
  link_b.add_port(out);

  core::GatewayConfig config;
  config.default_d_acc = Duration::seconds(3600);
  config.dispatch_period = options.dispatch_period;
  config.default_queue_capacity = options.queue_capacity;
  auto gw = std::make_unique<core::VirtualGateway>("rtgw", std::move(link_a), std::move(link_b),
                                                   config);
  gw->set_element_config("image", options.semantics, Duration::seconds(3600),
                         options.queue_capacity);
  gw->finalize();
  gw->trace().set_enabled(false);
  return gw;
}

/// Encode one msgA/msgB wire frame carrying `value` at `t`.
inline std::vector<std::byte> encode_frame(const spec::MessageSpec& spec, std::int32_t value,
                                           Instant t) {
  const spec::MessageInstance instance = decos::testing::make_state_instance(spec, value, t);
  return spec::encode(spec, instance).value();
}

}  // namespace decos::rt_testing
