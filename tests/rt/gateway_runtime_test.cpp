// rt::GatewayRuntime behaviour over ring, shm and UDP transports: byte
// frames in, compiled gateway path, byte frames out; per-flow
// backpressure policies; exact dispatch grid; live temporal filtering.
// All under a ManualClock, so every assertion is deterministic.
#include <gtest/gtest.h>

#include <unistd.h>

#include <vector>

#include "rt_fixture.hpp"
#include "rt/gateway_runtime.hpp"
#include "rt/udp.hpp"

namespace decos::rt {
namespace {

using rt_testing::RtGatewayOptions;
using rt_testing::encode_frame;
using rt_testing::make_rt_gateway;

struct RingPair {
  SpscRing ingress{1 << 16};  // peer -> gateway
  SpscRing egress{1 << 16};   // gateway -> peer
  RingEndpoint endpoint{ingress, egress};
};

std::vector<std::vector<std::byte>> drain(SpscRing& ring) {
  std::vector<std::vector<std::byte>> frames;
  ring.consume(1024, [&](std::span<const std::byte> payload) {
    frames.emplace_back(payload.begin(), payload.end());
  });
  return frames;
}

std::int64_t decoded_value(const spec::MessageSpec& spec, const std::vector<std::byte>& frame) {
  return spec::decode(spec, frame).value().element("image")->fields[0].as_int();
}

TEST(GatewayRuntime, EventPathEmitsOneEgressFramePerIngressFrame) {
  auto gw = make_rt_gateway({});
  ManualClock clock;
  GatewayRuntime runtime{*gw, clock};
  RingPair side_a, side_b;
  runtime.attach(0, side_a.endpoint);
  runtime.attach(1, side_b.endpoint);
  runtime.start();

  const spec::MessageSpec& msg_a = *gw->link_a().spec().message("msgA");
  const spec::MessageSpec& msg_b = *gw->link_b().spec().message("msgB");
  for (int i = 0; i < 5; ++i) {
    clock.advance(Duration::microseconds(100));
    ASSERT_TRUE(side_a.ingress.try_push(encode_frame(msg_a, 100 + i, clock.now())));
    runtime.poll_once(clock.now());
  }

  const auto egress = drain(side_b.egress);
  ASSERT_EQ(egress.size(), 5u) << "event flow must emit per arrival";
  for (int i = 0; i < 5; ++i) EXPECT_EQ(decoded_value(msg_b, egress[i]), 100 + i);
  EXPECT_EQ(runtime.stats().rx_frames, 5u);
  EXPECT_EQ(runtime.stats().tx_frames, 5u);
  EXPECT_EQ(runtime.stats().rx_unknown, 0u);
  EXPECT_EQ(gw->stats().messages_admitted, 5u);
}

TEST(GatewayRuntime, StateFlowOverwritesOldestAndEmitsFreshestAtDispatch) {
  RtGatewayOptions options;
  options.semantics = spec::InfoSemantics::kState;
  options.interaction = spec::Interaction::kPull;  // drained at dispatch only
  auto gw = make_rt_gateway(options);
  ManualClock clock;
  GatewayRuntime runtime{*gw, clock};
  RingPair side_a, side_b;
  runtime.attach(0, side_a.endpoint);
  runtime.attach(1, side_b.endpoint);
  runtime.start();

  const spec::MessageSpec& msg_a = *gw->link_a().spec().message("msgA");
  const spec::MessageSpec& msg_b = *gw->link_b().spec().message("msgB");

  // Five images land before any dispatch tick: the state port keeps
  // only the freshest (overwrite-oldest, never a queue, never a drop).
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(side_a.ingress.try_push(encode_frame(msg_a, 200 + i, clock.now())));
  }
  clock.advance(Duration::microseconds(500));
  runtime.poll_once(clock.now());
  EXPECT_EQ(runtime.stats().rx_dropped, 0u) << "state flows never drop";

  clock.advance(Duration::milliseconds(12));  // past dispatch + TT output period
  runtime.poll_once(clock.now());
  const auto egress = drain(side_b.egress);
  ASSERT_GE(egress.size(), 1u) << "TT output never constructed";
  EXPECT_EQ(decoded_value(msg_b, egress.back()), 204) << "stale image emitted";
}

TEST(GatewayRuntime, PullEventFlowDropsNewestBeyondQueueCapacity) {
  RtGatewayOptions options;
  options.interaction = spec::Interaction::kPull;
  options.queue_capacity = 2;
  auto gw = make_rt_gateway(options);
  ManualClock clock;
  GatewayRuntime runtime{*gw, clock};
  RingPair side_a, side_b;
  runtime.attach(0, side_a.endpoint);
  runtime.attach(1, side_b.endpoint);
  runtime.start();

  const spec::MessageSpec& msg_a = *gw->link_a().spec().message("msgA");
  for (int i = 0; i < 5; ++i)
    ASSERT_TRUE(side_a.ingress.try_push(encode_frame(msg_a, 300 + i, clock.now())));
  clock.advance(Duration::microseconds(10));
  runtime.poll_once(clock.now());

  EXPECT_EQ(runtime.stats().rx_frames, 5u);
  EXPECT_EQ(runtime.stats().rx_dropped, 3u) << "queue capacity 2 must drop the 3 newest";
  const auto flows = runtime.flow_stats();
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0].message, "msgA");
  EXPECT_TRUE(flows[0].is_event);
  EXPECT_EQ(flows[0].drops, 3u);

  // The two queued survivors drain at the next dispatch tick.
  clock.advance(Duration::milliseconds(2));
  runtime.poll_once(clock.now());
  const auto egress = drain(side_b.egress);
  ASSERT_EQ(egress.size(), 2u);
  const spec::MessageSpec& msg_b = *gw->link_b().spec().message("msgB");
  EXPECT_EQ(decoded_value(msg_b, egress[0]), 300);
  EXPECT_EQ(decoded_value(msg_b, egress[1]), 301);
}

TEST(GatewayRuntime, UnknownFramesAreCountedNotForwarded) {
  auto gw = make_rt_gateway({});
  ManualClock clock;
  GatewayRuntime runtime{*gw, clock};
  RingPair side_a, side_b;
  runtime.attach(0, side_a.endpoint);
  runtime.attach(1, side_b.endpoint);
  runtime.start();

  const std::vector<std::byte> junk(32, std::byte{0xee});
  ASSERT_TRUE(side_a.ingress.try_push(junk));
  clock.advance(Duration::microseconds(10));
  runtime.poll_once(clock.now());

  EXPECT_EQ(runtime.stats().rx_frames, 1u);
  EXPECT_EQ(runtime.stats().rx_unknown, 1u);
  EXPECT_TRUE(side_b.egress.empty());
}

TEST(GatewayRuntime, DispatchRunsOnExactPeriodGridWithCatchUp) {
  auto gw = make_rt_gateway({});  // dispatch_period 1 ms
  ManualClock clock;
  clock.set(Instant::from_ns(500'000));
  GatewayRuntime runtime{*gw, clock};
  RingPair side_a;
  runtime.attach(0, side_a.endpoint);
  runtime.start();

  EXPECT_EQ(runtime.next_dispatch(), Instant::from_ns(1'500'000));
  clock.advance(Duration::milliseconds(10));  // loop stalled for 10 periods
  runtime.poll_once(clock.now());
  EXPECT_EQ(runtime.stats().dispatches, 10u) << "catch-up must run every missed grid tick";
  EXPECT_EQ(runtime.next_dispatch(), Instant::from_ns(11'500'000));
}

TEST(GatewayRuntime, TemporalFilteringAppliesToLiveStreams) {
  RtGatewayOptions options;
  options.min_interarrival = Duration::microseconds(100);
  auto gw = make_rt_gateway(options);
  ManualClock clock;
  GatewayRuntime runtime{*gw, clock};
  RingPair side_a, side_b;
  runtime.attach(0, side_a.endpoint);
  runtime.attach(1, side_b.endpoint);
  runtime.start();

  const spec::MessageSpec& msg_a = *gw->link_a().spec().message("msgA");
  clock.advance(Duration::milliseconds(1));
  ASSERT_TRUE(side_a.ingress.try_push(encode_frame(msg_a, 1, clock.now())));
  runtime.poll_once(clock.now());
  // Second frame violates tmin = 100 us: the admission automaton drops
  // it (error containment on a live byte stream).
  clock.advance(Duration::microseconds(10));
  ASSERT_TRUE(side_a.ingress.try_push(encode_frame(msg_a, 2, clock.now())));
  runtime.poll_once(clock.now());

  EXPECT_EQ(gw->stats().messages_admitted, 1u);
  EXPECT_GE(gw->stats().blocked_temporal, 1u);
  EXPECT_EQ(drain(side_b.egress).size(), 1u);
}

TEST(GatewayRuntime, ShmTransportCarriesTheFullPath) {
  const std::string base = "/decos_rt_gwtest_" + std::to_string(::getpid());
  auto in_ring = ShmRing::create(base + ".in", 1 << 16);
  auto out_ring = ShmRing::create(base + ".out", 1 << 16);
  ASSERT_TRUE(in_ring.ok()) << in_ring.error().to_string();
  ASSERT_TRUE(out_ring.ok()) << out_ring.error().to_string();
  // The producer/consumer side maps the same objects independently,
  // as a second process would.
  auto in_peer = ShmRing::open(base + ".in");
  auto out_peer = ShmRing::open(base + ".out");
  ASSERT_TRUE(in_peer.ok()) << in_peer.error().to_string();
  ASSERT_TRUE(out_peer.ok()) << out_peer.error().to_string();

  auto gw = make_rt_gateway({});
  ManualClock clock;
  GatewayRuntime runtime{*gw, clock};
  RingEndpoint side_a{in_ring.value().ring(), out_ring.value().ring()};
  runtime.attach(0, side_a);
  SpscRing b_in{1 << 16}, b_out{1 << 16};
  RingEndpoint side_b{b_in, b_out};
  runtime.attach(1, side_b);
  runtime.start();

  const spec::MessageSpec& msg_a = *gw->link_a().spec().message("msgA");
  for (int i = 0; i < 3; ++i) {
    clock.advance(Duration::microseconds(50));
    ASSERT_TRUE(in_peer.value().ring().try_push(encode_frame(msg_a, 400 + i, clock.now())));
    runtime.poll_once(clock.now());
  }
  const auto egress = drain(b_out);
  ASSERT_EQ(egress.size(), 3u);
  const spec::MessageSpec& msg_b = *gw->link_b().spec().message("msgB");
  EXPECT_EQ(decoded_value(msg_b, egress[2]), 402);
}

TEST(GatewayRuntime, UdpTransportCarriesTheFullPath) {
  auto gw_ep = UdpEndpoint::bind_loopback(0);
  ASSERT_TRUE(gw_ep.ok()) << gw_ep.error().to_string();
  auto client = UdpEndpoint::bind_loopback(0, gw_ep.value().local_port());
  ASSERT_TRUE(client.ok()) << client.error().to_string();

  auto gw = make_rt_gateway({});
  ManualClock clock;
  GatewayRuntime runtime{*gw, clock};
  runtime.attach(0, gw_ep.value());
  SpscRing b_in{1 << 16}, b_out{1 << 16};
  RingEndpoint side_b{b_in, b_out};
  runtime.attach(1, side_b);
  runtime.start();

  const spec::MessageSpec& msg_a = *gw->link_a().spec().message("msgA");
  for (int i = 0; i < 3; ++i) {
    clock.advance(Duration::microseconds(50));
    ASSERT_TRUE(client.value().send(encode_frame(msg_a, 500 + i, clock.now())));
  }
  // Loopback datagrams are asynchronous: poll until all three crossed.
  for (int spin = 0; spin < 100'000 && runtime.stats().tx_frames < 3; ++spin) {
    clock.advance(Duration::microseconds(1));
    runtime.poll_once(clock.now());
  }
  const auto egress = drain(b_out);
  ASSERT_EQ(egress.size(), 3u);
  const spec::MessageSpec& msg_b = *gw->link_b().spec().message("msgB");
  EXPECT_EQ(decoded_value(msg_b, 0 < egress.size() ? egress[0] : egress.back()), 500);
  EXPECT_EQ(runtime.stats().rx_unknown, 0u);
}

TEST(GatewayRuntime, MetricsExposeDropsAndServiceShape) {
  RtGatewayOptions options;
  options.interaction = spec::Interaction::kPull;
  options.queue_capacity = 1;
  auto gw = make_rt_gateway(options);
  ManualClock clock;
  GatewayRuntime runtime{*gw, clock};
  RingPair side_a, side_b;
  runtime.attach(0, side_a.endpoint);
  runtime.attach(1, side_b.endpoint);
  obs::MetricsRegistry metrics;
  runtime.bind_observability(metrics);
  runtime.start();

  const spec::MessageSpec& msg_a = *gw->link_a().spec().message("msgA");
  for (int i = 0; i < 4; ++i)
    ASSERT_TRUE(side_a.ingress.try_push(encode_frame(msg_a, i, clock.now())));
  clock.advance(Duration::microseconds(10));
  runtime.poll_once(clock.now());

  EXPECT_EQ(metrics.counter("rt.rtgw.rx_frames").value(), 4u);
  EXPECT_EQ(metrics.counter("rt.rtgw.rx_dropped").value(), 3u);
  EXPECT_EQ(metrics.histogram("rt.rtgw.batch_frames").count(), 1u);
  EXPECT_EQ(metrics.histogram("rt.rtgw.batch_frames").max(), 4);
}

}  // namespace
}  // namespace decos::rt
