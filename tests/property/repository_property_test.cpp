// Repository invariants under random operation sequences:
//  * event elements: fetched + queued + overflowed == stored (exactly-once,
//    nothing invented, nothing lost silently);
//  * event FIFO order preserved;
//  * state elements: fetch returns the most recent store, and only while
//    temporally accurate;
//  * horizon is exactly t_update + d_acc - now for a single element.
#include <gtest/gtest.h>

#include "core/repository.hpp"
#include "util/rng.hpp"

namespace decos::core {
namespace {

using namespace decos::literals;

class RepositoryProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RepositoryProperty, EventAccounting) {
  Rng rng{GetParam()};
  Repository repo;
  const std::size_t capacity = static_cast<std::size_t>(rng.uniform_int(1, 8));
  repo.declare(ElementDecl{"e", spec::InfoSemantics::kEvent, 50_ms, capacity});

  std::uint64_t stored_ok = 0;
  std::uint64_t fetched = 0;
  std::int64_t next_expected = 0;  // FIFO check
  std::int64_t next_value = 0;
  Instant now = Instant::origin();

  for (int op = 0; op < 2000; ++op) {
    now += Duration::microseconds(rng.uniform_int(1, 100));
    if (rng.bernoulli(0.55)) {
      ElementInstance inst;
      inst.set_field("seq", ta::Value{next_value++});
      if (repo.store("e", std::move(inst), now)) ++stored_ok;
    } else if (auto fetched_inst = repo.fetch("e", now)) {
      ++fetched;
      const std::int64_t seq = fetched_inst->field("seq")->as_int();
      EXPECT_GE(seq, next_expected);  // order preserved, drops only at tail
      next_expected = seq + 1;
    }
    ASSERT_LE(repo.queue_depth("e"), capacity);
  }
  EXPECT_EQ(fetched + repo.queue_depth("e"), stored_ok);
  EXPECT_EQ(stored_ok + repo.overflows(), static_cast<std::uint64_t>(next_value));
}

TEST_P(RepositoryProperty, StateFreshnessAndAccuracy) {
  Rng rng{GetParam() + 1000};
  Repository repo;
  const Duration d_acc = Duration::milliseconds(rng.uniform_int(5, 100));
  repo.declare(ElementDecl{"s", spec::InfoSemantics::kState, d_acc, 1});

  Instant now = Instant::origin();
  Instant last_store = Instant::origin() - 1_s;
  std::int64_t last_value = -1;

  for (int op = 0; op < 2000; ++op) {
    now += Duration::microseconds(rng.uniform_int(10, 20000));
    if (rng.bernoulli(0.4)) {
      ElementInstance inst;
      inst.set_field("v", ta::Value{op});
      repo.store("s", std::move(inst), now);
      last_store = now;
      last_value = op;
    } else {
      const bool accurate = last_value >= 0 && now < last_store + d_acc;
      EXPECT_EQ(repo.temporally_accurate("s", now), accurate);
      EXPECT_EQ(repo.available("s", now), accurate);
      auto fetched = repo.fetch("s", now);
      EXPECT_EQ(fetched.has_value(), accurate);
      if (fetched) EXPECT_EQ(fetched->field("v")->as_int(), last_value);
      if (last_value >= 0) {
        const std::string names[] = {"s"};
        EXPECT_EQ(repo.horizon(names, now), (last_store + d_acc) - now);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RepositoryProperty, ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace decos::core
