// Robustness: arbitrary mutations (truncation, byte flips, deletions) of
// a valid link-spec document must never crash or hang the parser -- they
// either parse to a valid spec or return a Result error. A configuration
// loader that aborts on malformed input would be a common-mode failure
// of the architecture level.
#include <gtest/gtest.h>

#include "spec/linkspec_xml.hpp"
#include "util/rng.hpp"
#include "xml/xml.hpp"

namespace decos {
namespace {

const char* kValid = R"(<?xml version="1.0"?>
<linkspec>
  <das>comfort</das>
  <param name="tmin" value="4ms"/>
  <message name="msgslidingroof">
    <element name="name" key="yes" conv="no">
      <field name="id"><type length="16">integer</type><value>731</value></field>
    </element>
    <element name="movementevent" key="no" conv="yes">
      <field name="valuechange"><type length="16">integer</type></field>
      <field name="eventtime"><type>timestamp</type></field>
    </element>
  </message>
  <timedautomaton name="r">
    <location name="wait"/><init name="wait"/>
    <clock name="x"/>
    <transition>
      <source name="wait"/><target name="wait"/>
      <label type="recv">msgslidingroof</label>
      <label type="guard">x&gt;=tmin</label>
      <label type="assignment">x:=0</label>
    </transition>
  </timedautomaton>
  <port message="msgslidingroof" direction="input" semantics="event" paradigm="et" queue="8"/>
  <filter message="msgslidingroof">valuechange &lt; 100</filter>
</linkspec>
)";

class XmlRobustness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(XmlRobustness, TruncationsNeverCrash) {
  const std::string base = kValid;
  Rng rng{GetParam()};
  for (int i = 0; i < 200; ++i) {
    const auto cut = static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(base.size())));
    const std::string truncated = base.substr(0, cut);
    // Must return (ok or error), not crash/throw/hang.
    auto doc = xml::parse(truncated);
    auto spec = spec::parse_link_spec_xml(truncated);
    (void)doc;
    (void)spec;
  }
}

TEST_P(XmlRobustness, ByteMutationsNeverCrash) {
  const std::string base = kValid;
  Rng rng{GetParam() + 7};
  for (int i = 0; i < 300; ++i) {
    std::string mutated = base;
    const int edits = static_cast<int>(rng.uniform_int(1, 5));
    for (int e = 0; e < edits; ++e) {
      const auto pos =
          static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(mutated.size()) - 1));
      switch (rng.uniform_int(0, 2)) {
        case 0:  // flip to a random printable byte
          mutated[pos] = static_cast<char>(rng.uniform_int(32, 126));
          break;
        case 1:  // delete a byte
          mutated.erase(pos, 1);
          break;
        default:  // duplicate a byte
          mutated.insert(pos, 1, mutated[pos]);
          break;
      }
    }
    auto spec = spec::parse_link_spec_xml(mutated);
    if (spec.ok()) {
      // If the mutation survived parsing, the result must still be a
      // structurally valid spec (parse_link_spec_xml validates).
      EXPECT_TRUE(spec.value().validate().ok());
    }
  }
}

TEST_P(XmlRobustness, GarbageInputsNeverCrash) {
  Rng rng{GetParam() + 99};
  for (int i = 0; i < 200; ++i) {
    std::string garbage;
    const int len = static_cast<int>(rng.uniform_int(0, 300));
    for (int c = 0; c < len; ++c)
      garbage.push_back(static_cast<char>(rng.uniform_int(1, 255)));
    EXPECT_NO_THROW({
      auto doc = xml::parse(garbage);
      (void)doc;
    });
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, XmlRobustness, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace decos
