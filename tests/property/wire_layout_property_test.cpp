// Equivalence property of the compiled wire layout (S29): for arbitrary
// generated message specs -- static fields of every type, strings,
// key elements -- the compiled WireLayout path behind encode_into /
// decode_into / matches_key must be indistinguishable from the
// field-walk reference codec: byte-identical buffers, value-identical
// decoded instances, string-identical Status errors, and identical
// matches_key verdicts, on well-formed and malformed inputs alike.
#include <gtest/gtest.h>

#include <cstddef>
#include <exception>
#include <string>
#include <vector>

#include "spec/message.hpp"
#include "util/rng.hpp"

namespace decos::spec {
namespace {

/// Random valid MessageSpec: a static key element plus 1-3 payload
/// elements whose fields are randomly static (all types) or dynamic.
MessageSpec random_spec(Rng& rng, int id) {
  MessageSpec ms{"m" + std::to_string(id)};
  ElementSpec key;
  key.name = "name";
  key.key = true;
  key.fields.push_back(FieldSpec{"id", FieldType::kUInt16, 0, ta::Value{id}});
  if (rng.bernoulli(0.5)) {
    // Multi-field keys exercise the memcmp key ops beyond the id.
    key.fields.push_back(FieldSpec{"tag", FieldType::kInt8, 0, ta::Value{rng.uniform_int(-5, 5)}});
  }
  ms.add_element(std::move(key));

  const FieldType kTypes[] = {
      FieldType::kBoolean, FieldType::kInt8,    FieldType::kInt16,     FieldType::kInt32,
      FieldType::kInt64,   FieldType::kUInt8,   FieldType::kUInt16,    FieldType::kUInt32,
      FieldType::kUInt64,  FieldType::kFloat32, FieldType::kFloat64,   FieldType::kTimestamp,
      FieldType::kString,
  };
  const std::int64_t elements = rng.uniform_int(1, 3);
  for (std::int64_t e = 0; e < elements; ++e) {
    ElementSpec es;
    es.name = "e" + std::to_string(e);
    es.convertible = rng.bernoulli(0.5);
    const std::int64_t fields = rng.uniform_int(1, 5);
    for (std::int64_t f = 0; f < fields; ++f) {
      FieldSpec fs;
      fs.name = "f" + std::to_string(f);
      fs.type = kTypes[rng.uniform_int(0, 12)];
      if (fs.type == FieldType::kString)
        fs.string_length = static_cast<std::size_t>(rng.uniform_int(1, 12));
      if (rng.bernoulli(0.3)) {
        // Static field of matching value kind (in range for its width).
        switch (fs.type) {
          case FieldType::kBoolean: fs.static_value = ta::Value{rng.bernoulli(0.5)}; break;
          case FieldType::kInt8: fs.static_value = ta::Value{rng.uniform_int(-128, 127)}; break;
          case FieldType::kInt16: fs.static_value = ta::Value{rng.uniform_int(-100, 100)}; break;
          case FieldType::kInt32: fs.static_value = ta::Value{rng.uniform_int(-100000, 100000)}; break;
          case FieldType::kInt64: fs.static_value = ta::Value{static_cast<std::int64_t>(rng.next_u64())}; break;
          case FieldType::kUInt8: fs.static_value = ta::Value{rng.uniform_int(0, 255)}; break;
          case FieldType::kUInt16: fs.static_value = ta::Value{rng.uniform_int(0, 65535)}; break;
          case FieldType::kUInt32: fs.static_value = ta::Value{rng.uniform_int(0, 4294967295LL)}; break;
          case FieldType::kUInt64: fs.static_value = ta::Value{rng.uniform_int(0, 1LL << 62)}; break;
          case FieldType::kFloat32:
            fs.static_value = ta::Value{static_cast<double>(static_cast<float>(rng.uniform(-1e6, 1e6)))};
            break;
          case FieldType::kFloat64: fs.static_value = ta::Value{rng.uniform(-1e12, 1e12)}; break;
          case FieldType::kTimestamp:
            fs.static_value = ta::Value{Instant::from_ns(rng.uniform_int(0, 1LL << 50))};
            break;
          case FieldType::kString: {
            std::string s;
            const std::int64_t len =
                rng.uniform_int(0, static_cast<std::int64_t>(fs.string_length));
            for (std::int64_t i = 0; i < len; ++i)
              s.push_back(static_cast<char>(rng.uniform_int('a', 'z')));
            fs.static_value = ta::Value{std::move(s)};
            break;
          }
        }
      }
      es.fields.push_back(std::move(fs));
    }
    ms.add_element(std::move(es));
  }
  return ms;
}

/// Random in-range values for the dynamic fields.
void randomize(MessageInstance& inst, const MessageSpec& ms, Rng& rng) {
  for (std::size_t ei = 0; ei < ms.elements().size(); ++ei) {
    const ElementSpec& es = ms.elements()[ei];
    for (std::size_t fi = 0; fi < es.fields.size(); ++fi) {
      const FieldSpec& fs = es.fields[fi];
      if (fs.is_static()) continue;
      ta::Value& v = inst.elements()[ei].fields[fi];
      switch (fs.type) {
        case FieldType::kBoolean: v = ta::Value{rng.bernoulli(0.5)}; break;
        case FieldType::kInt8: v = ta::Value{rng.uniform_int(-128, 127)}; break;
        case FieldType::kInt16: v = ta::Value{rng.uniform_int(-32768, 32767)}; break;
        case FieldType::kInt32: v = ta::Value{rng.uniform_int(-2147483648LL, 2147483647LL)}; break;
        case FieldType::kInt64: v = ta::Value{static_cast<std::int64_t>(rng.next_u64())}; break;
        case FieldType::kUInt8: v = ta::Value{rng.uniform_int(0, 255)}; break;
        case FieldType::kUInt16: v = ta::Value{rng.uniform_int(0, 65535)}; break;
        case FieldType::kUInt32: v = ta::Value{rng.uniform_int(0, 4294967295LL)}; break;
        case FieldType::kUInt64: v = ta::Value{rng.uniform_int(0, 1LL << 62)}; break;
        case FieldType::kFloat32:
          v = ta::Value{static_cast<double>(static_cast<float>(rng.uniform(-1e6, 1e6)))};
          break;
        case FieldType::kFloat64: v = ta::Value{rng.uniform(-1e12, 1e12)}; break;
        case FieldType::kTimestamp:
          v = ta::Value{Instant::from_ns(rng.uniform_int(0, 1LL << 50))};
          break;
        case FieldType::kString: {
          std::string s;
          const std::int64_t len = rng.uniform_int(0, static_cast<std::int64_t>(fs.string_length));
          for (std::int64_t i = 0; i < len; ++i)
            s.push_back(static_cast<char>(rng.uniform_int('a', 'z')));
          v = ta::Value{std::move(s)};
          break;
        }
      }
    }
  }
}

/// Both paths run on the same inputs; ok-ness, error text and (on
/// success) bytes must agree.
void expect_encode_equivalent(const MessageSpec& ms, const MessageInstance& inst,
                              const char* what) {
  std::vector<std::byte> compiled;
  std::vector<std::byte> reference;
  const Status a = encode_into(ms, inst, compiled);
  const Status b = encode_fieldwalk_into(ms, inst, reference);
  EXPECT_EQ(a.ok(), b.ok()) << what;
  if (a.ok() && b.ok()) {
    EXPECT_EQ(compiled, reference) << what;
  } else if (!a.ok() && !b.ok()) {
    EXPECT_EQ(a.error().to_string(), b.error().to_string()) << what;
  }
}

void expect_decode_equivalent(const MessageSpec& ms, std::span<const std::byte> payload,
                              const char* what) {
  MessageInstance compiled = make_instance(ms);
  MessageInstance reference = make_instance(ms);
  const Status a = decode_into(ms, payload, compiled);
  const Status b = decode_fieldwalk_into(ms, payload, reference);
  EXPECT_EQ(a.ok(), b.ok()) << what;
  if (!a.ok() && !b.ok()) {
    EXPECT_EQ(a.error().to_string(), b.error().to_string()) << what;
    return;
  }
  if (!a.ok() || !b.ok()) return;
  ASSERT_EQ(compiled.elements().size(), reference.elements().size()) << what;
  for (std::size_t ei = 0; ei < compiled.elements().size(); ++ei) {
    ASSERT_EQ(compiled.elements()[ei].fields.size(), reference.elements()[ei].fields.size())
        << what;
    for (std::size_t fi = 0; fi < compiled.elements()[ei].fields.size(); ++fi) {
      const ta::Value& x = compiled.elements()[ei].fields[fi];
      const ta::Value& y = reference.elements()[ei].fields[fi];
      // Exact representational equality, not just numeric ==: both paths
      // must produce the same variant alternative and the same bits.
      EXPECT_EQ(x.is_int(), y.is_int()) << what;
      EXPECT_EQ(x.is_real(), y.is_real()) << what;
      EXPECT_EQ(x.is_bool(), y.is_bool()) << what;
      EXPECT_EQ(x.is_string(), y.is_string()) << what;
      EXPECT_TRUE(x == y) << what << " element " << ei << " field " << fi << ": " << x.to_string()
                          << " vs " << y.to_string();
    }
  }
}

/// Like expect_encode_equivalent, but for inputs that may make the
/// codec *throw* (wrong value kind reaches an as_bool()/as_int()
/// accessor): both paths must agree on Status vs exception, and on the
/// message either way.
void expect_encode_equivalent_or_throw(const MessageSpec& ms, const MessageInstance& inst,
                                       const char* what) {
  std::vector<std::byte> compiled;
  std::vector<std::byte> reference;
  bool threw_a = false;
  bool threw_b = false;
  std::string text_a;
  std::string text_b;
  bool ok_a = false;
  bool ok_b = false;
  try {
    const Status a = encode_into(ms, inst, compiled);
    ok_a = a.ok();
    if (!a.ok()) text_a = a.error().to_string();
  } catch (const std::exception& e) {
    threw_a = true;
    text_a = e.what();
  }
  try {
    const Status b = encode_fieldwalk_into(ms, inst, reference);
    ok_b = b.ok();
    if (!b.ok()) text_b = b.error().to_string();
  } catch (const std::exception& e) {
    threw_b = true;
    text_b = e.what();
  }
  EXPECT_EQ(threw_a, threw_b) << what;
  EXPECT_EQ(ok_a, ok_b) << what;
  EXPECT_EQ(text_a, text_b) << what;
  if (ok_a && ok_b) EXPECT_EQ(compiled, reference) << what;
}

class WireLayoutEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WireLayoutEquivalence, EncodeDecodeAndKeyMatchTheFieldWalk) {
  Rng rng{GetParam()};
  for (int iteration = 0; iteration < 40; ++iteration) {
    const MessageSpec ms = random_spec(rng, static_cast<int>(rng.uniform_int(0, 1000)));
    ASSERT_TRUE(ms.validate().ok());
    MessageInstance inst = make_instance(ms);
    randomize(inst, ms, rng);

    // 1. Encoding a well-formed instance: byte-identical.
    expect_encode_equivalent(ms, inst, "well-formed encode");
    std::vector<std::byte> bytes;
    ASSERT_TRUE(encode_fieldwalk_into(ms, inst, bytes).ok());

    // 2. Decoding it back: value-identical, twice (the second pass runs
    //    against warmed scratch -- the branch-light in-place path).
    expect_decode_equivalent(ms, bytes, "well-formed decode");
    MessageInstance warmed = make_instance(ms);
    ASSERT_TRUE(decode_into(ms, bytes, warmed).ok());
    ASSERT_TRUE(decode_into(ms, bytes, warmed).ok());

    // 3. matches_key agrees on the genuine payload...
    EXPECT_EQ(matches_key(ms, bytes), matches_key_fieldwalk(ms, bytes));
    EXPECT_TRUE(matches_key(ms, bytes));
    // ...and under byte mutation anywhere in the payload.
    for (std::size_t i = 0; i < bytes.size(); ++i) {
      std::vector<std::byte> mutated = bytes;
      mutated[i] ^= std::byte{0xFF};
      EXPECT_EQ(matches_key(ms, mutated), matches_key_fieldwalk(ms, mutated))
          << "mutated byte " << i;
    }

    // 4. Short / long / empty payloads: identical error text.
    if (!bytes.empty()) {
      const std::span<const std::byte> short_payload{bytes.data(), bytes.size() - 1};
      expect_decode_equivalent(ms, short_payload, "short payload");
      EXPECT_EQ(matches_key(ms, short_payload), matches_key_fieldwalk(ms, short_payload));
    }
    std::vector<std::byte> long_payload = bytes;
    long_payload.push_back(std::byte{0});
    expect_decode_equivalent(ms, long_payload, "long payload");
    expect_decode_equivalent(ms, std::span<const std::byte>{}, "empty payload");

    // 5. Name mismatch: identical error text.
    MessageInstance misnamed = inst;
    misnamed.set_message("not-" + ms.name());
    expect_encode_equivalent(ms, misnamed, "name mismatch");

    // 6. Structural mismatch: an element short of one field.
    if (!inst.elements().empty() && !inst.elements().back().fields.empty()) {
      MessageInstance chopped = inst;
      chopped.elements().back().fields.pop_back();
      expect_encode_equivalent(ms, chopped, "field-count mismatch");
      MessageInstance elementless = inst;
      elementless.elements().pop_back();
      expect_encode_equivalent(ms, elementless, "element-count mismatch");
    }
  }
}

TEST_P(WireLayoutEquivalence, ValueFaultsMatchTheFieldWalk) {
  Rng rng{GetParam() + 7777};
  for (int iteration = 0; iteration < 40; ++iteration) {
    const MessageSpec ms = random_spec(rng, static_cast<int>(rng.uniform_int(0, 1000)));
    MessageInstance inst = make_instance(ms);
    randomize(inst, ms, rng);

    // Pick a random dynamic field and poison it out of range / out of
    // type; both paths must report the same failure.
    std::vector<std::pair<std::size_t, std::size_t>> dynamics;
    for (std::size_t ei = 0; ei < ms.elements().size(); ++ei)
      for (std::size_t fi = 0; fi < ms.elements()[ei].fields.size(); ++fi)
        if (!ms.elements()[ei].fields[fi].is_static()) dynamics.emplace_back(ei, fi);
    if (dynamics.empty()) continue;
    const auto [ei, fi] =
        dynamics[static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(dynamics.size()) - 1))];
    const FieldSpec& fs = ms.elements()[ei].fields[fi];
    MessageInstance poisoned = inst;
    ta::Value& v = poisoned.elements()[ei].fields[fi];
    switch (fs.type) {
      case FieldType::kInt8:
      case FieldType::kInt16:
      case FieldType::kInt32:
        v = ta::Value{std::int64_t{1} << 40};  // out of range
        break;
      case FieldType::kUInt8:
      case FieldType::kUInt16:
      case FieldType::kUInt32:
      case FieldType::kUInt64:
        v = ta::Value{std::int64_t{-1}};  // negative for unsigned
        break;
      case FieldType::kString: {
        std::string s(fs.string_length + 3, 'x');  // overlong
        v = ta::Value{std::move(s)};
        break;
      }
      case FieldType::kBoolean:
      case FieldType::kInt64:
      case FieldType::kTimestamp:
      case FieldType::kFloat32:
      case FieldType::kFloat64:
        v = ta::Value{std::string{"wrong-kind"}};  // string where a number belongs
        break;
    }
    expect_encode_equivalent_or_throw(ms, poisoned, "poisoned value");
  }
}

TEST_P(WireLayoutEquivalence, StaticMismatchFallsBackBitIdentically) {
  Rng rng{GetParam() + 31337};
  for (int iteration = 0; iteration < 40; ++iteration) {
    const MessageSpec ms = random_spec(rng, static_cast<int>(rng.uniform_int(0, 1000)));
    MessageInstance inst = make_instance(ms);
    randomize(inst, ms, rng);

    // Mutate one static field of the instance away from the spec's
    // value: the compiled template no longer applies and the layout must
    // take its wholesale field-walk fallback -- equivalence holds either
    // way, whatever the reference decides (encode the instance's value
    // or fail).
    std::vector<std::pair<std::size_t, std::size_t>> statics;
    for (std::size_t ei = 0; ei < ms.elements().size(); ++ei)
      for (std::size_t fi = 0; fi < ms.elements()[ei].fields.size(); ++fi)
        if (ms.elements()[ei].fields[fi].is_static()) statics.emplace_back(ei, fi);
    if (statics.empty()) continue;
    const auto [ei, fi] =
        statics[static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(statics.size()) - 1))];
    const FieldSpec& fs = ms.elements()[ei].fields[fi];
    MessageInstance skewed = inst;
    ta::Value& v = skewed.elements()[ei].fields[fi];
    switch (fs.type) {
      case FieldType::kBoolean: v = ta::Value{!v.as_bool()}; break;
      case FieldType::kFloat32:
      case FieldType::kFloat64: v = ta::Value{v.as_real() + 1.0}; break;
      case FieldType::kString: v = ta::Value{std::string{"zz"}}; break;
      default: v = ta::Value{v.as_int() == 0 ? std::int64_t{1} : std::int64_t{0}}; break;
    }
    expect_encode_equivalent(ms, skewed, "skewed static");

    // Cross-representation statics: an integer written as a real (or
    // vice versa) must not silently memcpy the template -- the bit-exact
    // static comparison demands the same variant alternative.
    MessageInstance crosskind = inst;
    ta::Value& w = crosskind.elements()[ei].fields[fi];
    if (fs.type != FieldType::kString && fs.type != FieldType::kBoolean) {
      w = w.is_real() ? ta::Value{static_cast<std::int64_t>(w.as_real())}
                      : ta::Value{static_cast<double>(w.as_int())};
      expect_encode_equivalent(ms, crosskind, "cross-kind static");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireLayoutEquivalence,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace decos::spec
