// Equivalence of the compiled transfer plans with the string-resolved
// forwarding semantics they replaced (DESIGN.md S23): for randomized
// link specs (element/field counts, state/event semantics, output
// paradigm, renaming tables), every message the compiled path constructs
// is byte-identical to what a name-keyed reference implementation of the
// dissect->repository->construct pipeline produces from the same input
// history, and the emitted span tree matches a golden fixture checked in
// under tests/property/golden/ (regenerate with DECOS_UPDATE_GOLDEN=1).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/virtual_gateway.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "spec/message.hpp"
#include "util/rng.hpp"

namespace decos::core {
namespace {

using namespace decos::literals;

// -- randomized deployment ---------------------------------------------------

struct GenConfig {
  int elements = 1;                   // convertible elements per message
  std::vector<int> fields;            // non-static fields per element
  bool event = false;                 // event vs state semantics end to end
  bool tt_output = false;             // TT (periodic) vs ET output port
  bool renamed = false;               // output element names differ (rename table)
  Duration output_period = 5_ms;      // TT output only
};

GenConfig random_config(Rng& rng) {
  GenConfig config;
  config.elements = 1 + static_cast<int>(rng.uniform_int(0, 2));
  for (int e = 0; e < config.elements; ++e)
    config.fields.push_back(1 + static_cast<int>(rng.uniform_int(0, 2)));
  config.event = rng.bernoulli(0.5);
  config.tt_output = rng.bernoulli(0.5);
  config.renamed = rng.bernoulli(0.5);
  config.output_period = Duration::milliseconds(static_cast<std::int64_t>(rng.uniform_int(2, 7)));
  return config;
}

/// Element name as spelled on the wire of one side. The repository
/// (canonical) name is always the input-side spelling.
std::string element_name(const GenConfig& config, int index, bool output_side) {
  return (output_side && config.renamed ? "out" : "el") + std::to_string(index);
}

spec::MessageSpec build_message(const GenConfig& config, const std::string& name,
                                bool output_side, int key_id) {
  spec::MessageSpec ms{name};
  spec::ElementSpec key;
  key.name = "name";
  key.key = true;
  key.fields.push_back(spec::FieldSpec{"id", spec::FieldType::kInt16, 0, ta::Value{key_id}});
  ms.add_element(std::move(key));
  for (int e = 0; e < config.elements; ++e) {
    spec::ElementSpec es;
    es.name = element_name(config, e, output_side);
    es.convertible = true;
    for (int f = 0; f < config.fields[static_cast<std::size_t>(e)]; ++f)
      es.fields.push_back(
          spec::FieldSpec{"f" + std::to_string(f), spec::FieldType::kInt32, 0, std::nullopt});
    ms.add_element(std::move(es));
  }
  return ms;
}

std::unique_ptr<VirtualGateway> build_gateway(const GenConfig& config) {
  spec::LinkSpec link_a{"dasA"};
  link_a.add_message(build_message(config, "msgIn", /*output_side=*/false, 1));
  spec::PortSpec in;
  in.message = "msgIn";
  in.direction = spec::DataDirection::kInput;
  in.semantics = config.event ? spec::InfoSemantics::kEvent : spec::InfoSemantics::kState;
  in.paradigm = spec::ControlParadigm::kEventTriggered;
  in.min_interarrival = 1_us;
  in.max_interarrival = Duration::seconds(3600);
  in.queue_capacity = 64;
  link_a.add_port(in);

  spec::LinkSpec link_b{"dasB"};
  link_b.add_message(build_message(config, "msgOut", /*output_side=*/true, 2));
  spec::PortSpec out;
  out.message = "msgOut";
  out.direction = spec::DataDirection::kOutput;
  out.semantics = config.event ? spec::InfoSemantics::kEvent : spec::InfoSemantics::kState;
  out.paradigm =
      config.tt_output ? spec::ControlParadigm::kTimeTriggered : spec::ControlParadigm::kEventTriggered;
  if (config.tt_output) out.period = config.output_period;
  out.queue_capacity = 64;
  link_b.add_port(out);

  GatewayConfig gw_config;
  gw_config.default_d_acc = 50_ms;
  gw_config.default_queue_capacity = 16;
  auto gw = std::make_unique<VirtualGateway>("equiv", std::move(link_a), std::move(link_b),
                                             gw_config);
  if (config.renamed)
    for (int e = 0; e < config.elements; ++e)
      gw->link_b().add_rename(element_name(config, e, true), element_name(config, e, false));
  gw->finalize();
  return gw;
}

// -- string-path reference model ---------------------------------------------
//
// A deliberately naive re-implementation of the pre-S23 pipeline: every
// lookup goes through std::string keys, every instance is a fresh
// name->value map. Mirrors dissection (store all convertible elements),
// the repository (state overwrite / bounded event queue with
// drop-newest overflow) and construction (per-field name lookup).
struct ReferenceModel {
  std::map<std::string, std::map<std::string, ta::Value>> state;
  std::map<std::string, std::deque<std::map<std::string, ta::Value>>> events;
  bool event_semantics = false;
  std::size_t queue_capacity = 16;

  void store(const spec::MessageSpec& ms, const spec::MessageInstance& inst) {
    for (std::size_t e = 0; e < ms.elements().size(); ++e) {
      const spec::ElementSpec& es = ms.elements()[e];
      if (!es.convertible) continue;
      std::map<std::string, ta::Value> fields;
      for (std::size_t f = 0; f < es.fields.size(); ++f)
        fields[es.fields[f].name] = inst.elements()[e].fields[f];
      if (event_semantics) {
        if (events[es.name].size() < queue_capacity) events[es.name].push_back(std::move(fields));
      } else {
        state[es.name] = std::move(fields);
      }
    }
  }

  /// Construct msgOut the string way: fresh instance, every field
  /// resolved by element/field name through the rename table.
  spec::MessageInstance construct(const GenConfig& config, const spec::MessageSpec& out_ms) {
    spec::MessageInstance expected = spec::make_instance(out_ms);
    for (std::size_t e = 0; e < out_ms.elements().size(); ++e) {
      const spec::ElementSpec& es = out_ms.elements()[e];
      if (!es.convertible) continue;
      // Rename resolution, the string way: link name -> repository name.
      std::string repo = es.name;
      if (config.renamed)
        for (int k = 0; k < config.elements; ++k)
          if (es.name == element_name(config, k, true)) repo = element_name(config, k, false);
      std::map<std::string, ta::Value> fields;
      if (event_semantics) {
        auto& queue = events[repo];
        if (!queue.empty()) {
          fields = std::move(queue.front());
          queue.pop_front();
        }
      } else {
        fields = state[repo];
      }
      for (std::size_t f = 0; f < es.fields.size(); ++f) {
        const auto it = fields.find(es.fields[f].name);
        if (it != fields.end()) expected.elements()[e].fields[f] = it->second;
      }
    }
    return expected;
  }
};

// -- golden serialization ----------------------------------------------------

std::uint64_t fnv1a(std::uint64_t hash, std::span<const std::byte> bytes) {
  for (const std::byte b : bytes) {
    hash ^= static_cast<std::uint64_t>(b);
    hash *= 1099511628211ull;
  }
  return hash;
}

std::string golden_path(std::uint64_t seed) {
  return std::string{DECOS_PROPERTY_GOLDEN_DIR} + "/plan_equiv_seed" + std::to_string(seed) +
         ".txt";
}

// -- the property ------------------------------------------------------------

class PlanEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PlanEquivalence, CompiledPlansMatchStringPathAndGoldenSpans) {
  const std::uint64_t seed = GetParam();
  Rng rng{seed};
  const GenConfig config = random_config(rng);
  auto gw = build_gateway(config);

  obs::MetricsRegistry metrics;
  obs::TraceCollector spans;
  spans.set_enabled(true);
  gw->bind_observability(metrics, spans);

  ReferenceModel reference;
  reference.event_semantics = config.event;
  reference.queue_capacity = 16;

  const spec::MessageSpec& in_ms = *gw->link_a().spec().message("msgIn");
  const spec::MessageSpec& out_ms = *gw->link_b().spec().message("msgOut");

  std::uint64_t payload_hash = 14695981039346656037ull;
  std::size_t emitted = 0;
  gw->link_b().set_emitter("msgOut", [&](const spec::MessageInstance& actual) {
    const spec::MessageInstance expected = reference.construct(config, out_ms);
    const auto actual_bytes = spec::encode(out_ms, actual);
    const auto expected_bytes = spec::encode(out_ms, expected);
    ASSERT_TRUE(actual_bytes.ok());
    ASSERT_TRUE(expected_bytes.ok());
    EXPECT_EQ(actual_bytes.value(), expected_bytes.value())
        << "emission " << emitted << " diverges from the string path (seed " << seed << ")";
    payload_hash = fnv1a(payload_hash, actual_bytes.value());
    ++emitted;
  });

  // Randomized traffic: ~30% of milliseconds carry an input; every
  // millisecond dispatches. The reference stores on exactly the inputs
  // the gateway admits (interarrival bounds are generous, so: all).
  Instant t = Instant::origin();
  for (int step = 0; step < 2000; ++step) {
    t += 1_ms;
    if (rng.bernoulli(0.3)) {
      spec::MessageInstance inst = spec::make_instance(in_ms);
      for (std::size_t e = 0; e < in_ms.elements().size(); ++e) {
        const spec::ElementSpec& es = in_ms.elements()[e];
        if (!es.convertible) continue;
        for (std::size_t f = 0; f < es.fields.size(); ++f)
          inst.elements()[e].fields[f] =
              ta::Value{rng.uniform_int(0, 1000000)};
      }
      inst.set_send_time(t);
      inst.set_trace(spans.new_trace(), 0);
      reference.store(in_ms, inst);
      gw->on_input(0, inst, t);
    }
    gw->dispatch(t);
  }
  ASSERT_GT(emitted, 0u) << "seed " << seed << " never constructed a message";

  // Canonical span-tree dump + payload hash, pinned by a golden fixture.
  std::ostringstream canon;
  canon << "seed " << seed << "\n"
        << "emitted " << emitted << "\n"
        << "payload_hash " << payload_hash << "\n"
        << "spans " << spans.spans().size() << "\n";
  for (const obs::Span& s : spans.spans()) {
    canon << "span trace=" << s.trace_id << " id=" << s.span_id << " parent=" << s.parent_id
          << " phase=" << obs::phase_name(s.phase) << " track=" << symbol_name(s.track)
          << " name=" << symbol_name(s.name) << " start=" << (s.start - Instant::origin()).ns()
          << " end=" << (s.end - Instant::origin()).ns() << "\n";
  }

  const std::string path = golden_path(seed);
  if (std::getenv("DECOS_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out{path};
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << canon.str();
    GTEST_SKIP() << "golden fixture regenerated: " << path;
  }
  std::ifstream in{path};
  ASSERT_TRUE(in.good()) << "missing golden fixture " << path
                         << " (regenerate with DECOS_UPDATE_GOLDEN=1)";
  std::stringstream golden;
  golden << in.rdbuf();
  EXPECT_EQ(canon.str(), golden.str())
      << "span tree / payload hash diverged from the checked-in fixture (seed " << seed << ")";
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlanEquivalence, ::testing::Values(11, 42, 77, 123, 1009));

}  // namespace
}  // namespace decos::core
