// Table-driven sweep over the guard expression language: one case per
// grammar rule / precedence interaction, evaluated against a fixed
// environment. Complements the unit tests with broad, cheap coverage.
#include <gtest/gtest.h>

#include "ta/expr.hpp"

namespace decos::ta {
namespace {

class FixedEnv final : public Environment {
 public:
  Value get(const std::string& name) const override {
    if (name == "a") return Value{2};
    if (name == "b") return Value{3};
    if (name == "c") return Value{10};
    if (name == "x") return Value{Duration::milliseconds(7)};
    if (name == "f") return Value{2.5};
    if (name == "s") return Value{std::string{"hello"}};
    if (name == "flag") return Value{true};
    throw SpecError("unknown: " + name);
  }
  void set(const std::string&, const Value&) override {}
  Value call(const std::string& name, const std::vector<Value>& args) override {
    if (name == "min") return args[0].as_real() <= args[1].as_real() ? args[0] : args[1];
    if (name == "max") return args[0].as_real() >= args[1].as_real() ? args[0] : args[1];
    if (name == "abs")
      return args[0].is_real() ? Value{std::abs(args[0].as_real())}
                               : Value{std::abs(args[0].as_int())};
    throw SpecError("unknown fn: " + name);
  }
};

struct ExprCase {
  const char* text;
  double expected;  // numeric result (bools as 0/1)
};

class ExprTable : public ::testing::TestWithParam<ExprCase> {};

TEST_P(ExprTable, EvaluatesTo) {
  const auto [text, expected] = GetParam();
  auto e = parse_expression(text);
  ASSERT_TRUE(e.ok()) << text << ": " << e.error().to_string();
  FixedEnv env;
  const Value v = e.value()->evaluate(env);
  const double actual = v.is_bool() ? (v.as_bool() ? 1.0 : 0.0) : v.as_real();
  EXPECT_DOUBLE_EQ(actual, expected) << text;

  // Round-trip through to_string: same value.
  auto e2 = parse_expression(e.value()->to_string());
  ASSERT_TRUE(e2.ok()) << e.value()->to_string();
  const Value v2 = e2.value()->evaluate(env);
  const double actual2 = v2.is_bool() ? (v2.as_bool() ? 1.0 : 0.0) : v2.as_real();
  EXPECT_DOUBLE_EQ(actual2, expected) << "round-trip of " << text;
}

INSTANTIATE_TEST_SUITE_P(
    Precedence, ExprTable,
    ::testing::Values(
        ExprCase{"a + b * c", 32.0},            // * over +
        ExprCase{"(a + b) * c", 50.0},
        ExprCase{"c - b - a", 5.0},             // left assoc
        ExprCase{"c / b / a", 1.0},             // integer division, left assoc
        ExprCase{"c % b % a", 1.0},
        ExprCase{"-a + b", 1.0},                // unary minus binds tight
        ExprCase{"-a * b", -6.0},
        ExprCase{"a + b < c", 1.0},             // + over <
        ExprCase{"a < b && b < c", 1.0},        // cmp over &&
        ExprCase{"flag || a > c && a > c", 1.0},// && over ||
        ExprCase{"!flag || flag", 1.0},
        ExprCase{"!(a < b)", 0.0},
        ExprCase{"a < b, c > b", 1.0},          // ',' conjunction
        ExprCase{"a < b, c < b", 0.0},
        ExprCase{"min(a, b) + max(a, b)", 5.0},
        ExprCase{"abs(a - c)", 8.0},
        ExprCase{"min(a + b, c - b) * a", 10.0},
        ExprCase{"f * a", 5.0},                 // real promotion
        ExprCase{"c / 4.0", 2.5},
        ExprCase{"x > 5ms", 1.0},               // duration literal vs clock
        ExprCase{"x <= 7ms", 1.0},
        ExprCase{"x + 3ms == 10ms", 1.0},
        ExprCase{"2us * 1000 == 2ms", 1.0},
        ExprCase{"s == \"hello\"", 1.0},
        ExprCase{"s != \"world\"", 1.0},
        ExprCase{"a = 2", 1.0},                 // paper-style '=' equality
        ExprCase{"true && false || true", 1.0},
        ExprCase{"a * a * a", 8.0},
        ExprCase{"((a))", 2.0}));

}  // namespace
}  // namespace decos::ta
