// Lockstep property of batched gateway dispatch (S29): the precompiled
// drain through GatewayLink::input_bindings() is an *optimization*, not
// a semantics change. A seeded mini-cluster -- drifting clocks, faults,
// randomized offsets -- run with batched dispatch must produce every
// observable artifact byte-for-byte identical to the reference
// per-instance path: span trees, metrics fingerprints, telemetry,
// dispatch and forward counts. Checked at --sim-jobs 1 and 8 so the
// equivalence also composes with the partitioned kernel (S28).
#include <gtest/gtest.h>

#include <cstddef>

#include "mini_cluster.hpp"

namespace decos {
namespace {

using minicluster::RunArtifacts;
using minicluster::run_mini_cluster;

core::GatewayConfig batched(bool on) {
  core::GatewayConfig config;
  config.batched_dispatch = on;
  return config;
}

class BatchedDispatchLockstep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BatchedDispatchLockstep, ArtifactsIdenticalToPerInstanceDispatch) {
  const RunArtifacts reference = run_mini_cluster(GetParam(), 1, batched(false));
  ASSERT_GT(reference.forwarded, 0u) << "mini cluster never forwarded a message";
  ASSERT_FALSE(reference.span_tree.empty());
  ASSERT_FALSE(reference.telemetry.empty());

  for (const std::size_t sim_jobs : {std::size_t{1}, std::size_t{8}}) {
    const RunArtifacts run = run_mini_cluster(GetParam(), sim_jobs, batched(true));
    EXPECT_EQ(run.dispatched, reference.dispatched) << "sim-jobs " << sim_jobs;
    EXPECT_EQ(run.forwarded, reference.forwarded) << "sim-jobs " << sim_jobs;
    EXPECT_EQ(run.span_tree, reference.span_tree) << "sim-jobs " << sim_jobs;
    EXPECT_EQ(run.metrics_fingerprint, reference.metrics_fingerprint)
        << "sim-jobs " << sim_jobs;
    EXPECT_EQ(run.telemetry, reference.telemetry) << "sim-jobs " << sim_jobs;
  }
}

TEST_P(BatchedDispatchLockstep, ReferencePathIsDeterministicToo) {
  // Baseline sanity: the reference path itself is seed-deterministic, so
  // a pass above cannot come from two equal-but-wrong runs.
  const RunArtifacts a = run_mini_cluster(GetParam(), 1, batched(false));
  const RunArtifacts b = run_mini_cluster(GetParam(), 1, batched(false));
  EXPECT_EQ(a.span_tree, b.span_tree);
  EXPECT_EQ(a.metrics_fingerprint, b.metrics_fingerprint);
  EXPECT_EQ(a.telemetry, b.telemetry);
  EXPECT_EQ(a.dispatched, b.dispatched);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchedDispatchLockstep, ::testing::Values(7, 99, 2026));

}  // namespace
}  // namespace decos
