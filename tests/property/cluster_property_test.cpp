// Parameterized sweeps over cluster-level properties:
//  * the encapsulation schedule builder always produces valid schedules
//    whose per-VN bandwidth equals the request;
//  * clock synchronization holds the precision bound across drift rates.
#include <gtest/gtest.h>

#include <memory>

#include "services/clock_sync.hpp"
#include "util/rng.hpp"
#include "vn/encapsulation.hpp"

namespace decos {
namespace {

using namespace decos::literals;

class ScheduleBuilderProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ScheduleBuilderProperty, RandomAllocationsAlwaysValid) {
  Rng rng{GetParam()};
  for (int iteration = 0; iteration < 100; ++iteration) {
    const std::size_t cluster = static_cast<std::size_t>(rng.uniform_int(1, 8));
    const std::size_t vns = static_cast<std::size_t>(rng.uniform_int(0, 4));
    std::vector<vn::VnAllocation> allocations;
    for (std::size_t v = 0; v < vns; ++v) {
      vn::VnAllocation a;
      a.vn = static_cast<tt::VnId>(v + 1);
      a.das = "das" + std::to_string(v);
      a.payload_bytes = static_cast<std::size_t>(rng.uniform_int(4, 64));
      const std::int64_t slots = rng.uniform_int(1, 5);
      for (std::int64_t s = 0; s < slots; ++s)
        a.sender_slots.push_back(
            static_cast<tt::NodeId>(rng.uniform_int(0, static_cast<std::int64_t>(cluster) - 1)));
      allocations.push_back(std::move(a));
    }
    auto schedule = vn::EncapsulationService::build_schedule(10_ms, cluster, allocations);
    ASSERT_TRUE(schedule.ok()) << schedule.error().to_string();
    ASSERT_TRUE(schedule.value().validate().ok());
    for (const auto& a : allocations) {
      EXPECT_EQ(schedule.value().bytes_per_round(a.vn),
                a.payload_bytes * a.sender_slots.size());
      EXPECT_EQ(schedule.value().slots_of_vn(a.vn).size(), a.sender_slots.size());
    }
    // Core slots always present, one per node.
    EXPECT_EQ(schedule.value().slots_of_vn(tt::kCoreVn).size(), cluster);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScheduleBuilderProperty, ::testing::Values(7, 13, 99));

class ClockSyncSweep : public ::testing::TestWithParam<double> {};

TEST_P(ClockSyncSweep, PrecisionScalesWithDrift) {
  const double drift_ppm = GetParam();
  sim::Simulator sim;
  tt::TtBus bus{sim, tt::make_uniform_schedule(10_ms, 4, 1, 16)};
  std::vector<std::unique_ptr<tt::Controller>> controllers;
  std::vector<std::unique_ptr<services::ClockSync>> syncs;
  const double signs[] = {1.0, -1.0, 0.5, -0.5};
  for (tt::NodeId i = 0; i < 4; ++i) {
    controllers.push_back(std::make_unique<tt::Controller>(
        sim, bus, i, sim::DriftingClock{drift_ppm * signs[i]}));
    syncs.push_back(std::make_unique<services::ClockSync>(*controllers.back()));
  }
  for (auto& c : controllers) c->start();
  sim.run_until(Instant::origin() + 1_s);

  Duration lo = Duration::max();
  Duration hi = -Duration::max();
  for (const auto& c : controllers) {
    const Duration offset = c->clock().read(sim.now()) - sim.now();
    lo = std::min(lo, offset);
    hi = std::max(hi, offset);
  }
  // Theory: precision ~ 2 * relative drift * resync interval + reading
  // error. Allow 4x margin on the drift term plus a 2us floor.
  const auto bound = Duration::nanoseconds(
      static_cast<std::int64_t>(4 * 2 * drift_ppm * 1e-6 * 10e6) + 2000);
  EXPECT_LT(hi - lo, bound) << "drift " << drift_ppm << " ppm";
}

INSTANTIATE_TEST_SUITE_P(DriftPpm, ClockSyncSweep,
                         ::testing::Values(1.0, 10.0, 50.0, 100.0, 300.0));

}  // namespace
}  // namespace decos
