// Runtime-vs-simulator equivalence (S30 acceptance): the same frame
// byte sequence, delivered at the same instants, must leave the live
// runtime's gateway in exactly the state the simulated path produces --
// identical repository contents (values, versions, queue depths,
// request flags) and byte-identical egress frame sequences.
//
// Path A: rt::GatewayRuntime under a ManualClock, frames pushed through
// an SPSC ring endpoint, egress collected from the ring.
// Path B: sim::Simulator scheduling the decoded instances as port
// deposits at the same instants, gateway.start() driving the same
// dispatch grid, egress collected through a capturing emitter.
//
// Frame instants are kept off the dispatch grid so the deposit/dispatch
// interleaving is unambiguous in both engines; a seeded LCG randomises
// instants and values across semantics/interaction shapes.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "../rt/rt_fixture.hpp"
#include "core/virtual_gateway.hpp"
#include "rt/gateway_runtime.hpp"
#include "sim/simulator.hpp"

namespace decos {
namespace {

using rt_testing::RtGatewayOptions;
using rt_testing::encode_frame;
using rt_testing::make_rt_gateway;

struct ScheduledFrame {
  Instant at;
  std::vector<std::byte> bytes;
};

/// Deterministic frame schedule: `count` frames with LCG-jittered
/// inter-arrival times, never landing on the 1 ms dispatch grid.
std::vector<ScheduledFrame> make_schedule(const spec::MessageSpec& message, std::uint64_t seed,
                                          int count) {
  std::vector<ScheduledFrame> frames;
  std::uint64_t state = seed * 6364136223846793005ull + 1442695040888963407ull;
  const auto next = [&state] {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 33;
  };
  std::int64_t t_ns = 0;
  for (int i = 0; i < count; ++i) {
    t_ns += 20'000 + static_cast<std::int64_t>(next() % 400'000);  // 20 us .. 420 us gaps
    if (t_ns % 1'000'000 == 0) t_ns += 7;  // stay off the dispatch grid
    const Instant at = Instant::from_ns(t_ns);
    frames.push_back({at, encode_frame(message, static_cast<std::int32_t>(next() % 100'000), at)});
  }
  return frames;
}

/// Everything observable we require to be identical across the paths.
struct Observed {
  std::vector<std::string> repo_names;
  std::vector<std::uint64_t> versions;
  std::vector<std::size_t> depths;
  std::vector<bool> requests;
  std::vector<std::vector<std::pair<Symbol, ta::Value>>> values;
  std::vector<Instant> observed_at;
  std::vector<std::vector<std::byte>> egress;
  std::uint64_t admitted = 0;
  std::uint64_t constructed = 0;

  bool operator==(const Observed& o) const = default;
};

/// Field-by-field comparison so a mismatch names the diverging facet
/// instead of dumping raw object bytes.
void expect_equal(const Observed& rt_run, const Observed& sim_run) {
  EXPECT_EQ(rt_run.repo_names, sim_run.repo_names);
  EXPECT_EQ(rt_run.versions, sim_run.versions) << "repository versions diverge";
  EXPECT_EQ(rt_run.depths, sim_run.depths) << "queue depths diverge";
  EXPECT_EQ(rt_run.requests, sim_run.requests) << "request flags diverge";
  ASSERT_EQ(rt_run.values.size(), sim_run.values.size());
  for (std::size_t i = 0; i < rt_run.values.size(); ++i) {
    EXPECT_TRUE(rt_run.values[i] == sim_run.values[i]) << "element " << i << " fields diverge";
    EXPECT_EQ(rt_run.observed_at[i].ns(), sim_run.observed_at[i].ns())
        << "element " << i << " observed_at diverges";
  }
  ASSERT_EQ(rt_run.egress.size(), sim_run.egress.size()) << "egress frame counts diverge";
  for (std::size_t i = 0; i < rt_run.egress.size(); ++i)
    EXPECT_EQ(rt_run.egress[i], sim_run.egress[i]) << "egress frame " << i << " bytes diverge";
  EXPECT_EQ(rt_run.admitted, sim_run.admitted) << "admission counts diverge";
  EXPECT_EQ(rt_run.constructed, sim_run.constructed) << "construction counts diverge";
}

Observed observe(core::VirtualGateway& gw, std::vector<std::vector<std::byte>> egress) {
  Observed out;
  core::Repository& repo = gw.repository();
  for (core::ElementId id = 0; id < repo.element_count(); ++id) {
    out.repo_names.push_back(repo.decl_of(id).name);
    out.versions.push_back(repo.version(id));
    out.depths.push_back(repo.queue_depth(id));
    out.requests.push_back(repo.requested(id));
    if (const core::ElementInstance* inst = repo.peek(id)) {
      out.values.push_back(inst->fields);
      out.observed_at.push_back(inst->observed_at);
    } else {
      out.values.emplace_back();
      out.observed_at.push_back(Instant::origin());
    }
  }
  out.egress = std::move(egress);
  out.admitted = gw.stats().messages_admitted;
  out.constructed = gw.stats().messages_constructed;
  return out;
}

constexpr Duration kHorizon = Duration::milliseconds(30);

/// Path A: the live runtime fed through a ring endpoint.
Observed run_runtime(const RtGatewayOptions& options, const std::vector<ScheduledFrame>& frames) {
  auto gw = make_rt_gateway(options);
  rt::ManualClock clock;
  rt::GatewayRuntime runtime{*gw, clock};
  rt::SpscRing a_in{1 << 18}, a_out{1 << 18}, b_in{1 << 18}, b_out{1 << 18};
  rt::RingEndpoint side_a{a_in, a_out}, side_b{b_in, b_out};
  runtime.attach(0, side_a);
  runtime.attach(1, side_b);
  runtime.start();

  // Faithful driving: poll at every dispatch-grid instant that elapses
  // before a frame arrives, exactly as a live poll loop would observe
  // them, so overdue dispatches never see data from the future.
  const auto poll_grid_until = [&](Instant until) {
    while (runtime.next_dispatch() < until) {
      clock.set(runtime.next_dispatch());
      runtime.poll_once(clock.now());
    }
  };
  for (const ScheduledFrame& frame : frames) {
    poll_grid_until(frame.at);
    clock.set(frame.at);
    EXPECT_TRUE(a_in.try_push(frame.bytes));
    runtime.poll_once(clock.now());
  }
  poll_grid_until(Instant::origin() + kHorizon);
  clock.set(Instant::origin() + kHorizon);
  runtime.poll_once(clock.now());  // run out the dispatch grid

  std::vector<std::vector<std::byte>> egress;
  b_out.consume(1 << 20, [&](std::span<const std::byte> payload) {
    egress.emplace_back(payload.begin(), payload.end());
  });
  return observe(*gw, std::move(egress));
}

/// Path B: the simulated stack, deposits scheduled on the event wheel.
Observed run_simulator(const RtGatewayOptions& options,
                       const std::vector<ScheduledFrame>& frames) {
  sim::Simulator sim;  // must outlive the gateway's periodic dispatch task
  auto gw = make_rt_gateway(options);

  std::vector<std::vector<std::byte>> egress;
  std::vector<std::byte> scratch;
  const spec::MessageSpec& msg_b = *gw->link_b().spec().message("msgB");
  gw->link_b().set_emitter("msgB", [&](const spec::MessageInstance& instance) {
    ASSERT_TRUE(spec::encode_into(msg_b, instance, scratch).ok());
    egress.push_back(scratch);
  });

  const spec::MessageSpec& msg_a = *gw->link_a().spec().message("msgA");
  vn::Port* in_port = gw->link_a().port("msgA");
  std::vector<spec::MessageInstance> decoded;
  decoded.reserve(frames.size());
  for (const ScheduledFrame& frame : frames) {
    spec::MessageInstance instance = spec::decode(msg_a, frame.bytes).value();
    instance.set_send_time(frame.at);
    decoded.push_back(std::move(instance));
    const spec::MessageInstance* inst = &decoded.back();
    const Instant at = frame.at;
    sim.schedule_at(at, [in_port, inst, at] { in_port->deposit(*inst, at); });
  }
  gw->start(sim);
  sim.run_until(Instant::origin() + kHorizon);
  return observe(*gw, std::move(egress));
}

class RtEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RtEquivalence, EventPushFlow) {
  RtGatewayOptions options;  // event, push
  auto gw = make_rt_gateway(options);
  const auto frames = make_schedule(*gw->link_a().spec().message("msgA"), GetParam(), 64);
  const Observed rt_run = run_runtime(options, frames);
  const Observed sim_run = run_simulator(options, frames);
  ASSERT_GT(sim_run.admitted, 0u);
  ASSERT_FALSE(sim_run.egress.empty());
  expect_equal(rt_run, sim_run);
}

TEST_P(RtEquivalence, EventPullFlowWithOverflow) {
  RtGatewayOptions options;
  options.interaction = spec::Interaction::kPull;
  options.queue_capacity = 4;  // forces drop-newest on both paths
  auto gw = make_rt_gateway(options);
  const auto frames = make_schedule(*gw->link_a().spec().message("msgA"), GetParam(), 64);
  const Observed rt_run = run_runtime(options, frames);
  const Observed sim_run = run_simulator(options, frames);
  ASSERT_GT(sim_run.admitted, 0u);
  expect_equal(rt_run, sim_run);
}

TEST_P(RtEquivalence, StatePullFlow) {
  RtGatewayOptions options;
  options.semantics = spec::InfoSemantics::kState;
  options.interaction = spec::Interaction::kPull;
  auto gw = make_rt_gateway(options);
  const auto frames = make_schedule(*gw->link_a().spec().message("msgA"), GetParam(), 64);
  const Observed rt_run = run_runtime(options, frames);
  const Observed sim_run = run_simulator(options, frames);
  ASSERT_GT(sim_run.admitted, 0u);
  ASSERT_FALSE(sim_run.egress.empty());
  expect_equal(rt_run, sim_run);
}

TEST_P(RtEquivalence, TemporalFilteringMatches) {
  RtGatewayOptions options;
  options.min_interarrival = Duration::microseconds(150);  // some gaps violate tmin
  auto gw = make_rt_gateway(options);
  const auto frames = make_schedule(*gw->link_a().spec().message("msgA"), GetParam(), 64);
  const Observed rt_run = run_runtime(options, frames);
  const Observed sim_run = run_simulator(options, frames);
  ASSERT_GT(sim_run.admitted, 0u);
  expect_equal(rt_run, sim_run);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RtEquivalence, ::testing::Values(1, 42, 7777));

}  // namespace
}  // namespace decos
