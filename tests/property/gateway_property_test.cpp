// End-to-end gateway conservation properties under randomized traffic:
//  * event elements cross the gateway exactly once, in order, and are
//    never invented (conservation: in == out + queued + dropped);
//  * state elements: every forwarded value was actually produced, and
//    values never go backwards (the repository is overwrite-in-place);
//  * determinism: the same seed yields bit-identical forwarding.
#include <gtest/gtest.h>

#include "../helpers.hpp"
#include "core/virtual_gateway.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace decos::core {
namespace {

using decos::testing::make_state_instance;
using decos::testing::state_message;
using namespace decos::literals;

std::unique_ptr<VirtualGateway> make_event_gateway(std::size_t queue_capacity) {
  spec::LinkSpec link_a{"dasA"};
  link_a.add_message(state_message("msgA", "burst", 1));
  spec::PortSpec in;
  in.message = "msgA";
  in.direction = spec::DataDirection::kInput;
  in.semantics = spec::InfoSemantics::kEvent;
  in.paradigm = spec::ControlParadigm::kEventTriggered;
  in.queue_capacity = 64;
  link_a.add_port(in);

  spec::LinkSpec link_b{"dasB"};
  link_b.add_message(state_message("msgB", "burst", 2));
  spec::PortSpec out;
  out.message = "msgB";
  out.direction = spec::DataDirection::kOutput;
  out.semantics = spec::InfoSemantics::kEvent;
  out.paradigm = spec::ControlParadigm::kTimeTriggered;
  out.period = 5_ms;
  out.queue_capacity = 64;
  link_b.add_port(out);

  GatewayConfig config;
  config.default_queue_capacity = queue_capacity;
  auto gw =
      std::make_unique<VirtualGateway>("prop", std::move(link_a), std::move(link_b), config);
  gw->finalize();
  return gw;
}

struct EventRunResult {
  std::vector<std::int64_t> forwarded;
  std::uint64_t sent = 0;
  std::uint64_t dropped = 0;
  std::uint64_t queued_at_end = 0;
};

EventRunResult run_event_traffic(std::uint64_t seed, std::size_t queue_capacity) {
  auto gw = make_event_gateway(queue_capacity);
  EventRunResult result;
  gw->link_b().set_emitter("msgB", [&](const spec::MessageInstance& inst) {
    result.forwarded.push_back(inst.elements()[1].fields[0].as_int());
  });

  Rng rng{seed};
  sim::Simulator sim;
  const spec::MessageSpec& ms = *gw->link_a().spec().message("msgA");
  Instant t = Instant::origin();
  std::int64_t sequence = 0;
  for (int i = 0; i < 1000; ++i) {
    t += rng.exponential_duration(4_ms);
    const std::int64_t value = sequence++;
    sim.schedule_at(t, [&gw, &ms, &sim, value] {
      gw->on_input(0, make_state_instance(ms, static_cast<int>(value), sim.now()), sim.now());
    });
  }
  for (Instant tick = Instant::origin(); tick <= t + 5_ms; tick += 1_ms) {
    sim.schedule_at(tick, [&gw, &sim] { gw->dispatch(sim.now()); });
  }
  sim.run_until(t + 10_ms);

  result.sent = static_cast<std::uint64_t>(sequence);
  result.dropped = gw->stats().element_overflows;
  result.queued_at_end = gw->repository().queue_depth("burst");
  return result;
}

class GatewayConservation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GatewayConservation, EventElementsExactlyOnceInOrder) {
  for (const std::size_t capacity : {4u, 16u, 64u}) {
    const EventRunResult r = run_event_traffic(GetParam(), capacity);
    // Conservation: every sent instance is forwarded, still queued, or
    // accounted as an overflow drop.
    EXPECT_EQ(r.forwarded.size() + r.queued_at_end + r.dropped, r.sent)
        << "capacity " << capacity;
    // Order preserved, no duplicates, no invented values.
    for (std::size_t i = 1; i < r.forwarded.size(); ++i)
      EXPECT_LT(r.forwarded[i - 1], r.forwarded[i]);
    for (const std::int64_t v : r.forwarded) {
      EXPECT_GE(v, 0);
      EXPECT_LT(v, static_cast<std::int64_t>(r.sent));
    }
  }
}

TEST_P(GatewayConservation, DeterministicForSameSeed) {
  const EventRunResult a = run_event_traffic(GetParam(), 16);
  const EventRunResult b = run_event_traffic(GetParam(), 16);
  EXPECT_EQ(a.forwarded, b.forwarded);
  EXPECT_EQ(a.dropped, b.dropped);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GatewayConservation, ::testing::Values(3, 17, 29, 101));

class StateMonotonicity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StateMonotonicity, ForwardedStateValuesWereProducedAndFresh) {
  spec::LinkSpec link_a{"dasA"};
  link_a.add_message(state_message("msgA", "img", 1));
  spec::PortSpec in;
  in.message = "msgA";
  in.direction = spec::DataDirection::kInput;
  in.semantics = spec::InfoSemantics::kState;
  in.period = 10_ms;
  in.min_interarrival = 1_us;
  in.max_interarrival = Duration::seconds(3600);
  link_a.add_port(in);
  spec::LinkSpec link_b{"dasB"};
  link_b.add_message(state_message("msgB", "img", 2));
  spec::PortSpec out;
  out.message = "msgB";
  out.direction = spec::DataDirection::kOutput;
  out.semantics = spec::InfoSemantics::kState;
  out.paradigm = spec::ControlParadigm::kTimeTriggered;
  out.period = 7_ms;
  link_b.add_port(out);

  GatewayConfig config;
  config.default_d_acc = 25_ms;
  VirtualGateway gw{"prop", std::move(link_a), std::move(link_b), config};
  gw.finalize();

  std::vector<std::int64_t> forwarded;
  gw.link_b().set_emitter("msgB", [&](const spec::MessageInstance& inst) {
    forwarded.push_back(inst.elements()[1].fields[0].as_int());
  });

  Rng rng{GetParam()};
  const spec::MessageSpec& ms = *gw.link_a().spec().message("msgA");
  Instant t = Instant::origin();
  std::int64_t produced = 0;
  for (int step = 0; step < 3000; ++step) {
    t += Duration::milliseconds(1);
    if (rng.bernoulli(0.1)) gw.on_input(0, make_state_instance(ms, ++produced, t), t);
    gw.dispatch(t);
  }
  ASSERT_FALSE(forwarded.empty());
  for (std::size_t i = 0; i < forwarded.size(); ++i) {
    EXPECT_GE(forwarded[i], 1);
    EXPECT_LE(forwarded[i], produced);
    if (i > 0) EXPECT_GE(forwarded[i], forwarded[i - 1]);  // monotone: freshest wins
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StateMonotonicity, ::testing::Values(5, 23, 71));

}  // namespace
}  // namespace decos::core
