// Property: encode/decode is a lossless round trip for arbitrary
// generated message specs and in-range instances.
#include <gtest/gtest.h>

#include "spec/message.hpp"
#include "util/rng.hpp"

namespace decos::spec {
namespace {

/// Generate a random but valid MessageSpec (1-4 elements, 1-5 fields
/// each, all field types reachable, one static key element).
MessageSpec random_spec(Rng& rng, int id) {
  MessageSpec ms{"m" + std::to_string(id)};
  ElementSpec key;
  key.name = "name";
  key.key = true;
  key.fields.push_back(FieldSpec{"id", FieldType::kUInt16, 0, ta::Value{id}});
  ms.add_element(std::move(key));

  const FieldType kTypes[] = {
      FieldType::kBoolean, FieldType::kInt8,    FieldType::kInt16,   FieldType::kInt32,
      FieldType::kInt64,   FieldType::kUInt8,   FieldType::kUInt16,  FieldType::kUInt32,
      FieldType::kFloat32, FieldType::kFloat64, FieldType::kTimestamp, FieldType::kString,
  };
  const std::int64_t elements = rng.uniform_int(1, 3);
  for (std::int64_t e = 0; e < elements; ++e) {
    ElementSpec es;
    es.name = "e" + std::to_string(e);
    es.convertible = rng.bernoulli(0.5);
    const std::int64_t fields = rng.uniform_int(1, 5);
    for (std::int64_t f = 0; f < fields; ++f) {
      FieldSpec fs;
      fs.name = "f" + std::to_string(f);
      fs.type = kTypes[rng.uniform_int(0, 11)];
      if (fs.type == FieldType::kString)
        fs.string_length = static_cast<std::size_t>(rng.uniform_int(1, 12));
      es.fields.push_back(std::move(fs));
    }
    ms.add_element(std::move(es));
  }
  return ms;
}

/// Fill an instance with random in-range values.
void randomize(MessageInstance& inst, const MessageSpec& ms, Rng& rng) {
  for (std::size_t ei = 0; ei < ms.elements().size(); ++ei) {
    const ElementSpec& es = ms.elements()[ei];
    for (std::size_t fi = 0; fi < es.fields.size(); ++fi) {
      const FieldSpec& fs = es.fields[fi];
      if (fs.is_static()) continue;
      ta::Value& v = inst.elements()[ei].fields[fi];
      switch (fs.type) {
        case FieldType::kBoolean: v = ta::Value{rng.bernoulli(0.5)}; break;
        case FieldType::kInt8: v = ta::Value{rng.uniform_int(-128, 127)}; break;
        case FieldType::kInt16: v = ta::Value{rng.uniform_int(-32768, 32767)}; break;
        case FieldType::kInt32: v = ta::Value{rng.uniform_int(-2147483648LL, 2147483647LL)}; break;
        case FieldType::kInt64: v = ta::Value{static_cast<std::int64_t>(rng.next_u64())}; break;
        case FieldType::kUInt8: v = ta::Value{rng.uniform_int(0, 255)}; break;
        case FieldType::kUInt16: v = ta::Value{rng.uniform_int(0, 65535)}; break;
        case FieldType::kUInt32: v = ta::Value{rng.uniform_int(0, 4294967295LL)}; break;
        case FieldType::kUInt64: v = ta::Value{rng.uniform_int(0, 1LL << 62)}; break;
        case FieldType::kFloat32: v = ta::Value{static_cast<double>(static_cast<float>(rng.uniform(-1e6, 1e6)))}; break;
        case FieldType::kFloat64: v = ta::Value{rng.uniform(-1e12, 1e12)}; break;
        case FieldType::kTimestamp: v = ta::Value{Instant::from_ns(rng.uniform_int(0, 1LL << 50))}; break;
        case FieldType::kString: {
          std::string s;
          const std::int64_t len = rng.uniform_int(0, static_cast<std::int64_t>(fs.string_length));
          for (std::int64_t i = 0; i < len; ++i)
            s.push_back(static_cast<char>(rng.uniform_int('a', 'z')));
          v = ta::Value{std::move(s)};
          break;
        }
      }
    }
  }
}

class CodecRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CodecRoundTrip, EncodeDecodeIsIdentity) {
  Rng rng{GetParam()};
  for (int iteration = 0; iteration < 50; ++iteration) {
    const MessageSpec ms = random_spec(rng, static_cast<int>(rng.uniform_int(0, 1000)));
    ASSERT_TRUE(ms.validate().ok());
    MessageInstance inst = make_instance(ms);
    randomize(inst, ms, rng);

    auto bytes = encode(ms, inst);
    ASSERT_TRUE(bytes.ok()) << bytes.error().to_string();
    ASSERT_EQ(bytes.value().size(), ms.wire_size());
    ASSERT_TRUE(matches_key(ms, bytes.value()));

    auto back = decode(ms, bytes.value());
    ASSERT_TRUE(back.ok());
    for (std::size_t ei = 0; ei < ms.elements().size(); ++ei) {
      const ElementSpec& es = ms.elements()[ei];
      for (std::size_t fi = 0; fi < es.fields.size(); ++fi) {
        const ta::Value& sent = inst.elements()[ei].fields[fi];
        const ta::Value& got = back.value().elements()[ei].fields[fi];
        if (es.fields[fi].type == FieldType::kFloat32) {
          EXPECT_FLOAT_EQ(static_cast<float>(sent.as_real()), static_cast<float>(got.as_real()));
        } else {
          EXPECT_TRUE(sent == got)
              << es.name << "." << es.fields[fi].name << ": " << sent.to_string() << " vs "
              << got.to_string();
        }
      }
    }

    // Re-encoding the decoded instance yields identical bytes.
    auto bytes2 = encode(ms, back.value());
    ASSERT_TRUE(bytes2.ok());
    EXPECT_EQ(bytes.value(), bytes2.value());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecRoundTrip,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

}  // namespace
}  // namespace decos::spec
