// Event-triggered VN arbitration properties under randomized traffic:
// per node, pending messages leave in strict (priority, FIFO) order;
// nothing is lost below the pending capacity; everything is delivered
// exactly once.
#include <gtest/gtest.h>

#include <map>

#include "../helpers.hpp"
#include "util/rng.hpp"
#include "vn/et_vn.hpp"
#include "../vn/vn_fixture.hpp"

namespace decos::vn {
namespace {

using decos::testing::VnCluster;
using decos::testing::input_event_port;
using decos::testing::state_message;
using namespace decos::literals;

class EtArbitration : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EtArbitration, PriorityOrderExactlyOnceNoLossBelowCapacity) {
  Rng rng{GetParam()};
  VnCluster cluster{2, {VnAllocation{1, "d", 32, {0, 0}}}};  // 2 slots/round for node 0
  EtVirtualNetwork vn{"v", 1, 512};

  constexpr int kMessageTypes = 4;
  for (int m = 0; m < kMessageTypes; ++m) {
    vn.register_message(state_message("msg" + std::to_string(m), "e" + std::to_string(m), m + 1));
    vn.set_priority("msg" + std::to_string(m), m);  // msg0 highest
  }
  vn.attach_node(cluster.node(0), cluster.vn_slots_of(1, 0));

  // Receiver records (priority, sequence-within-type) in delivery order.
  struct Delivery {
    int priority;
    std::int64_t seq;
  };
  std::vector<Delivery> deliveries;
  std::vector<Port> ports;
  ports.reserve(kMessageTypes);
  for (int m = 0; m < kMessageTypes; ++m) ports.emplace_back(input_event_port("msg" + std::to_string(m), 512));
  for (int m = 0; m < kMessageTypes; ++m) {
    vn.attach_receiver(cluster.node(1), ports[static_cast<std::size_t>(m)]);
    ports[static_cast<std::size_t>(m)].set_notify([&deliveries, m](Port& p) {
      if (auto inst = p.read()) {
        deliveries.push_back({m, inst->elements()[1].fields[0].as_int()});
      }
    });
  }

  // Random bursts, total well below the pending capacity per drain cycle.
  std::map<int, std::int64_t> sent_per_type;
  int total_sent = 0;
  for (int burst = 0; burst < 40; ++burst) {
    const Instant when = Instant::origin() + Duration::milliseconds(burst * 25);
    const int count = static_cast<int>(rng.uniform_int(1, 4));
    for (int k = 0; k < count; ++k) {
      const int type = static_cast<int>(rng.uniform_int(0, kMessageTypes - 1));
      const std::int64_t seq = sent_per_type[type]++;
      ++total_sent;
      cluster.sim.schedule_at(when, [&vn, &cluster, type, seq] {
        auto inst = decos::testing::make_state_instance(
            *vn.message_spec("msg" + std::to_string(type)), static_cast<int>(seq),
            cluster.sim.now());
        ASSERT_TRUE(vn.send(cluster.node(0), inst));
      });
    }
  }
  cluster.start();
  cluster.sim.run_until(Instant::origin() + 3_s);

  // Exactly once, nothing lost.
  EXPECT_EQ(static_cast<int>(deliveries.size()), total_sent);
  EXPECT_EQ(vn.overloads(), 0u);
  EXPECT_EQ(vn.pending(0), 0u);

  // FIFO within each type (per-type sequence numbers strictly increase).
  std::map<int, std::int64_t> last_seq;
  for (const Delivery& d : deliveries) {
    const auto it = last_seq.find(d.priority);
    if (it != last_seq.end()) EXPECT_GT(d.seq, it->second);
    last_seq[d.priority] = d.seq;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EtArbitration, ::testing::Values(8, 88, 888));

}  // namespace
}  // namespace decos::vn
