// Property: the interarrival automaton flags a violation if and only if
// the generated traffic actually violated the (tmin, tmax) specification
// -- no false positives, no misses, over randomized workloads.
#include <gtest/gtest.h>

#include "fault/message_faults.hpp"
#include "ta/interpreter.hpp"
#include "util/rng.hpp"

namespace decos::ta {
namespace {

using namespace decos::literals;

struct AutomatonCase {
  std::uint64_t seed;
  double early_rate;
  double omission_rate;
};

class InterarrivalProperty : public ::testing::TestWithParam<AutomatonCase> {};

TEST_P(InterarrivalProperty, ErrorIffGroundTruthViolation) {
  const auto [seed, early_rate, omission_rate] = GetParam();
  const Duration tmin = 4_ms;
  const Duration tmax = 100_ms;
  const AutomatonSpec spec = make_interarrival_receive("r", "m", tmin, tmax);

  fault::TimingFaultProfile profile;
  profile.nominal_interarrival = 10_ms;
  profile.jitter = 1_ms;
  profile.early_rate = early_rate;
  profile.omission_rate = omission_rate;
  profile.early_gap = 500_us;

  Rng rng{seed};
  Interpreter interp{spec};
  Instant now = Instant::origin();
  interp.restart(now);
  Instant last_arrival = now;
  bool first = true;
  bool violated = false;

  for (int i = 0; i < 300 && !interp.in_error(); ++i) {
    bool gap_is_fault = false;
    const Duration gap = profile.next_gap(rng, gap_is_fault);
    now += gap;
    // Ground truth, judged exactly as the spec defines it.
    if (!first && (gap < tmin || gap > tmax)) violated = true;
    interp.poll(now);  // timeout detection happens as time passes
    const FireResult result = interp.on_receive("m", now);
    if (violated) {
      EXPECT_EQ(result, FireResult::kError) << "at message " << i;
    } else {
      EXPECT_EQ(result, FireResult::kFired) << "at message " << i;
      last_arrival = now;
    }
    first = false;
  }
  EXPECT_EQ(interp.in_error(), violated);
  (void)last_arrival;
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, InterarrivalProperty,
    ::testing::Values(AutomatonCase{1, 0.0, 0.0}, AutomatonCase{2, 0.0, 0.0},
                      AutomatonCase{3, 0.05, 0.0}, AutomatonCase{4, 0.0, 0.3},
                      AutomatonCase{5, 0.02, 0.02}, AutomatonCase{6, 0.2, 0.0},
                      AutomatonCase{7, 0.0, 0.9}, AutomatonCase{8, 0.5, 0.5}));

}  // namespace
}  // namespace decos::ta
