// Lockstep property of the partitioned kernel (S28): one seeded
// mini-cluster -- multiple disjoint islands, drifting clocks, hidden
// gateways, randomized partition offsets and fault times -- is run with
// --sim-jobs 1, 2 and 8, and every observable artifact must be
// *identical*, not just statistically close: the causal span tree (ids,
// parents, timestamps), the deterministic metrics fingerprint, the
// windowed telemetry JSONL stream, and the dispatched-event count. This
// is the unit-test face of the byte-identity contract the E21 bench
// checks end-to-end (scripts/check_parallel_determinism.py --vary
// sim-jobs).
#include <gtest/gtest.h>

#include <cstddef>

#include "mini_cluster.hpp"

namespace decos {
namespace {

using minicluster::RunArtifacts;
using minicluster::run_mini_cluster;

class PartitionedLockstep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PartitionedLockstep, ArtifactsIdenticalAtAnyWorkerCount) {
  const RunArtifacts serial = run_mini_cluster(GetParam(), 1);
  // The mini-cluster genuinely partitions (disjoint islands plus
  // unreferenced nodes each get a wheel) and genuinely runs.
  EXPECT_GE(serial.partitions, minicluster::kIslands);
  ASSERT_GT(serial.forwarded, 0u) << "mini cluster never forwarded a message";
  ASSERT_FALSE(serial.span_tree.empty());
  ASSERT_FALSE(serial.telemetry.empty());

  for (const std::size_t sim_jobs : {std::size_t{2}, std::size_t{8}}) {
    const RunArtifacts parallel = run_mini_cluster(GetParam(), sim_jobs);
    EXPECT_EQ(parallel.dispatched, serial.dispatched) << "sim-jobs " << sim_jobs;
    EXPECT_EQ(parallel.forwarded, serial.forwarded) << "sim-jobs " << sim_jobs;
    EXPECT_EQ(parallel.span_tree, serial.span_tree) << "sim-jobs " << sim_jobs;
    EXPECT_EQ(parallel.metrics_fingerprint, serial.metrics_fingerprint)
        << "sim-jobs " << sim_jobs;
    EXPECT_EQ(parallel.telemetry, serial.telemetry) << "sim-jobs " << sim_jobs;
  }
}

TEST_P(PartitionedLockstep, SerialRunsOfOneSeedAreIdenticalToo) {
  // Baseline sanity for the property above: the randomized build itself
  // is deterministic for a fixed seed.
  const RunArtifacts a = run_mini_cluster(GetParam(), 1);
  const RunArtifacts b = run_mini_cluster(GetParam(), 1);
  EXPECT_EQ(a.span_tree, b.span_tree);
  EXPECT_EQ(a.metrics_fingerprint, b.metrics_fingerprint);
  EXPECT_EQ(a.telemetry, b.telemetry);
  EXPECT_EQ(a.dispatched, b.dispatched);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionedLockstep, ::testing::Values(11, 42, 1234));

}  // namespace
}  // namespace decos
