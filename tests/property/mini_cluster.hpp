// Seeded mini-cluster harness shared by the lockstep property tests:
// multiple disjoint islands, drifting clocks, hidden gateways,
// randomized partition offsets and fault times, all derived from one
// seed. run_mini_cluster() executes the cluster for 300ms and folds
// every observable artifact -- causal span tree, deterministic metrics
// fingerprint, windowed telemetry, dispatch/forward counts -- into a
// RunArtifacts value the callers compare for *identity*:
//
//   partitioned_lockstep_test      varies --sim-jobs          (S28)
//   batched_dispatch_lockstep_test varies GatewayConfig       (S29)
#pragma once

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/gateway_job.hpp"
#include "core/wiring.hpp"
#include "fault/plan.hpp"
#include "obs/span.hpp"
#include "obs/telemetry.hpp"
#include "platform/cluster.hpp"
#include "util/rng.hpp"
#include "util/symbol.hpp"
#include "vn/et_vn.hpp"
#include "vn/tt_vn.hpp"

namespace decos::minicluster {

using namespace decos::literals;

constexpr std::size_t kIslands = 3;
constexpr std::size_t kIslandNodes = 4;
constexpr std::size_t kPairsPerIsland = 2;

inline spec::MessageSpec state_message(const std::string& message_name,
                                       const std::string& element_name, int id) {
  spec::MessageSpec ms{message_name};
  spec::ElementSpec key;
  key.name = "name";
  key.key = true;
  key.fields.push_back(spec::FieldSpec{"id", spec::FieldType::kInt16, 0, ta::Value{id}});
  ms.add_element(std::move(key));
  spec::ElementSpec payload;
  payload.name = element_name;
  payload.convertible = true;
  payload.fields.push_back(spec::FieldSpec{"value", spec::FieldType::kInt32, 0, std::nullopt});
  payload.fields.push_back(spec::FieldSpec{"t", spec::FieldType::kTimestamp, 0, std::nullopt});
  ms.add_element(std::move(payload));
  return ms;
}

inline spec::PortSpec input_port(const std::string& message, Duration period) {
  spec::PortSpec ps;
  ps.message = message;
  ps.direction = spec::DataDirection::kInput;
  ps.semantics = spec::InfoSemantics::kState;
  ps.paradigm = spec::ControlParadigm::kTimeTriggered;
  ps.period = period;
  ps.min_interarrival = 1_us;
  ps.max_interarrival = Duration::seconds(3600);
  ps.queue_capacity = 16;
  return ps;
}

inline spec::PortSpec output_port(const std::string& message) {
  spec::PortSpec ps;
  ps.message = message;
  ps.direction = spec::DataDirection::kOutput;
  ps.semantics = spec::InfoSemantics::kState;
  ps.paradigm = spec::ControlParadigm::kEventTriggered;
  ps.period = Duration::zero();
  ps.queue_capacity = 16;
  return ps;
}

inline spec::PortSpec tt_output_port(const std::string& message, Duration period) {
  spec::PortSpec ps;
  ps.message = message;
  ps.direction = spec::DataDirection::kOutput;
  ps.semantics = spec::InfoSemantics::kState;
  ps.paradigm = spec::ControlParadigm::kTimeTriggered;
  ps.period = period;
  ps.queue_capacity = 16;
  return ps;
}

inline spec::MessageInstance state_instance(const spec::MessageSpec& ms, std::int64_t value,
                                            Instant t) {
  spec::MessageInstance inst = spec::make_instance(ms);
  inst.elements()[1].fields[0] = ta::Value{value};
  inst.elements()[1].fields[1] = ta::Value{t};
  inst.set_send_time(t);
  return inst;
}

struct RunArtifacts {
  std::size_t partitions = 0;
  std::uint64_t dispatched = 0;
  std::uint64_t forwarded = 0;
  std::string span_tree;
  std::string metrics_fingerprint;
  std::string telemetry;  // deterministic JSONL lines only
};

/// Drop telemetry lines carrying host-time content: wall-clock
/// histograms legitimately differ between two runs of *any* worker
/// count, and the stream tags them for exactly this purpose.
inline std::string deterministic_lines(const std::string& stream) {
  std::istringstream in{stream};
  std::ostringstream out;
  for (std::string line; std::getline(in, line);) {
    if (line.find("\"deterministic\":false") == std::string::npos) out << line << "\n";
  }
  return out.str();
}

inline RunArtifacts run_mini_cluster(std::uint64_t seed, std::size_t sim_jobs,
                                     core::GatewayConfig gateway_config = {}) {
  Rng rng{seed};
  constexpr std::size_t kNodes = kIslands * kIslandNodes;
  constexpr std::size_t kPairs = kIslands * kPairsPerIsland;

  platform::ClusterConfig config;
  config.nodes = kNodes;
  config.round_length = 10_ms;
  for (std::size_t i = 0; i < kNodes; ++i)
    config.drift_ppm.push_back(static_cast<double>(rng.uniform_int(-60, 60)));
  std::vector<std::vector<std::size_t>> couplings;
  for (std::size_t p = 0; p < kPairs; ++p) {
    const std::size_t base = (p / kPairsPerIsland) * kIslandNodes;
    const std::size_t k = p % kPairsPerIsland;
    const auto producer = static_cast<tt::NodeId>(base + k % kIslandNodes);
    const auto host = static_cast<tt::NodeId>(base + (k + 1) % kIslandNodes);
    config.allocations.push_back(
        {static_cast<tt::VnId>(1 + 2 * p), "dasA" + std::to_string(p), 32, {producer}});
    config.allocations.push_back(
        {static_cast<tt::VnId>(2 + 2 * p), "dasB" + std::to_string(p), 32, {host}});
    couplings.push_back({producer, host});
  }
  platform::derive_partitions(config, couplings);
  config.sim_jobs = sim_jobs;
  platform::Cluster cluster{config};
  cluster.spans().set_enabled(true);

  std::ostringstream telemetry_out;
  obs::OstreamTelemetrySink telemetry_sink{telemetry_out};
  obs::TelemetryConfig telemetry_config;
  telemetry_config.window = 50_ms;
  obs::WindowAggregator& aggregator = cluster.simulator().enable_telemetry(telemetry_config);
  aggregator.set_sink(&telemetry_sink);

  std::vector<std::unique_ptr<vn::TtVirtualNetwork>> tt_vns;
  std::vector<std::unique_ptr<vn::EtVirtualNetwork>> et_vns;
  std::vector<std::unique_ptr<core::VirtualGateway>> gateways;
  std::vector<platform::Partition*> gw_partitions(kNodes, nullptr);

  for (std::size_t p = 0; p < kPairs; ++p) {
    const std::size_t base = (p / kPairsPerIsland) * kIslandNodes;
    const std::size_t k = p % kPairsPerIsland;
    const auto producer = static_cast<tt::NodeId>(base + k % kIslandNodes);
    const auto host = static_cast<tt::NodeId>(base + (k + 1) % kIslandNodes);
    const auto vn_a_id = static_cast<tt::VnId>(1 + 2 * p);
    const auto vn_b_id = static_cast<tt::VnId>(2 + 2 * p);
    const std::string tag = std::to_string(p);

    tt_vns.push_back(std::make_unique<vn::TtVirtualNetwork>("tt" + tag, vn_a_id));
    auto& vn_a = *tt_vns.back();
    vn_a.register_message(state_message("msgA" + tag, "img", 1));
    et_vns.push_back(std::make_unique<vn::EtVirtualNetwork>("et" + tag, vn_b_id));
    auto& vn_b = *et_vns.back();
    // S28 pre-registration rule: a parallel phase must never be the
    // first to register an instrument.
    vn_a.preregister_metrics(cluster.simulator());
    vn_b.preregister_metrics(cluster.simulator());

    spec::LinkSpec link_a{"dasA" + tag};
    link_a.add_message(state_message("msgA" + tag, "img", 1));
    link_a.add_port(input_port("msgA" + tag, config.round_length));
    spec::LinkSpec link_b{"dasB" + tag};
    link_b.add_message(state_message("msgB" + tag, "img", 2));
    link_b.add_port(output_port("msgB" + tag));
    gateways.push_back(std::make_unique<core::VirtualGateway>("gw" + tag, std::move(link_a),
                                                              std::move(link_b), gateway_config));
    auto& gw = *gateways.back();
    gw.finalize();
    gw.bind_observability(cluster.simulator());
    core::wire_tt_link(gw, 0, vn_a, cluster.controller(host), {});
    core::wire_et_link(gw, 1, vn_b, cluster.controller(host), cluster.vn_slots(vn_b_id, host));
    if (gw_partitions[host] == nullptr) {
      gw_partitions[host] =
          &cluster.component(host).add_partition("gw", "architecture", 0_ms, 2_ms);
    }
    gw_partitions[host]->add_job(std::make_unique<core::GatewayJob>(gw));

    // Randomized (but seed-determined) activation offset and execution
    // time, so different seeds exercise different slot/partition
    // interleavings. Offsets start past the gateway partition's 0-2ms
    // window and end before the 10ms round.
    platform::Partition& pp = cluster.component(producer).add_partition(
        "p" + tag, "dasA" + tag,
        Duration::microseconds(2500 + rng.uniform_int(0, 6000)), 200_us);
    platform::FunctionJob& job = pp.add_function_job(
        "prod" + tag, [&vn_a, tag](platform::FunctionJob& self, Instant now) {
          self.ports()[0]->deposit(
              state_instance(*vn_a.message_spec("msgA" + tag),
                             static_cast<std::int64_t>(self.activations()), now),
              now);
        });
    job.set_execution_time(Duration::microseconds(rng.uniform_int(5, 30)));
    vn_a.attach_sender(cluster.controller(producer),
                       job.add_port(tt_output_port("msgA" + tag, config.round_length)),
                       cluster.vn_slots(vn_a_id, producer));
  }

  // Cross-partition traffic beyond the steady TDMA flow: a transient
  // crash and a babbling burst, at seed-determined nodes and times.
  fault::FaultPlan faults{cluster.simulator()};
  faults.crash(cluster.controller(static_cast<std::size_t>(rng.uniform_int(0, kNodes - 1))),
               Instant::origin() + Duration::milliseconds(rng.uniform_int(60, 120)), 50_ms);
  faults.babble(cluster.controller(static_cast<std::size_t>(rng.uniform_int(0, kNodes - 1))),
                Instant::origin() + Duration::milliseconds(rng.uniform_int(150, 220)),
                /*slot_index=*/0, /*vn=*/tt::kCoreVn, /*count=*/8, /*gap=*/500_us);

  cluster.start();
  cluster.run_for(300_ms);
  aggregator.flush();
  aggregator.set_sink(nullptr);

  RunArtifacts artifacts;
  artifacts.partitions = config.partitions;
  artifacts.dispatched = cluster.simulator().dispatched();
  for (const auto& gw : gateways) artifacts.forwarded += gw->stats().messages_constructed;

  std::ostringstream spans;
  for (const obs::Span& s : cluster.spans().spans()) {
    spans << "trace=" << s.trace_id << " id=" << s.span_id << " parent=" << s.parent_id
          << " phase=" << obs::phase_name(s.phase) << " track=" << symbol_name(s.track)
          << " name=" << symbol_name(s.name) << " start=" << (s.start - Instant::origin()).ns()
          << " end=" << (s.end - Instant::origin()).ns() << " value=" << s.value << "\n";
  }
  artifacts.span_tree = spans.str();
  artifacts.metrics_fingerprint = cluster.metrics().snapshot().deterministic_fingerprint();
  artifacts.telemetry = deterministic_lines(telemetry_out.str());
  return artifacts;
}

}  // namespace decos::minicluster
