// Robustness of the whole-gateway configuration loader: mutations of a
// valid <gatewayspec> must yield either a working gateway or a clean
// Result error -- never a crash or an unvalidated gateway.
#include <gtest/gtest.h>

#include "core/gateway_xml.hpp"
#include "util/rng.hpp"

namespace decos::core {
namespace {

const char* kValid = R"(<?xml version="1.0"?>
<gatewayspec name="g">
  <config dispatch="1ms" restart="20ms" dacc="40ms" queue="8"/>
  <linkspec>
    <das>a</das>
    <message name="m1">
      <element name="name" key="yes"><field name="id">
        <type length="16">integer</type><value>1</value></field></element>
      <element name="e1" conv="yes">
        <field name="v"><type length="32">integer</type></field>
      </element>
    </message>
    <port message="m1" direction="input" semantics="event" paradigm="et"
          tmin="4ms" tmax="100ms" queue="8"/>
    <filter message="m1">v &gt;= 0</filter>
  </linkspec>
  <linkspec>
    <das>b</das>
    <message name="m2">
      <element name="name" key="yes"><field name="id">
        <type length="16">integer</type><value>2</value></field></element>
      <element name="e2" conv="yes">
        <field name="v"><type length="32">integer</type></field>
      </element>
    </message>
    <port message="m2" direction="output" semantics="event" paradigm="et" queue="8"/>
  </linkspec>
  <rename side="1" from="e2" to="e1"/>
  <element name="e1" semantics="event" queue="4"/>
</gatewayspec>
)";

class GatewayXmlRobustness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GatewayXmlRobustness, ValidSpecParses) {
  auto gw = parse_gateway_xml(kValid);
  ASSERT_TRUE(gw.ok()) << gw.error().to_string();
  EXPECT_TRUE(gw.value()->finalized());
}

TEST_P(GatewayXmlRobustness, MutationsNeverCrash) {
  const std::string base = kValid;
  Rng rng{GetParam()};
  int parsed_ok = 0;
  for (int i = 0; i < 250; ++i) {
    std::string mutated = base;
    const int edits = static_cast<int>(rng.uniform_int(1, 6));
    for (int e = 0; e < edits; ++e) {
      const auto pos =
          static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(mutated.size()) - 1));
      switch (rng.uniform_int(0, 2)) {
        case 0: mutated[pos] = static_cast<char>(rng.uniform_int(32, 126)); break;
        case 1: mutated.erase(pos, 1); break;
        default: mutated.insert(pos, 1, mutated[pos]); break;
      }
    }
    auto gw = parse_gateway_xml(mutated);
    if (gw.ok()) {
      ++parsed_ok;
      // A surviving gateway must be fully usable.
      EXPECT_TRUE(gw.value()->finalized());
    }
  }
  // Sanity: some mutations must have been rejected (the format is not
  // trivially accepting).
  EXPECT_LT(parsed_ok, 250);
}

TEST_P(GatewayXmlRobustness, TruncationsNeverCrash) {
  const std::string base = kValid;
  Rng rng{GetParam() + 5};
  for (int i = 0; i < 150; ++i) {
    const auto cut =
        static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(base.size())));
    auto gw = parse_gateway_xml(base.substr(0, cut));
    (void)gw;  // ok or clean error; never a crash
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GatewayXmlRobustness, ::testing::Values(7, 77, 777));

}  // namespace
}  // namespace decos::core
