// Simulation-kernel and TDMA-conformance properties under randomized
// inputs: the event queue is a correct priority queue with FIFO
// tie-breaking, and a synchronized cluster's transmissions all occur at
// their nominal slot instants (the paper's "predetermined, global points
// in time").
#include <gtest/gtest.h>

#include <memory>

#include "services/clock_sync.hpp"
#include "sim/simulator.hpp"
#include "tt/controller.hpp"
#include "util/rng.hpp"

namespace decos {
namespace {

using namespace decos::literals;

class SimOrdering : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimOrdering, RandomSchedulesFireInOrder) {
  Rng rng{GetParam()};
  sim::Simulator sim;
  struct Fired {
    Instant when;
    int seq;
  };
  std::vector<Fired> fired;
  std::vector<std::pair<Instant, int>> scheduled;

  int seq = 0;
  // Random times, including duplicates; a third of events cancelled.
  std::vector<sim::EventId> ids;
  for (int i = 0; i < 2000; ++i) {
    const Instant when = Instant::origin() + Duration::microseconds(rng.uniform_int(0, 500));
    const int my_seq = seq++;
    ids.push_back(sim.schedule_at(when, [&fired, &sim, my_seq] {
      fired.push_back({sim.now(), my_seq});
    }));
    scheduled.emplace_back(when, my_seq);
  }
  std::size_t cancelled = 0;
  for (std::size_t i = 0; i < ids.size(); i += 3) {
    if (sim.cancel(ids[i])) ++cancelled;
  }
  sim.run_until(Instant::origin() + 1_ms);

  EXPECT_EQ(fired.size(), scheduled.size() - cancelled);
  for (std::size_t i = 1; i < fired.size(); ++i) {
    // Non-decreasing time; FIFO among equal instants.
    ASSERT_LE(fired[i - 1].when, fired[i].when);
    if (fired[i - 1].when == fired[i].when) ASSERT_LT(fired[i - 1].seq, fired[i].seq);
  }
  // Every fired event fired at exactly its scheduled time.
  for (const Fired& f : fired) {
    EXPECT_EQ(scheduled[static_cast<std::size_t>(f.seq)].first, f.when);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimOrdering, ::testing::Values(2, 12, 42));

class TdmaConformance : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TdmaConformance, SynchronizedClusterHitsNominalSlotInstants) {
  Rng rng{GetParam()};
  sim::Simulator sim;
  const std::size_t nodes = 4;
  tt::TtBus bus{sim, tt::make_uniform_schedule(10_ms, nodes, 1, 16)};
  std::vector<std::unique_ptr<tt::Controller>> controllers;
  std::vector<std::unique_ptr<services::ClockSync>> syncs;
  // Drifts in +/- pairs: the synchronized ensemble then has zero mean
  // rate error and stays on the nominal timeline the central guardian
  // checks against (DESIGN.md faithfulness notes -- a biased ensemble
  // drifts off the nominal base at its mean crystal rate, which a local
  // TTA guardian would follow but our central model does not).
  const double d1 = rng.uniform(10.0, 100.0);
  const double d2 = rng.uniform(10.0, 100.0);
  const double drift[] = {d1, -d1, d2, -d2};
  for (std::size_t i = 0; i < nodes; ++i) {
    controllers.push_back(std::make_unique<tt::Controller>(
        sim, bus, static_cast<tt::NodeId>(i), sim::DriftingClock{drift[i]}));
    syncs.push_back(std::make_unique<services::ClockSync>(*controllers.back()));
  }

  // Every frame's true send instant must sit within the guardian window
  // of its nominal slot start -- i.e. conform to the global schedule.
  std::uint64_t frames = 0;
  Duration worst = Duration::zero();
  controllers[0]->add_frame_listener([&](const tt::Frame& frame, Instant, Duration) {
    ++frames;
    const Instant nominal = bus.schedule().slot_start(frame.round, frame.slot_index);
    worst = std::max(worst, (frame.sent_at - nominal).abs());
  });

  for (auto& c : controllers) c->start();
  sim.run_until(Instant::origin() + 2_s);

  EXPECT_EQ(bus.frames_blocked(), 0u);
  EXPECT_GT(frames, 700u);  // ~4 nodes * 200 rounds
  EXPECT_LT(worst, bus.config().guardian_tolerance);
  EXPECT_LT(worst, 15_us);  // well inside the window with +-100ppm crystals
}

INSTANTIATE_TEST_SUITE_P(Seeds, TdmaConformance, ::testing::Values(5, 55, 555));

}  // namespace
}  // namespace decos
