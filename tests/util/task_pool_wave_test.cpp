// run_wave / wait() semantics of util::TaskPool as the phase-barrier
// primitive of the partitioned simulation kernel (S28): full coverage of
// a wave, repeated waves on one pool, and pinned error scoping -- wait()
// reports the first exception recorded since the previous wait() and
// never lets it leak into a later wave. The stress tests run under TSan
// in CI.
#include "util/task_pool.hpp"

#include <atomic>
#include <cstddef>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace decos::util {
namespace {

TEST(TaskPoolWaveTest, WaveCoversEveryIndexExactlyOnce) {
  for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
    TaskPool pool{workers};
    std::vector<std::atomic<int>> hits(64);
    pool.run_wave(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(TaskPoolWaveTest, InlineModeRunsInSubmissionOrder) {
  TaskPool pool{1};
  std::vector<std::size_t> order;
  pool.run_wave(8, [&](std::size_t i) { order.push_back(i); });
  std::vector<std::size_t> expected(8);
  std::iota(expected.begin(), expected.end(), 0u);
  EXPECT_EQ(order, expected);
}

TEST(TaskPoolWaveTest, RepeatedWavesOnOnePool) {
  TaskPool pool{4};
  std::atomic<long> total{0};
  for (int wave = 0; wave < 50; ++wave)
    pool.run_wave(16, [&](std::size_t i) { total.fetch_add(static_cast<long>(i) + 1); });
  // 50 waves x sum(1..16).
  EXPECT_EQ(total.load(), 50 * 136);
}

TEST(TaskPoolWaveTest, FirstExceptionRethrownOncePerWave) {
  for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
    TaskPool pool{workers};
    std::atomic<int> ran{0};
    // Inline mode runs tasks in submission order, so index 2's throw is
    // deterministically "first"; threaded mode may surface any one of
    // the throwing tasks -- the contract is *one* exception per wave.
    EXPECT_THROW(pool.run_wave(8,
                               [&](std::size_t i) {
                                 ran.fetch_add(1);
                                 if (i >= 2) throw std::runtime_error("task " + std::to_string(i));
                               }),
                 std::runtime_error);
    // Every task of the wave still ran (errors don't cancel the wave).
    EXPECT_EQ(ran.load(), 8);
    // The error was consumed by the throwing wait: the next wave on the
    // same pool starts clean and completes.
    std::atomic<int> clean{0};
    pool.run_wave(8, [&](std::size_t) { clean.fetch_add(1); });
    EXPECT_EQ(clean.load(), 8);
  }
}

TEST(TaskPoolWaveTest, InlineFirstErrorWinsWithinWave) {
  TaskPool pool{1};
  try {
    pool.run_wave(6, [](std::size_t i) {
      if (i == 1 || i == 4) throw std::runtime_error("task " + std::to_string(i));
    });
    FAIL() << "run_wave should have rethrown";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task 1");
  }
}

TEST(TaskPoolWaveTest, ErrorScopingAcrossManyWavesStress) {
  // The S28 loop runs thousands of waves per simulated second on one
  // pool; alternate throwing and clean waves to pin that an exception
  // captured in wave k can never surface in wave k+1.
  TaskPool pool{4};
  for (int wave = 0; wave < 200; ++wave) {
    if (wave % 3 == 0) {
      EXPECT_THROW(pool.run_wave(8,
                                 [&](std::size_t i) {
                                   if (i % 2 == 0) throw std::runtime_error("boom");
                                 }),
                   std::runtime_error);
    } else {
      std::atomic<int> ran{0};
      pool.run_wave(8, [&](std::size_t) { ran.fetch_add(1); });
      ASSERT_EQ(ran.load(), 8) << "wave " << wave;
    }
  }
}

TEST(TaskPoolWaveTest, BarrierIsAFullFence) {
  // Work done inside wave k must be visible to wave k+1 without any
  // synchronisation in the tasks themselves -- the pattern the
  // partitioned kernel relies on (wheel state mutated in one phase is
  // read in the next). Plain non-atomic ints make TSan the judge.
  TaskPool pool{4};
  std::vector<int> cells(32, 0);
  for (int wave = 0; wave < 100; ++wave) {
    pool.run_wave(cells.size(), [&](std::size_t i) { cells[i] += 1; });
  }
  for (const int v : cells) EXPECT_EQ(v, 100);
}

TEST(TaskPoolWaveTest, MixedSubmitAndWaveRounds) {
  TaskPool pool{2};
  std::atomic<int> count{0};
  pool.submit([&] { count.fetch_add(1); });
  pool.submit([&] { count.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(count.load(), 2);
  pool.run_wave(5, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 7);
  pool.submit([&] { count.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(count.load(), 8);
}

TEST(TaskPoolWaveTest, EmptyWaveIsANoOp) {
  TaskPool pool{4};
  pool.run_wave(0, [](std::size_t) { FAIL() << "no tasks in an empty wave"; });
}

}  // namespace
}  // namespace decos::util
