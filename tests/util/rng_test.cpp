#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace decos {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a{123};
  Rng b{123};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a{1};
  Rng b{2};
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng{7};
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.next_double();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntRespectsBounds) {
  Rng rng{9};
  std::vector<int> counts(6, 0);
  for (int i = 0; i < 60000; ++i) {
    const std::int64_t v = rng.uniform_int(10, 15);
    ASSERT_GE(v, 10);
    ASSERT_LE(v, 15);
    ++counts[static_cast<std::size_t>(v - 10)];
  }
  for (const int c : counts) {  // each bucket within 10% of the mean
    EXPECT_GT(c, 9000);
    EXPECT_LT(c, 11000);
  }
}

TEST(RngTest, ExponentialMeanConverges) {
  Rng rng{11};
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(RngTest, NormalMeanAndSpread) {
  Rng rng{13};
  double sum = 0;
  double sq = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(RngTest, BernoulliRate) {
  Rng rng{17};
  int hits = 0;
  for (int i = 0; i < 100000; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(RngTest, ExponentialDurationPositive) {
  Rng rng{19};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(rng.exponential_duration(Duration::milliseconds(5)).ns(), 0);
  }
}

TEST(RngTest, NormalDurationClampedNonNegative) {
  Rng rng{21};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.normal_duration(Duration::microseconds(1), Duration::milliseconds(10)).ns(), 0);
  }
}

TEST(RngTest, ForkedStreamsAreIndependent) {
  Rng parent{23};
  Rng child = parent.fork();
  // The child stream must not replay the parent's outputs.
  Rng parent2{23};
  parent2.fork();
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (child.next_u64() == parent.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

}  // namespace
}  // namespace decos
