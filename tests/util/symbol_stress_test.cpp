// Concurrency stress for SymbolTable (S25 memory model): 8 threads
// hammer one table with overlapping interns, lookups of racing names,
// and spelling resolution while the open-addressing index grows and
// retires several times (initial capacity 1024, growth at 70% load, and
// the test interns ~4x that). Run under ThreadSanitizer in CI; the
// assertions here pin the semantic guarantees (same spelling -> same
// id, published pairs stable), TSan pins the absence of data races.
#include "util/symbol.hpp"

#include <atomic>
#include <cstddef>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace decos {
namespace {

constexpr std::size_t kThreads = 8;
constexpr std::size_t kSharedNames = 2048;   // every thread interns all of these
constexpr std::size_t kPrivateNames = 256;   // per-thread unique spellings

std::string shared_name(std::size_t i) { return "shared/" + std::to_string(i); }
std::string private_name(std::size_t thread, std::size_t i) {
  return "t" + std::to_string(thread) + "/" + std::to_string(i);
}

TEST(SymbolStressTest, EightThreadsInternLookupResolve) {
  SymbolTable table;
  std::atomic<bool> go{false};
  // ids[t][i]: the id thread t observed for shared_name(i).
  std::vector<std::vector<Symbol>> ids(kThreads, std::vector<Symbol>(kSharedNames));
  std::vector<std::thread> threads;
  threads.reserve(kThreads);

  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      while (!go.load(std::memory_order_acquire)) {}
      for (std::size_t i = 0; i < kSharedNames; ++i) {
        // Interleave walk direction per thread so first-intern races hit
        // different regions of the index at the same time.
        const std::size_t at = (t % 2 == 0) ? i : kSharedNames - 1 - i;
        const std::string name = shared_name(at);
        const Symbol s = table.intern(name);
        ASSERT_TRUE(s.valid());
        ids[t][at] = s;

        // A published pair must be immediately resolvable and stable,
        // even while other threads grow/retire the index.
        ASSERT_EQ(table.name(s), name);
        const auto found = table.lookup(name);
        ASSERT_TRUE(found.has_value());
        ASSERT_EQ(*found, s);

        // Probing names that another thread may be interning right now:
        // either absent or consistent, never torn.
        const std::string racing = shared_name(kSharedNames - 1 - at);
        if (const auto hit = table.lookup(racing)) ASSERT_EQ(table.name(*hit), racing);

        if (i % 8 == 0) {
          const std::string priv = private_name(t, i / 8);
          const Symbol p = table.intern(priv);
          ASSERT_EQ(table.name(p), priv);
          ASSERT_EQ(p, table.intern(priv));  // idempotent
        }
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (auto& th : threads) th.join();

  // Every thread resolved every shared spelling to the same id.
  for (std::size_t i = 0; i < kSharedNames; ++i)
    for (std::size_t t = 1; t < kThreads; ++t) ASSERT_EQ(ids[t][i], ids[0][i]);

  // Exactly the distinct spellings were interned, despite 8x duplicate
  // traffic: kSharedNames + kThreads * ceil(kSharedNames / 8) privates.
  const std::size_t privates = kThreads * ((kSharedNames + 7) / 8);
  EXPECT_EQ(table.size(), kSharedNames + privates);

  // Ids are dense 1..size and every one resolves back to a spelling
  // that round-trips through lookup.
  for (std::uint32_t id = 1; id <= table.size(); ++id) {
    const std::string& spelling = table.name(Symbol{id});
    ASSERT_FALSE(spelling.empty());
    const auto found = table.lookup(spelling);
    ASSERT_TRUE(found.has_value());
    ASSERT_EQ(found->id(), id);
  }
}

TEST(SymbolStressTest, GlobalTableConcurrentIntern) {
  // The process-wide table is what concurrent experiment cells actually
  // share; hammer it too (with a distinct namespace so reruns within one
  // process stay idempotent).
  std::atomic<bool> go{false};
  std::vector<Symbol> first(kPrivateNames);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      while (!go.load(std::memory_order_acquire)) {}
      for (std::size_t i = 0; i < kPrivateNames; ++i) {
        const std::string name = "stress-global/" + std::to_string(i);
        const Symbol s = intern_symbol(name);
        ASSERT_EQ(symbol_name(s), name);
        if (t == 0) first[i] = s;
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (auto& th : threads) th.join();
  for (std::size_t i = 0; i < kPrivateNames; ++i)
    EXPECT_EQ(first[i], *SymbolTable::global().lookup("stress-global/" + std::to_string(i)));
}

}  // namespace
}  // namespace decos
