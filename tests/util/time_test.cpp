#include "util/time.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace decos {
namespace {

using namespace decos::literals;

TEST(DurationTest, NamedConstructorsAgree) {
  EXPECT_EQ(Duration::seconds(1).ns(), 1'000'000'000);
  EXPECT_EQ(Duration::milliseconds(1).ns(), 1'000'000);
  EXPECT_EQ(Duration::microseconds(1).ns(), 1'000);
  EXPECT_EQ(Duration::nanoseconds(1).ns(), 1);
  EXPECT_EQ(Duration::seconds(2), Duration::milliseconds(2000));
}

TEST(DurationTest, Literals) {
  EXPECT_EQ(5_ms, Duration::milliseconds(5));
  EXPECT_EQ(3_us, Duration::microseconds(3));
  EXPECT_EQ(7_s, Duration::seconds(7));
  EXPECT_EQ(9_ns, Duration::nanoseconds(9));
}

TEST(DurationTest, Arithmetic) {
  EXPECT_EQ(2_ms + 3_ms, 5_ms);
  EXPECT_EQ(5_ms - 7_ms, Duration::milliseconds(-2));
  EXPECT_EQ(3_ms * 4, 12_ms);
  EXPECT_EQ(4 * 3_ms, 12_ms);
  EXPECT_EQ(12_ms / 4, 3_ms);
  EXPECT_EQ(12_ms / (3_ms), 4);
}

TEST(DurationTest, ModuloIsAlwaysNonNegative) {
  EXPECT_EQ((7_ms).mod(5_ms), 2_ms);
  EXPECT_EQ((-3_ms).mod(5_ms), 2_ms);
  EXPECT_EQ((10_ms).mod(5_ms), 0_ms);
}

TEST(DurationTest, AbsAndSign) {
  EXPECT_EQ((-4_ms).abs(), 4_ms);
  EXPECT_TRUE((-1_ns).is_negative());
  EXPECT_FALSE((0_ns).is_negative());
  EXPECT_TRUE((0_ns).is_zero());
}

TEST(DurationTest, Conversions) {
  EXPECT_DOUBLE_EQ((1500_us).as_ms(), 1.5);
  EXPECT_DOUBLE_EQ((2_s).as_seconds(), 2.0);
  EXPECT_DOUBLE_EQ((2_us).as_us(), 2.0);
}

TEST(DurationTest, Ordering) {
  EXPECT_LT(1_ms, 2_ms);
  EXPECT_GT(1_s, 999_ms);
  EXPECT_LE(5_ms, 5_ms);
}

TEST(DurationTest, ToStringPicksLargestExactUnit) {
  EXPECT_EQ((2_s).to_string(), "2s");
  EXPECT_EQ((5_ms).to_string(), "5ms");
  EXPECT_EQ((7_us).to_string(), "7us");
  EXPECT_EQ((9_ns).to_string(), "9ns");
  EXPECT_EQ((1500_us).to_string(), "1500us");
}

TEST(InstantTest, ArithmeticWithDurations) {
  const Instant t0 = Instant::origin();
  const Instant t1 = t0 + 5_ms;
  EXPECT_EQ(t1 - t0, 5_ms);
  EXPECT_EQ(t1 - 2_ms, t0 + 3_ms);
  EXPECT_LT(t0, t1);
}

TEST(InstantTest, PhaseInPeriod) {
  const Instant t = Instant::origin() + 23_ms;
  EXPECT_EQ(t.phase_in(10_ms), 3_ms);
  EXPECT_EQ((Instant::origin() + 20_ms).phase_in(10_ms), 0_ms);
}

TEST(InstantTest, StreamOutput) {
  std::ostringstream os;
  os << (Instant::origin() + 1_ms) << " " << 3_ms;
  EXPECT_EQ(os.str(), "t=1.000000ms 3ms");
}

}  // namespace
}  // namespace decos
