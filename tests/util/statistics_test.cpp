#include "util/statistics.hpp"

#include <gtest/gtest.h>

namespace decos {
namespace {

TEST(RunningStatsTest, MeanVarianceMinMax) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, AcceptsDurations) {
  RunningStats s;
  s.add(Duration::milliseconds(2));
  s.add(Duration::milliseconds(4));
  EXPECT_DOUBLE_EQ(s.mean(), 3e6);
}

TEST(SampleSetTest, ExactPercentiles) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 100.0);
  EXPECT_NEAR(s.percentile(0.5), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(0.99), 99.01, 1e-9);
}

TEST(SampleSetTest, SpreadIsPeakToPeak) {
  SampleSet s;
  s.add(3.0);
  s.add(11.0);
  s.add(7.0);
  EXPECT_DOUBLE_EQ(s.spread(), 8.0);
  EXPECT_DOUBLE_EQ(s.mean(), 7.0);
}

TEST(SampleSetTest, AddAfterSortStillCorrect) {
  SampleSet s;
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);  // forces a sort
  s.add(9.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(HistogramTest, BinsAndSaturation) {
  Histogram h{0.0, 10.0, 10};
  h.add(0.5);    // bin 0
  h.add(9.99);   // bin 9
  h.add(-5.0);   // saturates into bin 0
  h.add(42.0);   // saturates into bin 9
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(9), 2u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(HistogramTest, BinLowerEdges) {
  Histogram h{0.0, 100.0, 4};
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(2), 50.0);
}

TEST(HistogramTest, RenderMentionsCounts) {
  Histogram h{0.0, 2.0, 2};
  h.add(0.5);
  h.add(0.6);
  h.add(1.5);
  const std::string out = h.render(10);
  EXPECT_NE(out.find('#'), std::string::npos);
  EXPECT_NE(out.find('2'), std::string::npos);
}

TEST(HistogramTest, EmptyRender) {
  Histogram h{0.0, 1.0, 4};
  EXPECT_EQ(h.render(), "(empty histogram)\n");
}

}  // namespace
}  // namespace decos
