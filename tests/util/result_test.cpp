#include "util/result.hpp"

#include <gtest/gtest.h>

namespace decos {
namespace {

TEST(ResultTest, HoldsValue) {
  Result<int> r{42};
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsError) {
  auto r = Result<int>::failure("boom", 3, 7);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().message, "boom");
  EXPECT_EQ(r.error().line, 3);
  EXPECT_EQ(r.error().column, 7);
  EXPECT_EQ(r.error().to_string(), "boom (line 3, col 7)");
}

TEST(ResultTest, ValueOnErrorThrows) {
  auto r = Result<int>::failure("nope");
  EXPECT_THROW(r.value(), SpecError);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r{std::string{"payload"}};
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "payload");
}

TEST(ResultTest, ErrorWithoutLocationOmitsIt) {
  Error e{"plain", 0, 0};
  EXPECT_EQ(e.to_string(), "plain");
}

TEST(StatusTest, DefaultIsSuccess) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_NO_THROW(st.check());
}

TEST(StatusTest, FailureCarriesMessageAndThrows) {
  auto st = Status::failure("bad config");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.error().message, "bad config");
  EXPECT_THROW(st.check(), SpecError);
}

TEST(StatusTest, ImplicitBoolConversion) {
  EXPECT_TRUE(static_cast<bool>(Status::success()));
  EXPECT_FALSE(static_cast<bool>(Status::failure("x")));
}

}  // namespace
}  // namespace decos
