#include "util/log.hpp"

#include <gtest/gtest.h>

namespace decos::log {
namespace {

struct ThresholdGuard {
  Level saved = threshold();
  ~ThresholdGuard() { threshold() = saved; }
};

TEST(LogTest, DefaultThresholdIsOff) {
  ThresholdGuard guard;
  EXPECT_EQ(threshold(), Level::kOff);
  EXPECT_FALSE(enabled(Level::kError));
}

TEST(LogTest, ThresholdFiltersLevels) {
  ThresholdGuard guard;
  threshold() = Level::kWarn;
  EXPECT_FALSE(enabled(Level::kTrace));
  EXPECT_FALSE(enabled(Level::kDebug));
  EXPECT_FALSE(enabled(Level::kInfo));
  EXPECT_TRUE(enabled(Level::kWarn));
  EXPECT_TRUE(enabled(Level::kError));
}

TEST(LogTest, HelpersRespectThreshold) {
  ThresholdGuard guard;
  threshold() = Level::kError;
  // These must be no-ops (nothing observable to assert beyond "no crash",
  // but they exercise the guard branches).
  trace("t", "x");
  debug("t", "x");
  info("t", "x");
  warn("t", "x");
  threshold() = Level::kTrace;
  trace("t", "visible");
  error("t", "visible");
}

}  // namespace
}  // namespace decos::log
