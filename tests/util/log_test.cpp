#include "util/log.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace decos::log {
namespace {

struct ThresholdGuard {
  Level saved = threshold();
  ~ThresholdGuard() { threshold() = saved; }
};

TEST(LogTest, DefaultThresholdIsOff) {
  ThresholdGuard guard;
  EXPECT_EQ(threshold(), Level::kOff);
  EXPECT_FALSE(enabled(Level::kError));
}

TEST(LogTest, ThresholdFiltersLevels) {
  ThresholdGuard guard;
  threshold() = Level::kWarn;
  EXPECT_FALSE(enabled(Level::kTrace));
  EXPECT_FALSE(enabled(Level::kDebug));
  EXPECT_FALSE(enabled(Level::kInfo));
  EXPECT_TRUE(enabled(Level::kWarn));
  EXPECT_TRUE(enabled(Level::kError));
}

TEST(LogTest, HelpersRespectThreshold) {
  ThresholdGuard guard;
  threshold() = Level::kError;
  // These must be no-ops (nothing observable to assert beyond "no crash",
  // but they exercise the guard branches).
  trace("t", "x");
  debug("t", "x");
  info("t", "x");
  warn("t", "x");
  threshold() = Level::kTrace;
  trace("t", "visible");
  error("t", "visible");
}

TEST(LogTest, SinkCapturesFilteredLines) {
  ThresholdGuard guard;
  threshold() = Level::kInfo;
  std::vector<std::pair<Level, std::string>> lines;
  set_sink([&](Level level, const std::string& component, const std::string& message) {
    lines.emplace_back(level, component + ": " + message);
  });
  debug("comp", "hidden");   // below threshold: never reaches the sink
  info("comp", "hello");
  error("other", "bad");
  set_sink(nullptr);  // restore stderr
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].first, Level::kInfo);
  EXPECT_EQ(lines[0].second, "comp: hello");
  EXPECT_EQ(lines[1].first, Level::kError);
  EXPECT_EQ(lines[1].second, "other: bad");
}

TEST(LogTest, FormatLineWithoutTimeProvider) {
  EXPECT_EQ(format_line(Level::kWarn, "bus", "late frame"), "[WARN] bus: late frame");
}

TEST(LogTest, FormatLineStampsSimulatedTime) {
  static std::int64_t fake_now = 12'500'000;  // 12.5ms
  const int owner = 0;
  set_time_provider(&owner, [](const void*) { return fake_now; });
  EXPECT_EQ(format_line(Level::kInfo, "gw", "tick"), "[INFO t=12.500000ms] gw: tick");
  clear_time_provider(&owner);
  EXPECT_EQ(format_line(Level::kInfo, "gw", "tick"), "[INFO] gw: tick");
}

TEST(LogTest, ClearTimeProviderOnlyByOwner) {
  static std::int64_t fake_now = 1'000'000;
  const int owner = 0;
  const int stranger = 0;
  set_time_provider(&owner, [](const void*) { return fake_now; });
  clear_time_provider(&stranger);  // not the owner: provider stays
  EXPECT_EQ(format_line(Level::kInfo, "x", "m"), "[INFO t=1.000000ms] x: m");
  clear_time_provider(&owner);
  EXPECT_EQ(format_line(Level::kInfo, "x", "m"), "[INFO] x: m");
}

}  // namespace
}  // namespace decos::log
