// SymbolTable / Symbol unit tests: interning is idempotent and dense,
// lookup never inserts, spellings resolve back exactly, and the reserved
// invalid Symbol behaves like "no name" everywhere.
#include <gtest/gtest.h>

#include <string>
#include <unordered_set>

#include "util/symbol.hpp"

namespace decos {
namespace {

TEST(Symbol, DefaultIsInvalidAndNeverEqualToInterned) {
  const Symbol none;
  EXPECT_FALSE(none.valid());
  EXPECT_FALSE(static_cast<bool>(none));
  SymbolTable table;
  EXPECT_NE(none, table.intern("anything"));
}

TEST(SymbolTable, InternIsIdempotent) {
  SymbolTable table;
  const Symbol a = table.intern("wheelspeed");
  const Symbol b = table.intern("wheelspeed");
  EXPECT_EQ(a, b);
  EXPECT_EQ(table.size(), 1u);
}

TEST(SymbolTable, IdsAreDenseAndDeterministic) {
  SymbolTable table;
  const Symbol first = table.intern("a");
  const Symbol second = table.intern("b");
  const Symbol third = table.intern("c");
  EXPECT_EQ(second.id(), first.id() + 1);
  EXPECT_EQ(third.id(), second.id() + 1);

  SymbolTable replay;
  EXPECT_EQ(replay.intern("a"), first);
  EXPECT_EQ(replay.intern("b"), second);
  EXPECT_EQ(replay.intern("c"), third);
}

TEST(SymbolTable, EmptyStringIsTheInvalidSymbol) {
  SymbolTable table;
  EXPECT_FALSE(table.intern("").valid());
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.name(Symbol{}), "");
}

TEST(SymbolTable, LookupNeverInserts) {
  SymbolTable table;
  table.intern("known");
  const std::size_t size = table.size();
  EXPECT_FALSE(table.lookup("unknown").has_value());
  EXPECT_EQ(table.size(), size);
  ASSERT_TRUE(table.lookup("known").has_value());
  EXPECT_EQ(*table.lookup("known"), table.intern("known"));
}

TEST(SymbolTable, NameRoundTrips) {
  SymbolTable table;
  const Symbol s = table.intern("msgslidingroof");
  EXPECT_EQ(table.name(s), "msgslidingroof");
  // Unknown ids resolve to the empty spelling instead of throwing.
  EXPECT_EQ(table.name(Symbol{9999}), "");
}

TEST(SymbolTable, GlobalTableBacksTheConvenienceHelpers) {
  const Symbol s = intern_symbol("global-roundtrip-probe");
  EXPECT_TRUE(s.valid());
  EXPECT_EQ(symbol_name(s), "global-roundtrip-probe");
  EXPECT_EQ(intern_symbol("global-roundtrip-probe"), s);
  // String comparison helpers resolve spellings, not pointers.
  EXPECT_TRUE(s == "global-roundtrip-probe");
  EXPECT_TRUE(s != "something-else");
}

TEST(SymbolHash, DistinctIdsRarelyCollide) {
  SymbolTable table;
  std::unordered_set<std::size_t> hashes;
  SymbolHash hash;
  for (int i = 0; i < 1000; ++i)
    hashes.insert(hash(table.intern("name" + std::to_string(i))));
  EXPECT_EQ(hashes.size(), 1000u);
}

}  // namespace
}  // namespace decos
