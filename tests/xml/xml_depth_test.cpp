#include <gtest/gtest.h>

#include "xml/xml.hpp"

namespace decos::xml {
namespace {

TEST(XmlDepthTest, ModeratelyDeepNestingParses) {
  constexpr int kDepth = 64;
  std::string text;
  for (int i = 0; i < kDepth; ++i) text += "<n" + std::to_string(i) + ">";
  text += "leaf";
  for (int i = kDepth - 1; i >= 0; --i) text += "</n" + std::to_string(i) + ">";

  auto doc = parse(text);
  ASSERT_TRUE(doc.ok());
  const Element* e = doc.value().root.get();
  for (int i = 1; i < kDepth; ++i) {
    ASSERT_EQ(e->children().size(), 1u);
    e = e->children()[0].get();
  }
  EXPECT_EQ(e->text(), "leaf");

  // And the writer round-trips the whole chain.
  auto again = parse(write(*doc.value().root));
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().root->name(), "n0");
}

TEST(XmlDepthTest, WideDocumentsParse) {
  std::string text = "<root>";
  for (int i = 0; i < 2000; ++i) text += "<c i=\"" + std::to_string(i) + "\"/>";
  text += "</root>";
  auto doc = parse(text);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value().root->children().size(), 2000u);
  EXPECT_EQ(doc.value().root->children()[1999]->attribute("i"), "1999");
}

}  // namespace
}  // namespace decos::xml
