#include "xml/xml.hpp"

#include <gtest/gtest.h>

namespace decos::xml {
namespace {

TEST(XmlParseTest, SimpleElement) {
  auto doc = parse("<root/>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value().root->name(), "root");
  EXPECT_TRUE(doc.value().root->children().empty());
}

TEST(XmlParseTest, AttributesBothQuoteStyles) {
  auto doc = parse(R"(<m name="msgX" id='7'/>)");
  ASSERT_TRUE(doc.ok());
  const Element& root = *doc.value().root;
  EXPECT_EQ(root.attribute("name"), "msgX");
  EXPECT_EQ(root.attribute("id"), "7");
  EXPECT_TRUE(root.has_attribute("name"));
  EXPECT_FALSE(root.has_attribute("nope"));
  EXPECT_EQ(root.attribute_or("nope", "dflt"), "dflt");
}

TEST(XmlParseTest, NestedChildrenAndText) {
  auto doc = parse("<a><b>hello</b><b>world</b><c>  trimmed  </c></a>");
  ASSERT_TRUE(doc.ok());
  const Element& root = *doc.value().root;
  EXPECT_EQ(root.children().size(), 3u);
  EXPECT_EQ(root.children_named("b").size(), 2u);
  EXPECT_EQ(root.child("b")->text(), "hello");
  EXPECT_EQ(root.child_text("c"), "trimmed");
  EXPECT_EQ(root.child("zzz"), nullptr);
  EXPECT_EQ(root.child_text("zzz"), "");
}

TEST(XmlParseTest, DeclarationAndCommentsSkipped) {
  auto doc = parse("<?xml version=\"1.0\"?><!-- hi --><root><!-- inner --><x/></root>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value().root->children().size(), 1u);
}

TEST(XmlParseTest, PredefinedEntities) {
  auto doc = parse("<g>x&lt;tmax &amp;&amp; y&gt;=tmin &quot;q&quot; &apos;a&apos;</g>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value().root->text(), "x<tmax && y>=tmin \"q\" 'a'");
}

TEST(XmlParseTest, NumericCharacterReferences) {
  auto doc = parse("<g>&#65;&#x42;</g>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value().root->text(), "AB");
}

TEST(XmlParseTest, EntityInAttribute) {
  auto doc = parse(R"(<g guard="a&lt;b"/>)");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value().root->attribute("guard"), "a<b");
}

TEST(XmlParseTest, MismatchedTagIsError) {
  auto doc = parse("<a><b></a></b>");
  ASSERT_FALSE(doc.ok());
  EXPECT_NE(doc.error().message.find("mismatched"), std::string::npos);
}

TEST(XmlParseTest, UnterminatedElementIsError) {
  EXPECT_FALSE(parse("<a><b></b>").ok());
}

TEST(XmlParseTest, DuplicateAttributeIsError) {
  EXPECT_FALSE(parse(R"(<a x="1" x="2"/>)").ok());
}

TEST(XmlParseTest, TrailingContentIsError) {
  EXPECT_FALSE(parse("<a/><b/>").ok());
}

TEST(XmlParseTest, UnknownEntityIsError) {
  EXPECT_FALSE(parse("<a>&bogus;</a>").ok());
}

TEST(XmlParseTest, ErrorsCarryLineNumbers) {
  auto doc = parse("<a>\n  <b>\n</a>");
  ASSERT_FALSE(doc.ok());
  EXPECT_GE(doc.error().line, 2);
}

TEST(XmlParseTest, EmptyInputIsError) {
  EXPECT_FALSE(parse("").ok());
  EXPECT_FALSE(parse("   \n ").ok());
}

TEST(XmlWriteTest, RoundTrip) {
  Element root{"linkspec"};
  root.set_attribute("v", "1");
  Element& msg = root.add_child("message");
  msg.set_attribute("name", "m<with&odd>chars");
  msg.add_child("field").set_text("a<b");
  const std::string text = write(root);

  auto doc = parse(text);
  ASSERT_TRUE(doc.ok());
  const Element& back = *doc.value().root;
  EXPECT_EQ(back.name(), "linkspec");
  EXPECT_EQ(back.attribute("v"), "1");
  EXPECT_EQ(back.child("message")->attribute("name"), "m<with&odd>chars");
  EXPECT_EQ(back.child("message")->child("field")->text(), "a<b");
}

TEST(XmlWriteTest, EscapeCoversAllFive) {
  EXPECT_EQ(escape("<>&\"'"), "&lt;&gt;&amp;&quot;&apos;");
}

TEST(XmlElementTest, SetAttributeOverwrites) {
  Element e{"x"};
  e.set_attribute("k", "1");
  e.set_attribute("k", "2");
  EXPECT_EQ(e.attribute("k"), "2");
  EXPECT_EQ(e.attributes().size(), 1u);
}

}  // namespace
}  // namespace decos::xml
