#include "services/fusion.hpp"

#include <gtest/gtest.h>

namespace decos::services {
namespace {

using namespace decos::literals;

Instant at(std::int64_t ms) { return Instant::origin() + Duration::milliseconds(ms); }

TEST(SensorFusionTest, MedianMasksOneArbitraryFault) {
  SensorFusion fusion{SensorFusion::Strategy::kMedian, 3, 50_ms};
  fusion.offer(0, ta::Value{100.0}, at(0));
  fusion.offer(1, ta::Value{102.0}, at(0));
  fusion.offer(2, ta::Value{-9999.0}, at(0));  // faulty sensor
  ASSERT_TRUE(fusion.fused(at(1)).has_value());
  EXPECT_DOUBLE_EQ(fusion.fused(at(1))->as_real(), 100.0);
}

TEST(SensorFusionTest, MedianEvenCountAverages) {
  SensorFusion fusion{SensorFusion::Strategy::kMedian, 4, 50_ms};
  fusion.offer(0, ta::Value{10.0}, at(0));
  fusion.offer(1, ta::Value{20.0}, at(0));
  fusion.offer(2, ta::Value{30.0}, at(0));
  fusion.offer(3, ta::Value{40.0}, at(0));
  EXPECT_DOUBLE_EQ(fusion.fused(at(1))->as_real(), 25.0);
}

TEST(SensorFusionTest, NoFreshReadingsGivesNothing) {
  SensorFusion fusion{SensorFusion::Strategy::kMedian, 3, 50_ms};
  EXPECT_FALSE(fusion.fused(at(0)).has_value());
  fusion.offer(0, ta::Value{1.0}, at(0));
  EXPECT_TRUE(fusion.fused(at(10)).has_value());
  // The reading expires at +50ms: availability degrades, no stale value.
  EXPECT_FALSE(fusion.fused(at(60)).has_value());
  EXPECT_EQ(fusion.fresh_count(at(60)), 0u);
}

TEST(SensorFusionTest, ExpiredSourceDropsOutOfTheVote) {
  SensorFusion fusion{SensorFusion::Strategy::kMedian, 3, 50_ms};
  fusion.offer(0, ta::Value{100.0}, at(0));
  fusion.offer(1, ta::Value{200.0}, at(40));
  fusion.offer(2, ta::Value{300.0}, at(40));
  // At t=60, source 0 expired: median of {200, 300}.
  EXPECT_EQ(fusion.fresh_count(at(60)), 2u);
  EXPECT_DOUBLE_EQ(fusion.fused(at(60))->as_real(), 250.0);
}

TEST(SensorFusionTest, FaultTolerantAverageDropsExtremes) {
  SensorFusion fusion{SensorFusion::Strategy::kFaultTolerantAverage, 5, 50_ms, 1};
  const double values[] = {10.0, 11.0, 12.0, 13.0, 1000.0};
  for (std::size_t i = 0; i < 5; ++i) fusion.offer(i, ta::Value{values[i]}, at(0));
  EXPECT_DOUBLE_EQ(fusion.fused(at(1))->as_real(), 12.0);  // (11+12+13)/3
}

TEST(SensorFusionTest, FaultTolerantAverageDegradesGracefully) {
  // Two fresh readings cannot support k=1; fall back to the plain mean.
  SensorFusion fusion{SensorFusion::Strategy::kFaultTolerantAverage, 2, 50_ms, 1};
  fusion.offer(0, ta::Value{10.0}, at(0));
  fusion.offer(1, ta::Value{20.0}, at(0));
  EXPECT_DOUBLE_EQ(fusion.fused(at(1))->as_real(), 15.0);
}

TEST(SensorFusionTest, MajorityVoting) {
  SensorFusion fusion{SensorFusion::Strategy::kMajority, 3, 50_ms};
  fusion.offer(0, ta::Value{true}, at(0));
  fusion.offer(1, ta::Value{true}, at(0));
  fusion.offer(2, ta::Value{false}, at(0));
  ASSERT_TRUE(fusion.fused(at(1)).has_value());
  EXPECT_TRUE(fusion.fused(at(1))->as_bool());
}

TEST(SensorFusionTest, NoStrictMajorityGivesNothing) {
  SensorFusion fusion{SensorFusion::Strategy::kMajority, 2, 50_ms};
  fusion.offer(0, ta::Value{1}, at(0));
  fusion.offer(1, ta::Value{2}, at(0));
  EXPECT_FALSE(fusion.fused(at(1)).has_value());
}

TEST(SensorFusionTest, DeviatingSourceDiagnosed) {
  SensorFusion fusion{SensorFusion::Strategy::kMedian, 3, 50_ms};
  fusion.offer(0, ta::Value{100.0}, at(0));
  fusion.offer(1, ta::Value{101.0}, at(0));
  fusion.offer(2, ta::Value{250.0}, at(0));
  const auto deviants = fusion.deviating_sources(at(1), 10.0);
  ASSERT_EQ(deviants.size(), 1u);
  EXPECT_EQ(deviants[0], 2u);
}

TEST(SensorFusionTest, OfferOutOfRangeThrows) {
  SensorFusion fusion{SensorFusion::Strategy::kMedian, 2, 50_ms};
  EXPECT_THROW(fusion.offer(5, ta::Value{1.0}, at(0)), std::out_of_range);
}

}  // namespace
}  // namespace decos::services
