#include "services/clock_sync.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace decos::services {
namespace {

using namespace decos::literals;

/// A cluster of N drifting nodes, each running the clock-sync service.
struct SyncCluster {
  SyncCluster(std::size_t n, const std::vector<double>& drifts_ppm,
              ClockSyncConfig config = {}) {
    bus = std::make_unique<tt::TtBus>(sim, tt::make_uniform_schedule(10_ms, n, 1, 16));
    for (std::size_t i = 0; i < n; ++i) {
      controllers.push_back(
          std::make_unique<tt::Controller>(sim, *bus, static_cast<tt::NodeId>(i),
                                           sim::DriftingClock{drifts_ppm[i]}));
      syncs.push_back(std::make_unique<ClockSync>(*controllers.back(), config));
    }
    for (auto& c : controllers) c->start();
  }

  /// Worst pairwise local-clock disagreement at true time `t` (the
  /// cluster precision).
  Duration precision(Instant t) const {
    Duration lo = Duration::max();
    Duration hi = -Duration::max();
    for (const auto& c : controllers) {
      const Duration offset = c->clock().read(t) - t;
      lo = std::min(lo, offset);
      hi = std::max(hi, offset);
    }
    return hi - lo;
  }

  sim::Simulator sim;
  std::unique_ptr<tt::TtBus> bus;
  std::vector<std::unique_ptr<tt::Controller>> controllers;
  std::vector<std::unique_ptr<ClockSync>> syncs;
};

TEST(ClockSyncTest, KeepsDriftingClustersWithinGuardianWindow) {
  // 100 ppm of relative drift over a 10ms round is 1us/round; without
  // sync the spread would grow ~100us/s. With per-round FTA resync the
  // precision stays in the low microseconds.
  SyncCluster cluster{4, {100.0, -100.0, 50.0, -50.0}};
  cluster.sim.run_until(Instant::origin() + 2_s);
  EXPECT_LT(cluster.precision(cluster.sim.now()).abs(), 20_us);
  EXPECT_GT(cluster.syncs[0]->corrections(), 100u);
}

TEST(ClockSyncTest, WithoutSyncClocksDiverge) {
  SyncCluster cluster{4, {100.0, -100.0, 50.0, -50.0}};
  cluster.syncs.clear();  // detach: listeners were registered... rebuild instead
  // Build a second cluster without sync services for comparison.
  sim::Simulator sim;
  tt::TtBus bus{sim, tt::make_uniform_schedule(10_ms, 4, 1, 16)};
  std::vector<std::unique_ptr<tt::Controller>> cs;
  const double drift[] = {100.0, -100.0, 50.0, -50.0};
  for (std::size_t i = 0; i < 4; ++i)
    cs.push_back(std::make_unique<tt::Controller>(sim, bus, static_cast<tt::NodeId>(i),
                                                  sim::DriftingClock{drift[i]}));
  // (no start: clocks free-run regardless)
  sim.run_until(Instant::origin() + 2_s);
  Duration lo = Duration::max();
  Duration hi = -Duration::max();
  for (const auto& c : cs) {
    const Duration offset = c->clock().read(sim.now()) - sim.now();
    lo = std::min(lo, offset);
    hi = std::max(hi, offset);
  }
  EXPECT_GT(hi - lo, 300_us);  // 200 ppm relative * 2s = 400us
}

TEST(ClockSyncTest, ToleratesOneByzantineClock) {
  // Node 3 has an absurd drift; with k=1 extreme-discarding the other
  // three stay tight. (Its own guardian eventually silences it too.)
  SyncCluster cluster{4, {20.0, -20.0, 0.0, 5000.0}};
  cluster.sim.run_until(Instant::origin() + 2_s);
  Duration lo = Duration::max();
  Duration hi = -Duration::max();
  for (std::size_t i = 0; i < 3; ++i) {
    const Duration offset =
        cluster.controllers[i]->clock().read(cluster.sim.now()) - cluster.sim.now();
    lo = std::min(lo, offset);
    hi = std::max(hi, offset);
  }
  EXPECT_LT(hi - lo, 20_us);
}

TEST(ClockSyncTest, ResyncEveryNRounds) {
  ClockSyncConfig config;
  config.resync_rounds = 5;
  SyncCluster cluster{3, {10.0, -10.0, 0.0}, config};
  cluster.sim.run_until(Instant::origin() + 1_s);  // 100 rounds
  // ~100/5 = 20 resyncs per node.
  EXPECT_GE(cluster.syncs[0]->corrections(), 18u);
  EXPECT_LE(cluster.syncs[0]->corrections(), 21u);
}

TEST(ClockSyncTest, NotEnoughReadingsMeansNoCorrection) {
  // 2 nodes, discard_extremes=1: after dropping high+low nothing is left.
  ClockSyncConfig config;
  config.discard_extremes = 1;
  SyncCluster cluster{2, {50.0, -50.0}, config};
  cluster.sim.run_until(Instant::origin() + 500_ms);
  EXPECT_EQ(cluster.syncs[0]->corrections(), 0u);
}

TEST(ClockSyncTest, CorrectionDirectionRetardsFastClock) {
  // Node 0 runs fast: its deviations of others' frames are negative
  // (frames appear early)... so the applied correction must advance?
  // Direction check: after one correction the fast node's offset shrinks.
  SyncCluster cluster{3, {200.0, 0.0, 0.0}};
  cluster.sim.run_until(Instant::origin() + 95_ms);
  const Duration offset_fast =
      cluster.controllers[0]->clock().read(cluster.sim.now()) - cluster.sim.now();
  // Unsynced it would be ~ +19us; with per-round sync it must be well below.
  EXPECT_LT(offset_fast.abs(), 10_us);
  EXPECT_GT(cluster.syncs[0]->corrections(), 0u);
  EXPECT_LT(cluster.syncs[0]->last_correction(), 0_ns);  // retard
}

}  // namespace
}  // namespace decos::services
