#include "services/membership.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "fault/plan.hpp"

namespace decos::services {
namespace {

using namespace decos::literals;

struct MembershipCluster {
  explicit MembershipCluster(std::size_t n, MembershipConfig config = {}) {
    config.cluster_size = n;
    bus = std::make_unique<tt::TtBus>(sim, tt::make_uniform_schedule(10_ms, n, 1, 16));
    for (std::size_t i = 0; i < n; ++i) {
      controllers.push_back(std::make_unique<tt::Controller>(
          sim, *bus, static_cast<tt::NodeId>(i), sim::DriftingClock{}));
      memberships.push_back(std::make_unique<Membership>(*controllers.back(), config));
    }
    for (auto& c : controllers) c->start();
  }

  sim::Simulator sim;
  std::unique_ptr<tt::TtBus> bus;
  std::vector<std::unique_ptr<tt::Controller>> controllers;
  std::vector<std::unique_ptr<Membership>> memberships;
};

TEST(MembershipTest, AllAliveInitiallyAndUnderNormalOperation) {
  MembershipCluster cluster{4};
  cluster.sim.run_until(Instant::origin() + 200_ms);
  for (const auto& m : cluster.memberships) {
    EXPECT_EQ(m->member_count(), 4u);
    for (tt::NodeId n = 0; n < 4; ++n) EXPECT_TRUE(m->is_member(n));
  }
}

TEST(MembershipTest, CrashDetectedWithinOneSilentRound) {
  MembershipCluster cluster{4};
  fault::FaultPlan plan{cluster.sim};
  plan.crash(*cluster.controllers[2], Instant::origin() + 55_ms);

  std::uint64_t detected_round = 0;
  cluster.memberships[0]->add_change_listener(
      [&](tt::NodeId node, bool alive, std::uint64_t round) {
        if (node == 2 && !alive) detected_round = round;
      });

  cluster.sim.run_until(Instant::origin() + 300_ms);
  EXPECT_FALSE(cluster.memberships[0]->is_member(2));
  // Crash lands at the start of round 5 (before node 2's slot fires), so
  // round 5 is already silent; detection no later than round 7.
  EXPECT_GE(detected_round, 5u);
  EXPECT_LE(detected_round, 7u);
}

TEST(MembershipTest, AllCorrectNodesAgree) {
  MembershipCluster cluster{5};
  fault::FaultPlan plan{cluster.sim};
  plan.crash(*cluster.controllers[4], Instant::origin() + 123_ms);
  cluster.sim.run_until(Instant::origin() + 500_ms);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(cluster.memberships[i]->vector(), cluster.memberships[0]->vector())
        << "node " << i << " disagrees";
    EXPECT_FALSE(cluster.memberships[i]->is_member(4));
  }
}

TEST(MembershipTest, RejoinAfterTransientOutage) {
  MembershipCluster cluster{3};
  fault::FaultPlan plan{cluster.sim};
  plan.crash(*cluster.controllers[1], Instant::origin() + 55_ms, 100_ms);

  int leaves = 0;
  int joins = 0;
  cluster.memberships[0]->add_change_listener([&](tt::NodeId node, bool alive, std::uint64_t) {
    if (node != 1) return;
    if (alive) ++joins; else ++leaves;
  });

  cluster.sim.run_until(Instant::origin() + 500_ms);
  EXPECT_EQ(leaves, 1);
  EXPECT_EQ(joins, 1);
  EXPECT_TRUE(cluster.memberships[0]->is_member(1));
}

TEST(MembershipTest, SilenceThresholdDelaysVerdict) {
  MembershipConfig config;
  config.silence_threshold = 3;
  MembershipCluster cluster{3, config};
  fault::FaultPlan plan{cluster.sim};
  plan.crash(*cluster.controllers[2], Instant::origin() + 5_ms);

  std::uint64_t detected_round = 999;
  cluster.memberships[0]->add_change_listener(
      [&](tt::NodeId node, bool alive, std::uint64_t round) {
        if (node == 2 && !alive) detected_round = std::min(detected_round, round);
      });
  cluster.sim.run_until(Instant::origin() + 300_ms);
  // Crash mid-round 0 (after its slot?)... node 2's slot is at ~6.6ms; it
  // crashed at 5ms so round 0 is already silent; verdict after 3 silent
  // rounds: rounds 0,1,2 -> announced at round 2.
  EXPECT_EQ(detected_round, 2u);
}

TEST(MembershipTest, OmittingNodeFlapsOrStaysOut) {
  MembershipCluster cluster{3};
  fault::FaultPlan plan{cluster.sim};
  plan.omission(*cluster.controllers[1], Instant::origin(), 1.0);  // drops everything
  cluster.sim.run_until(Instant::origin() + 200_ms);
  EXPECT_FALSE(cluster.memberships[0]->is_member(1));
  // The omitting node still receives: it sees everyone else alive and
  // itself (own life-sign counts locally).
  EXPECT_TRUE(cluster.memberships[1]->is_member(0));
}

}  // namespace
}  // namespace decos::services
