// Prometheus-style text exposition (obs/exposition): golden output over
// a hand-built snapshot + flow health, pinning the family names, label
// escaping, and the sampled-instrument scaling lines.
#include "obs/exposition.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace decos::obs {
namespace {

TEST(Exposition, NameSanitization) {
  EXPECT_EQ(exposition_name("vn.comfort.queue_depth"), "vn_comfort_queue_depth");
  EXPECT_EQ(exposition_name("gw.e6/x-y"), "gw_e6_x_y");
  EXPECT_EQ(exposition_name("already_ok_123"), "already_ok_123");
}

TEST(Exposition, GoldenOutput) {
  MetricsSnapshot snapshot;
  {
    MetricValue counter;
    counter.name = "tt.frames_sent";
    counter.kind = InstrumentKind::kCounter;
    counter.value = 42;
    snapshot.entries.push_back(counter);
  }
  {
    MetricValue gauge;
    gauge.name = "vn.a.queue_depth";
    gauge.kind = InstrumentKind::kGauge;
    gauge.value = 2;
    gauge.high_water = 9;
    snapshot.entries.push_back(gauge);
  }
  {
    MetricValue histogram;
    histogram.name = "sim.handler_ns";
    histogram.kind = InstrumentKind::kHistogram;
    histogram.sample_period = 16;
    histogram.count = 468;
    histogram.sum = 255164;
    histogram.p50 = 255;
    histogram.p99 = 8191;
    snapshot.entries.push_back(histogram);
  }

  FlowHealth flow;
  flow.flow = "msgA->msgB";
  flow.traces = 3000;
  flow.deadline_ns = 40'000'000;
  flow.deadline_miss = 0;
  flow.bound_ns = 21'000'000;
  flow.bound_miss = 1;
  FlowHealth::PhaseAgg& total = flow.phases["total"];
  total.n = 3000;
  total.sum_ns = 46'506'000'000;
  total.min_ns = 13'000'000;
  total.max_ns = 20'502'000;
  total.values[13'000'000] = 750;
  total.values[15'502'000] = 750;
  total.values[18'000'000] = 750;
  total.values[20'502'000] = 750;

  std::ostringstream out;
  write_exposition(out, snapshot, {flow});
  EXPECT_EQ(out.str(),
            "# TYPE decos_tt_frames_sent_total counter\n"
            "decos_tt_frames_sent_total 42\n"
            "# TYPE decos_vn_a_queue_depth gauge\n"
            "decos_vn_a_queue_depth 2\n"
            "# TYPE decos_vn_a_queue_depth_high_water gauge\n"
            "decos_vn_a_queue_depth_high_water 9\n"
            "# TYPE decos_sim_handler_ns summary\n"
            "decos_sim_handler_ns{quantile=\"0.5\"} 255\n"
            "decos_sim_handler_ns{quantile=\"0.99\"} 8191\n"
            "decos_sim_handler_ns_count 468\n"
            "decos_sim_handler_ns_sum 255164\n"
            "# TYPE decos_sim_handler_ns_sample_period gauge\n"
            "decos_sim_handler_ns_sample_period 16\n"
            "# TYPE decos_sim_handler_ns_estimated_count gauge\n"
            "decos_sim_handler_ns_estimated_count 7488\n"
            "# TYPE decos_flow_traces_total counter\n"
            "decos_flow_traces_total{flow=\"msgA->msgB\"} 3000\n"
            "# TYPE decos_flow_deadline_ns gauge\n"
            "decos_flow_deadline_ns{flow=\"msgA->msgB\"} 40000000\n"
            "# TYPE decos_flow_deadline_miss_total counter\n"
            "decos_flow_deadline_miss_total{flow=\"msgA->msgB\"} 0\n"
            "# TYPE decos_flow_bound_ns gauge\n"
            "decos_flow_bound_ns{flow=\"msgA->msgB\"} 21000000\n"
            "# TYPE decos_flow_bound_miss_total counter\n"
            "decos_flow_bound_miss_total{flow=\"msgA->msgB\"} 1\n"
            "# TYPE decos_flow_latency_ns summary\n"
            "decos_flow_latency_ns{flow=\"msgA->msgB\",phase=\"total\",quantile=\"0.5\"} "
            "15502000\n"
            "decos_flow_latency_ns{flow=\"msgA->msgB\",phase=\"total\",quantile=\"0.99\"} "
            "20502000\n"
            "decos_flow_latency_ns_count{flow=\"msgA->msgB\",phase=\"total\"} 3000\n"
            "decos_flow_latency_ns_sum{flow=\"msgA->msgB\",phase=\"total\"} 46506000000\n");
}

TEST(Exposition, EscapesLabelValues) {
  MetricsSnapshot snapshot;
  FlowHealth flow;
  flow.flow = "msg\"A\\B";
  flow.traces = 1;
  std::ostringstream out;
  write_exposition(out, snapshot, {flow});
  EXPECT_NE(out.str().find("decos_flow_traces_total{flow=\"msg\\\"A\\\\B\"} 1"),
            std::string::npos);
}

}  // namespace
}  // namespace decos::obs
