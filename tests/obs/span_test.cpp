#include "obs/span.hpp"

#include <gtest/gtest.h>

#include "obs/analysis.hpp"
#include "obs/trace.hpp"

namespace decos::obs {
namespace {

using namespace decos::literals;

Instant at(std::int64_t ns) { return Instant::from_ns(ns); }

TEST(TraceCollector, AllocatesMonotoneIds) {
  TraceCollector collector;
  const std::uint64_t t1 = collector.new_trace();
  const std::uint64_t t2 = collector.new_trace();
  EXPECT_NE(t1, 0u);
  EXPECT_EQ(t2, t1 + 1);
  const std::uint64_t s1 = collector.emit(t1, 0, Phase::kSend, "node0", "msgA", at(0), at(0));
  const std::uint64_t s2 = collector.emit(t1, s1, Phase::kBus, "bus", "slot 0", at(0), at(5));
  EXPECT_NE(s1, 0u);
  EXPECT_EQ(s2, s1 + 1);
  EXPECT_EQ(collector.total_emitted(), 2u);
}

TEST(TraceCollector, DisabledEmitReturnsZeroAndRecordsNothing) {
  TraceCollector collector;
  collector.set_enabled(false);
  EXPECT_EQ(collector.emit(1, 0, Phase::kSend, "n", "m", at(0), at(0)), 0u);
  EXPECT_TRUE(collector.spans().empty());
}

TEST(TraceCollector, RingBufferKeepsNewestSpans) {
  TraceCollector collector;
  collector.set_capacity(2);
  const std::uint64_t trace = collector.new_trace();
  for (int i = 0; i < 5; ++i)
    collector.emit(trace, 0, Phase::kSend, "n", "m" + std::to_string(i), at(i), at(i));
  EXPECT_EQ(collector.spans().size(), 2u);
  EXPECT_EQ(collector.dropped(), 3u);
  EXPECT_EQ(collector.total_emitted(), 5u);
  EXPECT_EQ(collector.spans().front().name, "m3");
  EXPECT_EQ(collector.spans().back().name, "m4");
}

TEST(TraceCollector, TraceAndSpanLookup) {
  TraceCollector collector;
  const std::uint64_t t1 = collector.new_trace();
  const std::uint64_t t2 = collector.new_trace();
  const std::uint64_t s1 = collector.emit(t1, 0, Phase::kSend, "n", "a", at(0), at(0));
  collector.emit(t2, 0, Phase::kSend, "n", "b", at(1), at(1));
  const std::uint64_t s3 = collector.emit(t1, s1, Phase::kDeliver, "n", "a", at(2), at(2));
  const auto chain = collector.trace(t1);
  ASSERT_EQ(chain.size(), 2u);
  EXPECT_EQ(chain[0]->span_id, s1);
  EXPECT_EQ(chain[1]->span_id, s3);
  ASSERT_NE(collector.by_span_id(s3), nullptr);
  EXPECT_EQ(collector.by_span_id(s3)->phase, Phase::kDeliver);
  EXPECT_EQ(collector.by_span_id(9999), nullptr);
}

TEST(SpanIntegrity, DetectsBrokenParentLinks) {
  std::vector<Span> spans;
  Span root;
  root.trace_id = 1;
  root.span_id = 1;
  root.start = at(0);
  root.end = at(0);
  spans.push_back(root);

  Span orphan = root;
  orphan.span_id = 2;
  orphan.parent_id = 77;  // missing parent
  spans.push_back(orphan);

  Span cross = root;
  cross.span_id = 3;
  cross.parent_id = 1;
  cross.trace_id = 2;  // parent belongs to another trace
  spans.push_back(cross);

  Span backwards = root;
  backwards.span_id = 4;
  backwards.start = at(10);
  backwards.end = at(5);  // ends before it starts
  spans.push_back(backwards);

  const std::vector<std::string> violations = check_span_integrity(spans);
  EXPECT_EQ(violations.size(), 3u);
}

TEST(SpanIntegrity, AcceptsWellFormedChain) {
  std::vector<Span> spans;
  Span root;
  root.trace_id = 1;
  root.span_id = 1;
  root.start = at(0);
  root.end = at(0);
  spans.push_back(root);
  Span child = root;
  child.span_id = 2;
  child.parent_id = 1;
  child.start = at(0);
  child.end = at(100);
  spans.push_back(child);
  EXPECT_TRUE(check_span_integrity(spans).empty());
}

TEST(TraceRecorder, RingBufferEvictsButCountsStayCumulative) {
  TraceRecorder recorder;
  recorder.set_capacity(3);
  for (int i = 0; i < 5; ++i)
    recorder.record(at(i), TraceKind::kFrameSent, "node" + std::to_string(i));
  EXPECT_EQ(recorder.records().size(), 3u);
  EXPECT_EQ(recorder.dropped(), 2u);
  EXPECT_EQ(recorder.total_recorded(), 5u);
  EXPECT_EQ(recorder.count(TraceKind::kFrameSent), 5u);  // cumulative
  // Retained window holds the newest records; seq survives eviction.
  EXPECT_EQ(recorder.records().front().subject, "node2");
  EXPECT_EQ(recorder.records().front().seq, 2u);
  // Per-kind traversal only visits retained records.
  std::size_t visited = 0;
  recorder.for_each(TraceKind::kFrameSent, [&](const TraceRecord&) { ++visited; });
  EXPECT_EQ(visited, 3u);
}

TEST(TraceRecorder, ShrinksWhenCapacityLowered) {
  TraceRecorder recorder;
  for (int i = 0; i < 10; ++i) recorder.record(at(i), TraceKind::kMessageSent, "m");
  recorder.set_capacity(4);
  EXPECT_EQ(recorder.records().size(), 4u);
  EXPECT_EQ(recorder.dropped(), 6u);
}

TEST(TraceRecorder, MacroSkipsArgumentConstructionWhenDisabled) {
  TraceRecorder recorder;
  recorder.set_enabled(false);
  int evaluations = 0;
  const auto expensive = [&evaluations] {
    ++evaluations;
    return std::string{"detail"};
  };
  DECOS_TRACE(recorder, at(0), TraceKind::kFaultInjected, "subject", expensive());
  EXPECT_EQ(evaluations, 0);
  EXPECT_EQ(recorder.total_recorded(), 0u);

  recorder.set_enabled(true);
  DECOS_TRACE(recorder, at(0), TraceKind::kFaultInjected, "subject", expensive());
  EXPECT_EQ(evaluations, 1);
  EXPECT_EQ(recorder.total_recorded(), 1u);
}

}  // namespace
}  // namespace decos::obs
