#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <new>

#include "util/result.hpp"

// Global allocation counter backing the zero-allocation hot-path test.
// Replacing the global operator new in this test binary routes every
// heap allocation (including gtest's own) through the counter; the test
// only looks at the delta across instrument updates.
namespace {
std::size_t g_allocations = 0;
}

void* operator new(std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace decos::obs {
namespace {

TEST(MetricsRegistry, SameNameReturnsSameInstrument) {
  MetricsRegistry registry;
  Counter& a = registry.counter("x.count");
  Counter& b = registry.counter("x.count");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(registry.instrument_count(), 1u);
}

TEST(MetricsRegistry, KindClashThrows) {
  MetricsRegistry registry;
  registry.counter("x");
  EXPECT_THROW(registry.gauge("x"), SpecError);
  EXPECT_THROW(registry.histogram("x"), SpecError);
}

TEST(MetricsRegistry, StableAddressesAcrossRegistrations) {
  MetricsRegistry registry;
  Counter& first = registry.counter("first");
  for (int i = 0; i < 100; ++i) registry.counter("c" + std::to_string(i));
  first.add(7);
  EXPECT_EQ(registry.counter("first").value(), kMetricsEnabled ? 7u : 0u);
}

TEST(Counters, CountEvents) {
  if (!kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  Counter c;
  c.add();
  c.add(4);
  EXPECT_EQ(c.value(), 5u);
}

TEST(Gauges, TrackHighWater) {
  if (!kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  Gauge g;
  g.set(3);
  g.set(9);
  g.set(2);
  EXPECT_EQ(g.value(), 2);
  EXPECT_EQ(g.high_water(), 9);
  EXPECT_EQ(g.updates(), 3u);
}

TEST(Histograms, TracksExtremesAndPercentiles) {
  if (!kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  Histogram h;
  for (std::int64_t v : {100, 200, 400, 800, 1600}) h.observe(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 3100);
  EXPECT_EQ(h.min(), 100);
  EXPECT_EQ(h.max(), 1600);
  EXPECT_DOUBLE_EQ(h.mean(), 620.0);
  // Log2 bins: percentiles are bin upper bounds, clamped to the true max.
  EXPECT_LE(h.percentile(0.50), h.percentile(0.99));
  EXPECT_EQ(h.percentile(1.0), 1600);
  EXPECT_GE(h.percentile(0.50), 100);
}

TEST(Histograms, NegativeSamplesClampToZero) {
  if (!kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  Histogram h;
  h.observe(-5);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
}

TEST(Snapshots, SortedFindAndDeadInstruments) {
  MetricsRegistry registry;
  registry.counter("z.never");
  Counter& used = registry.counter("a.used");
  used.add();
  registry.gauge("m.gauge").set(5);
  const MetricsSnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.entries.size(), 3u);
  EXPECT_EQ(snap.entries.front().name, "a.used");
  EXPECT_EQ(snap.entries.back().name, "z.never");
  ASSERT_NE(snap.find("m.gauge"), nullptr);
  EXPECT_EQ(snap.find("missing"), nullptr);
  if (kMetricsEnabled) {
    EXPECT_EQ(snap.dead_instruments(), std::vector<std::string>{"z.never"});
  }
}

TEST(Snapshots, FingerprintIgnoresHostTimeInstruments) {
  if (!kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  MetricsRegistry a;
  MetricsRegistry b;
  a.counter("events").add(42);
  b.counter("events").add(42);
  // Host-time instruments differ run to run; the fingerprint must not
  // depend on them.
  a.histogram("cost_ns", Determinism::kHostTime).observe(123);
  b.histogram("cost_ns", Determinism::kHostTime).observe(98765);
  EXPECT_EQ(a.snapshot().deterministic_fingerprint(), b.snapshot().deterministic_fingerprint());

  b.counter("events").add();  // now a deterministic value diverges
  EXPECT_NE(a.snapshot().deterministic_fingerprint(), b.snapshot().deterministic_fingerprint());
}

TEST(MetricsHotPath, NoAllocationPerEvent) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("hot.counter");
  Gauge& gauge = registry.gauge("hot.gauge");
  Histogram& histogram = registry.histogram("hot.histogram");
  // Warm up (first touches must not lazily allocate either, but keep the
  // measurement strictly over steady-state updates).
  counter.add();
  gauge.set(1);
  histogram.observe(1);

  const std::size_t before = g_allocations;
  for (std::int64_t i = 0; i < 10000; ++i) {
    counter.add();
    gauge.set(i);
    histogram.observe(i * 37);
  }
  EXPECT_EQ(g_allocations, before) << "instrument updates must not allocate";
}

TEST(MetricsHotPath, ScopedTimerNullHistogramIsNoOp) {
  const std::size_t before = g_allocations;
  for (int i = 0; i < 100; ++i) {
    ScopedTimer timer{static_cast<Histogram*>(nullptr)};
  }
  EXPECT_EQ(g_allocations, before);
}

TEST(MetricsHotPath, ScopedTimerObservesElapsed) {
  if (!kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  Histogram h;
  {
    ScopedTimer timer{h};
  }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(h.min(), 0);
}

}  // namespace
}  // namespace decos::obs
