// End-to-end observability over a gateway pipeline (the E6 topology): a
// TT producer in DAS A, the virtual gateway on node 2, a TT consumer in
// DAS B. Checks that every message instance carries one causally linked
// span chain send -> bus -> dissect -> repo_wait -> construct -> deliver,
// and that identical runs produce identical spans and metric snapshots.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <sstream>

#include "../helpers.hpp"
#include "core/gateway_job.hpp"
#include "core/virtual_gateway.hpp"
#include "core/wiring.hpp"
#include "obs/analysis.hpp"
#include "obs/export.hpp"
#include "platform/cluster.hpp"
#include "vn/tt_vn.hpp"

namespace decos {
namespace {

using namespace decos::literals;
using decos::testing::make_state_instance;
using decos::testing::state_message;

struct RunResult {
  std::vector<obs::Span> spans;
  std::string fingerprint;
  std::string dump;  // full JSONL serialization (spans + metrics)
  std::size_t delivered = 0;
};

spec::PortSpec tt_port(const std::string& message, spec::DataDirection direction,
                       Duration period) {
  spec::PortSpec ps;
  ps.message = message;
  ps.direction = direction;
  ps.semantics = spec::InfoSemantics::kState;
  ps.paradigm = spec::ControlParadigm::kTimeTriggered;
  ps.period = period;
  ps.min_interarrival = 1_us;
  ps.max_interarrival = Duration::seconds(3600);
  return ps;
}

RunResult run_pipeline() {
  platform::ClusterConfig config;
  config.nodes = 3;
  config.round_length = 10_ms;
  config.allocations = {
      {1, "dasA", 32, {0}},
      {2, "dasB", 32, {2}},
  };
  platform::Cluster cluster{config};

  vn::TtVirtualNetwork vn_a{"vn-a", 1};
  vn_a.register_message(state_message("msgA", "image", 1));
  vn::TtVirtualNetwork vn_b{"vn-b", 2};

  spec::LinkSpec link_a{"dasA"};
  link_a.add_message(state_message("msgA", "image", 1));
  link_a.add_port(tt_port("msgA", spec::DataDirection::kInput, 10_ms));
  spec::LinkSpec link_b{"dasB"};
  link_b.add_message(state_message("msgB", "image", 2));
  link_b.add_port(tt_port("msgB", spec::DataDirection::kOutput, 10_ms));

  core::GatewayConfig gwc;
  gwc.default_d_acc = 40_ms;
  gwc.dispatch_period = 1_ms;
  core::VirtualGateway gateway{"pipe", std::move(link_a), std::move(link_b), gwc};
  gateway.finalize();
  core::wire_tt_link(gateway, 0, vn_a, cluster.controller(2), {});
  core::wire_tt_link(gateway, 1, vn_b, cluster.controller(2), {{"msgB", cluster.vn_slots(2, 2)}});
  cluster.component(2)
      .add_partition("gw", "architecture", 0_ms, 1_ms)
      .add_job(std::make_unique<core::GatewayJob>(gateway));

  platform::Partition& p0 = cluster.component(0).add_partition("prod", "dasA", 1_ms, 1_ms);
  platform::FunctionJob& producer = p0.add_function_job(
      "producer", [&vn_a](platform::FunctionJob& self, Instant now) {
        self.ports()[0]->deposit(
            make_state_instance(*vn_a.message_spec("msgA"),
                                static_cast<int>(self.activations()), now),
            now);
      });
  vn_a.attach_sender(cluster.controller(0),
                     producer.add_port(tt_port("msgA", spec::DataDirection::kOutput, 10_ms)),
                     cluster.vn_slots(1, 0));

  RunResult result;
  vn::Port consumer{tt_port("msgB", spec::DataDirection::kInput, 10_ms)};
  vn_b.attach_receiver(cluster.controller(1), consumer);
  consumer.set_notify([&result](vn::Port& port) {
    if (port.read()) ++result.delivered;
  });

  cluster.start();
  cluster.run_for(200_ms);

  for (const obs::Span& s : cluster.spans().spans()) result.spans.push_back(s);
  result.fingerprint = cluster.metrics().snapshot().deterministic_fingerprint();

  std::ostringstream out;
  obs::DumpWriter writer{out};
  writer.begin_cell("pipeline");
  writer.add_spans(cluster.spans());
  result.dump = out.str();
  return result;
}

TEST(PipelineTrace, EveryPhaseAppearsAndChainsAreIntact) {
  const RunResult run = run_pipeline();
  ASSERT_GT(run.delivered, 0u);
  ASSERT_FALSE(run.spans.empty());

  std::set<obs::Phase> seen;
  for (const obs::Span& s : run.spans) seen.insert(s.phase);
  EXPECT_EQ(seen.size(), obs::kPhaseCount) << "some pipeline phase never emitted a span";

  const std::vector<std::string> violations = obs::check_span_integrity(run.spans);
  EXPECT_TRUE(violations.empty()) << violations.front();
}

TEST(PipelineTrace, BreakdownMeasuresTheGatewayFlow) {
  const RunResult run = run_pipeline();
  const obs::Breakdown breakdown = obs::phase_breakdown(run.spans);
  const auto it = breakdown.find("msgA->msgB");
  ASSERT_NE(it, breakdown.end()) << "expected an end-to-end msgA->msgB flow";
  const obs::FlowStats& flow = it->second;
  for (const char* phase : obs::kBreakdownPhases) {
    const auto p = flow.phases.find(phase);
    ASSERT_NE(p, flow.phases.end()) << phase << " missing from breakdown";
    EXPECT_FALSE(p->second.empty()) << phase << " has no samples";
  }
  // End-to-end latency must cover at least the bus ingress and be bounded
  // by the run length.
  const obs::LatencySet& total = flow.phases.at("total");
  EXPECT_GT(total.min(), 0);
  EXPECT_LT(total.max(), Duration::milliseconds(200).ns());
}

TEST(PipelineTrace, IdenticalRunsProduceIdenticalObservability) {
  const RunResult a = run_pipeline();
  const RunResult b = run_pipeline();
  EXPECT_EQ(a.delivered, b.delivered);
  // Same spans, ids, timestamps: byte-identical serialized dumps.
  EXPECT_EQ(a.dump, b.dump);
  // Same deterministic metric values (host-time histograms excluded).
  EXPECT_EQ(a.fingerprint, b.fingerprint);
}

}  // namespace
}  // namespace decos
