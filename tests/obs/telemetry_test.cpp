// Streaming windowed telemetry (obs/telemetry): the live aggregator
// must reproduce analysis.cpp's post-hoc phase_breakdown exactly, place
// samples in the right tumbling windows (including empty windows and
// traces straddling window boundaries), count deadline/bound misses
// with the temporal-accuracy semantics, and emit a byte-deterministic
// stream that load_telemetry folds back losslessly.
#include "obs/telemetry.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "obs/analysis.hpp"

namespace decos::obs {
namespace {

using namespace decos::literals;

Instant at(std::int64_t ns) { return Instant::from_ns(ns); }

/// Emit one E6-shaped gateway trace: send -> bus -> deliver into the
/// gateway port -> dissect -> repo wait -> construct -> bus -> deliver.
/// All offsets are relative to `t0`; `repo_ns` varies the dominant
/// phase so percentiles see distinct values.
void emit_gateway_trace(TraceCollector& collector, Instant t0, std::int64_t repo_ns) {
  const std::uint64_t trace = collector.new_trace();
  const std::uint64_t root =
      collector.emit(trace, 0, Phase::kSend, "node0", "msgA", t0, t0, 1);
  const std::uint64_t bus =
      collector.emit(trace, root, Phase::kBus, "bus", "slot 0", t0, t0 + 2_ms, 32);
  // Delivery into the gateway's own input port: precedes the construct,
  // so it must be held pending, then superseded by the real delivery.
  const std::uint64_t gw_in =
      collector.emit(trace, bus, Phase::kDeliver, "vn:a", "msgA", t0 + 2_ms, t0 + 2_ms);
  const std::uint64_t dis = collector.emit(trace, gw_in, Phase::kDissect, "gw", "msgA",
                                           t0 + 2_ms, t0 + 2_ms + 100_us);
  const Instant repo_end = t0 + 2_ms + 100_us + Duration::nanoseconds(repo_ns);
  const std::uint64_t repo = collector.emit(trace, dis, Phase::kRepoWait, "gw", "image",
                                            t0 + 2_ms + 100_us, repo_end);
  const std::uint64_t con =
      collector.emit(trace, repo, Phase::kConstruct, "gw", "msgB", repo_end, repo_end + 50_us);
  const std::uint64_t bus2 = collector.emit(trace, con, Phase::kBus, "bus", "slot 1",
                                            repo_end + 50_us, repo_end + 1_ms);
  collector.emit(trace, bus2, Phase::kDeliver, "vn:b", "msgB", repo_end + 1_ms, repo_end + 1_ms);
}

/// Direct (gateway-less) trace: send -> bus -> deliver, then a stray
/// dissect *after* the delivery. The post-hoc scan stops at the first
/// qualifying deliver, so that dissect must not produce a phase sample.
void emit_direct_trace(TraceCollector& collector, Instant t0, std::int64_t bus_ns) {
  const std::uint64_t trace = collector.new_trace();
  const std::uint64_t root =
      collector.emit(trace, 0, Phase::kSend, "node1", "msgC", t0, t0);
  const Instant bus_end = t0 + Duration::nanoseconds(bus_ns);
  const std::uint64_t bus =
      collector.emit(trace, root, Phase::kBus, "bus", "slot 2", t0, bus_end);
  collector.emit(trace, bus, Phase::kDeliver, "vn:c", "msgC", bus_end, bus_end + 500_us);
  collector.emit(trace, bus, Phase::kDissect, "gw", "msgC", bus_end + 1_ms, bus_end + 1_ms + 10_us);
}

std::vector<Span> as_vector(const TraceCollector& collector) {
  return std::vector<Span>{collector.spans().begin(), collector.spans().end()};
}

std::vector<TelemetryStream> parse(const std::string& text) {
  std::istringstream in{text};
  Result<std::vector<TelemetryStream>> streams = load_telemetry(in);
  EXPECT_TRUE(streams.ok()) << streams.error().message;
  return streams.ok() ? streams.value() : std::vector<TelemetryStream>{};
}

const FlowHealth* find_flow(const std::vector<FlowHealth>& flows, std::string_view key) {
  for (const FlowHealth& f : flows)
    if (f.flow == key) return &f;
  return nullptr;
}

TEST(WindowAggregator, MatchesPhaseBreakdownExactly) {
  TraceCollector collector;
  std::ostringstream out;
  OstreamTelemetrySink sink{out};
  WindowAggregator aggregator{nullptr, &collector, TelemetryConfig{}};
  aggregator.set_sink(&sink);
  aggregator.begin_stream("exactness");
  collector.set_sink(&aggregator);

  // 40 gateway traces with varying repo waits (several per 100 ms
  // window) and 17 direct traces; enough distinct values that a wrong
  // nearest-rank formula shows up in p50/p99.
  for (int i = 0; i < 40; ++i)
    emit_gateway_trace(collector, at(i * 7'000'000), 300'000 + 137'000 * (i % 11));
  for (int i = 0; i < 17; ++i)
    emit_direct_trace(collector, at(3'000'000 + i * 9'000'000), 900'000 + 101'000 * (i % 5));
  aggregator.flush();

  const Breakdown breakdown = phase_breakdown(as_vector(collector));
  const std::vector<FlowHealth> live = flow_health(parse(out.str()));
  ASSERT_EQ(breakdown.size(), live.size());
  for (const auto& [key, stats] : breakdown) {
    const FlowHealth* flow = find_flow(live, key);
    ASSERT_NE(flow, nullptr) << key;
    EXPECT_EQ(flow->traces, stats.traces) << key;
    for (const char* phase : kBreakdownPhases) {
      const auto post = stats.phases.find(phase);
      const auto it = flow->phases.find(phase);
      if (post == stats.phases.end() || post->second.empty()) {
        EXPECT_TRUE(it == flow->phases.end() || it->second.n == 0) << key << "/" << phase;
        continue;
      }
      ASSERT_NE(it, flow->phases.end()) << key << "/" << phase;
      const LatencySet& set = post->second;
      const FlowHealth::PhaseAgg& agg = it->second;
      EXPECT_TRUE(agg.exact()) << key << "/" << phase;
      EXPECT_EQ(agg.n, set.count()) << key << "/" << phase;
      EXPECT_EQ(agg.min_ns, set.min()) << key << "/" << phase;
      EXPECT_EQ(agg.max_ns, set.max()) << key << "/" << phase;
      EXPECT_DOUBLE_EQ(agg.mean(), set.mean()) << key << "/" << phase;
      for (const double p : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0})
        EXPECT_EQ(agg.percentile(p), set.percentile(p)) << key << "/" << phase << " p=" << p;
    }
  }
}

TEST(WindowAggregator, LandmarkAfterUnconstructedDeliverDoesNotCount) {
  TraceCollector collector;
  std::ostringstream out;
  OstreamTelemetrySink sink{out};
  WindowAggregator aggregator{nullptr, &collector, TelemetryConfig{}};
  aggregator.set_sink(&sink);
  aggregator.begin_stream("rollback");
  collector.set_sink(&aggregator);

  emit_direct_trace(collector, at(0), 1'000'000);
  aggregator.flush();

  const std::vector<FlowHealth> flows = flow_health(parse(out.str()));
  const FlowHealth* flow = find_flow(flows, "msgC");
  ASSERT_NE(flow, nullptr);
  EXPECT_EQ(flow->traces, 1u);
  // The dissect span arrived after the (terminal) delivery: no dissect
  // sample, exactly like the post-hoc scan that breaks at the deliver.
  EXPECT_EQ(flow->phases.count("dissect"), 0u);
  ASSERT_EQ(flow->phases.count("total"), 1u);
  EXPECT_EQ(flow->phases.at("total").max_ns, 1'500'000);  // bus 1ms + 500us delivery
}

TEST(WindowAggregator, EmptyAndStraddlingWindows) {
  TraceCollector collector;
  std::ostringstream out;
  OstreamTelemetrySink sink{out};
  TelemetryConfig config;
  config.window = 1_ms;
  WindowAggregator aggregator{nullptr, &collector, config};
  aggregator.set_sink(&sink);
  aggregator.begin_stream("windows");
  collector.set_sink(&aggregator);

  // Trace A lives entirely in window 0. Trace B's root starts in window
  // 0 but its post-construct delivery ends at 2.5 ms -- the whole trace
  // belongs to window 2, and window 1 must still be emitted, empty.
  // (A trace with a construct finalizes at the next deliver; without
  // one the deliver stays pending until flush.)
  {
    const std::uint64_t trace = collector.new_trace();
    const std::uint64_t root = collector.emit(trace, 0, Phase::kSend, "n", "msgA", at(0), at(0));
    const std::uint64_t con =
        collector.emit(trace, root, Phase::kConstruct, "gw", "msgB", at(0), at(100'000));
    collector.emit(trace, con, Phase::kDeliver, "vn", "msgB", at(100'000), at(400'000));
  }
  {
    const std::uint64_t trace = collector.new_trace();
    const std::uint64_t root =
        collector.emit(trace, 0, Phase::kSend, "n", "msgA", at(800'000), at(800'000));
    const std::uint64_t con =
        collector.emit(trace, root, Phase::kConstruct, "gw", "msgB", at(800'000), at(900'000));
    collector.emit(trace, con, Phase::kDeliver, "vn", "msgB", at(900'000), at(2'500'000));
  }
  aggregator.flush();

  const std::vector<TelemetryStream> streams = parse(out.str());
  ASSERT_EQ(streams.size(), 1u);
  EXPECT_EQ(streams[0].window_ns, 1'000'000);
  ASSERT_EQ(streams[0].windows.size(), 3u);

  const TelemetryWindow& w0 = streams[0].windows[0];
  EXPECT_EQ(w0.seq, 0u);
  EXPECT_EQ(w0.start_ns, 0);
  EXPECT_EQ(w0.end_ns, 1'000'000);
  ASSERT_EQ(w0.flows.size(), 1u);  // trace A only; B is still open
  EXPECT_EQ(w0.flows[0].traces, 1u);
  EXPECT_EQ(w0.open, 1u);

  const TelemetryWindow& w1 = streams[0].windows[1];
  EXPECT_EQ(w1.seq, 1u);
  EXPECT_TRUE(w1.flows.empty());  // nothing finalized between 1 ms and 2 ms

  const TelemetryWindow& w2 = streams[0].windows[2];
  EXPECT_EQ(w2.seq, 2u);
  ASSERT_EQ(w2.flows.size(), 1u);  // trace B lands where it was delivered
  EXPECT_EQ(w2.flows[0].traces, 1u);
  EXPECT_EQ(w2.flows[0].phases.at("total").max_ns, 1'700'000);
  EXPECT_EQ(w2.late, 0u);  // delivered inside the current window
}

TEST(WindowAggregator, DeadlineUsesTemporalAccuracyAndBoundIsStrict) {
  TraceCollector collector;
  std::ostringstream out;
  OstreamTelemetrySink sink{out};
  WindowAggregator aggregator{nullptr, &collector, TelemetryConfig{}};
  aggregator.set_sink(&sink);
  aggregator.begin_stream("slo");
  // Registered before the flow exists: must apply on first appearance.
  aggregator.set_deadline("msgC", Duration::nanoseconds(1'500'000));
  aggregator.set_bound("msgC", 1'500'000);
  collector.set_sink(&aggregator);

  emit_direct_trace(collector, at(0), 1'000'000);         // total exactly 1.5 ms
  emit_direct_trace(collector, at(10'000'000), 900'000);  // total 1.4 ms
  aggregator.flush();

  const std::vector<WindowAggregator::FlowTotals> totals = aggregator.totals();
  ASSERT_EQ(totals.size(), 1u);
  EXPECT_EQ(totals[0].flow, "msgC");
  EXPECT_EQ(totals[0].traces, 2u);
  // Temporal accuracy holds only while t < t_update + d_acc: a latency
  // equal to the deadline is already a miss...
  EXPECT_EQ(totals[0].deadline_miss, 1u);
  // ...but declint's bound check is strict (observed > bound), so the
  // same 1.5 ms total does not breach a 1.5 ms static bound.
  EXPECT_EQ(totals[0].bound_miss, 0u);

  // The stream round-trips the same accounting.
  const std::vector<FlowHealth> flows = flow_health(parse(out.str()));
  const FlowHealth* flow = find_flow(flows, "msgC");
  ASSERT_NE(flow, nullptr);
  EXPECT_EQ(flow->deadline_ns, 1'500'000);
  EXPECT_EQ(flow->deadline_miss, 1u);
  EXPECT_EQ(flow->bound_ns, 1'500'000);
  EXPECT_EQ(flow->bound_miss, 0u);
}

TEST(WindowAggregator, CollidingRootEvictsAndFlushFinalizesLate) {
  TraceCollector collector;
  std::ostringstream out;
  OstreamTelemetrySink sink{out};
  TelemetryConfig config;
  config.window = 1_ms;
  config.max_open_traces = 4;
  WindowAggregator aggregator{nullptr, &collector, config};
  aggregator.set_sink(&sink);
  aggregator.begin_stream("evict");
  collector.set_sink(&aggregator);

  // Trace 1 and trace 5 map to the same slot (id % 4). Trace 1 never
  // delivers; the colliding root finalizes it with its last span as
  // terminal. Trace 5 stays open until flush, in a later window than
  // its last span -- the late counter must record that.
  const std::uint64_t t1 = collector.new_trace();
  ASSERT_EQ(t1, 1u);
  const std::uint64_t r1 = collector.emit(t1, 0, Phase::kSend, "n", "msgA", at(0), at(0));
  collector.emit(t1, r1, Phase::kBus, "bus", "s", at(0), at(300'000));
  std::uint64_t t5 = collector.new_trace();
  while (t5 % config.max_open_traces != t1 % config.max_open_traces) t5 = collector.new_trace();
  const std::uint64_t r5 = collector.emit(t5, 0, Phase::kSend, "n", "msgA", at(400'000),
                                          at(400'000));
  collector.emit(t5, r5, Phase::kBus, "bus", "s", at(400'000), at(500'000));
  // Push the watermark two windows past trace 5's spans before flushing.
  collector.emit(0, 0, Phase::kSend, "n", "tick", at(2'600'000), at(2'600'000));
  aggregator.flush();

  EXPECT_EQ(aggregator.traces_evicted(), 1u);
  EXPECT_EQ(aggregator.late_finalized(), 1u);

  const std::vector<TelemetryStream> streams = parse(out.str());
  ASSERT_EQ(streams.size(), 1u);
  std::uint64_t evicted = 0;
  std::uint64_t late = 0;
  std::uint64_t traces = 0;
  for (const TelemetryWindow& w : streams[0].windows) {
    evicted += w.evicted;
    late += w.late;
    for (const TelemetryFlow& f : w.flows) traces += f.traces;
  }
  EXPECT_EQ(evicted, 1u);
  EXPECT_EQ(late, 1u);
  EXPECT_EQ(traces, 2u);
}

TEST(WindowAggregator, StreamBytesAreDeterministic) {
  const auto run = [] {
    TraceCollector collector;
    std::ostringstream out;
    OstreamTelemetrySink sink{out};
    WindowAggregator aggregator{nullptr, &collector, TelemetryConfig{}};
    aggregator.set_sink(&sink);
    aggregator.begin_stream("determinism");
    collector.set_sink(&aggregator);
    for (int i = 0; i < 25; ++i)
      emit_gateway_trace(collector, at(i * 11'000'000), 250'000 + 173'000 * (i % 7));
    aggregator.flush();
    return out.str();
  };
  const std::string first = run();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, run());
}

TEST(WindowAggregator, FoldsMetricDeltasPerWindow) {
  if (!kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  MetricsRegistry registry;
  Counter& frames = registry.counter("tt.frames_sent");
  Gauge& depth = registry.gauge("vn.depth");
  Histogram& handler = registry.histogram("sim.handler_ns", Determinism::kDeterministic, 16);

  TraceCollector collector;
  std::ostringstream out;
  OstreamTelemetrySink sink{out};
  TelemetryConfig config;
  config.window = 1_ms;
  WindowAggregator aggregator{&registry, &collector, config};
  aggregator.set_sink(&sink);
  aggregator.begin_stream("metrics");
  collector.set_sink(&aggregator);

  frames.add(3);
  depth.set(7);
  handler.observe(120);
  collector.emit(0, 0, Phase::kSend, "n", "tick", at(1'100'000), at(1'100'000));  // close w0
  frames.add(2);
  depth.set(2);
  collector.emit(0, 0, Phase::kSend, "n", "tick", at(2'100'000), at(2'100'000));  // close w1
  aggregator.flush();

  const std::vector<TelemetryStream> streams = parse(out.str());
  ASSERT_EQ(streams.size(), 1u);
  ASSERT_GE(streams[0].windows.size(), 2u);

  const auto metric = [](const TelemetryWindow& w, std::string_view name) -> const TelemetryMetric* {
    for (const TelemetryMetric& m : w.metrics)
      if (m.name == name) return &m;
    return nullptr;
  };
  const TelemetryMetric* f0 = metric(streams[0].windows[0], "tt.frames_sent");
  ASSERT_NE(f0, nullptr);
  EXPECT_EQ(f0->delta, 3);
  const TelemetryMetric* f1 = metric(streams[0].windows[1], "tt.frames_sent");
  ASSERT_NE(f1, nullptr);
  EXPECT_EQ(f1->delta, 2);
  const TelemetryMetric* d1 = metric(streams[0].windows[1], "vn.depth");
  ASSERT_NE(d1, nullptr);
  EXPECT_EQ(d1->value, 2);
  const TelemetryMetric* h0 = metric(streams[0].windows[0], "sim.handler_ns");
  ASSERT_NE(h0, nullptr);
  EXPECT_EQ(h0->n, 1u);
  EXPECT_EQ(h0->sample_period, 16u);  // sampling factor rides the stream

  // Folding the deltas back reproduces the cumulative picture.
  const MetricsSnapshot folded = accumulate_metrics(streams);
  const MetricValue* frames_total = folded.find("tt.frames_sent");
  ASSERT_NE(frames_total, nullptr);
  EXPECT_EQ(frames_total->value, 5);
  const MetricValue* depth_total = folded.find("vn.depth");
  ASSERT_NE(depth_total, nullptr);
  EXPECT_EQ(depth_total->value, 2);
  EXPECT_EQ(depth_total->high_water, 7);
  const MetricValue* handler_total = folded.find("sim.handler_ns");
  ASSERT_NE(handler_total, nullptr);
  EXPECT_EQ(handler_total->count, 1u);
  EXPECT_EQ(handler_total->sample_period, 16u);
}

TEST(LoadFlowBounds, ReadsDeclintExport) {
  std::istringstream in{R"({"cluster":{"flows":[)"
                        R"({"key":"msgA->msgB","bound_ns":40000000},)"
                        R"({"key":"msgC","bound_ns":1500000}]}})"};
  Result<std::vector<std::pair<std::string, std::int64_t>>> bounds = load_flow_bounds(in);
  ASSERT_TRUE(bounds.ok()) << bounds.error().message;
  ASSERT_EQ(bounds.value().size(), 2u);
  EXPECT_EQ(bounds.value()[0].first, "msgA->msgB");
  EXPECT_EQ(bounds.value()[0].second, 40'000'000);
  EXPECT_EQ(bounds.value()[1].first, "msgC");
  EXPECT_EQ(bounds.value()[1].second, 1'500'000);
}

}  // namespace
}  // namespace decos::obs
