#include "obs/export.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "obs/analysis.hpp"
#include "obs/json.hpp"

namespace decos::obs {
namespace {

Instant at(std::int64_t ns) { return Instant::from_ns(ns); }

/// Collector + recorder + registry with a little of everything.
struct Fixture {
  Fixture() {
    const std::uint64_t trace = collector.new_trace();
    const std::uint64_t root =
        collector.emit(trace, 0, Phase::kSend, "node0", "msgA", at(1000), at(1000), 7);
    collector.emit(trace, root, Phase::kBus, "bus", "slot 0", at(1000), at(3000), 32);
    recorder.record(at(2000), TraceKind::kFrameSent, "n0", "slot 0", 32);
    if (kMetricsEnabled) {
      registry.counter("tt.frames_sent").add(3);
      registry.gauge("vn.depth").set(2);
      registry.histogram("gw.latency_ns").observe(1500);
    } else {
      registry.counter("tt.frames_sent");
      registry.gauge("vn.depth");
      registry.histogram("gw.latency_ns");
    }
  }

  TraceCollector collector;
  TraceRecorder recorder;
  MetricsRegistry registry;
};

TEST(DumpRoundtrip, PreservesSpansRecordsAndMetrics) {
  Fixture f;
  std::ostringstream out;
  DumpWriter writer{out};
  writer.begin_cell("cell-a");
  writer.add_spans(f.collector);
  writer.add_records("bus", f.recorder);
  writer.add_metrics(f.registry.snapshot());

  std::istringstream in{out.str()};
  Result<Dump> loaded = load_jsonl(in);
  ASSERT_TRUE(loaded.ok()) << loaded.error().message;
  ASSERT_EQ(loaded.value().cells.size(), 1u);
  const DumpCell& cell = loaded.value().cells.front();
  EXPECT_EQ(cell.label, "cell-a");

  ASSERT_EQ(cell.spans.size(), 2u);
  const Span& root = cell.spans[0];
  EXPECT_EQ(root.trace_id, 1u);
  EXPECT_EQ(root.span_id, 1u);
  EXPECT_EQ(root.phase, Phase::kSend);
  EXPECT_EQ(root.track, "node0");
  EXPECT_EQ(root.name, "msgA");
  EXPECT_EQ(root.start.ns(), 1000);
  EXPECT_EQ(root.value, 7);
  EXPECT_EQ(cell.spans[1].parent_id, root.span_id);
  EXPECT_EQ(cell.spans[1].end.ns(), 3000);

  ASSERT_EQ(cell.records.size(), 1u);
  EXPECT_EQ(cell.records[0].first, "bus");
  EXPECT_EQ(cell.records[0].second.kind, TraceKind::kFrameSent);
  EXPECT_EQ(cell.records[0].second.subject, "n0");
  EXPECT_EQ(cell.records[0].second.value, 32);

  ASSERT_EQ(cell.metrics.entries.size(), 3u);
  const MetricValue* counter = cell.metrics.find("tt.frames_sent");
  ASSERT_NE(counter, nullptr);
  if (kMetricsEnabled) EXPECT_EQ(counter->value, 3);
}

TEST(DumpRoundtrip, RejectsMalformedLines) {
  std::istringstream in{"{\"type\":\"span\",\"phase\":\"bogus\"}\n"};
  EXPECT_FALSE(load_jsonl(in).ok());
  std::istringstream garbage{"not json at all\n"};
  EXPECT_FALSE(load_jsonl(garbage).ok());
}

TEST(DumpRoundtrip, UnknownLineTypesAreSkipped) {
  std::istringstream in{"{\"type\":\"future-extension\",\"x\":1}\n"};
  Result<Dump> loaded = load_jsonl(in);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded.value().cells.empty());
}

TEST(DumpMerging, CellsKeepTraceIdsDisjoint) {
  Fixture f;
  std::ostringstream out;
  DumpWriter writer{out};
  writer.begin_cell("cell-a");
  writer.add_spans(f.collector);
  writer.begin_cell("cell-b");
  writer.add_spans(f.collector);  // same ids again: a second, independent run

  std::istringstream in{out.str()};
  Result<Dump> loaded = load_jsonl(in);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().cells.size(), 2u);
  const std::vector<Span> all = loaded.value().all_spans();
  ASSERT_EQ(all.size(), 4u);
  EXPECT_NE(all[0].trace_id, all[2].trace_id);
  // Parent links stay intact after offsetting.
  EXPECT_EQ(all[3].parent_id, all[2].span_id);
  EXPECT_TRUE(check_span_integrity(all).empty());
}

TEST(DumpMerging, MetricsUnionAcrossCells) {
  if (!kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  std::ostringstream out;
  DumpWriter writer{out};
  {
    MetricsRegistry run1;
    run1.counter("events").add(10);
    run1.gauge("depth").set(5);
    run1.counter("quiet");  // dead in run 1
    writer.begin_cell("run1");
    writer.add_metrics(run1.snapshot());
  }
  {
    MetricsRegistry run2;
    run2.counter("events").add(32);
    run2.gauge("depth").set(2);
    run2.counter("quiet").add();  // alive in run 2
    writer.begin_cell("run2");
    writer.add_metrics(run2.snapshot());
  }
  std::istringstream in{out.str()};
  Result<Dump> loaded = load_jsonl(in);
  ASSERT_TRUE(loaded.ok());
  const MetricsSnapshot merged = loaded.value().merged_metrics();
  const MetricValue* events = merged.find("events");
  ASSERT_NE(events, nullptr);
  EXPECT_EQ(events->value, 42);  // counters sum
  const MetricValue* depth = merged.find("depth");
  ASSERT_NE(depth, nullptr);
  EXPECT_EQ(depth->high_water, 5);  // gauges keep the high-water maximum
  // Union semantics: an instrument is dead only if dead in every cell.
  EXPECT_TRUE(merged.dead_instruments().empty());
}

TEST(DumpMerging, ReplicatedCellsFoldOnce) {
  if (!kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  // A run captured with both --trace-out and --metrics-out writes the
  // identical cell snapshot into each file; feeding both files to
  // decotrace used to double every counter. Cells that differ only in
  // id but carry identical content dedup on the full key; genuinely
  // distinct cells (different label or different values) still sum.
  MetricsRegistry run1;
  run1.counter("events").add(10);
  run1.histogram("lat_ns").observe(1500);
  MetricsRegistry run2;
  run2.counter("events").add(32);

  std::ostringstream out;
  DumpWriter writer{out};
  writer.begin_cell("run1");
  writer.add_metrics(run1.snapshot());
  writer.begin_cell("run2");
  writer.add_metrics(run2.snapshot());
  // The replica: run1's snapshot again, as a --metrics-out file would
  // repeat it.
  writer.begin_cell("run1");
  writer.add_metrics(run1.snapshot());

  std::istringstream in{out.str()};
  Result<Dump> loaded = load_jsonl(in);
  ASSERT_TRUE(loaded.ok());
  const MetricsSnapshot merged = loaded.value().merged_metrics();
  const MetricValue* events = merged.find("events");
  ASSERT_NE(events, nullptr);
  EXPECT_EQ(events->value, 42);  // 10 + 32, replica folded once
  const MetricValue* lat = merged.find("lat_ns");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->count, 1u);
}

TEST(DumpRoundtrip, SamplePeriodSurvives) {
  if (!kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  MetricsRegistry registry;
  registry.histogram("sim.handler_ns", Determinism::kHostTime, 16).observe(700);
  registry.histogram("gw.latency_ns").observe(1500);  // unsampled

  std::ostringstream out;
  DumpWriter writer{out};
  writer.begin_cell("cell");
  writer.add_metrics(registry.snapshot());
  // Sampled instruments carry the factor; unsampled ones omit it.
  EXPECT_NE(out.str().find("\"sample_period\":16"), std::string::npos);
  EXPECT_EQ(out.str().find("\"sample_period\":1,"), std::string::npos);

  std::istringstream in{out.str()};
  Result<Dump> loaded = load_jsonl(in);
  ASSERT_TRUE(loaded.ok());
  const MetricsSnapshot merged = loaded.value().merged_metrics();
  const MetricValue* sampled = merged.find("sim.handler_ns");
  ASSERT_NE(sampled, nullptr);
  EXPECT_EQ(sampled->sample_period, 16u);
  const MetricValue* unsampled = merged.find("gw.latency_ns");
  ASSERT_NE(unsampled, nullptr);
  EXPECT_EQ(unsampled->sample_period, 1u);
}

TEST(ChromeTrace, MatchesGoldenOutput) {
  TraceCollector collector;
  const std::uint64_t trace = collector.new_trace();
  collector.emit(trace, 0, Phase::kSend, "node0", "msgA", at(1000), at(3000), 7);
  TraceRecorder recorder;
  recorder.record(at(2000), TraceKind::kFrameSent, "n0", "slot 0", 32);

  std::vector<Span> spans{collector.spans().begin(), collector.spans().end()};
  std::vector<std::pair<std::string, TraceRecord>> records;
  for (const TraceRecord& r : recorder.records()) records.emplace_back("bus", r);

  std::ostringstream out;
  write_chrome_trace(out, spans, records);

  const std::string expected =
      "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"
      "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"decos\"}},\n"
      "{\"ph\":\"M\",\"pid\":1,\"tid\":1,\"name\":\"thread_name\",\"args\":{\"name\":\"bus\"}},\n"
      "{\"ph\":\"M\",\"pid\":1,\"tid\":2,\"name\":\"thread_name\",\"args\":{\"name\":\"node0\"}},\n"
      "{\"ph\":\"X\",\"pid\":1,\"tid\":2,\"ts\":1.000,\"dur\":2.000,\"name\":\"send msgA\","
      "\"cat\":\"send\",\"args\":{\"trace\":1,\"span\":1,\"parent\":0,\"value\":7}},\n"
      "{\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":1,\"ts\":2.000,\"name\":\"frame_sent n0\","
      "\"args\":{\"detail\":\"slot 0\",\"value\":32}}\n"
      "]}\n";
  EXPECT_EQ(out.str(), expected);

  // Byte-deterministic: a second invocation produces identical output.
  std::ostringstream again;
  write_chrome_trace(again, spans, records);
  EXPECT_EQ(out.str(), again.str());
}

}  // namespace
}  // namespace decos::obs
