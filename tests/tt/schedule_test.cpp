#include "tt/schedule.hpp"

#include <gtest/gtest.h>

namespace decos::tt {
namespace {

using namespace decos::literals;

TEST(TdmaScheduleTest, UniformScheduleShape) {
  const TdmaSchedule s = make_uniform_schedule(10_ms, 4, 2, 32, 3);
  EXPECT_TRUE(s.validate().ok());
  EXPECT_EQ(s.slot_count(), 8u);
  EXPECT_EQ(s.round_length(), 10_ms);
  for (const auto& slot : s.slots()) {
    EXPECT_EQ(slot.duration, 10_ms / 8);
    EXPECT_EQ(slot.vn, 3u);
    EXPECT_EQ(slot.payload_bytes, 32u);
  }
  EXPECT_EQ(s.slots_of(0).size(), 2u);
  EXPECT_EQ(s.slots_of(3).size(), 2u);
  EXPECT_EQ(s.slots_of_vn(3).size(), 8u);
  EXPECT_EQ(s.slots_of_vn(0).size(), 0u);
  EXPECT_EQ(s.bytes_per_round(3), 8u * 32u);
}

TEST(TdmaScheduleTest, SlotStartAcrossRounds) {
  const TdmaSchedule s = make_uniform_schedule(10_ms, 2, 1, 16);
  EXPECT_EQ(s.slot_start(0, 0), Instant::origin());
  EXPECT_EQ(s.slot_start(0, 1), Instant::origin() + 5_ms);
  EXPECT_EQ(s.slot_start(3, 1), Instant::origin() + 35_ms);
}

TEST(TdmaScheduleTest, ValidateRejectsBadSchedules) {
  TdmaSchedule empty{10_ms};
  EXPECT_FALSE(empty.validate().ok());

  TdmaSchedule no_round;
  no_round.add_slot(SlotSpec{0_ms, 1_ms, 0, 0, 8});
  EXPECT_FALSE(no_round.validate().ok());

  TdmaSchedule unowned{10_ms};
  unowned.add_slot(SlotSpec{0_ms, 1_ms, kNoNode, 0, 8});
  EXPECT_FALSE(unowned.validate().ok());

  TdmaSchedule overflow{10_ms};
  overflow.add_slot(SlotSpec{8_ms, 5_ms, 0, 0, 8});  // exceeds the round
  EXPECT_FALSE(overflow.validate().ok());

  TdmaSchedule overlap{10_ms};
  overlap.add_slot(SlotSpec{0_ms, 6_ms, 0, 0, 8});
  overlap.add_slot(SlotSpec{5_ms, 4_ms, 1, 0, 8});
  EXPECT_FALSE(overlap.validate().ok());

  TdmaSchedule zero_payload{10_ms};
  zero_payload.add_slot(SlotSpec{0_ms, 1_ms, 0, 0, 0});
  EXPECT_FALSE(zero_payload.validate().ok());

  TdmaSchedule zero_duration{10_ms};
  zero_duration.add_slot(SlotSpec{0_ms, 0_ms, 0, 0, 8});
  EXPECT_FALSE(zero_duration.validate().ok());
}

TEST(TdmaScheduleTest, UnorderedButDisjointSlotsAreValid) {
  TdmaSchedule s{10_ms};
  s.add_slot(SlotSpec{5_ms, 2_ms, 0, 0, 8});
  s.add_slot(SlotSpec{1_ms, 2_ms, 1, 0, 8});
  EXPECT_TRUE(s.validate().ok());
}

}  // namespace
}  // namespace decos::tt
