// Cold-start integration: nodes power up with arbitrary clock offsets,
// listen, adopt the time base of the first frame they observe, and join
// the TDMA cycle without ever violating the guardian windows.
#include <gtest/gtest.h>

#include <memory>

#include "services/clock_sync.hpp"
#include "tt/controller.hpp"

namespace decos::tt {
namespace {

using namespace decos::literals;

struct StartupFixture : ::testing::Test {
  StartupFixture() : bus{sim, make_uniform_schedule(10_ms, 3, 1, 16)} {}

  Controller& add_node(NodeId id, Duration initial_offset, double drift_ppm = 0.0) {
    controllers.push_back(
        std::make_unique<Controller>(sim, bus, id, sim::DriftingClock{drift_ppm, initial_offset}));
    return *controllers.back();
  }

  sim::Simulator sim;
  TtBus bus;
  std::vector<std::unique_ptr<Controller>> controllers;
};

TEST_F(StartupFixture, IntegratingNodeAdoptsRunningTimeBase) {
  Controller& master = add_node(0, 0_ms);
  Controller& joiner = add_node(1, 3_ms);  // clock 3ms ahead of the cluster
  master.start();
  joiner.start_integration(100_ms);
  EXPECT_TRUE(joiner.integrating());

  sim.run_until(Instant::origin() + 200_ms);
  EXPECT_FALSE(joiner.integrating());
  // After integration the joiner transmits in its own slots and is never
  // blocked by the guardian.
  EXPECT_GT(joiner.frames_sent(), 10u);
  EXPECT_EQ(bus.frames_blocked(), 0u);
  // Its clock was corrected to the master's time base.
  const Instant now = sim.now();
  EXPECT_LT((joiner.clock().read(now) - master.clock().read(now)).abs(), 10_us);
}

TEST_F(StartupFixture, SilentClusterElectsColdStartMaster) {
  Controller& a = add_node(0, 0_ms);
  Controller& b = add_node(1, 1500_us);
  // Staggered listen timeouts: node 0 gives up first and becomes master.
  a.start_integration(30_ms);
  b.start_integration(60_ms);

  sim.run_until(Instant::origin() + 300_ms);
  EXPECT_FALSE(a.integrating());
  EXPECT_FALSE(b.integrating());
  EXPECT_GT(a.frames_sent(), 0u);
  EXPECT_GT(b.frames_sent(), 0u);
  // Node 1 integrated onto node 0's base before its own timeout.
  EXPECT_EQ(bus.frames_blocked(), 0u);
  const Instant now = sim.now();
  EXPECT_LT((a.clock().read(now) - b.clock().read(now)).abs(), 10_us);
}

TEST_F(StartupFixture, ThreeNodeStaggeredStartupConverges) {
  Controller& a = add_node(0, 0_ms, 20.0);
  Controller& b = add_node(1, 4200_us, -15.0);
  Controller& c = add_node(2, -2700_us, 10.0);
  services::ClockSync sync_a{a};
  services::ClockSync sync_b{b};
  services::ClockSync sync_c{c};
  a.start_integration(25_ms);
  b.start_integration(50_ms);
  c.start_integration(75_ms);

  sim.run_until(Instant::origin() + 1_s);
  for (const auto& node : controllers) {
    EXPECT_FALSE(node->integrating());
    EXPECT_GT(node->frames_sent(), 50u);
  }
  EXPECT_EQ(bus.frames_blocked(), 0u);
  // Ongoing clock sync holds the integrated cluster tight.
  Duration lo = Duration::max();
  Duration hi = -Duration::max();
  for (const auto& node : controllers) {
    const Duration offset = node->clock().read(sim.now()) - sim.now();
    lo = std::min(lo, offset);
    hi = std::max(hi, offset);
  }
  EXPECT_LT(hi - lo, 10_us);
}

TEST_F(StartupFixture, IntegrationWhileTrafficFlowsIsImmediate) {
  Controller& master = add_node(0, 0_ms);
  Controller& late = add_node(1, -5_ms);
  master.start();
  sim.run_until(Instant::origin() + 95_ms);
  late.start_integration(500_ms);
  sim.run_until(Instant::origin() + 130_ms);
  // Joined within a couple of rounds, long before the 500ms timeout.
  EXPECT_FALSE(late.integrating());
  EXPECT_GT(late.frames_sent(), 0u);
}

}  // namespace
}  // namespace decos::tt
