#include "tt/bus.hpp"

#include <gtest/gtest.h>

#include "tt/controller.hpp"

namespace decos::tt {
namespace {

using namespace decos::literals;

struct BusFixture : ::testing::Test {
  BusFixture() : bus{sim, make_uniform_schedule(10_ms, 2, 1, 32)} {
    controllers.push_back(std::make_unique<Controller>(sim, bus, 0, sim::DriftingClock{}));
    controllers.push_back(std::make_unique<Controller>(sim, bus, 1, sim::DriftingClock{}));
  }

  Frame frame_for(NodeId sender, std::size_t slot, std::uint64_t round,
                  std::size_t bytes = 4) const {
    Frame f;
    f.sender = sender;
    f.vn = bus.schedule().slot(slot).vn;
    f.round = round;
    f.slot_index = slot;
    f.payload.assign(bytes, std::byte{0x11});
    return f;
  }

  sim::Simulator sim;
  TtBus bus;
  std::vector<std::unique_ptr<Controller>> controllers;
};

TEST_F(BusFixture, InSlotTransmissionDelivered) {
  sim.schedule_at(Instant::origin(), [&] { EXPECT_TRUE(bus.transmit(frame_for(0, 0, 0))); });
  sim.run_until(Instant::origin() + 10_ms);
  EXPECT_EQ(bus.frames_delivered(), 1u);
  EXPECT_EQ(bus.frames_blocked(), 0u);
  // Both controllers (including the sender) observed the delivery.
  EXPECT_EQ(controllers[0]->frames_received(), 1u);
  EXPECT_EQ(controllers[1]->frames_received(), 1u);
}

TEST_F(BusFixture, GuardianBlocksForeignSlot) {
  // Node 1 tries to use node 0's slot.
  sim.schedule_at(Instant::origin(), [&] { EXPECT_FALSE(bus.transmit(frame_for(1, 0, 0))); });
  sim.run_until(Instant::origin() + 10_ms);
  EXPECT_EQ(bus.frames_blocked(), 1u);
  EXPECT_EQ(bus.frames_delivered(), 0u);
}

TEST_F(BusFixture, GuardianBlocksOffScheduleTiming) {
  // Node 0 owns slot 0 (starts at t=0 each round) but transmits mid-round.
  sim.schedule_at(Instant::origin() + 3_ms, [&] {
    EXPECT_FALSE(bus.transmit(frame_for(0, 0, 0)));
  });
  sim.run_until(Instant::origin() + 10_ms);
  EXPECT_EQ(bus.frames_blocked(), 1u);
}

TEST_F(BusFixture, GuardianToleratesSmallDeviation) {
  sim.schedule_at(Instant::origin() + 10_us, [&] {
    EXPECT_TRUE(bus.transmit(frame_for(0, 0, 0)));  // within 20us tolerance
  });
  sim.run_until(Instant::origin() + 10_ms);
  EXPECT_EQ(bus.frames_delivered(), 1u);
}

TEST_F(BusFixture, GuardianBlocksOversizedPayload) {
  sim.schedule_at(Instant::origin(), [&] {
    EXPECT_FALSE(bus.transmit(frame_for(0, 0, 0, 100)));  // slot capacity 32
  });
  sim.run_until(Instant::origin() + 10_ms);
  EXPECT_EQ(bus.frames_blocked(), 1u);
}

TEST_F(BusFixture, GuardianBlocksWrongVnClaim) {
  sim.schedule_at(Instant::origin(), [&] {
    Frame f = frame_for(0, 0, 0);
    f.vn = 42;  // slot 0 carries vn 0
    EXPECT_FALSE(bus.transmit(std::move(f)));
  });
  sim.run_until(Instant::origin() + 10_ms);
  EXPECT_EQ(bus.frames_blocked(), 1u);
}

TEST_F(BusFixture, DisabledGuardianAdmitsEverything) {
  bus.set_guardian_enabled(false);
  sim.schedule_at(Instant::origin() + 3_ms, [&] {
    EXPECT_TRUE(bus.transmit(frame_for(1, 0, 0)));
  });
  sim.run_until(Instant::origin() + 10_ms);
  EXPECT_EQ(bus.frames_blocked(), 0u);
  EXPECT_EQ(bus.frames_delivered(), 1u);
}

TEST_F(BusFixture, OverlappingTransmissionsCollide) {
  bus.set_guardian_enabled(false);
  // Two transmissions 1us apart: each frame occupies (4+8)*80ns ~ 1us on
  // the medium, so they overlap and destroy each other.
  sim.schedule_at(Instant::origin(), [&] { bus.transmit(frame_for(0, 0, 0, 32)); });
  sim.schedule_at(Instant::origin() + 1_us, [&] { bus.transmit(frame_for(1, 1, 0, 32)); });
  sim.run_until(Instant::origin() + 10_ms);
  EXPECT_EQ(bus.frames_delivered(), 0u);
  EXPECT_GE(bus.collisions(), 1u);
  EXPECT_EQ(controllers[0]->frames_received(), 0u);
}

TEST_F(BusFixture, NonOverlappingTransmissionsBothDeliver) {
  bus.set_guardian_enabled(false);
  sim.schedule_at(Instant::origin(), [&] { bus.transmit(frame_for(0, 0, 0, 4)); });
  sim.schedule_at(Instant::origin() + 5_ms, [&] { bus.transmit(frame_for(1, 1, 0, 4)); });
  sim.run_until(Instant::origin() + 10_ms);
  EXPECT_EQ(bus.frames_delivered(), 2u);
  EXPECT_EQ(bus.collisions(), 0u);
}

TEST_F(BusFixture, DeliveryLatencyIsTransmissionPlusPropagation) {
  Instant delivered;
  controllers[1]->add_frame_listener(
      [&](const Frame&, Instant, Duration) { delivered = sim.now(); });
  sim.schedule_at(Instant::origin(), [&] { bus.transmit(frame_for(0, 0, 0, 4)); });
  sim.run_until(Instant::origin() + 10_ms);
  // (4+8 bytes) * 80ns + 250ns propagation = 1210ns
  EXPECT_EQ(delivered, Instant::origin() + Duration::nanoseconds(1210));
}

TEST_F(BusFixture, TraceRecordsSentAndDelivered) {
  sim.schedule_at(Instant::origin(), [&] { bus.transmit(frame_for(0, 0, 0)); });
  sim.run_until(Instant::origin() + 10_ms);
  EXPECT_EQ(bus.trace().count(sim::TraceKind::kFrameSent), 1u);
  EXPECT_EQ(bus.trace().count(sim::TraceKind::kFrameDelivered), 1u);
}

}  // namespace
}  // namespace decos::tt
