#include "tt/controller.hpp"

#include <gtest/gtest.h>

namespace decos::tt {
namespace {

using namespace decos::literals;

struct ControllerFixture : ::testing::Test {
  ControllerFixture() : bus{sim, make_uniform_schedule(10_ms, 2, 1, 32)} {
    c0 = std::make_unique<Controller>(sim, bus, 0, sim::DriftingClock{});
    c1 = std::make_unique<Controller>(sim, bus, 1, sim::DriftingClock{});
  }

  void start_all() {
    c0->start();
    c1->start();
  }

  sim::Simulator sim;
  TtBus bus;
  std::unique_ptr<Controller> c0;
  std::unique_ptr<Controller> c1;
};

TEST_F(ControllerFixture, TransmitsLifeSignEveryRound) {
  start_all();
  sim.run_until(Instant::origin() + 49_ms);  // rounds 0..4
  EXPECT_EQ(c0->frames_sent(), 5u);
  EXPECT_EQ(c1->frames_sent(), 5u);
  // Each node receives its own and the peer's frames.
  EXPECT_EQ(c0->frames_received(), 10u);
}

TEST_F(ControllerFixture, StateBufferContentTransmitted) {
  std::vector<std::byte> seen;
  c1->add_frame_listener([&](const Frame& f, Instant, Duration) {
    if (f.sender == 0 && !f.payload.empty()) seen = f.payload;
  });
  c0->write_send_buffer(0, {std::byte{0xAA}, std::byte{0xBB}});
  start_all();
  sim.run_until(Instant::origin() + 25_ms);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], std::byte{0xAA});
  // State buffer is retained: sent again in later rounds (node 0 sent at
  // t=0,10,20; node 1's own frames at t=5,15 have also been delivered).
  EXPECT_EQ(c1->frames_received(), 5u);
}

TEST_F(ControllerFixture, QueueBufferConsumedOncePerSlot) {
  c0->set_slot_buffering(0, SlotBuffering::kQueue, 8);
  EXPECT_TRUE(c0->enqueue_send(0, {std::byte{1}}));
  EXPECT_TRUE(c0->enqueue_send(0, {std::byte{2}}));
  EXPECT_EQ(c0->queue_depth(0), 2u);

  std::vector<std::vector<std::byte>> payloads;
  c1->add_frame_listener([&](const Frame& f, Instant, Duration) {
    if (f.sender == 0) payloads.push_back(f.payload);
  });
  start_all();
  sim.run_until(Instant::origin() + 35_ms);  // rounds 0..3
  ASSERT_EQ(payloads.size(), 4u);
  EXPECT_EQ(payloads[0], (std::vector<std::byte>{std::byte{1}}));
  EXPECT_EQ(payloads[1], (std::vector<std::byte>{std::byte{2}}));
  EXPECT_TRUE(payloads[2].empty());  // queue drained: life-sign only
  EXPECT_EQ(c0->queue_depth(0), 0u);
}

TEST_F(ControllerFixture, QueueBufferBounded) {
  c0->set_slot_buffering(0, SlotBuffering::kQueue, 2);
  EXPECT_TRUE(c0->enqueue_send(0, {std::byte{1}}));
  EXPECT_TRUE(c0->enqueue_send(0, {std::byte{2}}));
  EXPECT_FALSE(c0->enqueue_send(0, {std::byte{3}}));
}

TEST_F(ControllerFixture, SlotSourcePulledAtTransmission) {
  int pulls = 0;
  c0->set_slot_source(0, [&]() -> std::optional<tt::Controller::SlotPayload> {
    ++pulls;
    return tt::Controller::SlotPayload{{std::byte{0x77}}};
  });
  start_all();
  sim.run_until(Instant::origin() + 29_ms);
  EXPECT_EQ(pulls, 3);
}

TEST_F(ControllerFixture, ForeignSlotAccessThrows) {
  EXPECT_THROW(c0->write_send_buffer(1, {}), SpecError);
  EXPECT_THROW(c0->enqueue_send(1, {}), SpecError);
  EXPECT_THROW(c0->set_slot_buffering(1, SlotBuffering::kQueue), SpecError);
  EXPECT_THROW(c0->set_slot_source(1, nullptr), SpecError);
}

TEST_F(ControllerFixture, CrashedNodeSilent) {
  start_all();
  sim.schedule_at(Instant::origin() + 15_ms, [&] { c0->set_crashed(true); });
  sim.run_until(Instant::origin() + 50_ms);
  EXPECT_EQ(c0->frames_sent(), 2u);  // rounds 0 and 1 only
  EXPECT_EQ(c1->frames_sent(), 5u);
}

TEST_F(ControllerFixture, CrashedNodeResumesAfterRecovery) {
  start_all();
  sim.schedule_at(Instant::origin() + 15_ms, [&] { c0->set_crashed(true); });
  sim.schedule_at(Instant::origin() + 35_ms, [&] { c0->set_crashed(false); });
  sim.run_until(Instant::origin() + 59_ms);
  EXPECT_EQ(c0->frames_sent(), 4u);  // rounds 0,1 then 4,5
}

TEST_F(ControllerFixture, OmissionRateDropsSomeFrames) {
  c0->set_send_omission_rate(0.5, 42);
  start_all();
  sim.run_until(Instant::origin() + 1_s);  // 100 rounds
  EXPECT_GT(c0->frames_sent(), 20u);
  EXPECT_LT(c0->frames_sent(), 80u);
  EXPECT_EQ(c1->frames_sent(), 100u);
}

TEST_F(ControllerFixture, RoundListenersFireEveryRound) {
  std::vector<std::uint64_t> rounds;
  c0->add_round_listener([&](std::uint64_t round) { rounds.push_back(round); });
  start_all();
  sim.run_until(Instant::origin() + 45_ms);
  EXPECT_EQ(rounds, (std::vector<std::uint64_t>{0, 1, 2, 3}));
}

TEST_F(ControllerFixture, DriftingNodeEventuallyBlockedByGuardian) {
  // Rebuild node 0 with a huge drift: +3000 ppm = 30us error per 10ms
  // round; the guardian window is 20us, so its second round is blocked.
  sim::Simulator sim2;
  TtBus bus2{sim2, make_uniform_schedule(10_ms, 2, 1, 32)};
  Controller fast{sim2, bus2, 0, sim::DriftingClock{-3000.0}};
  Controller ok{sim2, bus2, 1, sim::DriftingClock{}};
  fast.start();
  ok.start();
  sim2.run_until(Instant::origin() + 100_ms);
  EXPECT_GT(bus2.frames_blocked(), 0u);
  EXPECT_LT(fast.frames_sent(), 10u);
  EXPECT_EQ(ok.frames_sent(), 10u);
}

TEST_F(ControllerFixture, DeviationReflectsClockOffset) {
  // Node 1's clock reads 5us ahead; arrivals appear 5us "late" on its
  // local clock relative to the nominal schedule.
  sim::Simulator sim2;
  TtBus bus2{sim2, make_uniform_schedule(10_ms, 2, 1, 32)};
  Controller sender{sim2, bus2, 0, sim::DriftingClock{}};
  Controller skewed{sim2, bus2, 1, sim::DriftingClock{0.0, 5_us}};
  std::vector<Duration> deviations;
  skewed.add_frame_listener([&](const Frame& f, Instant, Duration d) {
    if (f.sender == 0) deviations.push_back(d);
  });
  sender.start();
  skewed.start();
  sim2.run_until(Instant::origin() + 30_ms);
  ASSERT_FALSE(deviations.empty());
  for (const Duration d : deviations) EXPECT_EQ(d, 5_us);
}

}  // namespace
}  // namespace decos::tt
