// decotrace -- offline reader for DECOS observability dumps.
//
// Consumes the JSONL dumps written by the benches/examples (--trace-out)
// and prints per-flow phase latency percentiles, fault-containment
// summaries and metrics snapshots. Multiple dump files are merged: spans
// and records concatenate (trace ids are disambiguated per cell), metric
// values union (counters/histograms sum, gauges take the high-water
// maximum) -- so a CI job can run several benches and check instrument
// coverage across their union.
//
// The phase arithmetic is the same code the benches run in-process
// (obs/analysis), so both readers agree to the nanosecond.
//
// Exit status: 0 = ok; 1 = --fail-dead found dead instruments or --check
// found span-integrity violations; 2 = usage / IO / parse failure.
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <iterator>
#include <map>
#include <string>
#include <vector>

#include "obs/analysis.hpp"
#include "obs/export.hpp"
#include "obs/json.hpp"

namespace {

using namespace decos;

constexpr const char* kUsage =
    "usage: decotrace [options] <dump.jsonl>...\n"
    "\n"
    "Reads observability dumps (JSONL) and reports:\n"
    "  per-flow phase latency percentiles (ingress/dissect/repo_wait/\n"
    "  construct/delivery/total), fault-containment summary, metrics.\n"
    "\n"
    "  --json             machine-readable output (one JSON object)\n"
    "  --perfetto FILE    also write a Chrome trace-event file (load in\n"
    "                     ui.perfetto.dev or chrome://tracing)\n"
    "  --fail-dead        exit 1 if any registered instrument family was\n"
    "                     never updated across all inputs; per-gateway/VN\n"
    "                     instances collapse (gw.e6.forwarded -> gw.*.forwarded)\n"
    "  --check            exit 1 on span parent/child integrity violations\n"
    "  --check-bounds F   read static per-flow latency bounds from F (the\n"
    "                     output of `declint --format json`) and exit 1 if\n"
    "                     any traced flow's observed max total latency\n"
    "                     exceeds its bound, or no flow matched at all\n";

struct Options {
  bool json = false;
  bool fail_dead = false;
  bool check = false;
  std::string bounds_file;
  std::string perfetto_out;
  std::vector<std::string> files;
};

/// Static bound of one flow, loaded from declint's JSON report.
struct StaticBound {
  std::string key;
  std::int64_t bound_ns = 0;
};

int load_bounds(const std::string& path, std::vector<StaticBound>& out) {
  std::ifstream in{path};
  if (!in) {
    std::cerr << path << ": cannot open file\n";
    return 2;
  }
  std::string text{std::istreambuf_iterator<char>{in}, std::istreambuf_iterator<char>{}};
  auto doc = obs::json::parse(text);
  if (!doc.ok()) {
    std::cerr << path << ": " << doc.error().message << "\n";
    return 2;
  }
  const obs::json::Value* cluster = doc.value().find("cluster");
  const obs::json::Value* flows = cluster != nullptr ? cluster->find("flows") : nullptr;
  if (flows == nullptr || !flows->is_array()) {
    std::cerr << path << ": not a declint JSON report (missing cluster.flows)\n";
    return 2;
  }
  for (const obs::json::Value& flow : flows->as_array()) {
    StaticBound b;
    b.key = flow.get_string("key");
    b.bound_ns = flow.get_int("bound_ns");
    if (!b.key.empty()) out.push_back(std::move(b));
  }
  return 0;
}

const char* kind_name(obs::InstrumentKind kind) {
  switch (kind) {
    case obs::InstrumentKind::kCounter: return "counter";
    case obs::InstrumentKind::kGauge: return "gauge";
    case obs::InstrumentKind::kHistogram: return "histogram";
  }
  return "?";
}

obs::json::Value metrics_to_json(const obs::MetricsSnapshot& snapshot) {
  obs::json::Array out;
  for (const obs::MetricValue& m : snapshot.entries) {
    obs::json::Object o;
    o.emplace_back("name", m.name);
    o.emplace_back("kind", kind_name(m.kind));
    o.emplace_back("deterministic", m.deterministic);
    o.emplace_back("updates", m.updates);
    switch (m.kind) {
      case obs::InstrumentKind::kCounter:
        o.emplace_back("value", m.value);
        break;
      case obs::InstrumentKind::kGauge:
        o.emplace_back("value", m.value);
        o.emplace_back("high_water", m.high_water);
        break;
      case obs::InstrumentKind::kHistogram:
        o.emplace_back("count", m.count);
        o.emplace_back("sum", m.sum);
        o.emplace_back("min", m.min);
        o.emplace_back("max", m.max);
        o.emplace_back("p50", m.p50);
        o.emplace_back("p90", m.p90);
        o.emplace_back("p99", m.p99);
        if (m.sample_period != 1) {
          o.emplace_back("sample_period", std::int64_t{m.sample_period});
          o.emplace_back("estimated_count",
                         static_cast<std::int64_t>(m.count * std::uint64_t{m.sample_period}));
        }
        break;
    }
    out.push_back(obs::json::Value{std::move(o)});
  }
  return obs::json::Value{std::move(out)};
}

// Per-instance instruments ("gw.e6.forwarded", "vn.comfort.queue_depth")
// carry the gateway/VN name in the second segment, so the same logical
// instrument registers under a different name in every bench. The dead
// check therefore works on *families*: the instance segment collapses to
// '*', and a family is dead only if no member in any input ever updated.
// A bench exercising value filtering thus covers gw.*.suppressed.value
// for the whole union, whichever gateway name it used.
std::string instrument_family(const std::string& name) {
  if (name.rfind("gw.", 0) == 0 || name.rfind("vn.", 0) == 0) {
    const std::size_t instance_end = name.find('.', 3);
    if (instance_end != std::string::npos)
      return name.substr(0, 3) + "*" + name.substr(instance_end);
  }
  return name;
}

std::vector<std::string> dead_families(const obs::MetricsSnapshot& snapshot) {
  std::map<std::string, std::uint64_t> updates;
  for (const obs::MetricValue& m : snapshot.entries) updates[instrument_family(m.name)] += m.updates;
  std::vector<std::string> dead;
  for (const auto& [family, n] : updates)
    if (n == 0) dead.push_back(family);
  return dead;
}

void print_flows(const obs::Breakdown& breakdown) {
  std::printf("-- flows --\n");
  if (breakdown.empty()) {
    std::printf("(no traced flows)\n");
    return;
  }
  for (const auto& [key, flow] : breakdown) {
    std::printf("%s  (%zu traces)\n", key.c_str(), flow.traces);
    std::printf("  %-10s %8s %12s %12s %12s %12s\n", "phase", "n", "p50_ns", "p99_ns", "max_ns",
                "mean_ns");
    for (const char* phase : obs::kBreakdownPhases) {
      const auto it = flow.phases.find(phase);
      if (it == flow.phases.end() || it->second.empty()) continue;
      const obs::LatencySet& set = it->second;
      std::printf("  %-10s %8zu %12lld %12lld %12lld %12.1f\n", phase, set.count(),
                  static_cast<long long>(set.percentile(0.50)),
                  static_cast<long long>(set.percentile(0.99)),
                  static_cast<long long>(set.max()), set.mean());
    }
  }
}

void print_containment(const obs::ContainmentSummary& summary) {
  std::printf("-- containment --\n");
  std::printf("faults_injected=%llu frames_blocked=%llu gateway_blocked=%llu "
              "automaton_errors=%llu gateway_forwarded=%llu\n",
              static_cast<unsigned long long>(summary.faults_injected),
              static_cast<unsigned long long>(summary.frames_blocked),
              static_cast<unsigned long long>(summary.gateway_blocked),
              static_cast<unsigned long long>(summary.automaton_errors),
              static_cast<unsigned long long>(summary.gateway_forwarded));
  for (const auto& [reason, n] : summary.blocked_reasons)
    std::printf("  blocked: %-40s %llu\n", reason.c_str(), static_cast<unsigned long long>(n));
}

void print_metrics(const obs::MetricsSnapshot& snapshot) {
  std::printf("-- metrics --\n");
  for (const obs::MetricValue& m : snapshot.entries) {
    switch (m.kind) {
      case obs::InstrumentKind::kCounter:
        std::printf("%-44s counter    %lld\n", m.name.c_str(), static_cast<long long>(m.value));
        break;
      case obs::InstrumentKind::kGauge:
        std::printf("%-44s gauge      %lld (high %lld)\n", m.name.c_str(),
                    static_cast<long long>(m.value), static_cast<long long>(m.high_water));
        break;
      case obs::InstrumentKind::kHistogram: {
        std::string notes;
        if (m.sample_period != 1)
          notes = " (1-in-" + std::to_string(m.sample_period) +
                  " sampled, ~" + std::to_string(m.count * std::uint64_t{m.sample_period}) +
                  " events)";
        if (!m.deterministic) notes += " (host time)";
        std::printf("%-44s histogram  n=%llu p50=%lld p99=%lld max=%lld%s\n", m.name.c_str(),
                    static_cast<unsigned long long>(m.count), static_cast<long long>(m.p50),
                    static_cast<long long>(m.p99), static_cast<long long>(m.max), notes.c_str());
        break;
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      options.json = true;
    } else if (arg == "--fail-dead") {
      options.fail_dead = true;
    } else if (arg == "--check") {
      options.check = true;
    } else if (arg == "--check-bounds") {
      if (++i >= argc) {
        std::cerr << "--check-bounds requires a file argument\n" << kUsage;
        return 2;
      }
      options.bounds_file = argv[i];
    } else if (arg == "--perfetto") {
      if (++i >= argc) {
        std::cerr << "--perfetto requires a file argument\n" << kUsage;
        return 2;
      }
      options.perfetto_out = argv[i];
    } else if (arg == "--help" || arg == "-h") {
      std::cout << kUsage;
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option '" << arg << "'\n" << kUsage;
      return 2;
    } else {
      options.files.push_back(arg);
    }
  }
  if (options.files.empty()) {
    std::cerr << kUsage;
    return 2;
  }

  // Merge all inputs into one dump (cells stay separate; all_spans()
  // disambiguates their id ranges).
  obs::Dump merged;
  for (const std::string& path : options.files) {
    std::ifstream in{path};
    if (!in) {
      std::cerr << path << ": cannot open file\n";
      return 2;
    }
    auto dump = obs::load_jsonl(in);
    if (!dump.ok()) {
      std::cerr << path << ": " << dump.error().message << "\n";
      return 2;
    }
    for (auto& cell : dump.value().cells) merged.cells.push_back(std::move(cell));
  }

  const std::vector<obs::Span> spans = merged.all_spans();
  const auto records = merged.all_records();
  const obs::Breakdown breakdown = obs::phase_breakdown(spans);
  const obs::ContainmentSummary containment = obs::containment_summary(records);
  const obs::MetricsSnapshot metrics = merged.merged_metrics();
  const std::vector<std::string> dead = dead_families(metrics);
  const std::vector<std::string> violations = obs::check_span_integrity(spans);

  if (!options.perfetto_out.empty()) {
    std::ofstream out{options.perfetto_out};
    if (!out) {
      std::cerr << options.perfetto_out << ": cannot open for writing\n";
      return 2;
    }
    obs::write_chrome_trace(out, spans, records);
  }

  if (options.json) {
    obs::json::Object o;
    {
      obs::json::Array files;
      for (const std::string& f : options.files) files.push_back(obs::json::Value{f});
      o.emplace_back("files", std::move(files));
    }
    o.emplace_back("spans", spans.size());
    o.emplace_back("records", records.size());
    o.emplace_back("flows", obs::breakdown_to_json(breakdown));
    o.emplace_back("containment", obs::containment_to_json(containment));
    o.emplace_back("metrics", metrics_to_json(metrics));
    {
      obs::json::Array d;
      for (const std::string& name : dead) d.push_back(obs::json::Value{name});
      o.emplace_back("dead_instruments", std::move(d));
    }
    {
      obs::json::Array v;
      for (const std::string& msg : violations) v.push_back(obs::json::Value{msg});
      o.emplace_back("integrity_violations", std::move(v));
    }
    std::cout << obs::json::Value{std::move(o)}.dump() << "\n";
  } else {
    std::printf("decotrace: %zu file(s), %zu cell(s), %zu spans, %zu records\n",
                options.files.size(), merged.cells.size(), spans.size(), records.size());
    print_flows(breakdown);
    print_containment(containment);
    print_metrics(metrics);
    if (!dead.empty()) {
      std::printf("-- dead instruments --\n");
      for (const std::string& name : dead) std::printf("  %s\n", name.c_str());
    }
    for (const std::string& msg : violations)
      std::fprintf(stderr, "integrity: %s\n", msg.c_str());
  }

  if (options.check && !violations.empty()) {
    std::cerr << "decotrace: " << violations.size() << " span integrity violation(s)\n";
    return 1;
  }
  if (!options.bounds_file.empty()) {
    std::vector<StaticBound> bounds;
    if (const int rc = load_bounds(options.bounds_file, bounds); rc != 0) return rc;
    std::size_t checked = 0, exceeded = 0;
    for (const StaticBound& b : bounds) {
      // Exact flow-key match first; otherwise fall back to the root send
      // message (the part before "->"). A flow whose consumer is not an
      // attached port is keyed by its delivery slot in the trace
      // ("msgA0->slot 9"), but it is still the flow rooted at msgA0.
      auto it = breakdown.find(b.key);
      if (it == breakdown.end()) {
        const std::string root = b.key.substr(0, b.key.find("->"));
        auto match = breakdown.end();
        std::size_t candidates = 0;
        for (auto cand = breakdown.begin(); cand != breakdown.end(); ++cand) {
          if (cand->first != root && cand->first.rfind(root + "->", 0) != 0) continue;
          ++candidates;
          match = cand;
        }
        if (candidates != 1) continue;  // ambiguous root: no safe join
        it = match;
      }
      const auto total = it->second.phases.find("total");
      if (total == it->second.phases.end() || total->second.empty()) continue;
      ++checked;
      const std::int64_t observed = total->second.max();
      const bool over = observed > b.bound_ns;
      if (over) ++exceeded;
      std::fprintf(over ? stderr : stdout,
                   "bounds: flow '%s' (traced as '%s') observed max %lld ns %s static bound "
                   "%lld ns\n",
                   b.key.c_str(), it->first.c_str(), static_cast<long long>(observed),
                   over ? "EXCEEDS" : "<=", static_cast<long long>(b.bound_ns));
    }
    if (checked == 0) {
      std::cerr << "decotrace: --check-bounds matched no traced flow against " << bounds.size()
                << " static bound(s)\n";
      return 1;
    }
    if (exceeded > 0) {
      std::cerr << "decotrace: " << exceeded << " of " << checked
                << " flow(s) exceed their static latency bound\n";
      return 1;
    }
    std::printf("bounds: %zu flow(s) within their static bounds\n", checked);
  }
  if (options.fail_dead && !dead.empty()) {
    std::cerr << "decotrace: " << dead.size() << " instrument(s) never updated";
    for (const std::string& name : dead) std::cerr << " " << name;
    std::cerr << "\n";
    return 1;
  }
  return 0;
}
