// declint -- static analyzer for DECOS deployment specifications.
//
// Lints <gatewayspec> documents (full deployment: both links, renames,
// repository meta data, optional TDMA schedule) and standalone
// <linkspec> documents (the locally decidable rule subset). When several
// gatewayspecs are given they are analyzed *jointly* as one cluster:
// the flow graph chains gateways on shared message names and the
// whole-cluster rules (DL008 latency bounds, DL009 symbolic
// feasibility, DL010 queue occupancy) run once over the deployment.
//
// Text output is one diagnostic per line:
//
//   file.xml: error DL005 at link[1] 'stability': ...  [hint: ...]
//
// --format json emits the machine-readable report including the static
// per-flow latency bounds (consumed by `decotrace --check-bounds`);
// --format sarif emits SARIF 2.1.0 for CI code scanning. Both are
// byte-deterministic.
//
// Exit status: 0 = clean, 1 = at least one error (or a warning under
// --werror), 3 = no errors but findings at or above the --fail-on
// threshold, 2 = usage / IO / parse failure.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/gateway_lint.hpp"
#include "core/gateway_xml.hpp"
#include "lint/flowgraph.hpp"
#include "lint/lint.hpp"
#include "lint/render.hpp"
#include "lint/timing.hpp"
#include "spec/linkspec_xml.hpp"
#include "xml/xml.hpp"

namespace {

constexpr const char* kUsage =
    "usage: declint [options] <spec.xml>...\n"
    "\n"
    "Statically analyzes DECOS deployment specifications:\n"
    "  <gatewayspec>  full deployment analysis (rules DL000-DL010);\n"
    "                 several files form one cluster and are analyzed jointly\n"
    "  <linkspec>     standalone link analysis (locally decidable rules)\n"
    "\n"
    "  --werror               treat warnings as errors\n"
    "  --quiet                print errors only (text format)\n"
    "  --format text|json|sarif\n"
    "                         output format (default text); json carries the\n"
    "                         per-flow latency bounds for decotrace --check-bounds\n"
    "  --fail-on note|warn|error\n"
    "                         exit 3 when findings at or above this severity\n"
    "                         exist and no hard error does (default error)\n"
    "  --ring-capacity <bytes>\n"
    "                         byte capacity of the live runtime's ingress rings\n"
    "                         (decogw deployment); enables rule DL011 comparing\n"
    "                         event-queue sizing against transport buffering\n";

struct Options {
  bool werror = false;
  bool quiet = false;
  std::string format = "text";
  decos::lint::Severity fail_on = decos::lint::Severity::kError;
  std::size_t ring_capacity = 0;  // 0 = no live-runtime context, DL011 off
  std::vector<std::string> files;
};

/// One parsed input, keeping the document alive for the cluster pass
/// (GatewayModel borrows the doc's link specs and schedule).
struct ParsedFile {
  std::string path;
  std::unique_ptr<decos::core::GatewayDoc> gateway;
  std::unique_ptr<decos::spec::LinkSpec> link;
};

/// Severity at or above `threshold` (errors are the most severe).
bool at_least(decos::lint::Severity severity, decos::lint::Severity threshold) {
  return static_cast<int>(severity) <= static_cast<int>(threshold);
}

int parse_file(const std::string& path, ParsedFile& out) {
  std::ifstream in{path};
  if (!in) {
    std::cerr << path << ": cannot open file\n";
    return 2;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  auto parsed = decos::xml::parse(text);
  if (!parsed.ok()) {
    std::cerr << path << ": XML parse error: " << parsed.error().message << "\n";
    return 2;
  }
  out.path = path;
  const std::string& root = parsed.value().root->name();
  if (root == "gatewayspec") {
    auto doc = decos::core::parse_gateway_doc(text);
    if (!doc.ok()) {
      std::cerr << path << ": " << doc.error().message << "\n";
      return 2;
    }
    out.gateway = std::make_unique<decos::core::GatewayDoc>(std::move(doc.value()));
  } else if (root == "linkspec") {
    auto link = decos::spec::parse_link_spec_xml(text);
    if (!link.ok()) {
      std::cerr << path << ": " << link.error().message << "\n";
      return 2;
    }
    out.link = std::make_unique<decos::spec::LinkSpec>(std::move(link.value()));
  } else {
    std::cerr << path << ": unsupported root element <" << root
              << "> (expected <gatewayspec> or <linkspec>)\n";
    return 2;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << kUsage;
      return 0;
    }
    if (arg == "--werror") {
      options.werror = true;
    } else if (arg == "--quiet" || arg == "-q") {
      options.quiet = true;
    } else if (arg == "--format") {
      if (i + 1 >= argc) {
        std::cerr << "declint: --format needs an argument\n" << kUsage;
        return 2;
      }
      options.format = argv[++i];
      if (options.format != "text" && options.format != "json" && options.format != "sarif") {
        std::cerr << "declint: unknown format '" << options.format << "'\n" << kUsage;
        return 2;
      }
    } else if (arg == "--fail-on") {
      if (i + 1 >= argc) {
        std::cerr << "declint: --fail-on needs an argument\n" << kUsage;
        return 2;
      }
      const std::string level = argv[++i];
      if (level == "note") {
        options.fail_on = decos::lint::Severity::kNote;
      } else if (level == "warn" || level == "warning") {
        options.fail_on = decos::lint::Severity::kWarning;
      } else if (level == "error") {
        options.fail_on = decos::lint::Severity::kError;
      } else {
        std::cerr << "declint: unknown --fail-on level '" << level << "'\n" << kUsage;
        return 2;
      }
    } else if (arg == "--ring-capacity") {
      if (i + 1 >= argc) {
        std::cerr << "declint: --ring-capacity needs an argument\n" << kUsage;
        return 2;
      }
      char* end = nullptr;
      const unsigned long long bytes = std::strtoull(argv[++i], &end, 10);
      if (end == nullptr || *end != '\0' || bytes == 0) {
        std::cerr << "declint: --ring-capacity needs a positive byte count\n" << kUsage;
        return 2;
      }
      options.ring_capacity = static_cast<std::size_t>(bytes);
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "declint: unknown option '" << arg << "'\n" << kUsage;
      return 2;
    } else {
      options.files.push_back(arg);
    }
  }
  if (options.files.empty()) {
    std::cerr << kUsage;
    return 2;
  }

  std::vector<ParsedFile> parsed;
  parsed.reserve(options.files.size());
  for (const std::string& path : options.files) {
    ParsedFile file;
    if (const int rc = parse_file(path, file); rc != 0) return rc;
    parsed.push_back(std::move(file));
  }

  // Local rules per file; gateway models feed the joint cluster pass.
  decos::lint::RenderInput result;
  std::vector<decos::lint::GatewayModel> models;
  models.reserve(parsed.size());
  decos::lint::ClusterModel cluster;
  for (const ParsedFile& file : parsed) {
    decos::lint::FileReport fr;
    fr.path = file.path;
    if (file.gateway != nullptr) {
      models.push_back(decos::core::make_lint_model(*file.gateway));
      models.back().transport_ring_bytes = options.ring_capacity;
      fr.report = decos::lint::lint_gateway_local(models.back());
    } else {
      fr.report = decos::lint::lint_link(*file.link);
    }
    result.files.push_back(std::move(fr));
  }
  for (const decos::lint::GatewayModel& model : models) cluster.gateways.push_back(&model);
  if (!cluster.gateways.empty())
    result.cluster = decos::lint::lint_cluster(cluster, &result.flows);

  if (options.format == "json") {
    std::cout << decos::lint::render_json(result);
  } else if (options.format == "sarif") {
    std::cout << decos::lint::render_sarif(result);
  } else {
    for (const decos::lint::FileReport& file : result.files) {
      for (const auto& d : file.report.diagnostics()) {
        if (options.quiet && d.severity != decos::lint::Severity::kError) continue;
        std::cout << file.path << ": " << d.to_string() << "\n";
      }
    }
    for (const auto& d : result.cluster.diagnostics()) {
      if (options.quiet && d.severity != decos::lint::Severity::kError) continue;
      std::cout << "cluster: " << d.to_string() << "\n";
    }
  }

  std::size_t errors = 0, warnings = 0;
  bool threshold_hit = false;
  const auto scan = [&](const decos::lint::Report& report) {
    errors += report.error_count();
    warnings += report.warning_count();
    for (const auto& d : report.diagnostics())
      if (at_least(d.severity, options.fail_on)) threshold_hit = true;
  };
  for (const auto& file : result.files) scan(file.report);
  scan(result.cluster);

  if (errors > 0 || (options.werror && warnings > 0)) return 1;
  if (threshold_hit) return 3;
  return 0;
}
