// declint -- static analyzer for DECOS deployment specifications.
//
// Lints <gatewayspec> documents (full deployment: both links, renames,
// repository meta data, optional TDMA schedule) and standalone
// <linkspec> documents (the locally decidable rule subset). Emits one
// diagnostic per line:
//
//   file.xml: error DL005 at link[1] 'stability': ...  [hint: ...]
//
// Exit status: 0 = no errors (warnings allowed unless --werror),
// 1 = at least one error, 2 = usage / IO / parse failure.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/gateway_lint.hpp"
#include "core/gateway_xml.hpp"
#include "lint/lint.hpp"
#include "spec/linkspec_xml.hpp"
#include "xml/xml.hpp"

namespace {

constexpr const char* kUsage =
    "usage: declint [--werror] [--quiet] <spec.xml>...\n"
    "\n"
    "Statically analyzes DECOS deployment specifications:\n"
    "  <gatewayspec>  full deployment analysis (rules DL000-DL006)\n"
    "  <linkspec>     standalone link analysis (locally decidable rules)\n"
    "\n"
    "  --werror  treat warnings as errors\n"
    "  --quiet   print errors only\n";

struct Options {
  bool werror = false;
  bool quiet = false;
  std::vector<std::string> files;
};

int lint_file(const std::string& path, const Options& options) {
  std::ifstream in{path};
  if (!in) {
    std::cerr << path << ": cannot open file\n";
    return 2;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  auto parsed = decos::xml::parse(text);
  if (!parsed.ok()) {
    std::cerr << path << ": XML parse error: " << parsed.error().message << "\n";
    return 2;
  }

  decos::lint::Report report;
  const std::string& root = parsed.value().root->name();
  if (root == "gatewayspec") {
    auto doc = decos::core::parse_gateway_doc(text);
    if (!doc.ok()) {
      std::cerr << path << ": " << doc.error().message << "\n";
      return 2;
    }
    report = decos::core::lint_gateway_doc(doc.value());
  } else if (root == "linkspec") {
    auto link = decos::spec::parse_link_spec_xml(text);
    if (!link.ok()) {
      std::cerr << path << ": " << link.error().message << "\n";
      return 2;
    }
    report = decos::lint::lint_link(link.value());
  } else {
    std::cerr << path << ": unsupported root element <" << root
              << "> (expected <gatewayspec> or <linkspec>)\n";
    return 2;
  }

  for (const auto& d : report.diagnostics()) {
    if (options.quiet && d.severity != decos::lint::Severity::kError) continue;
    std::cout << path << ": " << d.to_string() << "\n";
  }
  const bool failed =
      report.error_count() > 0 || (options.werror && report.warning_count() > 0);
  return failed ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << kUsage;
      return 0;
    }
    if (arg == "--werror") {
      options.werror = true;
    } else if (arg == "--quiet" || arg == "-q") {
      options.quiet = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "declint: unknown option '" << arg << "'\n" << kUsage;
      return 2;
    } else {
      options.files.push_back(arg);
    }
  }
  if (options.files.empty()) {
    std::cerr << kUsage;
    return 2;
  }

  int exit_code = 0;
  for (const std::string& file : options.files) {
    const int rc = lint_file(file, options);
    if (rc > exit_code) exit_code = rc;
  }
  return exit_code;
}
