// decogw -- live virtual-gateway runtime (S30).
//
// Loads a <gatewayspec> deployment, attaches a byte transport to each
// link side (lock-free shared-memory rings or non-blocking UDP
// sockets) and runs the compiled gateway path against real frames on
// host time: ingress bursts -> warmed decode -> admission -> repository
// -> batched dispatch -> construct -> zero-copy egress encode.
//
// Transports (per side):
//   shm:<name>   create /dev/shm SPSC rings <name>.in (peer -> gateway)
//                and <name>.out (gateway -> peer); peers open them with
//                rt::ShmRing::open. Capacity set by --ring-capacity.
//   udp:<port>[:<peerhost>:<peerport>]
//                bind a non-blocking UDP socket on <port>; without an
//                explicit peer the first sender is learned as the
//                egress destination.
//
// Before starting, the deployment is linted with the live-runtime
// transport context (rule DL011): event queues provisioned deeper than
// the ingress ring can buffer are reported, because such bursts drop at
// the transport before admission ever sees them.
//
// Exit status: 0 = clean shutdown (duration elapsed or SIGINT),
// 2 = usage / IO / spec failure.
#include <csignal>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/gateway_lint.hpp"
#include "core/gateway_xml.hpp"
#include "lint/lint.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "rt/gateway_runtime.hpp"
#include "rt/ring.hpp"
#include "rt/udp.hpp"

namespace {

using namespace decos;

constexpr const char* kUsage =
    "usage: decogw [options] <gatewayspec.xml>\n"
    "\n"
    "Runs a virtual gateway live on host time, bridging the byte\n"
    "transports attached to its two link sides.\n"
    "\n"
    "  --side-a <transport>   transport for link side 0 (see below)\n"
    "  --side-b <transport>   transport for link side 1\n"
    "  --ring-capacity <B>    shm ring capacity in bytes (default 1048576);\n"
    "                         also the DL011 lint context\n"
    "  --duration <seconds>   run this long, then exit (default: until SIGINT)\n"
    "  --stats-interval <s>   print runtime counters every s seconds\n"
    "                         (default 1, 0 = off)\n"
    "  --telemetry-out <file> stream S27 windowed telemetry (JSONL) to a\n"
    "                         file; watch it live with decomon --watch\n"
    "  --max-batch <n>        frames drained per endpoint per iteration\n"
    "                         (default 64)\n"
    "  --quiet                suppress periodic stats\n"
    "\n"
    "transports:\n"
    "  shm:<name>             create SPSC rings <name>.in / <name>.out\n"
    "  udp:<port>[:<peerhost>:<peerport>]\n"
    "                         bind UDP <port>; peer learned from first\n"
    "                         datagram when not given\n";

volatile std::sig_atomic_t g_stop = 0;
void handle_signal(int) { g_stop = 1; }

struct Options {
  std::string spec_path;
  std::string side[2];
  std::size_t ring_capacity = 1 << 20;
  double duration = 0;        // 0 = run until SIGINT
  double stats_interval = 1;  // seconds, 0 = off
  std::string telemetry_out;
  std::size_t max_batch = 64;
  bool quiet = false;
};

/// One attached transport, whichever kind it is. Rings are created (and
/// unlinked at exit) by this process; peers open them by name.
struct Transport {
  std::unique_ptr<rt::ShmRing> rx, tx;
  std::unique_ptr<rt::UdpEndpoint> udp;
  std::unique_ptr<rt::RingEndpoint> ring_endpoint;

  rt::Endpoint* endpoint() {
    if (udp != nullptr) return udp.get();
    return ring_endpoint.get();
  }
};

bool parse_positive(const char* text, double& out) {
  char* end = nullptr;
  out = std::strtod(text, &end);
  return end != nullptr && *end == '\0' && out >= 0;
}

bool parse_bytes(const char* text, std::size_t& out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (end == nullptr || *end != '\0' || v == 0) return false;
  out = static_cast<std::size_t>(v);
  return true;
}

/// Build the transport a `shm:...` / `udp:...` descriptor names.
int make_transport(const std::string& descriptor, const char* side_name,
                   std::size_t ring_capacity, Transport& out) {
  if (descriptor.rfind("shm:", 0) == 0) {
    const std::string name = descriptor.substr(4);
    if (name.empty()) {
      std::cerr << "decogw: " << side_name << ": shm transport needs a name\n";
      return 2;
    }
    auto rx = rt::ShmRing::create(name + ".in", ring_capacity);
    if (!rx.ok()) {
      std::cerr << "decogw: " << side_name << ": " << rx.error().to_string() << "\n";
      return 2;
    }
    auto tx = rt::ShmRing::create(name + ".out", ring_capacity);
    if (!tx.ok()) {
      std::cerr << "decogw: " << side_name << ": " << tx.error().to_string() << "\n";
      return 2;
    }
    out.rx = std::make_unique<rt::ShmRing>(std::move(rx.value()));
    out.tx = std::make_unique<rt::ShmRing>(std::move(tx.value()));
    out.ring_endpoint = std::make_unique<rt::RingEndpoint>(out.rx->ring(), out.tx->ring());
    return 0;
  }
  if (descriptor.rfind("udp:", 0) == 0) {
    const std::string rest = descriptor.substr(4);
    const std::size_t colon = rest.find(':');
    const std::string port_text = rest.substr(0, colon);
    std::string peer_host;
    std::uint16_t peer_port = 0;
    if (colon != std::string::npos) {
      const std::string peer = rest.substr(colon + 1);
      const std::size_t peer_colon = peer.rfind(':');
      if (peer_colon == std::string::npos) {
        std::cerr << "decogw: " << side_name << ": udp peer needs host:port\n";
        return 2;
      }
      peer_host = peer.substr(0, peer_colon);
      peer_port = static_cast<std::uint16_t>(std::atoi(peer.c_str() + peer_colon + 1));
    }
    const int local_port = std::atoi(port_text.c_str());
    if (local_port <= 0 || local_port > 65535) {
      std::cerr << "decogw: " << side_name << ": bad udp port '" << port_text << "'\n";
      return 2;
    }
    auto ep = rt::UdpEndpoint::bind("0.0.0.0", static_cast<std::uint16_t>(local_port),
                                    peer_host, peer_port);
    if (!ep.ok()) {
      std::cerr << "decogw: " << side_name << ": " << ep.error().to_string() << "\n";
      return 2;
    }
    out.udp = std::make_unique<rt::UdpEndpoint>(std::move(ep.value()));
    return 0;
  }
  std::cerr << "decogw: " << side_name << ": unknown transport '" << descriptor
            << "' (expected shm:<name> or udp:<port>[:<host>:<port>])\n";
  return 2;
}

void print_stats(const rt::GatewayRuntime& runtime, double elapsed_s) {
  const rt::RuntimeStats& s = runtime.stats();
  std::cout << "[decogw " << elapsed_s << "s] rx=" << s.rx_frames << " tx=" << s.tx_frames
            << " dispatches=" << s.dispatches << " rx_unknown=" << s.rx_unknown
            << " rx_decode_err=" << s.rx_decode_errors << " queue_drops=" << s.rx_dropped
            << " tx_drops=" << s.tx_dropped << "\n";
  for (const rt::FlowStats& flow : runtime.flow_stats()) {
    std::cout << "  side " << flow.side << " '" << flow.message << "' ("
              << (flow.is_event ? "event" : "state") << "): frames=" << flow.frames
              << " drops=" << flow.drops << " decode_err=" << flow.decode_errors << "\n";
  }
  std::cout.flush();
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "decogw: " << flag << " needs an argument\n" << kUsage;
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      std::cout << kUsage;
      return 0;
    } else if (arg == "--side-a" || arg == "--side-b") {
      const char* value = need_value(arg.c_str());
      if (value == nullptr) return 2;
      options.side[arg == "--side-b" ? 1 : 0] = value;
    } else if (arg == "--ring-capacity") {
      const char* value = need_value("--ring-capacity");
      if (value == nullptr || !parse_bytes(value, options.ring_capacity)) {
        std::cerr << "decogw: --ring-capacity needs a positive byte count\n";
        return 2;
      }
    } else if (arg == "--duration") {
      const char* value = need_value("--duration");
      if (value == nullptr || !parse_positive(value, options.duration)) {
        std::cerr << "decogw: --duration needs a non-negative number of seconds\n";
        return 2;
      }
    } else if (arg == "--stats-interval") {
      const char* value = need_value("--stats-interval");
      if (value == nullptr || !parse_positive(value, options.stats_interval)) {
        std::cerr << "decogw: --stats-interval needs a non-negative number of seconds\n";
        return 2;
      }
    } else if (arg == "--telemetry-out") {
      const char* value = need_value("--telemetry-out");
      if (value == nullptr) return 2;
      options.telemetry_out = value;
    } else if (arg == "--max-batch") {
      const char* value = need_value("--max-batch");
      if (value == nullptr || !parse_bytes(value, options.max_batch)) {
        std::cerr << "decogw: --max-batch needs a positive count\n";
        return 2;
      }
    } else if (arg == "--quiet" || arg == "-q") {
      options.quiet = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "decogw: unknown option '" << arg << "'\n" << kUsage;
      return 2;
    } else if (options.spec_path.empty()) {
      options.spec_path = arg;
    } else {
      std::cerr << "decogw: exactly one gatewayspec expected\n" << kUsage;
      return 2;
    }
  }
  if (options.spec_path.empty()) {
    std::cerr << kUsage;
    return 2;
  }
  if (options.side[0].empty() && options.side[1].empty()) {
    std::cerr << "decogw: at least one of --side-a / --side-b is required\n" << kUsage;
    return 2;
  }

  // Load the deployment document once: the same doc feeds the runtime
  // gateway and the DL011 pre-start lint.
  auto doc = core::load_gateway_doc(options.spec_path);
  if (!doc.ok()) {
    std::cerr << "decogw: " << options.spec_path << ": " << doc.error().to_string() << "\n";
    return 2;
  }

  lint::GatewayModel model = core::make_lint_model(doc.value());
  model.transport_ring_bytes = options.ring_capacity;
  const lint::Report lint_report = lint::lint_gateway_local(model);
  for (const auto& d : lint_report.diagnostics()) {
    if (d.rule == lint::kRuleRingCapacity)
      std::cerr << "decogw: " << options.spec_path << ": " << d.to_string() << "\n";
  }

  auto gateway = core::build_gateway(doc.value());
  if (!gateway.ok()) {
    std::cerr << "decogw: " << options.spec_path << ": " << gateway.error().to_string() << "\n";
    return 2;
  }
  gateway.value()->trace().set_enabled(false);

  rt::MonotonicClock clock;
  rt::RuntimeConfig config;
  config.max_batch = options.max_batch;
  rt::GatewayRuntime runtime{*gateway.value(), clock, config};

  Transport transports[2];
  for (int side = 0; side < 2; ++side) {
    if (options.side[side].empty()) continue;
    const char* name = side == 0 ? "--side-a" : "--side-b";
    if (const int rc =
            make_transport(options.side[side], name, options.ring_capacity, transports[side]);
        rc != 0)
      return rc;
    runtime.attach(side, *transports[side].endpoint());
  }

  obs::MetricsRegistry metrics;
  runtime.bind_observability(metrics);

  std::ofstream telemetry_file;
  std::unique_ptr<obs::OstreamTelemetrySink> telemetry_sink;
  std::unique_ptr<obs::WindowAggregator> aggregator;
  if (!options.telemetry_out.empty()) {
    telemetry_file.open(options.telemetry_out);
    if (!telemetry_file) {
      std::cerr << "decogw: cannot open " << options.telemetry_out << "\n";
      return 2;
    }
    obs::TelemetryConfig tconfig;
    tconfig.window = Duration::milliseconds(100);
    tconfig.timeline = obs::TelemetryTimeline::kHost;
    aggregator = std::make_unique<obs::WindowAggregator>(&metrics, nullptr, tconfig);
    telemetry_sink = std::make_unique<obs::OstreamTelemetrySink>(telemetry_file);
    aggregator->set_sink(telemetry_sink.get());
    aggregator->begin_stream("decogw:" + gateway.value()->name());
    runtime.set_telemetry(aggregator.get());
  }

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  runtime.start();

  if (!options.quiet) {
    std::cout << "decogw: gateway '" << gateway.value()->name() << "' running";
    for (int side = 0; side < 2; ++side)
      if (!options.side[side].empty())
        std::cout << (side == 0 ? "  A=" : "  B=") << options.side[side];
    std::cout << "\n";
    std::cout.flush();
  }

  // Single-threaded poll loop: no locking against the stats printer,
  // deterministic shutdown, and SIGINT only flips a flag.
  const Instant start = clock.now();
  const Duration idle = rt::RuntimeConfig{}.idle_sleep;
  Instant next_stats = start + Duration::seconds(1);
  const bool show_stats = !options.quiet && options.stats_interval > 0;
  const auto stats_period =
      Duration::nanoseconds(static_cast<std::int64_t>(options.stats_interval * 1e9));
  while (g_stop == 0) {
    const Instant now = clock.now();
    if (options.duration > 0 && (now - start).as_seconds() >= options.duration) break;
    const std::size_t moved = runtime.poll_once(now);
    if (moved == 0)
      std::this_thread::sleep_for(std::chrono::nanoseconds(idle.ns()));
    if (show_stats && now >= next_stats) {
      print_stats(runtime, (now - start).as_seconds());
      next_stats = now + stats_period;
    }
  }

  if (aggregator != nullptr) aggregator->flush();
  if (!options.quiet) print_stats(runtime, (clock.now() - start).as_seconds());
  return 0;
}
