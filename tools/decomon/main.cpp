// decomon -- streaming monitor for DECOS windowed telemetry.
//
// Tails the JSONL delta stream written by the benches (--telemetry-out)
// or the future rt runtime, folds windows into whole-run per-flow
// health, and renders a top-like table: traces, phase p50/p99,
// deadline- and bound-miss counters. The aggregation arithmetic is the
// stream-reader side of obs/telemetry, which replays the exact
// nearest-rank percentile formula of obs/analysis -- on a loss-free
// stream decomon's numbers equal decotrace's post-hoc numbers to the
// nanosecond.
//
// Modes:
//   --once    read the whole input, print one report, exit
//   --watch   follow a growing file, redraw every --interval ms
//   --json    machine-readable report (one JSON object)
//   --expo    Prometheus-style text exposition snapshot instead of the
//             table (counters/gauges/histograms + flow health)
//
// Exit status: 0 = healthy; 1 = any flow missed its d_acc deadline or
// static bound (or --fail-empty saw no flows); 2 = usage / IO / parse
// failure.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/analysis.hpp"
#include "obs/exposition.hpp"
#include "obs/json.hpp"
#include "obs/telemetry.hpp"

namespace {

using namespace decos;

constexpr const char* kUsage =
    "usage: decomon [options] <stream.jsonl | ->\n"
    "\n"
    "Monitors a DECOS windowed telemetry stream (bench --telemetry-out;\n"
    "'-' reads stdin) and reports per-flow SLO health: traces, phase\n"
    "p50/p99, deadline misses (d_acc) and static-bound misses (declint).\n"
    "\n"
    "  --once           read everything, report once, exit (default when\n"
    "                   the input is stdin or --watch is not given)\n"
    "  --watch          follow the file, redraw every --interval ms until\n"
    "                   interrupted (or --max-updates redraws)\n"
    "  --interval MS    watch redraw period in milliseconds (default 1000)\n"
    "  --max-updates N  stop watching after N redraws (testing hook)\n"
    "  --json           machine-readable report (one JSON object)\n"
    "  --expo           Prometheus-style exposition snapshot\n"
    "  --phases         per-phase detail rows under each flow\n"
    "  --fail-empty     exit 1 when the stream contains no flows\n";

struct Options {
  bool once = false;
  bool watch = false;
  bool json = false;
  bool expo = false;
  bool phases = false;
  bool fail_empty = false;
  long interval_ms = 1000;
  long max_updates = -1;
  std::string file;
};

std::string format_ns(std::int64_t ns) {
  char buf[48];
  if (ns >= 1'000'000'000)
    std::snprintf(buf, sizeof buf, "%.3fs", static_cast<double>(ns) / 1e9);
  else if (ns >= 1'000'000)
    std::snprintf(buf, sizeof buf, "%.3fms", static_cast<double>(ns) / 1e6);
  else if (ns >= 1'000)
    std::snprintf(buf, sizeof buf, "%.3fus", static_cast<double>(ns) / 1e3);
  else
    std::snprintf(buf, sizeof buf, "%lldns", static_cast<long long>(ns));
  return buf;
}

struct Report {
  std::vector<obs::TelemetryStream> streams;
  std::vector<obs::FlowHealth> flows;
  std::uint64_t windows = 0;
  std::uint64_t spans_dropped = 0;
  std::uint64_t evicted = 0;
  std::uint64_t late = 0;
  std::uint64_t misses = 0;

  static Report build(std::vector<obs::TelemetryStream> streams) {
    Report r;
    r.streams = std::move(streams);
    r.flows = obs::flow_health(r.streams);
    for (const obs::TelemetryStream& s : r.streams) {
      r.windows += s.windows.size();
      for (const obs::TelemetryWindow& w : s.windows) {
        r.spans_dropped += w.spans_dropped;
        r.evicted += w.evicted;
        r.late += w.late;
      }
    }
    for (const obs::FlowHealth& f : r.flows) r.misses += f.deadline_miss + f.bound_miss;
    return r;
  }
};

void print_table(const Report& r, bool phases) {
  std::string labels;
  for (const obs::TelemetryStream& s : r.streams) {
    if (s.label.empty()) continue;
    if (!labels.empty()) labels += ",";
    labels += s.label;
  }
  std::printf("decomon: %s  windows=%llu  spans_dropped=%llu  evicted=%llu  late=%llu\n",
              labels.empty() ? "(unlabelled stream)" : labels.c_str(),
              static_cast<unsigned long long>(r.windows),
              static_cast<unsigned long long>(r.spans_dropped),
              static_cast<unsigned long long>(r.evicted), static_cast<unsigned long long>(r.late));
  std::printf("%-28s %8s %12s %12s %12s %6s %12s %6s  %s\n", "FLOW", "N", "P50", "P99", "DEADLINE",
              "MISS", "BOUND", "MISS", "HEALTH");
  for (const obs::FlowHealth& f : r.flows) {
    const auto total = f.phases.find("total");
    const bool exact = total != f.phases.end() && total->second.exact();
    const std::int64_t p50 = total != f.phases.end() ? total->second.percentile(0.50) : 0;
    const std::int64_t p99 = total != f.phases.end() ? total->second.percentile(0.99) : 0;
    const bool sick = f.deadline_miss + f.bound_miss > 0;
    std::printf("%-28s %8llu %12s %12s %12s %6llu %12s %6llu  %s%s\n", f.flow.c_str(),
                static_cast<unsigned long long>(f.traces), format_ns(p50).c_str(),
                format_ns(p99).c_str(),
                f.deadline_ns >= 0 ? format_ns(f.deadline_ns).c_str() : "-",
                static_cast<unsigned long long>(f.deadline_miss),
                f.bound_ns >= 0 ? format_ns(f.bound_ns).c_str() : "-",
                static_cast<unsigned long long>(f.bound_miss), sick ? "MISS" : "OK",
                exact ? "" : " (approx)");
    if (!phases) continue;
    for (const char* phase : obs::kBreakdownPhases) {
      const auto it = f.phases.find(phase);
      if (it == f.phases.end() || it->second.n == 0) continue;
      std::printf("  %-26s %8llu %12s %12s  min=%s max=%s\n", phase,
                  static_cast<unsigned long long>(it->second.n),
                  format_ns(it->second.percentile(0.50)).c_str(),
                  format_ns(it->second.percentile(0.99)).c_str(),
                  format_ns(it->second.min_ns).c_str(), format_ns(it->second.max_ns).c_str());
    }
  }
  if (r.flows.empty()) std::printf("(no flows yet)\n");
}

void print_json(const Report& r) {
  obs::json::Object root;
  root.emplace_back("windows", static_cast<std::int64_t>(r.windows));
  root.emplace_back("spans_dropped", static_cast<std::int64_t>(r.spans_dropped));
  root.emplace_back("evicted", static_cast<std::int64_t>(r.evicted));
  root.emplace_back("late", static_cast<std::int64_t>(r.late));
  root.emplace_back("slo_breach", r.misses > 0);
  obs::json::Array flows;
  for (const obs::FlowHealth& f : r.flows) {
    obs::json::Object o;
    o.emplace_back("flow", f.flow);
    o.emplace_back("traces", static_cast<std::int64_t>(f.traces));
    if (f.deadline_ns >= 0) {
      o.emplace_back("deadline_ns", f.deadline_ns);
      o.emplace_back("deadline_miss", static_cast<std::int64_t>(f.deadline_miss));
    }
    if (f.bound_ns >= 0) {
      o.emplace_back("bound_ns", f.bound_ns);
      o.emplace_back("bound_miss", static_cast<std::int64_t>(f.bound_miss));
    }
    obs::json::Object phases;
    for (const auto& [name, agg] : f.phases) {
      obs::json::Object p;
      p.emplace_back("n", static_cast<std::int64_t>(agg.n));
      p.emplace_back("exact", agg.exact());
      p.emplace_back("min_ns", agg.min_ns);
      p.emplace_back("max_ns", agg.max_ns);
      p.emplace_back("mean_ns", agg.mean());
      p.emplace_back("p50_ns", agg.percentile(0.50));
      p.emplace_back("p99_ns", agg.percentile(0.99));
      phases.emplace_back(name, std::move(p));
    }
    o.emplace_back("phases", std::move(phases));
    flows.push_back(obs::json::Value{std::move(o)});
  }
  root.emplace_back("flows", std::move(flows));
  std::printf("%s\n", obs::json::Value{std::move(root)}.dump().c_str());
}

void print_expo(const Report& r) {
  const obs::MetricsSnapshot metrics = obs::accumulate_metrics(r.streams);
  std::ostringstream out;
  obs::write_exposition(out, metrics, r.flows);
  std::fputs(out.str().c_str(), stdout);
}

int render(const Report& r, const Options& options) {
  if (options.expo)
    print_expo(r);
  else if (options.json)
    print_json(r);
  else
    print_table(r, options.phases);
  if (options.fail_empty && r.flows.empty()) {
    std::fprintf(stderr, "decomon: stream contains no flows\n");
    return 1;
  }
  return r.misses > 0 ? 1 : 0;
}

int run_once(const Options& options) {
  decos::Result<std::vector<obs::TelemetryStream>> streams{std::vector<obs::TelemetryStream>{}};
  if (options.file == "-") {
    streams = obs::load_telemetry(std::cin);
  } else {
    std::ifstream in{options.file};
    if (!in) {
      std::fprintf(stderr, "decomon: cannot open %s\n", options.file.c_str());
      return 2;
    }
    streams = obs::load_telemetry(in);
  }
  if (!streams.ok()) {
    std::fprintf(stderr, "decomon: %s\n", streams.error().message.c_str());
    return 2;
  }
  return render(Report::build(std::move(streams.value())), options);
}

int run_watch(const Options& options) {
  long updates = 0;
  int status = 0;
  while (options.max_updates < 0 || updates < options.max_updates) {
    std::ifstream in{options.file};
    if (!in) {
      std::fprintf(stderr, "decomon: cannot open %s\n", options.file.c_str());
      return 2;
    }
    auto streams = obs::load_telemetry(in);
    if (!streams.ok()) {
      std::fprintf(stderr, "decomon: %s\n", streams.error().message.c_str());
      return 2;
    }
    if (updates > 0) std::printf("\x1b[2J\x1b[H");  // clear + home
    status = render(Report::build(std::move(streams.value())), options);
    std::fflush(stdout);
    ++updates;
    if (options.max_updates >= 0 && updates >= options.max_updates) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(options.interval_ms));
  }
  return status;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n%s", flag, kUsage);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--once") {
      options.once = true;
    } else if (arg == "--watch") {
      options.watch = true;
    } else if (arg == "--json") {
      options.json = true;
    } else if (arg == "--expo") {
      options.expo = true;
    } else if (arg == "--phases") {
      options.phases = true;
    } else if (arg == "--fail-empty") {
      options.fail_empty = true;
    } else if (arg == "--interval") {
      options.interval_ms = std::strtol(value("--interval").c_str(), nullptr, 10);
      if (options.interval_ms < 1) options.interval_ms = 1;
    } else if (arg == "--max-updates") {
      options.max_updates = std::strtol(value("--max-updates").c_str(), nullptr, 10);
    } else if (arg == "--help" || arg == "-h") {
      std::fputs(kUsage, stdout);
      return 0;
    } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
      std::fprintf(stderr, "unknown option %s\n%s", arg.c_str(), kUsage);
      return 2;
    } else if (options.file.empty()) {
      options.file = arg;
    } else {
      std::fprintf(stderr, "decomon reads exactly one stream\n%s", kUsage);
      return 2;
    }
  }
  if (options.file.empty()) {
    std::fprintf(stderr, "no input\n%s", kUsage);
    return 2;
  }
  if (options.once && options.watch) {
    std::fprintf(stderr, "--once and --watch are mutually exclusive\n%s", kUsage);
    return 2;
  }
  if (options.watch && options.file == "-") {
    std::fprintf(stderr, "--watch needs a file (stdin is read once)\n%s", kUsage);
    return 2;
  }
  return options.watch ? run_watch(options) : run_once(options);
}
