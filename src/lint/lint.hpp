// declint -- static analysis of a complete gateway/VN deployment before
// any simulation step (paper Section IV: the link specification is a
// checkable contract; related work treats pre-deployment consistency
// checking of distributed schedules as a first-class tool).
//
// The analyzer operates on a *deployment model*: the two link
// specifications of a virtual gateway plus the repository meta data and
// dispatch configuration, optionally joined by the TDMA schedule of the
// physical core network. It deliberately does not depend on core/ --
// core depends on lint for strict construction (GatewayConfig::
// strict_lint), so the model mirrors VirtualGateway's configuration in
// plain data.
//
// Rule classes (each documented in README "Static analysis"):
//   DL001  transfer-rule consistency (dangling sources, duplicate or
//          dead derived elements)
//   DL002  static expression typing against MessageSpec field types
//          (filters, transfer updates, guards; construction field
//          compatibility between the two links)
//   DL003  TDMA schedule: slot overlap / containment / ownership and
//          bandwidth over-subscription per virtual network
//   DL004  automaton structure: missing initial location, unreachable
//          locations, undefined identifiers in guards/assignments,
//          dead port-interaction edges
//   DL005  temporal-accuracy horizon feasibility: statically dead state
//          messages (t_update + d_acc can never cover the dispatch
//          period; elements no input ever produces)
//   DL006  port sanity: period/round and period/dispatch divisibility,
//          event-queue capacity vs the E5 sizing rule, interarrival
//          bounds
//   DL007  dead convertible elements: elements flagged convertible that
//          no compiled transfer plan ever binds (no output message is
//          constructed from them, no transfer rule consumes them) --
//          dissection silently discards every instance
//
// Whole-cluster rules (lint/flowgraph.hpp joins all gateways of a
// deployment into end-to-end flows; lint_cluster runs these):
//   DL008  static end-to-end latency bounds per flow vs the consumers'
//          temporal accuracy d_acc (lint/timing.hpp)
//   DL009  symbolic filter/rule feasibility over value intervals: dead
//          filters, tautological filters, rules that can never fire,
//          filters shadowed by upstream filters (lint/symbolic.hpp)
//   DL010  worst-case queue occupancy under cross-hop burst compounding
//          (lint/timing.hpp)
//
// Runtime-deployment rule (active when the model carries the transport
// ring capacity of the live runtime, `decogw --ring-capacity`):
//   DL011  event-port queue sizing vs transport ring capacity: the
//          repository queue an event element provisions (validated by
//          DL006/DL010) exceeds the number of frames of its message the
//          runtime's ingress ring can buffer -- under a burst the ring
//          drops frames at the transport before admission ever sees
//          them, so the provisioned queue depth is unreachable
#pragma once

#include <array>
#include <map>
#include <optional>
#include <string>

#include "lint/diagnostic.hpp"
#include "spec/link_spec.hpp"
#include "spec/vn_spec.hpp"
#include "tt/schedule.hpp"
#include "util/time.hpp"

namespace decos::lint {

inline constexpr char kRuleTransfer[] = "DL001";
inline constexpr char kRuleTypes[] = "DL002";
inline constexpr char kRuleSchedule[] = "DL003";
inline constexpr char kRuleAutomaton[] = "DL004";
inline constexpr char kRuleHorizon[] = "DL005";
inline constexpr char kRulePorts[] = "DL006";
inline constexpr char kRuleDeadElement[] = "DL007";
inline constexpr char kRuleLatency[] = "DL008";
inline constexpr char kRuleSymbolic[] = "DL009";
inline constexpr char kRuleOccupancy[] = "DL010";
inline constexpr char kRuleRingCapacity[] = "DL011";

/// Repository meta data of one convertible element as deployed
/// (mirrors core::ElementDecl without depending on core/).
struct ElementMeta {
  spec::InfoSemantics semantics = spec::InfoSemantics::kState;
  Duration d_acc = Duration::milliseconds(50);
  std::size_t queue_capacity = 16;
};

/// Deployment-level view of one virtual gateway: everything
/// VirtualGateway::finalize() would act on, in analyzable form.
struct GatewayModel {
  std::string name = "gateway";
  Duration dispatch_period = Duration::milliseconds(1);
  Duration default_d_acc = Duration::milliseconds(50);
  std::size_t default_queue_capacity = 16;

  std::array<const spec::LinkSpec*, 2> links{nullptr, nullptr};
  /// Element renaming per side: link-namespace name -> repository name.
  std::array<std::map<std::string, std::string>, 2> rename_to_repo;
  /// Explicit per-element overrides, keyed by repository name.
  std::map<std::string, ElementMeta> element_overrides;

  /// Optional physical-network context for DL003: the TDMA schedule of
  /// the core network and the VnId each link's virtual network rides on.
  const tt::TdmaSchedule* schedule = nullptr;
  std::array<std::optional<tt::VnId>, 2> link_vn;

  /// Optional live-runtime transport context for DL011: the byte
  /// capacity of the per-endpoint ingress ring (src/rt/ring.hpp). Zero
  /// means "not deployed on the live runtime"; the rule stays silent.
  std::size_t transport_ring_bytes = 0;

  /// Repository (canonical) name of `element` as seen from `side`.
  const std::string& repo_name(int side, const std::string& element) const;
  /// Effective meta data for repository element `repo` given the
  /// semantics its producer declares.
  ElementMeta element_meta(const std::string& repo, spec::InfoSemantics produced) const;
};

/// Full deployment analysis of a gateway: every local rule class
/// (DL001-DL007) plus the whole-cluster rules (DL008-DL010) over the
/// one-gateway cluster -- so strict finalize also catches an infeasible
/// latency bound.
Report lint_gateway(const GatewayModel& model);

/// Local rules only (DL001-DL007). declint uses this when analyzing
/// several gateways jointly, so cluster findings are not duplicated per
/// file.
Report lint_gateway_local(const GatewayModel& model);

/// Standalone analysis of a single link specification (the subset of
/// rules decidable without the opposite link: local DL001/DL002/DL004).
Report lint_link(const spec::LinkSpec& link);

/// Structural analysis of a TDMA schedule (DL003).
Report lint_schedule(const tt::TdmaSchedule& schedule);

/// Virtual-network-level analysis: link coherence, TT-port/round
/// divisibility (DL006) and -- when a schedule is given -- bandwidth
/// feasibility of the VN's slot allocation (DL003).
Report lint_virtual_network(const spec::VirtualNetworkSpec& vn,
                            const tt::TdmaSchedule* schedule = nullptr,
                            tt::VnId vn_id = tt::kCoreVn);

}  // namespace decos::lint
