// Symbolic evaluation of filter and transfer predicates (DL009).
//
// Every field of a message spec induces a value interval: its static
// value if fixed, the full range of its integer width, {0,1} for
// booleans, top for floats and strings. Link parameters are constants.
// Evaluating a filter predicate over these intervals (ta::Interval
// abstract interpretation) decides, before any instance exists:
//
//   * always false  -- the filter rejects every well-typed instance;
//     the message (and every transfer rule fed by its convertible
//     elements) is dead. Error.
//   * always true   -- the filter is a tautology over the declared field
//     ranges; selective redirection never redirects. Note.
//   * shadowed      -- along a cluster flow, the value constraints of
//     upstream filters narrow the intervals (refine_by_predicate); a
//     downstream filter that is always false *under those narrowed
//     intervals* can never admit an instance even though it is
//     satisfiable in isolation. Error.
//
// This generalises DL007 (dead convertible elements) from reachability
// of the transfer plan to reachability in the value domain.
#pragma once

#include "lint/diagnostic.hpp"
#include "lint/flowgraph.hpp"

namespace decos::lint {

/// DL009 over one cluster: per-gateway filter feasibility plus
/// cross-hop shadowing along the flow graph.
void check_symbolic(const ClusterModel& cluster, const FlowGraph& graph, Report& report);

}  // namespace decos::lint
