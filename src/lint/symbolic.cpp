#include "lint/symbolic.hpp"

#include <set>
#include <string>

#include "ta/expr.hpp"
#include "ta/interval.hpp"

namespace decos::lint {
namespace {

using ta::Interval;
using ta::MapIntervalEnv;

/// Declared value range of one field: its static value if fixed,
/// otherwise the range of the wire type.
Interval field_interval(const spec::FieldSpec& field) {
  if (field.static_value.has_value()) {
    const ta::Value& v = *field.static_value;
    if (v.is_bool()) return Interval::of_bool(v.as_bool());
    if (v.is_numeric()) return Interval::constant(v.as_real());
    return Interval::top();  // strings have no order
  }
  switch (field.type) {
    case spec::FieldType::kBoolean:
      return Interval::any_bool();
    case spec::FieldType::kInt8:
      return Interval{-128.0, 127.0};
    case spec::FieldType::kInt16:
      return Interval{-32768.0, 32767.0};
    case spec::FieldType::kInt32:
      return Interval{-2147483648.0, 2147483647.0};
    case spec::FieldType::kUInt8:
      return Interval{0.0, 255.0};
    case spec::FieldType::kUInt16:
      return Interval{0.0, 65535.0};
    case spec::FieldType::kUInt32:
      return Interval{0.0, 4294967295.0};
    case spec::FieldType::kUInt64:
    case spec::FieldType::kTimestamp:
      return Interval{0.0, std::numeric_limits<double>::infinity()};
    case spec::FieldType::kInt64:
    case spec::FieldType::kFloat32:
    case spec::FieldType::kFloat64:
    case spec::FieldType::kString:
      return Interval::top();
  }
  return Interval::top();
}

/// Environment a filter on `message` sees: every field of every element
/// at its declared range (same-named fields across elements joined),
/// link parameters as constants.
MapIntervalEnv message_env(const spec::LinkSpec& link, const spec::MessageSpec& message) {
  MapIntervalEnv env;
  for (const auto& element : message.elements()) {
    for (const auto& field : element.fields) {
      const Interval declared = field_interval(field);
      env.bind(field.name, env.has(field.name) ? ta::join(env.get(field.name), declared) : declared);
    }
  }
  for (const auto& [name, value] : link.parameters()) {
    if (value.is_bool())
      env.bind(name, Interval::of_bool(value.as_bool()));
    else if (value.is_numeric())
      env.bind(name, Interval::constant(value.as_real()));
  }
  return env;
}

/// A predicate is unsatisfiable over `env` when it evaluates to
/// identically false, or when assuming it true (refine_by_predicate)
/// empties some variable's interval -- which catches contradictory
/// conjunctions like `v > 100 && v < 50` that plain evaluation only
/// sees as unknown.
bool unsatisfiable(const ta::Expr& predicate, const MapIntervalEnv& env) {
  const Interval direct = predicate.evaluate_interval(env);
  if (direct.always_false()) return true;
  if (direct.always_true()) return false;
  MapIntervalEnv refined = env;
  ta::refine_by_predicate(predicate, refined);
  for (const auto& [name, value] : refined.vars())
    if (value.is_bottom()) return true;
  return false;
}

std::string side_loc(const GatewayModel& model, int side) {
  const spec::LinkSpec* link = model.links[static_cast<std::size_t>(side)];
  return "gateway '" + model.name + "' link[" + std::to_string(side) + "] '" +
         (link != nullptr ? link->das() : std::string{"?"}) + "'";
}

/// Local feasibility of every filter of one link.
void check_link_filters(const GatewayModel& model, int side, Report& report) {
  const spec::LinkSpec& link = *model.links[static_cast<std::size_t>(side)];
  for (const auto& message : link.messages()) {
    const ta::ExprPtr* filter = link.filter_for(message.name());
    if (filter == nullptr || *filter == nullptr) continue;
    const MapIntervalEnv env = message_env(link, message);
    const Interval result = (*filter)->evaluate_interval(env);
    const std::string loc = side_loc(model, side) + " filter on '" + message.name() + "'";
    if (unsatisfiable(**filter, env)) {
      report.add(kRuleSymbolic, Severity::kError, link.filter_loc(message.name()), loc,
                 "filter rejects every well-typed instance of '" + message.name() +
                     "' (predicate is identically false over the declared field ranges)",
                 "no instance can pass this link; the message and everything derived from it "
                 "is dead");
      // Transfer rules fed by the dead message can never fire.
      for (const auto& rule : link.transfer_rules()) {
        const spec::ElementSpec* source = message.element(rule.source);
        if (source == nullptr || !source->convertible) continue;
        report.add(kRuleSymbolic, Severity::kError, rule.loc,
                   side_loc(model, side) + " transfer rule '" + rule.target + "'",
                   "transfer rule '" + rule.target + "' <- '" + rule.source +
                       "' can never fire: every carrier of '" + rule.source +
                       "' is rejected by the filter on '" + message.name() + "'",
                   "remove the rule or widen the filter");
      }
    } else if (result.always_true()) {
      report.add(kRuleSymbolic, Severity::kNote, link.filter_loc(message.name()), loc,
                 "filter admits every well-typed instance of '" + message.name() +
                     "' (predicate is a tautology over the declared field ranges)",
                 "selective redirection never redirects; drop the filter or tighten it");
    }
  }
}

/// One filter station along a flow: the declared env of `message` on
/// `link`, met with the value knowledge carried from upstream.
struct Station {
  const spec::LinkSpec* link = nullptr;
  const spec::MessageSpec* message = nullptr;
  const GatewayModel* gateway = nullptr;
  int side = 0;
};

void visit_station(const Station& st, const Flow& flow, MapIntervalEnv& carried, bool& have_carried,
                   std::set<std::string>& reported, Report& report) {
  MapIntervalEnv local = message_env(*st.link, *st.message);
  if (have_carried) {
    // Meet upstream knowledge into this link's declared ranges; fields
    // unknown upstream keep their declared interval.
    for (auto& [name, declared] : local.vars()) {
      if (carried.has(name)) declared = ta::meet(declared, carried.get(name));
    }
  }
  const ta::ExprPtr* filter = st.link->filter_for(st.message->name());
  if (filter != nullptr && *filter != nullptr) {
    const bool dead_locally = unsatisfiable(**filter, message_env(*st.link, *st.message));
    if (unsatisfiable(**filter, local) && !dead_locally) {
      const std::string loc = side_loc(*st.gateway, st.side) + " filter on '" +
                              st.message->name() + "'";
      if (reported.insert(loc).second) {
        report.add(kRuleSymbolic, Severity::kError, st.link->filter_loc(st.message->name()), loc,
                   "filter is shadowed on flow '" + flow.key() +
                       "': upstream filters already exclude its acceptance region, so it can "
                       "never admit an instance",
                   "satisfiable in isolation but dead in this deployment; align the bounds "
                   "with the upstream filter");
      }
    } else {
      ta::refine_by_predicate(**filter, local);
    }
  }
  carried = std::move(local);
  have_carried = true;
}

/// Cross-hop shadowing along every flow of the cluster.
void check_shadowing(const FlowGraph& graph, Report& report) {
  std::set<std::string> reported;
  for (const Flow& flow : graph.flows) {
    MapIntervalEnv carried;
    bool have_carried = false;
    for (const FlowHop& hop : flow.hops) {
      visit_station(Station{hop.gateway->links[static_cast<std::size_t>(hop.ingress_side)],
                            hop.in_message, hop.gateway, hop.ingress_side},
                    flow, carried, have_carried, reported, report);
      // Fields a transfer rule re-derives lose the carried refinement:
      // the update may map admitted inputs anywhere in the target range.
      for (int side = 0; side < 2; ++side) {
        const spec::LinkSpec* link = hop.gateway->links[static_cast<std::size_t>(side)];
        if (link == nullptr) continue;
        for (const auto& rule : link->transfer_rules())
          for (const auto& field : rule.fields) carried.bind(field.name, Interval::top());
      }
      visit_station(Station{hop.gateway->links[static_cast<std::size_t>(hop.egress_side())],
                            hop.out_message, hop.gateway, hop.egress_side()},
                    flow, carried, have_carried, reported, report);
    }
  }
}

}  // namespace

void check_symbolic(const ClusterModel& cluster, const FlowGraph& graph, Report& report) {
  for (const GatewayModel* model : cluster.gateways) {
    if (model == nullptr) continue;
    for (int side = 0; side < 2; ++side) {
      if (model->links[static_cast<std::size_t>(side)] == nullptr) continue;
      check_link_filters(*model, side, report);
    }
  }
  check_shadowing(graph, report);
}

}  // namespace decos::lint
