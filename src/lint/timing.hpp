// Static end-to-end timing of cluster flows (DL008) and worst-case
// queue-occupancy propagation (DL010).
//
// DL008 composes a worst-case latency bound per flow, hop by hop:
//
//   hop(h)  = vn_wait(ingress VN) + dispatch_period
//             + (TT output port ? output period : 0)
//   flow    = sum over hops + vn_wait(final egress VN)
//
// where vn_wait is the worst-case time from an instance becoming ready
// on a virtual network until it has fully crossed it. With the TDMA
// schedule and the VN's slot allocation known it is the largest gap
// between consecutive slot starts plus the following slot's duration
// (miss a slot by epsilon, wait for the next, transmit in it); without a
// schedule it falls back to the ingress TT port's period (one full
// sampling period), or zero for event-triggered ingress. The bound is
// compared against the smallest temporal accuracy d_acc of the state
// elements the flow delivers: if even the static worst case exceeds the
// horizon, every consumer is fed phase-lagged data by construction.
//
// DL010 propagates event bursts along the flow. A gateway that drains an
// event queue every dispatch period D re-emits up to ceil(D/tmin)
// instances back-to-back, so downstream of a hop the burst grows:
//
//   need(B, D, tmin) = B - 1 + ceil(D / tmin)      (queue demand)
//   B_out            = B_in + ceil(D / tmin)       (burst after the hop)
//
// With B = 1 the demand reduces to the local E5 sizing rule DL006
// checks; DL010 catches the cross-hop case where an upstream gateway's
// slower dispatch turns a compliant arrival process into a burst that
// overflows a downstream queue sized only for the local rate.
#pragma once

#include <vector>

#include "lint/diagnostic.hpp"
#include "lint/flowgraph.hpp"
#include "util/time.hpp"

namespace decos::lint {

/// Static latency bound of one flow, exported (via declint --format
/// json) for decotrace --check-bounds to replay against traced runs.
struct FlowBound {
  std::string key;                   // matches obs::phase_breakdown naming
  Duration bound = Duration::zero(); // static worst-case end-to-end latency
  Duration d_acc = Duration::max();  // tightest consumer horizon (max() = none)
  std::size_t hops = 0;
};

/// DL008: compute per-flow bounds, diagnose bounds exceeding d_acc.
/// Bounds for all flows are appended to `bounds` when non-null.
void check_flow_latency(const FlowGraph& graph, Report& report,
                        std::vector<FlowBound>* bounds = nullptr);

/// DL010: propagate event-burst bounds along each flow, diagnose
/// downstream queues that overflow under worst-case burst alignment.
void check_flow_occupancy(const FlowGraph& graph, Report& report);

}  // namespace decos::lint
