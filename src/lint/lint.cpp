#include "lint/lint.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <deque>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "lint/flowgraph.hpp"
#include "lint/symbolic.hpp"
#include "lint/timing.hpp"

namespace decos::lint {
namespace {

// ---------------------------------------------------------------------------
// Shared helpers
// ---------------------------------------------------------------------------

ta::StaticType field_static_type(spec::FieldType type) {
  switch (type) {
    case spec::FieldType::kBoolean: return ta::StaticType::kBool;
    case spec::FieldType::kFloat32:
    case spec::FieldType::kFloat64: return ta::StaticType::kReal;
    case spec::FieldType::kString: return ta::StaticType::kString;
    default: return ta::StaticType::kInt;  // integers and timestamps
  }
}

bool int_like(ta::StaticType t) {
  return t == ta::StaticType::kInt || t == ta::StaticType::kBool;
}

std::string format_bytes(double bytes) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%g", bytes);
  return buffer;
}

std::string side_loc(const GatewayModel& model, int side) {
  std::string das = model.links[side] != nullptr ? model.links[side]->das() : std::string{};
  return "link[" + std::to_string(side) + "]" + (das.empty() ? "" : " '" + das + "'");
}

/// Type environment for lint passes: a name->type map with the link
/// parameters as fallback and a context-dependent function set that
/// mirrors the runtime environments (FilterEnv supports abs only;
/// ConversionEnv adds min/max; the automaton interpreter adds
/// horizon/requ via the gateway hooks).
class LintTypeEnv final : public ta::TypeEnv {
 public:
  enum class Functions { kFilter, kConversion, kAutomaton };

  LintTypeEnv(Functions functions, bool permissive)
      : functions_{functions}, permissive_{permissive} {}

  /// First binding wins (e.g. transfer targets shadow source fields,
  /// matching ConversionEnv's lookup order).
  void bind(const std::string& name, ta::StaticType type) { types_.emplace(name, type); }

  void bind_element(const spec::ElementSpec& element) {
    for (const auto& f : element.fields) bind(f.name, field_static_type(f.type));
  }

  void bind_parameters(const spec::LinkSpec& link) {
    for (const auto& [name, value] : link.parameters()) bind(name, ta::static_type_of(value));
  }

  Result<ta::StaticType> type_of(const std::string& name) const override {
    if (name == "t_now" || name == "tnow") return ta::StaticType::kInt;
    if (const auto it = types_.find(name); it != types_.end()) return it->second;
    if (permissive_) return ta::StaticType::kAny;
    return Result<ta::StaticType>::failure("unknown identifier '" + name + "'");
  }

  Result<ta::StaticType> type_of_call(const std::string& fn,
                                      const std::vector<ta::StaticType>& args) const override {
    using ta::StaticType;
    const auto numeric = [&](std::size_t i) {
      return args[i] != StaticType::kString && args[i] != StaticType::kBool;
    };
    if (fn == "abs") {
      if (args.size() != 1)
        return Result<StaticType>::failure("abs() takes 1 argument, got " +
                                           std::to_string(args.size()));
      if (!numeric(0)) return Result<StaticType>::failure("abs() needs a numeric argument");
      return args[0];
    }
    if ((fn == "min" || fn == "max") && functions_ != Functions::kFilter) {
      if (args.size() != 2)
        return Result<StaticType>::failure(fn + "() takes 2 arguments, got " +
                                           std::to_string(args.size()));
      if (args[0] == StaticType::kString || args[1] == StaticType::kString)
        return Result<StaticType>::failure(fn + "() needs numeric arguments");
      if (args[0] == StaticType::kReal || args[1] == StaticType::kReal) return StaticType::kReal;
      if (args[0] == StaticType::kAny || args[1] == StaticType::kAny) return StaticType::kAny;
      return StaticType::kInt;
    }
    if (functions_ == Functions::kAutomaton && (fn == "horizon" || fn == "requ")) {
      if (args.size() != 1)
        return Result<StaticType>::failure(fn + "() takes 1 argument (a message name), got " +
                                           std::to_string(args.size()));
      if (args[0] != StaticType::kString && args[0] != StaticType::kAny)
        return Result<StaticType>::failure(fn + "() needs a message-name string argument");
      return fn == "horizon" ? StaticType::kInt : StaticType::kBool;
    }
    return Result<StaticType>::failure("unknown function '" + fn + "' in this context");
  }

 private:
  Functions functions_;
  bool permissive_;
  std::unordered_map<std::string, ta::StaticType> types_;
};

const spec::ElementSpec* find_element(const spec::LinkSpec* link, const std::string& name) {
  if (link == nullptr) return nullptr;
  for (const auto& m : link->messages()) {
    if (const spec::ElementSpec* e = m.element(name); e != nullptr) return e;
  }
  return nullptr;
}

/// What produces repository element `repo`: an input-port element, a
/// transfer-rule target, or nothing.
struct Producer {
  const spec::ElementSpec* element = nullptr;  // port-produced
  const spec::PortSpec* port = nullptr;        // its input port
  const spec::TransferRule* rule = nullptr;    // rule-produced
  int side = -1;
  spec::InfoSemantics semantics = spec::InfoSemantics::kState;

  bool found() const { return element != nullptr || rule != nullptr; }
};

Producer find_producer(const GatewayModel& model, const std::string& repo) {
  Producer out;
  for (int side = 0; side < 2; ++side) {
    const spec::LinkSpec* link = model.links[side];
    if (link == nullptr) continue;
    for (const auto& port : link->ports()) {
      if (port.direction != spec::DataDirection::kInput) continue;
      const spec::MessageSpec* ms = link->message(port.message);
      if (ms == nullptr) continue;
      for (const auto* e : ms->convertible_elements()) {
        if (model.repo_name(side, e->name) != repo) continue;
        out.element = e;
        out.port = &port;
        out.side = side;
        out.semantics = port.semantics;
        return out;
      }
    }
  }
  for (int side = 0; side < 2; ++side) {
    const spec::LinkSpec* link = model.links[side];
    if (link == nullptr) continue;
    for (const auto& rule : link->transfer_rules()) {
      if (model.repo_name(side, rule.target) != repo) continue;
      out.rule = &rule;
      out.side = side;
      out.semantics = spec::InfoSemantics::kState;
      for (const auto& f : rule.fields)
        if (f.semantics == "event") out.semantics = spec::InfoSemantics::kEvent;
      return out;
    }
  }
  return out;
}

/// Repository names required by some output message on either side.
std::set<std::string> output_required_elements(const GatewayModel& model) {
  std::set<std::string> out;
  for (int side = 0; side < 2; ++side) {
    const spec::LinkSpec* link = model.links[side];
    if (link == nullptr) continue;
    for (const auto& port : link->ports()) {
      if (port.direction != spec::DataDirection::kOutput) continue;
      const spec::MessageSpec* ms = link->message(port.message);
      if (ms == nullptr) continue;
      for (const auto* e : ms->convertible_elements()) out.insert(model.repo_name(side, e->name));
    }
  }
  return out;
}

/// Worst-case payload demand of one gateway link on its virtual network,
/// in bytes per TDMA round. Unlike VirtualNetworkSpec (which aggregates
/// every job's link and therefore counts each flow once at its producer),
/// the gateway model sees only its own link, so both directions count:
/// input ports are traffic the DAS jobs transmit towards the gateway,
/// output ports are the gateway's own transmissions.
double link_demand_bytes_per_round(const spec::LinkSpec& link, Duration round) {
  if (round <= Duration::zero()) return 0.0;
  const double round_ns = static_cast<double>(round.ns());
  double total = 0.0;
  for (const auto& port : link.ports()) {
    const spec::MessageSpec* ms = link.message(port.message);
    if (ms == nullptr) continue;
    const double bytes = static_cast<double>(ms->wire_size());
    if (port.is_time_triggered() && port.period > Duration::zero()) {
      total += bytes * round_ns / static_cast<double>(port.period.ns());
    } else if (port.min_interarrival > Duration::zero()) {
      total += bytes * round_ns / static_cast<double>(port.min_interarrival.ns());
    }
  }
  return total;
}

// ---------------------------------------------------------------------------
// DL001 -- transfer-rule consistency
// ---------------------------------------------------------------------------

void check_transfer_rules(const GatewayModel& model, bool standalone, Report& report) {
  std::set<std::string> port_produced;
  for (int side = 0; side < 2; ++side) {
    const spec::LinkSpec* link = model.links[side];
    if (link == nullptr) continue;
    for (const auto& port : link->ports()) {
      if (port.direction != spec::DataDirection::kInput) continue;
      const spec::MessageSpec* ms = link->message(port.message);
      if (ms == nullptr) continue;
      for (const auto* e : ms->convertible_elements())
        port_produced.insert(model.repo_name(side, e->name));
    }
  }

  std::map<std::string, int> target_count;  // repo target -> #rules
  for (int side = 0; side < 2; ++side) {
    const spec::LinkSpec* link = model.links[side];
    if (link == nullptr) continue;
    for (const auto& rule : link->transfer_rules())
      ++target_count[model.repo_name(side, rule.target)];
  }

  const std::set<std::string> needed = output_required_elements(model);

  for (int side = 0; side < 2; ++side) {
    const spec::LinkSpec* link = model.links[side];
    if (link == nullptr) continue;
    for (const auto& rule : link->transfer_rules()) {
      const std::string loc = side_loc(model, side) + ": transfer rule '" + rule.target + "'";
      const std::string src_repo = model.repo_name(side, rule.source);
      const std::string tgt_repo = model.repo_name(side, rule.target);

      if (src_repo == tgt_repo) {
        report.add(kRuleTransfer, Severity::kError, loc,
                   "rule derives element '" + rule.target + "' from itself",
                   "a conversion rule needs a distinct source element");
      }

      bool source_exists = port_produced.count(src_repo) != 0;
      if (!source_exists) {
        // A chain: the source may be another rule's derived element.
        for (int other = 0; other < 2 && !source_exists; ++other) {
          const spec::LinkSpec* ol = model.links[other];
          if (ol == nullptr) continue;
          for (const auto& r2 : ol->transfer_rules()) {
            if (&r2 == &rule) continue;
            if (model.repo_name(other, r2.target) == src_repo) source_exists = true;
          }
        }
      }
      if (!source_exists && src_repo != tgt_repo) {
        if (standalone) {
          report.add(kRuleTransfer, Severity::kNote, loc,
                     "source element '" + rule.source +
                         "' is not produced by this link; the opposite link of the gateway "
                         "must supply it");
        } else {
          report.add(kRuleTransfer, Severity::kError, loc,
                     "rule derives '" + rule.target + "' from '" + rule.source +
                         "', but no input port on either link carries a convertible element '" +
                         src_repo + "'",
                     "check element names and <rename> entries, or add an input port whose "
                     "message carries the element");
        }
      }

      if (port_produced.count(tgt_repo) != 0) {
        report.add(kRuleTransfer, Severity::kWarning, loc,
                   "derived element '" + tgt_repo +
                       "' is also stored directly from an input port; the two producers will "
                       "overwrite each other",
                   "rename the derived element or drop the conversion rule");
      }
      if (target_count[tgt_repo] > 1) {
        report.add(kRuleTransfer, Severity::kError, loc,
                   "element '" + tgt_repo + "' is derived by " +
                       std::to_string(target_count[tgt_repo]) + " transfer rules",
                   "merge the rules; the repository holds one image per element");
      }
      if (!standalone && needed.count(tgt_repo) == 0) {
        report.add(kRuleTransfer, Severity::kWarning, loc,
                   "derived element '" + tgt_repo + "' is not consumed by any output message",
                   "remove the dead rule or add the element to an outgoing message");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// DL002 -- static expression typing
// ---------------------------------------------------------------------------

void check_filter_types(const GatewayModel& model, int side, Report& report) {
  const spec::LinkSpec& link = *model.links[side];
  for (const auto& [message_name, predicate] : link.filters()) {
    const spec::MessageSpec* ms = link.message(message_name);
    if (ms == nullptr || !predicate) continue;  // DL000 covers
    LintTypeEnv env{LintTypeEnv::Functions::kFilter, /*permissive=*/false};
    for (const auto& element : ms->elements()) env.bind_element(element);
    env.bind_parameters(link);
    const std::string loc = side_loc(model, side) + ": filter for message '" + message_name + "'";
    auto t = predicate->infer_type(env);
    if (!t.ok()) {
      report.add(kRuleTypes, Severity::kError, loc, t.error().message,
                 "the filter is evaluated over the instance's field values and the link "
                 "parameters");
      continue;
    }
    if (t.value() == ta::StaticType::kString) {
      report.add(kRuleTypes, Severity::kError, loc,
                 "filter predicate evaluates to a string, not a boolean",
                 "write a comparison, e.g. `value >= 0`");
    }
  }
}

void check_transfer_types(const GatewayModel& model, int side, bool standalone, Report& report) {
  const spec::LinkSpec& link = *model.links[side];
  for (const auto& rule : link.transfer_rules()) {
    const std::string loc = side_loc(model, side) + ": transfer rule '" + rule.target + "'";

    // Resolve the source element's field types: the owning link first,
    // then the opposite link through the repository namespace.
    const spec::ElementSpec* source = find_element(&link, rule.source);
    if (source == nullptr) {
      const std::string src_repo = model.repo_name(side, rule.source);
      const spec::LinkSpec* other = model.links[1 - side];
      if (other != nullptr) {
        for (const auto& ms : other->messages()) {
          for (const auto* e : ms.convertible_elements()) {
            if (model.repo_name(1 - side, e->name) == src_repo) source = e;
          }
        }
      }
    }
    // The derived element's declared types, when it appears as a message
    // element (the usual case: it constitutes an output message).
    const spec::ElementSpec* target = find_element(&link, rule.target);
    if (target == nullptr) target = find_element(model.links[1 - side], rule.target);

    // Unresolvable names stay permissive in standalone link lint (the
    // opposite link may supply them); in a full gateway model every
    // identifier must resolve.
    const bool permissive = standalone && source == nullptr;
    LintTypeEnv env{LintTypeEnv::Functions::kConversion, permissive};
    if (target != nullptr) {
      env.bind_element(*target);
    } else {
      for (const auto& f : rule.fields) env.bind(f.name, ta::static_type_of(f.init));
    }
    if (source != nullptr) env.bind_element(*source);
    env.bind_parameters(link);

    for (const auto& f : rule.fields) {
      if (!f.update) continue;  // DL000 covers
      auto t = f.update->infer_type(env);
      if (!t.ok()) {
        report.add(kRuleTypes, Severity::kError, loc + ", field '" + f.name + "'",
                   t.error().message,
                   "updates may reference the derived element's own fields, the source "
                   "element's fields and the link parameters");
        continue;
      }
      if (target == nullptr) continue;
      const spec::FieldSpec* declared = target->field(f.name);
      if (declared == nullptr) continue;
      const ta::StaticType declared_type = field_static_type(declared->type);
      const ta::StaticType inferred = t.value();
      if (inferred == ta::StaticType::kAny) continue;
      if ((declared_type == ta::StaticType::kString) != (inferred == ta::StaticType::kString)) {
        report.add(kRuleTypes, Severity::kError, loc + ", field '" + f.name + "'",
                   "update expression has type " + ta::static_type_name(inferred) +
                       " but the element declares field '" + f.name + "' as " +
                       ta::static_type_name(declared_type),
                   "semantic conversion would throw at runtime");
      } else if (int_like(declared_type) && inferred == ta::StaticType::kReal) {
        report.add(kRuleTypes, Severity::kWarning, loc + ", field '" + f.name + "'",
                   "real-valued update is stored into integer field '" + f.name +
                       "'; the fraction is truncated at encoding");
      }
    }
  }
}

/// Construction compatibility: every non-static field of an outgoing
/// convertible element must be produced -- by name, with a compatible
/// type -- on the repository side. This is the static counterpart of the
/// runtime `construction_failed` counter.
void check_construction_types(const GatewayModel& model, Report& report) {
  for (int side = 0; side < 2; ++side) {
    const spec::LinkSpec* link = model.links[side];
    if (link == nullptr) continue;
    for (const auto& port : link->ports()) {
      if (port.direction != spec::DataDirection::kOutput) continue;
      const spec::MessageSpec* ms = link->message(port.message);
      if (ms == nullptr) continue;
      for (const auto* element : ms->convertible_elements()) {
        const std::string repo = model.repo_name(side, element->name);
        const Producer producer = find_producer(model, repo);
        if (!producer.found()) continue;  // DL005 reports the dead message
        const std::string loc = side_loc(model, side) + ": output message '" + port.message +
                                "', element '" + element->name + "'";
        for (const auto& field : element->fields) {
          if (field.is_static()) continue;
          if (producer.element != nullptr) {
            const spec::FieldSpec* produced = producer.element->field(field.name);
            if (produced == nullptr) {
              report.add(kRuleTypes, Severity::kError, loc,
                         "field '" + field.name + "' has no counterpart in producing element '" +
                             producer.element->name + "' (" + side_loc(model, producer.side) + ")",
                         "construction would fail at runtime; align the field names of the "
                         "two links");
              continue;
            }
            const ta::StaticType want = field_static_type(field.type);
            const ta::StaticType have = field_static_type(produced->type);
            if ((want == ta::StaticType::kString) != (have == ta::StaticType::kString)) {
              report.add(kRuleTypes, Severity::kError, loc,
                         "field '" + field.name + "' is " + ta::static_type_name(want) +
                             " here but the producing element carries " +
                             ta::static_type_name(have),
                         "semantic conversion would throw at runtime");
            } else if (int_like(want) && have == ta::StaticType::kReal) {
              report.add(kRuleTypes, Severity::kWarning, loc,
                         "field '" + field.name +
                             "' narrows the producer's real value to an integer");
            }
          } else if (producer.rule != nullptr) {
            const bool produced =
                std::any_of(producer.rule->fields.begin(), producer.rule->fields.end(),
                            [&](const spec::TransferFieldRule& fr) { return fr.name == field.name; });
            if (!produced) {
              report.add(kRuleTypes, Severity::kError, loc,
                         "field '" + field.name + "' is not derived by transfer rule '" +
                             producer.rule->target + "'",
                         "add a field rule for it or mark the field static");
            }
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// DL004 -- automaton structure (plus DL002 for guard/assignment typing)
// ---------------------------------------------------------------------------

void check_automata(const GatewayModel& model, int side, Report& report) {
  const spec::LinkSpec& link = *model.links[side];
  for (const auto& automaton : link.automata()) {
    const std::string loc =
        side_loc(model, side) + ": automaton '" + automaton.name() + "'";

    if (auto st = automaton.validate(); !st.ok()) {
      report.add(kRuleAutomaton, Severity::kError, loc, st.error().message);
      continue;  // structure is unsound; further analysis would mislead
    }

    // Reachability from the initial location (guards ignored: an edge
    // whose guard is never true is a semantic question, not structure).
    std::unordered_map<std::string, std::vector<const ta::Edge*>> out_edges;
    for (const auto& e : automaton.edges()) out_edges[e.source].push_back(&e);
    std::unordered_set<std::string> reached{automaton.initial()};
    std::deque<std::string> frontier{automaton.initial()};
    while (!frontier.empty()) {
      const std::string at = std::move(frontier.front());
      frontier.pop_front();
      for (const ta::Edge* e : out_edges[at]) {
        if (reached.insert(e->target).second) frontier.push_back(e->target);
      }
    }
    // The error location is entered implicitly on temporal violations,
    // so it does not need an explicit incoming edge.
    for (const auto& location : automaton.locations()) {
      if (reached.count(location) == 0 && location != automaton.error()) {
        report.add(kRuleAutomaton, Severity::kWarning, loc,
                   "location '" + location + "' is unreachable from the initial location '" +
                       automaton.initial() + "'",
                   "add an edge or remove the location");
      }
    }

    // Identifier resolution mirrors the interpreter's Env: t_now, the
    // automaton's clocks and variables (assignments may introduce
    // variables on first use), then the link parameters.
    std::unordered_set<std::string> known{"t_now", "tnow"};
    for (const auto& c : automaton.clocks()) known.insert(c);
    for (const auto& [name, init] : automaton.variables()) known.insert(name);
    for (const auto& [name, value] : link.parameters()) known.insert(name);
    std::unordered_set<std::string> declared = known;
    for (const auto& e : automaton.edges())
      for (const auto& a : e.assignments) known.insert(a.target);

    LintTypeEnv env{LintTypeEnv::Functions::kAutomaton, /*permissive=*/false};
    for (const auto& c : automaton.clocks()) env.bind(c, ta::StaticType::kInt);
    for (const auto& [name, init] : automaton.variables()) env.bind(name, ta::static_type_of(init));
    env.bind_parameters(link);
    for (const auto& e : automaton.edges())
      for (const auto& a : e.assignments) env.bind(a.target, ta::StaticType::kAny);

    for (const auto& e : automaton.edges()) {
      const std::string edge_loc = loc + ", edge " + e.source + " -> " + e.target;
      std::vector<std::string> identifiers;
      if (e.guard) e.guard->collect_identifiers(identifiers);
      for (const auto& a : e.assignments) a.value->collect_identifiers(identifiers);
      for (const auto& id : identifiers) {
        if (known.count(id) == 0) {
          report.add(kRuleAutomaton, Severity::kError, edge_loc,
                     "undefined identifier '" + id + "'",
                     "declare a clock or variable in the automaton, or a <param> on the link");
        }
      }
      for (const auto& a : e.assignments) {
        if (declared.count(a.target) == 0) {
          report.add(kRuleAutomaton, Severity::kNote, edge_loc,
                     "assignment introduces variable '" + a.target + "' implicitly",
                     "declare it with <variable name=\"" + a.target + "\" init=\"...\"/>");
        }
      }
      if (e.action != ta::ActionKind::kInternal && link.port_for(e.message) == nullptr) {
        report.add(kRuleAutomaton, Severity::kWarning, edge_loc,
                   "automaton handles message '" + e.message +
                       "' but the link declares no port for it",
                   "the edge can never fire; add a port or drop the edge");
      }

      // DL002: guard and assignment typing under the automaton's scope.
      if (e.guard) {
        auto t = e.guard->infer_type(env);
        if (!t.ok()) {
          report.add(kRuleTypes, Severity::kError, edge_loc, t.error().message);
        } else if (t.value() == ta::StaticType::kString) {
          report.add(kRuleTypes, Severity::kError, edge_loc,
                     "guard evaluates to a string, not a boolean");
        }
      }
      for (const auto& a : e.assignments) {
        auto t = a.value->infer_type(env);
        if (!t.ok()) {
          report.add(kRuleTypes, Severity::kError, edge_loc, t.error().message);
        } else if (std::find(automaton.clocks().begin(), automaton.clocks().end(), a.target) !=
                       automaton.clocks().end() &&
                   t.value() == ta::StaticType::kString) {
          report.add(kRuleTypes, Severity::kError, edge_loc,
                     "clock '" + a.target + "' is assigned a string value");
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// DL005 -- temporal-accuracy horizon feasibility
// ---------------------------------------------------------------------------

void check_horizons(const GatewayModel& model, Report& report) {
  for (int side = 0; side < 2; ++side) {
    const spec::LinkSpec* link = model.links[side];
    if (link == nullptr) continue;
    for (const auto& port : link->ports()) {
      if (port.direction != spec::DataDirection::kOutput) continue;
      const spec::MessageSpec* ms = link->message(port.message);
      if (ms == nullptr) continue;
      for (const auto* element : ms->convertible_elements()) {
        const std::string repo = model.repo_name(side, element->name);
        const std::string loc = side_loc(model, side) + ": output message '" + port.message +
                                "', element '" + element->name + "'";
        const Producer producer = find_producer(model, repo);
        if (!producer.found()) {
          report.add(kRuleHorizon, Severity::kError, loc,
                     "no input port or transfer rule produces element '" + repo +
                         "'; its horizon is negative forever and the message is statically dead",
                     "add an input port whose message carries the element, a transfer rule "
                     "deriving it, or a <rename> aligning the namespaces");
          continue;
        }
        const ElementMeta meta = model.element_meta(repo, producer.semantics);
        if (meta.semantics != spec::InfoSemantics::kState) continue;  // events: no horizon
        if (meta.d_acc <= Duration::zero()) {
          report.add(kRuleHorizon, Severity::kError, loc,
                     "state element '" + repo + "' has a non-positive temporal-accuracy "
                     "interval " + meta.d_acc.to_string(),
                     "set a positive dacc");
          continue;
        }
        if (meta.d_acc <= model.dispatch_period) {
          report.add(kRuleHorizon, Severity::kError, loc,
                     "statically dead: d_acc " + meta.d_acc.to_string() +
                         " of element '" + repo +
                         "' cannot cover the gateway dispatch period " +
                         model.dispatch_period.to_string() +
                         " (Eq. (2): the horizon at a dispatch point can always be negative)",
                     "raise the element's dacc above the dispatch period or dispatch faster");
          continue;
        }
        // The producer's update spacing bounds how long images stay
        // accurate between refreshes.
        Duration gap = Duration::zero();
        std::string gap_what;
        if (producer.port != nullptr && producer.port->is_time_triggered()) {
          gap = producer.port->period;
          gap_what = "period";
        } else if (producer.port != nullptr &&
                   producer.port->max_interarrival < Duration::max()) {
          gap = producer.port->max_interarrival;
          gap_what = "maximum interarrival";
        }
        if (gap > Duration::zero() && meta.d_acc <= gap) {
          report.add(kRuleHorizon, Severity::kWarning, loc,
                     "d_acc " + meta.d_acc.to_string() + " of element '" + repo +
                         "' is not larger than the producer's " + gap_what + " " +
                         gap.to_string() + "; the image goes stale between updates",
                     "raise dacc above the producer's update spacing");
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// DL007 -- dead convertible elements
// ---------------------------------------------------------------------------

// Mirrors VirtualGateway::compile_plans(): a convertible element whose
// repository name is neither required by an output message nor consumed
// as a transfer-rule source is never bound by any compiled transfer
// plan -- dissection discards every arriving instance of it.
void check_dead_elements(const GatewayModel& model, Report& report) {
  const std::set<std::string> needed = output_required_elements(model);
  std::set<std::string> rule_sources;
  for (int side = 0; side < 2; ++side) {
    const spec::LinkSpec* link = model.links[side];
    if (link == nullptr) continue;
    for (const auto& rule : link->transfer_rules())
      rule_sources.insert(model.repo_name(side, rule.source));
  }
  for (int side = 0; side < 2; ++side) {
    const spec::LinkSpec* link = model.links[side];
    if (link == nullptr) continue;
    for (const auto& ms : link->messages()) {
      const spec::PortSpec* port = link->port_for(ms.name());
      if (port != nullptr && port->direction == spec::DataDirection::kOutput)
        continue;  // output elements are consumed by definition
      for (const auto* e : ms.convertible_elements()) {
        const std::string& repo = model.repo_name(side, e->name);
        if (needed.count(repo) != 0 || rule_sources.count(repo) != 0) continue;
        report.add(kRuleDeadElement, Severity::kWarning,
                   side_loc(model, side) + ": message '" + ms.name() + "', element '" +
                       e->name + "'",
                   "convertible element '" + repo + "' is never bound by any transfer plan: "
                   "no output message is constructed from it and no transfer rule consumes "
                   "it, so dissection discards every instance",
                   "drop the convertible flag, add the element to an outgoing message, or "
                   "derive another element from it with a conversion rule");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// DL006 -- port sanity
// ---------------------------------------------------------------------------

void check_ports(const GatewayModel& model, bool standalone, Report& report) {
  for (int side = 0; side < 2; ++side) {
    const spec::LinkSpec* link = model.links[side];
    if (link == nullptr) continue;
    for (const auto& port : link->ports()) {
      const std::string loc = side_loc(model, side) + ": port for message '" + port.message + "'";

      // Interarrival bounds: without tmin (or a TT period), queue sizing
      // and bandwidth accounting can only be probabilistic (Section II-E).
      if (port.direction == spec::DataDirection::kInput && !port.is_time_triggered() &&
          port.min_interarrival <= Duration::zero()) {
        report.add(kRulePorts, Severity::kWarning, loc,
                   "event input port declares no minimum interarrival time; only "
                   "probabilistic statements about queue sizes and bandwidth are possible",
                   "set tmin from the producing job's specification");
      }

      if (standalone) continue;  // the remaining checks need gateway/network context

      // Dispatch alignment: time-triggered outputs are evaluated at
      // dispatch points only, so a period off the dispatch grid drifts.
      if (port.direction == spec::DataDirection::kOutput && port.is_time_triggered() &&
          model.dispatch_period > Duration::zero() && port.period > Duration::zero() &&
          !port.period.mod(model.dispatch_period).is_zero()) {
        report.add(kRulePorts, Severity::kWarning, loc,
                   "TT period " + port.period.to_string() +
                       " is not a multiple of the gateway dispatch period " +
                       model.dispatch_period.to_string() + "; emissions drift by up to one "
                       "dispatch period",
                   "align the period with the dispatch grid");
      }

      // Round divisibility against the physical schedule, when known.
      if (model.schedule != nullptr && model.link_vn[side].has_value() &&
          port.is_time_triggered() && port.period > Duration::zero()) {
        const Duration round = model.schedule->round_length();
        if (round > Duration::zero() && !port.period.mod(round).is_zero() &&
            !round.mod(port.period).is_zero()) {
          report.add(kRulePorts, Severity::kError, loc,
                     "TT period " + port.period.to_string() +
                         " is incommensurable with the TDMA round " + round.to_string() +
                         " of the core network",
                     "make the period divide the round (or be a whole multiple of it)");
        }
      }
    }

    if (standalone) continue;

    // Event-queue sizing (E5): an event element consumed by a TT output
    // with period P and filled at worst every tmin needs ceil(P / tmin)
    // queue slots to survive one consumer period without overflowing.
    for (const auto& port : link->ports()) {
      if (port.direction != spec::DataDirection::kOutput || !port.is_time_triggered()) continue;
      if (port.period <= Duration::zero()) continue;
      const spec::MessageSpec* ms = link->message(port.message);
      if (ms == nullptr) continue;
      for (const auto* element : ms->convertible_elements()) {
        const std::string repo = model.repo_name(side, element->name);
        const Producer producer = find_producer(model, repo);
        if (producer.port == nullptr) continue;
        const ElementMeta meta = model.element_meta(repo, producer.semantics);
        if (meta.semantics != spec::InfoSemantics::kEvent) continue;
        Duration tmin = producer.port->min_interarrival;
        if (tmin <= Duration::zero() && producer.port->is_time_triggered())
          tmin = producer.port->period;
        if (tmin <= Duration::zero()) continue;  // unbounded: warned above
        const auto need = static_cast<std::size_t>(
            (port.period.ns() + tmin.ns() - 1) / tmin.ns());
        if (meta.queue_capacity < need) {
          report.add(kRulePorts, Severity::kError,
                     side_loc(model, side) + ": output message '" + port.message +
                         "', element '" + element->name + "'",
                     "event queue of '" + repo + "' holds " +
                         std::to_string(meta.queue_capacity) + " instances but up to " +
                         std::to_string(need) + " can arrive within one consumer period " +
                         port.period.to_string() + " (tmin " + tmin.to_string() + ")",
                     "size the queue to at least " + std::to_string(need) +
                         " (E5 rule: ceil(consumer period / tmin))");
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// DL003 -- TDMA schedule / bandwidth
// ---------------------------------------------------------------------------

void check_bandwidth(const GatewayModel& model, Report& report) {
  if (model.schedule == nullptr) return;
  report.merge(lint_schedule(*model.schedule));
  for (int side = 0; side < 2; ++side) {
    const spec::LinkSpec* link = model.links[side];
    if (link == nullptr || !model.link_vn[side].has_value()) continue;
    const tt::VnId vn = *model.link_vn[side];
    const std::string loc = side_loc(model, side);

    for (const auto& port : link->ports()) {
      const bool bounded = (port.is_time_triggered() && port.period > Duration::zero()) ||
                           port.min_interarrival > Duration::zero();
      if (!bounded) {
        report.add(kRuleSchedule, Severity::kWarning,
                   loc + ": port for message '" + port.message + "'",
                   "worst-case rate is unbounded (no period, no tmin); it cannot be "
                   "accounted against the VN's bandwidth partition");
      }
    }

    const std::size_t granted = model.schedule->bytes_per_round(vn);
    const double demand = link_demand_bytes_per_round(*link, model.schedule->round_length());
    if (granted == 0) {
      report.add(kRuleSchedule, Severity::kError, loc,
                 "no slot of the TDMA schedule carries virtual network " + std::to_string(vn),
                 "assign at least one slot to the VN");
    } else if (demand > static_cast<double>(granted)) {
      report.add(kRuleSchedule, Severity::kError, loc,
                 "worst-case demand of " + format_bytes(demand) +
                     " B/round exceeds the " + std::to_string(granted) +
                     " B/round granted to virtual network " + std::to_string(vn),
                 "add slots for the VN or lengthen the port periods");
    }
  }
}

void run_spec_validation(const GatewayModel& model, Report& report) {
  for (int side = 0; side < 2; ++side) {
    if (model.links[side] == nullptr) continue;
    if (auto st = model.links[side]->validate(); !st.ok()) {
      report.add("DL000", Severity::kError, side_loc(model, side), st.error().message);
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Model helpers
// ---------------------------------------------------------------------------

const std::string& GatewayModel::repo_name(int side, const std::string& element) const {
  const auto& renames = rename_to_repo[static_cast<std::size_t>(side)];
  const auto it = renames.find(element);
  return it == renames.end() ? element : it->second;
}

ElementMeta GatewayModel::element_meta(const std::string& repo,
                                       spec::InfoSemantics produced) const {
  if (const auto it = element_overrides.find(repo); it != element_overrides.end())
    return it->second;
  return ElementMeta{produced, default_d_acc, default_queue_capacity};
}

// ---------------------------------------------------------------------------
// DL011 -- event-port queue sizing vs live-runtime ring capacity
// ---------------------------------------------------------------------------

/// Mirrors rt/ring.hpp framing (4-byte length prefix padded to the
/// 8-byte frame alignment) as plain arithmetic: lint/ cannot include
/// rt/ because core depends on lint and rt depends on core.
std::size_t framed_bytes(std::size_t payload) {
  return (4 + payload + 7) & ~std::size_t{7};
}

void check_ring_capacity(const GatewayModel& model, Report& report) {
  if (model.transport_ring_bytes == 0) return;
  // rt::SpscRing rejects frames larger than a quarter of the ring so the
  // wrap marker always fits; mirror that bound here.
  const std::size_t max_frame = model.transport_ring_bytes / 4;
  for (int side = 0; side < 2; ++side) {
    const spec::LinkSpec* link = model.links[side];
    if (link == nullptr) continue;
    for (const auto& port : link->ports()) {
      if (port.direction != spec::DataDirection::kInput) continue;
      const spec::MessageSpec* ms = link->message(port.message);
      if (ms == nullptr) continue;
      const std::size_t frame = framed_bytes(ms->wire_size());
      const std::string loc =
          side_loc(model, side) + ": port for message '" + port.message + "'";
      if (frame > max_frame) {
        report.add(kRuleRingCapacity, Severity::kNote, loc,
                   "a frame of '" + port.message + "' occupies " + std::to_string(frame) +
                       " ring bytes but the runtime ingress ring accepts at most " +
                       std::to_string(max_frame) + " per frame (capacity " +
                       std::to_string(model.transport_ring_bytes) +
                       " / 4); the live runtime can never carry this message",
                   "raise the ring capacity to at least " + std::to_string(frame * 4) +
                       " bytes");
        continue;
      }
      for (const auto* element : ms->convertible_elements()) {
        const std::string repo = model.repo_name(side, element->name);
        const ElementMeta meta = model.element_meta(repo, port.semantics);
        if (meta.semantics != spec::InfoSemantics::kEvent) continue;
        const std::size_t frames_in_ring = model.transport_ring_bytes / frame;
        if (frames_in_ring < meta.queue_capacity) {
          report.add(kRuleRingCapacity, Severity::kNote,
                     loc + ", element '" + repo + "'",
                     "event queue provisions " + std::to_string(meta.queue_capacity) +
                         " instances (DL006/DL010 demand) but the runtime ingress ring (" +
                         std::to_string(model.transport_ring_bytes) +
                         " bytes) buffers at most " + std::to_string(frames_in_ring) +
                         " frames of '" + port.message + "' (" + std::to_string(frame) +
                         " bytes framed); a burst drops at the transport before admission "
                         "ever sees it",
                     "raise the ring capacity to at least " +
                         std::to_string(frame * meta.queue_capacity) +
                         " bytes or shrink the queue");
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

Report lint_gateway_local(const GatewayModel& model) {
  Report report;
  if (model.links[0] == nullptr || model.links[1] == nullptr) {
    report.add("DL000", Severity::kError, "gateway '" + model.name + "'",
               "a gateway deployment needs two link specifications");
    return report;
  }
  run_spec_validation(model, report);
  check_transfer_rules(model, /*standalone=*/false, report);
  for (int side = 0; side < 2; ++side) {
    check_filter_types(model, side, report);
    check_transfer_types(model, side, /*standalone=*/false, report);
    check_automata(model, side, report);
  }
  check_construction_types(model, report);
  check_horizons(model, report);
  check_ports(model, /*standalone=*/false, report);
  check_bandwidth(model, report);
  check_dead_elements(model, report);
  check_ring_capacity(model, report);
  return report;
}

Report lint_gateway(const GatewayModel& model) {
  Report report = lint_gateway_local(model);
  if (model.links[0] == nullptr || model.links[1] == nullptr) return report;
  ClusterModel cluster;
  cluster.gateways.push_back(&model);
  report.merge(lint_cluster(cluster));
  return report;
}

Report lint_cluster(const ClusterModel& cluster, std::vector<FlowBound>* bounds) {
  Report report;
  const FlowGraph graph = build_flow_graph(cluster);
  check_flow_latency(graph, report, bounds);
  check_symbolic(cluster, graph, report);
  check_flow_occupancy(graph, report);
  return report;
}

Report lint_link(const spec::LinkSpec& link) {
  GatewayModel model;
  model.name = link.das().empty() ? std::string{"link"} : link.das();
  model.links = {&link, nullptr};

  Report report;
  run_spec_validation(model, report);
  check_transfer_rules(model, /*standalone=*/true, report);
  check_filter_types(model, 0, report);
  check_transfer_types(model, 0, /*standalone=*/true, report);
  check_automata(model, 0, report);
  check_ports(model, /*standalone=*/true, report);
  return report;
}

Report lint_schedule(const tt::TdmaSchedule& schedule) {
  Report report;
  const std::string loc = "tdma schedule";
  if (schedule.round_length() <= Duration::zero()) {
    report.add(kRuleSchedule, Severity::kError, loc, "round length must be positive");
    return report;
  }
  const auto& slots = schedule.slots();
  for (std::size_t i = 0; i < slots.size(); ++i) {
    const auto& s = slots[i];
    const std::string slot_loc = loc + ", slot " + std::to_string(i);
    if (s.owner == tt::kNoNode)
      report.add(kRuleSchedule, Severity::kError, slot_loc, "slot has no owning node",
                 "every slot belongs to exactly one sender");
    if (s.duration <= Duration::zero())
      report.add(kRuleSchedule, Severity::kError, slot_loc, "non-positive slot duration");
    if (s.offset.is_negative() || s.offset + s.duration > schedule.round_length())
      report.add(kRuleSchedule, Severity::kError, slot_loc,
                 "slot [" + s.offset.to_string() + ", +" + s.duration.to_string() +
                     "] exceeds the round of " + schedule.round_length().to_string());
    if (s.payload_bytes == 0)
      report.add(kRuleSchedule, Severity::kError, slot_loc, "slot has zero payload capacity");
  }
  std::vector<std::size_t> order(slots.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return slots[a].offset < slots[b].offset; });
  for (std::size_t i = 1; i < order.size(); ++i) {
    const auto& prev = slots[order[i - 1]];
    const auto& cur = slots[order[i]];
    if (prev.offset + prev.duration > cur.offset) {
      report.add(kRuleSchedule, Severity::kError, loc,
                 "slots " + std::to_string(order[i - 1]) + " and " + std::to_string(order[i]) +
                     " overlap",
                 "slots must partition the round");
    }
  }
  return report;
}

Report lint_virtual_network(const spec::VirtualNetworkSpec& vn, const tt::TdmaSchedule* schedule,
                            tt::VnId vn_id) {
  Report report;
  const std::string loc = "virtual network '" + vn.name() + "'";
  if (auto st = vn.validate(); !st.ok())
    report.add("DL000", Severity::kError, loc, st.error().message);

  const Duration round =
      schedule != nullptr ? schedule->round_length() : vn.round_length();
  for (const auto& link : vn.links()) {
    for (const auto& port : link.ports()) {
      if (port.is_time_triggered() && port.period > Duration::zero() &&
          round > Duration::zero() && !port.period.mod(round).is_zero() &&
          !round.mod(port.period).is_zero()) {
        report.add(kRulePorts, Severity::kError,
                   loc + ": port for message '" + port.message + "'",
                   "TT period " + port.period.to_string() +
                       " is incommensurable with the round " + round.to_string(),
                   "make the period divide the round (or be a whole multiple of it)");
      }
    }
  }

  for (const auto& message : vn.unbounded_output_ports()) {
    report.add(kRuleSchedule, Severity::kWarning, loc + ": port for message '" + message + "'",
               "worst-case rate is unbounded (no period, no tmin); only probabilistic "
               "bandwidth statements are possible");
  }

  if (schedule != nullptr) {
    report.merge(lint_schedule(*schedule));
    const std::size_t granted = schedule->bytes_per_round(vn_id);
    if (vn.bytes_per_round() > granted) {
      report.add(kRuleSchedule, Severity::kError, loc,
                 "allocation of " + std::to_string(vn.bytes_per_round()) +
                     " B/round exceeds the " + std::to_string(granted) +
                     " B/round the schedule grants to virtual network " + std::to_string(vn_id),
                 "grow the VN's slot share or shrink the allocation");
    }
    const double demand = vn.worst_case_bytes_per_round();
    if (granted > 0 && demand > static_cast<double>(granted)) {
      report.add(kRuleSchedule, Severity::kError, loc,
                 "worst-case demand of " + format_bytes(demand) +
                     " B/round exceeds the " + std::to_string(granted) +
                     " B/round granted to virtual network " + std::to_string(vn_id));
    }
  }
  return report;
}

}  // namespace decos::lint
