#include "lint/render.hpp"

#include <cstdio>

namespace decos::lint {
namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_diagnostic_json(std::string& out, const Diagnostic& d, const std::string& indent) {
  out += indent + "{\"rule\": ";
  append_escaped(out, d.rule);
  out += ", \"severity\": \"";
  out += severity_name(d.severity);
  out += "\", \"location\": ";
  append_escaped(out, d.location);
  out += ", \"message\": ";
  append_escaped(out, d.message);
  if (!d.hint.empty()) {
    out += ", \"hint\": ";
    append_escaped(out, d.hint);
  }
  if (d.loc.valid()) {
    out += ", \"line\": " + std::to_string(d.loc.line) +
           ", \"column\": " + std::to_string(d.loc.column);
  }
  out += "}";
}

void count(const Report& report, std::size_t& errors, std::size_t& warnings, std::size_t& notes) {
  for (const Diagnostic& d : report.diagnostics()) {
    switch (d.severity) {
      case Severity::kError: ++errors; break;
      case Severity::kWarning: ++warnings; break;
      case Severity::kNote: ++notes; break;
    }
  }
}

const char* sarif_level(Severity severity) {
  switch (severity) {
    case Severity::kError: return "error";
    case Severity::kWarning: return "warning";
    case Severity::kNote: return "note";
  }
  return "none";
}

void append_sarif_result(std::string& out, const Diagnostic& d, const std::string& uri,
                         bool& first) {
  if (!first) out += ",\n";
  first = false;
  out += "      {\"ruleId\": ";
  append_escaped(out, d.rule);
  out += ", \"level\": \"";
  out += sarif_level(d.severity);
  out += "\", \"message\": {\"text\": ";
  std::string text = d.location.empty() ? d.message : d.location + ": " + d.message;
  if (!d.hint.empty()) text += " [hint: " + d.hint + "]";
  append_escaped(out, text);
  out += "}";
  if (!uri.empty()) {
    out += ", \"locations\": [{\"physicalLocation\": {\"artifactLocation\": {\"uri\": ";
    append_escaped(out, uri);
    out += "}";
    if (d.loc.valid()) {
      out += ", \"region\": {\"startLine\": " + std::to_string(d.loc.line) +
             ", \"startColumn\": " + std::to_string(d.loc.column > 0 ? d.loc.column : 1) + "}";
    }
    out += "}}]";
  }
  out += "}";
}

}  // namespace

std::string render_json(const RenderInput& input) {
  std::size_t errors = 0, warnings = 0, notes = 0;
  std::string out = "{\n  \"tool\": \"declint\",\n  \"version\": 1,\n  \"files\": [\n";
  for (std::size_t i = 0; i < input.files.size(); ++i) {
    const FileReport& file = input.files[i];
    count(file.report, errors, warnings, notes);
    out += "    {\"path\": ";
    append_escaped(out, file.path);
    out += ", \"diagnostics\": [";
    const auto& diags = file.report.diagnostics();
    for (std::size_t j = 0; j < diags.size(); ++j) {
      out += j == 0 ? "\n" : ",\n";
      append_diagnostic_json(out, diags[j], "      ");
    }
    out += diags.empty() ? "]}" : "\n    ]}";
    out += i + 1 < input.files.size() ? ",\n" : "\n";
  }
  out += "  ],\n  \"cluster\": {\"diagnostics\": [";
  count(input.cluster, errors, warnings, notes);
  const auto& cluster = input.cluster.diagnostics();
  for (std::size_t j = 0; j < cluster.size(); ++j) {
    out += j == 0 ? "\n" : ",\n";
    append_diagnostic_json(out, cluster[j], "    ");
  }
  out += cluster.empty() ? "], \"flows\": [" : "\n  ], \"flows\": [";
  for (std::size_t j = 0; j < input.flows.size(); ++j) {
    const FlowBound& flow = input.flows[j];
    out += j == 0 ? "\n" : ",\n";
    out += "    {\"key\": ";
    append_escaped(out, flow.key);
    out += ", \"bound_ns\": " + std::to_string(flow.bound.ns());
    out += ", \"d_acc_ns\": " +
           (flow.d_acc == Duration::max() ? std::string{"-1"} : std::to_string(flow.d_acc.ns()));
    out += ", \"hops\": " + std::to_string(flow.hops) + "}";
  }
  out += input.flows.empty() ? "]},\n" : "\n  ]},\n";
  out += "  \"summary\": {\"errors\": " + std::to_string(errors) +
         ", \"warnings\": " + std::to_string(warnings) + ", \"notes\": " + std::to_string(notes) +
         "}\n}\n";
  return out;
}

std::string render_sarif(const RenderInput& input) {
  std::string out =
      "{\n"
      "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      "  \"version\": \"2.1.0\",\n"
      "  \"runs\": [{\n"
      "    \"tool\": {\"driver\": {\"name\": \"declint\", \"rules\": [\n";
  static const char* kRules[] = {kRuleTransfer,  kRuleTypes, kRuleSchedule,   kRuleAutomaton,
                                 kRuleHorizon,   kRulePorts, kRuleDeadElement, kRuleLatency,
                                 kRuleSymbolic,  kRuleOccupancy};
  for (std::size_t i = 0; i < sizeof kRules / sizeof kRules[0]; ++i) {
    out += std::string{"      {\"id\": \""} + kRules[i] + "\"}";
    out += i + 1 < sizeof kRules / sizeof kRules[0] ? ",\n" : "\n";
  }
  out += "    ]}},\n    \"results\": [\n";
  bool first = true;
  for (const FileReport& file : input.files) {
    for (const Diagnostic& d : file.report.diagnostics())
      append_sarif_result(out, d, file.path, first);
  }
  // Cluster findings span files; attribute them to the first input so
  // code-scanning UIs still anchor them somewhere stable.
  const std::string cluster_uri = input.files.empty() ? std::string{} : input.files.front().path;
  for (const Diagnostic& d : input.cluster.diagnostics())
    append_sarif_result(out, d, cluster_uri, first);
  out += first ? "    ]\n" : "\n    ]\n";
  out += "  }]\n}\n";
  return out;
}

}  // namespace decos::lint
