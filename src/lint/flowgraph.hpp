// Whole-cluster dataflow graph (declint rules DL008-DL010).
//
// DL001-DL007 judge each gateway (or each link) in isolation. The flow
// graph joins the deployment models of *all* gateways of a cluster into
// end-to-end flows:
//
//   producer port -> VN slot -> gateway dissect -> repository element
//     -> construct -> consumer port -> [next gateway's input port ...]
//
// Two gateways chain when one's output message is the other's input
// message (same message name; when both sides pin a VnId, the ids must
// match -- a name collision on different virtual networks is not a
// connection). A flow is a maximal hop chain starting at a message no
// gateway of the cluster emits. The timing pass composes a worst-case
// latency bound hop by hop over this graph (DL008), the occupancy pass
// propagates burst bounds along it (DL010), and the symbolic pass
// narrows value intervals through the filters on it (DL009).
#pragma once

#include <string>
#include <vector>

#include "lint/lint.hpp"

namespace decos::lint {

/// A deployment of one or more gateways analyzed jointly. The models
/// stay owned by the caller.
struct ClusterModel {
  std::vector<const GatewayModel*> gateways;
};

/// One traversal of one gateway: input message in, output message out.
struct FlowHop {
  const GatewayModel* gateway = nullptr;
  int ingress_side = 0;  // side of the input port; egress is 1 - ingress
  const spec::PortSpec* in_port = nullptr;
  const spec::MessageSpec* in_message = nullptr;
  const spec::PortSpec* out_port = nullptr;
  const spec::MessageSpec* out_message = nullptr;
  /// Repository names of the convertible elements this hop carries from
  /// the input message into the output message (directly or via a
  /// transfer rule).
  std::vector<std::string> elements;

  int egress_side() const { return 1 - ingress_side; }
};

/// A maximal chain of hops. The key matches the observability layer's
/// flow naming (obs::phase_breakdown): root send message, plus
/// "->" + final delivery message when the name changes en route -- so
/// static bounds and traced latencies join on the same string.
struct Flow {
  std::vector<FlowHop> hops;

  std::string key() const;
};

struct FlowGraph {
  std::vector<Flow> flows;
  /// All hops, including ones absorbed into longer flows.
  std::vector<FlowHop> hops;
};

/// Construct the inter-gateway dataflow graph of a cluster.
FlowGraph build_flow_graph(const ClusterModel& cluster);

struct FlowBound;  // lint/timing.hpp

/// Whole-cluster analysis: build the flow graph, then run DL008 (static
/// latency bounds), DL009 (symbolic feasibility) and DL010 (queue
/// occupancy). Per-flow bounds are appended to `bounds` when non-null
/// (include lint/timing.hpp for the complete type).
Report lint_cluster(const ClusterModel& cluster, std::vector<FlowBound>* bounds = nullptr);

}  // namespace decos::lint
