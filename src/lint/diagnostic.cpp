#include "lint/diagnostic.hpp"

#include <algorithm>
#include <utility>

namespace decos::lint {

const char* severity_name(Severity severity) {
  switch (severity) {
    case Severity::kError: return "error";
    case Severity::kWarning: return "warning";
    case Severity::kNote: return "note";
  }
  return "?";
}

std::string Diagnostic::to_string() const {
  std::string s = std::string{severity_name(severity)} + " " + rule;
  if (!location.empty()) {
    s += " at " + location;
    if (loc.valid()) s += " (line " + std::to_string(loc.line) + ")";
  } else if (loc.valid()) {
    s += " at line " + std::to_string(loc.line);
  }
  s += ": " + message;
  if (!hint.empty()) s += "  [hint: " + hint + "]";
  return s;
}

void Report::add(Diagnostic diagnostic) { diagnostics_.push_back(std::move(diagnostic)); }

void Report::add(std::string rule, Severity severity, std::string location, std::string message,
                 std::string hint) {
  diagnostics_.push_back(Diagnostic{std::move(rule), severity, std::move(location),
                                    std::move(message), std::move(hint)});
}

void Report::add(std::string rule, Severity severity, SourceLoc loc, std::string location,
                 std::string message, std::string hint) {
  diagnostics_.push_back(Diagnostic{std::move(rule), severity, std::move(location),
                                    std::move(message), std::move(hint), loc});
}

void Report::merge(Report other) {
  for (auto& d : other.diagnostics_) diagnostics_.push_back(std::move(d));
}

std::size_t Report::error_count() const {
  return static_cast<std::size_t>(
      std::count_if(diagnostics_.begin(), diagnostics_.end(),
                    [](const Diagnostic& d) { return d.severity == Severity::kError; }));
}

std::size_t Report::warning_count() const {
  return static_cast<std::size_t>(
      std::count_if(diagnostics_.begin(), diagnostics_.end(),
                    [](const Diagnostic& d) { return d.severity == Severity::kWarning; }));
}

bool Report::has(const std::string& rule) const {
  return std::any_of(diagnostics_.begin(), diagnostics_.end(),
                     [&](const Diagnostic& d) { return d.rule == rule; });
}

std::vector<const Diagnostic*> Report::by_rule(const std::string& rule) const {
  std::vector<const Diagnostic*> out;
  for (const auto& d : diagnostics_)
    if (d.rule == rule) out.push_back(&d);
  return out;
}

std::string Report::format() const {
  std::string out;
  for (const Severity severity : {Severity::kError, Severity::kWarning, Severity::kNote}) {
    for (const auto& d : diagnostics_) {
      if (d.severity != severity) continue;
      out += d.to_string();
      out += '\n';
    }
  }
  return out;
}

}  // namespace decos::lint
